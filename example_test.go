package spex_test

import (
	"fmt"
	"strings"

	spex "repro"
)

// The paper's complete example (§III.10): _*.a[b].c over the document of
// Fig. 1 selects only the <c> whose parent <a> has a <b> child.
func ExampleCompile() {
	q := spex.MustCompile("_*.a[b].c")
	results, _ := q.EvaluateString(`<a><a><c>one</c></a><b/><c>two</c></a>`)
	for _, r := range results {
		fmt.Println(r.XML)
	}
	// Output: <c>two</c>
}

// The XPath front end covers the fragment the paper identifies plus
// backward axes, rewritten into forward rpeq.
func ExampleCompileXPath() {
	q, _ := spex.CompileXPath("//c/parent::a")
	n, _ := q.Count(strings.NewReader(`<a><a><c/></a><b/><c/></a>`))
	fmt.Println(n, "answers")
	// Output: 2 answers
}

// Matches reports each answer's document-order position, progressively.
func ExampleQuery_Matches() {
	q := spex.MustCompile("_*.c")
	q.Matches(strings.NewReader(`<a><a><c/></a><b/><c/></a>`), func(m spex.Match) {
		fmt.Printf("%s@%d\n", m.Name, m.Index)
	})
	// Output:
	// c@3
	// c@5
}

// Text-test qualifiers compare string values on the fly.
func ExampleQuery_Count() {
	q := spex.MustCompile(`catalog.book[lang = "en"]`)
	n, _ := q.Count(strings.NewReader(
		`<catalog><book><lang>en</lang></book><book><lang>de</lang></book></catalog>`))
	fmt.Println(n)
	// Output: 1
}

// MatchesDoc is the document-filtering decision (the SDI scenario):
// evaluation stops at the first answer.
func ExampleQuery_MatchesDoc() {
	q := spex.MustCompile("feed.msg[sport]")
	ok, _ := q.MatchesDoc(strings.NewReader(`<feed><msg><sport/></msg></feed>`))
	fmt.Println(ok)
	// Output: true
}

// A QuerySet evaluates many queries in one pass through one shared network.
func ExampleNewQuerySet() {
	queries := []*spex.Query{
		spex.MustCompile("a.b"),
		spex.MustCompile("a.b.c"), // shares the a.b prefix
	}
	set := spex.NewQuerySet(queries, nil)
	set.Evaluate(strings.NewReader(`<a><b><c/></b></a>`))
	fmt.Println(set.Counts())
	// Output: [1 1]
}

// Stream is the push API for unbounded streams: answers surface while
// events keep arriving.
func ExampleQuery_Stream() {
	q := spex.MustCompile("exchange.tick[alert]")
	s, _ := q.Stream(func(m spex.Match) {
		fmt.Printf("alert at node %d\n", m.Index)
	})
	s.StartElement("exchange")
	s.StartElement("tick")
	s.StartElement("alert")
	s.EndElement("alert")
	s.EndElement("tick") // the answer is delivered here, mid-stream
	s.EndElement("exchange")
	s.Close()
	// Output: alert at node 2
}
