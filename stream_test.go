package spex

import (
	"strings"
	"testing"
)

type collectWriter struct {
	results []string
	current strings.Builder
	starts  int
	ends    int
}

func (c *collectWriter) ResultStart(Match)  { c.starts++; c.current.Reset() }
func (c *collectWriter) ResultXML(s string) { c.current.WriteString(s) }
func (c *collectWriter) ResultEnd(Match)    { c.ends++; c.results = append(c.results, c.current.String()) }

func TestStreamResults(t *testing.T) {
	q := MustCompile("_*.a[b].c")
	var w collectWriter
	if _, err := q.StreamResults(strings.NewReader(paperDoc), &w); err != nil {
		t.Fatal(err)
	}
	if w.starts != 1 || w.ends != 1 || len(w.results) != 1 || w.results[0] != "<c></c>" {
		t.Fatalf("got %+v", w)
	}
}

func TestStreamResultsAgreeWithResults(t *testing.T) {
	doc := `<feed><msg>one<tag/></msg><msg>two</msg></feed>`
	for _, expr := range []string{"_+", "feed.msg", "_*.tag"} {
		q := MustCompile(expr)
		want, err := q.EvaluateString(doc)
		if err != nil {
			t.Fatal(err)
		}
		var w collectWriter
		if _, err := q.StreamResults(strings.NewReader(doc), &w); err != nil {
			t.Fatal(err)
		}
		if len(w.results) != len(want) {
			t.Fatalf("%s: %d vs %d results", expr, len(w.results), len(want))
		}
		for i := range want {
			if w.results[i] != want[i].XML {
				t.Fatalf("%s result %d: %q vs %q", expr, i, w.results[i], want[i].XML)
			}
		}
	}
}

func TestMatchesDoc(t *testing.T) {
	q := MustCompile("_*.a[b].c")
	ok, err := q.MatchesDoc(strings.NewReader(paperDoc))
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	ok, err = q.MatchesDoc(strings.NewReader(`<x><y/></x>`))
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestMatchesDocStopsEarly(t *testing.T) {
	// A reader that fails if drained past the early match.
	var sb strings.Builder
	sb.WriteString("<r><hit/>")
	for i := 0; i < 100000; i++ {
		sb.WriteString("<x></x>")
	}
	// Deliberately unterminated: if evaluation stops early, the
	// malformed tail is never reached.
	sb.WriteString("<unclosed>")
	q := MustCompile("r.hit")
	ok, err := q.MatchesDoc(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("early stop should not reach the malformed tail: %v", err)
	}
	if !ok {
		t.Fatal("expected a match")
	}
}

func TestQuerySet(t *testing.T) {
	queries := []*Query{
		MustCompile("a.a"),
		MustCompile("_*.c"),
		MustCompile("a[b]"),
	}
	type hit struct {
		query int
		index int64
	}
	var hits []hit
	set := NewQuerySet(queries, func(qi int, m Match) { hits = append(hits, hit{qi, m.Index}) })
	if err := set.Evaluate(strings.NewReader(paperDoc)); err != nil {
		t.Fatal(err)
	}
	counts := set.Counts()
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("counts: %v", counts)
	}
	want := []hit{{0, 2}, {1, 3}, {1, 5}, {2, 1}}
	if len(hits) != len(want) {
		t.Fatalf("hits: %v", hits)
	}
	// Counts reset between evaluations.
	if err := set.Evaluate(strings.NewReader(paperDoc)); err != nil {
		t.Fatal(err)
	}
	if c := set.Counts(); c[1] != 2 {
		t.Fatalf("counts after re-evaluate: %v", c)
	}
}

func TestCompileXPathReverseAxes(t *testing.T) {
	q, err := CompileXPath("//c/parent::a")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if _, err := q.Matches(strings.NewReader(paperDoc), func(m Match) {
		names = append(names, m.Name)
	}); err != nil {
		t.Fatal(err)
	}
	// Parents of c nodes: the inner a (c@3's parent) and outer a (c@5's).
	if len(names) != 2 || names[0] != "a" || names[1] != "a" {
		t.Fatalf("got %v", names)
	}
}
