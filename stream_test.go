package spex

import (
	"strings"
	"testing"
)

type collectWriter struct {
	results []string
	current strings.Builder
	starts  int
	ends    int
}

func (c *collectWriter) ResultStart(Match)  { c.starts++; c.current.Reset() }
func (c *collectWriter) ResultXML(s string) { c.current.WriteString(s) }
func (c *collectWriter) ResultEnd(Match)    { c.ends++; c.results = append(c.results, c.current.String()) }

func TestStreamResults(t *testing.T) {
	q := MustCompile("_*.a[b].c")
	var w collectWriter
	if _, err := q.StreamResults(strings.NewReader(paperDoc), &w); err != nil {
		t.Fatal(err)
	}
	if w.starts != 1 || w.ends != 1 || len(w.results) != 1 || w.results[0] != "<c></c>" {
		t.Fatalf("got %+v", w)
	}
}

func TestStreamResultsAgreeWithResults(t *testing.T) {
	doc := `<feed><msg>one<tag/></msg><msg>two</msg></feed>`
	for _, expr := range []string{"_+", "feed.msg", "_*.tag"} {
		q := MustCompile(expr)
		want, err := q.EvaluateString(doc)
		if err != nil {
			t.Fatal(err)
		}
		var w collectWriter
		if _, err := q.StreamResults(strings.NewReader(doc), &w); err != nil {
			t.Fatal(err)
		}
		if len(w.results) != len(want) {
			t.Fatalf("%s: %d vs %d results", expr, len(w.results), len(want))
		}
		for i := range want {
			if w.results[i] != want[i].XML {
				t.Fatalf("%s result %d: %q vs %q", expr, i, w.results[i], want[i].XML)
			}
		}
	}
}

func TestMatchesDoc(t *testing.T) {
	q := MustCompile("_*.a[b].c")
	ok, err := q.MatchesDoc(strings.NewReader(paperDoc))
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	ok, err = q.MatchesDoc(strings.NewReader(`<x><y/></x>`))
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestMatchesDocStopsEarly(t *testing.T) {
	// A reader that fails if drained past the early match.
	var sb strings.Builder
	sb.WriteString("<r><hit/>")
	for i := 0; i < 100000; i++ {
		sb.WriteString("<x></x>")
	}
	// Deliberately unterminated: if evaluation stops early, the
	// malformed tail is never reached.
	sb.WriteString("<unclosed>")
	q := MustCompile("r.hit")
	ok, err := q.MatchesDoc(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("early stop should not reach the malformed tail: %v", err)
	}
	if !ok {
		t.Fatal("expected a match")
	}
}

func TestQuerySet(t *testing.T) {
	queries := []*Query{
		MustCompile("a.a"),
		MustCompile("_*.c"),
		MustCompile("a[b]"),
	}
	type hit struct {
		query int
		index int64
	}
	var hits []hit
	set := NewQuerySet(queries, func(qi int, m Match) { hits = append(hits, hit{qi, m.Index}) })
	if err := set.Evaluate(strings.NewReader(paperDoc)); err != nil {
		t.Fatal(err)
	}
	counts := set.Counts()
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("counts: %v", counts)
	}
	want := []hit{{0, 2}, {1, 3}, {1, 5}, {2, 1}}
	if len(hits) != len(want) {
		t.Fatalf("hits: %v", hits)
	}
	// Counts reset between evaluations.
	if err := set.Evaluate(strings.NewReader(paperDoc)); err != nil {
		t.Fatal(err)
	}
	if c := set.Counts(); c[1] != 2 {
		t.Fatalf("counts after re-evaluate: %v", c)
	}
}

// TestStreamEndElementBalance is the regression test for the depth-skew
// bug: EndElement used to decrement the stream's depth before the event
// could be rejected, so one failed call left the balance off by one and a
// subsequently well-formed document was reported unbalanced at Close. A
// rejected event must leave the stream's bookkeeping untouched.
func TestStreamEndElementBalance(t *testing.T) {
	q := MustCompile("a.b")
	var matches int
	s, err := q.Stream(func(Match) { matches++ })
	if err != nil {
		t.Fatal(err)
	}
	// Unbalanced close on a fresh stream: rejected, depth must not go
	// negative.
	if err := s.EndElement("a"); err == nil {
		t.Fatal("EndElement on an empty stream should fail")
	}
	// The stream stays usable and balanced after the rejected event.
	for _, step := range []struct {
		feed func(string) error
		name string
	}{
		{s.StartElement, "a"},
		{s.StartElement, "b"},
		{s.EndElement, "b"},
		{s.EndElement, "a"},
	} {
		if err := step.feed(step.name); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
	}
	// A second spurious close after returning to depth zero is again
	// rejected without skewing the balance, so Close still succeeds.
	if err := s.EndElement("a"); err == nil {
		t.Fatal("EndElement at depth zero should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if matches != 1 {
		t.Fatalf("matches=%d", matches)
	}
}

// TestStreamStatsAndSnapshot checks the push-mode observability surface:
// Stats reads the network's own accounting, Snapshot the attached metrics
// registry, and the two agree after Close.
func TestStreamStatsAndSnapshot(t *testing.T) {
	q := MustCompile("_*.a[b].c")
	m := NewMetrics()
	s, err := q.Stream(func(Match) {}, WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []struct {
		feed func(string) error
		name string
	}{
		{s.StartElement, "a"}, {s.StartElement, "c"}, {s.EndElement, "c"},
		{s.StartElement, "b"}, {s.EndElement, "b"}, {s.EndElement, "a"},
	} {
		if err := step.feed(step.name); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, snap := s.Stats(), s.Snapshot()
	if st.Elements != 3 || st.MaxDepth != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if !snap.Enabled {
		t.Fatal("snapshot should be enabled with WithMetrics")
	}
	if snap.Elements != st.Elements || snap.Matches != st.Output.Matches ||
		snap.MaxDepth != int64(st.MaxDepth) {
		t.Fatalf("snapshot %+v disagrees with stats %+v", snap, st)
	}
	if st.Output.Matches != 1 {
		t.Fatalf("matches=%d", st.Output.Matches)
	}
	// Without WithMetrics the snapshot is inert but harmless.
	s2, err := q.Stream(func(Match) {})
	if err != nil {
		t.Fatal(err)
	}
	if snap := s2.Snapshot(); snap.Enabled {
		t.Fatal("snapshot without a registry should be disabled")
	}
}

// TestStreamAdversarialBuffering drives the §III.8 worst case through the
// push API: for r[z].x every <x> child of <r> is an answer candidate whose
// qualifier stays undetermined until </r>, so the output transducer must
// keep all of them queued. Without the witness they are dropped in one
// batch at scope close; with <z/> as the last child the same queue flushes
// as answers. The OutputStats buffering fields must record the peak.
func TestStreamAdversarialBuffering(t *testing.T) {
	const n = 64
	q := MustCompile("r[z].x")

	run := func(witness bool) (int64, Stats, Snapshot) {
		t.Helper()
		var matches int64
		s, err := q.Stream(func(Match) { matches++ }, WithMetrics(NewMetrics()))
		if err != nil {
			t.Fatal(err)
		}
		feed := func(err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
		}
		feed(s.StartElement("r"))
		for i := 0; i < n; i++ {
			feed(s.StartElement("x"))
			feed(s.EndElement("x"))
		}
		if witness {
			feed(s.StartElement("z"))
			feed(s.EndElement("z"))
		}
		feed(s.EndElement("r"))
		feed(s.Close())
		return matches, s.Stats(), s.Snapshot()
	}

	matches, st, snap := run(false)
	if matches != 0 || st.Output.Matches != 0 {
		t.Fatalf("no witness: matches=%d", matches)
	}
	if st.Output.Candidates != n || st.Output.Dropped != n {
		t.Fatalf("candidates=%d dropped=%d, want %d each",
			st.Output.Candidates, st.Output.Dropped, n)
	}
	if st.Output.MaxQueued != n {
		t.Fatalf("every candidate must stay queued until </r>: MaxQueued=%d, want %d",
			st.Output.MaxQueued, n)
	}
	// The metrics registry mirrors the network's accounting.
	if snap.Candidates != n || snap.Dropped != n || snap.MaxQueued != n {
		t.Fatalf("snapshot candidates=%d dropped=%d maxQueued=%d, want %d each",
			snap.Candidates, snap.Dropped, snap.MaxQueued, n)
	}

	matches, st, _ = run(true)
	if matches != n || st.Output.Dropped != 0 {
		t.Fatalf("witness: matches=%d dropped=%d", matches, st.Output.Dropped)
	}
	if st.Output.MaxQueued != n {
		t.Fatalf("witness: MaxQueued=%d, want %d", st.Output.MaxQueued, n)
	}

	// Serialize mode additionally buffers each undetermined candidate's
	// content events until the verdict (§III.8): with the witness last, the
	// peak covers all n subtrees at once.
	var doc strings.Builder
	doc.WriteString("<r>")
	for i := 0; i < n; i++ {
		doc.WriteString("<x></x>")
	}
	doc.WriteString("<z></z></r>")
	sstats, err := q.Results(strings.NewReader(doc.String()), func(Result) {})
	if err != nil {
		t.Fatal(err)
	}
	if sstats.Output.MaxBufferedEvs < 2*n {
		t.Fatalf("serialize mode buffered %d events at peak, want >= %d",
			sstats.Output.MaxBufferedEvs, 2*n)
	}
}

func TestCompileXPathReverseAxes(t *testing.T) {
	q, err := CompileXPath("//c/parent::a")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if _, err := q.Matches(strings.NewReader(paperDoc), func(m Match) {
		names = append(names, m.Name)
	}); err != nil {
		t.Fatal(err)
	}
	// Parents of c nodes: the inner a (c@3's parent) and outer a (c@5's).
	if len(names) != 2 || names[0] != "a" || names[1] != "a" {
		t.Fatalf("got %v", names)
	}
}
