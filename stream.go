package spex

import (
	"io"

	"repro/internal/core"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// ResultWriter receives answers progressively, fragment by fragment: the
// content of an answer is forwarded as the input stream delivers it, the
// moment the answer's membership in the result is known (and document order
// permits). Only answers waiting behind an undecided or unfinished earlier
// answer are buffered.
type ResultWriter interface {
	// ResultStart announces an answer (document-order index and label).
	ResultStart(m Match)
	// ResultXML delivers the next serialized fragment of the current
	// answer.
	ResultXML(fragment string)
	// ResultEnd closes the current answer.
	ResultEnd(m Match)
}

// StreamResults evaluates the query over r, delivering answers through w
// progressively. Unlike Results, which hands over each answer complete,
// StreamResults forwards an accepted answer's content as it arrives — an
// answer spanning gigabytes flows through without being held in memory.
func (q *Query) StreamResults(r io.Reader, w ResultWriter) (Stats, error) {
	var name string
	sink := spexnet.NewStreamSink(
		func(index int64, n string) {
			name = n
			w.ResultStart(Match{Index: index, Name: n})
		},
		func(ev xmlstream.Event) {
			switch ev.Kind {
			case xmlstream.StartElement:
				w.ResultXML("<" + ev.Name + ">")
			case xmlstream.EndElement:
				w.ResultXML("</" + ev.Name + ">")
			case xmlstream.Text:
				w.ResultXML(xmlstream.EscapeText(ev.Data))
			}
		},
		func(index int64) { w.ResultEnd(Match{Index: index, Name: name}) },
	)
	return q.plan.EvaluateReader(r, core.EvalOptions{Mode: spexnet.ModeStream, StreamSink: sink})
}

// MatchesDoc reports whether the document matches the query at all — the
// selective-dissemination decision of XFilter/YFilter (§VIII). Evaluation
// stops as soon as the first answer is determined, so a match near the
// start of a long stream costs almost nothing.
func (q *Query) MatchesDoc(r io.Reader) (bool, error) {
	run, err := q.plan.NewRun(core.EvalOptions{Mode: spexnet.ModeCount})
	if err != nil {
		return false, err
	}
	src := xmlstream.NewScanner(r, xmlstream.WithText(false))
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return false, err
		}
		if err := run.Feed(ev); err != nil {
			return false, err
		}
		if run.Matches() > 0 {
			return true, nil
		}
	}
	if err := run.Close(); err != nil {
		return false, err
	}
	return run.Matches() > 0, nil
}

// QuerySet evaluates several compiled queries against one stream in a
// single pass through one shared transducer network: structurally identical
// subexpressions — in particular common query prefixes — are compiled and
// evaluated once (the paper's §IX multi-query optimization).
type QuerySet struct {
	queries []*Query
	specs   []spexnet.Spec
	counts  []int64
}

// NewQuerySet prepares a set; fn receives (query position, match) for every
// answer of every query, in document order per query.
func NewQuerySet(queries []*Query, fn func(query int, m Match)) *QuerySet {
	s := &QuerySet{queries: queries, counts: make([]int64, len(queries))}
	for i, q := range queries {
		i := i
		s.specs = append(s.specs, spexnet.Spec{
			Expr: q.plan.Expr(),
			Mode: spexnet.ModeNodes,
			Sink: func(r spexnet.Result) {
				s.counts[i]++
				if fn != nil {
					fn(i, Match{Index: r.Index, Name: r.Name})
				}
			},
		})
	}
	return s
}

// Evaluate streams the document once through the shared network.
func (s *QuerySet) Evaluate(r io.Reader) error {
	for i := range s.counts {
		s.counts[i] = 0
	}
	net, err := spexnet.BuildSet(s.specs, spexnet.Options{})
	if err != nil {
		return err
	}
	_, err = net.Run(xmlstream.NewScanner(r, xmlstream.WithText(false)))
	return err
}

// Counts returns per-query answer counts from the last Evaluate.
func (s *QuerySet) Counts() []int64 {
	out := make([]int64, len(s.counts))
	copy(out, s.counts)
	return out
}
