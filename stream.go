package spex

import (
	"context"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/multi"
	"repro/internal/obs"
	"repro/internal/rpeq"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// ResultWriter receives answers progressively, fragment by fragment: the
// content of an answer is forwarded as the input stream delivers it, the
// moment the answer's membership in the result is known (and document order
// permits). Only answers waiting behind an undecided or unfinished earlier
// answer are buffered.
type ResultWriter interface {
	// ResultStart announces an answer (document-order index and label).
	ResultStart(m Match)
	// ResultXML delivers the next serialized fragment of the current
	// answer.
	ResultXML(fragment string)
	// ResultEnd closes the current answer.
	ResultEnd(m Match)
}

// StreamResults evaluates the query over r, delivering answers through w
// progressively. Unlike Results, which hands over each answer complete,
// StreamResults forwards an accepted answer's content as it arrives — an
// answer spanning gigabytes flows through without being held in memory.
func (q *Query) StreamResults(r io.Reader, w ResultWriter, opts ...StreamOption) (Stats, error) {
	var name string
	sink := spexnet.NewStreamSink(
		func(index int64, n string) {
			name = n
			w.ResultStart(Match{Index: index, Name: n})
		},
		func(ev xmlstream.Event) {
			switch ev.Kind {
			case xmlstream.StartElement:
				w.ResultXML("<" + ev.Name + ">")
			case xmlstream.EndElement:
				w.ResultXML("</" + ev.Name + ">")
			case xmlstream.Text:
				w.ResultXML(xmlstream.EscapeText(ev.Data))
			}
		},
		func(index int64) { w.ResultEnd(Match{Index: index, Name: name}) },
	)
	eo := core.EvalOptions{Mode: spexnet.ModeStream, StreamSink: sink}
	for _, opt := range opts {
		opt(&eo)
	}
	return q.plan.EvaluateReader(r, eo)
}

// MatchesDoc reports whether the document matches the query at all — the
// selective-dissemination decision of XFilter/YFilter (§VIII). It is a
// limit-1 count evaluation: the first answer determines the network, which
// releases its state and stops reading the stream right there, so a match
// near the start of a long stream costs almost nothing.
func (q *Query) MatchesDoc(r io.Reader) (bool, error) {
	stats, err := q.plan.EvaluateReader(r, core.EvalOptions{Mode: spexnet.ModeCount, Limit: 1})
	if err != nil {
		return false, err
	}
	return stats.Output.Matches > 0, nil
}

// SetOption selects the evaluation engine of a query Set.
type SetOption func(*setConfig)

type setEngineKind uint8

const (
	setShared setEngineKind = iota
	setSequential
	setParallel
)

type setConfig struct {
	engine  setEngineKind
	merged  bool
	shards  int
	gov     *governor.Config
	metrics *obs.Metrics
	traceID string
	// pscan enables the parallel chunk-scan ingest path for bytes-fed
	// evaluations; pscanWorkers <= 0 means one worker per CPU.
	pscan        bool
	pscanWorkers int
}

// Sequential evaluates each query of the set on its own transducer network —
// the baseline the shared and parallel engines are cross-validated against.
func Sequential() SetOption {
	return func(c *setConfig) { c.engine = setSequential }
}

// Shared (the default) compiles all queries of the set into one transducer
// network: structurally identical subexpressions — in particular common
// query prefixes — are compiled and evaluated once (the paper's §IX
// multi-query optimization).
func Shared() SetOption {
	return func(c *setConfig) { c.engine = setShared }
}

// Merged runs the set through the query-set compiler before the network is
// built: each query is canonicalized (so equivalent subscriptions become
// structurally identical and share transducers), statically unsatisfiable
// queries are pruned without compiling a single transducer, and equivalent
// queries collapse onto one shared sink whose answers are remapped to every
// member — with per-query counts and answer limits preserved exactly.
// Answers are byte-identical to the other engines'. Combined with
// Parallel, each shard evaluates its partition through a merged network.
func Merged() SetOption {
	return func(c *setConfig) { c.merged = true }
}

// Parallel partitions the set's queries over a pool of worker shards fed in
// batches from the scanning goroutine; shards ≤ 0 selects one shard per
// available CPU. Answer callbacks run on a single delivery goroutine (never
// concurrently), in per-query document order.
func Parallel(shards int) SetOption {
	return func(c *setConfig) {
		c.engine = setParallel
		c.shards = shards
	}
}

// ParallelScan makes EvaluateBytes tokenize the document with the parallel
// chunk scanner: the input is split at safe byte boundaries, chunks are
// scanned concurrently, and the stitched event stream — identical to a
// serial scan's — feeds the set's engine. workers <= 0 selects one worker
// per CPU. Reader-fed evaluations (Evaluate, EvaluateContext) are
// unaffected: splitting needs the whole document in memory.
func ParallelScan(workers int) SetOption {
	return func(c *setConfig) {
		c.pscan = true
		c.pscanWorkers = workers
	}
}

// Governed attaches a resource governor to every query of the set: non-zero
// caps in l are enforced under policy p on each member network. Under
// PolicyShed a query that trips its candidate or buffer cap is dropped from
// the pass (its counts freeze) while the remaining queries keep evaluating;
// under PolicyFail the first trip aborts the whole pass with a *LimitError
// identifying the subscription.
func Governed(l ResourceLimits, p Policy) SetOption {
	cfg := &governor.Config{Limits: l, Policy: p}
	return func(c *setConfig) { c.gov = cfg }
}

// SetMetrics binds a metrics registry for governor trip accounting
// (spex_governor_* counters) across all queries of the set. It does not
// enable full per-event instrumentation — that would count each stream event
// once per member network.
func SetMetrics(m *Metrics) SetOption {
	return func(c *setConfig) { c.metrics = m }
}

// SetTraceID stamps every trace record of every member network with the
// stream-scoped trace identifier and labels the Parallel engine's shard
// goroutines with it for pprof, correlating one stream pass across the
// set's networks, profiles, and the caller's own records.
func SetTraceID(id string) SetOption {
	return func(c *setConfig) { c.traceID = id }
}

// Set evaluates several compiled queries against one stream in a single
// pass. The engine is selected at construction: Shared (one network with
// common subexpressions evaluated once — the default), Sequential (one
// network per query), or Parallel (queries sharded over a worker pool). All
// engines return identical per-query answers.
type Set struct {
	queries    []*Query
	fn         func(query int, m Match)
	counts     []int64
	cfg        setConfig
	determined bool
}

// QuerySet evaluates several compiled queries against one stream in a
// single pass.
//
// Deprecated: QuerySet is an alias of Set, which generalizes it with
// selectable engines (Sequential, Shared, Parallel). Use NewSet.
type QuerySet = Set

// NewSet prepares a set; fn (which may be nil) receives (query position,
// match) for every answer of every query, in document order per query. With
// the Parallel engine fn runs on the engine's delivery goroutine, not the
// caller's; it is never called concurrently with itself.
func NewSet(queries []*Query, fn func(query int, m Match), opts ...SetOption) *Set {
	s := &Set{queries: queries, fn: fn, counts: make([]int64, len(queries))}
	for _, opt := range opts {
		opt(&s.cfg)
	}
	return s
}

// NewQuerySet prepares a set evaluated on the shared-network engine.
//
// Deprecated: use NewSet, which also selects engines via SetOption.
func NewQuerySet(queries []*Query, fn func(query int, m Match)) *QuerySet {
	return NewSet(queries, fn)
}

// setEngine is what Evaluate needs from the three multi-query engines.
type setEngine interface {
	Run(src xmlstream.Source) error
	Symtab() *xmlstream.Symtab
	Matches() map[string]int64
	Determined() bool
}

// Evaluate streams the document once through the set's engine. Counts are
// reset at entry, so each Evaluate reports one document.
func (s *Set) Evaluate(r io.Reader) error {
	return s.EvaluateContext(context.Background(), r)
}

// EvaluateContext is Evaluate bounded by a context: cancellation or deadline
// expiry is checked on a short stride of stream events and aborts the pass
// with the context's error. Together with the per-hit callback the set was
// built with, this is the streaming hook a long-lived serving layer needs —
// answers surface progressively while the document streams, and a request
// deadline, a disconnected client or a draining server stops the evaluation
// mid-stream instead of running it to completion.
func (s *Set) EvaluateContext(ctx context.Context, r io.Reader) error {
	eng, withText, withAttrs, err := s.newEngine()
	if err != nil {
		return err
	}
	if m := s.cfg.metrics; m != nil {
		// Counting the input here also stamps the last-read timestamp the
		// sink-side stream-latency histogram measures emissions against.
		r = &obs.CountingReader{R: r, C: &m.Bytes, LastReadNs: &m.LastReadNs}
	}
	// The scanner shares the engine's symbol table, so every event arrives
	// with its label already resolved to an integer symbol.
	src := xmlstream.NewScanner(r,
		xmlstream.WithText(withText), xmlstream.WithAttributes(withAttrs), xmlstream.WithSymtab(eng.Symtab()))
	return s.finish(ctx, eng, src)
}

// EvaluateBytes evaluates an in-memory document — the mmap/file fast path.
// The scanner works zero-copy on data (no per-event allocation; payloads are
// arena-backed views into recycled blocks), and with the ParallelScan option
// the document is chunk-scanned concurrently. data must not be mutated while
// the evaluation runs.
func (s *Set) EvaluateBytes(data []byte) error {
	return s.EvaluateBytesContext(context.Background(), data)
}

// EvaluateBytesContext is EvaluateBytes bounded by a context, with the same
// stride-checked cancellation as EvaluateContext.
func (s *Set) EvaluateBytesContext(ctx context.Context, data []byte) error {
	eng, withText, withAttrs, err := s.newEngine()
	if err != nil {
		return err
	}
	scanOpts := []xmlstream.ScannerOption{
		xmlstream.WithText(withText), xmlstream.WithAttributes(withAttrs), xmlstream.WithSymtab(eng.Symtab())}
	var src xmlstream.Source
	if s.cfg.pscan {
		src = xmlstream.NewParallelScanner(data, s.cfg.pscanWorkers, scanOpts...)
	} else {
		src = xmlstream.ScanBytes(data, scanOpts...)
	}
	if m := s.cfg.metrics; m != nil {
		m.Bytes.Add(int64(len(data)))
	}
	return s.finish(ctx, eng, src)
}

// newEngine resets the counts, compiles the set's queries into the
// configured engine, and reports whether any member query needs text or
// attribute events.
func (s *Set) newEngine() (eng setEngine, withText, withAttrs bool, err error) {
	for i := range s.counts {
		s.counts[i] = 0
	}
	subs := make([]multi.Subscription, len(s.queries))
	for i, q := range s.queries {
		i := i
		if rpeq.HasTextTest(q.plan.Expr()) {
			withText = true
		}
		if rpeq.HasAttrTest(q.plan.Expr()) {
			withAttrs = true
		}
		subs[i] = multi.Subscription{
			Name: strconv.Itoa(i),
			Plan: q.plan,
			OnHit: func(_ string, res spexnet.Result) {
				s.counts[i]++
				if s.fn != nil {
					s.fn(i, Match{Index: res.Index, Name: res.Name})
				}
			},
		}
	}
	var engineOpts []multi.Option
	if s.cfg.gov != nil {
		engineOpts = append(engineOpts, multi.WithGovernor(s.cfg.gov))
	}
	if s.cfg.metrics != nil {
		engineOpts = append(engineOpts, multi.WithMetrics(s.cfg.metrics))
	}
	if s.cfg.traceID != "" {
		engineOpts = append(engineOpts, multi.WithTraceID(s.cfg.traceID))
	}
	switch s.cfg.engine {
	case setSequential:
		eng, err = multi.NewSet(subs, engineOpts...)
	case setParallel:
		eng, err = multi.NewParallelSet(subs, multi.ParallelOptions{
			Shards:   s.cfg.shards,
			Merged:   s.cfg.merged,
			Governor: s.cfg.gov,
			Metrics:  s.cfg.metrics,
			TraceID:  s.cfg.traceID,
		})
	default:
		if s.cfg.merged {
			eng, err = multi.NewMergedSet(subs, engineOpts...)
		} else {
			eng, err = multi.NewSharedSet(subs, engineOpts...)
		}
	}
	if err != nil {
		return nil, false, false, err
	}
	if ms, ok := eng.(*multi.MergedSet); ok && s.cfg.metrics != nil {
		st := ms.MergeStats()
		s.cfg.metrics.SetSetcompile(st.NaiveTransducers, st.MergedTransducers, st.Pruned, st.Collapsed, st.Contained)
	}
	return eng, withText, withAttrs, nil
}

// finish runs the engine over the source and folds its counters back into
// the set, publishing the scan's ingest accounting on the attached registry.
func (s *Set) finish(ctx context.Context, eng setEngine, src xmlstream.Source) error {
	if st, ok := src.(interface{ Stop() }); ok {
		// A run that ends before EOF (answer limits, cancellation, engine
		// error) abandons the source; parallel chunk workers must be released.
		defer st.Stop()
	}
	run := src
	if ctx.Done() != nil {
		run = &ctxSource{ctx: ctx, src: src}
	}
	err := eng.Run(run)
	if m := s.cfg.metrics; m != nil {
		if is, ok := src.(interface{ IngestStats() xmlstream.IngestStats }); ok {
			st := is.IngestStats()
			m.SetIngest(st.ArenaBytes, st.ArenaBlocks, st.ArenaAttrs, st.BufferBytes, st.Chunks)
		}
	}
	if err != nil {
		return err
	}
	s.determined = eng.Determined()
	// The engines' own counters are authoritative: a query degraded to
	// count-only mode by the governor keeps counting answers it no longer
	// delivers through fn, so the per-hit tally above would undercount it.
	for name, n := range eng.Matches() {
		if i, cerr := strconv.Atoi(name); cerr == nil && i >= 0 && i < len(s.counts) && n > s.counts[i] {
			s.counts[i] = n
		}
	}
	return nil
}

// ctxCheckStride is how many events flow between context checks: frequent
// enough that cancellation latency stays well under a millisecond on any
// realistic stream, rare enough that the check costs nothing measurable.
const ctxCheckStride = 128

// ctxSource threads a context through a pull-based event source. The
// engines abort on the first source error, so a context error stops the
// pass exactly like a malformed document would.
type ctxSource struct {
	ctx context.Context
	src xmlstream.Source
	n   int
}

func (c *ctxSource) Next() (xmlstream.Event, error) {
	if c.n++; c.n >= ctxCheckStride {
		c.n = 0
		if err := c.ctx.Err(); err != nil {
			return xmlstream.Event{}, err
		}
	}
	return c.src.Next()
}

// Counts returns per-query answer counts from the last Evaluate.
func (s *Set) Counts() []int64 {
	out := make([]int64, len(s.counts))
	copy(out, s.counts)
	return out
}

// Determined reports whether the last Evaluate ended early because every
// query of the set reached its answer limit: the engine disconnected the
// stream at the determining event instead of draining it.
func (s *Set) Determined() bool { return s.determined }
