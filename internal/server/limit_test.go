package server_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
)

// TestSubscriptionLimit covers the subscription answer budget end to end:
// the k-th delivered hit retires the subscription — its result stream ends,
// its slot frees, a later DELETE 404s — and an ingest whose subscriptions
// all resolved reports Determined.
func TestSubscriptionLimit(t *testing.T) {
	_, c, ts := newTestServer(t, server.Config{})
	ctx := context.Background()

	info, err := c.Subscribe(ctx, server.SubscribeRequest{
		Channel: "news", Query: "_*.c", Limit: 2,
	})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if info.Limit != 2 {
		t.Fatalf("info.Limit = %d, want 2", info.Limit)
	}

	frames := make(chan server.Frame, 16)
	done := make(chan error, 1)
	go func() {
		done <- c.Results(ctx, info.ID, func(f server.Frame) error {
			frames <- f
			return nil
		})
	}()

	// The limit is a lifetime budget across ingests. The first document
	// spends one answer of the two — and receiving its frame proves the
	// result stream is attached before the determining ingest.
	sum, err := c.IngestString(ctx, "news", `<r><c/></r>`)
	if err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	if sum.Determined {
		t.Fatal("first ingest claimed Determined below the limit")
	}
	select {
	case <-frames:
	case <-time.After(5 * time.Second):
		t.Fatal("no frame from the first ingest")
	}

	sum, err = c.IngestString(ctx, "news", `<r><c/><c/><c/><c/></r>`)
	if err != nil {
		t.Fatalf("second ingest: %v", err)
	}
	if !sum.Determined {
		t.Fatal("determining ingest did not report Determined")
	}

	// The limit retires the subscription, which closes the frame queue: the
	// result stream must end on its own after exactly one more frame.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("results stream: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("results stream did not terminate after the limit")
	}
	close(frames)
	var got []int64
	for f := range frames {
		got = append(got, f.Index)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("remaining frames = %v, want the one answer [2]", got)
	}

	// Retirement already freed the subscription: deleting it again is a 404.
	if err := c.Unsubscribe(ctx, info.ID); err == nil {
		t.Fatal("unsubscribe after completion succeeded, want 404")
	}

	// The completion is visible on the metrics endpoint.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "spex_server_subscriptions_completed_total 1") {
		t.Fatalf("metrics missing completed counter:\n%s", body)
	}
}

// TestSubscribeFirst checks the `first` shorthand (limit 1) and the
// rejection of conflicting or nonsensical budgets.
func TestSubscribeFirst(t *testing.T) {
	_, c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()

	info, err := c.Subscribe(ctx, server.SubscribeRequest{
		Channel: "n", Query: "_*.c", First: true,
	})
	if err != nil {
		t.Fatalf("subscribe first: %v", err)
	}
	if info.Limit != 1 {
		t.Fatalf("first subscription Limit = %d, want 1", info.Limit)
	}

	// first + limit 1 agree and are accepted; first + limit > 1 conflict.
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{
		Channel: "n", Query: "_*.c", First: true, Limit: 1,
	}); err != nil {
		t.Fatalf("subscribe first+limit 1: %v", err)
	}
	assertBadRequest := func(req server.SubscribeRequest) {
		t.Helper()
		_, err := c.Subscribe(ctx, req)
		if err == nil {
			t.Fatalf("subscribe %+v succeeded, want 400", req)
		}
		apiErr, ok := err.(*client.APIError)
		if !ok || apiErr.Status != http.StatusBadRequest {
			t.Fatalf("subscribe %+v error = %v, want 400", req, err)
		}
	}
	assertBadRequest(server.SubscribeRequest{Channel: "n", Query: "_*.c", First: true, Limit: 3})
	assertBadRequest(server.SubscribeRequest{Channel: "n", Query: "_*.c", Limit: -1})

	// A textual clause works too and is reported on the subscription.
	info, err = c.Subscribe(ctx, server.SubscribeRequest{Channel: "n", Query: "_*.c limit 4"})
	if err != nil {
		t.Fatalf("subscribe textual limit: %v", err)
	}
	if info.Limit != 4 {
		t.Fatalf("textual clause Limit = %d, want 4", info.Limit)
	}
}

// TestUnlimitedIngestNotDetermined is the negative control: with an
// unlimited subscription on the channel the summary must not claim early
// determination.
func TestUnlimitedIngestNotDetermined(t *testing.T) {
	_, c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "n", Query: "_*.c"}); err != nil {
		t.Fatal(err)
	}
	sum, err := c.IngestString(ctx, "n", `<r><c/><c/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Determined {
		t.Fatal("unlimited ingest claimed Determined")
	}
	if sum.Matches != 2 {
		t.Fatalf("summary matches = %d, want 2", sum.Matches)
	}
}
