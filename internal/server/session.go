package server

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	spex "repro"
	"repro/internal/setcompile"
)

// EngineKind selects a channel's multi-query evaluation engine; the kinds
// mirror the spex.Set options (Shared, Sequential, Parallel).
type EngineKind uint8

const (
	// EngineShared compiles a channel's subscriptions into one transducer
	// network with common subexpressions evaluated once (the default).
	EngineShared EngineKind = iota
	// EngineSequential runs one network per subscription.
	EngineSequential
	// EngineParallel shards the subscriptions over a worker pool.
	EngineParallel
	// EngineMerged runs the query-set compiler first: subscriptions are
	// canonicalized, statically unsatisfiable ones pruned, equivalent ones
	// collapsed onto one sink, and the survivors compiled into one merged
	// network. The channel keeps an incremental compiler, so subscribing
	// and retiring maintain the merged plan without recompiling the world.
	EngineMerged
)

// Engine is a parsed engine selection: the kind plus the parallel engine's
// shard count (0 = one shard per CPU).
type Engine struct {
	Kind   EngineKind
	Shards int
}

// ParseEngine parses "sequential", "shared", "merged" or
// "parallel[:shards]" — the selection the server's subscription API and the
// spex CLI's -engine flag share. The empty string parses as the shared
// default.
func ParseEngine(s string) (Engine, error) {
	name, arg, hasArg := strings.Cut(s, ":")
	var e Engine
	switch name {
	case "", "shared":
		e.Kind = EngineShared
	case "sequential":
		e.Kind = EngineSequential
	case "parallel":
		e.Kind = EngineParallel
	case "merged":
		e.Kind = EngineMerged
	default:
		return Engine{}, fmt.Errorf("server: unknown engine %q (want sequential, shared, merged or parallel[:shards])", s)
	}
	if hasArg {
		if e.Kind != EngineParallel {
			return Engine{}, fmt.Errorf("server: engine %q takes no shard count", name)
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n <= 0 {
			return Engine{}, fmt.Errorf("server: bad shard count %q", arg)
		}
		e.Shards = n
	}
	return e, nil
}

// String renders the selection in the form ParseEngine accepts.
func (e Engine) String() string {
	switch e.Kind {
	case EngineSequential:
		return "sequential"
	case EngineParallel:
		if e.Shards > 0 {
			return fmt.Sprintf("parallel:%d", e.Shards)
		}
		return "parallel"
	case EngineMerged:
		return "merged"
	default:
		return "shared"
	}
}

// Option translates the selection into the spex.Set option.
func (e Engine) Option() spex.SetOption {
	switch e.Kind {
	case EngineSequential:
		return spex.Sequential()
	case EngineParallel:
		return spex.Parallel(e.Shards)
	case EngineMerged:
		return spex.Merged()
	default:
		return spex.Shared()
	}
}

// subscription is one registered standing query.
type subscription struct {
	id      string
	channel string
	query   string
	xpath   bool
	q       *spex.Query
	limit   int64 // answer cap (0 = unlimited); at limit the subscription completes
	queue   *frameQueue
	seq     atomic.Int64 // frame sequence, monotone per subscription
	hits    atomic.Int64 // answers enqueued
}

// channel is a named ingest target: an engine selection plus the
// subscriptions evaluated against every document ingested into it.
type channel struct {
	name   string
	engine Engine
	cm     *ChannelMetrics
	// comp is the incremental query-set compiler of a merged-engine channel
	// (nil otherwise): subscribe and retire maintain the merged plan one
	// query at a time, and /debug/spex reads the current program from it.
	// It has its own lock.
	comp *setcompile.Compiler

	mu   sync.Mutex
	subs []*subscription
}

// snapshot returns the current subscription list; sessions evaluate against
// the set as of their start, unaffected by later (un)subscribes.
func (c *channel) snapshot() []*subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*subscription, len(c.subs))
	copy(out, c.subs)
	return out
}

// sessionManager owns the channel and subscription tables, plus the live
// registry of in-flight ingest sessions the /debug/spex surface lists.
type sessionManager struct {
	mu       sync.RWMutex
	channels map[string]*channel
	subs     map[string]*subscription
	active   map[string]*session
	nextSub  atomic.Int64
	nextSess atomic.Int64
}

func newSessionManager() *sessionManager {
	return &sessionManager{
		channels: make(map[string]*channel),
		subs:     make(map[string]*subscription),
		active:   make(map[string]*session),
	}
}

// register adds a session to the live registry for the duration of its run.
func (m *sessionManager) register(sess *session) {
	m.mu.Lock()
	m.active[sess.id] = sess
	m.mu.Unlock()
}

func (m *sessionManager) unregister(sess *session) {
	m.mu.Lock()
	delete(m.active, sess.id)
	m.mu.Unlock()
}

// activeSessions returns the live sessions, ordered by id.
func (m *sessionManager) activeSessions() []*session {
	m.mu.RLock()
	out := make([]*session, 0, len(m.active))
	for _, sess := range m.active {
		out = append(out, sess)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (m *sessionManager) channelByName(name string) *channel {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.channels[name]
}

func (m *sessionManager) subscriptionByID(id string) *subscription {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.subs[id]
}

// session is one ingest pass: the channel's subscription set as of the
// session's start, compiled into a spex.Set on the channel's engine, with
// every hit forwarded as a frame to its subscription's queue.
type session struct {
	id    string
	ch    *channel
	subs  []*subscription
	srv   *Server
	trace string        // stream-scoped trace id (client-sent or server-minted)
	start time.Time     // session start, for the /debug/spex age column
	bytes *atomic.Int64 // live ingest byte count (the inflightReader's), may be nil
	abort atomic.Bool   // a frame push failed on the session context
	// determined records that the pass ended early because every
	// subscription's answer limit was reached; written by run, read by the
	// ingest handler after run returns.
	determined bool
}

// newSession snapshots the channel. Subscriptions are ordered by id so the
// query-index → subscription mapping is deterministic.
func (s *Server) newSession(ch *channel, trace string) *session {
	subs := ch.snapshot()
	sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })
	return &session{
		id:    "sess-" + strconv.FormatInt(s.mgr.nextSess.Add(1), 10),
		ch:    ch,
		subs:  subs,
		srv:   s,
		trace: trace,
		start: time.Now(),
	}
}

// run evaluates one document from r against the session's subscriptions,
// returning the total answer count. Panics anywhere in the evaluation are
// contained to the session: they surface as its error, the channel and the
// daemon stay up.
func (sess *session) run(ctx context.Context, r io.Reader) (matches int64, err error) {
	if len(sess.subs) == 0 {
		// Nothing subscribed: consume the document (the client already
		// committed to sending it) and report zero answers.
		n, cerr := io.Copy(io.Discard, r)
		_ = n
		return 0, cerr
	}
	defer func() {
		if p := recover(); p != nil {
			sess.srv.metrics.PanicsTotal.Inc()
			err = fmt.Errorf("server: session %s: panic: %v", sess.id, p)
		}
	}()
	set := sess.newSet(ctx)
	sess.do(ctx, func(ctx context.Context) { err = set.EvaluateContext(ctx, r) })
	return sess.settle(set, err)
}

// runBytes is run over an in-memory document — the side-load path: the
// document is already resident (mmap'd from the side-load directory), so
// the session evaluates it through the zero-copy scanner, chunk-scanned in
// parallel when workers is non-zero (negative = one worker per CPU).
func (sess *session) runBytes(ctx context.Context, data []byte, workers int) (matches int64, err error) {
	if len(sess.subs) == 0 {
		return 0, nil
	}
	defer func() {
		if p := recover(); p != nil {
			sess.srv.metrics.PanicsTotal.Inc()
			err = fmt.Errorf("server: session %s: panic: %v", sess.id, p)
		}
	}()
	var extra []spex.SetOption
	if workers != 0 {
		extra = append(extra, spex.ParallelScan(workers))
	}
	set := sess.newSet(ctx, extra...)
	sess.do(ctx, func(ctx context.Context) { err = set.EvaluateBytesContext(ctx, data) })
	return sess.settle(set, err)
}

// newSet compiles the session's subscription snapshot into a spex.Set on
// the channel's engine, with every hit forwarded as a frame to its
// subscription's queue.
func (sess *session) newSet(ctx context.Context, extra ...spex.SetOption) *spex.Set {
	queries := make([]*spex.Query, len(sess.subs))
	for i, sub := range sess.subs {
		queries[i] = sub.q
	}
	m := sess.srv.metrics
	set := spex.NewSet(queries, func(qi int, match spex.Match) {
		sub := sess.subs[qi]
		f := Frame{
			Sub:     sub.id,
			Channel: sess.ch.name,
			Session: sess.id,
			Seq:     sub.seq.Add(1),
			Index:   match.Index,
			Name:    match.Name,
			Trace:   sess.trace,
		}
		h := sub.hits.Add(1)
		m.HitsTotal.Inc()
		sess.ch.cm.Hits.Inc()
		if perr := sub.queue.push(ctx, f); perr != nil {
			if perr == errQueueClosed {
				// The subscription went away mid-session; its frames are
				// dropped, everyone else's keep flowing.
				m.FramesDropped.Inc()
				return
			}
			// Context error: the evaluation aborts at the next stride
			// check; remember why.
			sess.abort.Store(true)
		}
		if sub.limit > 0 && h >= sub.limit {
			// The k-th answer was the last: close the frame queue right
			// behind it and free the admission slot. The engine stops
			// evaluating this query on its own (the limit determined its
			// network), so no further hits arrive from this session.
			sess.srv.completeSubscription(sub)
		}
	}, append(append([]spex.SetOption{sess.ch.engine.Option(), spex.SetTraceID(sess.trace)},
		extra...), sess.srv.setOpts...)...)
	return set
}

// do runs one evaluation under pprof labels that attribute its CPU samples
// to the channel, session and stream: a profile taken mid-ingest names the
// stream each hot path serves, matching the trace id on the result frames.
func (sess *session) do(ctx context.Context, eval func(context.Context)) {
	pprof.Do(ctx, pprof.Labels(
		"spex_channel", sess.ch.name,
		"spex_session", sess.id,
		"spex_trace", sess.trace,
	), eval)
}

// settle folds a finished evaluation into the session: the determinedness
// flag the ingest handler reports, and the total answer count.
func (sess *session) settle(set *spex.Set, err error) (int64, error) {
	if err != nil {
		return 0, err
	}
	sess.determined = set.Determined()
	var matches int64
	for _, n := range set.Counts() {
		matches += n
	}
	return matches, nil
}
