package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"", "shared", true},
		{"shared", "shared", true},
		{"sequential", "sequential", true},
		{"parallel", "parallel", true},
		{"parallel:4", "parallel:4", true},
		{"parallel:0", "", false},
		{"parallel:x", "", false},
		{"shared:2", "", false},
		{"warp", "", false},
	}
	for _, c := range cases {
		e, err := ParseEngine(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseEngine(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && e.String() != c.want {
			t.Errorf("ParseEngine(%q).String() = %q, want %q", c.in, e.String(), c.want)
		}
	}
}

func TestLimitsDefaults(t *testing.T) {
	l := Limits{}.withDefaults()
	if l.MaxChannels != 64 || l.MaxSessions != 64 || l.MaxSubscriptions != 4096 ||
		l.MaxSubscriptionsPerChannel != 256 || l.SubscriptionBuffer != 256 {
		t.Errorf("zero Limits resolved to %+v", l)
	}
	if l.RetryAfter != time.Second {
		t.Errorf("RetryAfter default = %v", l.RetryAfter)
	}
	unlimited := Limits{MaxChannels: -1, MaxInflightBytes: -1}.withDefaults()
	if unlimited.MaxChannels < 1<<20 || unlimited.MaxInflightBytes < 1<<40 {
		t.Errorf("negative limits not unlimited: %+v", unlimited)
	}
}

func TestFrameQueue(t *testing.T) {
	q := newFrameQueue(1)
	ctx := context.Background()
	if err := q.push(ctx, Frame{Seq: 1}); err != nil {
		t.Fatalf("push: %v", err)
	}
	// Full queue: a cancelled context unblocks the push.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := q.push(cctx, Frame{Seq: 2}); err != context.Canceled {
		t.Errorf("push on full queue with cancelled ctx = %v, want context.Canceled", err)
	}
	q.close()
	q.close() // idempotent
	if err := q.push(ctx, Frame{Seq: 3}); err != errQueueClosed {
		t.Errorf("push after close = %v, want errQueueClosed", err)
	}
	// The buffered frame is still drainable after close.
	select {
	case f := <-q.ch:
		if f.Seq != 1 {
			t.Errorf("drained frame %d, want 1", f.Seq)
		}
	default:
		t.Errorf("buffered frame lost on close")
	}
}

// TestRecovererContainsPanics: a panicking handler is answered 500, the
// panic is counted, and the server keeps serving.
func TestRecovererContainsPanics(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	boom := s.recoverer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/channels", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "kaboom") {
		t.Errorf("body %q does not name the panic", rec.Body.String())
	}
	if got := s.metrics.PanicsTotal.Load(); got != 1 {
		t.Errorf("PanicsTotal = %d, want 1", got)
	}
	// The real handler still works after a contained panic.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz after panic = %d, want 200", rec.Code)
	}
}

// TestSessionPanicContainment: a panic inside an evaluation surfaces as that
// session's error; the channel and server survive.
func TestSessionPanicContainment(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ch := &channel{name: "ch", cm: s.metrics.Channel("ch")}
	sess := s.newSession(ch, "trace-test")
	// A subscription with a nil compiled query makes the evaluation panic
	// the moment the set is built — the recover path under test.
	sess.subs = []*subscription{{id: "sub-x", q: nil, queue: newFrameQueue(1)}}
	_, err = sess.run(context.Background(), strings.NewReader("<a/>"))
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("session error = %v, want contained panic", err)
	}
	if got := s.metrics.PanicsTotal.Load(); got != 1 {
		t.Errorf("PanicsTotal = %d, want 1", got)
	}
}

func TestAdmissionCounts(t *testing.T) {
	a := &admission{limits: Limits{MaxSessions: 2, MaxInflightBytes: 10}.withDefaults()}
	if err := a.admitSession(); err != nil {
		t.Fatal(err)
	}
	if err := a.admitSession(); err != nil {
		t.Fatal(err)
	}
	if err := a.admitSession(); err == nil {
		t.Errorf("third session admitted over MaxSessions=2")
	}
	a.releaseSession()
	if err := a.admitSession(); err != nil {
		t.Errorf("session refused after release: %v", err)
	}
	a.releaseSession()
	a.releaseSession()

	a.inflight.Store(10)
	if err := a.admitSession(); err == nil {
		t.Errorf("session admitted with in-flight bytes saturated")
	}
}
