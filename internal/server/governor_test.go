package server_test

import (
	"context"
	"net/http"
	"strings"
	"testing"

	spex "repro"
	"repro/internal/server"
	"repro/internal/server/client"
)

// govChainDoc nests n <a> elements whose <b/> children all arrive last, so
// the candidate population of _+[b] reaches n mid-stream.
func govChainDoc(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString("<a>")
	}
	for i := 0; i < n; i++ {
		sb.WriteString("<b/></a>")
	}
	return sb.String()
}

// TestGovernorIngest429 drives a session over its candidate budget under the
// fail policy: the ingest is answered 429 + Retry-After (a load-shedding
// response, like admission control's), and the trip is visible on /metrics
// in both the engine's spex_governor_* section and the server's
// spex_server_governor_rejected_total.
func TestGovernorIngest429(t *testing.T) {
	_, c, ts := newTestServer(t, server.Config{
		Limits: server.Limits{
			Governor:       spex.ResourceLimits{MaxCandidates: 4},
			GovernorPolicy: "fail",
		},
	})
	ctx := context.Background()
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "gov", Query: "_+[b]"}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	_, err := c.IngestString(ctx, "gov", govChainDoc(32))
	if err == nil {
		t.Fatal("governed ingest succeeded, want 429")
	}
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("ingest error %v, want *client.APIError", err)
	}
	if apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("ingest status = %d, want 429", apiErr.Status)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("429 carried no Retry-After hint: %v", apiErr)
	}
	if !strings.Contains(apiErr.Message, "candidates limit") {
		t.Fatalf("429 body %q does not name the tripped resource", apiErr.Message)
	}

	metrics := httpGet(t, ts, "/metrics")
	for _, want := range []string{
		"spex_governor_fails_total 1",
		`spex_governor_trips_total{resource="candidates"} 1`,
		"spex_server_governor_rejected_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The governor shed one document, not the service: the same channel
	// still evaluates documents within budget.
	sum, err := c.IngestString(ctx, "gov", `<a><b/></a>`)
	if err != nil {
		t.Fatalf("in-budget ingest after a trip: %v", err)
	}
	if sum.Matches != 1 {
		t.Fatalf("in-budget ingest matched %d, want 1", sum.Matches)
	}
}

// TestGovernorIngestShed runs the shed policy: the hungry subscription is
// dropped mid-pass, the frugal one on the same channel answers normally,
// and the session reports success.
func TestGovernorIngestShed(t *testing.T) {
	_, c, ts := newTestServer(t, server.Config{
		Limits: server.Limits{
			Governor:       spex.ResourceLimits{MaxCandidates: 4},
			GovernorPolicy: "shed",
		},
	})
	ctx := context.Background()
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "gov", Query: "_+[b]"}); err != nil {
		t.Fatalf("subscribe hungry: %v", err)
	}
	frugal, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "gov", Query: "a"})
	if err != nil {
		t.Fatalf("subscribe frugal: %v", err)
	}
	sum, err := c.IngestString(ctx, "gov", govChainDoc(32))
	if err != nil {
		t.Fatalf("shed-policy ingest: %v", err)
	}
	if sum.Matches != 1 {
		t.Fatalf("ingest matched %d, want the frugal subscription's 1", sum.Matches)
	}
	info, err := c.Subscription(ctx, frugal.ID)
	if err != nil {
		t.Fatalf("subscription info: %v", err)
	}
	if info.Hits != 1 {
		t.Fatalf("frugal subscription hits = %d, want 1", info.Hits)
	}
	if metrics := httpGet(t, ts, "/metrics"); !strings.Contains(metrics, "spex_governor_sheds_total 1") {
		t.Error("/metrics missing spex_governor_sheds_total 1")
	}
}

// TestGovernorDegradePreservesCounts runs the degrade policy: the session
// succeeds and the count matches the ungoverned evaluation, with the trip
// recorded on /metrics.
func TestGovernorDegradePreservesCounts(t *testing.T) {
	_, c, ts := newTestServer(t, server.Config{
		Limits: server.Limits{
			Governor:       spex.ResourceLimits{MaxCandidates: 3},
			GovernorPolicy: "degrade",
		},
	})
	ctx := context.Background()
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "gov", Query: "_+[b]"}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	sum, err := c.IngestString(ctx, "gov", govChainDoc(24))
	if err != nil {
		t.Fatalf("degrade-policy ingest: %v", err)
	}
	if sum.Matches != 24 {
		t.Fatalf("degraded ingest matched %d, want 24", sum.Matches)
	}
	if metrics := httpGet(t, ts, "/metrics"); !strings.Contains(metrics, "spex_governor_degrades_total 1") {
		t.Error("/metrics missing spex_governor_degrades_total 1")
	}
}

// TestGovernorBadPolicyRejected verifies an unparsable policy fails server
// construction instead of silently defaulting.
func TestGovernorBadPolicyRejected(t *testing.T) {
	_, err := server.New(server.Config{
		Limits: server.Limits{
			Governor:       spex.ResourceLimits{MaxDepth: 10},
			GovernorPolicy: "explode",
		},
	})
	if err == nil {
		t.Fatal("New accepted policy \"explode\"")
	}
}
