package server

import (
	"fmt"
	"sync/atomic"
	"time"

	spex "repro"
)

// Limits configure the admission-control layer. Admission sheds load at the
// door — a request over a limit is answered 429 with Retry-After instead of
// being queued, so accepted work keeps its latency while the excess retries
// later. Zero values select the listed defaults; a negative value disables
// that limit.
type Limits struct {
	// MaxChannels caps the number of named channels (default 64).
	MaxChannels int
	// MaxSubscriptions caps the process-wide subscription count (default
	// 4096).
	MaxSubscriptions int
	// MaxSubscriptionsPerChannel caps one channel's subscriptions (default
	// 256).
	MaxSubscriptionsPerChannel int
	// MaxSessions caps concurrent ingest sessions process-wide (default 64).
	MaxSessions int
	// MaxInflightBytes caps the summed in-flight ingest request bytes: new
	// ingests are refused while the total is at or above it (default 256
	// MiB).
	MaxInflightBytes int64
	// MaxDocumentBytes caps one ingest document's size; an oversized
	// document fails with 413 mid-stream (default 0 = unlimited).
	MaxDocumentBytes int64
	// SubscriptionBuffer is the per-subscription result-frame queue
	// capacity; a full queue blocks the producing session — the
	// backpressure path (default 256).
	SubscriptionBuffer int
	// IngestTimeout is the per-ingest deadline; a session that cannot
	// finish — a slow document, or a stalled result reader holding its
	// frames — is aborted and answered 503 (default 0 = none).
	IngestTimeout time.Duration
	// RetryAfter is the hint sent with 429/503 responses (default 1s).
	RetryAfter time.Duration
	// Governor caps each ingest session's per-query evaluation resources —
	// condition-formula size, undecided-candidate population, buffered
	// events, per-step messages, live condition variables and document
	// depth. Admission sheds load at the door; the governor sheds it
	// mid-stream, when a document (not the request rate) is what exhausts
	// the evaluator. The zero value evaluates ungoverned.
	Governor spex.ResourceLimits
	// GovernorPolicy selects what a governor trip does: "fail" (the
	// default — the session is aborted and answered 429 + Retry-After),
	// "degrade" (the tripping query falls to count-only mode) or "shed"
	// (the tripping subscription is dropped from the pass; the rest keep
	// evaluating).
	GovernorPolicy string
}

// withDefaults resolves zero values to the documented defaults and negative
// values to "unlimited".
func (l Limits) withDefaults() Limits {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		} else if *v < 0 {
			*v = int(1) << 30
		}
	}
	def(&l.MaxChannels, 64)
	def(&l.MaxSubscriptions, 4096)
	def(&l.MaxSubscriptionsPerChannel, 256)
	def(&l.MaxSessions, 64)
	if l.MaxInflightBytes == 0 {
		l.MaxInflightBytes = 256 << 20
	} else if l.MaxInflightBytes < 0 {
		l.MaxInflightBytes = 1 << 62
	}
	if l.MaxDocumentBytes < 0 {
		l.MaxDocumentBytes = 0
	}
	if l.SubscriptionBuffer <= 0 {
		l.SubscriptionBuffer = 256
	}
	if l.RetryAfter <= 0 {
		l.RetryAfter = time.Second
	}
	return l
}

// limitError is an admission refusal: what was exceeded, for the 429 body.
type limitError struct{ what string }

func (e *limitError) Error() string { return "server: " + e.what + " limit reached" }

// admission tracks the live totals the limits are enforced against. All
// counts are atomics: admits happen on request goroutines, releases on
// whatever goroutine finishes the work.
type admission struct {
	limits   Limits
	sessions atomic.Int64
	inflight atomic.Int64 // in-flight ingest bytes
	subs     atomic.Int64
	channels atomic.Int64
}

// admitSession reserves one session slot, refusing over MaxSessions or
// while MaxInflightBytes is saturated. The caller must releaseSession
// exactly once on success.
func (a *admission) admitSession() error {
	if n := a.sessions.Add(1); int(n) > a.limits.MaxSessions {
		a.sessions.Add(-1)
		return &limitError{fmt.Sprintf("session (%d active)", n-1)}
	}
	if b := a.inflight.Load(); b >= a.limits.MaxInflightBytes {
		a.sessions.Add(-1)
		return &limitError{fmt.Sprintf("in-flight ingest bytes (%d buffered)", b)}
	}
	return nil
}

func (a *admission) releaseSession() { a.sessions.Add(-1) }

// admitSubscription reserves one subscription slot against the global and
// per-channel caps; perChannel is the channel's current count.
func (a *admission) admitSubscription(perChannel int) error {
	if perChannel >= a.limits.MaxSubscriptionsPerChannel {
		return &limitError{fmt.Sprintf("per-channel subscription (%d on channel)", perChannel)}
	}
	if n := a.subs.Add(1); int(n) > a.limits.MaxSubscriptions {
		a.subs.Add(-1)
		return &limitError{fmt.Sprintf("subscription (%d active)", n-1)}
	}
	return nil
}

func (a *admission) releaseSubscription() { a.subs.Add(-1) }

// admitChannel reserves one channel slot.
func (a *admission) admitChannel() error {
	if n := a.channels.Add(1); int(n) > a.limits.MaxChannels {
		a.channels.Add(-1)
		return &limitError{fmt.Sprintf("channel (%d active)", n-1)}
	}
	return nil
}
