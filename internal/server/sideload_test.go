package server_test

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/server/client"
)

// TestSideload exercises the mmap ingest path end to end: a document in the
// server's side-load directory is evaluated in place (serially and with a
// parallel chunk-scan) and must produce exactly the answers a wire ingest
// of the same bytes produces, with the frames intact.
func TestSideload(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fig1.xml"), []byte(fig1Doc), 0o644); err != nil {
		t.Fatal(err)
	}
	_, c, ts := newTestServer(t, server.Config{SideloadDir: dir})
	ctx := context.Background()

	sub, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "sl", Query: `_*.a[b].c`})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	want := directMatches(t, []string{`_*.a[b].c`}, nil, fig1Doc)[0]

	frames := make(chan server.Frame, 64)
	readerCtx, stopReader := context.WithCancel(ctx)
	defer stopReader()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = c.Results(readerCtx, sub.ID, func(f server.Frame) error {
			frames <- f
			return nil
		})
	}()

	for _, workers := range []int{0, 3, -1} {
		sum, err := c.Sideload(ctx, "sl", "fig1.xml", workers)
		if err != nil {
			t.Fatalf("sideload (workers=%d): %v", workers, err)
		}
		if sum.Matches != int64(len(want)) {
			t.Errorf("sideload (workers=%d): matches = %d, want %d", workers, sum.Matches, len(want))
		}
		if sum.Bytes != int64(len(fig1Doc)) {
			t.Errorf("sideload (workers=%d): bytes = %d, want %d", workers, sum.Bytes, len(fig1Doc))
		}
		for _, m := range want {
			f := <-frames
			if f.Index != m.Index || f.Name != m.Name {
				t.Errorf("sideload (workers=%d): frame (%d, %q), want (%d, %q)",
					workers, f.Index, f.Name, m.Index, m.Name)
			}
		}
	}

	body := httpGet(t, ts, "/metrics")
	if !strings.Contains(body, "spex_server_sideloads_total 3") {
		t.Errorf("/metrics missing spex_server_sideloads_total 3")
	}
	// The ingest chunk gauge reflects the last completed scan: the final
	// side-load ran a parallel chunk-scan, so more than one chunk unless the
	// machine is single-CPU.
	if !strings.Contains(body, "spex_ingest_chunks") {
		t.Errorf("/metrics missing spex_ingest_chunks")
	}
}

// TestSideloadRejections covers the failure doors: the route is absent
// without a configured directory, paths may not escape it, and missing
// files are a clean 404.
func TestSideloadRejections(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "doc.xml"), []byte(fig1Doc), 0o644); err != nil {
		t.Fatal(err)
	}
	_, c, _ := newTestServer(t, server.Config{SideloadDir: dir})
	ctx := context.Background()
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "sl", Query: `a`}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	cases := []struct {
		name, file string
		status     int
	}{
		{"escape", "../doc.xml", http.StatusBadRequest},
		{"sneaky escape", "sub/../../doc.xml", http.StatusBadRequest},
		{"absolute", filepath.Join(dir, "doc.xml"), http.StatusBadRequest},
		{"empty", "", http.StatusBadRequest},
		{"missing", "nope.xml", http.StatusNotFound},
		{"too large", "doc.xml", http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := c
			if tc.name == "too large" {
				_, small, _ := newTestServer(t, server.Config{
					SideloadDir: dir,
					Limits:      server.Limits{MaxDocumentBytes: 4},
				})
				if _, err := small.Subscribe(ctx, server.SubscribeRequest{Channel: "sl", Query: `a`}); err != nil {
					t.Fatalf("subscribe: %v", err)
				}
				srv = small
			}
			_, err := srv.Sideload(ctx, "sl", tc.file, 0)
			apiErr, ok := err.(*client.APIError)
			if !ok || apiErr.Status != tc.status {
				t.Fatalf("sideload %q: err = %v, want status %d", tc.file, err, tc.status)
			}
		})
	}

	// No side-load directory configured: the route answers 404.
	_, bare, _ := newTestServer(t, server.Config{})
	if _, err := bare.Subscribe(ctx, server.SubscribeRequest{Channel: "sl", Query: `a`}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	_, err := bare.Sideload(ctx, "sl", "doc.xml", 0)
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Status != http.StatusNotFound {
		t.Fatalf("sideload without directory: err = %v, want 404", err)
	}
}
