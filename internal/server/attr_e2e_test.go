package server_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/server"
)

// ticketsDoc is the motivating attribute document: closed-and-unresolved
// items' summaries are the interesting answers.
const ticketsDoc = `<items>` +
	`<item status="closed"><summary>one</summary></item>` +
	`<item status="open"><summary>two</summary></item>` +
	`<item status="closed" resolution="fixed"><summary>three</summary></item>` +
	`</items>`

// TestAttributeSubscriptions subscribes with @attr queries — rpeq and XPath
// surface, attribute selection included — on every engine kind, ingests the
// attribute-bearing document, and cross-validates each subscription's frames
// against direct spex.Set evaluation.
func TestAttributeSubscriptions(t *testing.T) {
	_, c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()

	queries := []string{
		`items.item[@status="closed" and not(@resolution)].summary`,
		`items.item[@status]`,
		`items.item.@status`,
		`//item[@status="closed"]/summary`,
	}
	xpath := []bool{false, false, false, true}
	want := directMatches(t, queries, xpath, ticketsDoc)
	// The shape of the reference: one unresolved-closed summary, three
	// attributed items, three attribute answers, two closed summaries.
	for qi, n := range []int{1, 3, 3, 2} {
		if len(want[qi]) != n {
			t.Fatalf("direct evaluation of %q found %d answers, want %d", queries[qi], len(want[qi]), n)
		}
	}

	for _, engine := range []string{"sequential", "shared", "parallel:2"} {
		ch := "attr-" + engine
		type subFrames struct {
			id     string
			frames chan server.Frame
		}
		subs := make([]*subFrames, len(queries))
		readerCtx, stopReaders := context.WithCancel(ctx)
		for qi, q := range queries {
			info, err := c.Subscribe(ctx, server.SubscribeRequest{
				Channel: ch, Query: q, XPath: xpath[qi], Engine: engine,
			})
			if err != nil {
				t.Fatalf("%s: subscribe %q: %v", engine, q, err)
			}
			st := &subFrames{id: info.ID, frames: make(chan server.Frame, 64)}
			subs[qi] = st
			go func() {
				_ = c.Results(readerCtx, st.id, func(f server.Frame) error {
					st.frames <- f
					return nil
				})
			}()
		}

		sum, err := c.IngestString(ctx, ch, ticketsDoc)
		if err != nil {
			t.Fatalf("%s: ingest: %v", engine, err)
		}
		var wantTotal int64
		for _, m := range want {
			wantTotal += int64(len(m))
		}
		if sum.Matches != wantTotal {
			t.Errorf("%s: ingest matches = %d, want %d", engine, sum.Matches, wantTotal)
		}

		for qi, st := range subs {
			got := make([]server.Frame, 0, len(want[qi]))
			timeout := time.After(10 * time.Second)
			for len(got) < len(want[qi]) {
				select {
				case f := <-st.frames:
					got = append(got, f)
				case <-timeout:
					t.Fatalf("%s: %q: got %d frames, want %d", engine, queries[qi], len(got), len(want[qi]))
				}
			}
			for i, f := range got {
				if f.Index != want[qi][i].Index || f.Name != want[qi][i].Name {
					t.Errorf("%s: %q frame %d = (%d,%q), want (%d,%q)",
						engine, queries[qi], i, f.Index, f.Name, want[qi][i].Index, want[qi][i].Name)
				}
			}
		}
		stopReaders()
	}
}
