package server

import (
	"io"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Metrics is the server's instrument set, rendered as a spex_server_*
// section appended to the engine registry's Prometheus endpoint. All
// instruments are atomics (the obs primitives), written from request,
// session and delivery goroutines and readable from any scrape.
type Metrics struct {
	SessionsActive      obs.Gauge   // ingest sessions currently evaluating
	SessionsTotal       obs.Counter // ingest sessions admitted
	SessionsFailed      obs.Counter // sessions ending in an error (incl. aborts)
	RejectedTotal       obs.Counter // requests shed by admission control (429)
	GovernorRejected    obs.Counter // sessions shed by a governor trip (429)
	DrainRejectedTotal  obs.Counter // requests refused while draining (503)
	SubscriptionsActive obs.Gauge
	SubscriptionsTotal  obs.Counter
	// SubscriptionsCompleted counts subscriptions retired by their own
	// answer limit (limit/first), as opposed to an explicit DELETE.
	SubscriptionsCompleted obs.Counter
	ChannelsActive         obs.Gauge
	InflightBytes          obs.Gauge   // in-flight ingest request bytes
	IngestBytesTotal       obs.Counter // ingest bytes consumed
	SideloadsTotal         obs.Counter // side-load sessions (mmap'd file ingests)
	HitsTotal              obs.Counter // answers produced by sessions
	FramesSent             obs.Counter // frames written to result streams
	FramesDropped          obs.Counter // frames dropped on closed subscriptions
	ResultStreamsActive    obs.Gauge   // attached result readers
	PanicsTotal            obs.Counter // panics contained by session/handler recovery
	Draining               obs.Gauge   // 1 while graceful shutdown drains

	// FrameFlushNs is the frame-flush latency distribution: nanoseconds
	// from a frame entering its subscription's queue to the result handler
	// having encoded and flushed it to the client. The queue residency
	// dominates when a reader lags; the tail shows backpressure engaging.
	FrameFlushNs obs.Histogram

	mu       sync.Mutex
	channels map[string]*ChannelMetrics
}

// ChannelMetrics is one channel's instrument set.
type ChannelMetrics struct {
	Name        string
	Subs        obs.Gauge
	Sessions    obs.Counter
	Hits        obs.Counter
	IngestBytes obs.Counter
}

// NewMetrics returns an empty server instrument set.
func NewMetrics() *Metrics {
	return &Metrics{channels: make(map[string]*ChannelMetrics)}
}

// Channel returns the named channel's instruments, creating them on first
// use. Channel instruments survive the channel (counters keep their totals
// on the scrape after a drain).
func (m *Metrics) Channel(name string) *ChannelMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	cm := m.channels[name]
	if cm == nil {
		cm = &ChannelMetrics{Name: name}
		m.channels[name] = cm
	}
	return cm
}

// WritePrometheus renders the spex_server_* section; the server appends it
// to the obs registry's /metrics endpoint. Like the registry's own section
// it is built on obs.PromSection, so families come out sorted by name with
// proper HELP/TYPE headers — the whole scrape is deterministic and
// golden-testable.
func (m *Metrics) WritePrometheus(w io.Writer) {
	p := obs.NewPromSection()
	p.Gauge("spex_server_sessions_active", "ingest sessions currently evaluating", m.SessionsActive.Load())
	p.Counter("spex_server_sessions_total", "ingest sessions admitted", m.SessionsTotal.Load())
	p.Counter("spex_server_sessions_failed_total", "ingest sessions that ended in an error", m.SessionsFailed.Load())
	p.Counter("spex_server_rejected_total", "requests shed by admission control (429)", m.RejectedTotal.Load())
	p.Counter("spex_server_governor_rejected_total", "ingest sessions shed by a resource-governor trip (429)", m.GovernorRejected.Load())
	p.Counter("spex_server_drain_rejected_total", "requests refused while draining (503)", m.DrainRejectedTotal.Load())
	p.Gauge("spex_server_subscriptions_active", "registered subscriptions", m.SubscriptionsActive.Load())
	p.Counter("spex_server_subscriptions_total", "subscriptions ever registered", m.SubscriptionsTotal.Load())
	p.Counter("spex_server_subscriptions_completed_total", "subscriptions retired by reaching their answer limit", m.SubscriptionsCompleted.Load())
	p.Gauge("spex_server_channels_active", "named channels", m.ChannelsActive.Load())
	p.Gauge("spex_server_inflight_ingest_bytes", "in-flight ingest request bytes", m.InflightBytes.Load())
	p.Counter("spex_server_ingest_bytes_total", "ingest bytes consumed", m.IngestBytesTotal.Load())
	p.Counter("spex_server_sideloads_total", "side-load sessions (documents mmap'd from the side-load directory)", m.SideloadsTotal.Load())
	p.Counter("spex_server_hits_total", "answers produced by ingest sessions", m.HitsTotal.Load())
	p.Counter("spex_server_frames_sent_total", "result frames written to streams", m.FramesSent.Load())
	p.Counter("spex_server_frames_dropped_total", "result frames dropped on closed subscriptions", m.FramesDropped.Load())
	p.Gauge("spex_server_result_streams_active", "attached result readers", m.ResultStreamsActive.Load())
	p.Counter("spex_server_panics_total", "panics contained by per-session recovery", m.PanicsTotal.Load())
	p.Gauge("spex_server_draining", "1 while graceful shutdown drains sessions", m.Draining.Load())
	p.Histogram("spex_server_frame_flush_ns", "nanoseconds from frame enqueue to encoded-and-flushed",
		obs.HistogramSnapshot{Count: m.FrameFlushNs.Count(), Sum: m.FrameFlushNs.Sum(), Buckets: m.FrameFlushNs.Buckets()})

	m.mu.Lock()
	names := make([]string, 0, len(m.channels))
	for name := range m.channels {
		names = append(names, name)
	}
	sort.Strings(names)
	cms := make([]*ChannelMetrics, len(names))
	for i, name := range names {
		cms[i] = m.channels[name]
	}
	m.mu.Unlock()
	for _, cm := range cms {
		ch := obs.Label("channel", cm.Name)
		p.Sample("spex_server_channel_subs", "gauge", "subscriptions per channel", ch, cm.Subs.Load())
		p.Sample("spex_server_channel_sessions_total", "counter", "ingest sessions per channel", ch, cm.Sessions.Load())
		p.Sample("spex_server_channel_hits_total", "counter", "answers per channel", ch, cm.Hits.Load())
		p.Sample("spex_server_channel_ingest_bytes_total", "counter", "ingest bytes per channel", ch, cm.IngestBytes.Load())
	}
	p.Render(w)
}
