package server

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Metrics is the server's instrument set, rendered as a spex_server_*
// section appended to the engine registry's Prometheus endpoint. All
// instruments are atomics (the obs primitives), written from request,
// session and delivery goroutines and readable from any scrape.
type Metrics struct {
	SessionsActive      obs.Gauge   // ingest sessions currently evaluating
	SessionsTotal       obs.Counter // ingest sessions admitted
	SessionsFailed      obs.Counter // sessions ending in an error (incl. aborts)
	RejectedTotal       obs.Counter // requests shed by admission control (429)
	GovernorRejected    obs.Counter // sessions shed by a governor trip (429)
	DrainRejectedTotal  obs.Counter // requests refused while draining (503)
	SubscriptionsActive obs.Gauge
	SubscriptionsTotal  obs.Counter
	ChannelsActive      obs.Gauge
	InflightBytes       obs.Gauge   // in-flight ingest request bytes
	IngestBytesTotal    obs.Counter // ingest bytes consumed
	HitsTotal           obs.Counter // answers produced by sessions
	FramesSent          obs.Counter // frames written to result streams
	FramesDropped       obs.Counter // frames dropped on closed subscriptions
	ResultStreamsActive obs.Gauge   // attached result readers
	PanicsTotal         obs.Counter // panics contained by session/handler recovery
	Draining            obs.Gauge   // 1 while graceful shutdown drains

	mu       sync.Mutex
	channels map[string]*ChannelMetrics
}

// ChannelMetrics is one channel's instrument set.
type ChannelMetrics struct {
	Name        string
	Subs        obs.Gauge
	Sessions    obs.Counter
	Hits        obs.Counter
	IngestBytes obs.Counter
}

// NewMetrics returns an empty server instrument set.
func NewMetrics() *Metrics {
	return &Metrics{channels: make(map[string]*ChannelMetrics)}
}

// Channel returns the named channel's instruments, creating them on first
// use. Channel instruments survive the channel (counters keep their totals
// on the scrape after a drain).
func (m *Metrics) Channel(name string) *ChannelMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	cm := m.channels[name]
	if cm == nil {
		cm = &ChannelMetrics{Name: name}
		m.channels[name] = cm
	}
	return cm
}

// WritePrometheus renders the spex_server_* section; the server appends it
// to the obs registry's /metrics endpoint.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP spex_server_%s %s\n# TYPE spex_server_%s counter\nspex_server_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP spex_server_%s %s\n# TYPE spex_server_%s gauge\nspex_server_%s %d\n", name, help, name, name, v)
	}
	gauge("sessions_active", "ingest sessions currently evaluating", m.SessionsActive.Load())
	counter("sessions_total", "ingest sessions admitted", m.SessionsTotal.Load())
	counter("sessions_failed_total", "ingest sessions that ended in an error", m.SessionsFailed.Load())
	counter("rejected_total", "requests shed by admission control (429)", m.RejectedTotal.Load())
	counter("governor_rejected_total", "ingest sessions shed by a resource-governor trip (429)", m.GovernorRejected.Load())
	counter("drain_rejected_total", "requests refused while draining (503)", m.DrainRejectedTotal.Load())
	gauge("subscriptions_active", "registered subscriptions", m.SubscriptionsActive.Load())
	counter("subscriptions_total", "subscriptions ever registered", m.SubscriptionsTotal.Load())
	gauge("channels_active", "named channels", m.ChannelsActive.Load())
	gauge("inflight_ingest_bytes", "in-flight ingest request bytes", m.InflightBytes.Load())
	counter("ingest_bytes_total", "ingest bytes consumed", m.IngestBytesTotal.Load())
	counter("hits_total", "answers produced by ingest sessions", m.HitsTotal.Load())
	counter("frames_sent_total", "result frames written to streams", m.FramesSent.Load())
	counter("frames_dropped_total", "result frames dropped on closed subscriptions", m.FramesDropped.Load())
	gauge("result_streams_active", "attached result readers", m.ResultStreamsActive.Load())
	counter("panics_total", "panics contained by per-session recovery", m.PanicsTotal.Load())
	gauge("draining", "1 while graceful shutdown drains sessions", m.Draining.Load())

	m.mu.Lock()
	names := make([]string, 0, len(m.channels))
	for name := range m.channels {
		names = append(names, name)
	}
	sort.Strings(names)
	cms := make([]*ChannelMetrics, len(names))
	for i, name := range names {
		cms[i] = m.channels[name]
	}
	m.mu.Unlock()
	if len(cms) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP spex_server_channel_subs subscriptions per channel\n# TYPE spex_server_channel_subs gauge\n")
	for _, cm := range cms {
		name := obs.EscapeLabel(cm.Name)
		fmt.Fprintf(w, "spex_server_channel_subs{channel=%q} %d\n", name, cm.Subs.Load())
		fmt.Fprintf(w, "spex_server_channel_sessions_total{channel=%q} %d\n", name, cm.Sessions.Load())
		fmt.Fprintf(w, "spex_server_channel_hits_total{channel=%q} %d\n", name, cm.Hits.Load())
		fmt.Fprintf(w, "spex_server_channel_ingest_bytes_total{channel=%q} %d\n", name, cm.IngestBytes.Load())
	}
}
