package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// Frame is one progressive answer notification, the unit of the NDJSON
// result stream: as soon as the transducer network determines an answer's
// membership, a frame is flushed to the subscription's result readers — no
// buffering to end-of-document.
type Frame struct {
	// Sub is the subscription the answer belongs to.
	Sub string `json:"sub"`
	// Channel is the channel whose ingest produced the answer.
	Channel string `json:"channel"`
	// Session identifies the ingest session (one document pass); frames of
	// concurrent sessions on one channel interleave and are grouped by this.
	Session string `json:"session"`
	// Seq is the subscription's monotone frame number. It is strictly
	// increasing per subscription; within one session, frames arrive in
	// document order.
	Seq int64 `json:"seq"`
	// Index is the answer node's document-order number (root is 0, elements
	// count from 1 in order of their start tags).
	Index int64 `json:"index"`
	// Name is the answer element's label.
	Name string `json:"name"`
	// Trace is the ingest's stream-scoped trace identifier: the value the
	// client sent as X-Spex-Trace-Id, or the one the server minted. Every
	// frame of one ingest carries the same trace, correlating the result
	// stream with the request, the engine's trace records and profiles.
	Trace string `json:"trace,omitempty"`

	// enqueuedNs is the frame's queue-entry timestamp (UnixNano), set by
	// push; the result handler measures its flush latency against it.
	enqueuedNs int64
}

// errQueueClosed reports a push to an unsubscribed (or drained) queue; the
// session drops the frame and keeps going.
var errQueueClosed = errors.New("server: subscription closed")

// frameQueue is the per-subscription result buffer, and the backpressure
// point of the whole server: a bounded channel between the evaluating
// session and the subscription's result readers. When a reader is slower
// than its channel's ingest, the queue fills and push blocks — throttling
// that session (and through it only that channel's feeder), never the
// process. The ingest deadline bounds how long a session waits on a stuck
// reader before shedding the request.
type frameQueue struct {
	ch     chan Frame
	closed chan struct{}
	once   sync.Once
	// depth tracks the queue's occupancy as seen at each enqueue, with a
	// high watermark: how close the backpressure point has come to engaging.
	// Reads drain without updating it (the watermark is what matters), so
	// the current value can overstate a queue being drained — never the max.
	depth obs.Watermark
}

func newFrameQueue(capacity int) *frameQueue {
	return &frameQueue{ch: make(chan Frame, capacity), closed: make(chan struct{})}
}

// push enqueues one frame, blocking while the queue is full. It returns the
// context's error if the session is cancelled first, or errQueueClosed if
// the subscription is gone.
func (q *frameQueue) push(ctx context.Context, f Frame) error {
	select {
	case <-q.closed:
		return errQueueClosed
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	f.enqueuedNs = time.Now().UnixNano()
	select {
	case q.ch <- f:
		q.depth.Set(int64(len(q.ch)))
		return nil
	case <-q.closed:
		return errQueueClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close marks the queue closed. Frames already queued remain readable —
// result readers drain them before ending the stream — and pushes racing
// with the close are dropped by design (the subscription is going away).
func (q *frameQueue) close() {
	q.once.Do(func() { close(q.closed) })
}
