// Package server is the serving front-end that turns the SPEX library into
// a daemon: a long-lived HTTP service where clients register standing RPEQ
// or XPath-fragment subscriptions on named channels, stream XML documents
// into those channels, and receive progressive answers as NDJSON frames the
// moment the transducer network determines them — the selective-
// dissemination deployment the paper's SDI experiments model.
//
// The package layers, bottom to top:
//
//   - sessions (session.go): every ingest snapshots its channel's
//     subscriptions into a spex.Set on the channel's engine (shared,
//     sequential, or parallel) and streams the request body through it once;
//   - frames (frames.go): each hit becomes an NDJSON frame pushed onto the
//     subscription's bounded queue — the backpressure point: a slow result
//     reader throttles its own channel's sessions, never the process;
//   - admission (admission.go): configurable limits on channels,
//     subscriptions, concurrent sessions and in-flight ingest bytes shed
//     load with 429 + Retry-After at the door;
//   - lifecycle (this file): context-propagated cancellation, drain-then-
//     stop graceful shutdown, and panic-isolating per-session recovery;
//   - observability (metrics.go): a spex_server_* Prometheus section
//     appended to the engine registry's existing /metrics endpoint, plus
//     /healthz and /readyz.
package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	spex "repro"
	"repro/internal/obs"
)

// Config configures a Server. The zero value is usable: default limits, the
// shared engine, a fresh metrics registry.
type Config struct {
	// Limits is the admission-control configuration.
	Limits Limits
	// DefaultEngine is the engine for channels whose first subscription
	// does not select one: "sequential", "shared" (the default), or
	// "parallel[:shards]".
	DefaultEngine string
	// EngineMetrics is the engine-side obs registry served on /metrics;
	// nil creates one.
	EngineMetrics *obs.Metrics
	// Logf, when non-nil, receives one line per notable server event
	// (session failures, contained panics, lifecycle transitions).
	Logf func(format string, args ...any)
	// SlowThreshold is the ingest duration above which a session is recorded
	// in the slow-stream ring surfaced on /debug/spex (spexd's -slow-ms
	// flag). Zero disables slow-stream recording; failed sessions are
	// recorded regardless of duration.
	SlowThreshold time.Duration
	// SlowRingSize caps the retained slow-stream records (default 64).
	SlowRingSize int
	// SideloadDir, when non-empty, enables POST
	// /v1/channels/{channel}/sideload: instead of streaming a document over
	// the wire, a client names a file under this directory and the server
	// mmaps it and evaluates it in place through the zero-copy ingest path
	// (optionally parallel chunk-scanned). Empty disables the route.
	SideloadDir string
}

// Server is the streaming query service. Create with New, mount Handler on
// an http.Server, and call Shutdown to drain.
type Server struct {
	limits        Limits
	defaultEngine Engine
	metrics       *Metrics
	engineMetrics *obs.Metrics
	logf          func(string, ...any)

	adm         *admission
	mgr         *sessionManager
	mux         *http.ServeMux
	sideloadDir string

	// Deep-introspection state: process start (for /debug/spex uptime), the
	// slow-stream ring, and its recording threshold.
	start    time.Time
	slow     *obs.SlowRing
	slowOver time.Duration

	// setOpts are appended to every session's spex.Set construction: the
	// engine metrics registry (so the spex_* series on /metrics are live,
	// not just exposed) and, when Limits.Governor is non-zero, the resource
	// governor bound to the same registry for spex_governor_* trips.
	setOpts []spex.SetOption

	// Lifecycle. draining flips first and gates every /v1 route; ingestWG
	// tracks in-flight sessions; hardCtx is cancelled when a drain deadline
	// expires, aborting the sessions still running.
	draining   atomic.Bool
	ingestWG   sync.WaitGroup
	hardCtx    context.Context
	hardCancel context.CancelFunc
	shutdownMu sync.Mutex
	shutdown   bool
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	eng, err := ParseEngine(cfg.DefaultEngine)
	if err != nil {
		return nil, err
	}
	em := cfg.EngineMetrics
	if em == nil {
		em = obs.NewMetrics()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	limits := cfg.Limits.withDefaults()
	ringSize := cfg.SlowRingSize
	if ringSize <= 0 {
		ringSize = 64
	}
	s := &Server{
		limits:        limits,
		defaultEngine: eng,
		metrics:       NewMetrics(),
		engineMetrics: em,
		logf:          logf,
		adm:           &admission{limits: limits},
		mgr:           newSessionManager(),
		start:         time.Now(),
		slow:          obs.NewSlowRing(ringSize),
		slowOver:      cfg.SlowThreshold,
		sideloadDir:   cfg.SideloadDir,
	}
	s.setOpts = append(s.setOpts, spex.SetMetrics(em))
	if !limits.Governor.Zero() {
		policy, err := spex.ParsePolicy(cfg.Limits.GovernorPolicy)
		if err != nil {
			return nil, err
		}
		s.setOpts = append(s.setOpts, spex.Governed(limits.Governor, policy))
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.mux = s.routes()
	return s, nil
}

// Handler returns the server's HTTP handler: the /v1 API, /healthz and
// /readyz, and the observability endpoints (/metrics with the spex_server_*
// section appended, /vars, /debug/pprof). Every route is wrapped in panic
// recovery, so a poisoned request cannot take the daemon down.
func (s *Server) Handler() http.Handler {
	return s.recoverer(s.mux)
}

// Metrics returns the server's instrument set (the spex_server_* section).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Limits returns the resolved admission limits.
func (s *Server) Limits() Limits { return s.limits }

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server gracefully: new API requests are refused with
// 503 + Retry-After immediately, in-flight ingest sessions run to
// completion, then every subscription's result queue is closed so attached
// readers flush their remaining frames and end their streams. If ctx
// expires before the sessions drain, they are aborted through their
// contexts and Shutdown returns ctx's error after they unwind. Shutdown is
// idempotent; the HTTP listener's own Shutdown should follow it, so result
// handlers have ended before the listener waits on active connections.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownMu.Lock()
	defer s.shutdownMu.Unlock()
	if !s.shutdown {
		s.shutdown = true
		s.draining.Store(true)
		s.metrics.Draining.Set(1)
		s.logf("server: draining (%d active sessions)", s.metrics.SessionsActive.Load())
	}

	done := make(chan struct{})
	go func() {
		s.ingestWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Past the drain deadline: abort the stragglers and wait for them
		// to unwind — session recovery guarantees they do.
		err = ctx.Err()
		s.logf("server: drain deadline exceeded, aborting in-flight sessions")
		s.hardCancel()
		<-done
	}

	// Sessions are gone; close every queue so result streams end once
	// their buffered frames are flushed.
	s.mgr.mu.Lock()
	for _, sub := range s.mgr.subs {
		sub.queue.close()
	}
	s.mgr.mu.Unlock()
	s.logf("server: drained")
	return err
}
