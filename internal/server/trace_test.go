package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestTracePropagation checks the stream-scoped trace identifier end to end:
// a caller-chosen X-Spex-Trace-Id comes back on the ingest summary and on
// every result frame the ingest produced; an untagged ingest gets a
// server-minted identifier instead of none.
func TestTracePropagation(t *testing.T) {
	s, c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()

	info, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "logs", Query: "_*.a[b].c"})
	if err != nil {
		t.Fatal(err)
	}
	frames := make(chan server.Frame, 64)
	readerCtx, stopReader := context.WithCancel(ctx)
	defer stopReader()
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := c.Results(readerCtx, info.ID, func(f server.Frame) error {
			frames <- f
			return nil
		})
		if err != nil && readerCtx.Err() == nil {
			t.Errorf("results: %v", err)
		}
	}()

	sum, err := c.IngestWithTrace(ctx, "logs", "trace-abc", strings.NewReader(fig1Doc))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trace != "trace-abc" {
		t.Errorf("summary trace = %q, want trace-abc", sum.Trace)
	}
	if sum.Matches != 1 {
		t.Fatalf("matches = %d, want 1", sum.Matches)
	}
	for range 1 {
		select {
		case f := <-frames:
			if f.Trace != "trace-abc" {
				t.Errorf("frame trace = %q, want trace-abc: %+v", f.Trace, f)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for result frame")
		}
	}

	// No caller trace: the server mints a non-empty one and still stamps the
	// frames with it.
	sum2, err := c.IngestString(ctx, "logs", fig1Doc)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Trace == "" || sum2.Trace == "trace-abc" {
		t.Errorf("minted trace = %q", sum2.Trace)
	}
	for range 1 {
		select {
		case f := <-frames:
			if f.Trace != sum2.Trace {
				t.Errorf("frame trace = %q, want minted %q", f.Trace, sum2.Trace)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for result frame")
		}
	}

	// The flush-latency histogram saw the delivered frames.
	if s.Metrics().FrameFlushNs.Count() == 0 {
		t.Error("frame-flush latency histogram empty after deliveries")
	}

	stopReader()
	<-done
}

// TestDebugEndpoint drives an ingest below a one-nanosecond slow threshold
// and checks GET /debug/spex surfaces the channel topology, the queue
// watermarks, and the slow-stream ring with the ingest's trace identifier.
func TestDebugEndpoint(t *testing.T) {
	_, c, ts := newTestServer(t, server.Config{SlowThreshold: time.Nanosecond})
	ctx := context.Background()

	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "logs", Query: "_*.c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestWithTrace(ctx, "logs", "trace-slow", strings.NewReader(fig1Doc)); err != nil {
		t.Fatal(err)
	}
	// A failing ingest is recorded in the ring regardless of duration.
	if _, err := c.IngestString(ctx, "logs", "<unclosed>"); err == nil {
		t.Fatal("malformed ingest should fail")
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/spex")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var info server.DebugInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}

	if info.GoVersion == "" {
		t.Error("missing go_version")
	}
	if info.UptimeNs <= 0 {
		t.Errorf("uptime = %d", info.UptimeNs)
	}
	if info.SlowThreshold != time.Nanosecond.Nanoseconds() {
		t.Errorf("slow threshold = %d", info.SlowThreshold)
	}
	if len(info.Channels) != 1 || info.Channels[0].Name != "logs" {
		t.Fatalf("channels: %+v", info.Channels)
	}
	subs := info.Channels[0].Subscriptions
	if len(subs) != 1 || subs[0].Query != "_*.c" {
		t.Fatalf("subscriptions: %+v", subs)
	}
	if subs[0].QueueCapacity <= 0 {
		t.Errorf("queue capacity = %d", subs[0].QueueCapacity)
	}
	if subs[0].Hits != 2 {
		t.Errorf("hits = %d, want 2", subs[0].Hits)
	}
	// With no result stream attached the two hit frames sit queued.
	if subs[0].QueueMax < 2 {
		t.Errorf("queue max = %d, want >= 2", subs[0].QueueMax)
	}

	if info.SlowTotal < 2 || len(info.SlowStreams) < 2 {
		t.Fatalf("slow ring: total=%d entries=%+v", info.SlowTotal, info.SlowStreams)
	}
	var sawTrace, sawErr bool
	for _, rec := range info.SlowStreams {
		if rec.Trace == "trace-slow" && rec.Matches == 2 {
			sawTrace = true
		}
		if rec.Err != "" {
			sawErr = true
		}
		if !strings.HasPrefix(rec.Label, "logs/") {
			t.Errorf("slow record label %q not channel-scoped", rec.Label)
		}
	}
	if !sawTrace {
		t.Errorf("slow ring missing traced ingest: %+v", info.SlowStreams)
	}
	if !sawErr {
		t.Errorf("slow ring missing failed ingest: %+v", info.SlowStreams)
	}
}
