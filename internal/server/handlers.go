package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	spex "repro"
	"repro/internal/obs"
	"repro/internal/rpeq"
	"repro/internal/setcompile"
	"repro/internal/xmlstream"
)

// SubscribeRequest is the POST /v1/subscriptions body.
type SubscribeRequest struct {
	// Channel names the ingest channel; it is created on first use.
	Channel string `json:"channel"`
	// Query is the standing query, rpeq syntax by default.
	Query string `json:"query"`
	// XPath interprets Query as the paper's XPath fragment.
	XPath bool `json:"xpath,omitempty"`
	// Engine selects the channel's evaluation engine ("sequential",
	// "shared", "parallel[:shards]"); it binds at channel creation and must
	// agree with the existing selection afterwards. Empty defers to the
	// channel (or the server default).
	Engine string `json:"engine,omitempty"`
	// Limit caps the subscription's answers: once Limit total hits have been
	// delivered the subscription completes — its frame queue closes (attached
	// result readers flush what is buffered and end their streams) and it is
	// removed from the channel, exactly as if it had been deleted. Within a
	// session the engine stops evaluating the limited query at the
	// determining event. The query text may also carry a trailing `limit N`
	// clause; a non-zero field overrides it.
	Limit int64 `json:"limit,omitempty"`
	// First is shorthand for Limit: 1 — deliver the first answer, then
	// complete the subscription.
	First bool `json:"first,omitempty"`
}

// SubscriptionInfo describes one registered subscription.
type SubscriptionInfo struct {
	ID      string `json:"id"`
	Channel string `json:"channel"`
	Query   string `json:"query"`
	XPath   bool   `json:"xpath,omitempty"`
	Engine  string `json:"engine"`
	Hits    int64  `json:"hits"`
	// Limit is the subscription's answer cap (0 = unlimited), whether it came
	// from the request's limit/first field or the query's own limit clause.
	Limit int64 `json:"limit,omitempty"`
}

// IngestSummary is the POST /v1/channels/{channel}/ingest response.
type IngestSummary struct {
	Session       string `json:"session"`
	Channel       string `json:"channel"`
	Subscriptions int    `json:"subscriptions"`
	Matches       int64  `json:"matches"`
	Bytes         int64  `json:"bytes"`
	// Trace is the ingest's stream-scoped trace identifier — the value the
	// client sent as X-Spex-Trace-Id, or one the server minted. Every result
	// frame the ingest produced carries the same value.
	Trace string `json:"trace"`
	// Determined reports that the session's answer became fixed before the
	// end of the document — every subscription reached its answer limit — so
	// the engine disconnected the stream at the determining event. Bytes then
	// reflects the prefix actually read, not the document's size.
	Determined bool `json:"determined,omitempty"`
}

// ChannelInfo describes one channel.
type ChannelInfo struct {
	Name          string `json:"name"`
	Engine        string `json:"engine"`
	Subscriptions int    `json:"subscriptions"`
}

// ErrorBody is the JSON error envelope every non-2xx API response carries.
type ErrorBody struct {
	Error string `json:"error"`
}

// routes builds the mux. The observability mux (the engine registry's
// /metrics with the spex_server_* section appended, /vars, /debug/pprof)
// handles everything the API patterns don't.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/subscriptions", s.gated(s.handleSubscribe))
	mux.HandleFunc("GET /v1/subscriptions/{id}", s.gated(s.handleSubscriptionInfo))
	mux.HandleFunc("DELETE /v1/subscriptions/{id}", s.gated(s.handleUnsubscribe))
	mux.HandleFunc("GET /v1/subscriptions/{id}/results", s.gated(s.handleResults))
	mux.HandleFunc("POST /v1/channels/{channel}/ingest", s.gated(s.handleIngest))
	mux.HandleFunc("POST /v1/channels/{channel}/sideload", s.gated(s.handleSideload))
	mux.HandleFunc("GET /v1/channels", s.gated(s.handleChannels))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/spex", s.handleDebug)
	mux.Handle("/", obs.NewServeMux(s.engineMetrics, s.metrics.WritePrometheus))
	return mux
}

// recoverer is the outermost panic barrier: whatever a handler does, the
// daemon answers 500 and keeps serving.
func (s *Server) recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				s.metrics.PanicsTotal.Inc()
				s.logf("server: panic serving %s %s: %v", r.Method, r.URL.Path, p)
				s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p), false)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// gated refuses /v1 requests while the server drains: clients get 503 with
// Retry-After instead of work the shutdown would cut short.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.metrics.DrainRejectedTotal.Inc()
			s.writeError(w, http.StatusServiceUnavailable, "server is draining", true)
			return
		}
		h(w, r)
	}
}

// writeJSON answers with a JSON body (and drains the request body so the
// connection can be reused — handler hygiene every endpoint here follows).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError answers with the JSON error envelope; retry adds the
// Retry-After hint load-shedding responses carry.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string, retry bool) {
	if retry {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.limits.RetryAfter.Seconds())+0.5)))
	}
	s.writeJSON(w, status, ErrorBody{Error: msg})
}

// readJSON decodes a small JSON request body, bounding and draining it.
func readJSON(r *http.Request, v any) error {
	body := io.LimitReader(r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, body)
	return nil
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req SubscribeRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error(), false)
		return
	}
	if req.Channel == "" || req.Query == "" {
		s.writeError(w, http.StatusBadRequest, "channel and query are required", false)
		return
	}
	var (
		q   *spex.Query
		err error
	)
	if req.XPath {
		q, err = spex.CompileXPath(req.Query)
	} else {
		q, err = spex.Compile(req.Query)
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad query: "+err.Error(), false)
		return
	}
	if req.First {
		if req.Limit > 1 {
			s.writeError(w, http.StatusBadRequest, "first conflicts with limit > 1", false)
			return
		}
		req.Limit = 1
	}
	if req.Limit < 0 {
		s.writeError(w, http.StatusBadRequest, "limit must be positive", false)
		return
	}
	if req.Limit > 0 {
		q = q.Limited(req.Limit)
	}
	var reqEngine Engine
	if req.Engine != "" {
		if reqEngine, err = ParseEngine(req.Engine); err != nil {
			s.writeError(w, http.StatusBadRequest, err.Error(), false)
			return
		}
	}

	s.mgr.mu.Lock()
	ch := s.mgr.channels[req.Channel]
	if ch == nil {
		if err := s.adm.admitChannel(); err != nil {
			s.mgr.mu.Unlock()
			s.metrics.RejectedTotal.Inc()
			s.writeError(w, http.StatusTooManyRequests, err.Error(), true)
			return
		}
		engine := s.defaultEngine
		if req.Engine != "" {
			engine = reqEngine
		}
		ch = &channel{name: req.Channel, engine: engine, cm: s.metrics.Channel(req.Channel)}
		if engine.Kind == EngineMerged {
			ch.comp = setcompile.NewCompiler()
		}
		s.mgr.channels[req.Channel] = ch
		s.metrics.ChannelsActive.Add(1)
	} else if req.Engine != "" && reqEngine != ch.engine {
		s.mgr.mu.Unlock()
		s.writeError(w, http.StatusConflict,
			fmt.Sprintf("channel %q runs the %s engine, not %s", ch.name, ch.engine, reqEngine), false)
		return
	}
	ch.mu.Lock()
	perChannel := len(ch.subs)
	ch.mu.Unlock()
	if err := s.adm.admitSubscription(perChannel); err != nil {
		s.mgr.mu.Unlock()
		s.metrics.RejectedTotal.Inc()
		s.writeError(w, http.StatusTooManyRequests, err.Error(), true)
		return
	}
	sub := &subscription{
		id:      "sub-" + strconv.FormatInt(s.mgr.nextSub.Add(1), 10),
		channel: req.Channel,
		query:   req.Query,
		xpath:   req.XPath,
		q:       q,
		limit:   q.Limit(),
		queue:   newFrameQueue(s.limits.SubscriptionBuffer),
	}
	s.mgr.subs[sub.id] = sub
	ch.mu.Lock()
	ch.subs = append(ch.subs, sub)
	ch.cm.Subs.Set(int64(len(ch.subs)))
	ch.mu.Unlock()
	if ch.comp != nil {
		// Maintain the merged channel's incremental query-set plan. The
		// query re-parses here because the compiled spex.Query does not
		// expose its expression tree; it already parsed once above, so this
		// cannot fail.
		var lim int64
		popts := []rpeq.ParseOption{rpeq.WithLimit(&lim)}
		if req.XPath {
			popts = append(popts, rpeq.WithXPath())
		}
		if node, perr := rpeq.Parse(req.Query, popts...); perr == nil {
			ch.comp.Add(sub.id, node, sub.limit)
		}
	}
	s.mgr.mu.Unlock()
	s.publishSetcompile()

	s.metrics.SubscriptionsActive.Add(1)
	s.metrics.SubscriptionsTotal.Inc()
	s.writeJSON(w, http.StatusCreated, s.subscriptionInfo(sub, ch))
}

func (s *Server) subscriptionInfo(sub *subscription, ch *channel) SubscriptionInfo {
	return SubscriptionInfo{
		ID:      sub.id,
		Channel: sub.channel,
		Query:   sub.query,
		XPath:   sub.xpath,
		Engine:  ch.engine.String(),
		Hits:    sub.hits.Load(),
		Limit:   sub.limit,
	}
}

func (s *Server) handleSubscriptionInfo(w http.ResponseWriter, r *http.Request) {
	sub := s.mgr.subscriptionByID(r.PathValue("id"))
	if sub == nil {
		s.writeError(w, http.StatusNotFound, "no such subscription", false)
		return
	}
	s.writeJSON(w, http.StatusOK, s.subscriptionInfo(sub, s.mgr.channelByName(sub.channel)))
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	sub := s.mgr.subscriptionByID(r.PathValue("id"))
	if sub == nil || !s.retireSubscription(sub) {
		s.writeError(w, http.StatusNotFound, "no such subscription", false)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// retireSubscription unregisters a subscription and reports whether it was
// still registered. The queue closes after unregistering: in-flight sessions
// drop the subscription's remaining frames; attached readers flush what is
// queued and end their streams. Both the DELETE handler and answer-limit
// completion funnel through here, so a race between them releases the
// admission slot exactly once.
func (s *Server) retireSubscription(sub *subscription) bool {
	s.mgr.mu.Lock()
	if _, ok := s.mgr.subs[sub.id]; !ok {
		s.mgr.mu.Unlock()
		return false
	}
	delete(s.mgr.subs, sub.id)
	ch := s.mgr.channels[sub.channel]
	if ch != nil {
		ch.mu.Lock()
		for i, cs := range ch.subs {
			if cs == sub {
				ch.subs = append(ch.subs[:i], ch.subs[i+1:]...)
				break
			}
		}
		ch.cm.Subs.Set(int64(len(ch.subs)))
		ch.mu.Unlock()
		if ch.comp != nil {
			ch.comp.Remove(sub.id)
		}
	}
	s.mgr.mu.Unlock()
	if ch != nil && ch.comp != nil {
		s.publishSetcompile()
	}

	sub.queue.close()
	s.adm.releaseSubscription()
	s.metrics.SubscriptionsActive.Add(-1)
	return true
}

// publishSetcompile re-aggregates every merged channel's compiler statistics
// into the engine registry's spex_setcompile_* gauges, so the daemon's
// /metrics reflects the standing corpus rather than the last session.
func (s *Server) publishSetcompile() {
	s.mgr.mu.RLock()
	var comps []*setcompile.Compiler
	for _, ch := range s.mgr.channels {
		if ch.comp != nil {
			comps = append(comps, ch.comp)
		}
	}
	s.mgr.mu.RUnlock()
	if len(comps) == 0 {
		return
	}
	var naive, merged, pruned, collapsed, contained int
	for _, c := range comps {
		st := c.Stats()
		naive += st.NaiveTransducers
		merged += st.MergedTransducers
		pruned += st.Pruned
		collapsed += st.Collapsed
		contained += st.Contained
	}
	s.engineMetrics.SetSetcompile(naive, merged, pruned, collapsed, contained)
}

// completeSubscription retires a subscription whose answer limit has been
// reached — the limit/first contract: the k-th answer is the last, so the
// frame queue closes right behind it and the admission slot frees without
// waiting for the client to unsubscribe. Called from a session's hit path;
// idempotent across sessions racing on the same subscription.
func (s *Server) completeSubscription(sub *subscription) {
	if s.retireSubscription(sub) {
		s.metrics.SubscriptionsCompleted.Inc()
	}
}

func (s *Server) handleChannels(w http.ResponseWriter, r *http.Request) {
	s.mgr.mu.RLock()
	out := make([]ChannelInfo, 0, len(s.mgr.channels))
	for _, ch := range s.mgr.channels {
		ch.mu.Lock()
		n := len(ch.subs)
		ch.mu.Unlock()
		out = append(out, ChannelInfo{Name: ch.name, Engine: ch.engine.String(), Subscriptions: n})
	}
	s.mgr.mu.RUnlock()
	sortChannels(out)
	s.writeJSON(w, http.StatusOK, out)
}

func sortChannels(chs []ChannelInfo) {
	for i := 1; i < len(chs); i++ {
		for j := i; j > 0 && chs[j].Name < chs[j-1].Name; j-- {
			chs[j], chs[j-1] = chs[j-1], chs[j]
		}
	}
}

// inflightReader charges every chunk of an ingest body against the
// admission budget and the byte instruments as it streams through. The
// running count is atomic because the /debug/spex surface reads it from
// other goroutines while the session streams.
type inflightReader struct {
	r    io.Reader
	sess *session
	read atomic.Int64
}

func (ir *inflightReader) Read(p []byte) (int, error) {
	n, err := ir.r.Read(p)
	if n > 0 {
		ir.read.Add(int64(n))
		srv := ir.sess.srv
		srv.adm.inflight.Add(int64(n))
		srv.metrics.InflightBytes.Add(int64(n))
		srv.metrics.IngestBytesTotal.Add(int64(n))
		ir.sess.ch.cm.IngestBytes.Add(int64(n))
	}
	return n, err
}

// TraceHeader is the request header an ingest client sets to name its
// stream; absent, the server mints an identifier. Either way the ingest
// summary, every result frame and the engine's trace records carry it.
const TraceHeader = "X-Spex-Trace-Id"

// mintTraceID returns a fresh 16-hex-digit stream identifier.
func mintTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not worth failing an ingest over; fall back
		// to a per-process counter that still distinguishes streams.
		return "trace-" + strconv.FormatInt(fallbackTrace.Add(1), 10)
	}
	return hex.EncodeToString(b[:])
}

var fallbackTrace atomic.Int64

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ch := s.mgr.channelByName(r.PathValue("channel"))
	if ch == nil {
		s.writeError(w, http.StatusNotFound, "no such channel (subscribe first)", false)
		return
	}
	trace := r.Header.Get(TraceHeader)
	if trace == "" {
		trace = mintTraceID()
	}
	w.Header().Set(TraceHeader, trace)
	if err := s.adm.admitSession(); err != nil {
		s.metrics.RejectedTotal.Inc()
		s.writeError(w, http.StatusTooManyRequests, err.Error(), true)
		return
	}
	defer s.adm.releaseSession()

	// Register with the drain group before re-checking draining: Shutdown
	// flips the flag and then waits, so every session either sees the flag
	// here or is waited for.
	s.ingestWG.Add(1)
	defer s.ingestWG.Done()
	if s.draining.Load() {
		s.metrics.DrainRejectedTotal.Inc()
		s.writeError(w, http.StatusServiceUnavailable, "server is draining", true)
		return
	}

	// The session context: the request's, bounded by the ingest deadline,
	// and cancelled outright if a drain deadline expires (hardCtx).
	ctx := r.Context()
	var cancel context.CancelFunc
	if s.limits.IngestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.limits.IngestTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	stop := context.AfterFunc(s.hardCtx, cancel)
	defer stop()
	// A session blocked inside r.Body.Read does not see a context
	// cancellation; expiring the connection's read deadline unblocks it.
	rc := http.NewResponseController(w)
	stopRead := context.AfterFunc(ctx, func() { _ = rc.SetReadDeadline(time.Now()) })
	defer stopRead()

	sess := s.newSession(ch, trace)
	s.metrics.SessionsActive.Add(1)
	s.metrics.SessionsTotal.Inc()
	ch.cm.Sessions.Inc()
	defer s.metrics.SessionsActive.Add(-1)

	var body io.Reader = r.Body
	if s.limits.MaxDocumentBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.limits.MaxDocumentBytes)
	}
	ir := &inflightReader{r: body, sess: sess}
	sess.bytes = &ir.read
	s.mgr.register(sess)
	matches, err := sess.run(ctx, ir)
	s.mgr.unregister(sess)
	read := ir.read.Load()
	s.recordSlow(sess, read, matches, err)
	// Clear any expired read deadline; if the cancellation fired it may
	// also have poisoned the connection's background read, so a cancelled
	// session's connection is not offered for reuse.
	stopRead()
	_ = rc.SetReadDeadline(time.Time{})
	if ctx.Err() != nil {
		w.Header().Set("Connection", "close")
	}
	s.adm.inflight.Add(-read)
	s.metrics.InflightBytes.Add(-read)
	if err != nil {
		// A read unblocked by the deadline above surfaces as an i/o timeout;
		// report the cancellation that caused it.
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		}
		s.metrics.SessionsFailed.Inc()
		if errors.Is(err, spex.ErrResourceLimit) {
			s.metrics.GovernorRejected.Inc()
		}
		s.logf("server: session %s on %s failed: %v", sess.id, ch.name, err)
		s.writeError(w, ingestStatus(err), fmt.Sprintf("session %s: %v", sess.id, err), retryableIngest(err))
		return
	}
	s.writeJSON(w, http.StatusOK, IngestSummary{
		Session:       sess.id,
		Channel:       ch.name,
		Subscriptions: len(sess.subs),
		Matches:       matches,
		Bytes:         read,
		Trace:         trace,
		Determined:    sess.determined,
	})
}

// SideloadRequest is the POST /v1/channels/{channel}/sideload body.
type SideloadRequest struct {
	// File names the document to evaluate, relative to the server's
	// side-load directory; paths escaping the directory are rejected.
	File string `json:"file"`
	// Workers selects the ingest mode: 0 scans serially on the zero-copy
	// engine, a positive count parallel chunk-scans with that many workers,
	// negative means one worker per CPU.
	Workers int `json:"workers,omitempty"`
}

// handleSideload is ingest without the wire: the client names a file under
// the configured side-load directory and the server mmaps it and streams it
// through the channel's subscription set in place — the zero-copy fast path,
// parallel chunk-scanned when the request asks for workers. The session
// lifecycle (admission, drain gating, timeout, slow-stream recording,
// metrics) matches handleIngest; only the document source differs.
func (s *Server) handleSideload(w http.ResponseWriter, r *http.Request) {
	if s.sideloadDir == "" {
		s.writeError(w, http.StatusNotFound, "side-loading is not enabled (no side-load directory configured)", false)
		return
	}
	ch := s.mgr.channelByName(r.PathValue("channel"))
	if ch == nil {
		s.writeError(w, http.StatusNotFound, "no such channel (subscribe first)", false)
		return
	}
	var req SideloadRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	clean := filepath.Clean(req.File)
	if req.File == "" || filepath.IsAbs(clean) || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		s.writeError(w, http.StatusBadRequest, "file must be a relative path inside the side-load directory", false)
		return
	}
	trace := r.Header.Get(TraceHeader)
	if trace == "" {
		trace = mintTraceID()
	}
	w.Header().Set(TraceHeader, trace)
	if err := s.adm.admitSession(); err != nil {
		s.metrics.RejectedTotal.Inc()
		s.writeError(w, http.StatusTooManyRequests, err.Error(), true)
		return
	}
	defer s.adm.releaseSession()

	s.ingestWG.Add(1)
	defer s.ingestWG.Done()
	if s.draining.Load() {
		s.metrics.DrainRejectedTotal.Inc()
		s.writeError(w, http.StatusServiceUnavailable, "server is draining", true)
		return
	}

	doc, err := xmlstream.OpenFile(filepath.Join(s.sideloadDir, clean))
	if err != nil {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("side-load: %v", err), false)
		return
	}
	defer doc.Close()
	size := int64(doc.Len())
	if s.limits.MaxDocumentBytes > 0 && size > s.limits.MaxDocumentBytes {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("side-load: document is %d bytes, limit %d", size, s.limits.MaxDocumentBytes), false)
		return
	}

	ctx := r.Context()
	var cancel context.CancelFunc
	if s.limits.IngestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.limits.IngestTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	stop := context.AfterFunc(s.hardCtx, cancel)
	defer stop()

	sess := s.newSession(ch, trace)
	s.metrics.SessionsActive.Add(1)
	s.metrics.SessionsTotal.Inc()
	s.metrics.SideloadsTotal.Inc()
	ch.cm.Sessions.Inc()
	defer s.metrics.SessionsActive.Add(-1)
	s.metrics.IngestBytesTotal.Add(size)
	ch.cm.IngestBytes.Add(size)

	var read atomic.Int64
	read.Store(size)
	sess.bytes = &read
	s.mgr.register(sess)
	matches, err := sess.runBytes(ctx, doc.Data(), req.Workers)
	s.mgr.unregister(sess)
	s.recordSlow(sess, size, matches, err)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		}
		s.metrics.SessionsFailed.Inc()
		if errors.Is(err, spex.ErrResourceLimit) {
			s.metrics.GovernorRejected.Inc()
		}
		s.logf("server: session %s on %s failed: %v", sess.id, ch.name, err)
		s.writeError(w, ingestStatus(err), fmt.Sprintf("session %s: %v", sess.id, err), retryableIngest(err))
		return
	}
	s.writeJSON(w, http.StatusOK, IngestSummary{
		Session:       sess.id,
		Channel:       ch.name,
		Subscriptions: len(sess.subs),
		Matches:       matches,
		Bytes:         size,
		Trace:         trace,
		Determined:    sess.determined,
	})
}

// ingestStatus maps a session error to its response status: document too
// large → 413, a governor resource-limit trip under the fail policy → 429
// (the document exhausted the evaluator's configured budget; retry against
// a less loaded deployment or with a narrower query), deadline/cancellation
// (a stalled reader's backpressure, a drain abort, a client disconnect) →
// 503, anything else (malformed XML chiefly) → 400.
func ingestStatus(err error) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, spex.ErrResourceLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// retryableIngest marks the load-shedding statuses that carry Retry-After.
func retryableIngest(err error) bool {
	s := ingestStatus(err)
	return s == http.StatusServiceUnavailable || s == http.StatusTooManyRequests
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	sub := s.mgr.subscriptionByID(r.PathValue("id"))
	if sub == nil {
		s.writeError(w, http.StatusNotFound, "no such subscription", false)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "streaming unsupported by connection", false)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush() // commit headers so the client knows the stream is attached

	s.metrics.ResultStreamsActive.Add(1)
	defer s.metrics.ResultStreamsActive.Add(-1)

	enc := json.NewEncoder(w)
	write := func(f Frame) bool {
		if err := enc.Encode(f); err != nil {
			return false
		}
		fl.Flush()
		s.metrics.FramesSent.Inc()
		// Flush latency: queue residency plus encode-and-flush, the
		// client-visible lag between determination and delivery.
		if f.enqueuedNs > 0 {
			s.metrics.FrameFlushNs.Observe(time.Now().UnixNano() - f.enqueuedNs)
		}
		return true
	}
	for {
		select {
		case f := <-sub.queue.ch:
			if !write(f) {
				return
			}
		case <-sub.queue.closed:
			// Unsubscribed or drained: flush what is buffered, then end
			// the stream cleanly.
			for {
				select {
				case f := <-sub.queue.ch:
					if !write(f) {
						return
					}
				default:
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.limits.RetryAfter.Seconds())+0.5)))
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	_, _ = io.WriteString(w, "ready\n")
}
