package server

import (
	"net/http"
	"time"

	spex "repro"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/setcompile"
)

// DebugInfo is the GET /debug/spex response: the daemon's live internals in
// one JSON document — what an operator needs when a stream is slow or a
// queue is backing up, without attaching a profiler. Everything here reads
// atomics or short-lived locks; polling it is safe while sessions stream.
type DebugInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
	UptimeNs  int64  `json:"uptime_ns"`
	Draining  bool   `json:"draining"`

	// Engine-registry highlights (full detail stays on /vars and /metrics).
	SymtabSize int64  `json:"symtab_size"`
	LiveVars   int64  `json:"live_vars"`
	HeapAlloc  uint64 `json:"heap_alloc_bytes"`

	Sessions      []DebugSession   `json:"sessions"`
	Channels      []DebugChannel   `json:"channels"`
	Governor      []DebugResource  `json:"governor,omitempty"`
	SlowStreams   []obs.SlowStream `json:"slow_streams"`
	SlowTotal     int64            `json:"slow_total"`
	SlowThreshold int64            `json:"slow_threshold_ns"`
}

// DebugSession is one in-flight ingest session.
type DebugSession struct {
	ID            string `json:"id"`
	Channel       string `json:"channel"`
	Trace         string `json:"trace"`
	Subscriptions int    `json:"subscriptions"`
	AgeNs         int64  `json:"age_ns"`
	Bytes         int64  `json:"bytes"`
}

// DebugChannel is one channel with its subscriptions' queue state.
type DebugChannel struct {
	Name          string     `json:"name"`
	Engine        string     `json:"engine"`
	Subscriptions []DebugSub `json:"subscriptions"`
	// Merged is the query-set compiler's current plan for a merged-engine
	// channel; nil for the other engines.
	Merged *DebugMerged `json:"merged,omitempty"`
}

// DebugMerged is a merged channel's compiled set plan: how far the static
// pre-pass shrank the subscription corpus, which queries it pruned or found
// contained, and the naive-versus-merged transducer counts.
type DebugMerged struct {
	Queries           int      `json:"queries"`
	Live              int      `json:"live"`
	Pruned            int      `json:"pruned"`
	Collapsed         int      `json:"collapsed"`
	NaiveTransducers  int      `json:"naive_transducers"`
	MergedTransducers int      `json:"merged_transducers"`
	PrunedQueries     []string `json:"pruned_queries,omitempty"`
	// Containments lists one-way containments (Query's answers are a subset
	// of Container's); mutually contained — equivalent — pairs collapse and
	// are counted above instead.
	Containments []DebugContainment `json:"containments,omitempty"`
}

// DebugContainment names one contained-query pair by subscription id.
type DebugContainment struct {
	Query     string `json:"query"`
	Container string `json:"container"`
}

// DebugSub is one subscription's result-queue state: current depth, the
// high watermark since registration, and the configured capacity — how close
// the backpressure point has come to engaging.
type DebugSub struct {
	ID            string `json:"id"`
	Query         string `json:"query"`
	Hits          int64  `json:"hits"`
	QueueDepth    int64  `json:"queue_depth"`
	QueueMax      int64  `json:"queue_max"`
	QueueCapacity int    `json:"queue_capacity"`
}

// DebugResource is one governed resource's headroom: the engine registry's
// current reading against the configured cap. Current is -1 when the
// registry has no live reading for the resource (per-event step messages
// are not tracked cross-run).
type DebugResource struct {
	Resource string `json:"resource"`
	Current  int64  `json:"current"`
	Limit    int    `json:"limit"`
}

// recordSlow adds a finished ingest to the slow-stream ring when it ran
// longer than the configured threshold or failed. With a zero threshold
// nothing is recorded.
func (s *Server) recordSlow(sess *session, bytes, matches int64, err error) {
	if s.slowOver <= 0 {
		return
	}
	elapsed := time.Since(sess.start)
	if elapsed < s.slowOver && err == nil {
		return
	}
	rec := obs.SlowStream{
		Trace:     sess.trace,
		Label:     sess.ch.name + "/" + sess.id,
		Bytes:     bytes,
		Matches:   matches,
		ElapsedNs: elapsed.Nanoseconds(),
		UnixNano:  time.Now().UnixNano(),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.slow.Add(rec)
}

// handleDebug serves GET /debug/spex.
func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	snap := s.engineMetrics.Snapshot()
	goVersion, revision := obs.BuildInfo()
	info := DebugInfo{
		GoVersion:     goVersion,
		Revision:      revision,
		UptimeNs:      time.Since(s.start).Nanoseconds(),
		Draining:      s.draining.Load(),
		SymtabSize:    snap.SymtabSize,
		LiveVars:      snap.LiveVars,
		HeapAlloc:     snap.HeapAlloc,
		Sessions:      []DebugSession{},
		Channels:      []DebugChannel{},
		SlowStreams:   s.slow.Entries(),
		SlowTotal:     s.slow.Total(),
		SlowThreshold: s.slowOver.Nanoseconds(),
	}
	if info.SlowStreams == nil {
		info.SlowStreams = []obs.SlowStream{}
	}

	for _, sess := range s.mgr.activeSessions() {
		ds := DebugSession{
			ID:            sess.id,
			Channel:       sess.ch.name,
			Trace:         sess.trace,
			Subscriptions: len(sess.subs),
			AgeNs:         time.Since(sess.start).Nanoseconds(),
		}
		if sess.bytes != nil {
			ds.Bytes = sess.bytes.Load()
		}
		info.Sessions = append(info.Sessions, ds)
	}

	s.mgr.mu.RLock()
	channels := make([]*channel, 0, len(s.mgr.channels))
	for _, ch := range s.mgr.channels {
		channels = append(channels, ch)
	}
	s.mgr.mu.RUnlock()
	for _, ch := range channels {
		dc := DebugChannel{Name: ch.name, Engine: ch.engine.String(), Subscriptions: []DebugSub{}}
		for _, sub := range ch.snapshot() {
			dc.Subscriptions = append(dc.Subscriptions, DebugSub{
				ID:            sub.id,
				Query:         sub.query,
				Hits:          sub.hits.Load(),
				QueueDepth:    int64(len(sub.queue.ch)),
				QueueMax:      sub.queue.depth.Max(),
				QueueCapacity: cap(sub.queue.ch),
			})
		}
		if ch.comp != nil {
			dc.Merged = debugMerged(ch.comp.Program())
		}
		info.Channels = append(info.Channels, dc)
	}
	sortDebugChannels(info.Channels)

	if !s.limits.Governor.Zero() {
		info.Governor = governorHeadroom(s.limits.Governor, snap)
	}
	s.writeJSON(w, http.StatusOK, info)
}

// debugMerged projects a compiled set plan onto the debug surface.
func debugMerged(p *setcompile.Program) *DebugMerged {
	dm := &DebugMerged{
		Queries:           p.Stats.Queries,
		Live:              p.Stats.Live,
		Pruned:            p.Stats.Pruned,
		Collapsed:         p.Stats.Collapsed,
		NaiveTransducers:  p.Stats.NaiveTransducers,
		MergedTransducers: p.Stats.MergedTransducers,
	}
	for _, m := range p.Members {
		if m.Status == setcompile.StatusPruned {
			dm.PrunedQueries = append(dm.PrunedQueries, m.Name)
		}
	}
	for _, c := range p.Containments {
		dm.Containments = append(dm.Containments, DebugContainment{Query: c.Query, Container: c.Container})
	}
	return dm
}

func sortDebugChannels(chs []DebugChannel) {
	for i := 1; i < len(chs); i++ {
		for j := i; j > 0 && chs[j].Name < chs[j-1].Name; j-- {
			chs[j], chs[j-1] = chs[j-1], chs[j]
		}
	}
}

// governorHeadroom pairs each configured cap with the engine registry's
// current reading of that resource.
func governorHeadroom(l spex.ResourceLimits, snap obs.Snapshot) []DebugResource {
	current := func(r governor.Resource) int64 {
		switch r {
		case governor.ResFormula:
			return snap.MaxFormula
		case governor.ResCandidates:
			return snap.Queued
		case governor.ResBuffered:
			return snap.Buffered
		case governor.ResLiveVars:
			return snap.LiveVars
		case governor.ResDepth:
			return snap.Depth
		default:
			// Per-event step messages have no cross-run live reading.
			return -1
		}
	}
	var out []DebugResource
	for i := 0; i < governor.NumResources; i++ {
		r := governor.Resource(i)
		if lim := l.Of(r); lim > 0 {
			out = append(out, DebugResource{Resource: r.String(), Current: current(r), Limit: lim})
		}
	}
	return out
}
