package server_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	spex "repro"
	"repro/internal/httpcheck"
	"repro/internal/server"
	"repro/internal/server/client"
)

// fig1Doc is the paper's Figure 1 document.
const fig1Doc = `<a><a><c>first</c></a><b/><c>second</c></a>`

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client, *httptest.Server) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, client.New(ts.URL, ts.Client()), ts
}

// directMatches evaluates queries against doc with a plain spex.Set and
// returns each query's answer sequence — the reference the server's frames
// must reproduce exactly.
func directMatches(t *testing.T, queries []string, xpath []bool, doc string) [][]spex.Match {
	t.Helper()
	qs := make([]*spex.Query, len(queries))
	for i, qstr := range queries {
		var err error
		if xpath != nil && xpath[i] {
			qs[i], err = spex.CompileXPath(qstr)
		} else {
			qs[i], err = spex.Compile(qstr)
		}
		if err != nil {
			t.Fatalf("compile %q: %v", qstr, err)
		}
	}
	out := make([][]spex.Match, len(qs))
	set := spex.NewSet(qs, func(qi int, m spex.Match) { out[qi] = append(out[qi], m) })
	if err := set.Evaluate(strings.NewReader(doc)); err != nil {
		t.Fatalf("direct evaluate: %v", err)
	}
	return out
}

// TestEndToEnd drives N subscribers across M channels concurrently — every
// engine kind, result streams attached throughout, several documents per
// channel — and cross-validates every subscription's frames against direct
// spex.Set evaluation.
func TestEndToEnd(t *testing.T) {
	_, c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()

	channels := []struct {
		name   string
		engine string
	}{
		{"seq", "sequential"},
		{"shared", "shared"},
		{"par", "parallel:2"},
	}
	queries := []string{`_*.a[b].c`, `_*.c`, `//a/c`, `a.b`}
	xpath := []bool{false, false, true, false}
	const ingests = 4

	want := directMatches(t, queries, xpath, fig1Doc)

	type subState struct {
		id     string
		frames chan server.Frame
	}
	subs := make(map[string][]*subState) // channel → one sub per query
	var readers sync.WaitGroup
	readerCtx, stopReaders := context.WithCancel(ctx)
	defer stopReaders()

	for _, ch := range channels {
		for qi, q := range queries {
			info, err := c.Subscribe(ctx, server.SubscribeRequest{
				Channel: ch.name, Query: q, XPath: xpath[qi], Engine: ch.engine,
			})
			if err != nil {
				t.Fatalf("subscribe %s/%s: %v", ch.name, q, err)
			}
			if info.Engine != ch.engine {
				t.Fatalf("subscribe %s: engine = %q, want %q", ch.name, info.Engine, ch.engine)
			}
			st := &subState{id: info.ID, frames: make(chan server.Frame, 1024)}
			subs[ch.name] = append(subs[ch.name], st)
			readers.Add(1)
			go func() {
				defer readers.Done()
				err := c.Results(readerCtx, st.id, func(f server.Frame) error {
					st.frames <- f
					return nil
				})
				if err != nil && readerCtx.Err() == nil {
					t.Errorf("results %s: %v", st.id, err)
				}
			}()
		}
	}

	// Concurrent ingest: every channel gets `ingests` copies of the
	// document, all in flight at once.
	var ingWG sync.WaitGroup
	for _, ch := range channels {
		for range ingests {
			ingWG.Add(1)
			go func() {
				defer ingWG.Done()
				sum, err := c.IngestString(ctx, ch.name, fig1Doc)
				if err != nil {
					t.Errorf("ingest %s: %v", ch.name, err)
					return
				}
				var wantMatches int64
				for _, m := range want {
					wantMatches += int64(len(m))
				}
				if sum.Matches != wantMatches {
					t.Errorf("ingest %s: matches = %d, want %d", ch.name, sum.Matches, wantMatches)
				}
			}()
		}
	}
	ingWG.Wait()

	// Per subscription: collect the expected frame count, group by session,
	// and check each session's ordered (Seq) answers equal the direct run.
	for _, ch := range channels {
		for qi, st := range subs[ch.name] {
			need := ingests * len(want[qi])
			got := make([]server.Frame, 0, need)
			timeout := time.After(10 * time.Second)
			for len(got) < need {
				select {
				case f := <-st.frames:
					got = append(got, f)
				case <-timeout:
					t.Fatalf("%s/%s: got %d frames, want %d", ch.name, queries[qi], len(got), need)
				}
			}
			bySession := make(map[string][]server.Frame)
			for _, f := range got {
				if f.Channel != ch.name || f.Sub != st.id {
					t.Fatalf("%s/%s: misrouted frame %+v", ch.name, queries[qi], f)
				}
				bySession[f.Channel+"/"+f.Session] = append(bySession[f.Channel+"/"+f.Session], f)
			}
			for sess, fs := range bySession {
				if len(fs) != len(want[qi]) {
					t.Errorf("%s/%s session %s: %d frames, want %d", ch.name, queries[qi], sess, len(fs), len(want[qi]))
					continue
				}
				// Frames from one session arrive in Seq order relative to
				// each other, but interleave with other sessions; sort by
				// the per-subscription Seq to recover the document order
				// within the session.
				for i := 1; i < len(fs); i++ {
					for j := i; j > 0 && fs[j].Seq < fs[j-1].Seq; j-- {
						fs[j], fs[j-1] = fs[j-1], fs[j]
					}
				}
				for i, f := range fs {
					if f.Index != want[qi][i].Index || f.Name != want[qi][i].Name {
						t.Errorf("%s/%s session %s frame %d: (%d,%q), want (%d,%q)",
							ch.name, queries[qi], sess, i, f.Index, f.Name, want[qi][i].Index, want[qi][i].Name)
					}
				}
			}
			// No extra frames should be pending.
			select {
			case f := <-st.frames:
				t.Errorf("%s/%s: unexpected extra frame %+v", ch.name, queries[qi], f)
			default:
			}
		}
	}

	// Subscription info reflects the accumulated hits.
	info, err := c.Subscription(ctx, subs["shared"][1].id)
	if err != nil {
		t.Fatalf("subscription info: %v", err)
	}
	if wantHits := int64(ingests * len(want[1])); info.Hits != wantHits {
		t.Errorf("sub hits = %d, want %d", info.Hits, wantHits)
	}

	stopReaders()
	readers.Wait()
}

// TestGracefulShutdown proves the drain contract: an in-flight ingest runs
// to completion, new API requests get 503 + Retry-After, result streams end
// after flushing, and Shutdown returns once everything is done.
func TestGracefulShutdown(t *testing.T) {
	s, c, ts := newTestServer(t, server.Config{})
	ctx := context.Background()

	info, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "ch", Query: `_*.a[b].c`})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	frames := make(chan server.Frame, 16)
	readerDone := make(chan error, 1)
	go func() {
		readerDone <- c.Results(ctx, info.ID, func(f server.Frame) error {
			frames <- f
			return nil
		})
	}()

	// Start an ingest whose body we control: write the first half, leave
	// the request in flight.
	pr, pw := io.Pipe()
	type ingestResult struct {
		sum server.IngestSummary
		err error
	}
	ingDone := make(chan ingestResult, 1)
	go func() {
		sum, err := c.Ingest(ctx, "ch", pr)
		ingDone <- ingestResult{sum, err}
	}()
	if _, err := io.WriteString(pw, `<a><a><c>first</c></a>`); err != nil {
		t.Fatalf("write: %v", err)
	}
	waitFor(t, func() bool { return s.Metrics().SessionsActive.Load() == 1 }, "session active")

	// Drain in the background; it must block on the in-flight session.
	shutDone := make(chan error, 1)
	go func() { shutDone <- s.Shutdown(context.Background()) }()
	waitFor(t, func() bool { return s.Draining() }, "draining flag")

	// New API work is refused with 503 + Retry-After while draining.
	resp, err := ts.Client().Post(ts.URL+"/v1/subscriptions", "application/json",
		strings.NewReader(`{"channel":"ch","query":"a"}`))
	if err != nil {
		t.Fatalf("post during drain: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("subscribe during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 during drain missing Retry-After")
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if c.Ready(ctx) {
		t.Errorf("Ready() = true while draining")
	}
	if !c.Healthy(ctx) {
		t.Errorf("Healthy() = false while draining")
	}
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned %v with a session in flight", err)
	default:
	}

	// Finish the document: the in-flight session completes and reports its
	// answer, then the drain finishes.
	if _, err := io.WriteString(pw, `<b/><c>second</c></a>`); err != nil {
		t.Fatalf("write: %v", err)
	}
	pw.Close()
	res := <-ingDone
	if res.err != nil {
		t.Fatalf("in-flight ingest failed during drain: %v", res.err)
	}
	if res.sum.Matches != 1 {
		t.Errorf("in-flight ingest matches = %d, want 1", res.sum.Matches)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}

	// The result stream flushed the session's frame and ended cleanly.
	if err := <-readerDone; err != nil {
		t.Errorf("results stream after drain: %v", err)
	}
	select {
	case f := <-frames:
		if f.Index != 5 || f.Name != "c" {
			t.Errorf("frame = (%d,%q), want (5,%q)", f.Index, f.Name, "c")
		}
	default:
		t.Errorf("no frame flushed before the stream ended")
	}

	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestShutdownDeadlineAbortsSessions proves the hard path: when the drain
// context expires, stuck sessions are aborted through their contexts and
// Shutdown returns the context error after they unwind.
func TestShutdownDeadlineAbortsSessions(t *testing.T) {
	s, c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "ch", Query: `_*.c`}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	pr, pw := io.Pipe()
	defer pw.Close()
	ingDone := make(chan error, 1)
	go func() {
		_, err := c.Ingest(ctx, "ch", pr)
		ingDone <- err
	}()
	io.WriteString(pw, `<a><c/>`)
	waitFor(t, func() bool { return s.Metrics().SessionsActive.Load() == 1 }, "session active")

	dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(dctx); err != context.DeadlineExceeded {
		t.Errorf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	select {
	case err := <-ingDone:
		if err == nil {
			t.Errorf("stuck ingest succeeded, want an abort error")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("aborted ingest did not return")
	}
	if got := s.Metrics().SessionsActive.Load(); got != 0 {
		t.Errorf("sessions active after hard shutdown = %d, want 0", got)
	}
}

// TestAdmissionLimits proves every limit sheds load with 429 + Retry-After.
func TestAdmissionLimits(t *testing.T) {
	s, c, ts := newTestServer(t, server.Config{Limits: server.Limits{
		MaxChannels:                1,
		MaxSubscriptionsPerChannel: 1,
		MaxSessions:                1,
	}})
	ctx := context.Background()

	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "only", Query: `_*.c`}); err != nil {
		t.Fatalf("first subscribe: %v", err)
	}

	wantLimited := func(t *testing.T, err error, what string) {
		t.Helper()
		apiErr, ok := err.(*client.APIError)
		if !ok {
			t.Fatalf("%s: error %v, want *client.APIError", what, err)
		}
		if apiErr.Status != http.StatusTooManyRequests {
			t.Errorf("%s: status %d, want 429", what, apiErr.Status)
		}
		if apiErr.RetryAfter <= 0 {
			t.Errorf("%s: 429 missing Retry-After", what)
		}
		if !apiErr.Temporary() {
			t.Errorf("%s: Temporary() = false for 429", what)
		}
	}

	// Per-channel subscription cap.
	_, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "only", Query: `a`})
	wantLimited(t, err, "second subscription on channel")

	// Channel cap.
	_, err = c.Subscribe(ctx, server.SubscribeRequest{Channel: "other", Query: `a`})
	wantLimited(t, err, "second channel")

	// Session cap: hold one ingest open, refuse the next.
	pr, pw := io.Pipe()
	ingDone := make(chan error, 1)
	go func() {
		_, err := c.Ingest(ctx, "only", pr)
		ingDone <- err
	}()
	io.WriteString(pw, `<a>`)
	waitFor(t, func() bool { return s.Metrics().SessionsActive.Load() == 1 }, "session active")
	_, err = c.IngestString(ctx, "only", fig1Doc)
	wantLimited(t, err, "second session")
	io.WriteString(pw, `</a>`)
	pw.Close()
	if err := <-ingDone; err != nil {
		t.Fatalf("held ingest: %v", err)
	}

	// The sheds are visible on /metrics.
	body := httpGet(t, ts, "/metrics")
	if !strings.Contains(body, "spex_server_rejected_total 3") {
		t.Errorf("/metrics missing spex_server_rejected_total 3:\n%s", grepLines(body, "rejected"))
	}
	if s.Metrics().RejectedTotal.Load() != 3 {
		t.Errorf("RejectedTotal = %d, want 3", s.Metrics().RejectedTotal.Load())
	}
}

// TestEngineConflict: a channel's engine binds at creation; a conflicting
// later subscription is refused with 409.
func TestEngineConflict(t *testing.T) {
	_, c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "ch", Query: `a`, Engine: "shared"}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	_, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "ch", Query: `b`, Engine: "parallel"})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Status != http.StatusConflict {
		t.Fatalf("conflicting engine: error %v, want 409", err)
	}
	// Same engine (and no engine) is fine.
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "ch", Query: `b`, Engine: "shared"}); err != nil {
		t.Errorf("matching engine refused: %v", err)
	}
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "ch", Query: `c`}); err != nil {
		t.Errorf("engine-less subscribe refused: %v", err)
	}
}

// TestBackpressure: with a 1-frame buffer and no attached reader, a hit-
// heavy session blocks on its subscription's queue until the ingest deadline
// aborts it with 503 — the slow consumer stalls its own channel only.
func TestBackpressure(t *testing.T) {
	s, c, _ := newTestServer(t, server.Config{Limits: server.Limits{
		SubscriptionBuffer: 1,
		IngestTimeout:      300 * time.Millisecond,
	}})
	ctx := context.Background()
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "slow", Query: `_*.c`}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	// Another channel with an attached reader must be unaffected.
	fast, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "fast", Query: `_*.c`})
	if err != nil {
		t.Fatalf("subscribe fast: %v", err)
	}
	readerCtx, stopReader := context.WithCancel(ctx)
	defer stopReader()
	go c.Results(readerCtx, fast.ID, func(server.Frame) error { return nil })

	// A document with enough answers (and trailing events) that the stalled
	// queue is hit early and the cancellation stride check fires after.
	var doc strings.Builder
	doc.WriteString(`<a>`)
	for range 400 {
		doc.WriteString(`<c/>`)
	}
	doc.WriteString(`</a>`)

	_, err = c.IngestString(ctx, "slow", doc.String())
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("stalled ingest: error %v, want *client.APIError", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("stalled ingest: status %d, want 503", apiErr.Status)
	}
	if apiErr.RetryAfter <= 0 {
		t.Errorf("stalled ingest: 503 missing Retry-After")
	}
	if got := s.Metrics().SessionsFailed.Load(); got != 1 {
		t.Errorf("SessionsFailed = %d, want 1", got)
	}

	// The healthy channel still flows.
	sum, err := c.IngestString(ctx, "fast", doc.String())
	if err != nil {
		t.Fatalf("fast ingest alongside stalled channel: %v", err)
	}
	if sum.Matches != 400 {
		t.Errorf("fast matches = %d, want 400", sum.Matches)
	}
}

// TestUnsubscribeMidStream: removing a subscription ends its result stream
// after flushing, and later sessions drop its frames without error.
func TestUnsubscribeMidStream(t *testing.T) {
	s, c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()
	info, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "ch", Query: `_*.a[b].c`})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	keep, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "ch", Query: `_*.c`})
	if err != nil {
		t.Fatalf("subscribe keep: %v", err)
	}
	var got []server.Frame
	readerDone := make(chan error, 1)
	go func() {
		readerDone <- c.Results(ctx, info.ID, func(f server.Frame) error {
			got = append(got, f)
			return nil
		})
	}()

	if _, err := c.IngestString(ctx, "ch", fig1Doc); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := c.Unsubscribe(ctx, info.ID); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	if err := <-readerDone; err != nil {
		t.Errorf("results after unsubscribe: %v", err)
	}
	if len(got) != 1 || got[0].Index != 5 {
		t.Errorf("frames = %+v, want one frame at index 5", got)
	}
	if _, err := c.Subscription(ctx, info.ID); err == nil {
		t.Errorf("subscription info after unsubscribe: want 404")
	}

	// The channel still evaluates for the remaining subscription; the
	// removed one contributes nothing and drops nothing it shouldn't.
	sum, err := c.IngestString(ctx, "ch", fig1Doc)
	if err != nil {
		t.Fatalf("ingest after unsubscribe: %v", err)
	}
	if sum.Subscriptions != 1 || sum.Matches != 2 {
		t.Errorf("after unsubscribe: subs=%d matches=%d, want 1/2", sum.Subscriptions, sum.Matches)
	}
	_ = keep
	if got := s.Metrics().SubscriptionsActive.Load(); got != 1 {
		t.Errorf("SubscriptionsActive = %d, want 1", got)
	}
}

// TestHandlerHygiene sweeps the API's error paths through the shared
// httpcheck helper: every body has a Content-Type, not-found and bad-request
// bodies are JSON, load-shed responses carry Retry-After.
func TestHandlerHygiene(t *testing.T) {
	s, err := server.New(server.Config{Limits: server.Limits{MaxChannels: 1}})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	httpcheck.Do(t, h, "GET", "/healthz", "").
		WantStatus(t, 200).WantContentType(t, "text/plain")
	httpcheck.Do(t, h, "GET", "/readyz", "").
		WantStatus(t, 200).WantContentType(t, "text/plain")
	httpcheck.Do(t, h, "GET", "/metrics", "").
		WantStatus(t, 200).WantContentType(t, "text/plain").
		WantBodyContains(t, "spex_server_sessions_total")
	httpcheck.Do(t, h, "GET", "/v1/channels", "").
		WantStatus(t, 200).WantContentType(t, "application/json")
	httpcheck.Do(t, h, "POST", "/v1/subscriptions", `{"channel":"c"}`).
		WantStatus(t, 400).WantContentType(t, "application/json")
	httpcheck.Do(t, h, "POST", "/v1/subscriptions", `not json`).
		WantStatus(t, 400).WantContentType(t, "application/json")
	httpcheck.Do(t, h, "POST", "/v1/subscriptions", `{"channel":"c","query":"(("}`).
		WantStatus(t, 400).WantContentType(t, "application/json")
	httpcheck.Do(t, h, "POST", "/v1/subscriptions", `{"channel":"c","query":"a","engine":"warp"}`).
		WantStatus(t, 400).WantContentType(t, "application/json")
	httpcheck.Do(t, h, "GET", "/v1/subscriptions/nope", "").
		WantStatus(t, 404).WantContentType(t, "application/json")
	httpcheck.Do(t, h, "DELETE", "/v1/subscriptions/nope", "").
		WantStatus(t, 404).WantContentType(t, "application/json")
	httpcheck.Do(t, h, "POST", "/v1/channels/nope/ingest", fig1Doc).
		WantStatus(t, 404).WantContentType(t, "application/json")

	httpcheck.Do(t, h, "POST", "/v1/subscriptions", `{"channel":"c","query":"a"}`).
		WantStatus(t, 201).WantContentType(t, "application/json")
	httpcheck.Do(t, h, "POST", "/v1/subscriptions", `{"channel":"d","query":"a"}`).
		WantStatus(t, 429).WantContentType(t, "application/json").WantRetryAfter(t)

	// Malformed XML → 400.
	httpcheck.Do(t, h, "POST", "/v1/channels/c/ingest", `<a><b></a>`).
		WantStatus(t, 400).WantContentType(t, "application/json")
}

// TestMaxDocumentBytes: an oversized document is refused with 413.
func TestMaxDocumentBytes(t *testing.T) {
	_, c, _ := newTestServer(t, server.Config{Limits: server.Limits{MaxDocumentBytes: 16}})
	ctx := context.Background()
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "ch", Query: `_*.c`}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	_, err := c.IngestString(ctx, "ch", fig1Doc)
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: error %v, want 413", err)
	}
}

// TestMetricsEndpoint: the spex_server_* section (global and per-channel)
// rides the engine registry's /metrics endpoint.
func TestMetricsEndpoint(t *testing.T) {
	_, c, ts := newTestServer(t, server.Config{})
	ctx := context.Background()
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "m", Query: `_*.a[b].c`}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if _, err := c.IngestString(ctx, "m", fig1Doc); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	body := httpGet(t, ts, "/metrics")
	for _, want := range []string{
		"spex_server_sessions_total 1",
		"spex_server_subscriptions_active 1",
		"spex_server_channels_active 1",
		"spex_server_hits_total 1",
		"spex_server_draining 0",
		`spex_server_channel_subs{channel="m"} 1`,
		`spex_server_channel_hits_total{channel="m"} 1`,
		"spex_events_total", // the engine registry's own section is still there
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func httpGet(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	return string(b)
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return fmt.Sprint(strings.Join(out, "\n"))
}
