// Package client is the Go client for the spexd streaming query server.
// It wraps the /v1 HTTP API: register subscriptions, stream documents into
// channels, and consume progressive NDJSON result frames.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
)

// APIError is a non-2xx response from the server.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error string.
	Message string
	// RetryAfter is the server's Retry-After hint, zero when absent. 429
	// and 503 responses carry one — retry then instead of immediately.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("spexd: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// Temporary reports whether the request may succeed if retried (the
// load-shedding statuses).
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Client talks to one spexd server.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g. "http://127.0.0.1:8080").
// A nil http.Client uses http.DefaultClient.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// apiErr drains and converts a non-2xx response. The body is consumed either
// way so the connection returns to the pool.
func apiErr(resp *http.Response) error {
	defer resp.Body.Close()
	var body server.ErrorBody
	msg := ""
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil {
		msg = body.Error
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	e := &APIError{Status: resp.StatusCode, Message: msg}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

func (c *Client) doJSON(req *http.Request, want int, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return apiErr(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Subscribe registers a standing query and returns its subscription info.
func (c *Client) Subscribe(ctx context.Context, req server.SubscribeRequest) (server.SubscriptionInfo, error) {
	var buf strings.Builder
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return server.SubscriptionInfo{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/subscriptions", strings.NewReader(buf.String()))
	if err != nil {
		return server.SubscriptionInfo{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	var info server.SubscriptionInfo
	err = c.doJSON(hreq, http.StatusCreated, &info)
	return info, err
}

// Subscription fetches a subscription's current info.
func (c *Client) Subscription(ctx context.Context, id string) (server.SubscriptionInfo, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/subscriptions/"+id, nil)
	if err != nil {
		return server.SubscriptionInfo{}, err
	}
	var info server.SubscriptionInfo
	err = c.doJSON(hreq, http.StatusOK, &info)
	return info, err
}

// Unsubscribe removes a subscription; its attached result streams end after
// flushing what is queued.
func (c *Client) Unsubscribe(ctx context.Context, id string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/subscriptions/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent {
		return apiErr(resp)
	}
	resp.Body.Close()
	return nil
}

// Channels lists the server's channels.
func (c *Client) Channels(ctx context.Context) ([]server.ChannelInfo, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/channels", nil)
	if err != nil {
		return nil, err
	}
	var out []server.ChannelInfo
	err = c.doJSON(hreq, http.StatusOK, &out)
	return out, err
}

// Ingest streams an XML document from r into the named channel and returns
// the session summary once the server has evaluated it end to end. The
// server mints a stream trace id for the ingest (reported in the summary);
// to name the stream yourself, use IngestWithTrace.
func (c *Client) Ingest(ctx context.Context, channel string, r io.Reader) (server.IngestSummary, error) {
	return c.IngestWithTrace(ctx, channel, "", r)
}

// IngestWithTrace is Ingest with a caller-chosen stream trace id, sent as
// the X-Spex-Trace-Id header: the summary, every result frame of this
// ingest, and the engine's trace records carry it, correlating the stream
// end to end. Empty lets the server mint one.
func (c *Client) IngestWithTrace(ctx context.Context, channel, trace string, r io.Reader) (server.IngestSummary, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/channels/"+channel+"/ingest", r)
	if err != nil {
		return server.IngestSummary{}, err
	}
	hreq.Header.Set("Content-Type", "application/xml")
	if trace != "" {
		hreq.Header.Set(server.TraceHeader, trace)
	}
	var sum server.IngestSummary
	err = c.doJSON(hreq, http.StatusOK, &sum)
	return sum, err
}

// Sideload asks the server to evaluate a document that already sits in its
// side-load directory: file is a relative path under that directory, and
// workers selects the ingest mode (0 = serial zero-copy scan, positive =
// parallel chunk-scan with that many workers, negative = one per CPU). The
// document never crosses the wire — the server mmaps and scans it in place.
func (c *Client) Sideload(ctx context.Context, channel, file string, workers int) (server.IngestSummary, error) {
	body, err := json.Marshal(server.SideloadRequest{File: file, Workers: workers})
	if err != nil {
		return server.IngestSummary{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/channels/"+channel+"/sideload", bytes.NewReader(body))
	if err != nil {
		return server.IngestSummary{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	var sum server.IngestSummary
	err = c.doJSON(hreq, http.StatusOK, &sum)
	return sum, err
}

// IngestString is Ingest over an in-memory document.
func (c *Client) IngestString(ctx context.Context, channel, doc string) (server.IngestSummary, error) {
	return c.Ingest(ctx, channel, strings.NewReader(doc))
}

// Results attaches to a subscription's result stream and calls fn for every
// frame as it arrives. It returns nil when the stream ends server-side
// (unsubscribe or drain), ctx.Err() on cancellation, fn's error if fn fails,
// and the transport or API error otherwise.
func (c *Client) Results(ctx context.Context, id string, fn func(server.Frame) error) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/subscriptions/"+id+"/results", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var f server.Frame
		if err := json.Unmarshal(line, &f); err != nil {
			return fmt.Errorf("spexd: bad result frame: %w", err)
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}

// Healthy reports whether /healthz answers 200.
func (c *Client) Healthy(ctx context.Context) bool { return c.probe(ctx, "/healthz") }

// Ready reports whether /readyz answers 200 (false while draining).
func (c *Client) Ready(ctx context.Context) bool { return c.probe(ctx, "/readyz") }

func (c *Client) probe(ctx context.Context, path string) bool {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}
