package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

func TestParseEngineMerged(t *testing.T) {
	e, err := server.ParseEngine("merged")
	if err != nil {
		t.Fatalf("ParseEngine(merged): %v", err)
	}
	if e.Kind != server.EngineMerged {
		t.Fatalf("Kind = %v, want EngineMerged", e.Kind)
	}
	if got := e.String(); got != "merged" {
		t.Fatalf("String() = %q, want %q", got, "merged")
	}
	if _, err := server.ParseEngine("merged:2"); err == nil {
		t.Fatal("ParseEngine(merged:2): want shard-count error")
	}
}

// TestMergedEngineEndToEnd registers an overlapping corpus — duplicates, an
// equivalent-after-canonicalization pair, a contained pair and a statically
// unsatisfiable query — on a merged channel, ingests a document, and checks
// frames against direct evaluation plus the /debug/spex merged block.
func TestMergedEngineEndToEnd(t *testing.T) {
	_, c, ts := newTestServer(t, server.Config{})
	ctx := context.Background()

	queries := []string{
		`_*.a[b].c`,
		`_*.a[b].c`,  // exact duplicate
		`_*.a[b*].c`, // ≡ _*.a.c (nullable qualifier)
		`_*.c`,       // contains _*.a.c
		`a.b`,
		`c[@x="1" and @x="2"]`, // statically unsatisfiable
	}
	want := directMatches(t, queries, nil, fig1Doc)

	ids := make([]string, len(queries))
	for i, q := range queries {
		info, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "m", Query: q, Engine: "merged"})
		if err != nil {
			t.Fatalf("subscribe %q: %v", q, err)
		}
		if info.Engine != "merged" {
			t.Fatalf("engine = %q, want merged", info.Engine)
		}
		ids[i] = info.ID
	}

	// A second subscription naming a different engine must conflict.
	if _, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "m", Query: "a", Engine: "shared"}); err == nil {
		t.Fatal("engine mismatch on existing channel: want conflict error")
	}

	frames := make(map[string][]server.Frame)
	var mu sync.Mutex
	readerCtx, stopReaders := context.WithCancel(ctx)
	defer stopReaders()
	var readers sync.WaitGroup
	for _, id := range ids {
		readers.Add(1)
		go func() {
			defer readers.Done()
			_ = c.Results(readerCtx, id, func(f server.Frame) error {
				mu.Lock()
				frames[f.Sub] = append(frames[f.Sub], f)
				mu.Unlock()
				return nil
			})
		}()
	}

	sum, err := c.IngestString(ctx, "m", fig1Doc)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	var wantTotal int64
	for _, w := range want {
		wantTotal += int64(len(w))
	}
	if sum.Matches != wantTotal {
		t.Fatalf("ingest matches = %d, want %d", sum.Matches, wantTotal)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		total := 0
		for _, fs := range frames {
			total += len(fs)
		}
		mu.Unlock()
		if int64(total) == wantTotal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frames: got %d, want %d", total, wantTotal)
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	for i, id := range ids {
		fs := frames[id]
		if len(fs) != len(want[i]) {
			t.Fatalf("%q: %d frames, want %d", queries[i], len(fs), len(want[i]))
		}
		for j, f := range fs {
			if f.Index != want[i][j].Index || f.Name != want[i][j].Name {
				t.Fatalf("%q frame %d: (%d,%q), want (%d,%q)",
					queries[i], j, f.Index, f.Name, want[i][j].Index, want[i][j].Name)
			}
		}
	}
	mu.Unlock()

	// The merged block on /debug/spex reflects the standing corpus.
	resp, err := http.Get(ts.URL + "/debug/spex")
	if err != nil {
		t.Fatalf("debug: %v", err)
	}
	var info server.DebugInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("debug decode: %v", err)
	}
	resp.Body.Close()
	if len(info.Channels) != 1 || info.Channels[0].Merged == nil {
		t.Fatalf("debug channels: %+v", info.Channels)
	}
	dm := info.Channels[0].Merged
	if dm.Queries != len(queries) {
		t.Fatalf("merged queries = %d, want %d", dm.Queries, len(queries))
	}
	if dm.Pruned != 1 || len(dm.PrunedQueries) != 1 || dm.PrunedQueries[0] != ids[5] {
		t.Fatalf("pruned: %+v", dm)
	}
	// The exact duplicate collapses onto the original's sink.
	if dm.Collapsed != 1 {
		t.Fatalf("collapsed = %d, want 1", dm.Collapsed)
	}
	if dm.MergedTransducers >= dm.NaiveTransducers {
		t.Fatalf("no sharing: naive %d, merged %d", dm.NaiveTransducers, dm.MergedTransducers)
	}
	// _*.a[b*].c ≡ _*.a.c is contained in _*.c: at least one containment.
	if len(dm.Containments) == 0 {
		t.Fatalf("containments: %+v", dm)
	}

	// Retiring a subscription shrinks the merged plan.
	if err := c.Unsubscribe(ctx, ids[0]); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	resp, err = http.Get(ts.URL + "/debug/spex")
	if err != nil {
		t.Fatalf("debug: %v", err)
	}
	var after server.DebugInfo
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatalf("debug decode: %v", err)
	}
	resp.Body.Close()
	if got := after.Channels[0].Merged.Queries; got != len(queries)-1 {
		t.Fatalf("merged queries after retire = %d, want %d", got, len(queries)-1)
	}

	stopReaders()
	readers.Wait()
}

// TestMergedSubscribeRetireMidStream exercises the incremental compiler
// under -race: ingests stream continuously on a merged channel while
// subscriptions are added and retired concurrently. Every session snapshots
// the channel at its start, so each pass must still deliver a consistent
// frame set for the subscriptions it saw.
func TestMergedSubscribeRetireMidStream(t *testing.T) {
	_, c, _ := newTestServer(t, server.Config{})
	ctx := context.Background()

	// A standing anchor subscription keeps the channel alive throughout.
	anchor, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "m", Query: "_*.c", Engine: "merged"})
	if err != nil {
		t.Fatalf("anchor subscribe: %v", err)
	}

	doc := fig1Doc
	stop := make(chan struct{})
	var ingester, churners sync.WaitGroup

	// Ingest loop: streams documents until the churn is done.
	ingester.Add(1)
	go func() {
		defer ingester.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.IngestString(ctx, "m", doc); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
	}()

	// Churn loops: subscribe an overlapping query, then retire it.
	churn := []string{`_*.a[b].c`, `_*.c`, `a.b`, `_*.a[b*].c`}
	for _, q := range churn {
		churners.Add(1)
		go func() {
			defer churners.Done()
			for i := 0; i < 25; i++ {
				info, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "m", Query: q})
				if err != nil {
					t.Errorf("subscribe %q: %v", q, err)
					return
				}
				if err := c.Unsubscribe(ctx, info.ID); err != nil {
					t.Errorf("unsubscribe %q: %v", q, err)
					return
				}
			}
		}()
	}

	churners.Wait()
	close(stop)
	ingester.Wait()

	// The anchor survived the churn and the channel still evaluates.
	sum, err := c.IngestString(ctx, "m", doc)
	if err != nil {
		t.Fatalf("final ingest: %v", err)
	}
	if sum.Matches == 0 {
		t.Fatal("final ingest matched nothing")
	}
	if _, err := c.Subscription(ctx, anchor.ID); err != nil {
		t.Fatalf("anchor info: %v", err)
	}
}
