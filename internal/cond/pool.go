package cond

// QualID identifies one qualifier construct of a compiled expression.
// Qualifier ids are assigned at network-construction time; the variables a
// pool allocates at evaluation time each belong to one qualifier.
type QualID int

// Pool allocates condition variables and records which qualifier each
// belongs to, plus the static nesting relation between qualifiers (needed by
// the variable-filter for nested qualifiers: the witness condition of an
// instance of q may mention variables of qualifiers nested inside q's
// condition expression).
type Pool struct {
	next    VarID
	quals   []QualID   // quals[v] = qualifier owning variable v
	free    []VarID    // released ids available for reuse
	vcache  []*Formula // cached single-variable formulas, indexed by id
	inside  [][]QualID
	insideM []map[QualID]bool
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// DeclareQualifier registers a new qualifier and returns its id. nested
// lists the qualifier ids syntactically nested inside this qualifier's
// condition expression (transitively); when the condition has not been
// compiled yet, declare with nil and call SetNested afterwards.
func (p *Pool) DeclareQualifier(nested []QualID) QualID {
	id := QualID(len(p.inside))
	set := make(map[QualID]bool, len(nested)+1)
	set[id] = true
	for _, n := range nested {
		set[n] = true
	}
	p.inside = append(p.inside, append([]QualID(nil), nested...))
	p.insideM = append(p.insideM, set)
	return id
}

// SetNested records the qualifiers nested inside q's condition expression,
// for qualifiers declared before their condition was compiled.
func (p *Pool) SetNested(q QualID, nested []QualID) {
	set := make(map[QualID]bool, len(nested)+1)
	set[q] = true
	for _, n := range nested {
		set[n] = true
	}
	p.inside[q] = append([]QualID(nil), nested...)
	p.insideM[q] = set
}

// Qualifiers returns the number of declared qualifiers.
func (p *Pool) Qualifiers() int { return len(p.inside) }

// Fresh allocates a condition variable belonging to qualifier q, reusing a
// released id when one is available. Reuse keeps the id space — and
// therefore every id-indexed structure — bounded by the number of
// simultaneously live instances (at most the stream depth times the number
// of qualifiers), which is what makes evaluation of unbounded streams run
// in bounded memory.
func (p *Pool) Fresh(q QualID) VarID {
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		p.quals[v] = q
		return v
	}
	v := p.next
	p.next++
	p.quals = append(p.quals, q)
	return v
}

// Var returns the single-variable formula for v, cached per id. Since ids
// are recycled, the cache stays as small as the live-instance count.
func (p *Pool) Var(v VarID) *Formula {
	for int(v) >= len(p.vcache) {
		p.vcache = append(p.vcache, nil)
	}
	if f := p.vcache[v]; f != nil {
		return f
	}
	f := Var(v)
	p.vcache[v] = f
	return f
}

// Release returns a variable id to the pool. Callers must guarantee the
// variable can no longer occur in any formula — the variable-creator
// releases an instance after emitting its scope-exit finalization, at which
// point no transducer stack, candidate or binding can mention it anymore.
func (p *Pool) Release(v VarID) {
	p.free = append(p.free, v)
}

// Allocated returns the number of variables allocated so far.
func (p *Pool) Allocated() int { return int(p.next) }

// Live returns the number of variables currently live: allocated and not yet
// released. For well-behaved streams this is bounded by depth × qualifiers
// (the invariant behind the paper's space theorem); the resource governor
// polls it to detect runs where the invariant is being defeated.
func (p *Pool) Live() int { return int(p.next) - len(p.free) }

// QualOf returns the qualifier owning variable v.
func (p *Pool) QualOf(v VarID) QualID { return p.quals[v] }

// BelongsTo reports whether v is a variable of qualifier q itself.
func (p *Pool) BelongsTo(v VarID, q QualID) bool { return p.quals[v] == q }

// WithinSubtree reports whether v belongs to q or to a qualifier nested
// inside q's condition expression. The positive variable-filter VF(q+)
// keeps exactly these variables.
func (p *Pool) WithinSubtree(v VarID, q QualID) bool {
	return p.insideM[q][p.quals[v]]
}

// Reset discards all allocated variables but keeps the qualifier
// declarations; a compiled network calls it between evaluations so variable
// ids stay small.
func (p *Pool) Reset() {
	p.next = 0
	p.quals = p.quals[:0]
	p.free = p.free[:0]
}
