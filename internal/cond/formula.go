// Package cond implements the condition formulas of the SPEX paper (§III,
// Definition 2): boolean combinations of condition variables, each variable
// standing for one instance of a qualifier. Activation messages carry such
// formulas through the transducer network; the output transducer resolves
// them as condition determination messages arrive.
//
// Formulas are immutable trees over {true, false, variable, ∧, ∨}. The
// constructors normalize: nested same-operator nodes are flattened, boolean
// constants absorbed, and duplicate operands eliminated — the normalization
// the paper relies on so that "a formula contains at most one reference to a
// condition variable" (§III.4) and that yields the Σnᵢ ≤ d bound of Remark
// V.1. Raw (non-deduplicating) constructors exist for the ablation
// benchmarks.
package cond

import (
	"sort"
	"strconv"
	"strings"
)

// VarID identifies a condition variable. Variables are allocated by a Pool;
// each belongs to the qualifier whose instance it represents.
type VarID uint32

// Op is a formula node operator.
type Op uint8

// Formula node operators.
const (
	OpTrue Op = iota
	OpFalse
	OpVar
	OpAnd
	OpOr
)

// Formula is an immutable boolean formula. The zero value is not valid; use
// the constructors. Two normalized formulas are semantically equal if their
// Keys are equal.
type Formula struct {
	op   Op
	v    VarID
	kids []*Formula
	key  string
	size int
}

var (
	trueF  = &Formula{op: OpTrue, key: "T", size: 1}
	falseF = &Formula{op: OpFalse, key: "F", size: 1}
)

// True returns the constant-true formula.
func True() *Formula { return trueF }

// False returns the constant-false formula.
func False() *Formula { return falseF }

// Var returns the formula consisting of the single variable v.
func Var(v VarID) *Formula {
	return &Formula{op: OpVar, v: v, key: "v" + strconv.FormatUint(uint64(v), 10), size: 1}
}

// Op returns the operator of the root node.
func (f *Formula) Op() Op { return f.op }

// IsTrue reports whether f is the constant true.
func (f *Formula) IsTrue() bool { return f.op == OpTrue }

// IsFalse reports whether f is the constant false.
func (f *Formula) IsFalse() bool { return f.op == OpFalse }

// Determined reports whether f is a boolean constant.
func (f *Formula) Determined() bool { return f.op == OpTrue || f.op == OpFalse }

// Key returns a canonical string key: normalized formulas with equal keys
// are structurally identical.
func (f *Formula) Key() string { return f.key }

// Size returns the paper's formula size σ: the number of leaves (variable
// occurrences, with constants counting one).
func (f *Formula) Size() int { return f.size }

// Visit calls fn for every distinct variable occurrence in f.
func (f *Formula) Visit(fn func(VarID)) {
	switch f.op {
	case OpVar:
		fn(f.v)
	case OpAnd, OpOr:
		for _, k := range f.kids {
			k.Visit(fn)
		}
	}
}

// VarSet returns the set of variables occurring in f.
func (f *Formula) VarSet() map[VarID]bool {
	set := make(map[VarID]bool)
	f.Visit(func(v VarID) { set[v] = true })
	return set
}

// HasVar reports whether v occurs in f.
func (f *Formula) HasVar(v VarID) bool {
	switch f.op {
	case OpVar:
		return f.v == v
	case OpAnd, OpOr:
		for _, k := range f.kids {
			if k.HasVar(v) {
				return true
			}
		}
	}
	return false
}

// String renders f in the paper's notation, e.g. "(v1∨v2)∧v3".
func (f *Formula) String() string {
	var b strings.Builder
	f.render(&b, 0)
	return b.String()
}

func (f *Formula) render(b *strings.Builder, parentPrec int) {
	prec := 0
	switch f.op {
	case OpTrue:
		b.WriteString("true")
		return
	case OpFalse:
		b.WriteString("false")
		return
	case OpVar:
		b.WriteString("v")
		b.WriteString(strconv.FormatUint(uint64(f.v), 10))
		return
	case OpAnd:
		prec = 2
	case OpOr:
		prec = 1
	}
	sep := "∧"
	if f.op == OpOr {
		sep = "∨"
	}
	needParens := prec < parentPrec
	if needParens {
		b.WriteByte('(')
	}
	for i, k := range f.kids {
		if i > 0 {
			b.WriteString(sep)
		}
		k.render(b, prec)
	}
	if needParens {
		b.WriteByte(')')
	}
}

// And returns the normalized conjunction of the given formulas.
func And(fs ...*Formula) *Formula { return combine(OpAnd, true, fs) }

// Or returns the normalized disjunction of the given formulas.
func Or(fs ...*Formula) *Formula { return combine(OpOr, true, fs) }

// RawAnd is And without duplicate-operand elimination; used by the
// normalization ablation. Constants are still absorbed (otherwise formulas
// would be dominated by "true" leaves rather than by the duplication the
// ablation studies).
func RawAnd(fs ...*Formula) *Formula { return combine(OpAnd, false, fs) }

// RawOr is Or without duplicate-operand elimination.
func RawOr(fs ...*Formula) *Formula { return combine(OpOr, false, fs) }

// combine builds an n-ary ∧ or ∨ node: it flattens same-operator children,
// absorbs constants and (when dedupe is set) removes duplicate operands.
func combine(op Op, dedupe bool, fs []*Formula) *Formula {
	unit, zero := trueF, falseF
	if op == OpOr {
		unit, zero = falseF, trueF
	}
	var kids []*Formula
	var flatten func(f *Formula) bool // returns false when result is the absorbing constant
	flatten = func(f *Formula) bool {
		switch {
		case f == zero:
			return false
		case f == unit:
			return true
		case f.op == op:
			for _, k := range f.kids {
				if !flatten(k) {
					return false
				}
			}
			return true
		default:
			kids = append(kids, f)
			return true
		}
	}
	for _, f := range fs {
		if f == nil {
			continue
		}
		if !flatten(f) {
			return zero
		}
	}
	if len(kids) == 0 {
		return unit
	}
	if dedupe {
		kids = dedupeByKey(kids)
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return newNode(op, kids, dedupe)
}

// dedupeByKey sorts children by canonical key and removes exact duplicates.
// Sorting also canonicalizes operand order so that commutatively equal
// formulas share one key.
func dedupeByKey(kids []*Formula) []*Formula {
	sorted := make([]*Formula, len(kids))
	copy(sorted, kids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].key < sorted[j].key })
	out := sorted[:0]
	var prev string
	for i, k := range sorted {
		if i > 0 && k.key == prev {
			continue
		}
		out = append(out, k)
		prev = k.key
	}
	return out
}

func newNode(op Op, kids []*Formula, canonical bool) *Formula {
	var b strings.Builder
	if op == OpAnd {
		b.WriteString("(&")
	} else {
		b.WriteString("(|")
	}
	size := 0
	for _, k := range kids {
		b.WriteByte(' ')
		b.WriteString(k.key)
		size += k.size
	}
	b.WriteByte(')')
	return &Formula{op: op, kids: kids, key: b.String(), size: size}
}

// Assign substitutes val for every occurrence of variable v in f and
// simplifies. val is typically True() or False(), but may be any formula
// (nested-qualifier determinations bind a variable to the formula of its
// witnesses).
func (f *Formula) Assign(v VarID, val *Formula) *Formula {
	switch f.op {
	case OpTrue, OpFalse:
		return f
	case OpVar:
		if f.v == v {
			return val
		}
		return f
	case OpAnd, OpOr:
		if !f.HasVar(v) {
			return f
		}
		kids := make([]*Formula, len(f.kids))
		for i, k := range f.kids {
			kids[i] = k.Assign(v, val)
		}
		return combine(f.op, true, kids)
	default:
		return f
	}
}

// Restrict replaces every variable for which keep returns false by true and
// simplifies. The variable-filter transducer VF(q+) uses it to drop from
// condition formulas "all other variables that do not belong to q" (§III.5.3).
func (f *Formula) Restrict(keep func(VarID) bool) *Formula {
	switch f.op {
	case OpTrue, OpFalse:
		return f
	case OpVar:
		if keep(f.v) {
			return f
		}
		return trueF
	case OpAnd, OpOr:
		kids := make([]*Formula, len(f.kids))
		for i, k := range f.kids {
			kids[i] = k.Restrict(keep)
		}
		return combine(f.op, true, kids)
	default:
		return f
	}
}

// Eval evaluates f under the partial assignment given by lookup, which
// returns the value of a variable or Unknown. The result is three-valued.
func (f *Formula) Eval(lookup func(VarID) Value) Value {
	switch f.op {
	case OpTrue:
		return ValueTrue
	case OpFalse:
		return ValueFalse
	case OpVar:
		return lookup(f.v)
	case OpAnd:
		result := ValueTrue
		for _, k := range f.kids {
			switch k.Eval(lookup) {
			case ValueFalse:
				return ValueFalse
			case ValueUnknown:
				result = ValueUnknown
			}
		}
		return result
	case OpOr:
		result := ValueFalse
		for _, k := range f.kids {
			switch k.Eval(lookup) {
			case ValueTrue:
				return ValueTrue
			case ValueUnknown:
				result = ValueUnknown
			}
		}
		return result
	default:
		return ValueUnknown
	}
}

// Value is a three-valued truth value.
type Value uint8

// Truth values.
const (
	ValueUnknown Value = iota
	ValueTrue
	ValueFalse
)

// String returns "unknown", "true" or "false".
func (v Value) String() string {
	switch v {
	case ValueTrue:
		return "true"
	case ValueFalse:
		return "false"
	default:
		return "unknown"
	}
}

// DNF returns f as a disjunction of conjunctions of variables: each element
// is one disjunct, given as a sorted set of variable ids. It returns
// (nil, true) for constant true (one empty disjunct is represented as an
// empty conjunction in the slice) — precisely: for constant true the result
// is [][]VarID{{}} and for constant false it is nil. DNF is used by the
// variable-determinant transducer to extract per-instance witness
// conditions; SPEX formulas stay small (bounded by §V), so the worst-case
// blow-up is acceptable there.
func (f *Formula) DNF() [][]VarID {
	switch f.op {
	case OpTrue:
		return [][]VarID{{}}
	case OpFalse:
		return nil
	case OpVar:
		return [][]VarID{{f.v}}
	case OpOr:
		var out [][]VarID
		for _, k := range f.kids {
			out = append(out, k.DNF()...)
		}
		return dedupeDisjuncts(out)
	case OpAnd:
		out := [][]VarID{{}}
		for _, k := range f.kids {
			kd := k.DNF()
			if len(kd) == 0 {
				return nil
			}
			next := make([][]VarID, 0, len(out)*len(kd))
			for _, a := range out {
				for _, b := range kd {
					next = append(next, mergeVars(a, b))
				}
			}
			out = next
		}
		return dedupeDisjuncts(out)
	default:
		return nil
	}
}

func mergeVars(a, b []VarID) []VarID {
	out := make([]VarID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func dedupeDisjuncts(ds [][]VarID) [][]VarID {
	if len(ds) <= 1 {
		return ds
	}
	seen := make(map[string]bool, len(ds))
	out := ds[:0]
	var b strings.Builder
	for _, d := range ds {
		b.Reset()
		for _, v := range d {
			b.WriteString(strconv.FormatUint(uint64(v), 10))
			b.WriteByte(',')
		}
		key := b.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}

// FromVars builds a conjunction of the given variables; a convenience for
// tests and the determinant transducer.
func FromVars(vars []VarID) *Formula {
	fs := make([]*Formula, len(vars))
	for i, v := range vars {
		fs[i] = Var(v)
	}
	return And(fs...)
}
