package cond

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestConstructorsSimplify(t *testing.T) {
	v1, v2 := Var(1), Var(2)
	tests := []struct {
		got  *Formula
		want string
	}{
		{And(), "true"},
		{Or(), "false"},
		{And(True(), v1), "v1"},
		{And(False(), v1), "false"},
		{Or(True(), v1), "true"},
		{Or(False(), v1), "v1"},
		{And(v1, v1), "v1"},
		{Or(v1, v1), "v1"},
		{And(v1, v2), "v1∧v2"},
		{Or(v1, v2), "v1∨v2"},
		{Or(v1, Or(v2, v1)), "v1∨v2"},
		{And(And(v1, v2), v1), "v1∧v2"},
		{Or(And(v1, v2), And(v2, v1)), "v1∧v2"},
	}
	for _, tc := range tests {
		if got := tc.got.String(); got != tc.want {
			t.Errorf("got %s, want %s", got, tc.want)
		}
	}
}

func TestKeyCanonical(t *testing.T) {
	a := Or(And(Var(1), Var(2)), Var(3))
	b := Or(Var(3), And(Var(2), Var(1)))
	if a.Key() != b.Key() {
		t.Fatalf("commutative variants have different keys: %q vs %q", a.Key(), b.Key())
	}
	c := Or(Var(3), And(Var(2), Var(4)))
	if a.Key() == c.Key() {
		t.Fatal("distinct formulas share a key")
	}
}

func TestRawKeepsDuplicates(t *testing.T) {
	v1 := Var(1)
	f := RawOr(v1, v1)
	if f.Size() != 2 {
		t.Fatalf("RawOr dropped the duplicate: %s (size %d)", f, f.Size())
	}
	g := Or(v1, v1)
	if g.Size() != 1 {
		t.Fatalf("Or kept the duplicate: %s", g)
	}
}

func TestAssign(t *testing.T) {
	f := And(Var(1), Or(Var(2), Var(3)))
	if got := f.Assign(1, False()); !got.IsFalse() {
		t.Errorf("assign v1=false: got %s", got)
	}
	if got := f.Assign(2, True()); got.String() != "v1" {
		t.Errorf("assign v2=true: got %s", got)
	}
	if got := f.Assign(2, False()).String(); got != "v1∧v3" {
		t.Errorf("assign v2=false: got %s", got)
	}
	// Assignment by a formula (nested-qualifier binding).
	if got := f.Assign(1, Var(9)).String(); got != "v9∧(v2∨v3)" && got != "(v2∨v3)∧v9" {
		t.Errorf("assign v1=v9: got %s", got)
	}
	if got := f.Assign(7, True()); got != f {
		t.Errorf("assigning an absent variable must be identity")
	}
}

func TestRestrict(t *testing.T) {
	f := And(Var(1), Or(Var(2), Var(3)))
	keepOdd := func(v VarID) bool { return v%2 == 1 }
	if got := f.Restrict(keepOdd); got.String() != "v1" {
		// v2 → true makes the disjunction true.
		t.Errorf("got %s", got)
	}
	keepNone := func(VarID) bool { return false }
	if got := f.Restrict(keepNone); !got.IsTrue() {
		t.Errorf("restrict-all: got %s", got)
	}
}

func TestEvalThreeValued(t *testing.T) {
	f := And(Var(1), Or(Var(2), Var(3)))
	lookup := func(m map[VarID]Value) func(VarID) Value {
		return func(v VarID) Value { return m[v] }
	}
	if got := f.Eval(lookup(map[VarID]Value{})); got != ValueUnknown {
		t.Errorf("all unknown: got %s", got)
	}
	if got := f.Eval(lookup(map[VarID]Value{1: ValueFalse})); got != ValueFalse {
		t.Errorf("v1 false: got %s", got)
	}
	if got := f.Eval(lookup(map[VarID]Value{1: ValueTrue, 2: ValueTrue})); got != ValueTrue {
		t.Errorf("v1,v2 true: got %s", got)
	}
	if got := f.Eval(lookup(map[VarID]Value{1: ValueTrue})); got != ValueUnknown {
		t.Errorf("v1 true only: got %s", got)
	}
}

func TestDNF(t *testing.T) {
	f := And(Or(Var(1), Var(2)), Var(3))
	got := f.DNF()
	want := [][]VarID{{1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if d := True().DNF(); len(d) != 1 || len(d[0]) != 0 {
		t.Fatalf("true DNF: %v", d)
	}
	if d := False().DNF(); d != nil {
		t.Fatalf("false DNF: %v", d)
	}
}

func TestVisitAndVarSet(t *testing.T) {
	f := And(Var(1), Or(Var(2), Var(1)))
	set := f.VarSet()
	if len(set) != 2 || !set[1] || !set[2] {
		t.Fatalf("VarSet: %v", set)
	}
	if !f.HasVar(2) || f.HasVar(5) {
		t.Fatal("HasVar wrong")
	}
}

// randFormula builds a random formula over variables 0..4.
func randFormula(r *rand.Rand, depth int) *Formula {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(6) {
		case 0:
			return True()
		case 1:
			return False()
		default:
			return Var(VarID(r.Intn(5)))
		}
	}
	a := randFormula(r, depth-1)
	b := randFormula(r, depth-1)
	if r.Intn(2) == 0 {
		return And(a, b)
	}
	return Or(a, b)
}

// TestPropertyAssignAgreesWithEval: for any formula and total assignment,
// repeatedly assigning constants yields the same constant Eval computes.
func TestPropertyAssignAgreesWithEval(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	prop := func(seed int64, bits uint8) bool {
		r := rand.New(rand.NewSource(seed))
		f := randFormula(r, 4)
		vals := map[VarID]Value{}
		g := f
		for v := VarID(0); v < 5; v++ {
			val := ValueFalse
			c := False()
			if bits&(1<<v) != 0 {
				val = ValueTrue
				c = True()
			}
			vals[v] = val
			g = g.Assign(v, c)
		}
		if !g.Determined() {
			return false
		}
		want := f.Eval(func(v VarID) Value { return vals[v] })
		return (want == ValueTrue) == g.IsTrue()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDNFEquivalent: the DNF agrees with Eval on every assignment.
func TestPropertyDNFEquivalent(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randFormula(r, 3)
		dnf := f.DNF()
		for bits := 0; bits < 32; bits++ {
			val := func(v VarID) Value {
				if bits&(1<<v) != 0 {
					return ValueTrue
				}
				return ValueFalse
			}
			want := f.Eval(val) == ValueTrue
			got := false
			for _, disjunct := range dnf {
				all := true
				for _, v := range disjunct {
					if val(v) != ValueTrue {
						all = false
						break
					}
				}
				if all {
					got = true
					break
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySizeNormalized: normalized pure-disjunctions of one variable
// stay size 1 no matter how often combined (the Remark V.1 behaviour).
func TestPropertySizeNormalized(t *testing.T) {
	f := Var(1)
	for i := 0; i < 100; i++ {
		f = Or(f, Var(1))
	}
	if f.Size() != 1 {
		t.Fatalf("normalized size grew to %d", f.Size())
	}
	g := Var(1)
	for i := 0; i < 10; i++ {
		g = RawOr(g, Var(1))
	}
	if g.Size() != 11 {
		t.Fatalf("raw size: got %d, want 11", g.Size())
	}
}

func TestPool(t *testing.T) {
	p := NewPool()
	inner := p.DeclareQualifier(nil)
	outer := p.DeclareQualifier([]QualID{inner})
	other := p.DeclareQualifier(nil)
	vi := p.Fresh(inner)
	vo := p.Fresh(outer)
	vx := p.Fresh(other)
	if !p.BelongsTo(vi, inner) || p.BelongsTo(vi, outer) {
		t.Fatal("BelongsTo wrong")
	}
	if !p.WithinSubtree(vi, outer) || !p.WithinSubtree(vo, outer) {
		t.Fatal("nested variable must be within the outer qualifier's subtree")
	}
	if p.WithinSubtree(vx, outer) || p.WithinSubtree(vo, inner) {
		t.Fatal("unrelated variables must not be within the subtree")
	}
	if p.Allocated() != 3 {
		t.Fatalf("Allocated: %d", p.Allocated())
	}
	p.Reset()
	if p.Allocated() != 0 || p.Qualifiers() != 3 {
		t.Fatal("Reset must clear variables but keep qualifiers")
	}
}

func TestValueString(t *testing.T) {
	if ValueTrue.String() != "true" || ValueFalse.String() != "false" || ValueUnknown.String() != "unknown" {
		t.Fatal("Value.String wrong")
	}
}
