package cond

import "testing"

// renormalize rebuilds a formula bottom-up through the normalizing
// constructors; on an already-normalized formula it must be the identity.
func renormalize(f *Formula) *Formula {
	switch f.op {
	case OpAnd, OpOr:
		kids := make([]*Formula, len(f.kids))
		for i, k := range f.kids {
			kids[i] = renormalize(k)
		}
		if f.op == OpAnd {
			return And(kids...)
		}
		return Or(kids...)
	default:
		return f
	}
}

// FuzzCondNormalize drives the formula constructors with an arbitrary
// build program and checks the normalization invariants the complexity
// analysis rests on (Remark V.1): normalizing never panics, never grows
// the formula relative to its raw (non-deduplicating) counterpart, is
// idempotent, and preserves the boolean semantics.
//
// Each input byte is one stack-machine instruction: push a variable, push
// a constant, or combine the top operands with ∧/∨ — built twice in
// lockstep, once with the Raw constructors and once with the normalizing
// ones.
func FuzzCondNormalize(f *testing.F) {
	f.Add([]byte{0x04, 0x08, 0x02})             // v1, v2, And
	f.Add([]byte{0x04, 0x04, 0x03})             // duplicate Or
	f.Add([]byte{0x01, 0x05, 0x04, 0x02, 0x03}) // constants in the mix
	f.Add([]byte{0x04, 0x08, 0x0c, 0x06, 0x04, 0x08, 0x0e, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		var raw, norm []*Formula
		for _, b := range data {
			switch b & 3 {
			case 0: // push a variable from a small space so duplicates occur
				v := VarID(b >> 2 % 8)
				raw = append(raw, Var(v))
				norm = append(norm, Var(v))
			case 1: // push a constant
				c := True()
				if b>>2&1 == 1 {
					c = False()
				}
				raw = append(raw, c)
				norm = append(norm, c)
			case 2, 3: // combine the top k operands
				k := int(b>>2%4) + 2
				if len(raw) < k {
					continue
				}
				var r, n *Formula
				if b&3 == 2 {
					r, n = RawAnd(raw[len(raw)-k:]...), And(norm[len(norm)-k:]...)
				} else {
					r, n = RawOr(raw[len(raw)-k:]...), Or(norm[len(norm)-k:]...)
				}
				raw = append(raw[:len(raw)-k], r)
				norm = append(norm[:len(norm)-k], n)
			}
		}
		for i := range raw {
			checkNormalized(t, raw[i], norm[i])
		}
	})
}

func checkNormalized(t *testing.T, raw, norm *Formula) {
	t.Helper()
	// Remark V.1: the normalized formula never exceeds the raw build — at
	// most one reference per condition variable survives.
	if norm.Size() > raw.Size() {
		t.Errorf("normalization grew the formula: %d > %d (%s vs %s)", norm.Size(), raw.Size(), norm, raw)
	}
	// Idempotency: renormalizing a normalized formula is the identity.
	if again := renormalize(norm); again.Key() != norm.Key() {
		t.Errorf("not idempotent: %s renormalizes to %s", norm.Key(), again.Key())
	}
	// Semantics: raw and normalized agree under every full assignment of
	// the (at most 8) variables.
	for mask := 0; mask < 256; mask++ {
		lookup := func(v VarID) Value {
			if mask>>uint(v)&1 == 1 {
				return ValueTrue
			}
			return ValueFalse
		}
		rv, nv := raw.Eval(lookup), norm.Eval(lookup)
		if rv != nv {
			t.Fatalf("semantics changed under mask %08b: raw %s=%s, normalized %s=%s", mask, raw, rv, norm, nv)
		}
	}
	// A determined normalized formula must already be the constant itself.
	if norm.Determined() && norm != True() && norm != False() {
		t.Errorf("determined but not a constant: %s", norm)
	}
}
