package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/xmlstream"
)

// The SDI experiment: the paper's introduction motivates SPEX with
// publish/subscribe ("selective dissemination of information") systems where
// very many standing queries watch one stream. This harness measures that
// scenario on the DMOZ-shaped document: N subscriptions with a common
// _*.Topic head but distinct qualifier/tail combinations, evaluated by the
// sequential shared-network engine and by the sharded parallel engine at
// several worker counts.

// SDIMeasurement is one (subscription count, engine configuration) cell.
type SDIMeasurement struct {
	Dataset  string
	Subs     int
	Mode     string // "shared" (sequential baseline) or "parallel"
	Shards   int    // 0 for the sequential baseline
	Batch    int    // events per broadcast batch (parallel only)
	Elements int64
	Matches  int64 // total answers over all subscriptions
	Elapsed  time.Duration
	// Speedup is the throughput ratio against the parallel single-shard row
	// of the same subscription count; 0 when that row is not available.
	Speedup float64
}

// ElementsPerSec is the measurement's throughput.
func (m SDIMeasurement) ElementsPerSec() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Elements) / m.Elapsed.Seconds()
}

// sdiHeads and sdiLabels span the query space: every query is
// head[q1]...[qk].child with 0–2 qualifiers, all matching the DMOZ
// structure shape (Topic records carrying catid, Title, and probabilistic
// newsGroup/editor/link children).
var (
	sdiHeads  = []string{"_*.Topic", "RDF.Topic"}
	sdiLabels = []string{"catid", "Title", "newsGroup", "editor", "link"}
)

// SDIQueries returns n distinct subscription queries (cycling through the
// 310-query space when n exceeds it), deterministically: the same n always
// yields the same workload.
func SDIQueries(n int) []string {
	var space []string
	for _, quals := range sdiQualCombos() {
		for _, child := range sdiLabels {
			for _, head := range sdiHeads {
				q := head
				for _, l := range quals {
					q += "[" + l + "]"
				}
				space = append(space, q+"."+child)
			}
		}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = space[i%len(space)]
	}
	return out
}

// sdiQualCombos enumerates the qualifier lists: none, each single label,
// each ordered pair of distinct labels.
func sdiQualCombos() [][]string {
	combos := [][]string{nil}
	for _, a := range sdiLabels {
		combos = append(combos, []string{a})
	}
	for _, a := range sdiLabels {
		for _, b := range sdiLabels {
			if a != b {
				combos = append(combos, []string{a, b})
			}
		}
	}
	return combos
}

// sdiSubscriptions compiles the queries into subscriptions (no callbacks:
// the harness measures evaluation and counts answers via Matches).
func sdiSubscriptions(queries []string) ([]multi.Subscription, error) {
	subs := make([]multi.Subscription, len(queries))
	for i, q := range queries {
		plan, err := core.Prepare(q)
		if err != nil {
			return nil, fmt.Errorf("bench: sdi query %q: %w", q, err)
		}
		subs[i] = multi.Subscription{Name: fmt.Sprintf("s%03d:%s", i, q), Plan: plan}
	}
	return subs, nil
}

// RunSDI measures one SDI configuration over the serialized document.
// shards == 0 selects the sequential shared-network baseline; shards >= 1
// selects the parallel engine. Parsing and compilation are inside the
// timer, as everywhere in this harness.
func RunSDI(queries []string, doc []byte, elements int64, shards int, o *Observer) (SDIMeasurement, error) {
	m := SDIMeasurement{Dataset: "dmoz-structure", Subs: len(queries), Elements: elements}
	w := Workload{Dataset: m.Dataset, Query: fmt.Sprintf("sdi %d subs, %d shards", len(queries), shards)}
	stopProgress := o.startProgress(w)
	defer stopProgress()
	start := time.Now()

	subs, err := sdiSubscriptions(queries)
	if err != nil {
		return m, err
	}
	src := xmlstream.NewScanner(bytes.NewReader(doc), xmlstream.WithText(false))
	var counts map[string]int64
	if shards == 0 {
		m.Mode = "shared"
		set, err := multi.NewSharedSet(subs)
		if err != nil {
			return m, err
		}
		if err := set.Run(src); err != nil {
			return m, err
		}
		counts = set.Matches()
	} else {
		m.Mode = "parallel"
		m.Shards = shards
		m.Batch = multi.DefaultBatchSize
		p, err := multi.NewParallelSet(subs, multi.ParallelOptions{Shards: shards, Metrics: o.metrics()})
		if err != nil {
			return m, err
		}
		if err := p.Run(src); err != nil {
			return m, err
		}
		m.Shards = p.Shards() // may be clamped to len(subs)
		counts = p.Matches()
	}
	m.Elapsed = time.Since(start)
	for _, n := range counts {
		m.Matches += n
	}
	return m, nil
}

// SDISubCounts is the default subscription-count axis of the sweep.
var SDISubCounts = []int{16, 64, 256}

// SDIShardCounts returns the default shard-count axis: 1, 2, 4 and
// GOMAXPROCS, deduplicated and sorted.
func SDIShardCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	var out []int
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// RunSDISweep measures every (subscription count, shard count) cell plus a
// sequential baseline row per subscription count, computing each parallel
// row's speedup against its single-shard sibling.
func RunSDISweep(scale float64, subCounts, shardCounts []int, progress io.Writer, o *Observer) ([]SDIMeasurement, error) {
	doc := Dataset("dmoz-structure", scale).Bytes()
	info, err := xmlstream.Measure(xmlstream.NewScanner(bytes.NewReader(doc)))
	if err != nil {
		return nil, err
	}
	var out []SDIMeasurement
	for _, subs := range subCounts {
		queries := SDIQueries(subs)
		report := func(m SDIMeasurement) {
			if progress != nil {
				fmt.Fprintf(progress, "  sdi %4d subs %-8s shards=%d  %9.1f ms  %9d matches  %11.0f elems/s\n",
					m.Subs, m.Mode, m.Shards, float64(m.Elapsed.Microseconds())/1000, m.Matches, m.ElementsPerSec())
			}
		}
		base, err := RunSDI(queries, doc, info.Elements, 0, o)
		if err != nil {
			return out, err
		}
		report(base)
		out = append(out, base)
		var oneShard float64
		for _, shards := range shardCounts {
			m, err := RunSDI(queries, doc, info.Elements, shards, o)
			if err != nil {
				return out, err
			}
			if m.Shards == 1 {
				oneShard = m.ElementsPerSec()
			}
			if oneShard > 0 {
				m.Speedup = m.ElementsPerSec() / oneShard
			}
			report(m)
			out = append(out, m)
		}
	}
	return out, nil
}

// WriteSDITable renders the sweep as a table, one row per configuration.
func WriteSDITable(w io.Writer, title string, ms []SDIMeasurement) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "subs\tmode\tshards\tmatches\telapsed [ms]\telems/s\tspeedup")
	for _, m := range ms {
		shards := "-"
		if m.Mode == "parallel" {
			shards = fmt.Sprintf("%d", m.Shards)
		}
		speedup := "-"
		if m.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", m.Speedup)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%.1f\t%.0f\t%s\n",
			m.Subs, m.Mode, shards, m.Matches, float64(m.Elapsed.Microseconds())/1000, m.ElementsPerSec(), speedup)
	}
	tw.Flush()
}

// jsonSDIMeasurement is the machine-readable row of BENCH_sdi.json.
type jsonSDIMeasurement struct {
	Dataset        string  `json:"dataset"`
	Subs           int     `json:"subs"`
	Mode           string  `json:"mode"`
	Shards         int     `json:"shards"`
	Batch          int     `json:"batch,omitempty"`
	Elements       int64   `json:"elements"`
	Matches        int64   `json:"matches"`
	ElapsedNs      int64   `json:"elapsed_ns"`
	ElementsPerSec float64 `json:"elements_per_sec"`
	Speedup        float64 `json:"speedup,omitempty"`
}

// WriteSDIJSON renders the sweep as an indented JSON array.
func WriteSDIJSON(w io.Writer, ms []SDIMeasurement) error {
	out := make([]jsonSDIMeasurement, 0, len(ms))
	for _, m := range ms {
		out = append(out, jsonSDIMeasurement{
			Dataset:        m.Dataset,
			Subs:           m.Subs,
			Mode:           m.Mode,
			Shards:         m.Shards,
			Batch:          m.Batch,
			Elements:       m.Elements,
			Matches:        m.Matches,
			ElapsedNs:      m.Elapsed.Nanoseconds(),
			ElementsPerSec: m.ElementsPerSec(),
			Speedup:        m.Speedup,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
