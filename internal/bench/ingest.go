package bench

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/xmlstream"
)

// The ingest ablation (spexbench -fig ingest) measures the scanner alone —
// no transducer network attached — in the three configurations the rebuilt
// ingest path offers, answering "what did each layer buy":
//
//	seed      the original buffered per-byte scanner (WithSeedScan)
//	zerocopy  the memchr-driven zero-copy scanner over in-memory bytes
//	parallel  the zero-copy scanner chunk-scanning the document in parallel
//
// Every mode drains the identical byte slice to EOF with full fidelity
// (text and attribute events on), so events/s and GB/s compare the scanning
// machinery and nothing else.

// IngestModes lists the ablation's scanner configurations in report order.
var IngestModes = []string{"seed", "zerocopy", "parallel"}

// IngestMeasurement is one (dataset, scanner mode) cell of the ablation.
type IngestMeasurement struct {
	Mode    string // "seed", "zerocopy" or "parallel"
	Dataset string
	Workers int // parallel worker count (0 outside parallel mode)
	Bytes   int64
	Events  int64
	Elapsed time.Duration
	// Hash fingerprints the full event stream (kind, name, text, attrs in
	// order); identical across modes iff the streams are identical. Zero
	// when the run was not checked.
	Hash uint64
}

// EventsPerSec is the mode's throughput on the events axis.
func (m IngestMeasurement) EventsPerSec() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Events) / m.Elapsed.Seconds()
}

// GBPerSec is the mode's throughput on the bytes axis.
func (m IngestMeasurement) GBPerSec() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Bytes) / m.Elapsed.Seconds() / 1e9
}

// ingestSource builds the mode's scanner over data.
func ingestSource(mode string, data []byte, workers int) xmlstream.Source {
	switch mode {
	case "seed":
		return xmlstream.NewScanner(bytes.NewReader(data), xmlstream.WithSeedScan(true))
	case "zerocopy":
		return xmlstream.ScanBytes(data)
	case "parallel":
		return xmlstream.NewParallelScanner(data, workers)
	default:
		panic("bench: unknown ingest mode " + mode)
	}
}

// drainCount streams src to EOF, counting events — the timed loop.
func drainCount(src xmlstream.Source) (int64, error) {
	var n int64
	for {
		_, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}

// drainHash streams src to EOF, folding every event into an FNV-1a
// fingerprint — the differential pass behind -check. Symbols are excluded
// (each mode interns into its own table); names and values are what must
// agree byte for byte.
func drainHash(src xmlstream.Source) (uint64, int64, error) {
	h := fnv.New64a()
	var n int64
	var sep = [1]byte{0}
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return h.Sum64(), n, nil
		}
		if err != nil {
			return 0, n, err
		}
		n++
		h.Write([]byte{byte(ev.Kind)})
		io.WriteString(h, ev.Name)
		h.Write(sep[:])
		io.WriteString(h, ev.Data)
		h.Write(sep[:])
		for _, a := range ev.Attrs {
			io.WriteString(h, a.Name)
			h.Write(sep[:])
			io.WriteString(h, a.Value)
			h.Write(sep[:])
		}
	}
}

// ingestReps is how many timed drains each cell runs; the fastest is
// reported, damping scheduler noise the same way testing.B's minimum does.
const ingestReps = 3

// RunIngest measures the ablation over the DMOZ dumps (the paper's largest
// corpora) at the given scale. workers sets the parallel mode's chunk-scan
// width (<=0 = one per CPU). When check is true every cell also runs an
// untimed differential pass and fills Hash, so the caller can verify the
// three modes produced byte-identical event streams.
func RunIngest(scale float64, workers int, check bool, progress io.Writer) ([]IngestMeasurement, error) {
	var out []IngestMeasurement
	for _, name := range []string{"dmoz-structure", "dmoz-content"} {
		data := Dataset(name, scale).Bytes()
		for _, mode := range IngestModes {
			w := 0
			if mode == "parallel" {
				w = workers
			}
			m := IngestMeasurement{Mode: mode, Dataset: name, Workers: w, Bytes: int64(len(data))}
			for rep := 0; rep < ingestReps; rep++ {
				start := time.Now()
				n, err := drainCount(ingestSource(mode, data, w))
				elapsed := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("ingest %s/%s: %w", name, mode, err)
				}
				if rep == 0 || elapsed < m.Elapsed {
					m.Elapsed = elapsed
				}
				m.Events = n
			}
			if check {
				h, n, err := drainHash(ingestSource(mode, data, w))
				if err != nil {
					return nil, fmt.Errorf("ingest check %s/%s: %w", name, mode, err)
				}
				if n != m.Events {
					return nil, fmt.Errorf("ingest check %s/%s: %d events on the check pass, %d timed", name, mode, n, m.Events)
				}
				m.Hash = h
			}
			if progress != nil {
				fmt.Fprintf(progress, "  %s %-8s %8d events in %v (%.2fM events/s, %.3f GB/s)\n",
					name, m.Mode, m.Events, m.Elapsed.Round(time.Microsecond),
					m.EventsPerSec()/1e6, m.GBPerSec())
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// CheckIngest enforces the ablation's acceptance bar on a checked run: per
// dataset, all three modes must have produced the identical event stream
// (equal counts and fingerprints), and the zero-copy scanner must clear 2×
// the seed scanner's events/s — the hardware-speed claim, falsified here
// rather than asserted.
func CheckIngest(ms []IngestMeasurement) error {
	byDataset := map[string]map[string]IngestMeasurement{}
	for _, m := range ms {
		if byDataset[m.Dataset] == nil {
			byDataset[m.Dataset] = map[string]IngestMeasurement{}
		}
		byDataset[m.Dataset][m.Mode] = m
	}
	for ds, modes := range byDataset {
		seed, ok := modes["seed"]
		if !ok {
			return fmt.Errorf("ingest check %s: no seed measurement", ds)
		}
		if seed.Events == 0 {
			return fmt.Errorf("ingest check %s: zero events", ds)
		}
		for _, mode := range IngestModes[1:] {
			m, ok := modes[mode]
			if !ok {
				return fmt.Errorf("ingest check %s: no %s measurement", ds, mode)
			}
			if m.Events != seed.Events || m.Hash != seed.Hash {
				return fmt.Errorf("ingest check %s: %s stream differs from seed (events %d vs %d, hash %#x vs %#x)",
					ds, mode, m.Events, seed.Events, m.Hash, seed.Hash)
			}
		}
		zc := modes["zerocopy"]
		if ratio := zc.EventsPerSec() / seed.EventsPerSec(); ratio < 2 {
			return fmt.Errorf("ingest check %s: zero-copy is only %.2fx the seed scanner (want >= 2x)", ds, ratio)
		}
	}
	return nil
}

// IngestMeasurements converts the ablation's cells to harness measurements
// so the JSON report (and the bench delta gate reading it) shares one row
// schema: engine "ingest-<mode>", query "scan", elements = events.
func IngestMeasurements(ms []IngestMeasurement) []Measurement {
	out := make([]Measurement, 0, len(ms))
	for _, m := range ms {
		out = append(out, Measurement{
			Engine:   Engine("ingest-" + m.Mode),
			Dataset:  m.Dataset,
			Query:    "scan",
			Elements: m.Events,
			Elapsed:  m.Elapsed,
		})
	}
	return out
}

// WriteIngestTable renders the ablation for humans: per dataset and mode,
// events/s and GB/s, with each mode's speedup over the seed scanner.
func WriteIngestTable(w io.Writer, ms []IngestMeasurement) {
	fmt.Fprintf(w, "\nIngest ablation: scanner throughput (full fidelity, no network attached)\n\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "dataset\tmode\tevents\tMB\telapsed\tMevents/s\tGB/s\tvs seed\n")
	seed := map[string]IngestMeasurement{}
	for _, m := range ms {
		if m.Mode == "seed" {
			seed[m.Dataset] = m
		}
	}
	for _, m := range ms {
		mode := m.Mode
		if m.Mode == "parallel" {
			mode = fmt.Sprintf("parallel:%d", m.Workers)
		}
		speedup := "-"
		if s, ok := seed[m.Dataset]; ok && m.Mode != "seed" && s.EventsPerSec() > 0 {
			speedup = fmt.Sprintf("%.2fx", m.EventsPerSec()/s.EventsPerSec())
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%s\t%.2f\t%.3f\t%s\n",
			m.Dataset, mode, m.Events, float64(m.Bytes)/(1<<20),
			m.Elapsed.Round(time.Microsecond), m.EventsPerSec()/1e6, m.GBPerSec(), speedup)
	}
	tw.Flush()
}
