package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rpeq"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// Engine identifies an evaluator.
type Engine string

// The measured engines: SPEX, the two in-memory comparator classes, and
// the streaming lazy-DFA comparator (§VIII refs. [2], [18]; qualifier-free
// queries only).
const (
	EngineSPEX      Engine = "spex"
	EngineTreeWalk  Engine = "treewalk"
	EngineAutomaton Engine = "automaton"
	EngineXScan     Engine = "xscan"
)

// Engines lists the paper's Figure-14 engines in report order.
var Engines = []Engine{EngineSPEX, EngineTreeWalk, EngineAutomaton}

// StreamingEngines lists the engines that never materialize the document.
var StreamingEngines = []Engine{EngineSPEX, EngineXScan}

// Measurement is one harness data point.
type Measurement struct {
	Engine   Engine
	Dataset  string
	Class    int
	Query    string
	Elements int64
	Matches  int64
	Elapsed  time.Duration
	// AllocBytes is the allocation volume of the evaluation (runtime
	// TotalAlloc delta): the load an engine puts on memory. For the
	// in-memory engines it grows with the document; for SPEX it is
	// dominated by transient per-event work.
	AllocBytes uint64
	// LiveBytes is the live heap after the evaluation with the result
	// retained (HeapAlloc delta, floor zero): the paper's "memory
	// consumption" axis. The DOM of the in-memory engines lives here.
	LiveBytes uint64
	// Skipped is non-empty when the engine was not run (the Fig. 15
	// situation: "memory consumption ... beyond the limitations of the
	// system used").
	Skipped string
}

// MemoryCap is the simulated memory budget used to decide whether an
// in-memory engine can process a document, mirroring the paper's 512 MB
// machine. A DOM node costs on the order of 150 bytes here; the cap
// converts to a maximum element count.
const MemoryCap = 512 << 20

// domBytesPerElement is the approximate materialization cost the harness
// uses for the refusal estimate.
const domBytesPerElement = 150

// Observer wires live instrumentation into harness runs: a metrics registry
// attached to every SPEX measurement (pollable mid-run, e.g. over HTTP) and
// an optional periodic progress line for long evaluations. A nil *Observer
// is valid and means "unobserved".
type Observer struct {
	// Metrics, when non-nil, is attached to every SPEX evaluation; its
	// instruments update live while a measurement streams.
	Metrics *obs.Metrics
	// Progress, when non-nil (and Metrics is set), receives a progress
	// line every Interval while a SPEX measurement runs.
	Progress io.Writer
	// Interval is the progress period; zero means 2 seconds.
	Interval time.Duration
}

// metrics returns the registry, nil for a nil observer.
func (o *Observer) metrics() *obs.Metrics {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// startProgress launches the periodic progress reporter; the returned stop
// function waits for the reporter to exit.
func (o *Observer) startProgress(w Workload) (stop func()) {
	if o == nil || o.Metrics == nil || o.Progress == nil {
		return func() {}
	}
	interval := o.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		last := o.Metrics.Snapshot()
		for {
			select {
			case <-done:
				// A closing line regardless of how fast the run went, so
				// every observed measurement leaves at least one trace of
				// its live instruments.
				s := o.Metrics.Snapshot()
				fmt.Fprintf(o.Progress, "  ... %s %s: %d events done, %d matches, heap %.1f MB\n",
					w.Dataset, w.Query, s.Events, s.Matches, float64(s.HeapAlloc)/(1<<20))
				return
			case <-ticker.C:
				s := o.Metrics.Snapshot()
				rate := float64(s.Events-last.Events) / interval.Seconds()
				fmt.Fprintf(o.Progress, "  ... %s %s: %d events (%.0f/s), depth %d, %d matches, heap %.1f MB\n",
					w.Dataset, w.Query, s.Events, rate, s.Depth, s.Matches, float64(s.HeapAlloc)/(1<<20))
				last = s
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// RunSPEX measures SPEX on the workload. The document is supplied as
// serialized bytes so that parsing is part of the measured time, exactly as
// the paper measures (its SPEX times also include compiling the rpeq into
// the network, so compilation happens inside the timer too).
func RunSPEX(w Workload, doc []byte) (Measurement, error) {
	return RunSPEXObserved(w, doc, nil)
}

// RunSPEXObserved is RunSPEX with live instrumentation: the observer's
// registry (if any) is attached to the evaluation so another goroutine —
// the progress reporter, an HTTP metrics handler — can watch the
// measurement stream.
func RunSPEXObserved(w Workload, doc []byte, o *Observer) (Measurement, error) {
	m := Measurement{Engine: EngineSPEX, Dataset: w.Dataset, Class: w.Class, Query: w.Query}
	stopProgress := o.startProgress(w)
	defer stopProgress()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()

	plan, err := core.Prepare(w.Query)
	if err != nil {
		return m, err
	}
	src := &xmlstream.CountingSource{Src: xmlstream.NewScanner(bytes.NewReader(doc), xmlstream.WithText(false))}
	stats, err := plan.Evaluate(src, core.EvalOptions{Mode: spexnet.ModeCount, Metrics: o.metrics()})
	if err != nil {
		return m, err
	}

	m.Elapsed = time.Since(start)
	runtime.GC() // LiveBytes should reflect retained memory, not transients
	runtime.ReadMemStats(&after)
	m.AllocBytes = after.TotalAlloc - before.TotalAlloc
	m.LiveBytes = heapDelta(before, after)
	m.Matches = stats.Output.Matches
	m.Elements = stats.Elements
	return m, nil
}

// RunBaseline measures an in-memory engine on the workload. If the
// estimated materialization exceeds the simulated memory cap, the
// measurement is marked skipped instead — reproducing the Fig. 15 outcome
// where "a further comparison ... could not be performed".
func RunBaseline(engine Engine, w Workload, doc []byte, elements int64) (Measurement, error) {
	m := Measurement{Engine: engine, Dataset: w.Dataset, Class: w.Class, Query: w.Query, Elements: elements}
	if engine == EngineXScan {
		return runXScan(m, w, doc)
	}
	if est := uint64(elements) * domBytesPerElement; est > MemoryCap {
		m.Skipped = fmt.Sprintf("estimated DOM %d MB exceeds the %d MB budget", est>>20, MemoryCap>>20)
		return m, nil
	}
	var ev baseline.Evaluator
	switch engine {
	case EngineTreeWalk:
		ev = baseline.TreeWalk{}
	case EngineAutomaton:
		ev = baseline.Automaton{}
	default:
		return m, fmt.Errorf("bench: unknown engine %q", engine)
	}
	expr, err := rpeq.Parse(w.Query)
	if err != nil {
		return m, err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()

	nodes, err := baseline.EvalReader(ev, bytes.NewReader(doc), expr)
	if err != nil {
		return m, err
	}

	m.Elapsed = time.Since(start)
	runtime.GC() // the materialized tree is still referenced by nodes
	runtime.ReadMemStats(&after)
	m.AllocBytes = after.TotalAlloc - before.TotalAlloc
	m.LiveBytes = heapDelta(before, after)
	m.Matches = int64(len(nodes))
	runtime.KeepAlive(nodes)
	return m, nil
}

// runXScan measures the streaming lazy-DFA engine; workloads with
// qualifiers are outside its fragment and reported as skipped, the
// capability gap §VIII describes.
func runXScan(m Measurement, w Workload, doc []byte) (Measurement, error) {
	expr, err := rpeq.Parse(w.Query)
	if err != nil {
		return m, err
	}
	if !(baseline.XScan{}).Supports(expr) {
		m.Skipped = "qualifiers are left to the host application in X-Scan [18]"
		return m, nil
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	n, err := baseline.XScan{}.Count(bytes.NewReader(doc), expr)
	if err != nil {
		return m, err
	}
	m.Elapsed = time.Since(start)
	runtime.GC()
	runtime.ReadMemStats(&after)
	m.AllocBytes = after.TotalAlloc - before.TotalAlloc
	m.LiveBytes = heapDelta(before, after)
	m.Matches = n
	return m, nil
}

func heapDelta(before, after runtime.MemStats) uint64 {
	if after.HeapAlloc <= before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// RunFigure measures every workload with every requested engine, streaming
// per-measurement progress to progress (may be nil). The observer (may also
// be nil) attaches live instrumentation to the SPEX measurements.
func RunFigure(workloads []Workload, doc []byte, engines []Engine, progress io.Writer, o *Observer) ([]Measurement, error) {
	var out []Measurement
	var elements int64
	for _, w := range workloads {
		for _, e := range engines {
			var m Measurement
			var err error
			if e == EngineSPEX {
				m, err = RunSPEXObserved(w, doc, o)
				elements = m.Elements
			} else {
				m, err = RunBaseline(e, w, doc, elements)
			}
			if err != nil {
				return out, fmt.Errorf("bench: %s class %d %s: %w", e, w.Class, w.Query, err)
			}
			out = append(out, m)
			if progress != nil {
				fmt.Fprintf(progress, "  %-10s class %d %-36s %s\n", e, w.Class, w.Query, renderCell(m))
			}
		}
	}
	return out, nil
}

func renderCell(m Measurement) string {
	if m.Skipped != "" {
		return "skipped: " + m.Skipped
	}
	return fmt.Sprintf("%9.1f ms  %9d matches  %6.1f MB live", float64(m.Elapsed.Microseconds())/1000, m.Matches, float64(m.LiveBytes)/(1<<20))
}

// WriteTable renders measurements grouped like a figure: one row per query
// class, one column per engine, the paper's bar-chart layout as text.
func WriteTable(w io.Writer, title string, ms []Measurement) {
	fmt.Fprintf(w, "%s\n", title)
	type key struct {
		class int
		query string
	}
	rows := map[key]map[Engine]Measurement{}
	var order []key
	for _, m := range ms {
		k := key{m.Class, m.Query}
		if rows[k] == nil {
			rows[k] = map[Engine]Measurement{}
			order = append(order, k)
		}
		rows[k][m.Engine] = m
	}
	sort.SliceStable(order, func(i, j int) bool { return false }) // keep insertion order
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "class\tquery\tmatches")
	engines := enginesIn(ms)
	for _, e := range engines {
		fmt.Fprintf(tw, "\t%s [ms]", e)
	}
	fmt.Fprintln(tw)
	for _, k := range order {
		row := rows[k]
		matches := int64(-1)
		for _, m := range row {
			if m.Skipped == "" {
				matches = m.Matches
				break
			}
		}
		fmt.Fprintf(tw, "%d\t%s\t%d", k.class, k.query, matches)
		for _, e := range engines {
			m, ok := row[e]
			switch {
			case !ok:
				fmt.Fprintf(tw, "\t-")
			case m.Skipped != "":
				fmt.Fprintf(tw, "\tOOM")
			default:
				fmt.Fprintf(tw, "\t%.1f", float64(m.Elapsed.Microseconds())/1000)
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// jsonMeasurement is the machine-readable form of a Measurement, with
// stable field names for downstream tooling.
type jsonMeasurement struct {
	Engine       string  `json:"engine"`
	Dataset      string  `json:"dataset"`
	Class        int     `json:"class"`
	Query        string  `json:"query"`
	Elements     int64   `json:"elements"`
	Matches      int64   `json:"matches"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	NsPerElement float64 `json:"ns_per_element,omitempty"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	LiveBytes    uint64  `json:"live_bytes"`
	Skipped      string  `json:"skipped,omitempty"`
}

// WriteJSON renders measurements as an indented JSON array (the BENCH_*.json
// report of spexbench -json): per workload and engine, elapsed nanoseconds,
// ns per element, allocation volume and live heap.
func WriteJSON(w io.Writer, ms []Measurement) error {
	out := make([]jsonMeasurement, 0, len(ms))
	for _, m := range ms {
		jm := jsonMeasurement{
			Engine:     string(m.Engine),
			Dataset:    m.Dataset,
			Class:      m.Class,
			Query:      m.Query,
			Elements:   m.Elements,
			Matches:    m.Matches,
			ElapsedNs:  m.Elapsed.Nanoseconds(),
			AllocBytes: m.AllocBytes,
			LiveBytes:  m.LiveBytes,
			Skipped:    m.Skipped,
		}
		if m.Elements > 0 {
			jm.NsPerElement = float64(jm.ElapsedNs) / float64(m.Elements)
		}
		out = append(out, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func enginesIn(ms []Measurement) []Engine {
	seen := map[Engine]bool{}
	var out []Engine
	for _, e := range []Engine{EngineSPEX, EngineXScan, EngineTreeWalk, EngineAutomaton} {
		for _, m := range ms {
			if m.Engine == e && !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out
}
