package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestIngestAblationShape runs the ingest ablation at tiny scale and checks
// its structural guarantees: all three scanner modes drain the corpora to
// identical event streams (counts and fingerprints — the differential claim
// behind -check, minus the throughput bar, which only a full-scale run can
// judge), and the measurements convert cleanly into the shared JSON row
// schema the delta gate reads.
func TestIngestAblationShape(t *testing.T) {
	ms, err := RunIngest(0.002, 2, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2*len(IngestModes) {
		t.Fatalf("%d measurements, want %d", len(ms), 2*len(IngestModes))
	}
	seed := map[string]IngestMeasurement{}
	for _, m := range ms {
		if m.Mode == "seed" {
			seed[m.Dataset] = m
		}
	}
	for _, m := range ms {
		s := seed[m.Dataset]
		if m.Events == 0 || m.Hash == 0 {
			t.Errorf("%s/%s: empty cell %+v", m.Dataset, m.Mode, m)
		}
		if m.Events != s.Events || m.Hash != s.Hash {
			t.Errorf("%s/%s: stream differs from seed (events %d vs %d, hash %#x vs %#x)",
				m.Dataset, m.Mode, m.Events, s.Events, m.Hash, s.Hash)
		}
	}

	rows := IngestMeasurements(ms)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(ms) {
		t.Fatalf("%d JSON rows, want %d", len(decoded), len(ms))
	}
	if eng, _ := decoded[0]["engine"].(string); !strings.HasPrefix(eng, "ingest-") {
		t.Fatalf("JSON row engine = %q, want ingest-* prefix", decoded[0]["engine"])
	}

	var table strings.Builder
	WriteIngestTable(&table, ms)
	for _, want := range []string{"dmoz-structure", "dmoz-content", "zerocopy", "parallel:2"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("ablation table missing %q:\n%s", want, table.String())
		}
	}
}
