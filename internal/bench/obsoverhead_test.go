package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// TestRunObsOverhead checks the ablation's report shape on a tiny document:
// both legs agree on the answers, the instrumented leg's lifecycle
// histograms are populated, and the JSON round-trips with stable names.
func TestRunObsOverhead(t *testing.T) {
	r, err := RunObsOverhead(0.005, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Matches == 0 {
		t.Fatalf("zero answers on %s %q", r.Dataset, r.Query)
	}
	if r.NoObsNs <= 0 || r.InstrumentedNs <= 0 {
		t.Errorf("missing timings: noobs=%d instrumented=%d", r.NoObsNs, r.InstrumentedNs)
	}
	if r.NoObsEventsPerSec <= 0 || r.InstrumentedEventsPerSec <= 0 {
		t.Errorf("missing throughputs: %+v", r)
	}
	if r.DecisionLatencyCount == 0 || r.CandidateLifetimeCount == 0 {
		t.Errorf("lifecycle histograms empty: decisions=%d lifetimes=%d",
			r.DecisionLatencyCount, r.CandidateLifetimeCount)
	}

	var buf bytes.Buffer
	if err := WriteObsOverheadJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"dataset", "query", "noobs_events_per_sec",
		"instrumented_events_per_sec", "overhead_pct", "decision_latency_count"} {
		if _, ok := got[key]; !ok {
			t.Errorf("JSON report missing %q:\n%s", key, buf.String())
		}
	}

	var table bytes.Buffer
	WriteObsOverheadTable(&table, "Obs overhead", r)
	if !strings.Contains(table.String(), "instrumented") {
		t.Errorf("table missing instrumented row:\n%s", table.String())
	}
}

// The two legs of the ablation as plain Go benchmarks, for profiling the
// instrumentation cost directly (go test -bench Obs -cpuprofile ...).
func benchmarkObsLeg(b *testing.B, metrics func() *obs.Metrics) {
	doc := Dataset(overheadWorkload.Dataset, 0.05).Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := core.Prepare(overheadWorkload.Query)
		if err != nil {
			b.Fatal(err)
		}
		src := xmlstream.NewScanner(bytes.NewReader(doc), xmlstream.WithText(false))
		if _, err := plan.Evaluate(src, core.EvalOptions{Mode: spexnet.ModeCount, Metrics: metrics()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsInstrumented(b *testing.B) {
	benchmarkObsLeg(b, func() *obs.Metrics { return obs.NewMetrics() })
}

func BenchmarkObsBare(b *testing.B) {
	benchmarkObsLeg(b, func() *obs.Metrics { return nil })
}
