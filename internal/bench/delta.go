package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// CompareReports renders a benchstat-style delta table between two
// directories of BENCH_*.json reports (as written by spexbench -json):
// reports are matched by filename, rows by engine+dataset+class+query, and
// the compared quantity is ns/element. It is a trend surface for CI — the
// output is informational and the comparison never fails the run: a missing
// previous directory (first run, expired cache) or a schema it cannot read
// (BENCH_sdi.json rows have no query) just narrows what is shown.
func CompareReports(w io.Writer, oldDir, newDir string) error {
	if _, err := os.Stat(oldDir); err != nil {
		fmt.Fprintf(w, "bench delta: no previous reports at %s (first run?)\n", oldDir)
		return nil
	}
	newFiles, err := filepath.Glob(filepath.Join(newDir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(newFiles) == 0 {
		fmt.Fprintf(w, "bench delta: no BENCH_*.json reports in %s\n", newDir)
		return nil
	}
	sort.Strings(newFiles)
	for _, nf := range newFiles {
		name := filepath.Base(nf)
		of := filepath.Join(oldDir, name)
		newRows, err := readReport(nf)
		if err != nil {
			fmt.Fprintf(w, "bench delta: %s: %v (skipped)\n", name, err)
			continue
		}
		oldRows, err := readReport(of)
		if err != nil {
			fmt.Fprintf(w, "bench delta: %s: no comparable previous report (%v)\n", name, err)
			continue
		}
		writeDelta(w, name, oldRows, newRows)
	}
	return nil
}

// deltaRow is the subset of the jsonMeasurement schema the comparison needs.
// Decoding is lenient: reports in other schemas (BENCH_sdi.json) produce
// rows without a query, which are skipped.
type deltaRow struct {
	Engine       string  `json:"engine"`
	Dataset      string  `json:"dataset"`
	Class        int     `json:"class"`
	Query        string  `json:"query"`
	NsPerElement float64 `json:"ns_per_element"`
	Skipped      string  `json:"skipped"`
}

func (r deltaRow) key() string {
	return fmt.Sprintf("%s|%s|%d|%s", r.Engine, r.Dataset, r.Class, r.Query)
}

func readReport(path string) (map[string]deltaRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []deltaRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, err
	}
	out := make(map[string]deltaRow, len(rows))
	for _, r := range rows {
		if r.Query == "" || r.Skipped != "" || r.NsPerElement <= 0 {
			continue
		}
		out[r.key()] = r
	}
	return out, nil
}

func writeDelta(w io.Writer, name string, oldRows, newRows map[string]deltaRow) {
	keys := make([]string, 0, len(newRows))
	for k := range newRows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "\n%s — ns/element, old vs new\n", name)
	fmt.Fprintf(w, "%-12s %-16s %-36s %12s %12s %9s\n", "engine", "dataset", "query", "old", "new", "delta")
	for _, k := range keys {
		nr := newRows[k]
		or, ok := oldRows[k]
		if !ok {
			fmt.Fprintf(w, "%-12s %-16s %-36s %12s %12.1f %9s\n", nr.Engine, nr.Dataset, trim(nr.Query, 36), "-", nr.NsPerElement, "new")
			continue
		}
		delta := (nr.NsPerElement - or.NsPerElement) / or.NsPerElement * 100
		fmt.Fprintf(w, "%-12s %-16s %-36s %12.1f %12.1f %+8.1f%%\n", nr.Engine, nr.Dataset, trim(nr.Query, 36), or.NsPerElement, nr.NsPerElement, delta)
	}
	for k := range oldRows {
		if _, ok := newRows[k]; !ok {
			or := oldRows[k]
			fmt.Fprintf(w, "%-12s %-16s %-36s %12.1f %12s %9s\n", or.Engine, or.Dataset, trim(or.Query, 36), or.NsPerElement, "-", "gone")
		}
	}
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
