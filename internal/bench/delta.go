package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CompareReports renders a benchstat-style delta table between two
// directories of BENCH_*.json reports (as written by spexbench -json):
// reports are matched by filename, rows by engine+dataset+class+query, and
// the compared quantity is ns/element.
//
// With maxPct == 0 the output is purely informational. With maxPct > 0 the
// comparison becomes a regression gate over the gated rows — the SPEX
// engine's DMOZ qualifier workloads, the paper's headline figure — and an
// error is returned when any of them slows down by more than maxPct percent.
// A missing previous directory (first run, expired cache) or a schema the
// reader cannot parse (BENCH_sdi.json rows have no query) never fails the
// run: warn-only degradation, so a cache miss cannot block CI.
func CompareReports(w io.Writer, oldDir, newDir string, maxPct float64) error {
	if _, err := os.Stat(oldDir); err != nil {
		fmt.Fprintf(w, "bench delta: no previous reports at %s (first run?); regression gate skipped\n", oldDir)
		return nil
	}
	newFiles, err := filepath.Glob(filepath.Join(newDir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(newFiles) == 0 {
		fmt.Fprintf(w, "bench delta: no BENCH_*.json reports in %s\n", newDir)
		return nil
	}
	sort.Strings(newFiles)
	var regressions []string
	for _, nf := range newFiles {
		name := filepath.Base(nf)
		of := filepath.Join(oldDir, name)
		newRows, err := readReport(nf)
		if err != nil {
			fmt.Fprintf(w, "bench delta: %s: %v (skipped)\n", name, err)
			continue
		}
		oldRows, err := readReport(of)
		if err != nil {
			fmt.Fprintf(w, "bench delta: %s: no comparable previous report (%v)\n", name, err)
			continue
		}
		regressions = append(regressions, writeDelta(w, name, oldRows, newRows, maxPct)...)
	}
	if maxPct > 0 && len(regressions) > 0 {
		return fmt.Errorf("bench delta: %d gated workload(s) regressed beyond %.0f%%:\n  %s",
			len(regressions), maxPct, strings.Join(regressions, "\n  "))
	}
	return nil
}

// gated reports whether a row is under the regression gate: SPEX on a DMOZ
// qualifier query (the steady-state streaming rows the reproduction lives
// on), plus the zero-copy scanner's DMOZ ingest rows (the hardware-speed
// claim). Everything else (baseline engines, tiny documents, prefix reads,
// the seed and parallel ablation arms) is too noisy or too peripheral to
// fail a build over.
func (r deltaRow) gated() bool {
	if r.Engine == "ingest-zerocopy" && strings.HasPrefix(r.Dataset, "dmoz") {
		return true
	}
	return r.Engine == "spex" &&
		strings.HasPrefix(r.Dataset, "dmoz") &&
		strings.Contains(r.Query, "[")
}

// deltaRow is the subset of the jsonMeasurement schema the comparison needs.
// Decoding is lenient: reports in other schemas (BENCH_sdi.json) produce
// rows without a query, which are skipped.
type deltaRow struct {
	Engine       string  `json:"engine"`
	Dataset      string  `json:"dataset"`
	Class        int     `json:"class"`
	Query        string  `json:"query"`
	NsPerElement float64 `json:"ns_per_element"`
	Skipped      string  `json:"skipped"`
}

func (r deltaRow) key() string {
	return fmt.Sprintf("%s|%s|%d|%s", r.Engine, r.Dataset, r.Class, r.Query)
}

func readReport(path string) (map[string]deltaRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []deltaRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, err
	}
	out := make(map[string]deltaRow, len(rows))
	for _, r := range rows {
		if r.Query == "" || r.Skipped != "" || r.NsPerElement <= 0 {
			continue
		}
		out[r.key()] = r
	}
	return out, nil
}

func writeDelta(w io.Writer, name string, oldRows, newRows map[string]deltaRow, maxPct float64) []string {
	keys := make([]string, 0, len(newRows))
	for k := range newRows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regressions []string
	fmt.Fprintf(w, "\n%s — ns/element, old vs new\n", name)
	fmt.Fprintf(w, "%-12s %-16s %-36s %12s %12s %9s\n", "engine", "dataset", "query", "old", "new", "delta")
	for _, k := range keys {
		nr := newRows[k]
		or, ok := oldRows[k]
		if !ok {
			fmt.Fprintf(w, "%-12s %-16s %-36s %12s %12.1f %9s\n", nr.Engine, nr.Dataset, trim(nr.Query, 36), "-", nr.NsPerElement, "new")
			continue
		}
		delta := (nr.NsPerElement - or.NsPerElement) / or.NsPerElement * 100
		mark := ""
		if maxPct > 0 && nr.gated() && delta > maxPct {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %s %s %q %.1f → %.1f ns/element (%+.1f%%)",
					name, nr.Engine, nr.Dataset, nr.Query, or.NsPerElement, nr.NsPerElement, delta))
		}
		fmt.Fprintf(w, "%-12s %-16s %-36s %12.1f %12.1f %+8.1f%%%s\n", nr.Engine, nr.Dataset, trim(nr.Query, 36), or.NsPerElement, nr.NsPerElement, delta, mark)
	}
	for k := range oldRows {
		if _, ok := newRows[k]; !ok {
			or := oldRows[k]
			fmt.Fprintf(w, "%-12s %-16s %-36s %12.1f %12s %9s\n", or.Engine, or.Dataset, trim(or.Query, 36), or.NsPerElement, "-", "gone")
		}
	}
	return regressions
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
