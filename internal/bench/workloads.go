// Package bench defines the workloads of the paper's evaluation (§VI) and
// a harness that measures them, regenerating Figures 14 and 15: for each
// dataset, the four query classes —
//
//  1. simple structural queries that do not create nested results,
//  2. queries with structural qualifiers creating "future conditions",
//  3. structural queries creating nested results, and
//  4. queries with structural qualifiers creating "past conditions" —
//
// evaluated by SPEX and, where memory permits, by the two in-memory
// baselines standing in for Saxon and Fxgrep.
package bench

import (
	"repro/internal/dataset"
)

// Workload is one (dataset, query) cell of a figure.
type Workload struct {
	// Dataset names the document ("mondial", "wordnet", "dmoz-structure",
	// "dmoz-content").
	Dataset string
	// Class is the paper's query class 1–4.
	Class int
	// Query is the rpeq, verbatim from §VI where given.
	Query string
}

// Fig14Mondial lists the MONDIAL workloads of Figure 14 (left), query
// classes 1–4 with the paper's example queries.
var Fig14Mondial = []Workload{
	{"mondial", 1, "_*.province.city"},
	{"mondial", 2, "_*.country[province].name"},
	{"mondial", 3, "_*._"},
	{"mondial", 4, "_*.country[province].religions"},
}

// Fig14WordNet lists the WordNet workloads of Figure 14 (right), classes
// 1–3 (the paper shows three bars for WordNet).
var Fig14WordNet = []Workload{
	{"wordnet", 1, "_*.Noun.wordForm"},
	{"wordnet", 2, "_*.Noun[wordForm]"},
	{"wordnet", 3, "_*._"},
}

// Fig15DMOZ lists the DMOZ workloads of Figure 15, in the paper's bar
// order 1, 2, 4, 3; they run on both the structure and the content dumps.
var Fig15DMOZ = []Workload{
	{"dmoz", 1, "_*.Topic.Title"},
	{"dmoz", 2, "_*.Topic[editor].Title"},
	{"dmoz", 4, "_*.Topic[editor].newsGroup"},
	{"dmoz", 3, "_*._"},
}

// Dataset returns the generator for a dataset name at the given scale.
// Scale 1 approximates the paper's document sizes.
func Dataset(name string, scale float64) *dataset.Doc {
	switch name {
	case "mondial":
		return dataset.Mondial(scale)
	case "wordnet":
		return dataset.WordNet(scale)
	case "dmoz-structure":
		return dataset.DMOZStructure(scale)
	case "dmoz-content":
		return dataset.DMOZContent(scale)
	case "tickets":
		return dataset.Tickets(scale)
	default:
		return nil
	}
}

// DatasetNames lists the known dataset names.
func DatasetNames() []string {
	return []string{"mondial", "wordnet", "dmoz-structure", "dmoz-content", "tickets"}
}
