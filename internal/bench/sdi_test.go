package bench

import (
	"strings"
	"testing"
)

func TestSDIQueriesDistinctAndParseable(t *testing.T) {
	qs := SDIQueries(256)
	seen := map[string]bool{}
	for _, q := range qs {
		if seen[q] {
			t.Fatalf("duplicate query before the space is exhausted: %s", q)
		}
		seen[q] = true
	}
	if _, err := sdiSubscriptions(qs); err != nil {
		t.Fatal(err)
	}
	// Past the 260-query space the workload cycles.
	if qs := SDIQueries(400); qs[0] != qs[260] {
		t.Fatalf("cycle: %s vs %s", qs[0], qs[260])
	}
}

func TestSDISweepCrossChecks(t *testing.T) {
	subCounts := []int{4, 12}
	shardCounts := []int{1, 2}
	ms, err := RunSDISweep(0.001, subCounts, shardCounts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(subCounts) * (1 + len(shardCounts)); len(ms) != want {
		t.Fatalf("rows: %d, want %d", len(ms), want)
	}
	baseline := map[int]int64{}
	for _, m := range ms {
		if m.Matches <= 0 {
			t.Errorf("zero answers: %+v", m)
		}
		if m.Elements <= 0 || m.Elapsed <= 0 {
			t.Errorf("implausible row: %+v", m)
		}
		switch m.Mode {
		case "shared":
			baseline[m.Subs] = m.Matches
		case "parallel":
			// The partition must not change the total answer count.
			if want, ok := baseline[m.Subs]; ok && m.Matches != want {
				t.Errorf("%d subs, %d shards: %d matches vs sequential %d", m.Subs, m.Shards, m.Matches, want)
			}
			if m.Speedup <= 0 {
				t.Errorf("parallel row without speedup ratio: %+v", m)
			}
		default:
			t.Errorf("unknown mode: %+v", m)
		}
	}

	var sb strings.Builder
	WriteSDITable(&sb, "SDI", ms)
	if !strings.Contains(sb.String(), "parallel") {
		t.Errorf("table missing parallel rows:\n%s", sb.String())
	}
	sb.Reset()
	if err := WriteSDIJSON(&sb, ms); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"mode": "parallel"`, `"elements_per_sec"`, `"speedup"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("json missing %s", want)
		}
	}
}
