package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestFigure14Shape runs the Figure-14 workloads at reduced scale and
// checks the qualitative findings the paper reports: every engine returns
// the same match counts, class-2 selects a strict subset of the documents'
// records, and SPEX completes every workload.
func TestFigure14Shape(t *testing.T) {
	doc := Dataset("mondial", 0.1).Bytes()
	ms, err := RunFigure(Fig14Mondial, doc, Engines, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	byQuery := map[string]map[Engine]Measurement{}
	for _, m := range ms {
		if byQuery[m.Query] == nil {
			byQuery[m.Query] = map[Engine]Measurement{}
		}
		byQuery[m.Query][m.Engine] = m
	}
	for q, row := range byQuery {
		spex := row[EngineSPEX]
		if spex.Matches == 0 {
			t.Errorf("%s: SPEX found nothing", q)
		}
		for _, e := range []Engine{EngineTreeWalk, EngineAutomaton} {
			if row[e].Skipped != "" {
				t.Errorf("%s: %s skipped at this scale: %s", q, e, row[e].Skipped)
				continue
			}
			if row[e].Matches != spex.Matches {
				t.Errorf("%s: %s found %d, SPEX found %d", q, e, row[e].Matches, spex.Matches)
			}
		}
	}
	// Class 2 (qualifier) must select fewer names than there are
	// countries with and without provinces combined: the qualifier
	// filters.
	q1 := byQuery["_*.province.city"][EngineSPEX]
	q3 := byQuery["_*._"][EngineSPEX]
	if q3.Matches <= q1.Matches {
		t.Errorf("class 3 (%d) should dominate class 1 (%d)", q3.Matches, q1.Matches)
	}
}

// TestFigure15MemoryRefusal reproduces the Fig. 15 situation at a reduced
// threshold: when the estimated DOM exceeds the memory budget the baseline
// is skipped, while SPEX processes the document.
func TestFigure15MemoryRefusal(t *testing.T) {
	doc := Dataset("dmoz-structure", 0.002).Bytes()
	w := Fig15DMOZ[0]
	spex, err := RunSPEX(w, doc)
	if err != nil {
		t.Fatal(err)
	}
	if spex.Matches == 0 {
		t.Fatal("SPEX found no matches")
	}
	// Pretend the document is paper-sized: pass the full-scale element
	// count to the refusal estimator.
	m, err := RunBaseline(EngineTreeWalk, w, doc, 3_940_716)
	if err != nil {
		t.Fatal(err)
	}
	if m.Skipped == "" {
		t.Fatal("baseline should refuse a 3.9M-element document under the 512 MB budget")
	}
	// At the true (small) element count it runs fine.
	m2, err := RunBaseline(EngineTreeWalk, w, doc, spex.Elements)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Skipped != "" || m2.Matches != spex.Matches {
		t.Fatalf("baseline at small scale: %+v", m2)
	}
}

// TestMemoryProfile checks the defining contrast of §VI: the in-memory
// engines retain a live heap proportional to the document, SPEX does not.
func TestMemoryProfile(t *testing.T) {
	doc := Dataset("wordnet", 0.2).Bytes()
	w := Fig14WordNet[0]
	spex, err := RunSPEX(w, doc)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := RunBaseline(EngineTreeWalk, w, doc, spex.Elements)
	if err != nil {
		t.Fatal(err)
	}
	if tw.Skipped != "" {
		t.Fatal(tw.Skipped)
	}
	if tw.LiveBytes < 4*spex.LiveBytes && tw.LiveBytes < 1<<20 {
		t.Errorf("expected the DOM to dominate live memory: treewalk %d B vs spex %d B",
			tw.LiveBytes, spex.LiveBytes)
	}
}

func TestWriteTable(t *testing.T) {
	doc := Dataset("mondial", 0.02).Bytes()
	ms, err := RunFigure(Fig14Mondial[:2], doc, []Engine{EngineSPEX, EngineTreeWalk}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteTable(&buf, "Figure 14 (MONDIAL)", ms)
	out := buf.String()
	for _, want := range []string{"Figure 14", "class", "spex", "treewalk", "_*.province.city"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestRunSPEXObserved checks that an observed measurement populates the
// metrics registry and emits progress lines.
func TestRunSPEXObserved(t *testing.T) {
	doc := Dataset("mondial", 0.05).Bytes()
	var progress bytes.Buffer
	o := &Observer{
		Metrics:  obs.NewMetrics(),
		Progress: &progress,
		Interval: time.Millisecond, // fire often enough for a tiny document
	}
	m, err := RunSPEXObserved(Fig14Mondial[0], doc, o)
	if err != nil {
		t.Fatal(err)
	}
	s := o.Metrics.Snapshot()
	if s.Events == 0 || s.Elements != m.Elements || s.Matches != m.Matches {
		t.Errorf("registry events=%d elements=%d matches=%d; measurement elements=%d matches=%d",
			s.Events, s.Elements, s.Matches, m.Elements, m.Matches)
	}
	if len(s.Transducers) == 0 || s.MaxStack == 0 {
		t.Errorf("per-transducer instruments missing: %+v", s)
	}
	if !strings.Contains(progress.String(), "events") {
		t.Errorf("no progress lines: %q", progress.String())
	}
}

func TestWriteJSON(t *testing.T) {
	doc := Dataset("mondial", 0.02).Bytes()
	ms, err := RunFigure(Fig14Mondial[:1], doc, []Engine{EngineSPEX}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ms); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("entries: %d", len(got))
	}
	for _, field := range []string{"engine", "query", "elapsed_ns", "ns_per_element", "alloc_bytes", "live_bytes"} {
		if _, ok := got[0][field]; !ok {
			t.Errorf("missing field %q in %v", field, got[0])
		}
	}
}

func TestDatasetLookup(t *testing.T) {
	for _, name := range DatasetNames() {
		if Dataset(name, 0.001) == nil {
			t.Errorf("Dataset(%q) = nil", name)
		}
	}
	if Dataset("nope", 1) != nil {
		t.Error("unknown dataset should be nil")
	}
}
