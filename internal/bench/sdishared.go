package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/multi"
	"repro/internal/xmlstream"
)

// The shared-SDI experiment: real subscription corpora are not independent —
// subscribers copy each other's queries, wrap them in extra qualifiers, or
// phrase the same selection differently. This harness generates such an
// overlapping corpus and compares per-query private networks (the naive SDI
// deployment) against the query-set compiler's merged network, checking that
// the per-query answers stay identical while the per-stream cost grows
// sublinearly in the subscription count.

// SDISharedMeasurement is one (subscription count, engine) cell of the
// shared-corpus sweep.
type SDISharedMeasurement struct {
	Dataset  string
	Subs     int
	Overlap  float64
	Mode     string // "sequential" (one network per query) or "merged"
	Elements int64
	Matches  int64 // total answers over all subscriptions
	Elapsed  time.Duration
	// Static pre-pass statistics (merged rows only).
	NaiveTransducers  int
	MergedTransducers int
	Pruned            int
	Collapsed         int
	Contained         int
	// Speedup is sequential elapsed / merged elapsed for merged rows.
	Speedup float64
	// counts carries the per-subscription answer tallies for CheckSDIShared.
	counts map[string]int64
}

// ElementsPerSec is the measurement's throughput.
func (m SDISharedMeasurement) ElementsPerSec() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Elements) / m.Elapsed.Seconds()
}

// SharedSubscriptions returns n subscription queries over the DMOZ structure
// shape with tunable overlap: with probability `overlap` a query derives
// from an earlier one — an exact duplicate, an equivalent rephrasing (a
// nullable qualifier the canonicalizer eliminates), a contained narrowing
// (an extra structural qualifier), or a shared-spine/divergent-tail sibling.
// A fixed sprinkle of statically unsatisfiable subscriptions (contradictory
// attribute predicates) exercises pruning. Deterministic in (n, overlap,
// seed).
func SharedSubscriptions(n int, overlap float64, seed int64) []string {
	if overlap < 0 {
		overlap = 0
	}
	if overlap > 1 {
		overlap = 1
	}
	rng := rand.New(rand.NewSource(seed))
	fresh := func() string {
		q := sdiHeads[rng.Intn(len(sdiHeads))]
		for k := rng.Intn(3); k > 0; k-- {
			q += "[" + sdiLabels[rng.Intn(len(sdiLabels))] + "]"
		}
		return q + "." + sdiLabels[rng.Intn(len(sdiLabels))]
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i%13 == 7 {
			// Statically unsatisfiable: an attribute cannot carry two
			// different values at once.
			out = append(out, fresh()+`[@spex="a" and @spex="b"]`)
			continue
		}
		if len(out) > 0 && rng.Float64() < overlap {
			base := out[rng.Intn(len(out))]
			switch rng.Intn(4) {
			case 0: // exact duplicate
				out = append(out, base)
			case 1: // equivalent: a nullable qualifier changes nothing
				out = append(out, base+"["+sdiLabels[rng.Intn(len(sdiLabels))]+"*]")
			case 2: // contained: one extra structural qualifier narrows it
				out = append(out, base+"["+sdiLabels[rng.Intn(len(sdiLabels))]+"]")
			default: // shared spine, divergent tail
				out = append(out, base+"."+sdiLabels[rng.Intn(len(sdiLabels))])
			}
			continue
		}
		out = append(out, fresh())
	}
	return out
}

// RunSDIShared measures one shared-corpus configuration over the serialized
// document: merged selects the query-set compiler's network, otherwise each
// query runs on its own private network (the naive SDI baseline). Parsing
// and compilation are inside the timer, as everywhere in this harness.
func RunSDIShared(queries []string, doc []byte, elements int64, merged bool, o *Observer) (SDISharedMeasurement, error) {
	m := SDISharedMeasurement{Dataset: "dmoz-structure", Subs: len(queries), Elements: elements}
	mode := "sequential"
	if merged {
		mode = "merged"
	}
	m.Mode = mode
	w := Workload{Dataset: m.Dataset, Query: fmt.Sprintf("sdi-shared %d subs, %s", len(queries), mode)}
	stopProgress := o.startProgress(w)
	defer stopProgress()
	start := time.Now()

	subs, err := sdiSubscriptions(queries)
	if err != nil {
		return m, err
	}
	// The sdi-shared corpus carries attribute predicates, so the scanner
	// must deliver attributes for the unsatisfiable members' baselines.
	if merged {
		set, err := multi.NewMergedSet(subs)
		if err != nil {
			return m, err
		}
		src := xmlstream.NewScanner(bytes.NewReader(doc),
			xmlstream.WithText(false), xmlstream.WithAttributes(true), xmlstream.WithSymtab(set.Symtab()))
		if err := set.Run(src); err != nil {
			return m, err
		}
		m.counts = set.Matches()
		st := set.MergeStats()
		m.NaiveTransducers = st.NaiveTransducers
		m.MergedTransducers = st.MergedTransducers
		m.Pruned = st.Pruned
		m.Collapsed = st.Collapsed
		m.Contained = st.Contained
	} else {
		set, err := multi.NewSet(subs)
		if err != nil {
			return m, err
		}
		src := xmlstream.NewScanner(bytes.NewReader(doc),
			xmlstream.WithText(false), xmlstream.WithAttributes(true), xmlstream.WithSymtab(set.Symtab()))
		if err := set.Run(src); err != nil {
			return m, err
		}
		m.counts = set.Matches()
	}
	m.Elapsed = time.Since(start)
	for _, n := range m.counts {
		m.Matches += n
	}
	return m, nil
}

// SDISharedSubCounts is the default subscription-count axis of the sweep.
var SDISharedSubCounts = []int{16, 64, 256}

// SDISharedOverlap is the default corpus overlap probability.
const SDISharedOverlap = 0.6

// sdiSharedSeed pins the corpus so every run (and the delta gate) measures
// the same workload.
const sdiSharedSeed = 2003

// RunSDISharedSweep measures every subscription count twice — per-query
// private networks, then the merged network — computing each merged row's
// speedup against its sequential sibling.
func RunSDISharedSweep(scale, overlap float64, subCounts []int, progress io.Writer, o *Observer) ([]SDISharedMeasurement, error) {
	doc := Dataset("dmoz-structure", scale).Bytes()
	info, err := xmlstream.Measure(xmlstream.NewScanner(bytes.NewReader(doc)))
	if err != nil {
		return nil, err
	}
	var out []SDISharedMeasurement
	for _, subs := range subCounts {
		queries := SharedSubscriptions(subs, overlap, sdiSharedSeed)
		report := func(m SDISharedMeasurement) {
			if progress != nil {
				fmt.Fprintf(progress, "  sdi-shared %4d subs %-10s  %9.1f ms  %9d matches  %11.0f elems/s\n",
					m.Subs, m.Mode, float64(m.Elapsed.Microseconds())/1000, m.Matches, m.ElementsPerSec())
			}
		}
		seq, err := RunSDIShared(queries, doc, info.Elements, false, o)
		if err != nil {
			return out, err
		}
		seq.Overlap = overlap
		report(seq)
		out = append(out, seq)
		mrg, err := RunSDIShared(queries, doc, info.Elements, true, o)
		if err != nil {
			return out, err
		}
		mrg.Overlap = overlap
		if mrg.Elapsed > 0 {
			mrg.Speedup = seq.Elapsed.Seconds() / mrg.Elapsed.Seconds()
		}
		report(mrg)
		out = append(out, mrg)
	}
	return out, nil
}

// CheckSDIShared validates the sweep: each subscription count's sequential
// and merged rows must report identical per-query answer counts, answers
// must exist at all, and the merged network must be strictly smaller than
// the sum of private networks.
func CheckSDIShared(ms []SDISharedMeasurement) error {
	byLevel := make(map[int]map[string]SDISharedMeasurement)
	for _, m := range ms {
		if byLevel[m.Subs] == nil {
			byLevel[m.Subs] = make(map[string]SDISharedMeasurement)
		}
		byLevel[m.Subs][m.Mode] = m
	}
	for subs, modes := range byLevel {
		seq, sok := modes["sequential"]
		mrg, mok := modes["merged"]
		if !sok || !mok {
			return fmt.Errorf("sdi-shared: %d subs: missing sequential or merged row", subs)
		}
		if seq.Matches == 0 {
			return fmt.Errorf("sdi-shared: %d subs: sequential baseline reported zero answers", subs)
		}
		if len(seq.counts) != len(mrg.counts) {
			return fmt.Errorf("sdi-shared: %d subs: %d sequential queries vs %d merged", subs, len(seq.counts), len(mrg.counts))
		}
		for name, want := range seq.counts {
			if got := mrg.counts[name]; got != want {
				return fmt.Errorf("sdi-shared: %d subs: %s: merged counted %d answers, sequential %d", subs, name, got, want)
			}
		}
		if mrg.MergedTransducers >= mrg.NaiveTransducers {
			return fmt.Errorf("sdi-shared: %d subs: merged network not smaller (naive %d, merged %d)",
				subs, mrg.NaiveTransducers, mrg.MergedTransducers)
		}
	}
	return nil
}

// WriteSDISharedTable renders the sweep as a table, one row per engine run.
func WriteSDISharedTable(w io.Writer, title string, ms []SDISharedMeasurement) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "subs\tmode\ttransducers\tpruned\tcollapsed\tmatches\telapsed [ms]\telems/s\tspeedup")
	for _, m := range ms {
		transducers, pruned, collapsed, speedup := "-", "-", "-", "-"
		if m.Mode == "merged" {
			transducers = fmt.Sprintf("%d (naive %d)", m.MergedTransducers, m.NaiveTransducers)
			pruned = fmt.Sprintf("%d", m.Pruned)
			collapsed = fmt.Sprintf("%d", m.Collapsed)
			if m.Speedup > 0 {
				speedup = fmt.Sprintf("%.2fx", m.Speedup)
			}
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%d\t%.1f\t%.0f\t%s\n",
			m.Subs, m.Mode, transducers, pruned, collapsed, m.Matches,
			float64(m.Elapsed.Microseconds())/1000, m.ElementsPerSec(), speedup)
	}
	tw.Flush()
}

// jsonSDIShared is the machine-readable row of BENCH_sdi_shared.json.
type jsonSDIShared struct {
	Dataset           string  `json:"dataset"`
	Subs              int     `json:"subs"`
	Overlap           float64 `json:"overlap"`
	Mode              string  `json:"mode"`
	Elements          int64   `json:"elements"`
	Matches           int64   `json:"matches"`
	ElapsedNs         int64   `json:"elapsed_ns"`
	ElementsPerSec    float64 `json:"elements_per_sec"`
	NaiveTransducers  int     `json:"naive_transducers,omitempty"`
	MergedTransducers int     `json:"merged_transducers,omitempty"`
	Pruned            int     `json:"pruned,omitempty"`
	Collapsed         int     `json:"collapsed,omitempty"`
	Contained         int     `json:"contained,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
}

// WriteSDISharedJSON renders the sweep as an indented JSON array.
func WriteSDISharedJSON(w io.Writer, ms []SDISharedMeasurement) error {
	out := make([]jsonSDIShared, 0, len(ms))
	for _, m := range ms {
		out = append(out, jsonSDIShared{
			Dataset:           m.Dataset,
			Subs:              m.Subs,
			Overlap:           m.Overlap,
			Mode:              m.Mode,
			Elements:          m.Elements,
			Matches:           m.Matches,
			ElapsedNs:         m.Elapsed.Nanoseconds(),
			ElementsPerSec:    m.ElementsPerSec(),
			NaiveTransducers:  m.NaiveTransducers,
			MergedTransducers: m.MergedTransducers,
			Pruned:            m.Pruned,
			Collapsed:         m.Collapsed,
			Contained:         m.Contained,
			Speedup:           m.Speedup,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
