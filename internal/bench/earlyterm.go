package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spexnet"
)

// EarlyTermMeasurement is one row of the early-termination figure: a limited
// (`limit k`) query and its unlimited twin on the same document. The figure's
// claim is the earliest-decision property end to end — the limited evaluation
// reads an input-size-independent prefix of the stream (ConsumedElements
// stays flat while TotalElements grows with scale) because the network
// releases itself and the scanner disconnects at the determining event.
type EarlyTermMeasurement struct {
	Dataset string
	Query   string
	Limit   int64
	Scale   float64

	// The unlimited twin: full document size, full answer count, full time.
	TotalElements    int64
	TotalMatches     int64
	UnlimitedElapsed time.Duration

	// The limited pass: the prefix actually consumed and what it cost.
	ConsumedElements int64
	Matches          int64
	Determined       bool
	Elapsed          time.Duration

	// Sink-side lifecycle evidence from the limited pass's registry: with a
	// limit the decision-latency histogram only ever sees the first k
	// answers, so its mass sits at the head of the distribution.
	DecisionCount      int64
	DecisionMeanEvents float64
	EarlyTerminations  int64
}

// EarlyTermQueries are the limited workloads of the figure: the paper's DMOZ
// class-1 query under first-answer and small-k limits. Qualifier-free on
// purpose — the bench-delta regression gate watches the qualifier rows of
// Figure 15, and a prefix read's ns/element is too noisy to gate on.
var EarlyTermQueries = []struct {
	Query string
	Limit int64
}{
	{"_*.Topic.Title", 1},
	{"_*.Topic.Title", 16},
}

// EarlyTermScaleFactors multiply the base scale: the figure runs the same
// limited query on growing documents to exhibit the flat consumed prefix.
var EarlyTermScaleFactors = []float64{1, 2, 4}

// RunEarlyTerm measures the early-termination figure on dmoz-structure at
// base scale × EarlyTermScaleFactors. Every row is self-checking: the
// limited pass's answers must be exactly the first k answers of the
// unlimited pass, in document order (the §V correctness argument applied to
// the truncated evaluation).
func RunEarlyTerm(scale float64, progress io.Writer) ([]EarlyTermMeasurement, error) {
	const ds = "dmoz-structure"
	var out []EarlyTermMeasurement
	for _, factor := range EarlyTermScaleFactors {
		s := scale * factor
		data := Dataset(ds, s).Bytes()
		for _, q := range EarlyTermQueries {
			m, err := runEarlyTermRow(ds, s, data, q.Query, q.Limit)
			if err != nil {
				return out, fmt.Errorf("bench: early-term %s limit %d at scale %g: %w", q.Query, q.Limit, s, err)
			}
			out = append(out, m)
			if progress != nil {
				fmt.Fprintf(progress, "  %-24s limit %-3d scale %-5g  %8d of %8d elements (%.2f%%), %d matches\n",
					q.Query, q.Limit, s, m.ConsumedElements, m.TotalElements,
					100*float64(m.ConsumedElements)/float64(max64(m.TotalElements, 1)), m.Matches)
			}
		}
	}
	return out, nil
}

func runEarlyTermRow(ds string, scale float64, data []byte, query string, limit int64) (EarlyTermMeasurement, error) {
	m := EarlyTermMeasurement{Dataset: ds, Query: query, Limit: limit, Scale: scale}
	plan, err := core.Prepare(query)
	if err != nil {
		return m, err
	}

	// The unlimited twin, collecting answer indices for the prefix check.
	var fullIdx []int64
	start := time.Now()
	fullStats, err := plan.EvaluateReader(bytes.NewReader(data), core.EvalOptions{
		Mode: spexnet.ModeNodes,
		Sink: func(r spexnet.Result) { fullIdx = append(fullIdx, r.Index) },
	})
	if err != nil {
		return m, err
	}
	m.UnlimitedElapsed = time.Since(start)
	m.TotalElements = fullStats.Elements
	m.TotalMatches = fullStats.Output.Matches

	// The limited pass: same document, `limit k` plan, instrumented sink.
	reg := obs.NewMetrics()
	var limIdx []int64
	start = time.Now()
	limStats, err := plan.Limited(limit).EvaluateReader(bytes.NewReader(data), core.EvalOptions{
		Mode:        spexnet.ModeNodes,
		Sink:        func(r spexnet.Result) { limIdx = append(limIdx, r.Index) },
		SinkMetrics: reg,
	})
	if err != nil {
		return m, err
	}
	m.Elapsed = time.Since(start)
	m.ConsumedElements = limStats.Elements
	m.Matches = limStats.Output.Matches
	m.Determined = limStats.Output.Determined
	m.DecisionCount = int64(reg.DecisionLatency.Count())
	if c := reg.DecisionLatency.Count(); c > 0 {
		m.DecisionMeanEvents = float64(reg.DecisionLatency.Sum()) / float64(c)
	}
	m.EarlyTerminations = reg.EarlyTerm.Load()

	// Prefix cross-validation: a limited evaluation answers exactly the
	// first min(k, total) answers of the unlimited one.
	want := fullIdx
	if int64(len(want)) > limit {
		want = want[:limit]
	}
	if int64(len(limIdx)) != int64(len(want)) {
		return m, fmt.Errorf("limited pass delivered %d answers, want the first %d of %d", len(limIdx), len(want), len(fullIdx))
	}
	for i := range want {
		if limIdx[i] != want[i] {
			return m, fmt.Errorf("limited answer %d has index %d, unlimited has %d", i, limIdx[i], want[i])
		}
	}
	if m.TotalMatches > limit && !m.Determined {
		return m, fmt.Errorf("limit %d reached (of %d answers) but the network never reported determination", limit, m.TotalMatches)
	}
	return m, nil
}

// WriteEarlyTermTable renders the figure as text: per scale and limit, the
// consumed prefix against the document, and the limited vs unlimited time.
func WriteEarlyTermTable(w io.Writer, title string, ms []EarlyTermMeasurement) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-20s %5s %7s %12s %12s %7s %12s %12s\n",
		"query", "limit", "scale", "consumed", "total", "read%", "limited", "unlimited")
	for _, m := range ms {
		pct := 100 * float64(m.ConsumedElements) / float64(max64(m.TotalElements, 1))
		fmt.Fprintf(w, "%-20s %5d %7g %12d %12d %6.2f%% %9.2f ms %9.2f ms\n",
			m.Query, m.Limit, m.Scale, m.ConsumedElements, m.TotalElements, pct,
			float64(m.Elapsed.Microseconds())/1000, float64(m.UnlimitedElapsed.Microseconds())/1000)
	}
}

// jsonEarlyTerm is the machine-readable row of BENCH_early_term.json. It
// deliberately has no engine/ns_per_element fields: the delta tooling gates
// on steady-state throughput rows, and a truncated prefix read is not one.
type jsonEarlyTerm struct {
	Dataset            string  `json:"dataset"`
	Query              string  `json:"query"`
	Limit              int64   `json:"limit"`
	Scale              float64 `json:"scale"`
	TotalElements      int64   `json:"total_elements"`
	TotalMatches       int64   `json:"total_matches"`
	ConsumedElements   int64   `json:"consumed_elements"`
	ConsumedPct        float64 `json:"consumed_pct"`
	Matches            int64   `json:"matches"`
	Determined         bool    `json:"determined"`
	ElapsedNs          int64   `json:"elapsed_ns"`
	UnlimitedElapsedNs int64   `json:"unlimited_elapsed_ns"`
	DecisionCount      int64   `json:"decision_count"`
	DecisionMeanEvents float64 `json:"decision_mean_events"`
	EarlyTerminations  int64   `json:"early_terminations"`
}

// WriteEarlyTermJSON renders the figure's BENCH_early_term.json report.
func WriteEarlyTermJSON(w io.Writer, ms []EarlyTermMeasurement) error {
	out := make([]jsonEarlyTerm, 0, len(ms))
	for _, m := range ms {
		out = append(out, jsonEarlyTerm{
			Dataset:            m.Dataset,
			Query:              m.Query,
			Limit:              m.Limit,
			Scale:              m.Scale,
			TotalElements:      m.TotalElements,
			TotalMatches:       m.TotalMatches,
			ConsumedElements:   m.ConsumedElements,
			ConsumedPct:        100 * float64(m.ConsumedElements) / float64(max64(m.TotalElements, 1)),
			Matches:            m.Matches,
			Determined:         m.Determined,
			ElapsedNs:          m.Elapsed.Nanoseconds(),
			UnlimitedElapsedNs: m.UnlimitedElapsed.Nanoseconds(),
			DecisionCount:      m.DecisionCount,
			DecisionMeanEvents: m.DecisionMeanEvents,
			EarlyTerminations:  m.EarlyTerminations,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
