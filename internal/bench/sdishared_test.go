package bench

import (
	"strings"
	"testing"
)

func TestSharedSubscriptionsDeterministicAndParseable(t *testing.T) {
	a := SharedSubscriptions(64, 0.6, sdiSharedSeed)
	b := SharedSubscriptions(64, 0.6, sdiSharedSeed)
	if len(a) != 64 {
		t.Fatalf("len = %d, want 64", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if _, err := sdiSubscriptions(a); err != nil {
		t.Fatal(err)
	}
	// The corpus must actually overlap: duplicates and unsatisfiable
	// members are both part of the generated shape.
	seen := map[string]bool{}
	dups, unsat := 0, 0
	for _, q := range a {
		if seen[q] {
			dups++
		}
		seen[q] = true
		if strings.Contains(q, `@spex="a"`) {
			unsat++
		}
	}
	if dups == 0 {
		t.Error("no duplicate queries in a 0.6-overlap corpus")
	}
	if unsat == 0 {
		t.Error("no unsatisfiable queries in the corpus")
	}
	// Zero overlap still parses and still sprinkles unsatisfiable members.
	if _, err := sdiSubscriptions(SharedSubscriptions(32, 0, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestSDISharedSweepCrossChecks(t *testing.T) {
	ms, err := RunSDISharedSweep(0.001, SDISharedOverlap, []int{8, 24}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2; len(ms) != want {
		t.Fatalf("rows: %d, want %d", len(ms), want)
	}
	if err := CheckSDIShared(ms); err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Mode == "merged" {
			if m.Speedup <= 0 {
				t.Errorf("merged row without speedup ratio: %+v", m)
			}
			if m.MergedTransducers <= 0 || m.NaiveTransducers <= m.MergedTransducers {
				t.Errorf("merged row without sharing: %+v", m)
			}
			if m.Pruned == 0 {
				t.Errorf("merged row pruned nothing (corpus sprinkles unsatisfiable queries): %+v", m)
			}
		}
	}

	var sb strings.Builder
	WriteSDISharedTable(&sb, "SDI shared", ms)
	if !strings.Contains(sb.String(), "merged") {
		t.Errorf("table missing merged rows:\n%s", sb.String())
	}
	sb.Reset()
	if err := WriteSDISharedJSON(&sb, ms); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"mode": "merged"`, `"naive_transducers"`, `"speedup"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("json missing %s", want)
		}
	}
}

func TestCheckSDISharedCatchesDivergence(t *testing.T) {
	seq := SDISharedMeasurement{Subs: 4, Mode: "sequential", Matches: 10,
		counts: map[string]int64{"a": 6, "b": 4}}
	mrg := SDISharedMeasurement{Subs: 4, Mode: "merged", Matches: 9,
		counts: map[string]int64{"a": 6, "b": 3}, NaiveTransducers: 10, MergedTransducers: 5}
	if err := CheckSDIShared([]SDISharedMeasurement{seq, mrg}); err == nil {
		t.Fatal("divergent counts not caught")
	}
	mrg.counts["b"] = 4
	mrg.Matches = 10
	if err := CheckSDIShared([]SDISharedMeasurement{seq, mrg}); err != nil {
		t.Fatalf("agreeing rows rejected: %v", err)
	}
}
