package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// The obs-overhead ablation: the same workload evaluated twice, once bare
// (no metrics registry, the NoObs leg) and once fully instrumented (live
// registry, candidate-lifecycle histograms observing every decision), so
// the cost of observability is a measured number rather than a hope. CI
// gates on the throughput ratio — the batched counter design in spexnet is
// only honest if this figure stays small.

// OverheadReport is the BENCH_obs_overhead.json document: best-of-iters
// timings for both legs plus the instrumented leg's histogram evidence
// (non-zero counts prove the lifecycle instruments actually observed).
type OverheadReport struct {
	Dataset  string `json:"dataset"`
	Query    string `json:"query"`
	Elements int64  `json:"elements"`
	Events   int64  `json:"events"`
	Matches  int64  `json:"matches"`
	Iters    int    `json:"iters"`

	NoObsNs        int64 `json:"noobs_ns"`
	InstrumentedNs int64 `json:"instrumented_ns"`

	NoObsEventsPerSec        float64 `json:"noobs_events_per_sec"`
	InstrumentedEventsPerSec float64 `json:"instrumented_events_per_sec"`
	// OverheadPct is the throughput loss of the instrumented leg relative
	// to the NoObs leg, in percent; negative means instrumented came out
	// faster (noise on small documents).
	OverheadPct float64 `json:"overhead_pct"`

	DecisionLatencyCount   int64 `json:"decision_latency_count"`
	CandidateLifetimeCount int64 `json:"candidate_lifetime_count"`
	StreamLatencyCount     int64 `json:"stream_latency_count"`
}

// overheadWorkload is the measured query: class 2 (one qualifier), so
// answer candidates stay undecided long enough for the decision-latency and
// candidate-lifetime histograms to accumulate real distributions.
var overheadWorkload = Workload{Dataset: "dmoz-structure", Class: 2, Query: "_*.Topic[editor].Title"}

// RunObsOverhead measures the ablation: iters interleaved pairs of NoObs
// and instrumented evaluations of the qualifier workload on the
// DMOZ-shaped structure document, reporting the best (minimum) elapsed of
// each leg. Interleaving, GC bracketing and best-of-N together keep
// allocator and scheduler noise out of the ratio.
func RunObsOverhead(scale float64, iters int, progress io.Writer) (OverheadReport, error) {
	if iters < 1 {
		iters = 1
	}
	r := OverheadReport{Dataset: overheadWorkload.Dataset, Query: overheadWorkload.Query, Iters: iters}
	doc := Dataset(r.Dataset, scale).Bytes()

	leg := func(m *obs.Metrics) (time.Duration, spexnet.Stats, error) {
		runtime.GC()
		start := time.Now()
		plan, err := core.Prepare(r.Query)
		if err != nil {
			return 0, spexnet.Stats{}, err
		}
		src := xmlstream.NewScanner(bytes.NewReader(doc), xmlstream.WithText(false))
		stats, err := plan.Evaluate(src, core.EvalOptions{Mode: spexnet.ModeCount, Metrics: m})
		return time.Since(start), stats, err
	}

	var bestBare, bestObs time.Duration
	var metrics *obs.Metrics
	for i := 0; i < iters; i++ {
		bare, stats, err := leg(nil)
		if err != nil {
			return r, fmt.Errorf("bench: obs-overhead noobs leg: %w", err)
		}
		if bestBare == 0 || bare < bestBare {
			bestBare = bare
		}
		// A fresh registry per instrumented leg: the report's histogram
		// counts then describe exactly one evaluation.
		m := obs.NewMetrics()
		instr, istats, err := leg(m)
		if err != nil {
			return r, fmt.Errorf("bench: obs-overhead instrumented leg: %w", err)
		}
		if bestObs == 0 || instr < bestObs {
			bestObs = instr
			metrics = m
		}
		r.Elements = stats.Elements
		r.Events = stats.Events
		r.Matches = istats.Output.Matches
		if stats.Output.Matches != istats.Output.Matches {
			return r, fmt.Errorf("bench: obs-overhead legs disagree: noobs %d matches, instrumented %d",
				stats.Output.Matches, istats.Output.Matches)
		}
		if progress != nil {
			fmt.Fprintf(progress, "  obs-overhead iter %d/%d: noobs %.1f ms, instrumented %.1f ms\n",
				i+1, iters, float64(bare.Microseconds())/1000, float64(instr.Microseconds())/1000)
		}
	}

	r.NoObsNs = bestBare.Nanoseconds()
	r.InstrumentedNs = bestObs.Nanoseconds()
	if bestBare > 0 {
		r.NoObsEventsPerSec = float64(r.Events) / bestBare.Seconds()
	}
	if bestObs > 0 {
		r.InstrumentedEventsPerSec = float64(r.Events) / bestObs.Seconds()
	}
	if r.NoObsEventsPerSec > 0 {
		r.OverheadPct = (1 - r.InstrumentedEventsPerSec/r.NoObsEventsPerSec) * 100
	}
	if metrics != nil {
		r.DecisionLatencyCount = metrics.DecisionLatency.Count()
		r.CandidateLifetimeCount = metrics.CandidateLifetime.Count()
		r.StreamLatencyCount = metrics.StreamLatencyNs.Count()
	}
	return r, nil
}

// WriteObsOverheadTable renders the ablation as a short report.
func WriteObsOverheadTable(w io.Writer, title string, r OverheadReport) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  %-14s %-28s %d elements, %d events, %d matches\n", r.Dataset, r.Query, r.Elements, r.Events, r.Matches)
	fmt.Fprintf(w, "  noobs:        %9.1f ms  %12.0f events/s\n", float64(r.NoObsNs)/1e6, r.NoObsEventsPerSec)
	fmt.Fprintf(w, "  instrumented: %9.1f ms  %12.0f events/s  (overhead %.1f%%)\n",
		float64(r.InstrumentedNs)/1e6, r.InstrumentedEventsPerSec, r.OverheadPct)
	fmt.Fprintf(w, "  lifecycle histograms: %d decisions, %d lifetimes, %d stream-latency samples\n",
		r.DecisionLatencyCount, r.CandidateLifetimeCount, r.StreamLatencyCount)
}

// WriteObsOverheadJSON renders the report as indented JSON.
func WriteObsOverheadJSON(w io.Writer, r OverheadReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
