package bench

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/governor"
	"repro/internal/spexnet"
)

// EngineGoverned labels the capped leg of the adversarial sweep: SPEX
// running under AdversarialLimits with the fail policy.
const EngineGoverned Engine = "spex-governed"

// AdversarialLimits is the cap set the governed leg of the sweep runs
// under, chosen so the memory bombs of the corpus (deep nesting, late
// qualifier witnesses) trip long before the attack completes, while the
// throughput shapes (fanout, emptyrun) — whose candidates decide instantly
// — finish untouched.
func AdversarialLimits() governor.Limits {
	return governor.Limits{MaxCandidates: 4096, MaxDepth: 2048}
}

// RunAdversarial sweeps the adversarial corpus (dataset.AdversarialAt)
// twice per shape: ungoverned — the correctness leg, which must report the
// corpus's pinned answer count — and under AdversarialLimits, proving a
// capped run terminates promptly with a typed governor trip instead of
// absorbing the attack. The scale factor shrinks the shapes for smoke runs;
// Want tracks the scaling, so the sweep stays self-checking at any size.
func RunAdversarial(scale float64, progress io.Writer, o *Observer) ([]Measurement, error) {
	var out []Measurement
	for _, c := range dataset.AdversarialAt(scale) {
		m, err := runAdversarialCase(c, nil, o)
		if err != nil {
			return out, fmt.Errorf("bench: adversarial %s: %w", c.Doc.Name, err)
		}
		if m.Matches != c.Want {
			return out, fmt.Errorf("bench: adversarial %s: %d matches, want %d", c.Doc.Name, m.Matches, c.Want)
		}
		out = append(out, m)
		if progress != nil {
			fmt.Fprintf(progress, "  %-14s %-12s %-14s %s\n", m.Engine, c.Doc.Name, c.Query, renderCell(m))
		}

		gov := &governor.Config{Limits: AdversarialLimits(), Policy: governor.PolicyFail}
		gm, err := runAdversarialCase(c, gov, o)
		gm.Engine = EngineGoverned
		var lerr *governor.LimitError
		switch {
		case err == nil:
			// The shape fits the caps and completes untouched.
		case errors.As(err, &lerr):
			gm.Skipped = fmt.Sprintf("governor: %s limit (%d) tripped after %.1f ms",
				lerr.Resource, lerr.Limit, float64(gm.Elapsed.Microseconds())/1000)
		default:
			return out, fmt.Errorf("bench: adversarial %s governed: %w", c.Doc.Name, err)
		}
		out = append(out, gm)
		if progress != nil {
			fmt.Fprintf(progress, "  %-14s %-12s %-14s %s\n", gm.Engine, c.Doc.Name, c.Query, renderCell(gm))
		}
	}
	return out, nil
}

// runAdversarialCase measures one shape, streaming the document straight
// from its generator (nothing is materialized — several shapes exist to
// attack whoever buffers them). A governor trip still reports the elapsed
// time to the trip.
func runAdversarialCase(c dataset.AdversarialCase, gov *governor.Config, o *Observer) (Measurement, error) {
	m := Measurement{Engine: EngineSPEX, Dataset: c.Doc.Name, Query: c.Query}
	plan, err := core.Prepare(c.Query)
	if err != nil {
		return m, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	stats, err := plan.Evaluate(c.Doc.Stream(), core.EvalOptions{
		Mode: spexnet.ModeCount, Metrics: o.metrics(), Governor: gov,
	})
	m.Elapsed = time.Since(start)
	if err != nil {
		return m, err
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	m.AllocBytes = after.TotalAlloc - before.TotalAlloc
	m.LiveBytes = heapDelta(before, after)
	m.Matches = stats.Output.Matches
	m.Elements = stats.Elements
	return m, nil
}

// WriteAdversarialTable renders the sweep: per shape, the ungoverned
// correctness leg and the governed outcome side by side.
func WriteAdversarialTable(w io.Writer, title string, ms []Measurement) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shape\tquery\tengine\tmatches\tms\tlive MB\toutcome")
	for _, m := range ms {
		matches, outcome := fmt.Sprintf("%d", m.Matches), "completed"
		if m.Skipped != "" {
			matches, outcome = "-", m.Skipped
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.1f\t%.1f\t%s\n",
			m.Dataset, m.Query, m.Engine, matches,
			float64(m.Elapsed.Microseconds())/1000, float64(m.LiveBytes)/(1<<20), outcome)
	}
	tw.Flush()
}
