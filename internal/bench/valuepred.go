package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// The value-pred figure: the same selection over the tickets corpus phrased
// as an attribute predicate, a structural qualifier, and a text test. The
// corpus mirrors each item's attributes as trailing child elements, so the
// three phrasings select identical answer sets while their decision points
// differ maximally: an attribute predicate resolves at the item's *start*
// message, before any of its subtree streams past, while the structural and
// text phrasings wait for the mirror children at the item's end. The
// sink-side decision-latency histogram (events from candidate creation to
// condition resolution) makes the difference measurable: the attribute rows
// sit at zero, the mirrored rows at roughly the item's subtree size.

// ValuePredMeasurement is one row of the figure.
type ValuePredMeasurement struct {
	Dataset string
	Kind    string // "attribute", "structural" or "text"
	Pair    string // rows of one pair must report identical answers
	Query   string

	Elements int64
	Matches  int64
	Elapsed  time.Duration

	// Decision evidence: how many candidate decisions the sink observed and
	// how many stream events a candidate waited for its decision on average.
	DecisionCount      int64
	DecisionMeanEvents float64
}

// NsPerElement is the row's cost rate.
func (m ValuePredMeasurement) NsPerElement() float64 {
	if m.Elements == 0 {
		return 0
	}
	return float64(m.Elapsed.Nanoseconds()) / float64(m.Elements)
}

// ValuePredWorkloads pairs each attribute-predicate query with its mirrored
// phrasing over the trailing child elements. Within a pair the answer sets
// are identical by corpus construction.
var ValuePredWorkloads = []struct {
	Kind  string
	Pair  string
	Query string
}{
	{"structural", "exists", `items.item[resolution].summary`},
	{"attribute", "exists", `items.item[@resolution].summary`},
	{"text", "compare", `items.item[state="closed"].summary`},
	{"attribute", "compare", `items.item[@status="closed"].summary`},
	{"text", "motivating", `items.item[state="closed" and not(resolution)].summary`},
	{"attribute", "motivating", `items.item[@status="closed" and not(@resolution)].summary`},
}

// RunValuePred measures every workload of the figure on the tickets corpus
// at the given scale. Each run gets a fresh metrics registry, so the
// decision-latency histogram belongs to that row alone.
func RunValuePred(scale float64, progress io.Writer) ([]ValuePredMeasurement, error) {
	doc := Dataset("tickets", scale).Bytes()
	info, err := xmlstream.Measure(xmlstream.NewScanner(bytes.NewReader(doc)))
	if err != nil {
		return nil, err
	}
	var out []ValuePredMeasurement
	for _, w := range ValuePredWorkloads {
		m := ValuePredMeasurement{Dataset: "tickets", Kind: w.Kind, Pair: w.Pair, Query: w.Query, Elements: info.Elements}
		plan, err := core.Prepare(w.Query)
		if err != nil {
			return out, fmt.Errorf("bench: value-pred query %q: %w", w.Query, err)
		}
		reg := obs.NewMetrics()
		start := time.Now()
		stats, err := plan.EvaluateReader(bytes.NewReader(doc), core.EvalOptions{
			Mode:        spexnet.ModeCount,
			SinkMetrics: reg,
		})
		if err != nil {
			return out, fmt.Errorf("bench: value-pred %q: %w", w.Query, err)
		}
		m.Elapsed = time.Since(start)
		m.Matches = stats.Output.Matches
		m.DecisionCount = int64(reg.DecisionLatency.Count())
		if c := reg.DecisionLatency.Count(); c > 0 {
			m.DecisionMeanEvents = float64(reg.DecisionLatency.Sum()) / float64(c)
		}
		out = append(out, m)
		if progress != nil {
			fmt.Fprintf(progress, "  %-10s %-56s %8d matches  decision mean %7.1f events\n",
				w.Kind, w.Query, m.Matches, m.DecisionMeanEvents)
		}
	}
	return out, nil
}

// CheckValuePred validates the figure's claims: every row found answers,
// rows of one pair report identical answer sets, and each attribute row
// decided at the start message (zero decision latency) while its mirrored
// phrasing had to wait into the subtree.
func CheckValuePred(ms []ValuePredMeasurement) error {
	matches := map[string]map[string]int64{}
	for _, m := range ms {
		if m.Matches == 0 {
			return fmt.Errorf("value-pred: %s %q reported zero answers", m.Kind, m.Query)
		}
		if m.DecisionCount == 0 {
			return fmt.Errorf("value-pred: %s %q observed no candidate decisions", m.Kind, m.Query)
		}
		if matches[m.Pair] == nil {
			matches[m.Pair] = map[string]int64{}
		}
		matches[m.Pair][m.Kind] = m.Matches
		if m.Kind == "attribute" && m.DecisionMeanEvents != 0 {
			return fmt.Errorf("value-pred: attribute predicate %q did not decide at the start message (mean decision latency %.1f events)",
				m.Query, m.DecisionMeanEvents)
		}
		if m.Kind != "attribute" && m.DecisionMeanEvents <= 0 {
			return fmt.Errorf("value-pred: %s phrasing %q decided with zero latency; the mirror corpus should force a wait",
				m.Kind, m.Query)
		}
	}
	for pair, byKind := range matches {
		var want int64 = -1
		for kind, n := range byKind {
			if want == -1 {
				want = n
			} else if n != want {
				return fmt.Errorf("value-pred: pair %q disagrees on the answer set (%s reports %d, another phrasing %d)", pair, kind, n, want)
			}
		}
	}
	return nil
}

// WriteValuePredTable renders the figure as text.
func WriteValuePredTable(w io.Writer, title string, ms []ValuePredMeasurement) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s %-10s %-56s %9s %11s %14s\n",
		"pair", "kind", "query", "matches", "ns/element", "decision mean")
	for _, m := range ms {
		fmt.Fprintf(w, "%-12s %-10s %-56s %9d %11.0f %11.1f ev\n",
			m.Pair, m.Kind, m.Query, m.Matches, m.NsPerElement(), m.DecisionMeanEvents)
	}
}

// jsonValuePred is the machine-readable row of BENCH_value_pred.json.
type jsonValuePred struct {
	Dataset            string  `json:"dataset"`
	Kind               string  `json:"kind"`
	Pair               string  `json:"pair"`
	Query              string  `json:"query"`
	Elements           int64   `json:"elements"`
	Matches            int64   `json:"matches"`
	ElapsedNs          int64   `json:"elapsed_ns"`
	NsPerElement       float64 `json:"ns_per_element"`
	DecisionCount      int64   `json:"decision_count"`
	DecisionMeanEvents float64 `json:"decision_mean_events"`
}

// WriteValuePredJSON renders the figure's BENCH_value_pred.json report.
func WriteValuePredJSON(w io.Writer, ms []ValuePredMeasurement) error {
	out := make([]jsonValuePred, 0, len(ms))
	for _, m := range ms {
		out = append(out, jsonValuePred{
			Dataset:            m.Dataset,
			Kind:               m.Kind,
			Pair:               m.Pair,
			Query:              m.Query,
			Elements:           m.Elements,
			Matches:            m.Matches,
			ElapsedNs:          m.Elapsed.Nanoseconds(),
			NsPerElement:       m.NsPerElement(),
			DecisionCount:      m.DecisionCount,
			DecisionMeanEvents: m.DecisionMeanEvents,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
