// Package window combines SPEX with fixed-size windows over the stream,
// the technique of the stream-management systems the paper's introduction
// discusses (§I, ref. [6]): evaluation is restricted to a window of the
// input so that unbounded streams can be processed with hard memory caps —
// "however, this is at the cost of returning incorrect and/or incomplete
// answers". SPEX itself does not need windows (it is exact); this package
// provides them for workloads that want bounded answers per segment, and
// its tests demonstrate the exactness caveat the paper states.
//
// A window is a run of consecutive top-level records: children of the
// stream's root element. Each window is evaluated as its own document
// (bracketed by the original root), so answers within a record are exact
// and answers that depend on data across window boundaries may differ from
// the exact evaluation.
package window

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// Sink receives each answer with the index of the window that produced it.
type Sink func(window int, r spexnet.Result)

// Stats summarizes a windowed evaluation.
type Stats struct {
	Windows int   // windows evaluated
	Records int64 // top-level records consumed
	Matches int64 // answers over all windows
}

// Evaluate runs plan over src in windows of size top-level records.
func Evaluate(plan *core.Plan, src xmlstream.Source, size int, sink Sink) (Stats, error) {
	if size <= 0 {
		return Stats{}, fmt.Errorf("window: size must be positive, got %d", size)
	}
	w := &windower{plan: plan, src: src, size: size, sink: sink}
	return w.evaluate()
}

type windower struct {
	plan *core.Plan
	src  xmlstream.Source
	size int
	sink Sink

	root     string
	run      *core.Run
	window   int
	inWindow int
	depth    int
	stats    Stats
}

func (w *windower) evaluate() (Stats, error) {
	// Consume the document prologue: <$> and the root's start message.
	if err := w.expect(xmlstream.StartDocument); err != nil {
		return w.stats, err
	}
	ev, err := w.src.Next()
	if err != nil {
		return w.stats, fmt.Errorf("window: missing root element: %v", err)
	}
	if ev.Kind != xmlstream.StartElement {
		return w.stats, fmt.Errorf("window: expected the root element, got %s", ev)
	}
	w.root = ev.Name

	for {
		ev, err := w.src.Next()
		if err == io.EOF {
			return w.stats, fmt.Errorf("window: unexpected end of stream")
		}
		if err != nil {
			return w.stats, err
		}
		switch {
		case ev.Kind == xmlstream.StartElement && w.depth == 0:
			// A new top-level record begins.
			if w.run == nil {
				if err := w.openWindow(); err != nil {
					return w.stats, err
				}
			}
			w.depth = 1
			w.stats.Records++
			if err := w.feed(ev); err != nil {
				return w.stats, err
			}
		case ev.Kind == xmlstream.StartElement:
			w.depth++
			if err := w.feed(ev); err != nil {
				return w.stats, err
			}
		case ev.Kind == xmlstream.EndElement && w.depth == 0:
			// The root closes: final (possibly short) window ends.
			if ev.Name != w.root {
				return w.stats, fmt.Errorf("window: mismatched root end </%s>", ev.Name)
			}
			if err := w.closeWindow(); err != nil {
				return w.stats, err
			}
			if err := w.expect(xmlstream.EndDocument); err != nil {
				return w.stats, err
			}
			return w.stats, nil
		case ev.Kind == xmlstream.EndElement:
			w.depth--
			if err := w.feed(ev); err != nil {
				return w.stats, err
			}
			if w.depth == 0 {
				w.inWindow++
				if w.inWindow >= w.size {
					if err := w.closeWindow(); err != nil {
						return w.stats, err
					}
				}
			}
		default: // text between or inside records
			if w.depth > 0 {
				if err := w.feed(ev); err != nil {
					return w.stats, err
				}
			}
		}
	}
}

func (w *windower) expect(kind xmlstream.Kind) error {
	ev, err := w.src.Next()
	if err != nil {
		return fmt.Errorf("window: expected %s: %v", kind, err)
	}
	if ev.Kind != kind {
		return fmt.Errorf("window: expected %s, got %s", kind, ev)
	}
	return nil
}

func (w *windower) openWindow() error {
	idx := w.window
	sink := w.sink
	run, err := w.plan.NewRun(core.EvalOptions{
		Mode: spexnet.ModeNodes,
		Sink: func(r spexnet.Result) {
			w.stats.Matches++
			if sink != nil {
				sink(idx, r)
			}
		},
	})
	if err != nil {
		return err
	}
	w.run = run
	w.inWindow = 0
	// Each window is its own document with the original root element.
	if err := run.Feed(xmlstream.Event{Kind: xmlstream.StartDocument}); err != nil {
		return err
	}
	return run.Feed(xmlstream.Start(w.root))
}

func (w *windower) feed(ev xmlstream.Event) error {
	if w.run == nil {
		if err := w.openWindow(); err != nil {
			return err
		}
	}
	return w.run.Feed(ev)
}

func (w *windower) closeWindow() error {
	if w.run == nil {
		return nil
	}
	if err := w.run.Feed(xmlstream.End(w.root)); err != nil {
		return err
	}
	if err := w.run.Close(); err != nil {
		return err
	}
	w.run = nil
	w.window++
	w.stats.Windows++
	return nil
}
