package window

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

func plan(t *testing.T, expr string) *core.Plan {
	t.Helper()
	p, err := core.Prepare(expr)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func src(doc string) xmlstream.Source {
	return xmlstream.NewScanner(strings.NewReader(doc))
}

const feed = `<feed>` +
	`<msg><sport/></msg>` +
	`<msg><politics/></msg>` +
	`<msg><sport/></msg>` +
	`<msg><sport/></msg>` +
	`<msg><politics/></msg>` +
	`</feed>`

func TestWindowedEvaluation(t *testing.T) {
	type hit struct{ window int }
	var hits []hit
	stats, err := Evaluate(plan(t, "feed.msg[sport]"), src(feed), 2, func(w int, r spexnet.Result) {
		hits = append(hits, hit{w})
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows != 3 || stats.Records != 5 || stats.Matches != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	// Sport messages are records 1, 3, 4 → windows 0, 1, 1.
	want := []int{0, 1, 1}
	for i, h := range hits {
		if h.window != want[i] {
			t.Fatalf("hits: %+v, want windows %v", hits, want)
		}
	}
}

// TestWindowRecordLocalQueriesAreExact: queries whose answers lie within a
// record match the exact evaluation regardless of the window size.
func TestWindowRecordLocalQueriesAreExact(t *testing.T) {
	p := plan(t, "feed.msg[sport]")
	exact, _, err := p.Count(strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 2, 3, 100} {
		stats, err := Evaluate(p, src(feed), size, nil)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if stats.Matches != exact {
			t.Errorf("size %d: windowed %d vs exact %d", size, stats.Matches, exact)
		}
	}
}

// TestWindowIncompleteness demonstrates the paper's caveat (§I): windows
// return incomplete answers for queries spanning window boundaries. The
// qualifier [politics] holds for the feed as a whole, but a window holding
// only sport messages sees no politics record.
func TestWindowIncompleteness(t *testing.T) {
	// A cross-record qualifier: feed[_*.politics].msg — every msg
	// qualifies exactly iff the document contains a politics element.
	p := plan(t, "feed[_*.politics].msg")
	exact, _, err := p.Count(strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	if exact != 5 {
		t.Fatalf("exact: %d", exact)
	}
	stats, err := Evaluate(p, src(feed), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Windows 0, 2, 3 (sport-only) contribute nothing: incomplete.
	if stats.Matches >= exact {
		t.Fatalf("expected incomplete answers, got %d ≥ exact %d", stats.Matches, exact)
	}
	if stats.Matches != 2 {
		t.Fatalf("matches: %d, want 2 (the two politics windows)", stats.Matches)
	}
}

func TestWindowErrors(t *testing.T) {
	if _, err := Evaluate(plan(t, "a"), src(`<a/>`), 0, nil); err == nil {
		t.Error("size 0 must fail")
	}
	if _, err := Evaluate(plan(t, "a"), src(``), 1, nil); err == nil {
		t.Error("empty stream must fail")
	}
	if _, err := Evaluate(plan(t, "a"), &xmlstream.SliceSource{Events: []xmlstream.Event{
		{Kind: xmlstream.StartDocument},
	}}, 1, nil); err == nil {
		t.Error("missing root must fail")
	}
}

func TestWindowEmptyRoot(t *testing.T) {
	stats, err := Evaluate(plan(t, "feed.msg"), src(`<feed></feed>`), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows != 0 || stats.Records != 0 || stats.Matches != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

// cancelSource delivers events from an inner source until a cutoff, then
// fails with context.Canceled — the shape of a server session whose context
// expires part-way through a continuous stream.
type cancelSource struct {
	inner xmlstream.Source
	after int
	n     int
}

func (c *cancelSource) Next() (xmlstream.Event, error) {
	if c.n++; c.n > c.after {
		return xmlstream.Event{}, context.Canceled
	}
	return c.inner.Next()
}

// TestWindowCancellationMidStream: a source failing with a context error
// mid-window aborts the windowed evaluation with that error; the windows
// already closed keep the answers they delivered.
func TestWindowCancellationMidStream(t *testing.T) {
	var hits int
	_, err := Evaluate(plan(t, "feed.msg[sport]"), &cancelSource{inner: src(feed), after: 9}, 2,
		func(int, spexnet.Result) { hits++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	full := 0
	if _, err := Evaluate(plan(t, "feed.msg[sport]"), src(feed), 2,
		func(int, spexnet.Result) { full++ }); err != nil {
		t.Fatal(err)
	}
	if hits >= full {
		t.Fatalf("cancelled run delivered %d hits, full run %d — cancellation did not cut the stream", hits, full)
	}
}

// TestWindowConcurrentEvaluations: one plan shared by many concurrent
// windowed evaluations, each feeding and closing its own windows — the
// sharing pattern server channels rely on. Run with -race.
func TestWindowConcurrentEvaluations(t *testing.T) {
	p := plan(t, "feed.msg[sport]")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var matches int64
				stats, err := Evaluate(p, src(feed), 2, func(int, spexnet.Result) { matches++ })
				if err != nil {
					t.Error(err)
					return
				}
				if stats.Windows != 3 || stats.Records != 5 || matches != stats.Matches {
					t.Errorf("stats %+v matches %d", stats, matches)
					return
				}
			}
		}()
	}
	wg.Wait()
}
