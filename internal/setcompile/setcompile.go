// Package setcompile compiles a *query set* into the plan of one merged
// transducer network: the mass-subscription shared compilation the paper's
// §IX and the ROADMAP's YFilter-style item call for.
//
// The compiler runs three static passes over the subscription corpus before
// a single transducer is instantiated:
//
//  1. Canonicalization (Canonicalize): each expression is rewritten into a
//     semantics-preserving normal form — nullable qualifiers dropped,
//     concatenations left-associated with ε eliminated, unions flattened,
//     deduplicated, sorted and absorbed — so that syntactically different
//     but equivalent subscriptions become structurally identical and the
//     network builder's hash-consing can factor their common prefixes and
//     subexpressions into a shared trie of transducers.
//  2. Satisfiability pruning (Unsatisfiable): subscriptions that can match
//     no document — a statically false not(...) qualifier, a contradictory
//     attribute conjunction — are dropped from the network entirely; their
//     answer is the empty set, known before the stream starts.
//  3. Containment analysis (Contains): subscriptions whose canonical forms
//     are mutually contained (equivalent) collapse onto one representative
//     sink, with a remap table attributing the shared sink's answers back
//     to every member. One-way containments are detected and reported (for
//     introspection and union absorption) but do not collapse sinks:
//     answers must stay byte-identical to sequential evaluation, and a
//     strictly contained query's answers are a proper subset of its
//     container's.
//
// The output is a Program: the physical representatives to compile (one
// spexnet.Spec each, all in ONE network so the builder's memoization shares
// their common structure), the member table mapping every original query to
// its fate, and MergeStats comparing the merged transducer count against
// compiling one network per query.
package setcompile

import (
	"sort"

	"repro/internal/rpeq"
)

// Query is one member of the set to compile.
type Query struct {
	// Name identifies the query in the member table and in per-query
	// answer counts.
	Name string
	// Expr is the query as written; the compiler canonicalizes a copy and
	// never mutates it.
	Expr rpeq.Node
	// Limit is the query's answer budget (0 = unlimited), as in
	// spexnet.Spec.Limit.
	Limit int64
}

// Status classifies a query after the static pre-pass.
type Status uint8

const (
	// StatusLive queries own a physical sink (they are their
	// representative's first member).
	StatusLive Status = iota
	// StatusCollapsed queries are equivalent to an earlier query and share
	// its representative's sink.
	StatusCollapsed
	// StatusPruned queries are statically unsatisfiable: no transducers are
	// built for them and their answer count is always zero.
	StatusPruned
)

func (s Status) String() string {
	switch s {
	case StatusLive:
		return "live"
	case StatusCollapsed:
		return "collapsed"
	case StatusPruned:
		return "pruned"
	}
	return "unknown"
}

// Member is the fate of one input query.
type Member struct {
	Name   string
	Status Status
	// Rep indexes Program.Reps for live and collapsed members; -1 for
	// pruned ones.
	Rep int
	// Limit is the query's own answer budget; a collapsed member's
	// deliveries are capped at it even though the shared physical sink may
	// run longer (see Rep.Limit).
	Limit int64
	// Canonical is the canonical rendering of the query, the key under
	// which equivalent queries meet.
	Canonical string
}

// Rep is one physical sink of the merged network: a representative
// canonical expression plus the members that share it.
type Rep struct {
	// Expr is the canonicalized expression the network compiles.
	Expr rpeq.Node
	// Members indexes Program.Members (equal to the input query indexes).
	Members []int
	// Limit is the physical sink's answer budget: zero (unlimited) if any
	// member is unlimited, otherwise the largest member budget — so the
	// sink keeps delivering until every member has reached its own limit.
	Limit int64
}

// Containment is a detected one-way containment between two live queries:
// every answer of Query is also an answer of Container. Reported for
// introspection; it does not change compilation.
type Containment struct {
	Query     string
	Container string
}

// MergeStats compares the merged compilation against the naive one-network-
// per-query baseline.
type MergeStats struct {
	// Queries is the input set size.
	Queries int
	// Live is the number of physical sinks (representatives).
	Live int
	// Pruned counts statically unsatisfiable queries (no transducers).
	Pruned int
	// Collapsed counts queries sharing another query's sink.
	Collapsed int
	// Contained counts detected one-way containments between live queries.
	Contained int
	// NaiveTransducers is the transducer count of compiling one network per
	// query (including each query's output sink).
	NaiveTransducers int
	// MergedTransducers is the transducer count of the merged network
	// (including one output sink per representative).
	MergedTransducers int
}

// Program is the compiled plan of a query set.
type Program struct {
	Members      []Member
	Reps         []Rep
	Containments []Containment
	Stats        MergeStats
}

// Compile runs the static pre-pass over the query set and returns the
// merged program. The member table preserves input order: Members[i]
// describes queries[i].
func Compile(queries []Query) *Program {
	p := &Program{Members: make([]Member, 0, len(queries))}
	repByKey := make(map[string]int, len(queries))
	for _, q := range queries {
		canon := Canonicalize(q.Expr)
		key := rpeq.Canonical(canon)
		m := Member{Name: q.Name, Rep: -1, Limit: q.Limit, Canonical: key}
		switch {
		case Unsatisfiable(canon):
			m.Status = StatusPruned
		default:
			ri, ok := repByKey[key]
			if !ok {
				// Not syntactically identical to any representative; an
				// equivalent one may still exist under a different
				// canonical rendering (mutual containment).
				ri = -1
				for j := range p.Reps {
					if Contains(p.Reps[j].Expr, canon) && Contains(canon, p.Reps[j].Expr) {
						ri = j
						break
					}
				}
				if ri < 0 {
					ri = len(p.Reps)
					p.Reps = append(p.Reps, Rep{Expr: canon})
					m.Status = StatusLive
				} else {
					m.Status = StatusCollapsed
				}
				repByKey[key] = ri
			} else {
				m.Status = StatusCollapsed
			}
			m.Rep = ri
			p.Reps[ri].Members = append(p.Reps[ri].Members, len(p.Members))
		}
		p.Members = append(p.Members, m)
	}
	for ri := range p.Reps {
		p.Reps[ri].Limit = repLimit(p, p.Reps[ri].Members)
	}
	p.Containments = containments(p)
	p.Stats = stats(queries, p)
	return p
}

// repLimit derives a representative sink's budget from its members'.
func repLimit(p *Program, members []int) int64 {
	var lim int64
	for _, mi := range members {
		ml := p.Members[mi].Limit
		if ml <= 0 {
			return 0
		}
		if ml > lim {
			lim = ml
		}
	}
	return lim
}

// containments detects one-way containments between representatives and
// attributes them to the members' names, sorted for determinism.
func containments(p *Program) []Containment {
	var out []Containment
	for i := range p.Reps {
		for j := range p.Reps {
			if i == j {
				continue
			}
			// i strictly contains j (mutual containment collapsed already,
			// but a differently rendered equivalence may slip through the
			// incomplete checker; report one direction only then).
			if Contains(p.Reps[i].Expr, p.Reps[j].Expr) {
				if i > j && Contains(p.Reps[j].Expr, p.Reps[i].Expr) {
					continue
				}
				container := p.Members[p.Reps[i].Members[0]].Name
				for _, mi := range p.Reps[j].Members {
					out = append(out, Containment{Query: p.Members[mi].Name, Container: container})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Query != out[b].Query {
			return out[a].Query < out[b].Query
		}
		return out[a].Container < out[b].Container
	})
	return out
}

// stats fills MergeStats for a compiled program.
func stats(queries []Query, p *Program) MergeStats {
	s := MergeStats{Queries: len(queries), Live: len(p.Reps), Contained: len(p.Containments)}
	for _, m := range p.Members {
		switch m.Status {
		case StatusPruned:
			s.Pruned++
		case StatusCollapsed:
			s.Collapsed++
		}
	}
	// Naive: one network per query as written, each with its own sink.
	for _, q := range queries {
		c := newNodeCounter()
		c.count(q.Expr, 0)
		s.NaiveTransducers += c.nodes + 1
	}
	// Merged: all representatives in one network, sharing one counter (and
	// thus one memo, mirroring the builder's hash-consing), plus one sink
	// per representative.
	c := newNodeCounter()
	for _, r := range p.Reps {
		c.count(r.Expr, 0)
	}
	s.MergedTransducers = c.nodes + len(p.Reps)
	return s
}
