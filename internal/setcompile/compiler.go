package setcompile

import (
	"sync"

	"repro/internal/rpeq"
)

// Compiler maintains the static analysis of a mutating query set — the
// spexd subscription-lifecycle case. Add analyzes only the new query
// (canonicalization, satisfiability, one containment scan over the current
// representatives) and Remove only unlinks the departing one: the rest of
// the corpus is never re-analyzed, so subscription churn costs O(current
// representatives) per operation instead of recompiling the world.
//
// Program and Stats return consistent snapshots; both are cheap when the
// set has not changed since the last call (the snapshot is cached and
// invalidated by Add/Remove). Compiler is safe for concurrent use.
type Compiler struct {
	mu      sync.Mutex
	members []cmember
	reps    map[string]*crep  // canonical key of the representative → rep
	aliases map[string]string // canonical key → representative key (equivalences found by containment)
	prog    *Program          // cached snapshot; nil when dirty
}

type cmember struct {
	name   string
	orig   rpeq.Node // as registered (naive-cost accounting)
	canon  rpeq.Node
	key    string
	limit  int64
	status Status
	repKey string // "" when pruned
}

type crep struct {
	expr  rpeq.Node
	count int
}

// NewCompiler returns an empty incremental compiler.
func NewCompiler() *Compiler {
	return &Compiler{reps: make(map[string]*crep), aliases: make(map[string]string)}
}

// Add registers a query under a unique name and returns its fate. Adding a
// name twice keeps both entries; Remove unlinks the most recent one.
func (c *Compiler) Add(name string, expr rpeq.Node, limit int64) Member {
	canon := Canonicalize(expr)
	key := rpeq.Canonical(canon)
	m := cmember{name: name, orig: expr, canon: canon, key: key, limit: limit}
	switch {
	case Unsatisfiable(canon):
		m.status = StatusPruned
	default:
		repKey, ok := c.resolveRep(key, canon)
		if !ok {
			c.mu.Lock()
			c.reps[key] = &crep{expr: canon}
			c.mu.Unlock()
			repKey = key
			m.status = StatusLive
		} else {
			m.status = StatusCollapsed
		}
		m.repKey = repKey
		c.mu.Lock()
		c.reps[repKey].count++
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.members = append(c.members, m)
	c.prog = nil
	out := Member{Name: m.name, Status: m.status, Rep: -1, Limit: m.limit, Canonical: m.key}
	c.mu.Unlock()
	return out
}

// resolveRep finds the representative an expression belongs to: a direct
// canonical-key hit, a remembered equivalence, or a fresh containment scan
// over the current representatives.
func (c *Compiler) resolveRep(key string, canon rpeq.Node) (string, bool) {
	c.mu.Lock()
	if _, ok := c.reps[key]; ok {
		c.mu.Unlock()
		return key, true
	}
	if rk, ok := c.aliases[key]; ok {
		if _, live := c.reps[rk]; live {
			c.mu.Unlock()
			return rk, true
		}
		delete(c.aliases, key)
	}
	type cand struct {
		key  string
		expr rpeq.Node
	}
	cands := make([]cand, 0, len(c.reps))
	for rk, r := range c.reps {
		cands = append(cands, cand{key: rk, expr: r.expr})
	}
	c.mu.Unlock()
	for _, r := range cands {
		if Contains(r.expr, canon) && Contains(canon, r.expr) {
			c.mu.Lock()
			if _, live := c.reps[r.key]; live {
				c.aliases[key] = r.key
				c.mu.Unlock()
				return r.key, true
			}
			c.mu.Unlock()
		}
	}
	return "", false
}

// Remove unlinks the most recently added query with the given name and
// reports whether one was found.
func (c *Compiler) Remove(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.members) - 1; i >= 0; i-- {
		m := c.members[i]
		if m.name != name {
			continue
		}
		c.members = append(c.members[:i], c.members[i+1:]...)
		if m.repKey != "" {
			if r := c.reps[m.repKey]; r != nil {
				r.count--
				if r.count <= 0 {
					delete(c.reps, m.repKey)
				}
			}
		}
		c.prog = nil
		return true
	}
	return false
}

// Len returns the number of registered queries.
func (c *Compiler) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.members)
}

// Program returns a snapshot of the compiled set, equivalent to Compile
// over the current queries in registration order.
func (c *Compiler) Program() *Program {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.prog != nil {
		return c.prog
	}
	p := &Program{Members: make([]Member, 0, len(c.members))}
	queries := make([]Query, 0, len(c.members))
	repIdx := make(map[string]int, len(c.reps))
	for _, m := range c.members {
		queries = append(queries, Query{Name: m.name, Expr: m.orig, Limit: m.limit})
		out := Member{Name: m.name, Status: m.status, Rep: -1, Limit: m.limit, Canonical: m.key}
		if m.repKey != "" {
			ri, ok := repIdx[m.repKey]
			if !ok {
				ri = len(p.Reps)
				repIdx[m.repKey] = ri
				p.Reps = append(p.Reps, Rep{Expr: c.reps[m.repKey].expr})
				// Removal may have unlinked the original representative;
				// the first surviving member takes over.
				out.Status = StatusLive
			} else {
				out.Status = StatusCollapsed
			}
			out.Rep = ri
			p.Reps[ri].Members = append(p.Reps[ri].Members, len(p.Members))
		}
		p.Members = append(p.Members, out)
	}
	for ri := range p.Reps {
		p.Reps[ri].Limit = repLimit(p, p.Reps[ri].Members)
	}
	p.Containments = containments(p)
	p.Stats = stats(queries, p)
	c.prog = p
	return p
}

// Stats returns the merge statistics of the current set.
func (c *Compiler) Stats() MergeStats {
	return c.Program().Stats
}
