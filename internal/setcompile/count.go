package setcompile

import (
	"strconv"

	"repro/internal/rpeq"
)

// nodeCounter is a static dry run of the network builder's compilation
// arithmetic (spexnet compileNew): it walks expressions allocating synthetic
// tape numbers and counting the transducers each construct contributes,
// memoizing on (input tape, canonical form) exactly as the builder's
// hash-consing does. Counting with one shared counter across a query set
// therefore predicts the merged network's transducer count, and counting
// each query with a fresh counter predicts the naive per-query total — no
// network is instantiated for either. Fan-out junctions (inserted after
// compilation so every tape has a single reader) are excluded from both
// sides, so the naive/merged ratio compares like with like.
type nodeCounter struct {
	memo  map[string]int // input tape | canonical form → output tape
	tapes int
	nodes int
}

func newNodeCounter() *nodeCounter {
	return &nodeCounter{memo: make(map[string]int)}
}

// tape allocates a fresh synthetic tape number.
func (c *nodeCounter) tape() int {
	c.tapes++
	return c.tapes
}

// count returns the output tape of expr compiled from tape in, adding the
// transducers of every subexpression not already compiled from that tape.
func (c *nodeCounter) count(n rpeq.Node, in int) int {
	key := strconv.Itoa(in) + "|" + rpeq.Canonical(n)
	if out, ok := c.memo[key]; ok {
		return out
	}
	out := c.countNew(n, in)
	c.memo[key] = out
	return out
}

// countNew mirrors compileNew's per-construct topology.
func (c *nodeCounter) countNew(n rpeq.Node, in int) int {
	switch n := n.(type) {
	case *rpeq.Empty:
		return in
	case *rpeq.Label, *rpeq.Plus, *rpeq.AttrTest, *rpeq.AttrStep,
		*rpeq.Following, *rpeq.Preceding:
		c.nodes++
		return c.tape()
	case *rpeq.Star:
		c.nodes++ // SP
		c.tape()  // pass-through branch
		branch := c.tape()
		c.count(&rpeq.Plus{Label: n.Label}, branch)
		c.nodes++ // JO
		return c.tape()
	case *rpeq.Optional:
		c.nodes++ // SP
		c.tape()
		branch := c.tape()
		c.count(n.Expr, branch)
		c.nodes++ // JO
		return c.tape()
	case *rpeq.Concat:
		mid := c.count(n.Left, in)
		return c.count(n.Right, mid)
	case *rpeq.Union:
		c.nodes++ // SP
		left := c.tape()
		right := c.tape()
		c.count(n.Left, left)
		c.count(n.Right, right)
		c.nodes += 2 // JO, UN
		return c.tape()
	case *rpeq.Qualifier:
		if rpeq.Nullable(n.Cond) {
			return c.count(n.Base, in)
		}
		if cn, ok := n.Cond.(*rpeq.CondNot); ok {
			return c.countNegQualifier(n.Base, cn, in)
		}
		base := c.count(n.Base, in)
		_ = base
		c.nodes++ // VC
		c.tape()
		c.nodes++ // SP
		c.tape()
		branch := c.tape()
		c.count(n.Cond, branch)
		c.nodes += 3 // VF, VD, JO
		c.tape()
		c.tape()
		return c.tape()
	case *rpeq.TextTest:
		c.count(n.Path, in)
		c.nodes++ // text comparison
		return c.tape()
	case *rpeq.CondNot:
		return c.countNegQualifier(&rpeq.Empty{}, n, in)
	default:
		return in
	}
}

// countNegQualifier mirrors compileNegQualifier.
func (c *nodeCounter) countNegQualifier(base rpeq.Node, cn *rpeq.CondNot, in int) int {
	out := c.count(base, in)
	_ = out
	if rpeq.Nullable(cn.Expr) {
		c.nodes++ // drop node: the condition is statically false
		return c.tape()
	}
	c.nodes++ // negated VC
	c.tape()
	c.nodes++ // SP
	c.tape()
	branch := c.tape()
	c.count(cn.Expr, branch)
	c.nodes += 3 // VF, NVD, JO
	c.tape()
	c.tape()
	return c.tape()
}
