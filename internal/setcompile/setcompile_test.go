package setcompile

import (
	"testing"

	"repro/internal/rpeq"
)

func parse(t *testing.T, src string) rpeq.Node {
	t.Helper()
	n, err := rpeq.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return n
}

func TestCanonicalize(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		// Nullable qualifiers disappear.
		{"a[b*]", "a"},
		{"a[b?]", "a"},
		{"a[b*.c?]", "a"},
		// ε leaves concatenations.
		{"ε.a", "a"},
		{"a.ε.b", "a.b"},
		// Concatenation left-associates (same canonical form both ways).
		{"a.(b.c)", "a.b.c"},
		{"(a.b).c", "a.b.c"},
		// e? collapses when e is nullable.
		{"(a?)?", "a?"},
		{"(a*)?", "a*"},
		// Unions deduplicate, sort and absorb.
		{"(b|a)", "(a|b)"},
		{"(a|a)", "a"},
		{"(a|b|a)", "(a|b)"},
		{"(_|a)", "_"},
		{"(a|a[b])", "a"},
		{"(a+|a)", "a+"},
		// Nested structure canonicalizes recursively.
		{"a[(c|b)].d", "a[(b|c)].d"},
	}
	for _, c := range cases {
		got := Canonicalize(parse(t, c.in))
		want := Canonicalize(parse(t, c.want))
		if rpeq.Canonical(got) != rpeq.Canonical(want) {
			t.Errorf("Canonicalize(%q) = %s, want %s", c.in, rpeq.Canonical(got), rpeq.Canonical(want))
		}
	}
}

func TestCanonicalizeEquivalences(t *testing.T) {
	// Pairs that must meet at the same canonical form.
	pairs := [][2]string{
		{"a.b.c", "a.(b.c)"},
		{"a[b*].c", "a.c"},
		{"(a|b).c", "(b|a).c"},
		{"a?", "(a|ε)?"},
	}
	for _, p := range pairs {
		a := rpeq.Canonical(Canonicalize(parse(t, p[0])))
		b := rpeq.Canonical(Canonicalize(parse(t, p[1])))
		if a != b {
			t.Errorf("canonical forms differ: %q → %s, %q → %s", p[0], a, p[1], b)
		}
	}
}

func TestContains(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"a", "a", true},
		{"_", "a", true},
		{"a", "_", false},
		{"a+", "a", true},
		{"_+", "a", true},
		{"_+", "a.b", true},
		{"_*", "ε", true},
		{"_*.a", "a", true},
		{"_*.a", "b.a", true},
		{"_*.a", "b.c.a", true},
		{"_*.a.b", "a.b", true},
		{"a.b", "_*.a.b", false},
		{"a", "a[b]", true},
		{"a[b]", "a", false},
		{"a[b]", "a[b.c]", false}, // witness containment, not language containment
		{"a[_]", "a[b]", true},
		{"a[_*.b]", "a[b]", true},
		{"(a|b)", "a", true},
		{"(a|b)", "(b|a)", true},
		{"a", "(a|b)", false},
		{"_*.a", "(b.a|c.a)", true},
		{"a+", "ε", false},
		{"a*", "ε", true},
		{"a.b.c", "a.b", false},
		{"_._", "a.b", true},
		{"_._", "a", false},
		{"a.b*.c", "a.c", true},
		{"a.b*.c", "a.b.b.c", true},
		{"a.b+.c", "a.c", false},
	}
	for _, c := range cases {
		got := Contains(parse(t, c.a), parse(t, c.b))
		if got != c.want {
			t.Errorf("Contains(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestContainsAttributes(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{`a[@x]`, `a[@x="1"]`, true},
		{`a[@x="1"]`, `a[@x]`, false},
		{`a[@x]`, `a[@x and @y]`, true},
		{`a[@x and @y]`, `a[@x]`, false},
		{`a`, `a[@x="1"]`, true},
	}
	for _, c := range cases {
		got := Contains(parse(t, c.a), parse(t, c.b))
		if got != c.want {
			t.Errorf("Contains(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestUnsatisfiable(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"a", false},
		{"a[b]", false},
		{"a[not(b)]", false},
		{"a[not(b*)]", true},
		{"a[not(b?)]", true},
		{"a[not(b*)].c", true},
		{"(a[not(b*)]|c)", false},
		{"(a[not(b*)]|c[not(d?)])", true},
		{`a[@x="1" and @x="2"]`, true},
		{`a[@x="1" and @x!="1"]`, true},
		{`a[@x="1" and not(@x)]`, true},
		{`a[@x="1" and @x="1"]`, false},
		{`a[@x="1" or @x="2"]`, false},
		{`a[@x="1" and @y="2"]`, false},
		{`a[@x and not(@y)]`, false},
	}
	for _, c := range cases {
		got := Unsatisfiable(Canonicalize(parse(t, c.in)))
		if got != c.want {
			t.Errorf("Unsatisfiable(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCompileCollapseAndPrune(t *testing.T) {
	p := Compile([]Query{
		{Name: "q0", Expr: parse(t, "a.b.c")},
		{Name: "q1", Expr: parse(t, "a.(b.c)")},      // same canonical form
		{Name: "q2", Expr: parse(t, "a.b.c[d*]")},    // nullable qualifier → same
		{Name: "q3", Expr: parse(t, "a.b.d")},        // distinct
		{Name: "q4", Expr: parse(t, "a[not(x*)].b")}, // unsatisfiable
		{Name: "q5", Expr: parse(t, "_*.b.c")},       // contains nothing here, one-way vs none
	})
	if got := len(p.Reps); got != 3 {
		t.Fatalf("reps = %d, want 3", got)
	}
	wantStatus := []Status{StatusLive, StatusCollapsed, StatusCollapsed, StatusLive, StatusPruned, StatusLive}
	for i, w := range wantStatus {
		if p.Members[i].Status != w {
			t.Errorf("member %d (%s) status = %v, want %v", i, p.Members[i].Name, p.Members[i].Status, w)
		}
	}
	if p.Members[0].Rep != p.Members[1].Rep || p.Members[0].Rep != p.Members[2].Rep {
		t.Errorf("collapsed members map to different reps: %d %d %d",
			p.Members[0].Rep, p.Members[1].Rep, p.Members[2].Rep)
	}
	if p.Members[4].Rep != -1 {
		t.Errorf("pruned member rep = %d, want -1", p.Members[4].Rep)
	}
	if p.Stats.Queries != 6 || p.Stats.Pruned != 1 || p.Stats.Collapsed != 2 || p.Stats.Live != 3 {
		t.Errorf("stats = %+v", p.Stats)
	}
	if p.Stats.MergedTransducers >= p.Stats.NaiveTransducers {
		t.Errorf("merged %d not below naive %d", p.Stats.MergedTransducers, p.Stats.NaiveTransducers)
	}
}

func TestCompileContainmentReported(t *testing.T) {
	p := Compile([]Query{
		{Name: "wide", Expr: parse(t, "_*.a.b")},
		{Name: "narrow", Expr: parse(t, "x.a.b")},
	})
	if len(p.Reps) != 2 {
		t.Fatalf("reps = %d, want 2 (one-way containment must not collapse)", len(p.Reps))
	}
	if len(p.Containments) != 1 || p.Containments[0].Query != "narrow" || p.Containments[0].Container != "wide" {
		t.Fatalf("containments = %+v", p.Containments)
	}
	if p.Stats.Contained != 1 {
		t.Errorf("stats.Contained = %d, want 1", p.Stats.Contained)
	}
}

func TestRepLimit(t *testing.T) {
	p := Compile([]Query{
		{Name: "a", Expr: parse(t, "x.y"), Limit: 2},
		{Name: "b", Expr: parse(t, "x.y"), Limit: 5},
	})
	if len(p.Reps) != 1 || p.Reps[0].Limit != 5 {
		t.Fatalf("rep limit = %+v, want one rep with limit 5", p.Reps)
	}
	p = Compile([]Query{
		{Name: "a", Expr: parse(t, "x.y"), Limit: 2},
		{Name: "b", Expr: parse(t, "x.y")},
	})
	if p.Reps[0].Limit != 0 {
		t.Fatalf("rep limit = %d, want 0 (unlimited member)", p.Reps[0].Limit)
	}
}

func TestMergedCountsSharePrefixes(t *testing.T) {
	// Ten queries off one spine: merged cost must grow with the divergent
	// tails, not with the full corpus.
	queries := []Query{}
	tails := []string{"c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for i, tail := range tails {
		queries = append(queries, Query{Name: string(rune('a' + i)), Expr: parse(t, "_*.spine.base."+tail)})
	}
	p := Compile(queries)
	if p.Stats.NaiveTransducers < 2*p.Stats.MergedTransducers {
		t.Errorf("expected ≥2× sharing on a common spine: naive %d, merged %d",
			p.Stats.NaiveTransducers, p.Stats.MergedTransducers)
	}
}

func TestCompilerIncrementalMatchesBatch(t *testing.T) {
	srcs := []struct {
		name, src string
		limit     int64
	}{
		{"q0", "a.b.c", 0},
		{"q1", "a.(b.c)", 3},
		{"q2", "a.b.d", 0},
		{"q3", "a[not(x*)]", 0},
		{"q4", "_*.b", 0},
		{"q5", "a.b.c[d*]", 1},
	}
	c := NewCompiler()
	var queries []Query
	for _, s := range srcs {
		expr := parse(t, s.src)
		c.Add(s.name, expr, s.limit)
		queries = append(queries, Query{Name: s.name, Expr: expr, Limit: s.limit})
	}
	batch := Compile(queries)
	inc := c.Program()
	if len(inc.Members) != len(batch.Members) || len(inc.Reps) != len(batch.Reps) {
		t.Fatalf("incremental shape %d/%d vs batch %d/%d",
			len(inc.Members), len(inc.Reps), len(batch.Members), len(batch.Reps))
	}
	for i := range batch.Members {
		if inc.Members[i] != batch.Members[i] {
			t.Errorf("member %d: incremental %+v, batch %+v", i, inc.Members[i], batch.Members[i])
		}
	}
	if inc.Stats != batch.Stats {
		t.Errorf("stats: incremental %+v, batch %+v", inc.Stats, batch.Stats)
	}

	// Removal unlinks and the survivor takes over the representative.
	if !c.Remove("q0") {
		t.Fatal("Remove(q0) found nothing")
	}
	if c.Remove("q0") {
		t.Fatal("Remove(q0) twice")
	}
	after := c.Program()
	if after.Stats.Queries != 5 {
		t.Fatalf("after removal: %+v", after.Stats)
	}
	if after.Members[0].Name != "q1" || after.Members[0].Status != StatusLive {
		t.Errorf("q1 should take over the rep: %+v", after.Members[0])
	}

	// Removing every member of a rep frees it; re-adding recreates it.
	c.Remove("q1")
	c.Remove("q5")
	p := c.Program()
	for _, m := range p.Members {
		if m.Canonical == "((a.b).c)" {
			t.Errorf("rep should be gone, found member %+v", m)
		}
	}
	c.Add("q6", parse(t, "a.b.c"), 0)
	p = c.Program()
	last := p.Members[len(p.Members)-1]
	if last.Status != StatusLive {
		t.Errorf("re-added query should be live: %+v", last)
	}
}

func TestCompilerEquivalenceAcrossForms(t *testing.T) {
	c := NewCompiler()
	c.Add("a", parse(t, "x[y*].z"), 0)
	m := c.Add("b", parse(t, "x.z"), 0)
	if m.Status != StatusCollapsed {
		t.Fatalf("equivalent add should collapse, got %v", m.Status)
	}
	if got := c.Stats(); got.Live != 1 || got.Collapsed != 1 {
		t.Errorf("stats = %+v", got)
	}
}

func TestNodeCounterMatchesBuilderSharing(t *testing.T) {
	// The same expression counted twice from the same tape costs once.
	c := newNodeCounter()
	e := parse(t, "a.b[c].d*")
	c.count(e, 0)
	n1 := c.nodes
	c.count(e, 0)
	if c.nodes != n1 {
		t.Errorf("recount added nodes: %d → %d", n1, c.nodes)
	}
	// A shared prefix costs only the divergent tail.
	c2 := newNodeCounter()
	c2.count(parse(t, "a.b.c"), 0)
	base := c2.nodes
	c2.count(parse(t, "a.b.d"), 0)
	if c2.nodes != base+1 {
		t.Errorf("divergent tail should cost 1 node, cost %d", c2.nodes-base)
	}
}
