package setcompile

import (
	"sort"

	"repro/internal/rpeq"
)

// Canonicalize rewrites an expression into a semantics-preserving normal
// form chosen so that equivalent subscriptions meet structurally and the
// network builder's hash-consing shares as much as possible:
//
//   - qualifiers with a nullable condition are dropped (base[cond] ≡ base
//     when ε ∈ L(cond); the compiler performs the same elimination, so this
//     changes nothing about the compiled network — it only makes the
//     equivalence visible to the set compiler),
//   - ε disappears from concatenations and concatenations are flattened
//     into a left-associated spine (prefix-trie shape),
//   - e? collapses to e when e is already nullable,
//   - unions are flattened, their branches canonicalized, duplicates
//     removed, branches absorbed into containing siblings, and the
//     survivors sorted by canonical rendering (union is commutative,
//     associative and idempotent over answer sets; the output sink
//     deduplicates, so branch order does not change answers).
//
// The input tree is never mutated; unchanged subtrees may be shared with
// the output.
func Canonicalize(n rpeq.Node) rpeq.Node {
	switch n := n.(type) {
	case *rpeq.Empty, *rpeq.Label, *rpeq.Plus, *rpeq.Star,
		*rpeq.Following, *rpeq.Preceding, *rpeq.AttrTest, *rpeq.AttrStep:
		return n

	case *rpeq.Concat:
		items := flattenConcat(nil, Canonicalize(n.Left))
		items = flattenConcat(items, Canonicalize(n.Right))
		if len(items) == 0 {
			return &rpeq.Empty{}
		}
		out := items[0]
		for _, it := range items[1:] {
			out = &rpeq.Concat{Left: out, Right: it}
		}
		return out

	case *rpeq.Union:
		branches := flattenUnion(nil, Canonicalize(n.Left))
		branches = flattenUnion(branches, Canonicalize(n.Right))
		branches = dedupeSort(branches)
		branches = absorb(branches)
		// An ε branch renders as the optional operator, so (e|ε) and e?
		// meet at one canonical form.
		hadEmpty := false
		kept := branches[:0:0]
		for _, b := range branches {
			if _, ok := b.(*rpeq.Empty); ok {
				hadEmpty = true
				continue
			}
			kept = append(kept, b)
		}
		if len(kept) == 0 {
			return &rpeq.Empty{}
		}
		out := kept[0]
		for _, b := range kept[1:] {
			out = &rpeq.Union{Left: out, Right: b}
		}
		if hadEmpty && !rpeq.Nullable(out) {
			return &rpeq.Optional{Expr: out}
		}
		return out

	case *rpeq.Optional:
		inner := Canonicalize(n.Expr)
		if rpeq.Nullable(inner) {
			return inner
		}
		return &rpeq.Optional{Expr: inner}

	case *rpeq.Qualifier:
		base := Canonicalize(n.Base)
		cond := Canonicalize(n.Cond)
		if rpeq.Nullable(cond) {
			return base
		}
		return &rpeq.Qualifier{Base: base, Cond: cond}

	case *rpeq.TextTest:
		return &rpeq.TextTest{Path: Canonicalize(n.Path), Op: n.Op, Value: n.Value}

	case *rpeq.CondNot:
		return &rpeq.CondNot{Expr: Canonicalize(n.Expr)}

	default:
		return n
	}
}

// flattenConcat appends the concatenation items of an already canonical
// subtree, skipping ε.
func flattenConcat(items []rpeq.Node, n rpeq.Node) []rpeq.Node {
	switch n := n.(type) {
	case *rpeq.Concat:
		items = flattenConcat(items, n.Left)
		return flattenConcat(items, n.Right)
	case *rpeq.Empty:
		return items
	default:
		return append(items, n)
	}
}

// flattenUnion appends the union branches of an already canonical subtree.
func flattenUnion(branches []rpeq.Node, n rpeq.Node) []rpeq.Node {
	if u, ok := n.(*rpeq.Union); ok {
		branches = flattenUnion(branches, u.Left)
		return flattenUnion(branches, u.Right)
	}
	return append(branches, n)
}

// dedupeSort removes duplicate branches (by canonical rendering) and sorts
// the survivors for a deterministic shape.
func dedupeSort(branches []rpeq.Node) []rpeq.Node {
	type keyed struct {
		key string
		n   rpeq.Node
	}
	seen := make(map[string]bool, len(branches))
	uniq := make([]keyed, 0, len(branches))
	for _, b := range branches {
		k := rpeq.Canonical(b)
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, keyed{key: k, n: b})
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].key < uniq[j].key })
	out := make([]rpeq.Node, len(uniq))
	for i, k := range uniq {
		out[i] = k.n
	}
	return out
}

// absorb drops every branch contained in a sibling: (a|b) with L(a) ⊇ L(b)
// answers exactly as a alone. With mutual containment the earlier branch
// wins, so the result is deterministic.
func absorb(branches []rpeq.Node) []rpeq.Node {
	if len(branches) < 2 {
		return branches
	}
	out := branches[:0:0]
	for i, b := range branches {
		absorbed := false
		for j, a := range branches {
			if i == j {
				continue
			}
			if Contains(a, b) && (!Contains(b, a) || j < i) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, b)
		}
	}
	return out
}
