package setcompile

import (
	"repro/internal/rpeq"
)

// Unsatisfiable reports whether the expression can match no node on any
// document: its answer is statically the empty set, so no transducers need
// to be built for it. Sound and incomplete — true means provably empty.
//
// The detected classes are the two that arise from the front ends' predicate
// lowering (rpeq/condalgebra.go):
//
//   - a statically false negated condition: [not(cond)] with ε ∈ L(cond) —
//     the candidate itself witnesses cond at the event opening its scope,
//     so not(cond) never holds (the same analysis compileNegQualifier uses
//     to compile a drop node; here the whole query is dropped instead),
//   - a contradictory attribute formula: a conjunction demanding two
//     different values for one attribute, a value for an absent attribute,
//     or a term and its negation.
//
// A concatenation is empty if any item is; a union if all branches are; a
// qualifier if its base is empty or its condition can never hold.
func Unsatisfiable(n rpeq.Node) bool {
	switch n := n.(type) {
	case *rpeq.Concat:
		return Unsatisfiable(n.Left) || Unsatisfiable(n.Right)
	case *rpeq.Union:
		return Unsatisfiable(n.Left) && Unsatisfiable(n.Right)
	case *rpeq.Optional, *rpeq.Star:
		// Nullable: matches the context node itself at worst.
		return false
	case *rpeq.Qualifier:
		return Unsatisfiable(n.Base) || condFalse(n.Cond)
	case *rpeq.AttrTest:
		return attrFalse(n.Pred)
	case *rpeq.TextTest:
		return Unsatisfiable(n.Path)
	case *rpeq.CondNot:
		// On the spine (a disjunct of an 'or' lowering) this is the
		// self-qualifier ε[not(expr)]: statically false iff expr is
		// nullable.
		return rpeq.Nullable(n.Expr)
	default:
		return false
	}
}

// condFalse reports whether a qualifier condition can never hold.
func condFalse(c rpeq.Node) bool {
	if rpeq.Nullable(c) {
		// Trivially true, not false (and eliminated by Canonicalize).
		return false
	}
	if cn, ok := c.(*rpeq.CondNot); ok {
		return rpeq.Nullable(cn.Expr)
	}
	// A condition that selects nothing is never witnessed.
	return Unsatisfiable(c)
}

// attrFalse reports whether an attribute formula is a contradiction: no
// attribute list can satisfy it.
func attrFalse(p rpeq.AttrExpr) bool {
	switch p := p.(type) {
	case *rpeq.AttrOr:
		return attrFalse(p.Left) && attrFalse(p.Right)
	case *rpeq.AttrAnd:
		conj := flattenConj(nil, p)
		for i, a := range conj {
			if attrFalse(a) {
				return true
			}
			for _, b := range conj[i+1:] {
				if conjContradicts(a, b) || conjContradicts(b, a) {
					return true
				}
			}
		}
	}
	return false
}

// flattenConj collects the conjuncts of a nested AttrAnd.
func flattenConj(out []rpeq.AttrExpr, p rpeq.AttrExpr) []rpeq.AttrExpr {
	if a, ok := p.(*rpeq.AttrAnd); ok {
		out = flattenConj(out, a.Left)
		return flattenConj(out, a.Right)
	}
	return append(out, p)
}

// conjContradicts reports whether conjuncts a and b cannot hold together.
func conjContradicts(a, b rpeq.AttrExpr) bool {
	// A term alongside a negation it implies: x ∧ ¬y with x ⇒ y.
	if nb, ok := b.(*rpeq.AttrNot); ok {
		if attrImplies(a, nb.Expr) {
			return true
		}
	}
	al, aok := a.(*rpeq.AttrLeaf)
	bl, bok := b.(*rpeq.AttrLeaf)
	if !aok || !bok || al.Name != bl.Name {
		return false
	}
	switch {
	case al.Op == rpeq.AttrEq && bl.Op == rpeq.AttrEq:
		// One attribute, two different required values.
		return al.Value != bl.Value
	case al.Op == rpeq.AttrEq && bl.Op == rpeq.AttrNeq:
		return al.Value == bl.Value
	case al.Op == rpeq.AttrNeq && bl.Op == rpeq.AttrEq:
		return al.Value == bl.Value
	}
	return false
}
