package setcompile

import (
	"repro/internal/rpeq"
)

// maxContainsDepth bounds the structural recursion of the containment
// checker; past it the checker answers "unknown" (false), which is always
// sound.
const maxContainsDepth = 64

// Contains reports whether a contains b: on every document, every answer
// of b is an answer of a (L(a) ⊇ L(b)). The check is sound but incomplete —
// false means "not provably contained", never "provably not contained".
// Full containment of regular path expressions with qualifiers is EXPTIME
// (the µ-calculus machinery of "Logics for XML", PAPERS.md); this checker
// decides the cheap structural fragment real subscription corpora exercise:
// wildcard and closure steps covering plain steps, qualifier and attribute
// filters dropped from the contained side, union branch inclusion, and
// closure steps absorbing step runs.
func Contains(a, b rpeq.Node) bool {
	return contains(rpeq.Desugar(a), rpeq.Desugar(b), 0)
}

// contains works on desugared kernel trees (no Star, no Optional: both are
// unions with an ε branch).
func contains(a, b rpeq.Node, depth int) bool {
	if depth > maxContainsDepth {
		return false
	}
	if rpeq.Equal(a, b) {
		return true
	}
	// A union on the contained side must be covered branch by branch.
	if bu, ok := b.(*rpeq.Union); ok {
		return contains(a, bu.Left, depth+1) && contains(a, bu.Right, depth+1)
	}
	// A union on the containing side needs one covering branch.
	if au, ok := a.(*rpeq.Union); ok {
		return contains(au.Left, b, depth+1) || contains(au.Right, b, depth+1)
	}
	// Dropping a filter from the contained side only enlarges it: if a
	// covers the unfiltered expression it covers the filtered one.
	if bq, ok := b.(*rpeq.Qualifier); ok {
		if contains(a, bq.Base, depth+1) {
			return true
		}
	}
	// Concatenations align item-wise (closures may absorb step runs).
	_, aConcat := a.(*rpeq.Concat)
	_, bConcat := b.(*rpeq.Concat)
	if aConcat || bConcat {
		return matchItems(concatItems(nil, a), concatItems(nil, b), depth+1)
	}
	switch a := a.(type) {
	case *rpeq.Label:
		_, ok := b.(*rpeq.Label)
		return ok && a.Name == rpeq.Wildcard
	case *rpeq.Plus:
		return closureCovers(a.Label.Name, b)
	case *rpeq.Qualifier:
		bq, ok := b.(*rpeq.Qualifier)
		// Base must cover base, and every witness of b's condition must
		// witness a's: L(aCond) ⊇ L(bCond) suffices.
		return ok && contains(a.Base, bq.Base, depth+1) && contains(a.Cond, bq.Cond, depth+1)
	case *rpeq.AttrTest:
		bt, ok := b.(*rpeq.AttrTest)
		return ok && attrImplies(bt.Pred, a.Pred)
	case *rpeq.TextTest:
		bt, ok := b.(*rpeq.TextTest)
		return ok && a.Op == bt.Op && a.Value == bt.Value && contains(a.Path, bt.Path, depth+1)
	case *rpeq.Following:
		_, ok := b.(*rpeq.Following)
		return ok && a.Test == rpeq.Wildcard
	case *rpeq.Preceding:
		_, ok := b.(*rpeq.Preceding)
		return ok && a.Test == rpeq.Wildcard
	}
	return false
}

// concatItems flattens a desugared tree into concatenation items, dropping
// ε items (ε is the concatenation identity).
func concatItems(items []rpeq.Node, n rpeq.Node) []rpeq.Node {
	switch n := n.(type) {
	case *rpeq.Concat:
		items = concatItems(items, n.Left)
		return concatItems(items, n.Right)
	case *rpeq.Empty:
		return items
	default:
		return append(items, n)
	}
}

// matchItems decides whether the item sequence as covers the item sequence
// bs: every document path matching bs in order also matches as. Closure
// items on the containing side may absorb runs of covered steps; nullable
// items on the containing side may be skipped; union items on either side
// branch.
func matchItems(as, bs []rpeq.Node, depth int) bool {
	if depth > maxContainsDepth {
		return false
	}
	// A union item on the contained side: both variants must be covered.
	if len(bs) > 0 {
		if bu, ok := bs[0].(*rpeq.Union); ok {
			return matchItems(as, prependItem(bu.Left, bs[1:]), depth+1) &&
				matchItems(as, prependItem(bu.Right, bs[1:]), depth+1)
		}
		// An attribute self-filter on the contained side only shrinks it.
		if _, ok := bs[0].(*rpeq.AttrTest); ok && matchItems(as, bs[1:], depth+1) {
			return true
		}
	}
	if len(as) == 0 {
		return len(bs) == 0
	}
	head, rest := as[0], as[1:]
	// A nullable containing item may match the empty run.
	if rpeq.Nullable(head) && matchItems(rest, bs, depth+1) {
		return true
	}
	// A union item on the containing side: either variant may cover.
	if au, ok := head.(*rpeq.Union); ok {
		return matchItems(prependItem(au.Left, rest), bs, depth+1) ||
			matchItems(prependItem(au.Right, rest), bs, depth+1)
	}
	if len(bs) == 0 {
		return false
	}
	// A closure item absorbs one covered step and may keep absorbing.
	if label, ok := closureLabel(head); ok {
		if !closureCovers(label, bs[0]) {
			return false
		}
		if matchItems(as, bs[1:], depth+1) {
			return true
		}
		return matchItems(rest, bs[1:], depth+1)
	}
	// Plain item: pairwise containment, then the tails.
	return contains(head, bs[0], depth+1) && matchItems(rest, bs[1:], depth+1)
}

// prependItem builds the item list {n} ++ rest, flattening n and dropping ε.
func prependItem(n rpeq.Node, rest []rpeq.Node) []rpeq.Node {
	out := concatItems(make([]rpeq.Node, 0, 1+len(rest)), n)
	return append(out, rest...)
}

// closureLabel recognizes a closure item: label+ itself, or the desugared
// label* shape (label+ | ε).
func closureLabel(n rpeq.Node) (string, bool) {
	switch n := n.(type) {
	case *rpeq.Plus:
		return n.Label.Name, true
	case *rpeq.Union:
		if p, ok := n.Left.(*rpeq.Plus); ok {
			if _, e := n.Right.(*rpeq.Empty); e {
				return p.Label.Name, true
			}
		}
		if p, ok := n.Right.(*rpeq.Plus); ok {
			if _, e := n.Left.(*rpeq.Empty); e {
				return p.Label.Name, true
			}
		}
	}
	return "", false
}

// closureCovers reports whether the closure label+ covers one consumed
// unit: a step (or qualified step) whose every match is a nonempty run of
// steps matching label.
func closureCovers(label string, item rpeq.Node) bool {
	switch item := item.(type) {
	case *rpeq.Label:
		return label == rpeq.Wildcard || item.Name == label
	case *rpeq.Plus:
		return label == rpeq.Wildcard || item.Label.Name == label
	case *rpeq.Qualifier:
		// A qualified step selects a subset of the unqualified one.
		return closureCovers(label, item.Base)
	}
	return false
}

// attrImplies reports whether attribute predicate p implies q: every
// attribute list satisfying p satisfies q. Sound and incomplete, like
// Contains.
func attrImplies(p, q rpeq.AttrExpr) bool {
	if p == nil || q == nil {
		return false
	}
	if p.String() == q.String() {
		return true
	}
	switch q := q.(type) {
	case *rpeq.AttrAnd:
		return attrImplies(p, q.Left) && attrImplies(p, q.Right)
	case *rpeq.AttrOr:
		if attrImplies(p, q.Left) || attrImplies(p, q.Right) {
			return true
		}
	case *rpeq.AttrNot:
		if pn, ok := p.(*rpeq.AttrNot); ok {
			return attrImplies(q.Expr, pn.Expr)
		}
	}
	switch p := p.(type) {
	case *rpeq.AttrAnd:
		return attrImplies(p.Left, q) || attrImplies(p.Right, q)
	case *rpeq.AttrOr:
		return attrImplies(p.Left, q) && attrImplies(p.Right, q)
	case *rpeq.AttrLeaf:
		// Every leaf operator requires the attribute to be present, so any
		// leaf on a name implies bare existence of that name.
		if ql, ok := q.(*rpeq.AttrLeaf); ok {
			return ql.Op == rpeq.AttrExists && ql.Name == p.Name
		}
	}
	return false
}
