package dtd

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

const bookDTD = `
<!-- a small document type -->
<!ELEMENT library (book+)>
<!ELEMENT book (title, author*, (isbn | oldid)?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT isbn (#PCDATA)>
<!ELEMENT oldid EMPTY>
<!ATTLIST book lang CDATA #IMPLIED>
`

func validate(t *testing.T, dtdSrc, doc string) error {
	t.Helper()
	d, err := Parse(dtdSrc)
	if err != nil {
		t.Fatalf("parse dtd: %v", err)
	}
	return d.ValidateReader(strings.NewReader(doc))
}

func TestValidDocuments(t *testing.T) {
	docs := []string{
		`<library><book><title>t</title></book></library>`,
		`<library><book><title>t</title><author>a</author><author>b</author><isbn>1</isbn></book></library>`,
		`<library><book><title>t</title><oldid/></book><book><title>u</title></book></library>`,
	}
	for _, doc := range docs {
		if err := validate(t, bookDTD, doc); err != nil {
			t.Errorf("%s: %v", doc, err)
		}
	}
}

func TestInvalidDocuments(t *testing.T) {
	docs := []struct{ doc, wantSub string }{
		{`<library></library>`, "content ended"},                                        // book+ unsatisfied
		{`<library><book></book></library>`, "content ended"},                           // missing title
		{`<library><book><author>a</author><title>t</title></book></library>`, "child"}, // wrong order
		{`<library><book><title>t</title><isbn>1</isbn><oldid/></book></library>`, "child"},
		{`<library><book><title>t</title><oldid>x</oldid></book></library>`, "EMPTY"},
		{`<library><book><title>t</title></book>junk text</library>`, "character data"},
	}
	for _, tc := range docs {
		err := validate(t, bookDTD, tc.doc)
		if err == nil {
			t.Errorf("%s: expected a violation", tc.doc)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.doc, err, tc.wantSub)
		}
	}
}

func TestMixedContent(t *testing.T) {
	d := MustParse(`<!ELEMENT p (#PCDATA | em | strong)*> <!ELEMENT em (#PCDATA)> <!ELEMENT strong (#PCDATA)>`)
	if err := d.ValidateReader(strings.NewReader(`<p>hi <em>there</em> and <strong>you</strong>!</p>`)); err != nil {
		t.Fatal(err)
	}
	if err := d.ValidateReader(strings.NewReader(`<p><p/></p>`)); err == nil {
		t.Fatal("nested p is not in the mixed model")
	}
}

func TestStrictMode(t *testing.T) {
	d := MustParse(`<!ELEMENT a (b*)> <!ELEMENT b EMPTY>`)
	if err := d.ValidateReader(strings.NewReader(`<a><b/><c/></a>`)); err == nil {
		t.Fatal("c violates a's content model even in lenient mode")
	}
	lenient := MustParse(`<!ELEMENT a ANY>`)
	if err := lenient.ValidateReader(strings.NewReader(`<a><whatever/></a>`)); err != nil {
		t.Fatalf("lenient: %v", err)
	}
	lenient.Strict = true
	if err := lenient.ValidateReader(strings.NewReader(`<a><whatever/></a>`)); err == nil {
		t.Fatal("strict mode must reject undeclared elements")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`<!ELEMENT >`,
		`<!ELEMENT a`,
		`<!ELEMENT a (b`,
		`<!ELEMENT a (b,)>`,
		`<!ELEMENT a b>`,
		`<!ELEMENT a (b)> <!ELEMENT a (c)>`,
		`<!-- only a comment -->`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

// mondialDTD describes the generated MONDIAL stand-in; the generator's
// output must validate against it (tying the dataset substrate to the
// validation substrate).
const mondialDTD = `
<!ELEMENT mondial (country*, organization*)>
<!ELEMENT country (name, population, government, capital,
                   (province* | city*), city*, ethnicgroups?, religions*, indep_date?)>
<!ELEMENT province (name, area, city+)>
<!ELEMENT city (name, population?)>
<!ELEMENT organization (name, abbrev, members+)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT population (#PCDATA)>
<!ELEMENT government (#PCDATA)>
<!ELEMENT capital (#PCDATA)>
<!ELEMENT area (#PCDATA)>
<!ELEMENT ethnicgroups (#PCDATA)>
<!ELEMENT religions (#PCDATA)>
<!ELEMENT indep_date (#PCDATA)>
<!ELEMENT abbrev (#PCDATA)>
<!ELEMENT members (#PCDATA)>
`

func TestMondialValidates(t *testing.T) {
	d := MustParse(mondialDTD)
	d.Strict = true
	if err := d.Validate(dataset.Mondial(0.1).Stream()); err != nil {
		t.Fatalf("generated MONDIAL does not validate: %v", err)
	}
}

// TestValidationDepthBoundedMemory: the validator's stack is one NFA run
// per open element — deep documents validate without growing beyond d.
func TestValidationDepthBoundedMemory(t *testing.T) {
	d := MustParse(`<!ELEMENT a (a?)>`)
	d.Strict = true
	if err := d.Validate(dataset.Recursive("a", 10000).Stream()); err != nil {
		t.Fatal(err)
	}
}

func TestModelString(t *testing.T) {
	d := MustParse(`<!ELEMENT a (b, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`)
	if got := d.Elements["a"].String(); got != "(b, c?)" {
		t.Fatalf("got %q", got)
	}
}

// wordnetDTD and dmozDTD tie the remaining generators to the validator.
const wordnetDTD = `
<!ELEMENT rdf (Noun*)>
<!ELEMENT Noun (wordForm*, glossaryEntry, hyponymOf?)>
<!ELEMENT wordForm (#PCDATA)>
<!ELEMENT glossaryEntry (#PCDATA)>
<!ELEMENT hyponymOf (#PCDATA)>
`

const dmozDTD = `
<!ELEMENT RDF (Topic | ExternalPage)*>
<!ELEMENT Topic (catid, newsGroup?, Title, editor?, link*)>
<!ELEMENT ExternalPage (Title, Description, topic)>
<!ELEMENT catid (#PCDATA)>
<!ELEMENT newsGroup (#PCDATA)>
<!ELEMENT Title (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT link (#PCDATA)>
<!ELEMENT Description (#PCDATA)>
<!ELEMENT topic (#PCDATA)>
`

func TestWordNetAndDMOZValidate(t *testing.T) {
	wn := MustParse(wordnetDTD)
	wn.Strict = true
	if err := wn.Validate(dataset.WordNet(0.01).Stream()); err != nil {
		t.Errorf("wordnet: %v", err)
	}
	dz := MustParse(dmozDTD)
	dz.Strict = true
	if err := dz.Validate(dataset.DMOZStructure(0.002).Stream()); err != nil {
		t.Errorf("dmoz-structure: %v", err)
	}
	if err := dz.Validate(dataset.DMOZContent(0.002).Stream()); err != nil {
		t.Errorf("dmoz-content: %v", err)
	}
}
