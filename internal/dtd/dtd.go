// Package dtd implements streaming DTD validation of XML streams under
// memory constraints — the problem the paper's related work discusses
// (§VIII, ref. [21], Segoufin & Vianu, "Validating Streaming XML
// Documents"): in general, validation requires the computational power of a
// pushdown automaton whose stack is bounded in the depth of the document —
// the same resource profile as a SPEX transducer.
//
// A DTD assigns each element a content model, a regular expression over
// child element names:
//
//	<!ELEMENT country (name, population?, (province | city)*, religions*)>
//	<!ELEMENT name (#PCDATA)>
//	<!ELEMENT province (name, area?, city+)>
//
// Each content model compiles into an NFA; the validator runs one NFA per
// open element — a stack of runs bounded by the document depth — advancing
// the parent's run on every child start message and requiring an accepting
// state at the parent's end message.
package dtd

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/xmlstream"
)

// DTD is a set of element declarations.
type DTD struct {
	// Elements maps element names to their content models.
	Elements map[string]*Model
	// Strict rejects elements with no declaration; otherwise undeclared
	// elements are treated as ANY.
	Strict bool
}

// ModelKind classifies a content model.
type ModelKind uint8

// Content model kinds.
const (
	// ModelRegex is a regular expression over child element names,
	// possibly mixed with #PCDATA.
	ModelRegex ModelKind = iota
	// ModelEmpty allows no content (EMPTY).
	ModelEmpty
	// ModelAny allows any content (ANY).
	ModelAny
	// ModelText allows character data only ((#PCDATA)).
	ModelText
)

// Model is one element's content model.
type Model struct {
	Kind ModelKind
	// Mixed marks a mixed model (#PCDATA | a | b)*: text is allowed
	// anywhere and the listed children in any order and number.
	Mixed bool
	expr  cmNode
	nfa   *cmNFA
	src   string
}

// String returns the model's source text.
func (m *Model) String() string { return m.src }

// cmNode is a content-model expression node.
type cmNode interface{ cm() }

type cmName struct{ name string }
type cmSeq struct{ kids []cmNode }
type cmChoice struct{ kids []cmNode }
type cmRepeat struct { // postfix ?, *, +
	kid      cmNode
	min, max int // max < 0 means unbounded
}

func (*cmName) cm()   {}
func (*cmSeq) cm()    {}
func (*cmChoice) cm() {}
func (*cmRepeat) cm() {}

// Parse parses DTD text consisting of <!ELEMENT ...> declarations;
// <!ATTLIST ...>, <!ENTITY ...> and comments are skipped.
func Parse(src string) (*DTD, error) {
	d := &DTD{Elements: make(map[string]*Model)}
	rest := src
	for {
		i := strings.Index(rest, "<!")
		if i < 0 {
			break
		}
		rest = rest[i:]
		switch {
		case strings.HasPrefix(rest, "<!--"):
			end := strings.Index(rest, "-->")
			if end < 0 {
				return nil, fmt.Errorf("dtd: unterminated comment")
			}
			rest = rest[end+3:]
		case strings.HasPrefix(rest, "<!ELEMENT"):
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return nil, fmt.Errorf("dtd: unterminated declaration")
			}
			decl := rest[len("<!ELEMENT"):end]
			rest = rest[end+1:]
			if err := d.parseElement(decl); err != nil {
				return nil, err
			}
		default:
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return nil, fmt.Errorf("dtd: unterminated declaration")
			}
			rest = rest[end+1:]
		}
	}
	if len(d.Elements) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations")
	}
	return d, nil
}

// MustParse is Parse panicking on error.
func MustParse(src string) *DTD {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

// parseElement parses " name model" from an ELEMENT declaration.
func (d *DTD) parseElement(decl string) error {
	decl = strings.TrimSpace(decl)
	sp := strings.IndexAny(decl, " \t\n\r")
	if sp < 0 {
		return fmt.Errorf("dtd: ELEMENT declaration %q missing a content model", decl)
	}
	name := decl[:sp]
	if _, dup := d.Elements[name]; dup {
		return fmt.Errorf("dtd: element %s declared twice", name)
	}
	modelSrc := strings.TrimSpace(decl[sp:])
	model, err := parseModel(modelSrc)
	if err != nil {
		return fmt.Errorf("dtd: element %s: %v", name, err)
	}
	d.Elements[name] = model
	return nil
}

// parseModel parses a content model.
func parseModel(src string) (*Model, error) {
	switch src {
	case "EMPTY":
		return &Model{Kind: ModelEmpty, src: src}, nil
	case "ANY":
		return &Model{Kind: ModelAny, src: src}, nil
	case "(#PCDATA)", "(#PCDATA)*":
		return &Model{Kind: ModelText, src: src}, nil
	}
	p := &modelParser{src: src}
	p.skip()
	if p.peek() != '(' {
		return nil, fmt.Errorf("content model must be parenthesized, got %q", src)
	}
	// Mixed model (#PCDATA | a | b)*.
	if strings.HasPrefix(strings.ReplaceAll(src, " ", ""), "(#PCDATA|") {
		names, err := parseMixed(src)
		if err != nil {
			return nil, err
		}
		kids := make([]cmNode, len(names))
		for i, n := range names {
			kids[i] = &cmName{name: n}
		}
		expr := cmNode(&cmRepeat{kid: &cmChoice{kids: kids}, min: 0, max: -1})
		m := &Model{Kind: ModelRegex, Mixed: true, expr: expr, src: src}
		m.nfa = compileCM(expr)
		return m, nil
	}
	expr, err := p.parseChoice()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("trailing input %q in content model", p.src[p.pos:])
	}
	m := &Model{Kind: ModelRegex, expr: expr, src: src}
	m.nfa = compileCM(expr)
	return m, nil
}

// parseMixed extracts the names from "(#PCDATA | a | b)*".
func parseMixed(src string) ([]string, error) {
	s := strings.TrimSpace(src)
	if !strings.HasSuffix(s, ")*") {
		return nil, fmt.Errorf("mixed content model must end in )*: %q", src)
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(s, "("), ")*")
	parts := strings.Split(inner, "|")
	if strings.TrimSpace(parts[0]) != "#PCDATA" {
		return nil, fmt.Errorf("mixed content model must start with #PCDATA: %q", src)
	}
	var names []string
	for _, p := range parts[1:] {
		n := strings.TrimSpace(p)
		if n == "" {
			return nil, fmt.Errorf("empty name in mixed content model %q", src)
		}
		names = append(names, n)
	}
	return names, nil
}

// modelParser parses the deterministic-content-model grammar
//
//	choice ::= seq ('|' seq)*
//	seq    ::= atom (',' atom)*
//	atom   ::= (name | '(' choice ')') ('?' | '*' | '+')?
type modelParser struct {
	src string
	pos int
}

func (p *modelParser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *modelParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *modelParser) parseChoice() (cmNode, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	kids := []cmNode{first}
	for {
		p.skip()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &cmChoice{kids: kids}, nil
}

func (p *modelParser) parseSeq() (cmNode, error) {
	first, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	kids := []cmNode{first}
	for {
		p.skip()
		if p.peek() != ',' {
			break
		}
		p.pos++
		next, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &cmSeq{kids: kids}, nil
}

func (p *modelParser) parseAtom() (cmNode, error) {
	p.skip()
	var node cmNode
	switch {
	case p.peek() == '(':
		p.pos++
		inner, err := p.parseChoice()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ')' {
			return nil, fmt.Errorf("expected ')' at offset %d of %q", p.pos, p.src)
		}
		p.pos++
		node = inner
	default:
		start := p.pos
		for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("expected a name at offset %d of %q", p.pos, p.src)
		}
		node = &cmName{name: p.src[start:p.pos]}
	}
	switch p.peek() {
	case '?':
		p.pos++
		return &cmRepeat{kid: node, min: 0, max: 1}, nil
	case '*':
		p.pos++
		return &cmRepeat{kid: node, min: 0, max: -1}, nil
	case '+':
		p.pos++
		return &cmRepeat{kid: node, min: 1, max: -1}, nil
	}
	return node, nil
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// cmNFA is a Thompson automaton over child element names.
type cmNFA struct {
	eps     [][]int
	lab     []map[string][]int
	start   int
	accept  int
	nstates int
}

func (n *cmNFA) newState() int {
	n.eps = append(n.eps, nil)
	n.lab = append(n.lab, nil)
	n.nstates++
	return n.nstates - 1
}

func (n *cmNFA) addEps(from, to int) { n.eps[from] = append(n.eps[from], to) }

func (n *cmNFA) addLab(from int, label string, to int) {
	if n.lab[from] == nil {
		n.lab[from] = make(map[string][]int)
	}
	n.lab[from][label] = append(n.lab[from][label], to)
}

func compileCM(expr cmNode) *cmNFA {
	n := &cmNFA{}
	in := n.newState()
	out := n.frag(expr, in)
	n.start, n.accept = in, out
	return n
}

func (n *cmNFA) frag(expr cmNode, in int) int {
	switch e := expr.(type) {
	case *cmName:
		out := n.newState()
		n.addLab(in, e.name, out)
		return out
	case *cmSeq:
		cur := in
		for _, k := range e.kids {
			cur = n.frag(k, cur)
		}
		return cur
	case *cmChoice:
		out := n.newState()
		for _, k := range e.kids {
			n.addEps(n.frag(k, in), out)
		}
		return out
	case *cmRepeat:
		switch {
		case e.min == 0 && e.max == 1: // ?
			out := n.frag(e.kid, in)
			n.addEps(in, out)
			return out
		case e.min == 0: // *
			out := n.frag(e.kid, in)
			n.addEps(in, out)
			n.addEps(out, in)
			return out
		default: // +
			mid := n.frag(e.kid, in)
			n.addEps(mid, in)
			return mid
		}
	default:
		panic(fmt.Sprintf("dtd: unknown content-model node %T", expr))
	}
}

// eclose extends set along ε-transitions.
func (n *cmNFA) eclose(set []bool) {
	var stack []int
	for s, in := range set {
		if in {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, to := range n.eps[s] {
			if !set[to] {
				set[to] = true
				stack = append(stack, to)
			}
		}
	}
}

// move consumes one child element name; it reports whether any state
// remains reachable.
func (n *cmNFA) move(set []bool, label string) ([]bool, bool) {
	out := make([]bool, n.nstates)
	any := false
	for s, in := range set {
		if !in {
			continue
		}
		for _, to := range n.lab[s][label] {
			out[to] = true
			any = true
		}
	}
	if !any {
		return nil, false
	}
	n.eclose(out)
	return out, true
}

// ValidationError describes the first constraint violation found.
type ValidationError struct {
	Element string // element whose content is invalid
	Child   string // offending child ("" for end-of-content or text)
	Pos     int64  // ordinal of the offending event in the stream
	Reason  string
}

func (e *ValidationError) Error() string {
	if e.Child != "" {
		return fmt.Sprintf("dtd: element <%s>: child <%s> not allowed here (event %d): %s", e.Element, e.Child, e.Pos, e.Reason)
	}
	return fmt.Sprintf("dtd: element <%s> (event %d): %s", e.Element, e.Pos, e.Reason)
}

// run is one open element's validation state.
type run struct {
	name  string
	model *Model
	set   []bool
}

// Validate streams src against the DTD, returning the first violation (or
// a scan error). Memory is bounded by the document depth: one NFA state set
// per open element — the PDA profile of ref. [21].
func (d *DTD) Validate(src xmlstream.Source) error {
	var stack []*run
	var pos int64
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		pos++
		switch ev.Kind {
		case xmlstream.StartElement:
			if len(stack) > 0 {
				if err := d.child(stack[len(stack)-1], ev.Name, pos); err != nil {
					return err
				}
			}
			model, ok := d.Elements[ev.Name]
			if !ok {
				if d.Strict {
					return &ValidationError{Element: ev.Name, Pos: pos, Reason: "element not declared"}
				}
				model = &Model{Kind: ModelAny, src: "ANY"}
			}
			r := &run{name: ev.Name, model: model}
			if model.Kind == ModelRegex {
				r.set = make([]bool, model.nfa.nstates)
				r.set[model.nfa.start] = true
				model.nfa.eclose(r.set)
			}
			stack = append(stack, r)
		case xmlstream.EndElement:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if r.model.Kind == ModelRegex && !r.set[r.model.nfa.accept] {
				return &ValidationError{Element: r.name, Pos: pos, Reason: "content ended before the model was satisfied"}
			}
		case xmlstream.Text:
			if len(stack) == 0 {
				continue
			}
			r := stack[len(stack)-1]
			switch r.model.Kind {
			case ModelAny, ModelText:
			case ModelRegex:
				if !r.model.Mixed && strings.TrimSpace(ev.Data) != "" {
					return &ValidationError{Element: r.name, Pos: pos, Reason: "character data not allowed (element-only content)"}
				}
			case ModelEmpty:
				if strings.TrimSpace(ev.Data) != "" {
					return &ValidationError{Element: r.name, Pos: pos, Reason: "character data in EMPTY element"}
				}
			}
		}
	}
}

// child advances the parent's content-model run by one child element.
func (d *DTD) child(parent *run, name string, pos int64) error {
	switch parent.model.Kind {
	case ModelAny:
		return nil
	case ModelEmpty:
		return &ValidationError{Element: parent.name, Child: name, Pos: pos, Reason: "EMPTY element has a child"}
	case ModelText:
		return &ValidationError{Element: parent.name, Child: name, Pos: pos, Reason: "text-only element has a child"}
	default:
		next, ok := parent.model.nfa.move(parent.set, name)
		if !ok {
			return &ValidationError{Element: parent.name, Child: name, Pos: pos,
				Reason: fmt.Sprintf("violates content model %s", parent.model.src)}
		}
		parent.set = next
		return nil
	}
}

// ValidateReader validates raw XML bytes.
func (d *DTD) ValidateReader(r io.Reader) error {
	return d.Validate(xmlstream.NewScanner(r))
}
