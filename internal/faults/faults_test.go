package faults_test

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	spex "repro"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/multi"
	"repro/internal/xmlstream"
)

// multiPlan prepares one subscription plan.
func multiPlan(expr string) (*core.Plan, error) { return core.Prepare(expr) }

// paperDoc is the running example of the paper's Figure 1.
const paperDoc = `<a><a><c/></a><b/><c/></a>`

// TestTornReadsChangeNothing fragments the input into one-byte reads: the
// evaluation must produce the identical answer, only via more Read calls.
func TestTornReadsChangeNothing(t *testing.T) {
	q := spex.MustCompile("_*.a[b].c")
	want, err := q.Count(strings.NewReader(paperDoc))
	if err != nil {
		t.Fatalf("clean Count: %v", err)
	}
	got, err := q.Count(&faults.Reader{R: strings.NewReader(paperDoc), TornReads: true})
	if err != nil {
		t.Fatalf("torn Count: %v", err)
	}
	if got != want {
		t.Fatalf("torn reads changed the answer: %d, want %d", got, want)
	}
}

// TestByteTruncationIsTyped cuts the stream mid-document with a clean EOF:
// the scanner must diagnose ErrTruncated, never report a short document.
func TestByteTruncationIsTyped(t *testing.T) {
	q := spex.MustCompile("_*.c")
	for _, cut := range []int64{1, 5, 10, int64(len(paperDoc)) - 1} {
		_, err := q.Count(&faults.Reader{R: strings.NewReader(paperDoc), TruncateAt: cut})
		if err == nil {
			t.Fatalf("cut at %d: evaluation succeeded on a truncated document", cut)
		}
		if !errors.Is(err, xmlstream.ErrTruncated) {
			t.Fatalf("cut at %d: error %v does not match xmlstream.ErrTruncated", cut, err)
		}
	}
}

// TestInjectedReadErrorSurfaces fails the read mid-stream: the evaluation's
// error must be exactly the injected one.
func TestInjectedReadErrorSurfaces(t *testing.T) {
	q := spex.MustCompile("_*.c")
	_, err := q.Count(&faults.Reader{R: strings.NewReader(paperDoc), FailAt: 7})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error %v does not match ErrInjected", err)
	}
	sentinel := errors.New("disk on fire")
	_, err = q.Count(&faults.Reader{R: strings.NewReader(paperDoc), FailAt: 7, Err: sentinel})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not match the custom sentinel", err)
	}
}

// TestStallDelaysButCompletes inserts a stall: the evaluation must finish
// with the right answer, not hang or error.
func TestStallDelaysButCompletes(t *testing.T) {
	q := spex.MustCompile("_*.c")
	start := time.Now()
	got, err := q.Count(&faults.Reader{
		R: strings.NewReader(paperDoc), StallAt: 4, StallFor: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("stalled Count: %v", err)
	}
	if got != 2 {
		t.Fatalf("stalled Count = %d, want 2", got)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("the stall did not take effect")
	}
}

// TestEventCutDetectedByEveryEngine cuts the event stream mid-document:
// every multi-query engine must report the imbalance instead of answering
// on the truncated prefix as if it were complete.
func TestEventCutDetectedByEveryEngine(t *testing.T) {
	newSub := func(t *testing.T) []multi.Subscription {
		t.Helper()
		plan, err := multiPlan("_*.c")
		if err != nil {
			t.Fatal(err)
		}
		return []multi.Subscription{{Name: "q", Plan: plan}}
	}
	engines := []struct {
		name  string
		build func(t *testing.T) interface {
			Run(src xmlstream.Source) error
		}
	}{
		{"sequential", func(t *testing.T) interface {
			Run(src xmlstream.Source) error
		} {
			s, err := multi.NewSet(newSub(t))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"shared", func(t *testing.T) interface {
			Run(src xmlstream.Source) error
		} {
			s, err := multi.NewSharedSet(newSub(t))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"parallel", func(t *testing.T) interface {
			Run(src xmlstream.Source) error
		} {
			s, err := multi.NewParallelSet(newSub(t), multi.ParallelOptions{Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			e := eng.build(t)
			src := &faults.Source{
				S:        xmlstream.NewScanner(strings.NewReader(paperDoc), xmlstream.WithText(false)),
				CutAfter: 4,
			}
			err := e.Run(src)
			if err == nil {
				t.Fatal("engine accepted an event stream cut mid-document")
			}
			if !strings.Contains(err.Error(), "unclosed") {
				t.Fatalf("cut error %v does not report the imbalance", err)
			}
		})
	}
}

// TestEventFailSurfaces injects an event-level error into a shared set.
func TestEventFailSurfaces(t *testing.T) {
	plan, err := multiPlan("_*.c")
	if err != nil {
		t.Fatal(err)
	}
	set, err := multi.NewSharedSet([]multi.Subscription{{Name: "q", Plan: plan}})
	if err != nil {
		t.Fatal(err)
	}
	src := &faults.Source{
		S:         xmlstream.NewScanner(strings.NewReader(paperDoc), xmlstream.WithText(false)),
		FailAfter: 3,
	}
	if err := set.Run(src); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error %v does not match ErrInjected", err)
	}
}

// TestDeepDocTripsDepthLimit drives the lazily generated nesting bomb into
// the scanner: a typed depth error, long before the generator is drained.
func TestDeepDocTripsDepthLimit(t *testing.T) {
	s := xmlstream.NewScanner(faults.DeepDoc(1_000_000), xmlstream.WithLimits(xmlstream.Limits{MaxDepth: 1000}))
	var err error
	for {
		if _, err = s.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, xmlstream.ErrTooDeep) {
		t.Fatalf("error %v does not match ErrTooDeep", err)
	}
}

// TestWideTokenDocTripsTokenLimit drives the lazily generated oversized tag
// name into the scanner.
func TestWideTokenDocTripsTokenLimit(t *testing.T) {
	s := xmlstream.NewScanner(faults.WideTokenDoc(1<<20), xmlstream.WithLimits(xmlstream.Limits{MaxTokenBytes: 1 << 10}))
	var err error
	for {
		if _, err = s.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, xmlstream.ErrTokenTooLarge) {
		t.Fatalf("error %v does not match ErrTokenTooLarge", err)
	}
}

// TestGeneratorsProduceWellFormedDocs checks the in-budget shapes of both
// generators evaluate cleanly end to end.
func TestGeneratorsProduceWellFormedDocs(t *testing.T) {
	q := spex.MustCompile("_*.a")
	n, err := q.Count(faults.DeepDoc(100))
	if err != nil {
		t.Fatalf("DeepDoc(100): %v", err)
	}
	if n != 100 {
		t.Fatalf("DeepDoc(100) matched %d a's, want 100", n)
	}
	b, err := io.ReadAll(faults.WideTokenDoc(8))
	if err != nil {
		t.Fatalf("WideTokenDoc(8): %v", err)
	}
	if string(b) != "<aaaaaaaa/>" {
		t.Fatalf("WideTokenDoc(8) = %q", b)
	}
}
