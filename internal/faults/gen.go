package faults

import "io"

// DeepDoc returns a reader lazily streaming a document of the given element
// nesting depth (<a><a>…</a></a>). Nothing is materialized up front, so a
// million-deep nesting bomb costs the generator a few bytes — the consumer
// under test is the one whose memory the document attacks.
func DeepDoc(depth int) io.Reader {
	return &deepDoc{depth: depth}
}

type deepDoc struct {
	depth, opened, closed int
	pend                  []byte
}

func (d *deepDoc) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(d.pend) == 0 {
			switch {
			case d.opened < d.depth:
				d.pend = []byte("<a>")
				d.opened++
			case d.closed < d.depth:
				d.pend = []byte("</a>")
				d.closed++
			default:
				if n == 0 {
					return 0, io.EOF
				}
				return n, nil
			}
		}
		c := copy(p[n:], d.pend)
		n += c
		d.pend = d.pend[c:]
	}
	return n, nil
}

// WideTokenDoc returns a reader lazily streaming a self-closing root
// element whose tag name is n bytes long — the oversized-single-token
// attack on any tokenizer that buffers a name before interning it.
func WideTokenDoc(n int) io.Reader {
	return &wideToken{left: n}
}

type wideToken struct {
	left  int
	state int // 0: "<", 1: name bytes, 2: "/>", 3: done
	pend  []byte
}

func (w *wideToken) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(w.pend) == 0 {
			switch w.state {
			case 0:
				w.pend = []byte("<")
				w.state = 1
			case 1:
				if w.left > 0 {
					run := w.left
					if run > 4096 {
						run = 4096
					}
					w.left -= run
					buf := make([]byte, run)
					for i := range buf {
						buf[i] = 'a'
					}
					w.pend = buf
				} else {
					w.state = 2
				}
			case 2:
				w.pend = []byte("/>")
				w.state = 3
			default:
				if n == 0 {
					return 0, io.EOF
				}
				return n, nil
			}
		}
		c := copy(p[n:], w.pend)
		n += c
		w.pend = w.pend[c:]
	}
	return n, nil
}
