// Package faults injects controlled failures into the streaming pipeline:
// torn reads, stalls, truncation and outright errors at the byte layer
// (Reader), the same at the event layer (Source), plus lazily generated
// pathological documents (unbounded nesting, oversized tokens). The
// evaluator's robustness claims — every fault yields a typed error, never a
// hang, a panic or a silently wrong answer — are tested by driving these
// wrappers through the whole stack.
package faults

import (
	"errors"
	"io"
	"time"

	"repro/internal/xmlstream"
)

// ErrInjected is the default error delivered by FailAt/FailAfter faults;
// tests assert errors.Is against it to prove the fault — not some
// coincidental failure — surfaced.
var ErrInjected = errors.New("faults: injected fault")

// Reader wraps an io.Reader with byte-level faults. The zero value of every
// fault field disables that fault, so a zero-configured Reader is a
// transparent pass-through.
type Reader struct {
	// R is the underlying stream.
	R io.Reader
	// TornReads caps every Read at one byte: the pathological fragmentation
	// of a congested connection. Consumers must produce identical results,
	// only slower.
	TornReads bool
	// TruncateAt, when positive, ends the stream with a clean io.EOF after
	// that many bytes — the silent mid-document cut a dropped connection
	// produces. The scanner must diagnose the truncation (ErrTruncated),
	// not report a short document.
	TruncateAt int64
	// FailAt, when positive, fails the read at that byte offset with Err.
	FailAt int64
	// Err is the error FailAt delivers; nil selects ErrInjected.
	Err error
	// StallAt and StallFor introduce one synchronous delay when the offset
	// reaches StallAt: a stalled peer. StallFor of zero disables it.
	StallAt  int64
	StallFor time.Duration

	off     int64
	stalled bool
}

func (f *Reader) fault() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

func (f *Reader) Read(p []byte) (int, error) {
	if f.StallFor > 0 && !f.stalled && f.off >= f.StallAt {
		f.stalled = true
		time.Sleep(f.StallFor)
	}
	if f.FailAt > 0 && f.off >= f.FailAt {
		return 0, f.fault()
	}
	if f.TruncateAt > 0 && f.off >= f.TruncateAt {
		return 0, io.EOF
	}
	if f.TornReads && len(p) > 1 {
		p = p[:1]
	}
	// Never read past a configured fault point, so the fault lands at its
	// exact offset instead of somewhere inside an oversized chunk.
	if f.FailAt > 0 {
		if rem := f.FailAt - f.off; int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	if f.TruncateAt > 0 {
		if rem := f.TruncateAt - f.off; int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	n, err := f.R.Read(p)
	f.off += int64(n)
	return n, err
}

// Source wraps an xmlstream.Source with event-level faults, for consumers
// fed pre-scanned events (the multi-query engines, push-mode runs) where a
// byte-level wrapper cannot reach.
type Source struct {
	// S is the underlying event source.
	S xmlstream.Source
	// CutAfter, when positive, ends the stream with io.EOF after that many
	// events — a silent event-level truncation. The consumer's
	// close/finish path must detect the imbalance.
	CutAfter int64
	// FailAfter, when positive, fails Next with Err after that many events.
	FailAfter int64
	// Err is the error FailAfter delivers; nil selects ErrInjected.
	Err error
	// StallAfter and StallFor introduce one synchronous delay at the given
	// event count.
	StallAfter int64
	StallFor   time.Duration

	n       int64
	stalled bool
}

func (f *Source) Next() (xmlstream.Event, error) {
	if f.StallFor > 0 && !f.stalled && f.n >= f.StallAfter {
		f.stalled = true
		time.Sleep(f.StallFor)
	}
	if f.FailAfter > 0 && f.n >= f.FailAfter {
		if f.Err != nil {
			return xmlstream.Event{}, f.Err
		}
		return xmlstream.Event{}, ErrInjected
	}
	if f.CutAfter > 0 && f.n >= f.CutAfter {
		return xmlstream.Event{}, io.EOF
	}
	ev, err := f.S.Next()
	if err == nil {
		f.n++
	}
	return ev, err
}
