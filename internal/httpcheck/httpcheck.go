// Package httpcheck holds shared test helpers for HTTP handler hygiene:
// every response with a body must declare a Content-Type, error statuses
// that shed load must carry Retry-After, and handlers must tolerate bodies
// they do not read. The obs and server handler tests share these checks.
package httpcheck

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Response captures what a handler produced for one request.
type Response struct {
	Status int
	Header http.Header
	Body   string
}

// Do drives handler with one request and returns the recorded response,
// asserting baseline hygiene: a non-empty body carries a Content-Type.
func Do(t *testing.T, handler http.Handler, method, target, body string) Response {
	t.Helper()
	var r io.Reader
	if body != "" {
		r = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, r)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	resp := Response{Status: rec.Code, Header: rec.Header(), Body: rec.Body.String()}
	if resp.Body != "" && resp.Header.Get("Content-Type") == "" {
		t.Errorf("%s %s: %d response has a body but no Content-Type", method, target, resp.Status)
	}
	return resp
}

// WantStatus asserts the response status.
func (r Response) WantStatus(t *testing.T, want int) Response {
	t.Helper()
	if r.Status != want {
		t.Errorf("status = %d, want %d (body %q)", r.Status, want, r.Body)
	}
	return r
}

// WantContentType asserts the Content-Type starts with want.
func (r Response) WantContentType(t *testing.T, want string) Response {
	t.Helper()
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, want) {
		t.Errorf("Content-Type = %q, want prefix %q", ct, want)
	}
	return r
}

// WantRetryAfter asserts a Retry-After header is present (load-shedding
// responses must tell clients when to come back).
func (r Response) WantRetryAfter(t *testing.T) Response {
	t.Helper()
	if r.Header.Get("Retry-After") == "" {
		t.Errorf("%d response missing Retry-After", r.Status)
	}
	return r
}

// WantBodyContains asserts the body contains want.
func (r Response) WantBodyContains(t *testing.T, want string) Response {
	t.Helper()
	if !strings.Contains(r.Body, want) {
		t.Errorf("body %q does not contain %q", r.Body, want)
	}
	return r
}
