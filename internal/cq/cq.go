// Package cq implements the conjunctive queries with regular path
// expressions of the paper's §VII:
//
//	q(X) :- Y1 r1 Z1, ..., Yn rn Zn
//
// where each rᵢ is an rpeq, Root is the distinguished variable bound to the
// document root, and X names the head variable whose bindings are the
// answer. Following the translation T of Fig. 16, a body atom whose target
// variable does not lead to a head variable becomes a qualifier; atoms on
// the path to the head become steps. The paper's example
//
//	q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3
//
// is therefore equivalent to the rpeq  _*.a[b].c, and this package realizes
// T by compiling the conjunctive query to exactly that rpeq and reusing the
// SPEX network machinery.
//
// As in the paper, node-identity joins (a variable reachable via two
// distinct paths) and multiple head variables are left out; the translator
// rejects them with a clear error.
package cq

import (
	"fmt"
	"strings"

	"repro/internal/rpeq"
)

// Query is a parsed conjunctive query.
type Query struct {
	// Head is the head variable name.
	Head string
	// Atoms are the body atoms in source order.
	Atoms  []Atom
	source string
}

// Atom is one body atom "Y (r) Z".
type Atom struct {
	From string
	Path rpeq.Node
	To   string
}

// Root is the distinguished variable bound to the document root.
const Root = "Root"

// Parse parses a conjunctive query of the form
//
//	q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3
func Parse(src string) (*Query, error) {
	head, body, ok := cut(src, ":-")
	if !ok {
		return nil, fmt.Errorf("cq: missing ':-' in %q", src)
	}
	head = strings.TrimSpace(head)
	if !strings.HasPrefix(head, "q(") || !strings.HasSuffix(head, ")") {
		return nil, fmt.Errorf("cq: head must have the form q(X), got %q", head)
	}
	headVars := strings.TrimSpace(head[2 : len(head)-1])
	if headVars == "" {
		return nil, fmt.Errorf("cq: head variable missing in %q", head)
	}
	if strings.Contains(headVars, ",") {
		return nil, fmt.Errorf("cq: multiple head variables are not supported (the paper leaves multiple sinks as an extension)")
	}
	q := &Query{Head: headVars, source: src}
	for _, part := range splitAtoms(body) {
		atom, err := parseAtom(part)
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, atom)
	}
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("cq: empty body")
	}
	return q, nil
}

// MustParse is Parse panicking on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the source text.
func (q *Query) String() string { return q.source }

// cut is strings.Cut for a multi-byte separator.
func cut(s, sep string) (before, after string, found bool) {
	i := strings.Index(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// splitAtoms splits the body on commas not nested inside parentheses or
// brackets (rpeq syntax may contain both).
func splitAtoms(body string) []string {
	var parts []string
	depth := 0
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, body[start:])
	return parts
}

// parseAtom parses "Y (r) Z".
func parseAtom(s string) (Atom, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return Atom{}, fmt.Errorf("cq: atom %q missing '('", s)
	}
	from := strings.TrimSpace(s[:open])
	if from == "" {
		return Atom{}, fmt.Errorf("cq: atom %q missing source variable", s)
	}
	// Find the matching close parenthesis.
	depth := 0
	closeAt := -1
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				closeAt = i
			}
		}
		if closeAt >= 0 {
			break
		}
	}
	if closeAt < 0 {
		return Atom{}, fmt.Errorf("cq: atom %q has unbalanced parentheses", s)
	}
	pathSrc := s[open+1 : closeAt]
	to := strings.TrimSpace(s[closeAt+1:])
	if to == "" {
		return Atom{}, fmt.Errorf("cq: atom %q missing target variable", s)
	}
	path, err := rpeq.Parse(pathSrc)
	if err != nil {
		return Atom{}, fmt.Errorf("cq: atom %q: %v", s, err)
	}
	return Atom{From: from, Path: path, To: to}, nil
}

// Translate realizes the paper's T: it returns the rpeq whose evaluation
// binds the head variable. Non-head branches of the variable tree become
// qualifiers.
func (q *Query) Translate() (rpeq.Node, error) {
	// Build the variable tree and validate tree-shape.
	children := map[string][]Atom{}
	defined := map[string]bool{Root: true}
	for _, a := range q.Atoms {
		if defined[a.To] {
			return nil, fmt.Errorf("cq: variable %s bound twice; node-identity joins are future work in the paper (§VII)", a.To)
		}
		defined[a.To] = true
		children[a.From] = append(children[a.From], a)
	}
	for _, a := range q.Atoms {
		if !defined[a.From] {
			return nil, fmt.Errorf("cq: variable %s used before being bound", a.From)
		}
	}
	if !defined[q.Head] {
		return nil, fmt.Errorf("cq: head variable %s not bound in the body", q.Head)
	}

	// reach(Z, X): does Z's subtree contain the head variable?
	var reaches func(v string) bool
	reaches = func(v string) bool {
		if v == q.Head {
			return true
		}
		for _, a := range children[v] {
			if reaches(a.To) {
				return true
			}
		}
		return false
	}

	// qualExpr builds the qualifier expression for the subtree rooted at
	// the atom's target: the path, qualified by each sub-branch.
	var qualExpr func(a Atom) rpeq.Node
	qualExpr = func(a Atom) rpeq.Node {
		expr := a.Path
		for _, sub := range children[a.To] {
			expr = &rpeq.Qualifier{Base: expr, Cond: qualExpr(sub)}
		}
		return expr
	}

	// Walk the unique path Root → head. The step entering a variable Z is
	// the atom's path qualified by every non-path branch out of Z — the
	// qualifiers constrain the node bound to Z, which is where the step
	// ends.
	var pathFrom func(v string) (rpeq.Node, error)
	pathFrom = func(v string) (rpeq.Node, error) {
		var pathAtom *Atom
		for i := range children[v] {
			if reaches(children[v][i].To) {
				if pathAtom != nil {
					return nil, fmt.Errorf("cq: head variable reachable via two paths from %s; joins are future work", v)
				}
				pathAtom = &children[v][i]
			}
		}
		if pathAtom == nil {
			return nil, fmt.Errorf("cq: no path from %s to head variable %s", v, q.Head)
		}
		step := pathAtom.Path
		for _, a := range children[pathAtom.To] {
			if !reaches(a.To) {
				step = &rpeq.Qualifier{Base: step, Cond: qualExpr(a)}
			}
		}
		if pathAtom.To == q.Head {
			return step, nil
		}
		rest, err := pathFrom(pathAtom.To)
		if err != nil {
			return nil, err
		}
		return &rpeq.Concat{Left: step, Right: rest}, nil
	}
	if q.Head == Root {
		return nil, fmt.Errorf("cq: the head variable cannot be Root")
	}
	return pathFrom(Root)
}
