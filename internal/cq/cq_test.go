package cq

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rpeq"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

func translate(t *testing.T, src string) rpeq.Node {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	expr, err := q.Translate()
	if err != nil {
		t.Fatalf("translate %q: %v", src, err)
	}
	return expr
}

// TestPaperExample checks §VII's worked example: the conjunctive query is
// equivalent to the rpeq of §III.10.
func TestPaperExample(t *testing.T) {
	expr := translate(t, "q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3")
	// The translated tree attaches the qualifier to the full step
	// (_*.a)[b], which selects the same nodes as _*.(a[b]); the
	// equivalence test below checks the answers agree.
	want := rpeq.MustParse("(_*.a)[b].c")
	if !rpeq.Equal(expr, want) {
		t.Fatalf("got %s, want %s", rpeq.Canonical(expr), rpeq.Canonical(want))
	}
}

func TestTranslations(t *testing.T) {
	tests := []struct{ cq, want string }{
		{"q(X1) :- Root(a) X1", "a"},
		{"q(X2) :- Root(a) X1, X1(b) X2", "a.b"},
		{"q(X1) :- Root(a) X1, X1(b) X2", "a[b]"},
		{"q(X1) :- Root(a) X1, X1(b) X2, X1(c) X3", "a[b][c]"},
		{"q(X1) :- Root(a) X1, X1(b) X2, X2(c) X3", "a[b[c]]"},
		{"q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3", "(_*.a)[b].c"},
		{"q(X2) :- Root(a+) X1, X1(b|c) X2", "a+.(b|c)"},
		// Branches out of the head variable become trailing qualifiers.
		{"q(X1) :- Root(a) X1, X1(b) X2, X2(d) X3, X1(c) X4", "a[b[d]][c]"},
	}
	for _, tc := range tests {
		expr := translate(t, tc.cq)
		want := rpeq.MustParse(tc.want)
		if !rpeq.Equal(expr, want) {
			t.Errorf("%s:\n got  %s\n want %s", tc.cq, rpeq.Canonical(expr), rpeq.Canonical(want))
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"q(X1) Root(a) X1",       // no :-
		"p(X1) :- Root(a) X1",    // head shape
		"q() :- Root(a) X1",      // no head var
		"q(X1,X2) :- Root(a) X1", // multiple heads
		"q(X1) :- Root a X1",     // no parens
		"q(X1) :- Root(a X1",     // unbalanced
		"q(X1) :- (a) X1",        // missing source var
		"q(X1) :- Root(a)",       // missing target var
		"q(X1) :- Root(a..b) X1", // bad rpeq
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	bad := []string{
		"q(X9) :- Root(a) X1",             // head unbound
		"q(X1) :- Root(a) X1, Root(b) X1", // bound twice (join)
		"q(X1) :- Y(a) X1",                // source unbound
	}
	for _, src := range bad {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := q.Translate(); err == nil {
			t.Errorf("Translate(%q) unexpectedly succeeded", src)
		}
	}
}

// TestConjunctiveEquivalence is E11: evaluating the conjunctive query gives
// the same answers as the equivalent rpeq on the paper's document.
func TestConjunctiveEquivalence(t *testing.T) {
	doc := `<a><a><c/></a><b/><c/></a>`
	expr := translate(t, "q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3")
	var got []int64
	net, err := spexnet.Build(expr, spexnet.Options{Mode: spexnet.ModeNodes,
		Sink: func(r spexnet.Result) { got = append(got, r.Index) }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(xmlstream.NewScanner(strings.NewReader(doc))); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("got %v, want [5]", got)
	}
}

// TestConcurrentTranslatedPlan: one translated plan is shared by many
// concurrent evaluations, the way a server channel shares its compiled
// subscriptions across sessions. Each goroutine drives its own Feed/Close
// run; run with -race this proves the plan (and its interned symbol table)
// is read-only across runs.
func TestConcurrentTranslatedPlan(t *testing.T) {
	expr := translate(t, "q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3")
	plan := core.FromAST(expr)
	doc := `<a><a><c/></a><b/><c/></a>`

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var got []int64
				run, err := plan.NewRun(core.EvalOptions{Mode: spexnet.ModeNodes,
					Sink: func(r spexnet.Result) { got = append(got, r.Index) }})
				if err != nil {
					t.Error(err)
					return
				}
				src := xmlstream.NewScanner(strings.NewReader(doc))
				for {
					ev, err := src.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Error(err)
						return
					}
					if err := run.Feed(ev); err != nil {
						t.Error(err)
						return
					}
				}
				if err := run.Close(); err != nil {
					t.Error(err)
					return
				}
				if len(got) != 1 || got[0] != 5 {
					t.Errorf("got %v, want [5]", got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCancellationMidStream: a context cancelled part-way through a
// reader-fed evaluation of a translated conjunctive query aborts the run
// with the context's error instead of completing.
func TestCancellationMidStream(t *testing.T) {
	expr := translate(t, "q(X2) :- Root(_*.a) X1, X1(c) X2")
	plan := core.FromAST(expr)
	var doc strings.Builder
	doc.WriteString("<a>")
	for i := 0; i < 200000; i++ {
		doc.WriteString("<c/>")
	}
	doc.WriteString("</a>")

	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	_, err := plan.EvaluateReader(strings.NewReader(doc.String()), core.EvalOptions{
		Mode: spexnet.ModeNodes,
		Ctx:  ctx,
		Sink: func(spexnet.Result) {
			if seen++; seen == 10 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen >= 200000 {
		t.Fatalf("evaluation ran to completion despite cancellation (%d answers)", seen)
	}
}
