package spexnet

import (
	"strings"
	"testing"

	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// runSerializeStats evaluates in ModeSerialize and returns (results, stats).
func runSerializeStats(t *testing.T, expr, doc string) ([]Result, Stats) {
	t.Helper()
	var results []Result
	net, err := Build(rpeq.MustParse(expr), Options{Mode: ModeSerialize, Sink: func(r Result) {
		results = append(results, r)
	}})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(xmlstream.NewScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatal(err)
	}
	return results, stats
}

// TestOutputDocumentOrderBlocking: an early undetermined candidate must
// hold back later already-determined ones until it resolves, and the final
// order must be document order.
func TestOutputDocumentOrderBlocking(t *testing.T) {
	// x[q].y and plain z: the y candidates under x wait for q; the z
	// candidate is determined immediately but comes later in document
	// order... construct the opposite: undetermined BEFORE determined.
	doc := `<r><x><y/><w/></x><z/></r>`
	// Query (r.x[w].y | r.z): y@3 depends on w@4 (future), z@5 immediate.
	var order []int64
	net, err := Build(rpeq.MustParse("(r.x[w].y|r.z)"), Options{Mode: ModeNodes, Sink: func(r Result) {
		order = append(order, r.Index)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(xmlstream.NewScanner(strings.NewReader(doc))); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 3 || order[1] != 5 {
		t.Fatalf("order: %v, want [3 5]", order)
	}
}

// TestOutputRejectedReleasesBuffer: rejected candidates free their content
// immediately; the buffer high-water mark reflects that.
func TestOutputRejectedReleasesBuffer(t *testing.T) {
	// x[q].y with no q anywhere: all y candidates are rejected at </x>.
	var doc strings.Builder
	doc.WriteString("<r>")
	for i := 0; i < 50; i++ {
		doc.WriteString("<x><y><payload>data</payload></y></x>")
	}
	doc.WriteString("</r>")
	results, stats := runSerializeStats(t, "r.x[q].y", doc.String())
	if len(results) != 0 {
		t.Fatalf("results: %d, want 0", len(results))
	}
	if stats.Output.Dropped != 50 {
		t.Fatalf("dropped: %d, want 50", stats.Output.Dropped)
	}
	// Each candidate holds at most its own subtree (5 events) before its
	// rejection at </x>; buffers must not accumulate across candidates.
	if stats.Output.MaxBufferedEvs > 8 {
		t.Fatalf("buffered %d events; rejected candidates must release buffers", stats.Output.MaxBufferedEvs)
	}
}

// TestOutputSerializeNestedContent: nested answers receive their full
// (distinct) subtrees even while overlapping.
func TestOutputSerializeNestedContent(t *testing.T) {
	results, _ := runSerializeStats(t, "_*.a", `<a>1<a>2</a>3</a>`)
	if len(results) != 2 {
		t.Fatalf("results: %d", len(results))
	}
	if got := xmlstream.Serialize(results[0].Events); got != "<a>1<a>2</a>3</a>" {
		t.Fatalf("outer: %q", got)
	}
	if got := xmlstream.Serialize(results[1].Events); got != "<a>2</a>" {
		t.Fatalf("inner: %q", got)
	}
}

// TestOutputWholeDocumentResult: the ε query selects the document node; its
// serialization is the whole document.
func TestOutputWholeDocumentResult(t *testing.T) {
	results, _ := runSerializeStats(t, "%e", `<a><b>x</b></a>`)
	if len(results) != 1 || results[0].Index != 0 || results[0].Name != "$" {
		t.Fatalf("results: %+v", results)
	}
	if got := xmlstream.Serialize(results[0].Events); got != "<a><b>x</b></a>" {
		t.Fatalf("got %q", got)
	}
}

// TestStepErrors: unbalanced streams are rejected mid-flight.
func TestStepErrors(t *testing.T) {
	net, err := Build(rpeq.MustParse("a"), Options{Mode: ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Step(xmlstream.Event{Kind: xmlstream.StartDocument}); err != nil {
		t.Fatal(err)
	}
	if err := net.Step(xmlstream.End("a")); err == nil {
		t.Fatal("unbalanced end must fail")
	}
}

// TestFinishUnclosed: Finish rejects streams with open elements.
func TestFinishUnclosed(t *testing.T) {
	net, err := Build(rpeq.MustParse("a"), Options{Mode: ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	net.Step(xmlstream.Event{Kind: xmlstream.StartDocument})
	net.Step(xmlstream.Start("a"))
	if err := net.Finish(); err == nil {
		t.Fatal("Finish with open elements must fail")
	}
}

// TestDeepUnionOrderAndDedup: a union with overlapping branches yields each
// node once, in document order (the join's duplicate elimination, §III.7).
func TestDeepUnionOrderAndDedup(t *testing.T) {
	doc := `<a><b><c/></b><c/></a>`
	// Branch overlap: _*.c and a._.c both select c@3.
	var got []int64
	net, err := Build(rpeq.MustParse("(_*.c|a._.c)"), Options{Mode: ModeNodes, Sink: func(r Result) {
		got = append(got, r.Index)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(xmlstream.NewScanner(strings.NewReader(doc))); err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 4}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestTextPreservedInResults: character data flows through the network and
// into serialized answers untouched.
func TestTextPreservedInResults(t *testing.T) {
	results, _ := runSerializeStats(t, "a.b", `<a><b>x &amp; y</b></a>`)
	if len(results) != 1 {
		t.Fatalf("results: %d", len(results))
	}
	if got := xmlstream.Serialize(results[0].Events); got != "<b>x &amp; y</b>" {
		t.Fatalf("got %q", got)
	}
}
