package spexnet

import "repro/internal/cond"

// childT is the child transducer CH(l) of §III.3: it selects start messages
// with label l that are direct children of an activating document message.
//
// The paper specifies CH via a depth stack of {m, 1} marks and a condition
// stack of formulas pushed and popped in lockstep (Fig. 2). This
// implementation fuses the two stacks into one slice of per-open-node
// entries, exactly the fusion Theorem IV.2's proof describes: entry k holds
// the condition formula under which children of the k-th open node are to be
// matched, or nil when that level is not a match scope (the paper's 1 mark).
type childT struct {
	label labelTest
	cfg   *netConfig

	// pending accumulates activation formulas received since the last
	// document message; they arm the children of the next start message.
	// Consecutive activations (possible after a join) merge by
	// disjunction, which is what Fig. 2's activated2 transitions achieve
	// with a second condition-stack entry.
	pending *cond.Formula
	// scopes[k] is the match formula for children of the k-th open node
	// (nil when inactive). Bounded by the stream depth d.
	scopes []*cond.Formula

	st StackStats
}

func newChild(label string, cfg *netConfig) *childT {
	return &childT{label: cfg.compileLabelTest(label), cfg: cfg}
}

func (t *childT) name() string { return "CH(" + t.label.label + ")" }

func (t *childT) stackStats() StackStats {
	s := t.st
	s.Cur = len(t.scopes)
	return s
}

func (t *childT) feed(_ int, m *Message, emit emitFn) {
	switch m.Kind {
	case MsgActivation:
		t.pending = t.cfg.or(t.pending, m.Formula)
		t.st.noteFormula(t.pending)
	case MsgDet:
		emit(0, *m)
	case MsgDoc:
		ev := m.Ev
		switch {
		case isStart(ev):
			// Match: is the parent level an armed scope and the label right?
			if n := len(t.scopes); n > 0 {
				if f := t.scopes[n-1]; f != nil && t.label.matches(ev) {
					emit(0, actMsg(f))
				}
			}
			// Arm the children of this node if an activation preceded it.
			t.scopes = append(t.scopes, t.pending)
			t.pending = nil
			t.st.noteStack(len(t.scopes))
			emit(0, *m)
		case isEnd(ev):
			t.pending = nil
			if n := len(t.scopes); n > 0 {
				t.scopes = t.scopes[:n-1]
			}
			emit(0, *m)
		default: // text
			emit(0, *m)
		}
	}
}
