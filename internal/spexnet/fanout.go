package spexnet

// fanoutT is the fan-out junction FO: an explicit k-way multicast inserted
// where the output tape of a shared subexpression feeds several downstream
// consumers. It generalizes the binary split SP of §III.6 to k output ports
// but, unlike SP, it is never written by the translation C itself: the
// builder materializes one FO per multi-reader tape after hash-consing has
// identified the common subparts of a multi-query network (the "single
// transducer network ... for processing several queries having common
// subparts" of the paper's conclusion). Making the junction an explicit
// transducer gives the shared chain a single reader per tape and a node of
// its own in traces, metrics and TransducerStats, so the fan-out work of an
// SDI workload is attributable instead of hidden in tape multicast.
type fanoutT struct {
	ports int
	st    StackStats
}

func newFanout(ports int) *fanoutT { return &fanoutT{ports: ports} }

func (t *fanoutT) name() string { return "FO" }

func (t *fanoutT) stackStats() StackStats { return t.st }

func (t *fanoutT) feed(_ int, m *Message, emit emitFn) {
	for p := 0; p < t.ports; p++ {
		emit(p, *m)
	}
}

// portRef identifies one input port of one node.
type portRef struct {
	node int
	port int
}

// insertFanouts rewires every tape read by more than one input port through
// an explicit fan-out junction: the junction becomes the tape's only reader
// and each former reader gets a private output tape of the junction. Called
// once per BuildSet, after all queries have compiled; single-query networks
// have no multi-reader tapes and come through untouched.
//
// The junctions are appended to the node list and therefore out of
// topological order (a junction must run before its readers); reorderNodes
// repairs the order afterwards.
func (b *builder) insertFanouts() {
	orig := len(b.net.nodes)
	readers := make(map[int][]portRef)
	for i := 0; i < orig; i++ {
		for port, tape := range b.net.nodes[i].ins {
			readers[tape] = append(readers[tape], portRef{node: i, port: port})
		}
	}
	// fanoutsAt[i] lists the junction nodes that must run just before
	// original node i (its earliest reader in the old order).
	fanoutsAt := make(map[int][]int)
	for tape := 0; tape < len(b.net.edges); tape++ {
		refs := readers[tape]
		if len(refs) < 2 {
			continue
		}
		outs := b.addNode(newFanout(len(refs)), []int{tape}, len(refs))
		earliest := refs[0].node
		for i, ref := range refs {
			b.net.nodes[ref.node].ins[ref.port] = outs[i]
			if ref.node < earliest {
				earliest = ref.node
			}
		}
		fanoutsAt[earliest] = append(fanoutsAt[earliest], len(b.net.nodes)-1)
	}
	if len(fanoutsAt) > 0 {
		b.reorderNodes(orig, fanoutsAt)
	}
}

// reorderNodes rebuilds the node list in topological order after fan-out
// insertion: each junction is placed immediately before the earliest of its
// readers. This is sufficient — a junction's only dependency is the producer
// of its input tape, which preceded that earliest reader in the original
// (topological) order; every other node keeps its relative position.
func (b *builder) reorderNodes(orig int, fanoutsAt map[int][]int) {
	nodes := make([]netNode, 0, len(b.net.nodes))
	for i := 0; i < orig; i++ {
		for _, f := range fanoutsAt[i] {
			nodes = append(nodes, b.net.nodes[f])
		}
		nodes = append(nodes, b.net.nodes[i])
	}
	b.net.nodes = nodes
}

// Fanouts returns the number of fan-out junctions in the network: the
// sharing points where one compiled subexpression feeds several queries. A
// single-query network reports zero.
func (n *Network) Fanouts() int {
	c := 0
	for i := range n.nodes {
		if _, ok := n.nodes[i].t.(*fanoutT); ok {
			c++
		}
	}
	return c
}
