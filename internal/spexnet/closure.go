package spexnet

import "repro/internal/cond"

// closureT is the closure transducer CL(l) of §III.4, implementing the
// positive closure l+: starting from the children of the activating
// document message, it selects chains of l-labeled elements — an l child, an
// l child of an l match, and so on. A non-matching element suspends the
// scope for its subtree (the paper's e mark, Fig. 3 transition 8) and the
// scope resumes when that element closes (transition 4).
//
// Scopes nest: an activation received while matching opens a nested scope
// whose formula is the disjunction of the received and the enclosing
// formulas (Fig. 3 transition 12), normalized so each condition variable
// occurs at most once.
type closureT struct {
	label labelTest
	cfg   *netConfig

	pending *cond.Formula
	// scopes[k] is the formula under which l-labeled children of the k-th
	// open node match (nil = not in scope, the paper's 1/e marks).
	scopes []*cond.Formula

	st StackStats
}

func newClosure(label string, cfg *netConfig) *closureT {
	return &closureT{label: cfg.compileLabelTest(label), cfg: cfg}
}

func (t *closureT) name() string { return "CL(" + t.label.label + ")" }

func (t *closureT) stackStats() StackStats {
	s := t.st
	s.Cur = len(t.scopes)
	return s
}

func (t *closureT) feed(_ int, m *Message, emit emitFn) {
	switch m.Kind {
	case MsgActivation:
		t.pending = t.cfg.or(t.pending, m.Formula)
		t.st.noteFormula(t.pending)
	case MsgDet:
		emit(0, *m)
	case MsgDoc:
		ev := m.Ev
		switch {
		case isStart(ev):
			var parent *cond.Formula
			if n := len(t.scopes); n > 0 {
				parent = t.scopes[n-1]
			}
			matched := parent != nil && t.label.matches(ev)
			if matched {
				emit(0, actMsg(parent))
			}
			// The scope continues below this node only along l-chains
			// (matched), and a pending activation opens a (possibly
			// nested) scope over this node's subtree.
			var child *cond.Formula
			if matched {
				child = parent
			}
			if t.pending != nil {
				child = t.cfg.or(child, t.pending)
				t.pending = nil
			}
			t.st.noteFormula(child)
			t.scopes = append(t.scopes, child)
			t.st.noteStack(len(t.scopes))
			emit(0, *m)
		case isEnd(ev):
			t.pending = nil
			if n := len(t.scopes); n > 0 {
				t.scopes = t.scopes[:n-1]
			}
			emit(0, *m)
		default:
			emit(0, *m)
		}
	}
}
