package spexnet

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// The stream of Fig. 1 has these steps:
//
//	1:<$> 2:<a> 3:<a> 4:<c> 5:</c> 6:</a> 7:<b> 8:</b> 9:<c> 10:</c> 11:</a> 12:</$>
//
// The trace tests reproduce the observable behaviour the paper walks
// through in Examples III.1 (Fig. 4), III.2 (Fig. 5) and §III.10 (Fig. 13):
// which transducer emits which activation/determination at which step, and
// when candidates are proposed, dropped and output.

type traceRec struct {
	step int64
	node string
	msg  string
}

// runTraced evaluates expr over the Fig. 1 document, returning all traced
// emissions and the answers (with the step at which each was delivered).
func runTraced(t *testing.T, expr string) (recs []traceRec, results []traceRec) {
	t.Helper()
	node := rpeq.MustParse(expr)
	var net *Network
	var err error
	net, err = Build(node, Options{
		Mode: ModeNodes,
		Sink: func(r Result) {
			results = append(results, traceRec{step: -1, node: r.Name, msg: fmt.Sprintf("%s@%d", r.Name, r.Index)})
		},
		Tracer: obs.TracerFunc(func(ev obs.TraceEvent) {
			recs = append(recs, traceRec{step: ev.Step, node: ev.Node, msg: ev.Msg})
			// Results recorded during this step get stamped below.
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stamp result steps by running event-by-event.
	src := xmlstream.NewScanner(strings.NewReader(`<a><a><c/></a><b/><c/></a>`))
	var step int64
	for {
		ev, err := src.Next()
		if err != nil {
			break
		}
		step++
		before := len(results)
		if err := net.Step(ev); err != nil {
			t.Fatal(err)
		}
		for i := before; i < len(results); i++ {
			results[i].step = step
		}
	}
	if err := net.Finish(); err != nil {
		t.Fatal(err)
	}
	return recs, results
}

// activationsOf filters the trace to activation emissions of one transducer.
func activationsOf(recs []traceRec, node string) []traceRec {
	var out []traceRec
	for _, r := range recs {
		if r.node == node && strings.HasPrefix(r.msg, "[") {
			out = append(out, r)
		}
	}
	return out
}

func detsOf(recs []traceRec, node string) []traceRec {
	var out []traceRec
	for _, r := range recs {
		if r.node == node && strings.HasPrefix(r.msg, "{") {
			out = append(out, r)
		}
	}
	return out
}

func steps(recs []traceRec) []int64 {
	var out []int64
	for _, r := range recs {
		out = append(out, r.step)
	}
	return out
}

func eqSteps(a []int64, b ...int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFigure4ChildTrace reproduces Example III.1: for a.c, T1 = CH(a)
// matches the outer <a> at step 2 (transition 7 of Fig. 4), and T2 = CH(c)
// matches only the second <c>, at step 9 — not the inner <c> at step 4,
// which is at the wrong depth.
func TestFigure4ChildTrace(t *testing.T) {
	recs, results := runTraced(t, "a.c")
	t1 := activationsOf(recs, "CH(a)")
	if !eqSteps(steps(t1), 2) {
		t.Errorf("CH(a) activations at steps %v, want [2]", steps(t1))
	}
	t2 := activationsOf(recs, "CH(c)")
	if !eqSteps(steps(t2), 9) {
		t.Errorf("CH(c) activations at steps %v, want [9]", steps(t2))
	}
	if len(results) != 1 || results[0].msg != "c@5" || results[0].step != 9 {
		t.Errorf("results: %+v, want c@5 delivered at step 9", results)
	}
	// All activations carry the constant-true formula (no qualifiers).
	for _, r := range append(t1, t2...) {
		if r.msg != "[true]" {
			t.Errorf("activation %q should be [true]", r.msg)
		}
	}
}

// TestFigure5ClosureTrace reproduces Example III.2: for a+.c+, T1 = CL(a)
// matches both <a> messages (steps 2, 3; transitions 7 of Fig. 5) and
// T2 = CL(c) matches both <c> messages (steps 4 and 9), the first one due
// to the nested match scope.
func TestFigure5ClosureTrace(t *testing.T) {
	recs, results := runTraced(t, "a+.c+")
	t1 := activationsOf(recs, "CL(a)")
	if !eqSteps(steps(t1), 2, 3) {
		t.Errorf("CL(a) activations at steps %v, want [2 3]", steps(t1))
	}
	t2 := activationsOf(recs, "CL(c)")
	if !eqSteps(steps(t2), 4, 9) {
		t.Errorf("CL(c) activations at steps %v, want [4 9]", steps(t2))
	}
	if len(results) != 2 || results[0].msg != "c@3" || results[1].msg != "c@5" {
		t.Errorf("results: %+v", results)
	}
	// Progressive delivery: each c is delivered at its own start step.
	if results[0].step != 4 || results[1].step != 9 {
		t.Errorf("delivery steps: %d, %d; want 4, 9", results[0].step, results[1].step)
	}
}

// TestFigure13QualifierTrace reproduces §III.10 for _*.a[b].c: the
// variable-creator instantiates co1 (outer <a>, step 2) and co2 (inner <a>,
// step 3); candidate1 = <c@3> (step 4) depends on co2; co2 is invalidated
// when the inner scope closes (step 6, {co2,false}) and candidate1 is
// discarded; <b> satisfies co1 (step 7, {co1,true}); candidate2 = <c@5>
// (step 9) is output directly since its formula is already determined.
func TestFigure13QualifierTrace(t *testing.T) {
	recs, results := runTraced(t, "_*.a[b].c")

	vc := activationsOf(recs, "VC(q)")
	if !eqSteps(steps(vc), 2, 3) {
		t.Fatalf("VC activations at steps %v, want [2 3]", steps(vc))
	}
	// Steps 2 and 3 create the two qualifier instances (co1 = v0,
	// co2 = v1 in allocation order).
	if vc[0].msg != "[v0]" || vc[1].msg != "[v1]" {
		t.Errorf("VC formulas: %q, %q; want [v0], [v1]", vc[0].msg, vc[1].msg)
	}

	// Scope-exit invalidations from VC: inner instance at step 6, outer
	// at step 11 (Fig. 13 shows VC transition 4 at both </a> steps).
	vcDets := detsOf(recs, "VC(q)")
	if !eqSteps(steps(vcDets), 6, 11) {
		t.Errorf("VC determinations at steps %v, want [6 11]", steps(vcDets))
	}
	if vcDets[0].msg != "{v1,close}" {
		t.Errorf("step-6 determination: %q, want {v1,close}", vcDets[0].msg)
	}

	// The witness for co1 is produced by VD when <b> arrives. (VD also
	// forwards the close messages originated by VC; exclude those.)
	var vd []traceRec
	for _, r := range detsOf(recs, "VD") {
		if !strings.Contains(r.msg, ",close}") {
			vd = append(vd, r)
		}
	}
	if !eqSteps(steps(vd), 7) || vd[0].msg != "{v0,true}" {
		t.Errorf("VD determinations: %+v, want {v0,true} at step 7", vd)
	}

	// candidate1 (c@3) is silently discarded; candidate2 (c@5) is output
	// directly at its start step since co1 is already true by then.
	if len(results) != 1 || results[0].msg != "c@5" || results[0].step != 9 {
		t.Errorf("results: %+v, want only c@5 at step 9", results)
	}
}

// TestCompleteExampleResults pins the end-to-end answer of §III.10.
func TestCompleteExampleResults(t *testing.T) {
	expect(t, "_*.a[b].c", paperDoc, "c@5")
}

// TestFigure13CandidateAccounting checks the candidate bookkeeping: two
// candidates are proposed and one is dropped.
func TestFigure13CandidateAccounting(t *testing.T) {
	node := rpeq.MustParse("_*.a[b].c")
	net, err := Build(node, Options{Mode: ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(xmlstream.NewScanner(strings.NewReader(`<a><a><c/></a><b/><c/></a>`)))
	if err != nil {
		t.Fatal(err)
	}
	out := stats.Output
	if out.Candidates != 2 || out.Dropped != 1 || out.Matches != 1 {
		t.Fatalf("candidates=%d dropped=%d matches=%d; want 2,1,1",
			out.Candidates, out.Dropped, out.Matches)
	}
}
