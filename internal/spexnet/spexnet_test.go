package spexnet

import (
	"strings"
	"testing"

	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// paperDoc is the document of Fig. 1, whose stream is
// <$> <a> <a> <c> </c> </a> <b> </b> <c> </c> </a> </$>.
const paperDoc = `<a><a><c/></a><b/><c/></a>`

// evalNodes runs expr over doc and returns the selected nodes as
// "index:name" strings in document order.
func evalNodes(t *testing.T, expr, doc string) []string {
	t.Helper()
	node, err := rpeq.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	var got []string
	net, err := Build(node, Options{Mode: ModeNodes, Sink: func(r Result) {
		got = append(got, r.Name+"@"+itoa(r.Index))
	}})
	if err != nil {
		t.Fatalf("build %q: %v", expr, err)
	}
	if _, err := net.Run(xmlstream.NewScanner(strings.NewReader(doc))); err != nil {
		t.Fatalf("run %q: %v", expr, err)
	}
	return got
}

func itoa(i int64) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func expect(t *testing.T, expr, doc string, want ...string) {
	t.Helper()
	got := evalNodes(t, expr, doc)
	if len(got) != len(want) {
		t.Fatalf("%s over %s: got %v, want %v", expr, doc, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s over %s: got %v, want %v", expr, doc, got, want)
		}
	}
}

// Document-order indices for paperDoc: a@1, a@2, c@3, b@4, c@5.

func TestChildSteps(t *testing.T) {
	// Example III.1: a.c selects the c child of the root's a child.
	expect(t, "a.c", paperDoc, "c@5")
	expect(t, "a", paperDoc, "a@1")
	expect(t, "a.a", paperDoc, "a@2")
	expect(t, "a.b", paperDoc, "b@4")
	expect(t, "a.a.c", paperDoc, "c@3")
	expect(t, "c", paperDoc) // no c at root level
}

func TestWildcardStep(t *testing.T) {
	expect(t, "_", paperDoc, "a@1")
	expect(t, "a._", paperDoc, "a@2", "b@4", "c@5")
}

func TestClosure(t *testing.T) {
	// Example III.2: a+.c+ selects both c elements.
	expect(t, "a+.c+", paperDoc, "c@3", "c@5")
	expect(t, "a+", paperDoc, "a@1", "a@2")
	// c+ from the root: no c chain starts at the root's children.
	expect(t, "c+", paperDoc)
	// _+ selects every element.
	expect(t, "_+", paperDoc, "a@1", "a@2", "c@3", "b@4", "c@5")
}

func TestClosureChainSemantics(t *testing.T) {
	// l+ means chains of l steps, not arbitrary descendants: the scope
	// closes under a non-matching element (Fig. 3 transition 8).
	doc := `<a><x><a/></x><a><a/></a></a>`
	// Indices: a@1 x@2 a@3 a@4 a@5.
	expect(t, "a+", doc, "a@1", "a@4", "a@5")
	expect(t, "_*.a", doc, "a@1", "a@3", "a@4", "a@5")
}

func TestStarAndOptional(t *testing.T) {
	expect(t, "_*.c", paperDoc, "c@3", "c@5")
	expect(t, "a*.c", paperDoc, "c@3", "c@5")
	expect(t, "a?.a", paperDoc, "a@1", "a@2")
	expect(t, "a.a?.c", paperDoc, "c@3", "c@5")
}

func TestUnion(t *testing.T) {
	expect(t, "a.(b|c)", paperDoc, "b@4", "c@5")
	expect(t, "(a|b).c", paperDoc, "c@5")
	expect(t, "a.(a|b|c)", paperDoc, "a@2", "b@4", "c@5")
}

func TestQualifier(t *testing.T) {
	// The complete example of §III.10: _*.a[b].c selects only the c
	// child of the outer a (which has a b child); the inner a has none.
	expect(t, "_*.a[b].c", paperDoc, "c@5")
	expect(t, "_*.a[c].c", paperDoc, "c@3", "c@5")
	expect(t, "a[b]", paperDoc, "a@1")
	expect(t, "a[x]", paperDoc)
	expect(t, "a[a.c].b", paperDoc, "b@4")
}

func TestQualifierPastAndFutureConditions(t *testing.T) {
	// Future condition: the qualifier element appears after the
	// candidate (class 2 of §VI).
	expect(t, "a[b].a", paperDoc, "a@2")
	// Past condition: the qualifier element appears before the
	// candidate (class 4 of §VI).
	expect(t, "a[a].c", paperDoc, "c@5")
}

func TestNestedQualifiers(t *testing.T) {
	// a[a[c]] : an a child having an a child having a c child.
	expect(t, "a[a[c]]", paperDoc, "a@1")
	expect(t, "a[a[b]]", paperDoc)
	expect(t, "a[a[c]].b", paperDoc, "b@4")
	expect(t, "_*.a[_*.c]", paperDoc, "a@1", "a@2")
}

func TestEpsilonAndRoot(t *testing.T) {
	// ε selects the document root itself.
	expect(t, "%e", paperDoc, "$@0")
	expect(t, "%e.a", paperDoc, "a@1")
	expect(t, "(a|%e)", paperDoc, "$@0", "a@1")
}

func TestDegreeLinear(t *testing.T) {
	// Lemma V.1: network degree is linear in the expression size.
	expr := "a"
	prev := 0
	for i := 0; i < 6; i++ {
		node := rpeq.MustParse(expr)
		net, err := Build(node, Options{})
		if err != nil {
			t.Fatal(err)
		}
		deg := net.Degree()
		if deg <= prev {
			t.Fatalf("degree did not grow: %d after %d", deg, prev)
		}
		if deg > 8*node.Size()+4 {
			t.Fatalf("degree %d superlinear in size %d", deg, node.Size())
		}
		prev = deg
		expr += ".a[b]"
	}
}
