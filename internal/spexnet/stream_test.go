package spexnet

import (
	"strings"
	"testing"

	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// runStream evaluates expr over doc in ModeStream, reassembling each
// answer's serialization, and returns the answers plus the stats.
func runStream(t *testing.T, expr, doc string) ([]string, Stats) {
	t.Helper()
	var results []string
	var current strings.Builder
	sink := NewStreamSink(
		func(int64, string) { current.Reset() },
		func(ev xmlstream.Event) {
			switch ev.Kind {
			case xmlstream.StartElement:
				current.WriteString("<" + ev.Name + ">")
			case xmlstream.EndElement:
				current.WriteString("</" + ev.Name + ">")
			case xmlstream.Text:
				current.WriteString(ev.Data)
			}
		},
		func(int64) { results = append(results, current.String()) },
	)
	net, err := Build(rpeq.MustParse(expr), Options{Mode: ModeStream, StreamSink: sink})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(xmlstream.NewScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatal(err)
	}
	return results, stats
}

// runSerialize is the ModeSerialize reference.
func runSerialize(t *testing.T, expr, doc string) []string {
	t.Helper()
	var results []string
	net, err := Build(rpeq.MustParse(expr), Options{Mode: ModeSerialize, Sink: func(r Result) {
		results = append(results, xmlstream.Serialize(r.Events))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(xmlstream.NewScanner(strings.NewReader(doc))); err != nil {
		t.Fatal(err)
	}
	return results
}

// TestStreamModeMatchesSerialize: the streaming sink reassembles exactly
// what serialize mode reports, on nested, qualified and unioned queries.
func TestStreamModeMatchesSerialize(t *testing.T) {
	docs := []string{
		`<a><a><c>x</c></a><b/><c>y</c></a>`,
		`<a><b>one</b><b>two</b></a>`,
		`<r><a><a><a/></a></a></r>`,
	}
	queries := []string{"_+", "_*.c", "_*.a[b].c", "a.(b|c)", "a[b].b", "%e"}
	for _, doc := range docs {
		for _, q := range queries {
			want := runSerialize(t, q, doc)
			got, _ := runStream(t, q, doc)
			if len(got) != len(want) {
				t.Fatalf("%s over %s: stream %v vs serialize %v", q, doc, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s over %s:\n stream    %q\n serialize %q", q, doc, got[i], want[i])
				}
			}
		}
	}
}

// TestStreamModeNoHeadBuffering: an immediately-accepted head answer
// streams with zero buffered events even when the answer spans the whole
// document — the abstract's "result fragments are output on the fly".
func TestStreamModeNoHeadBuffering(t *testing.T) {
	// One huge top-level answer: query selects the root element.
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 5000; i++ {
		sb.WriteString("<item>v</item>")
	}
	sb.WriteString("</root>")

	_, stats := runStream(t, "root", sb.String())
	// Only the answer's own start tag is held for the one step before the
	// candidate is promoted to streaming.
	if stats.Output.MaxBufferedEvs > 1 {
		t.Fatalf("streaming head buffered %d events", stats.Output.MaxBufferedEvs)
	}

	// Serialize mode must buffer the whole subtree by construction.
	net, err := Build(rpeq.MustParse("root"), Options{Mode: ModeSerialize, Sink: func(Result) {}})
	if err != nil {
		t.Fatal(err)
	}
	sstats, err := net.Run(xmlstream.NewScanner(strings.NewReader(sb.String())))
	if err != nil {
		t.Fatal(err)
	}
	if sstats.Output.MaxBufferedEvs < 10000 {
		t.Fatalf("serialize mode should buffer the subtree, got %d", sstats.Output.MaxBufferedEvs)
	}
}

// TestStreamModeNestedBuffersOnlyInner: with nested answers, only the inner
// ones buffer (until the outer finishes); the outer streams.
func TestStreamModeNestedBuffersOnlyInner(t *testing.T) {
	doc := `<a><b><c/></b><b><c/></b></a>`
	got, stats := runStream(t, "_+", doc)
	want := []string{
		"<a><b><c></c></b><b><c></c></b></a>",
		"<b><c></c></b>", "<c></c>",
		"<b><c></c></b>", "<c></c>",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d: got %q, want %q", i, got[i], want[i])
		}
	}
	// The outer <a> answer (10 events) streams; inner answers buffer.
	// Inner buffering is bounded by the nested answers' sizes, well
	// below the outer answer's 10 events plus all inner copies (18).
	if stats.Output.MaxBufferedEvs >= 18 {
		t.Fatalf("expected the outer answer to stream, buffered %d events", stats.Output.MaxBufferedEvs)
	}
}

func TestStreamModeRequiresSink(t *testing.T) {
	if _, err := Build(rpeq.MustParse("a"), Options{Mode: ModeStream}); err == nil {
		t.Fatal("ModeStream without a StreamSink must fail to build")
	}
}

// TestBuildSetMultipleSinks: one network, several queries, per-sink counts.
func TestBuildSetMultipleSinks(t *testing.T) {
	var aHits, cHits []int64
	specs := []Spec{
		{Expr: rpeq.MustParse("_*.a"), Mode: ModeNodes, Sink: func(r Result) { aHits = append(aHits, r.Index) }},
		{Expr: rpeq.MustParse("_*.c"), Mode: ModeNodes, Sink: func(r Result) { cHits = append(cHits, r.Index) }},
	}
	net, err := BuildSet(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(xmlstream.NewScanner(strings.NewReader(paperDoc))); err != nil {
		t.Fatal(err)
	}
	if len(aHits) != 2 || aHits[0] != 1 || aHits[1] != 2 {
		t.Fatalf("a hits: %v", aHits)
	}
	if len(cHits) != 2 || cHits[0] != 3 || cHits[1] != 5 {
		t.Fatalf("c hits: %v", cHits)
	}
	ss := net.SinkStats()
	if len(ss) != 2 || ss[0].Matches != 2 || ss[1].Matches != 2 {
		t.Fatalf("SinkStats: %+v", ss)
	}
	if net.Matches() != 4 {
		t.Fatalf("Matches: %d", net.Matches())
	}
}

// TestBuildSetSharing: identical queries share the whole network except the
// sinks.
func TestBuildSetSharing(t *testing.T) {
	expr := rpeq.MustParse("_*.a[b].c")
	single, err := Build(expr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	double, err := BuildSet([]Spec{{Expr: expr}, {Expr: rpeq.MustParse("_*.a[b].c")}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The second query adds exactly its own sink plus the explicit fan-out
	// junction feeding both sinks from the shared final tape.
	if double.Degree() != single.Degree()+2 {
		t.Fatalf("identical queries should share all transducers but the sink and fan-out: %d vs %d",
			double.Degree(), single.Degree())
	}
	if double.Fanouts() != 1 {
		t.Fatalf("identical queries should meet at one fan-out junction, got %d", double.Fanouts())
	}
}

// TestBuildSetEmpty rejects an empty query set.
func TestBuildSetEmpty(t *testing.T) {
	if _, err := BuildSet(nil, Options{}); err == nil {
		t.Fatal("empty set must fail")
	}
}
