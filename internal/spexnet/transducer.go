package spexnet

import (
	"repro/internal/cond"
	"repro/internal/obs"
	"repro/internal/xmlstream"
)

// emitFn delivers a message to one output port of a transducer. All
// transducers have a single output port (port 0) except the split
// transducer, which also writes port 1.
type emitFn func(port int, m Message)

// transducer is one node of a SPEX network. feed processes a single message
// arriving on the given input port (always 0 except for the join
// transducer) and emits resulting messages in order. The runner guarantees
// the paper's discipline: exactly one document message is in flight at a
// time, and all messages belonging to that step are delivered before the
// next step begins.
//
// The message is passed by pointer into the runner's tape storage and is
// valid only for the duration of the call: implementations forward it as
// emit(port, *m) and must copy (*m) if they buffer it across calls. Passing
// a pointer halves the per-hop copy traffic of the ~100-byte Message — with
// every transducer forwarding every document message, the copies are a
// measurable share of the per-event cost Lemma V.2 bounds.
type transducer interface {
	feed(input int, m *Message, emit emitFn)
	name() string
	// stackStats returns the current and maximum depth-stack size and the
	// maximum condition-formula size handled, for the §V experiments.
	stackStats() StackStats
}

// StackStats reports per-transducer resource usage.
type StackStats struct {
	Cur        int // current depth/condition stack entries
	MaxStack   int // maximum depth/condition stack entries
	MaxFormula int // maximum formula size σ seen
}

func (s *StackStats) noteStack(n int) {
	if n > s.MaxStack {
		s.MaxStack = n
	}
}

func (s *StackStats) noteFormula(f *cond.Formula) {
	if f != nil && f.Size() > s.MaxFormula {
		s.MaxFormula = f.Size()
	}
}

// or combines activation formulas, honouring the network's normalization
// setting (the Remark V.1 ablation).
func (n *netConfig) or(a, b *cond.Formula) *cond.Formula {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	var f *cond.Formula
	if n.rawFormulas {
		f = cond.RawOr(a, b)
	} else {
		f = cond.Or(a, b)
	}
	if n.gov != nil {
		n.checkFormula(f)
	}
	return f
}

// and combines formulas by conjunction under the same setting.
func (n *netConfig) and(a, b *cond.Formula) *cond.Formula {
	var f *cond.Formula
	if n.rawFormulas {
		f = cond.RawAnd(a, b)
	} else {
		f = cond.And(a, b)
	}
	if n.gov != nil {
		n.checkFormula(f)
	}
	return f
}

// netConfig carries evaluation-time options shared by all transducers of a
// network instance.
type netConfig struct {
	rawFormulas bool // disable duplicate elimination (ablation)
	// retainVars disables condition-variable retirement and id reuse.
	// The core constructs guarantee that nothing mentions a variable
	// after its scope-exit finalization, which lets the sink drop
	// resolution records and the pool recycle ids (bounded memory on
	// unbounded streams). The following/preceding extension breaks that
	// guarantee — a following-scope formula outlives the qualifier scopes
	// it mentions — so networks containing those axes retain records for
	// the whole evaluation.
	retainVars bool
	// symtab is the network's symbol table: label tests are compiled into
	// symbols of this table, and Step resolves events arriving with a zero
	// Sym against it. Always non-nil unless noInterning is set.
	symtab *xmlstream.Symtab
	// noInterning restores the string-matching pipeline of the original
	// engine (the interning ablation's baseline): labels compare as strings
	// and the count-mode output fast path is disabled.
	noInterning bool
	// gov is the resource-governor runtime; nil when no caps are
	// configured, which is the zero-overhead default (every hook is a
	// single pointer test).
	gov *govern
	// detSinks counts the network's sinks whose answer has become fixed
	// (answer limit reached). The config is shared by every sink of the
	// network, so this is the determination signal the network polls:
	// detSinks == len(outs) means nothing in the stream's suffix can
	// change the reported answers.
	detSinks int
	// sinkMetrics receives the candidate-lifecycle histograms (decision
	// latency, candidate lifetime, stream latency) from every sink of the
	// network. Candidate events are per-sink — not per-event-per-network —
	// so one registry can serve many member networks of a multi-query
	// engine without multiplying counts. Nil disables the histograms
	// (a single pointer test per candidate transition).
	sinkMetrics *obs.Metrics
	// traceID is the stream-scoped trace identifier stamped on every
	// obs.TraceEvent the network's tracer observes; empty when unset.
	traceID string
}

// isStart reports whether the event opens a tree node (element or document
// root).
func isStart(ev xmlstream.Event) bool {
	return ev.Kind == xmlstream.StartElement || ev.Kind == xmlstream.StartDocument
}

// isEnd reports whether the event closes a tree node.
func isEnd(ev xmlstream.Event) bool {
	return ev.Kind == xmlstream.EndElement || ev.Kind == xmlstream.EndDocument
}

// labelTest is a compiled label guard: the per-event test every CH, CL, FO
// and PR transducer runs. The wildcard is decided at build time; a concrete
// label compiles to the symbol it interns to in the network's table, so the
// steady-state test is one integer comparison. sym stays zero only under the
// noInterning ablation, which falls back to the original string comparison.
type labelTest struct {
	label string
	sym   xmlstream.Sym
	wild  bool
}

// compileLabelTest interns the label against the network's symbol table.
func (n *netConfig) compileLabelTest(label string) labelTest {
	t := labelTest{label: label, wild: label == "_"}
	if !t.wild && n.symtab != nil && !n.noInterning {
		t.sym = n.symtab.Intern(label)
	}
	return t
}

// matches reports whether a start event is an element matching the test (the
// wildcard matches every element, but never the document root <$>). Events
// reaching a transducer are already resolved against the network's table
// (Network.Step), so the symbol comparison is exact.
func (t labelTest) matches(ev xmlstream.Event) bool {
	if ev.Kind != xmlstream.StartElement {
		return false
	}
	if t.wild {
		return true
	}
	if t.sym != 0 {
		return ev.Sym == t.sym
	}
	return t.label == ev.Name
}
