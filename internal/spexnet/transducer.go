package spexnet

import (
	"repro/internal/cond"
	"repro/internal/xmlstream"
)

// emitFn delivers a message to one output port of a transducer. All
// transducers have a single output port (port 0) except the split
// transducer, which also writes port 1.
type emitFn func(port int, m Message)

// transducer is one node of a SPEX network. feed processes a single message
// arriving on the given input port (always 0 except for the join
// transducer) and emits resulting messages in order. The runner guarantees
// the paper's discipline: exactly one document message is in flight at a
// time, and all messages belonging to that step are delivered before the
// next step begins.
type transducer interface {
	feed(input int, m Message, emit emitFn)
	name() string
	// stackStats returns the current and maximum depth-stack size and the
	// maximum condition-formula size handled, for the §V experiments.
	stackStats() StackStats
}

// StackStats reports per-transducer resource usage.
type StackStats struct {
	Cur        int // current depth/condition stack entries
	MaxStack   int // maximum depth/condition stack entries
	MaxFormula int // maximum formula size σ seen
}

func (s *StackStats) noteStack(n int) {
	if n > s.MaxStack {
		s.MaxStack = n
	}
}

func (s *StackStats) noteFormula(f *cond.Formula) {
	if f != nil && f.Size() > s.MaxFormula {
		s.MaxFormula = f.Size()
	}
}

// or combines activation formulas, honouring the network's normalization
// setting (the Remark V.1 ablation).
func (n *netConfig) or(a, b *cond.Formula) *cond.Formula {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if n.rawFormulas {
		return cond.RawOr(a, b)
	}
	return cond.Or(a, b)
}

// and combines formulas by conjunction under the same setting.
func (n *netConfig) and(a, b *cond.Formula) *cond.Formula {
	if n.rawFormulas {
		return cond.RawAnd(a, b)
	}
	return cond.And(a, b)
}

// netConfig carries evaluation-time options shared by all transducers of a
// network instance.
type netConfig struct {
	rawFormulas bool // disable duplicate elimination (ablation)
	// retainVars disables condition-variable retirement and id reuse.
	// The core constructs guarantee that nothing mentions a variable
	// after its scope-exit finalization, which lets the sink drop
	// resolution records and the pool recycle ids (bounded memory on
	// unbounded streams). The following/preceding extension breaks that
	// guarantee — a following-scope formula outlives the qualifier scopes
	// it mentions — so networks containing those axes retain records for
	// the whole evaluation.
	retainVars bool
}

// isStart reports whether the event opens a tree node (element or document
// root).
func isStart(ev xmlstream.Event) bool {
	return ev.Kind == xmlstream.StartElement || ev.Kind == xmlstream.StartDocument
}

// isEnd reports whether the event closes a tree node.
func isEnd(ev xmlstream.Event) bool {
	return ev.Kind == xmlstream.EndElement || ev.Kind == xmlstream.EndDocument
}

// labelMatches reports whether a start event is an element matching the
// given label (the wildcard "_" matches every element, but never the
// document root <$>).
func labelMatches(label string, ev xmlstream.Event) bool {
	if ev.Kind != xmlstream.StartElement {
		return false
	}
	return label == "_" || label == ev.Name
}
