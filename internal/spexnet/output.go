package spexnet

import (
	"fmt"
	"time"

	"repro/internal/cond"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/xmlstream"
)

// ResultMode selects what the output transducer reports for each query
// answer.
type ResultMode uint8

const (
	// ModeCount only counts answers; nothing is buffered beyond
	// undetermined candidates' formulas. This is the cheapest mode and
	// the one the large-stream benchmarks use.
	ModeCount ResultMode = iota
	// ModeNodes reports each answer's document-order index and label, in
	// document order.
	ModeNodes
	// ModeSerialize reports each answer with its full subtree content,
	// in document order, buffering a candidate's content only while an
	// earlier candidate is undecided or unfinished (§III.8: the output
	// transducer "buffers messages only if their membership in the
	// result can not be decided based on the stream fragment already
	// processed" — or, for content, while document order demands it).
	ModeSerialize
	// ModeStream delivers answer content through a StreamSink event by
	// event: the head answer, once accepted, streams directly with no
	// buffering at all — results are "output on the fly" (abstract).
	ModeStream
)

// Result is one query answer.
type Result struct {
	// Index is the document-order number of the answer node: the
	// document root <$> has index 0, elements are numbered from 1 in
	// order of their start messages.
	Index int64
	// Name is the element label ("$" for the document root).
	Name string
	// Events holds the answer's subtree (ModeSerialize only).
	Events []xmlstream.Event
}

// Sink receives query answers in document order.
type Sink func(Result)

// OutputStats reports the resources the output transducer used: the
// §III.8/Lemma V.2(5) quantities.
type OutputStats struct {
	Matches        int64 // answers reported
	Candidates     int64 // candidates created (answers + dropped)
	Dropped        int64 // candidates whose condition became false
	MaxQueued      int   // max simultaneously queued candidates
	MaxBufferedEvs int   // max simultaneously buffered content events
	// Degraded is set when the resource governor switched this sink to
	// count-only mode (PolicyDegrade): Matches stays exact, but content and
	// node reporting stopped at the trip point.
	Degraded bool
	// Shed is set when the resource governor dropped this sink
	// (PolicyShed): the counts are frozen at the trip point.
	Shed bool
	// Determined is set when the sink's answer became fixed before the end
	// of the stream — the answer limit was reached — and the sink released
	// its state (earliest query answering: nothing in the stream's suffix
	// can change the reported answers).
	Determined bool
}

type candState uint8

const (
	candPending candState = iota
	candAccepted
	candRejected
)

type candidate struct {
	index      int64
	name       string
	formula    *cond.Formula
	state      candState
	events     []xmlstream.Event
	startDepth int
	closed     bool
	// streaming marks the head candidate whose content goes straight to
	// the StreamSink (ModeStream).
	streaming bool
	// unqueued marks a candidate tracked only through byVar after the sink
	// degraded to count-only mode: it is counted directly when its formula
	// determines instead of travelling through the document-order queue.
	unqueued bool
	// born is the sink's event count when the candidate was created — the
	// reference point of the decision-latency and candidate-lifetime
	// histograms (both measured in stream events, §V's unit).
	born int64
}

// outputT is the output transducer OU of §III.8. It is the network's sink:
// the one component needing the power of a 2-DPDT (random access to
// candidates and formulas).
type outputT struct {
	mode  ResultMode
	sink  Sink
	ssink StreamSink
	cfg   *netConfig

	pending   *cond.Formula
	nextIndex int64
	depth     int

	queue     []*candidate // document order; undecided or not yet emitted
	openStack []*candidate // candidates whose subtree is still open
	byVar     map[cond.VarID][]*candidate
	bindings  map[cond.VarID]*cond.Formula
	// resolved maps each determined variable to its value: a constant,
	// or a residual formula over nested-qualifier variables. Keeping the
	// values lets the sink handle "past conditions" (query class 4 of
	// §VI): an activation may mention a variable determined before the
	// candidate was encountered.
	resolved map[cond.VarID]*cond.Formula

	stats    OutputStats
	buffered int
	st       StackStats
	err      error

	// step counts the document events the sink has seen (exactly one
	// document message per stream event reaches OU), the clock the
	// candidate-lifecycle histograms are measured against.
	step int64
	// om receives the candidate-lifecycle histograms (netConfig.sinkMetrics);
	// nil keeps every recording point a single pointer test.
	om *obs.Metrics

	// sub names the query this sink serves, for governor attribution.
	sub string
	// degraded: the governor switched the sink to count-only mode; the
	// queue and content buffers are gone, undecided candidates are tracked
	// through byVar only and counted on determination.
	degraded bool
	// pendingN counts undecided candidates while degraded (the degraded
	// replacement for len(queue), governed by the same cap).
	pendingN int
	// shed: the governor dropped the sink; feed is a no-op from then on.
	shed bool

	// limit, when positive, is the sink's answer budget: the query asks for
	// the first limit answers in document order. Reaching it determines the
	// sink — no suffix of the stream can change what was reported — so all
	// candidate state is released and feed becomes a no-op.
	limit int64
	// determined: the limit was reached; the answer is fixed.
	determined bool
}

func newOutput(mode ResultMode, sink Sink, cfg *netConfig) *outputT {
	return &outputT{
		mode:     mode,
		sink:     sink,
		cfg:      cfg,
		om:       cfg.sinkMetrics,
		byVar:    make(map[cond.VarID][]*candidate),
		bindings: make(map[cond.VarID]*cond.Formula),
		resolved: make(map[cond.VarID]*cond.Formula),
	}
}

// observeDecision records the decision latency of a candidate born at the
// given step: the events between creation and its condition resolving to
// true or false.
func (t *outputT) observeDecision(born int64) {
	if t.om != nil {
		t.om.DecisionLatency.Observe(t.step - born)
	}
}

// observeLifetime records how long the candidate lived in the sink — from
// creation to emission or discard, i.e. how long its buffered content aged.
func (t *outputT) observeLifetime(born int64) {
	if t.om != nil {
		t.om.CandidateLifetime.Observe(t.step - born)
	}
}

// observeEmit records the end-to-end stream latency of an answer emission:
// wall-clock nanoseconds since the input reader last read, when a counting
// reader stamps read times into the registry.
func (t *outputT) observeEmit() {
	if t.om == nil {
		return
	}
	if last := t.om.LastReadNs.Load(); last > 0 {
		t.om.StreamLatencyNs.Observe(time.Now().UnixNano() - last)
	}
}

func (t *outputT) name() string { return "OU" }

func (t *outputT) stackStats() StackStats {
	s := t.st
	s.Cur = len(t.queue)
	return s
}

func (t *outputT) feed(_ int, m *Message, emit emitFn) {
	if t.shed || t.determined {
		return
	}
	switch m.Kind {
	case MsgActivation:
		t.pending = t.cfg.or(t.pending, m.Formula)
		t.st.noteFormula(t.pending)
	case MsgDet:
		t.handleDet(m)
		t.flushQueue()
	case MsgDoc:
		t.step++
		t.handleDoc(m.Ev)
		t.flushQueue()
	}
}

func (t *outputT) handleDoc(ev xmlstream.Event) {
	switch {
	case isStart(ev):
		t.depth++
		index := t.nextIndex
		t.nextIndex++
		if t.pending != nil {
			f := t.pending
			t.pending = nil
			// Count-mode fast path: an unconditional answer with nothing
			// queued ahead of it is countable immediately — no candidate
			// record, no queue traffic. With the symbol pipeline this makes
			// the qualifier-free counting loop allocation-free; the
			// interning ablation (noInterning) keeps the seed's allocating
			// path as its baseline.
			if t.mode == ModeCount && !t.cfg.noInterning && len(t.queue) == 0 && f.IsTrue() {
				t.stats.Candidates++
				t.stats.Matches++
				// Decided and emitted at birth: both latencies are zero.
				t.observeDecision(t.step)
				t.observeLifetime(t.step)
				if t.limitReached() {
					t.determine()
					return
				}
			} else {
				t.openCandidate(index, ev, f)
				if t.determined {
					return
				}
			}
		}
		t.appendToOpen(ev)
	case isEnd(ev):
		t.pending = nil
		t.appendToOpen(ev)
		// Close the candidate rooted at the node this event closes.
		if n := len(t.openStack); n > 0 && t.openStack[n-1].startDepth == t.depth {
			t.openStack[n-1].closed = true
			t.openStack = t.openStack[:n-1]
		}
		t.depth--
	default: // text
		t.appendToOpen(ev)
	}
}

// applyResolved substitutes every already-determined variable occurring in
// f by its value, iterating because a value may itself mention variables
// that were determined later.
func (t *outputT) applyResolved(f *cond.Formula) *cond.Formula {
	for {
		var hit cond.VarID
		found := false
		f.Visit(func(v cond.VarID) {
			if !found {
				if _, ok := t.resolved[v]; ok {
					hit, found = v, true
				}
			}
		})
		if !found {
			return f
		}
		f = f.Assign(hit, t.resolved[hit])
	}
}

// openCandidate creates a candidate for the node whose start event is ev.
func (t *outputT) openCandidate(index int64, ev xmlstream.Event, f *cond.Formula) {
	name := ev.Name
	if ev.Kind == xmlstream.StartDocument {
		name = "$"
	}
	f = t.applyResolved(f)
	if t.cfg.gov != nil {
		t.cfg.checkFormula(f)
	}
	t.stats.Candidates++
	if t.degraded {
		t.openDegraded(index, name, f)
		return
	}
	c := &candidate{index: index, name: name, formula: f, startDepth: t.depth, born: t.step}
	switch {
	case f.IsTrue():
		c.state = candAccepted
		t.observeDecision(c.born)
	case f.IsFalse():
		c.state = candRejected
		t.stats.Dropped++
		t.observeDecision(c.born)
		t.observeLifetime(c.born)
	default:
		f.Visit(func(v cond.VarID) { t.byVar[v] = append(t.byVar[v], c) })
	}
	if c.state != candRejected {
		t.queue = append(t.queue, c)
		if len(t.queue) > t.stats.MaxQueued {
			t.stats.MaxQueued = len(t.queue)
		}
		t.openStack = append(t.openStack, c)
		t.st.noteStack(len(t.queue))
		t.checkCandidates()
	}
}

// openDegraded is openCandidate in count-only mode: decided candidates are
// counted on the spot, undecided ones tracked through byVar only (no queue,
// no content) and counted when their formula determines.
func (t *outputT) openDegraded(index int64, name string, f *cond.Formula) {
	switch {
	case f.IsTrue():
		t.stats.Matches++
		t.observeDecision(t.step)
		t.observeLifetime(t.step)
		if t.limitReached() {
			t.determine()
		}
	case f.IsFalse():
		t.stats.Dropped++
		t.observeDecision(t.step)
		t.observeLifetime(t.step)
	default:
		c := &candidate{index: index, name: name, formula: f, unqueued: true, born: t.step}
		f.Visit(func(v cond.VarID) { t.byVar[v] = append(t.byVar[v], c) })
		t.pendingN++
		if t.pendingN > t.stats.MaxQueued {
			t.stats.MaxQueued = t.pendingN
		}
		// A count-only candidate is just a formula and a byVar entry — no
		// queue slot, no content buffer — so the degraded sink tolerates a
		// much larger pending population before the hard backstop fails the
		// run (degradation shrank each candidate, not the count of them).
		if g := t.cfg.gov; g.active() {
			if max := g.limit(governor.ResCandidates); max > 0 && t.pendingN > max*degradedCandidateSlack {
				g.tripFail(governor.ResCandidates, t.pendingN, t.sub)
			}
		}
	}
}

// degradedCandidateSlack is how many times MaxCandidates a degraded sink's
// pending (count-only) population may reach before the run fails anyway:
// the backstop that keeps PolicyDegrade a bounded-memory guarantee rather
// than an unbounded escape hatch.
const degradedCandidateSlack = 64

// checkCandidates applies the candidate-population cap after a queue append.
func (t *outputT) checkCandidates() {
	g := t.cfg.gov
	if !g.active() {
		return
	}
	if max := g.limit(governor.ResCandidates); max > 0 && len(t.queue) > max {
		switch g.trip(governor.ResCandidates, len(t.queue), t.sub) {
		case governor.PolicyDegrade:
			t.degrade()
		case governor.PolicyShed:
			t.shedSelf()
		}
	}
}

// degrade switches the sink to count-only mode (PolicyDegrade): buffered
// answer content is released, the document-order queue is eliminated, and
// from then on only match counts are maintained. The count stays exact —
// accepted candidates are counted immediately, pending ones when their
// formula determines — but node and content reporting stop at the trip
// point; a ModeStream answer that was already streaming is closed early.
func (t *outputT) degrade() {
	if t.degraded || t.shed {
		return
	}
	t.degraded = true
	t.stats.Degraded = true
	for _, c := range t.queue {
		switch c.state {
		case candAccepted:
			if c.streaming {
				t.ssink.ResultEnd(c.index)
			}
			t.stats.Matches++
			t.observeLifetime(c.born)
			if t.limitReached() {
				t.determine()
				return
			}
		case candPending:
			c.unqueued = true
			t.pendingN++
		}
		// Rejected candidates were counted as Dropped when they rejected.
		c.events = nil
	}
	t.queue = nil
	t.openStack = nil
	t.buffered = 0
}

// shedSelf drops the subscription (PolicyShed): every piece of state is
// released and the sink ignores the rest of the stream. Counts freeze at
// the trip point; an in-flight streaming answer is closed so the consumer's
// frame terminates.
func (t *outputT) shedSelf() {
	if t.shed {
		return
	}
	if len(t.queue) > 0 && t.queue[0].streaming {
		t.ssink.ResultEnd(t.queue[0].index)
	}
	t.shed = true
	t.stats.Shed = true
	t.queue = nil
	t.openStack = nil
	t.byVar = make(map[cond.VarID][]*candidate)
	t.bindings = make(map[cond.VarID]*cond.Formula)
	t.resolved = make(map[cond.VarID]*cond.Formula)
	t.pending = nil
	t.buffered = 0
	t.pendingN = 0
}

// appendToOpen adds a content event to every open, non-rejected candidate
// (ModeSerialize and ModeStream). The streaming head candidate forwards the
// event instead of buffering it.
func (t *outputT) appendToOpen(ev xmlstream.Event) {
	if t.mode != ModeSerialize && t.mode != ModeStream {
		return
	}
	for _, c := range t.openStack {
		if c.state == candRejected {
			continue
		}
		if c.streaming {
			t.ssink.ResultEvent(ev)
			continue
		}
		c.events = append(c.events, ev)
		t.buffered++
	}
	if t.buffered > t.stats.MaxBufferedEvs {
		t.stats.MaxBufferedEvs = t.buffered
	}
	if g := t.cfg.gov; g.active() {
		if max := g.limit(governor.ResBuffered); max > 0 && t.buffered > max {
			switch g.trip(governor.ResBuffered, t.buffered, t.sub) {
			case governor.PolicyDegrade:
				t.degrade()
			case governor.PolicyShed:
				t.shedSelf()
			}
		}
	}
}

// handleDet processes a condition determination message.
func (t *outputT) handleDet(m *Message) {
	if _, done := t.resolved[m.Var]; done {
		// First determination wins: a later scope-exit finalization
		// cannot undo a satisfied instance (cf. Fig. 13, variable co1).
		// The finalization does end the instance's lifetime, though, so
		// it retires the resolution record (see below) — unless the
		// network contains following/preceding steps, whose formulas
		// outlive the scopes they mention.
		if m.Final && !t.cfg.retainVars {
			delete(t.resolved, m.Var)
		}
		return
	}
	if m.Final {
		w, ok := t.bindings[m.Var]
		if !ok {
			w = cond.False()
		}
		delete(t.bindings, m.Var)
		t.resolve(m.Var, w)
		// Nothing downstream can mention the variable after its
		// finalization (when the network has no following/preceding
		// steps), so the resolution record can go: this keeps the sink's
		// state bounded on unbounded streams (the id itself is recycled
		// by the variable-creator).
		if !t.cfg.retainVars {
			delete(t.resolved, m.Var)
		}
		return
	}
	w := t.applyResolved(m.Witness)
	if prev, ok := t.bindings[m.Var]; ok {
		w = t.cfg.or(prev, w)
	}
	if w.IsFalse() {
		// A kill from a negated qualifier's determinant: the instance is
		// unsatisfiable outright. Resolve it false now — candidates mentioning
		// it drop immediately — but keep the resolution record until the
		// scope-exit finalization retires it: the negated variable-creator
		// still sends its {c,true} witness at scope exit, which the record
		// absorbs under first-determination-wins (and variable-id recycling
		// stays safe, since the record lives exactly as long as the id).
		delete(t.bindings, m.Var)
		t.resolve(m.Var, cond.False())
		return
	}
	if w.IsTrue() {
		delete(t.bindings, m.Var)
		t.resolve(m.Var, cond.True())
		return
	}
	t.bindings[m.Var] = w
}

// resolve binds variable v to val (a constant, or a residual formula over
// variables of nested qualifiers) and substitutes it through candidate
// formulas and pending bindings, cascading as bindings determine.
func (t *outputT) resolve(v cond.VarID, val *cond.Formula) {
	if t.determined {
		// A cascaded resolution may land after the answer limit was reached
		// mid-cascade; the sink's maps are gone and the answer is fixed.
		return
	}
	t.resolved[v] = val
	cands := t.byVar[v]
	delete(t.byVar, v)
	for _, c := range cands {
		if c.state != candPending || !c.formula.HasVar(v) {
			continue
		}
		c.formula = c.formula.Assign(v, val)
		t.st.noteFormula(c.formula)
		if t.cfg.gov != nil {
			t.cfg.checkFormula(c.formula)
		}
		switch {
		case c.formula.IsTrue():
			c.state = candAccepted
			t.observeDecision(c.born)
			if c.unqueued {
				t.stats.Matches++
				t.pendingN--
				t.observeLifetime(c.born)
				if t.limitReached() {
					t.determine()
					return
				}
			}
		case c.formula.IsFalse():
			c.state = candRejected
			t.stats.Dropped++
			t.releaseContent(c)
			t.observeDecision(c.born)
			if c.unqueued {
				t.pendingN--
				t.observeLifetime(c.born)
			}
		default:
			c.formula.Visit(func(w cond.VarID) {
				if w != v {
					t.byVar[w] = append(t.byVar[w], c)
				}
			})
		}
	}
	// Substitute into pending bindings; collect cascaded resolutions.
	var cascade []cond.VarID
	for owner, b := range t.bindings {
		if !b.HasVar(v) {
			continue
		}
		nb := b.Assign(v, val)
		if nb.IsTrue() {
			cascade = append(cascade, owner)
		}
		t.bindings[owner] = nb
	}
	for _, owner := range cascade {
		delete(t.bindings, owner)
		t.resolve(owner, cond.True())
	}
}

// releaseContent frees a rejected candidate's buffer.
func (t *outputT) releaseContent(c *candidate) {
	t.buffered -= len(c.events)
	c.events = nil
}

// flushQueue emits decided candidates from the front of the document-order
// queue.
func (t *outputT) flushQueue() {
	for len(t.queue) > 0 {
		c := t.queue[0]
		switch c.state {
		case candRejected:
			t.releaseContent(c)
		case candAccepted:
			if t.mode == ModeStream {
				if !c.streaming {
					// Promote to streaming: replay what was buffered
					// while the candidate waited, then forward live.
					t.ssink.ResultStart(c.index, c.name)
					for _, ev := range c.events {
						t.ssink.ResultEvent(ev)
					}
					t.releaseContent(c)
					c.streaming = true
				}
				if !c.closed {
					return // content still arriving, streamed directly
				}
				t.ssink.ResultEnd(c.index)
				t.stats.Matches++
				t.observeEmit()
			} else {
				if t.mode == ModeSerialize && !c.closed {
					return // content still arriving
				}
				t.emit(c)
			}
			// The k-th answer in document order has been fully delivered
			// (for ModeStream, its ResultEnd just went out): the answer is
			// fixed no matter what the rest of the stream holds.
			if t.limitReached() {
				t.observeLifetime(c.born)
				t.determine()
				return
			}
		default:
			return
		}
		t.observeLifetime(c.born)
		t.queue[0] = nil
		t.queue = t.queue[1:]
	}
}

func (t *outputT) emit(c *candidate) {
	t.stats.Matches++
	t.observeEmit()
	if t.mode == ModeCount || t.sink == nil {
		return
	}
	r := Result{Index: c.index, Name: c.name}
	if t.mode == ModeSerialize {
		r.Events = c.events
		t.buffered -= len(c.events)
	}
	t.sink(r)
}

// limitReached reports whether the sink's answer budget is exhausted.
func (t *outputT) limitReached() bool {
	return t.limit > 0 && t.stats.Matches >= t.limit
}

// determine marks the sink's answer as fixed — the first limit answers have
// been delivered in document order, and nothing in the stream's suffix can
// add to or retract them — and releases every piece of candidate state:
// queued candidates, buffered content, formula bindings and resolution
// records all go at once, so the memory the governor polices is returned at
// the determination event rather than at end of stream. From here on feed is
// a no-op; the network notices via the shared config's determined-sink count
// and can disconnect the stream.
func (t *outputT) determine() {
	if t.determined || t.shed {
		return
	}
	t.determined = true
	t.stats.Determined = true
	t.queue = nil
	t.openStack = nil
	t.byVar = nil
	t.bindings = nil
	t.resolved = nil
	t.pending = nil
	t.buffered = 0
	t.pendingN = 0
	t.cfg.detSinks++
	if t.om != nil {
		t.om.EarlyTerm.Add(1)
	}
}

// finish is called after the end-document step; it verifies that every
// candidate was decided (the variable-creators finalize all instances by
// then) and reports leftover state as an internal error.
func (t *outputT) finish() error {
	if t.shed {
		// A shed sink dropped its state by design; nothing to validate.
		return t.err
	}
	if t.determined {
		// The answer was fixed mid-stream and the state already released.
		return t.err
	}
	t.flushQueue()
	if len(t.queue) != 0 {
		c := t.queue[0]
		return fmt.Errorf("spexnet: internal: %d undecided candidate(s) at end of stream; first has index %d, formula %s",
			len(t.queue), c.index, c.formula)
	}
	if t.pendingN != 0 {
		return fmt.Errorf("spexnet: internal: %d undecided count-only candidate(s) at end of stream", t.pendingN)
	}
	return t.err
}
