package spexnet

import (
	"fmt"
	"io"

	"repro/internal/cond"
	"repro/internal/xmlstream"
)

// netNode is one transducer of a network with its wiring.
type netNode struct {
	t     transducer
	ins   []int // input tape ids, in port order
	outs  []int // output tape ids, in port order
	emit  emitFn
	ender stepEnder // non-nil when the transducer buffers within a step
}

// stepEnder is implemented by transducers that buffer messages within a
// step (the join); the runner calls endStep after all of the step's
// messages have been delivered to the node.
type stepEnder interface {
	endStep(emit emitFn)
}

// Network is a compiled SPEX network: a single-source single-sink DAG of
// transducers (Definition 3). It is stateful and evaluates exactly one
// stream; build a fresh network per evaluation (building is linear in the
// query size and takes microseconds).
type Network struct {
	cfg        netConfig
	pool       *cond.Pool
	nodes      []netNode
	edges      [][]Message
	sourceEdge int
	outs       []*outputT
	step       int64
	elements   int64
	depth      int
	maxDepth   int
}

// Stats reports what an evaluation consumed and produced; the quantities of
// §V and §VI.
type Stats struct {
	Events      int64       // document-stream events processed
	Elements    int64       // elements in the stream
	MaxDepth    int         // document depth d
	Transducers int         // network degree (Lemma V.1)
	MaxStack    int         // max depth/condition stack entries over all transducers
	MaxFormula  int         // max condition formula size σ
	Output      OutputStats // sink-side accounting
}

// Degree returns the number of transducers in the network, the paper's
// network degree (Lemma V.1 shows it is linear in the expression size).
func (n *Network) Degree() int { return len(n.nodes) }

// Run drives the whole stream from src through the network: the input
// transducer's role of §III.2 — emit the initial activation on the
// start-document message and forward one document message at a time, the
// next only after the previous reached the sink.
func (n *Network) Run(src xmlstream.Source) (Stats, error) {
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n.stats(), err
		}
		if err := n.Step(ev); err != nil {
			return n.stats(), err
		}
	}
	if err := n.Finish(); err != nil {
		return n.stats(), err
	}
	return n.stats(), nil
}

// Step pushes a single event through the network. Callers using Step
// directly (e.g. unbounded streams) must call Finish after the last event
// to validate and flush the sink.
func (n *Network) Step(ev xmlstream.Event) error {
	n.step++
	switch ev.Kind {
	case xmlstream.StartElement:
		n.elements++
		n.depth++
		if n.depth > n.maxDepth {
			n.maxDepth = n.depth
		}
	case xmlstream.EndElement:
		n.depth--
		if n.depth < 0 {
			return fmt.Errorf("spexnet: unbalanced end message %s at step %d", ev, n.step)
		}
	}
	// The input transducer: the initial activation with formula true
	// precedes the start-document message (§III.2, Example III.1).
	if ev.Kind == xmlstream.StartDocument {
		n.edges[n.sourceEdge] = append(n.edges[n.sourceEdge], actMsg(cond.True()))
	}
	n.edges[n.sourceEdge] = append(n.edges[n.sourceEdge], docMsg(ev))
	n.propagate()
	return nil
}

// propagate delivers the step's messages along every tape in topological
// order. A tape may be read by several transducers (shared-subexpression
// networks reuse an output tape instead of inserting an explicit split —
// the multicast is semantically a split transducer), so tapes are cleared
// only after the whole step.
func (n *Network) propagate() {
	for i := range n.nodes {
		node := &n.nodes[i]
		for port, e := range node.ins {
			for _, m := range n.edges[e] {
				node.t.feed(port, m, node.emit)
			}
		}
		if node.ender != nil {
			// All producers precede this node in topological order, so
			// the step is complete on its inputs.
			node.ender.endStep(node.emit)
		}
	}
	for i := range n.edges {
		if len(n.edges[i]) > 0 {
			n.edges[i] = n.edges[i][:0]
		}
	}
}

// Finish validates end-of-stream invariants and flushes the sinks.
func (n *Network) Finish() error {
	if n.depth != 0 {
		return fmt.Errorf("spexnet: stream ended with %d unclosed element(s)", n.depth)
	}
	for _, out := range n.outs {
		if err := out.finish(); err != nil {
			return err
		}
	}
	return nil
}

// Matches returns the number of answers reported so far, summed over all
// sinks.
func (n *Network) Matches() int64 {
	var total int64
	for _, out := range n.outs {
		total += out.stats.Matches
	}
	return total
}

// SinkStats returns per-sink output statistics, in the order the queries
// were given to BuildSet (a single-query network has one entry).
func (n *Network) SinkStats() []OutputStats {
	out := make([]OutputStats, len(n.outs))
	for i, o := range n.outs {
		out[i] = o.stats
	}
	return out
}

func (n *Network) stats() Stats {
	s := Stats{
		Events:      n.step,
		Elements:    n.elements,
		MaxDepth:    n.maxDepth,
		Transducers: len(n.nodes),
	}
	for _, out := range n.outs {
		s.Output.Matches += out.stats.Matches
		s.Output.Candidates += out.stats.Candidates
		s.Output.Dropped += out.stats.Dropped
		s.Output.MaxQueued += out.stats.MaxQueued
		s.Output.MaxBufferedEvs += out.stats.MaxBufferedEvs
	}
	for i := range n.nodes {
		ts := n.nodes[i].t.stackStats()
		if ts.MaxStack > s.MaxStack {
			s.MaxStack = ts.MaxStack
		}
		if ts.MaxFormula > s.MaxFormula {
			s.MaxFormula = ts.MaxFormula
		}
	}
	return s
}

// TransducerStats returns per-transducer resource usage keyed by a
// "index:name" label, for the §V experiments and debugging.
func (n *Network) TransducerStats() map[string]StackStats {
	out := make(map[string]StackStats, len(n.nodes))
	for i := range n.nodes {
		out[fmt.Sprintf("%d:%s", i, n.nodes[i].t.name())] = n.nodes[i].t.stackStats()
	}
	return out
}
