package spexnet

import (
	"fmt"
	"io"

	"repro/internal/cond"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/xmlstream"
)

// netNode is one transducer of a network with its wiring.
type netNode struct {
	t     transducer
	ins   []int // input tape ids, in port order
	outs  []int // output tape ids, in port order
	emit  emitFn
	ender stepEnder // non-nil when the transducer buffers within a step
	tm    *obs.TransducerMetrics
	mc    *msgCounters
}

// msgCounters holds the per-node flush bookkeeping for the edge-count
// instrumentation: the totals already published into the node's atomic
// TransducerMetrics counters, so syncMetrics adds deltas (the registry is
// cumulative across evaluations).
type msgCounters struct {
	flushedIn  [kindMask + 1]int64
	flushedOut [kindMask + 1]int64
}

// numKinds mirrors the obs package's message-kind count for the batched
// counter arrays (doc, activation, determination).
const numKinds = 3

// kindMask sizes the batched counter arrays to the next power of two above
// numKinds: indexing with Kind&kindMask is provably in bounds, so the
// per-message increments compile without a bounds check. Index 3 is never
// written (there is no fourth kind).
const kindMask = 3

// The batched counters index by Message.Kind directly; this only works
// because the engine's and the obs package's kind numbering coincide.
var _ = [1]struct{}{}[MsgDoc-MsgKind(obs.KindDoc)]
var _ = [1]struct{}{}[MsgActivation-MsgKind(obs.KindActivation)]
var _ = [1]struct{}{}[MsgDet-MsgKind(obs.KindDetermination)]

// stepEnder is implemented by transducers that buffer messages within a
// step (the join); the runner calls endStep after all of the step's
// messages have been delivered to the node.
type stepEnder interface {
	endStep(emit emitFn)
}

// Network is a compiled SPEX network: a single-source single-sink DAG of
// transducers (Definition 3). It is stateful and evaluates exactly one
// stream; build a fresh network per evaluation (building is linear in the
// query size and takes microseconds).
type Network struct {
	cfg        netConfig
	pool       *cond.Pool
	nodes      []netNode
	edges      [][]Message
	sourceEdge int
	outs       []*outputT
	step       int64
	elements   int64
	depth      int
	maxDepth   int
	// allShed: the governor shed the whole network (a network-level
	// resource tripped under PolicyShed); Step keeps only the depth
	// bookkeeping from then on, so the parse completes but no state grows.
	allShed bool
	// allLimited: every sink carries an answer limit, so the whole
	// network's answer can become fixed mid-stream; Run then stops reading
	// and releases the network instead of draining the stream.
	allLimited bool
	// finalStats/finalSinks freeze the evaluation statistics at Release, so
	// Stats/Matches/SinkStats stay answerable after an early release (the
	// determination path tears the network down mid-stream).
	finalStats *Stats
	finalSinks []OutputStats

	// metrics, when non-nil, receives live instrument updates once per
	// step; nil networks run the uninstrumented propagate path.
	metrics *obs.Metrics
	lastOut OutputStats
	// lastStep/lastElements: the values already flushed into the registry's
	// stream counters, so syncMetrics publishes deltas (the registry is
	// cumulative across evaluations) without an atomic add per event.
	lastStep     int64
	lastElements int64
	// edgeCounts (instrumented networks only) counts the messages written to
	// each tape, by kind. The producer's emit closure increments it — one
	// plain increment per message, the whole per-message cost of the
	// instrumentation — and since every tape has exactly one writer and one
	// reader, a node's in- and out-counts are both derivable from its tapes;
	// the delivery loop stays identical to the uninstrumented one. Rows are
	// individually allocated (stable pointers) so emit closures capture
	// their row without an index.
	edgeCounts []*[kindMask + 1]int64
	// stepMsgs batches the per-event message-volume observations; flushed
	// into metrics.StepMessages on the gauge stride.
	stepMsgs obs.HistogramBatch
}

// Stats reports what an evaluation consumed and produced; the quantities of
// §V and §VI.
type Stats struct {
	Events      int64       // document-stream events processed
	Elements    int64       // elements in the stream
	MaxDepth    int         // document depth d
	Transducers int         // network degree (Lemma V.1)
	MaxStack    int         // max depth/condition stack entries over all transducers
	MaxFormula  int         // max condition formula size σ
	Output      OutputStats // sink-side accounting
	// Governor summarizes resource-governor activity (zero when no
	// governor was configured or nothing tripped).
	Governor GovernorOutcome
	// Determined is set when every sink's answer became fixed before the
	// end of the stream (all answer limits reached): Events then reports
	// how much of the stream was actually consumed, not its full length.
	Determined bool
}

// Degree returns the number of transducers in the network, the paper's
// network degree (Lemma V.1 shows it is linear in the expression size).
func (n *Network) Degree() int { return len(n.nodes) }

// Run drives the whole stream from src through the network: the input
// transducer's role of §III.2 — emit the initial activation on the
// start-document message and forward one document message at a time, the
// next only after the previous reached the sink.
//
// When every sink carries an answer limit, Run watches the determination
// signal after each step: as soon as all sinks report their answer fixed, it
// stops reading, releases the network, and returns — the stream's suffix is
// never consumed (earliest query answering; Finish is skipped because the
// document is deliberately left half-read).
func (n *Network) Run(src xmlstream.Source) (Stats, error) {
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n.stats(), err
		}
		if err := n.Step(ev); err != nil {
			return n.stats(), err
		}
		if n.allLimited && n.AnswerDetermined() {
			if n.metrics != nil {
				n.syncMetrics()
			}
			st := n.stats()
			n.Release()
			return st, nil
		}
	}
	if err := n.Finish(); err != nil {
		return n.stats(), err
	}
	return n.stats(), nil
}

// AnswerDetermined reports whether every sink's answer is fixed: all answer
// limits have been reached, so no suffix of the stream can change what the
// network reports. Callers driving Step directly (push-mode feeds, the
// multi-query engines) poll this to disconnect the stream early.
func (n *Network) AnswerDetermined() bool {
	if n.finalStats != nil {
		return n.finalStats.Determined
	}
	return len(n.outs) > 0 && n.cfg.detSinks == len(n.outs)
}

// Step pushes a single event through the network. Callers using Step
// directly (e.g. unbounded streams) must call Finish after the last event
// to validate and flush the sink.
func (n *Network) Step(ev xmlstream.Event) error {
	if n.nodes == nil {
		// Released (answer determined, or torn down): a push-mode feeder
		// racing the determination signal may still deliver a few events;
		// they are ignored rather than failed.
		return nil
	}
	n.step++
	switch ev.Kind {
	case xmlstream.StartElement:
		n.elements++
		n.depth++
		if n.depth > n.maxDepth {
			n.maxDepth = n.depth
		}
	case xmlstream.EndElement:
		n.depth--
		if n.depth < 0 {
			return fmt.Errorf("spexnet: unbalanced end message %s at step %d", ev, n.step)
		}
	}
	// Resolve the label symbol against the network's own table when the
	// producer did not (push-mode feeds, the encoding/xml adapter). Events
	// from a scanner sharing the table arrive pre-resolved and skip the
	// lookup entirely; either way every transducer downstream sees a
	// resolved symbol and runs integer label tests.
	if ev.Sym == 0 && !n.cfg.noInterning &&
		(ev.Kind == xmlstream.StartElement || ev.Kind == xmlstream.EndElement) {
		ev.Sym = n.cfg.symtab.Intern(ev.Name)
	}
	g := n.cfg.gov
	if g != nil {
		if g.err != nil {
			return g.err
		}
		if n.allShed {
			return nil // shed network: depth bookkeeping only
		}
		if max := g.limit(governor.ResDepth); max > 0 && n.depth > max {
			switch g.trip(governor.ResDepth, n.depth, "") {
			case governor.PolicyFail:
				return g.err
			case governor.PolicyShed:
				n.shedAllSinks()
				return nil
			}
		}
	}
	// The input transducer: the initial activation with formula true
	// precedes the start-document message (§III.2, Example III.1).
	if ev.Kind == xmlstream.StartDocument {
		n.edges[n.sourceEdge] = append(n.edges[n.sourceEdge], actMsg(cond.True()))
	}
	n.edges[n.sourceEdge] = append(n.edges[n.sourceEdge], docMsg(ev))
	if n.metrics == nil {
		total := n.propagate()
		if g != nil {
			return n.governStep(total)
		}
		return nil
	}
	// The source tape has no emitting transducer; account its messages here.
	if ev.Kind == xmlstream.StartDocument {
		n.edgeCounts[n.sourceEdge][MsgActivation&kindMask]++
	}
	n.edgeCounts[n.sourceEdge][MsgDoc&kindMask]++
	total := n.propagate()
	n.stepMsgs.Observe(total)
	if n.step&(gaugeSyncStride-1) == 0 {
		n.syncMetrics()
	}
	if g != nil {
		return n.governStep(total)
	}
	return nil
}

// governStep applies the network-level checks after a step's propagation:
// the sticky failure installed by any in-propagation trip (formula size,
// sink-level caps under PolicyFail), the per-step message-volume cap (the
// Lemma V.2 per-event work bound), and the live condition-variable cap (the
// depth × qualifiers invariant behind the space theorem). A trip is acted
// on before the next event is accepted, so a run exceeding a cap terminates
// — or degrades — within one event.
func (n *Network) governStep(total int64) error {
	g := n.cfg.gov
	if g.err == nil {
		if max := g.limit(governor.ResStepMessages); max > 0 && total > int64(max) {
			if g.trip(governor.ResStepMessages, int(total), "") == governor.PolicyShed {
				g.shedAll = true
			}
		}
	}
	if g.err == nil {
		if max := g.limit(governor.ResLiveVars); max > 0 && n.pool.Live() > max {
			if g.trip(governor.ResLiveVars, n.pool.Live(), "") == governor.PolicyShed {
				g.shedAll = true
			}
		}
	}
	if g.err != nil {
		if n.metrics != nil {
			n.syncMetrics()
		}
		return g.err
	}
	if g.shedAll && !n.allShed {
		n.shedAllSinks()
	}
	return nil
}

// shedAllSinks sheds every sink and quiesces the network: tapes are
// dropped, the variable pool is reset, and subsequent steps keep only the
// depth bookkeeping. The parse still completes (Finish validates nesting),
// reporting whatever each sink had counted before the shed.
func (n *Network) shedAllSinks() {
	for _, out := range n.outs {
		out.shedSelf()
	}
	for i := range n.edges {
		n.edges[i] = nil
	}
	if n.pool != nil {
		n.pool.Reset()
	}
	n.allShed = true
}

// gaugeSyncStride is how often syncMetrics publishes gauge state, the
// stream-level counters (events, elements) and the batched per-transducer
// message counts, in steps. The transducers track their own maxima, so a
// periodic sync never misses a peak — counters and instantaneous gauges can
// lag by at most this many events, and the end-of-run sync makes them
// exact. Must be a power of two.
const gaugeSyncStride = 32

// propagate delivers the step's messages along every tape in topological
// order. Every tape has exactly one reader — shared-subexpression networks
// route their multi-reader tapes through explicit fan-out junctions at build
// time (insertFanouts) — but a tape's content must survive until the whole
// step has been delivered, so tapes are cleared only at the end.
func (n *Network) propagate() int64 {
	var total int64
	for i := range n.nodes {
		node := &n.nodes[i]
		for port, e := range node.ins {
			msgs := n.edges[e]
			total += int64(len(msgs))
			for j := range msgs {
				node.t.feed(port, &msgs[j], node.emit)
			}
		}
		if node.ender != nil {
			// All producers precede this node in topological order, so
			// the step is complete on its inputs.
			node.ender.endStep(node.emit)
		}
	}
	for i := range n.edges {
		if len(n.edges[i]) > 0 {
			n.edges[i] = n.edges[i][:0]
		}
	}
	return total
}

// syncMetrics publishes the per-transducer and sink-side state into the
// registry; called every gaugeSyncStride steps and after Finish, so
// snapshots taken from other goroutines see counters that are exact per
// event and gauges at most a few events stale.
func (n *Network) syncMetrics() {
	m := n.metrics
	if d := n.step - n.lastStep; d != 0 {
		m.Events.Add(d)
		n.lastStep = n.step
	}
	if d := n.elements - n.lastElements; d != 0 {
		m.Elements.Add(d)
		n.lastElements = n.elements
	}
	m.Depth.Set(int64(n.depth))
	m.Depth.NoteMax(int64(n.maxDepth))
	n.stepMsgs.FlushTo(&m.StepMessages)
	for i := range n.nodes {
		node := &n.nodes[i]
		ts := node.t.stackStats()
		tm := node.tm
		tm.Stack.Set(int64(ts.Cur))
		tm.Stack.NoteMax(int64(ts.MaxStack))
		tm.Formula.NoteMax(int64(ts.MaxFormula))
		if mc := node.mc; mc != nil && n.edgeCounts != nil {
			// Every tape has one writer and one reader, so the tape counts
			// are simultaneously the producer's out- and the consumer's
			// in-counts; sum each side and publish the delta.
			for k := 0; k < numKinds; k++ {
				var in, out int64
				for _, e := range node.ins {
					in += n.edgeCounts[e][k]
				}
				for _, e := range node.outs {
					out += n.edgeCounts[e][k]
				}
				if d := in - mc.flushedIn[k]; d != 0 {
					tm.In[k].Add(d)
					mc.flushedIn[k] = in
				}
				if d := out - mc.flushedOut[k]; d != 0 {
					tm.Out[k].Add(d)
					mc.flushedOut[k] = out
				}
			}
		}
	}
	if n.pool != nil {
		m.LiveVars.Set(int64(n.pool.Live()))
	}
	var cur OutputStats
	var queued, buffered int
	for _, out := range n.outs {
		cur.Matches += out.stats.Matches
		cur.Candidates += out.stats.Candidates
		cur.Dropped += out.stats.Dropped
		cur.MaxQueued += out.stats.MaxQueued
		cur.MaxBufferedEvs += out.stats.MaxBufferedEvs
		queued += len(out.queue)
		buffered += out.buffered
	}
	// The registry counters are cumulative across evaluations (a service
	// reuses one registry for many networks), so publish deltas.
	m.Matches.Add(cur.Matches - n.lastOut.Matches)
	m.Candidates.Add(cur.Candidates - n.lastOut.Candidates)
	m.Dropped.Add(cur.Dropped - n.lastOut.Dropped)
	n.lastOut = cur
	m.Queued.Set(int64(queued))
	m.Queued.NoteMax(int64(cur.MaxQueued))
	m.Buffered.Set(int64(buffered))
	m.Buffered.NoteMax(int64(cur.MaxBufferedEvs))
	if st := n.cfg.symtab; st != nil {
		hits, misses := st.Stats()
		m.SymtabSize.Set(int64(st.Len()))
		m.SymtabHits.Set(hits)
		m.SymtabMisses.Set(misses)
	}
}

// obsKind maps the engine's message kinds onto the observability package's.
func obsKind(k MsgKind) obs.MsgKind {
	switch k {
	case MsgActivation:
		return obs.KindActivation
	case MsgDet:
		return obs.KindDetermination
	default:
		return obs.KindDoc
	}
}

// Finish validates end-of-stream invariants and flushes the sinks.
func (n *Network) Finish() error {
	if n.depth != 0 {
		return fmt.Errorf("spexnet: stream ended with %d unclosed element(s)", n.depth)
	}
	for _, out := range n.outs {
		if err := out.finish(); err != nil {
			return err
		}
	}
	if n.metrics != nil {
		n.syncMetrics()
	}
	return nil
}

// Release drops the network's evaluation state without requiring the stream
// to finish: transducer stacks, tape buffers and queued candidates are
// unreferenced, and the condition pool returns its allocated variables. An
// early-exit caller (a filtering decision made mid-stream, or an answer
// determination) releases instead of feeding the rest of the document. The
// final statistics are frozen first, so Stats, Matches and SinkStats keep
// answering after the release. The network accepts no further events
// afterwards; it is safe to call Release more than once.
func (n *Network) Release() {
	if n.finalStats == nil && n.outs != nil {
		// Freeze the sinks before finalStats: SinkStats short-circuits to
		// the frozen slice once finalStats is set.
		sinks := n.SinkStats()
		st := n.stats()
		n.finalStats = &st
		n.finalSinks = sinks
	}
	n.nodes = nil
	n.edges = nil
	n.outs = nil
	if n.pool != nil {
		n.pool.Reset()
	}
}

// Matches returns the number of answers reported so far, summed over all
// sinks.
func (n *Network) Matches() int64 {
	if n.finalStats != nil {
		return n.finalStats.Output.Matches
	}
	var total int64
	for _, out := range n.outs {
		total += out.stats.Matches
	}
	return total
}

// SinkStats returns per-sink output statistics, in the order the queries
// were given to BuildSet (a single-query network has one entry).
func (n *Network) SinkStats() []OutputStats {
	if n.finalStats != nil {
		return n.finalSinks
	}
	out := make([]OutputStats, len(n.outs))
	for i, o := range n.outs {
		out[i] = o.stats
	}
	return out
}

// Stats returns the evaluation statistics so far. It reads the network's
// own (non-atomic) state, so it must be called from the evaluating
// goroutine; cross-goroutine observation goes through an obs.Metrics
// registry instead.
func (n *Network) Stats() Stats { return n.stats() }

func (n *Network) stats() Stats {
	if n.finalStats != nil {
		return *n.finalStats
	}
	s := Stats{
		Events:      n.step,
		Elements:    n.elements,
		MaxDepth:    n.maxDepth,
		Transducers: len(n.nodes),
		Determined:  n.AnswerDetermined(),
	}
	for _, out := range n.outs {
		s.Output.Matches += out.stats.Matches
		s.Output.Candidates += out.stats.Candidates
		s.Output.Dropped += out.stats.Dropped
		s.Output.MaxQueued += out.stats.MaxQueued
		s.Output.MaxBufferedEvs += out.stats.MaxBufferedEvs
		s.Output.Degraded = s.Output.Degraded || out.stats.Degraded
		s.Output.Shed = s.Output.Shed || out.stats.Shed
		s.Output.Determined = s.Output.Determined || out.stats.Determined
	}
	s.Governor = n.cfg.gov.outcome()
	for i := range n.nodes {
		ts := n.nodes[i].t.stackStats()
		if ts.MaxStack > s.MaxStack {
			s.MaxStack = ts.MaxStack
		}
		if ts.MaxFormula > s.MaxFormula {
			s.MaxFormula = ts.MaxFormula
		}
	}
	return s
}

// TransducerStats returns per-transducer resource usage keyed by a
// "index:name" label, for the §V experiments and debugging.
func (n *Network) TransducerStats() map[string]StackStats {
	out := make(map[string]StackStats, len(n.nodes))
	for i := range n.nodes {
		out[fmt.Sprintf("%d:%s", i, n.nodes[i].t.name())] = n.nodes[i].t.stackStats()
	}
	return out
}
