package spexnet

import (
	"strings"

	"repro/internal/cond"
	"repro/internal/rpeq"
)

// textCmpT is the text-test transducer TE(op,"v") backing the extended
// qualifier [path op "v"]: it receives the activations of the nodes
// selected by path, accumulates each such node's string value (all
// character data in its subtree), and at the node's end message re-emits
// the activation iff the comparison holds — from where the ordinary
// variable-filter/-determinant pair witnesses the qualifier instance.
// Because the test decides at the end message, the variable-creator's
// scope-exit finalization (which travels after end messages) still arrives
// afterwards, preserving first-determination-wins.
//
// Memory: one text buffer per armed open node — bounded by the text of the
// candidate subtrees, the price of a value test on streams.
type textCmpT struct {
	op    rpeq.TextOp
	value string
	cfg   *netConfig

	pending *cond.Formula
	scopes  []*textScope // parallel to open nodes; nil when not armed
	st      StackStats
}

type textScope struct {
	f   *cond.Formula
	buf strings.Builder
}

func newTextCmp(op rpeq.TextOp, value string, cfg *netConfig) *textCmpT {
	return &textCmpT{op: op, value: value, cfg: cfg}
}

func (t *textCmpT) name() string { return "TE(" + t.op.String() + ")" }

func (t *textCmpT) stackStats() StackStats {
	s := t.st
	s.Cur = len(t.scopes)
	return s
}

func (t *textCmpT) feed(_ int, m *Message, emit emitFn) {
	switch m.Kind {
	case MsgActivation:
		t.pending = t.cfg.or(t.pending, m.Formula)
		t.st.noteFormula(t.pending)
	case MsgDet:
		emit(0, *m)
	case MsgDoc:
		ev := m.Ev
		switch {
		case isStart(ev):
			var s *textScope
			if t.pending != nil {
				s = &textScope{f: t.pending}
				t.pending = nil
			}
			t.scopes = append(t.scopes, s)
			t.st.noteStack(len(t.scopes))
			emit(0, *m)
		case isEnd(ev):
			t.pending = nil
			if n := len(t.scopes); n > 0 {
				if s := t.scopes[n-1]; s != nil && t.op.Holds(s.buf.String(), t.value) {
					emit(0, actMsg(s.f))
				}
				t.scopes = t.scopes[:n-1]
			}
			emit(0, *m)
		default: // text: accumulate into every armed scope
			for _, s := range t.scopes {
				if s != nil {
					s.buf.WriteString(ev.Data)
				}
			}
			emit(0, *m)
		}
	}
}
