package spexnet

import (
	"repro/internal/cond"
	"repro/internal/xmlstream"
)

// followingT implements the following axis (§I: the prototype "supports
// also other XPath navigational capabilities, i.e. following and
// preceding"): for a context node activated with formula f, every element
// whose start message comes after the context's end message matches with
// formula f. Contexts merge by disjunction; the transducer's state is one
// formula per open node (is it an awaited context?) plus the merged formula
// of contexts already closed — bounded by the depth, like the core
// transducers.
type followingT struct {
	test labelTest
	cfg  *netConfig

	pending *cond.Formula
	// armed[k] is non-nil when the k-th open node is a context whose
	// following-scope opens at its end message.
	armed  []*cond.Formula
	active *cond.Formula
	st     StackStats
}

func newFollowing(test string, cfg *netConfig) *followingT {
	return &followingT{test: cfg.compileLabelTest(test), cfg: cfg}
}

func (t *followingT) name() string { return "FO(" + t.test.label + ")" }

func (t *followingT) stackStats() StackStats {
	s := t.st
	s.Cur = len(t.armed)
	return s
}

func (t *followingT) feed(_ int, m *Message, emit emitFn) {
	switch m.Kind {
	case MsgActivation:
		t.pending = t.cfg.or(t.pending, m.Formula)
		t.st.noteFormula(t.pending)
	case MsgDet:
		emit(0, *m)
	case MsgDoc:
		ev := m.Ev
		switch {
		case isStart(ev):
			if t.active != nil && t.test.matches(ev) {
				emit(0, actMsg(t.active))
			}
			t.armed = append(t.armed, t.pending)
			t.pending = nil
			t.st.noteStack(len(t.armed))
			emit(0, *m)
		case isEnd(ev):
			t.pending = nil
			if n := len(t.armed); n > 0 {
				if f := t.armed[n-1]; f != nil {
					t.active = t.cfg.or(t.active, f)
					t.st.noteFormula(t.active)
				}
				t.armed = t.armed[:n-1]
			}
			emit(0, *m)
		default:
			emit(0, *m)
		}
	}
}

// precedingT implements the preceding axis: elements whose end message
// comes before a context's start message. Answers necessarily precede
// their justification in the stream, so the transducer emits every
// test-matching element as a conditional answer with a fresh condition
// variable; a later context start witnesses all candidates already closed
// (with the context's own formula as witness), and the end of the stream
// finalizes whatever was never witnessed — the same future-condition
// machinery qualifiers use. Unwitnessed closed candidates must be retained
// until a context appears, so memory is bounded by the number of candidate
// answers between contexts (the output transducer holds them as
// undetermined candidates anyway).
type precedingT struct {
	test labelTest
	q    cond.QualID
	pool *cond.Pool
	cfg  *netConfig

	pendingCtx *cond.Formula
	// open[k] holds the candidate variable of the k-th open node, if any.
	open []cond.VarID
	has  []bool
	// closed holds candidates whose subtree has ended and whose
	// witnessing context has not arrived (or arrived only conditionally).
	closed []cond.VarID
	st     StackStats
}

func newPreceding(test string, q cond.QualID, pool *cond.Pool, cfg *netConfig) *precedingT {
	return &precedingT{test: cfg.compileLabelTest(test), q: q, pool: pool, cfg: cfg}
}

func (t *precedingT) name() string { return "PR(" + t.test.label + ")" }

func (t *precedingT) stackStats() StackStats {
	s := t.st
	s.Cur = len(t.open) + len(t.closed)
	return s
}

func (t *precedingT) feed(_ int, m *Message, emit emitFn) {
	switch m.Kind {
	case MsgActivation:
		t.pendingCtx = t.cfg.or(t.pendingCtx, m.Formula)
		t.st.noteFormula(t.pendingCtx)
	case MsgDet:
		emit(0, *m)
	case MsgDoc:
		ev := m.Ev
		switch {
		case isStart(ev):
			if t.pendingCtx != nil {
				t.creditClosed(t.pendingCtx, emit)
				t.pendingCtx = nil
			}
			var v cond.VarID
			matched := t.test.matches(ev)
			if matched {
				v = t.pool.Fresh(t.q)
				emit(0, actMsg(t.pool.Var(v)))
			}
			t.open = append(t.open, v)
			t.has = append(t.has, matched)
			t.st.noteStack(len(t.open) + len(t.closed))
			emit(0, *m)
		case isEnd(ev):
			t.pendingCtx = nil
			if ev.Kind == xmlstream.EndDocument {
				// No context can follow: finalize the stragglers. (No
				// Release: networks with axes retain ids, see netConfig.)
				for _, v := range t.closed {
					emit(0, Message{Kind: MsgDet, Var: v, Final: true})
				}
				t.closed = t.closed[:0]
			}
			if n := len(t.open); n > 0 {
				if t.has[n-1] {
					t.closed = append(t.closed, t.open[n-1])
					t.st.noteStack(len(t.open) + len(t.closed))
				}
				t.open = t.open[:n-1]
				t.has = t.has[:n-1]
			}
			emit(0, *m)
		default:
			emit(0, *m)
		}
	}
}

// creditClosed witnesses every closed candidate with the context formula f.
// Candidates witnessed unconditionally are fully determined and released;
// conditionally witnessed ones stay for later contexts.
func (t *precedingT) creditClosed(f *cond.Formula, emit emitFn) {
	if f.IsTrue() {
		for _, v := range t.closed {
			emit(0, Message{Kind: MsgDet, Var: v, Witness: f})
			emit(0, Message{Kind: MsgDet, Var: v, Final: true})
		}
		t.closed = t.closed[:0]
		return
	}
	for _, v := range t.closed {
		emit(0, Message{Kind: MsgDet, Var: v, Witness: f})
	}
}
