package spexnet

import (
	"testing"

	"repro/internal/cond"
	"repro/internal/xmlstream"
)

// feedAll drives a transducer with a message sequence and collects its
// port-0 output (port 1 for the second return value, used by split).
func feedAll(t transducer, input int, msgs []Message) (port0, port1 []Message) {
	emit := func(port int, m Message) {
		if port == 0 {
			port0 = append(port0, m)
		} else {
			port1 = append(port1, m)
		}
	}
	for i := range msgs {
		t.feed(input, &msgs[i], emit)
	}
	return port0, port1
}

func msgs(evs ...Message) []Message { return evs }

func start(name string) Message { return docMsg(xmlstream.Start(name)) }
func end(name string) Message   { return docMsg(xmlstream.End(name)) }
func startDoc() Message         { return docMsg(xmlstream.Event{Kind: xmlstream.StartDocument}) }
func endDoc() Message           { return docMsg(xmlstream.Event{Kind: xmlstream.EndDocument}) }

func render(ms []Message) string {
	out := ""
	for i, m := range ms {
		if i > 0 {
			out += " "
		}
		out += m.String()
	}
	return out
}

var testCfg = &netConfig{}

// TestChildTransducerDirect exercises CH(l) at the message level: Example
// III.1's T1 in isolation.
func TestChildTransducerDirect(t *testing.T) {
	ch := newChild("a", testCfg)
	out, _ := feedAll(ch, 0, msgs(
		actMsg(cond.True()), startDoc(),
		start("a"), // matched: child of the activated <$>
		start("a"), // not matched: grandchild
		end("a"),
		end("a"),
		start("b"), // wrong label
		end("b"),
		endDoc(),
	))
	want := "<$> [true] <a> <a> </a> </a> <b> </b> </$>"
	if render(out) != want {
		t.Fatalf("got  %s\nwant %s", render(out), want)
	}
	if st := ch.stackStats(); st.MaxStack != 3 {
		t.Errorf("MaxStack: %d, want 3", st.MaxStack)
	}
}

// TestChildTransducerMergesActivations: two activations before one start
// merge by disjunction (Fig. 2's activated2 handling).
func TestChildTransducerMergesActivations(t *testing.T) {
	ch := newChild("a", testCfg)
	v1, v2 := cond.Var(1), cond.Var(2)
	out, _ := feedAll(ch, 0, msgs(
		actMsg(v1), actMsg(v2), start("x"),
		start("a"), end("a"),
		end("x"),
	))
	// The match formula is v1∨v2.
	found := false
	for _, m := range out {
		if m.Kind == MsgActivation {
			found = true
			if m.Formula.String() != "v1∨v2" {
				t.Fatalf("formula: %s", m.Formula)
			}
		}
	}
	if !found {
		t.Fatal("no activation emitted")
	}
}

// TestClosureTransducerChain checks the e-mark behaviour of Fig. 3
// transition 8: a non-matching element suspends the scope.
func TestClosureTransducerChain(t *testing.T) {
	cl := newClosure("a", testCfg)
	out, _ := feedAll(cl, 0, msgs(
		actMsg(cond.True()), start("r"),
		start("a"), // in scope: matched
		start("x"), // suspends
		start("a"), // NOT matched (below x)
		end("a"),
		end("x"),
		start("a"), // matched again (chain resumes below first a)
		end("a"),
		end("a"),
		end("r"),
	))
	var matches int
	for _, m := range out {
		if m.Kind == MsgActivation {
			matches++
		}
	}
	if matches != 2 {
		t.Fatalf("matched %d times, want 2:\n%s", matches, render(out))
	}
}

// TestVCTransducerLifecycle: variable creation, conjunction and scope-exit
// finalization with id recycling.
func TestVCTransducerLifecycle(t *testing.T) {
	pool := cond.NewPool()
	q := pool.DeclareQualifier(nil)
	vc := newVC(q, pool, testCfg)
	out, _ := feedAll(vc, 0, msgs(
		actMsg(cond.True()), start("a"),
		end("a"),
		actMsg(cond.True()), start("b"),
		end("b"),
	))
	// Finalization travels after the end message (see vcT.feed).
	want := "[v0] <a> </a> {v0,close} [v0] <b> </b> {v0,close}"
	if render(out) != want {
		t.Fatalf("got  %s\nwant %s", render(out), want)
	}
	// The id was recycled between the instances.
	if pool.Allocated() != 1 {
		t.Fatalf("allocated %d ids, want 1 (recycled)", pool.Allocated())
	}
}

// TestSplitDuplicates: SP forwards everything to both tapes (Fig. 8).
func TestSplitDuplicates(t *testing.T) {
	sp := newSplit()
	p0, p1 := feedAll(sp, 0, msgs(actMsg(cond.True()), start("a"), end("a")))
	if render(p0) != render(p1) || len(p0) != 3 {
		t.Fatalf("p0=%s p1=%s", render(p0), render(p1))
	}
}

// TestJoinANDGate: the join buffers the whole step, then forwards each
// document message once with the non-document messages of both branches
// kept on their side of it (Fig. 9), deduplicating identical determination
// messages that arrived via both branches of a split.
func TestJoinANDGate(t *testing.T) {
	jo := newJoin()
	var out []Message
	emit := func(_ int, m Message) { out = append(out, m) }
	det := Message{Kind: MsgDet, Var: 7, Final: true}
	act, sa := actMsg(cond.Var(1)), start("a")
	// Left branch delivers an activation + doc + trailing det, right
	// branch the same det after its doc copy.
	jo.feed(0, &act, emit)
	jo.feed(0, &sa, emit)
	jo.feed(0, &det, emit)
	jo.feed(1, &sa, emit)
	jo.feed(1, &det, emit)
	if len(out) != 0 {
		t.Fatalf("join fired before the step ended: %s", render(out))
	}
	jo.endStep(emit)
	want := "[v1] <a> {v7,close}"
	if render(out) != want {
		t.Fatalf("got  %s\nwant %s", render(out), want)
	}
	// The buffers reset for the next step.
	ea := end("a")
	jo.feed(0, &ea, emit)
	jo.feed(1, &ea, emit)
	out = nil
	jo.endStep(emit)
	if render(out) != "</a>" {
		t.Fatalf("second step: %s", render(out))
	}
}

// TestUnionMergesPerDocMessage: UN merges the activations preceding one
// document message into their disjunction (Fig. 10).
func TestUnionMergesPerDocMessage(t *testing.T) {
	un := newUnion(testCfg)
	out, _ := feedAll(un, 0, msgs(
		actMsg(cond.Var(1)), actMsg(cond.Var(2)), start("a"),
		end("a"),
		actMsg(cond.Var(3)), start("b"),
	))
	want := "[v1∨v2] <a> </a> [v3] <b>"
	if render(out) != want {
		t.Fatalf("got  %s\nwant %s", render(out), want)
	}
}

// TestVFRestrictsFormulas: VF(q+) keeps only the qualifier's variables;
// VF(q-) drops exactly those.
func TestVFRestrictsFormulas(t *testing.T) {
	pool := cond.NewPool()
	q1 := pool.DeclareQualifier(nil)
	q2 := pool.DeclareQualifier(nil)
	v1 := pool.Fresh(q1)
	v2 := pool.Fresh(q2)
	f := cond.And(cond.Var(v1), cond.Var(v2))

	plus := newVF(q1, pool, true)
	out, _ := feedAll(plus, 0, msgs(actMsg(f)))
	if len(out) != 1 || out[0].Formula.String() != "v0" {
		t.Fatalf("VF(q+): %s", render(out))
	}

	minus := newVF(q1, pool, false)
	out, _ = feedAll(minus, 0, msgs(actMsg(f)))
	if len(out) != 1 || out[0].Formula.String() != "v1" {
		t.Fatalf("VF(q-): %s", render(out))
	}
}

// TestVDEmitsWitnesses: VD turns activations into determination messages,
// one per variable of its qualifier, consuming the activation.
func TestVDEmitsWitnesses(t *testing.T) {
	pool := cond.NewPool()
	q := pool.DeclareQualifier(nil)
	v1 := pool.Fresh(q)
	v2 := pool.Fresh(q)
	vd := newVD(q, pool, testCfg)
	out, _ := feedAll(vd, 0, msgs(
		actMsg(cond.Or(cond.Var(v1), cond.Var(v2))),
		start("x"),
	))
	want := "{v0,true} {v1,true} <x>"
	if render(out) != want {
		t.Fatalf("got  %s\nwant %s", render(out), want)
	}
}

// TestVDNestedWitness: with nested qualifiers, the witness carries the
// residual condition of the inner variables.
func TestVDNestedWitness(t *testing.T) {
	pool := cond.NewPool()
	inner := pool.DeclareQualifier(nil)
	outer := pool.DeclareQualifier([]cond.QualID{inner})
	vi := pool.Fresh(inner)
	vo := pool.Fresh(outer)
	vd := newVD(outer, pool, testCfg)
	out, _ := feedAll(vd, 0, msgs(actMsg(cond.And(cond.Var(vo), cond.Var(vi)))))
	if len(out) != 1 {
		t.Fatalf("got %s", render(out))
	}
	m := out[0]
	if m.Kind != MsgDet || m.Var != vo || m.Witness.String() != "v0" {
		t.Fatalf("got %s (witness %s)", m, m.Witness)
	}
}
