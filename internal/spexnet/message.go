// Package spexnet implements the SPEX evaluation model of the paper (§III):
// a regular path expression with qualifiers is translated — in time linear in
// the expression size (Lemma V.1) — into a single-source single-sink DAG of
// pushdown transducers, and the XML stream is pushed through the network one
// document message at a time. Result fragments leave the output transducer
// progressively, in document order, buffered only while their membership in
// the result is undetermined (§III.8).
package spexnet

import (
	"repro/internal/cond"
	"repro/internal/xmlstream"
)

// MsgKind classifies messages exchanged between SPEX transducers
// (Definition 2 of the paper).
type MsgKind uint8

const (
	// MsgDoc is a document message: an element or document boundary event
	// (or character data, which rides along unmodified).
	MsgDoc MsgKind = iota
	// MsgActivation is an activation message [f]: it arms the receiving
	// transducer with condition formula f for the document message that
	// immediately follows.
	MsgActivation
	// MsgDet is a condition determination message. The paper's {c,true}
	// is Det{Var: c, Witness: cond.True()}; the paper's {c,false}, sent
	// by the variable-creator when an instance's scope closes, is
	// Det{Var: c, Final: true}. A Witness carrying an undetermined
	// formula generalizes {c,true} to nested qualifiers: the variable is
	// satisfied as soon as the witness formula is (see DESIGN.md §2).
	MsgDet
)

// Message is one message on a transducer tape.
type Message struct {
	Kind    MsgKind
	Ev      xmlstream.Event // MsgDoc
	Formula *cond.Formula   // MsgActivation
	Var     cond.VarID      // MsgDet
	Final   bool            // MsgDet: scope-exit finalization from VC
	Witness *cond.Formula   // MsgDet: witness contribution from VD
}

// docMsg wraps an event as a document message.
func docMsg(ev xmlstream.Event) Message { return Message{Kind: MsgDoc, Ev: ev} }

// actMsg wraps a formula as an activation message.
func actMsg(f *cond.Formula) Message { return Message{Kind: MsgActivation, Formula: f} }

// String renders the message in the paper's notation.
func (m Message) String() string {
	switch m.Kind {
	case MsgDoc:
		return m.Ev.String()
	case MsgActivation:
		return "[" + m.Formula.String() + "]"
	case MsgDet:
		if m.Final {
			return "{" + cond.Var(m.Var).String() + ",close}"
		}
		return "{" + cond.Var(m.Var).String() + "," + m.Witness.String() + "}"
	default:
		return "?"
	}
}
