package spexnet

import (
	"fmt"
	"testing"

	"repro/internal/rpeq"
)

// TestFanoutInsertion: a multi-query network with shared prefixes must route
// the shared tape through explicit FO junctions — every tape single-reader —
// while a single-query network stays junction-free.
func TestFanoutInsertion(t *testing.T) {
	single, err := Build(rpeq.MustParse("_*.a[b].c"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := single.Fanouts(); got != 0 {
		t.Fatalf("single-query network has %d fan-outs, want 0", got)
	}

	specs := make([]Spec, 8)
	counts := make([]int64, 8)
	for i := range specs {
		i := i
		specs[i] = Spec{
			Expr: rpeq.MustParse(fmt.Sprintf("_*.a[b].c%d", i)),
			Mode: ModeNodes,
			Sink: func(Result) { counts[i]++ },
		}
	}
	net, err := BuildSet(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Fanouts(); got == 0 {
		t.Fatal("shared-prefix network has no fan-out junctions")
	}
	// Every tape must now have exactly one reader.
	readers := map[int]int{}
	for i := range net.nodes {
		for _, tape := range net.nodes[i].ins {
			readers[tape]++
		}
	}
	for tape, n := range readers {
		if n != 1 {
			t.Fatalf("tape %d has %d readers after fan-out insertion", tape, n)
		}
	}

	// And the reordered network must still evaluate correctly: only the
	// first <a> has a <b> child, so only its c-children match.
	doc := `<a><b/><c0/><c3/><c7/></a><a><c1/></a>`
	if _, err := net.Run(srcOf("<r>" + doc + "</r>")); err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 0, 0, 1, 0, 0, 0, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("query %d: got %d matches, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
}

// TestFanoutTopologicalOrder: after fan-out insertion each junction must
// appear before all of its readers, or messages of a step would be dropped.
func TestFanoutTopologicalOrder(t *testing.T) {
	var specs []Spec
	for i := 0; i < 20; i++ {
		specs = append(specs, Spec{Expr: rpeq.MustParse(fmt.Sprintf("_*.Topic[editor].f%d", i)), Mode: ModeCount})
	}
	net, err := BuildSet(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	producerAt := map[int]int{} // tape -> node index producing it
	for i := range net.nodes {
		for _, tape := range net.nodes[i].outs {
			producerAt[tape] = i
		}
	}
	for i := range net.nodes {
		for _, tape := range net.nodes[i].ins {
			if p, ok := producerAt[tape]; ok && p >= i {
				t.Fatalf("node %d (%s) reads tape %d produced by later node %d (%s)",
					i, net.nodes[i].t.name(), tape, p, net.nodes[p].t.name())
			}
		}
	}
}

// TestFanoutAgreesWithSoloQueries: identical answers whether queries run in
// one shared network (with fan-outs) or one network each.
func TestFanoutAgreesWithSoloQueries(t *testing.T) {
	queries := []string{"_*.a[b].c", "_*.a.c", "_*.a[b]", "_*.c", "_*.a[b].c"}
	doc := `<a><a><c>first</c></a><b/><c>second</c></a>`

	shared := make([]int64, len(queries))
	var specs []Spec
	for i, q := range queries {
		i := i
		specs = append(specs, Spec{Expr: rpeq.MustParse(q), Mode: ModeNodes, Sink: func(Result) { shared[i]++ }})
	}
	net, err := BuildSet(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(srcOf(doc)); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		solo, err := Build(rpeq.MustParse(q), Options{Mode: ModeCount})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := solo.Run(srcOf(doc))
		if err != nil {
			t.Fatal(err)
		}
		if shared[i] != stats.Output.Matches {
			t.Errorf("%s: shared %d vs solo %d", q, shared[i], stats.Output.Matches)
		}
	}
}
