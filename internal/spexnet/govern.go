package spexnet

import (
	"repro/internal/cond"
	"repro/internal/governor"
	"repro/internal/obs"
)

// govern is the per-network runtime of the resource governor: it holds the
// configured caps, the sticky failure (PolicyFail terminates the run at the
// end of the step that tripped), and the trip accounting surfaced through
// Stats and the spex_governor_* metrics.
//
// All methods run on the evaluation goroutine; the only cross-goroutine
// traffic is the atomic obs counters.
type govern struct {
	cfg     *governor.Config
	metrics *obs.Metrics // may be nil

	// err is the sticky PolicyFail outcome: once set, Step returns it and
	// every check short-circuits, so one run reports exactly one failure.
	err *governor.LimitError
	// shedAll requests a network-level shed (a trip on a resource not
	// attributable to one sink under PolicyShed); Step acts on it after the
	// current propagation completes.
	shedAll bool

	trips    [governor.NumResources]int64
	fails    int64
	degrades int64
	sheds    int64
}

// newGovern returns a runtime for cfg, or nil when cfg constrains nothing —
// the nil govern is the uninstrumented fast path (one pointer test per hook).
func newGovern(cfg *governor.Config, metrics *obs.Metrics) *govern {
	if !cfg.Enabled() {
		return nil
	}
	return &govern{cfg: cfg, metrics: metrics}
}

// limit returns the configured cap for r (0 = unlimited).
func (g *govern) limit(r governor.Resource) int {
	return g.cfg.Limits.Of(r)
}

// active reports whether checks should still run: a failed run stops
// accounting (the one failure is the outcome).
func (g *govern) active() bool { return g != nil && g.err == nil }

// trip records one tripped cap and returns the effective policy for the
// caller to apply. Under PolicyFail it installs the sticky error.
func (g *govern) trip(r governor.Resource, observed int, sub string) governor.Policy {
	p := g.cfg.Effective(r)
	g.trips[r]++
	switch p {
	case governor.PolicyFail:
		g.fails++
		g.fail(r, observed, sub)
	case governor.PolicyDegrade:
		g.degrades++
	case governor.PolicyShed:
		g.sheds++
	}
	g.metrics.NoteGovernor(r, p)
	return p
}

// tripFail records a trip that must fail regardless of the configured
// policy — a degraded sink that still exceeds its cap has nowhere left to
// degrade to.
func (g *govern) tripFail(r governor.Resource, observed int, sub string) {
	g.trips[r]++
	g.fails++
	g.fail(r, observed, sub)
	g.metrics.NoteGovernor(r, governor.PolicyFail)
}

func (g *govern) fail(r governor.Resource, observed int, sub string) {
	if g.err == nil {
		g.err = &governor.LimitError{
			Resource: r,
			Observed: observed,
			Limit:    g.limit(r),
			Policy:   governor.PolicyFail,
			Sub:      sub,
		}
	}
}

// checkFormula is the formula-size hook. Every condition formula the engine
// builds flows through netConfig.or/and or a sink-side Assign, so checking
// here bounds formula growth network-wide (the o(φ) bound of §V, enforced).
// Formula size is not attributable to one sink and count-only mode cannot
// shrink a formula, so PolicyShed sheds the whole network and PolicyDegrade
// falls back to PolicyFail (governor.Resource.Reducible).
func (n *netConfig) checkFormula(f *cond.Formula) {
	g := n.gov
	if f == nil || !g.active() {
		return
	}
	if max := g.limit(governor.ResFormula); max > 0 && f.Size() > max {
		if g.trip(governor.ResFormula, f.Size(), "") == governor.PolicyShed {
			g.shedAll = true
		}
	}
}

// GovernorOutcome summarizes what the governor did during a run.
type GovernorOutcome struct {
	Trips    int64 // limit trips, summed over resources
	Fails    int64 // trips that terminated the run
	Degrades int64 // sinks switched to count-only mode
	Sheds    int64 // sinks (or whole networks) shed
}

func (g *govern) outcome() GovernorOutcome {
	if g == nil {
		return GovernorOutcome{}
	}
	var total int64
	for _, n := range g.trips {
		total += n
	}
	return GovernorOutcome{Trips: total, Fails: g.fails, Degrades: g.degrades, Sheds: g.sheds}
}
