package spexnet

import "repro/internal/xmlstream"

// StreamSink receives answers progressively, event by event: the
// "progressive processing" of the paper's abstract taken to its limit —
// once an answer at the head of the document-order queue is known to be in
// the result, its content is forwarded as it arrives instead of being
// buffered until its subtree closes. Only answers behind an undecided or
// unfinished earlier answer are buffered (and replayed when they reach the
// head).
type StreamSink interface {
	// ResultStart announces the answer rooted at the node with the given
	// document-order index and label.
	ResultStart(index int64, name string)
	// ResultEvent delivers one content event of the current answer,
	// beginning with its own start event.
	ResultEvent(ev xmlstream.Event)
	// ResultEnd closes the current answer.
	ResultEnd(index int64)
}

// funcStreamSink adapts three funcs to StreamSink; any may be nil.
type funcStreamSink struct {
	start func(int64, string)
	event func(xmlstream.Event)
	end   func(int64)
}

func (s funcStreamSink) ResultStart(i int64, n string) {
	if s.start != nil {
		s.start(i, n)
	}
}

func (s funcStreamSink) ResultEvent(ev xmlstream.Event) {
	if s.event != nil {
		s.event(ev)
	}
}

func (s funcStreamSink) ResultEnd(i int64) {
	if s.end != nil {
		s.end(i)
	}
}

// NewStreamSink builds a StreamSink from callbacks; any may be nil.
func NewStreamSink(start func(int64, string), event func(xmlstream.Event), end func(int64)) StreamSink {
	return funcStreamSink{start: start, event: event, end: end}
}
