package spexnet

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// runOn evaluates expr over the given document (as XML text), in count
// mode, returning the stats; options may tweak the build.
func runOn(t *testing.T, expr string, doc *dataset.Doc, raw bool) Stats {
	t.Helper()
	net, err := Build(rpeq.MustParse(expr), Options{Mode: ModeCount, RawFormulas: raw})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(doc.Stream())
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestDepthStackBound validates Lemma V.2: depth stacks hold at most d
// entries (plus the document node), for all transducers, however large the
// stream.
func TestDepthStackBound(t *testing.T) {
	for _, d := range []int{5, 50, 400} {
		stats := runOn(t, "_*.a[a].a", dataset.Recursive("a", d), false)
		if stats.MaxDepth != d {
			t.Fatalf("depth %d: stream depth measured %d", d, stats.MaxDepth)
		}
		if stats.MaxStack > d+1 {
			t.Errorf("depth %d: max stack %d exceeds d+1", d, stats.MaxStack)
		}
		if stats.MaxStack < d {
			t.Errorf("depth %d: max stack %d suspiciously small", d, stats.MaxStack)
		}
	}
}

// TestFormulaSizeConstantWithoutQualifiers validates the §V case analysis
// for rpeq*: without qualifiers the only condition formula is "true", so
// σ(φ) = 1.
func TestFormulaSizeConstantWithoutQualifiers(t *testing.T) {
	for _, expr := range []string{"_*.a", "a+.b+", "(a|b).c?", "_*._"} {
		stats := runOn(t, expr, dataset.RandomTree(11, 6, 3, nil), false)
		if stats.MaxFormula > 1 {
			t.Errorf("%s: max formula size %d, want 1", expr, stats.MaxFormula)
		}
	}
}

// TestFormulaSizeQualifiersNoClosure validates the rpeq! case: with n
// qualifiers and no closure, formulas are conjunctions of at most min(n,d)
// variables.
func TestFormulaSizeQualifiersNoClosure(t *testing.T) {
	// Query with n=3 qualifiers along a child path.
	expr := "a[a].a[a].a[a].a"
	stats := runOn(t, expr, dataset.Recursive("a", 40), false)
	// σ ≤ min(n,d) = 3 variables (+1 tolerance for the conjunction with
	// a constant during construction).
	if stats.MaxFormula > 4 {
		t.Errorf("max formula size %d, want ≤ 4", stats.MaxFormula)
	}
}

// TestFormulaSizeClosureQualifier validates the rpeq*! case on the
// sequential-matching assumption of Remark V.1: with normalization, a
// qualifier over a closure step keeps Σnᵢ ≤ d, so formulas stay linear in
// the depth.
func TestFormulaSizeClosureQualifier(t *testing.T) {
	for _, d := range []int{8, 16, 32} {
		stats := runOn(t, "_+[q]._", dataset.Ladder(d), false)
		if stats.MaxFormula > d+1 {
			t.Errorf("depth %d: max formula %d exceeds d+1", d, stats.MaxFormula)
		}
	}
}

// TestFormulaNormalizationAblation compares normalized and raw formula
// growth (the Remark V.1 design choice): on nested closure scopes the raw
// variant produces strictly larger formulas.
func TestFormulaNormalizationAblation(t *testing.T) {
	doc := dataset.Ladder(16)
	norm := runOn(t, "_+[q]._", doc, false)
	raw := runOn(t, "_+[q]._", doc, true)
	if norm.Output.Matches != raw.Output.Matches {
		t.Fatalf("ablation changed the answer: %d vs %d", norm.Output.Matches, raw.Output.Matches)
	}
	if raw.MaxFormula < norm.MaxFormula {
		t.Errorf("raw formulas (%d) smaller than normalized (%d)", raw.MaxFormula, norm.MaxFormula)
	}
}

// TestNestedMatchingNeedsStack exercises the Theorem IV.1 scenario: the
// query a must select only children of the root, not the arbitrarily deeply
// nested a elements below them — which requires counting nesting, i.e. a
// pushdown store.
func TestNestedMatchingNeedsStack(t *testing.T) {
	for _, d := range []int{3, 20, 100} {
		var sb strings.Builder
		// Root r with one a child containing a chain of d nested a's.
		sb.WriteString("<r>")
		for i := 0; i < d; i++ {
			sb.WriteString("<a>")
		}
		for i := 0; i < d; i++ {
			sb.WriteString("</a>")
		}
		sb.WriteString("<x><a></a></x>")
		sb.WriteString("</r>")
		node := rpeq.MustParse("r.a")
		var count int
		net, err := Build(node, Options{Mode: ModeNodes, Sink: func(r Result) {
			count++
			if r.Index != 2 {
				t.Errorf("depth %d: selected index %d, want only 2", d, r.Index)
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(srcOf(sb.String())); err != nil {
			t.Fatal(err)
		}
		if count != 1 {
			t.Errorf("depth %d: selected %d nodes, want 1", d, count)
		}
	}
}

// TestConstantMemoryAcrossSizes validates the §VI observation that SPEX
// memory does not grow with the stream: for a class-1 query over
// DMOZ-shaped documents of growing size, the structural memory (stack
// entries, queued candidates, buffered events) stays bounded by the
// (constant) depth.
func TestConstantMemoryAcrossSizes(t *testing.T) {
	var prev Stats
	for i, scale := range []float64{0.0005, 0.002, 0.008} {
		stats := runOn(t, "_*.Topic.Title", dataset.DMOZStructure(scale), false)
		if stats.MaxStack > stats.MaxDepth+1 {
			t.Errorf("scale %v: stack %d exceeds depth bound", scale, stats.MaxStack)
		}
		if stats.Output.MaxBufferedEvs != 0 {
			t.Errorf("scale %v: count mode buffered %d events", scale, stats.Output.MaxBufferedEvs)
		}
		if stats.Output.MaxQueued > 4 {
			t.Errorf("scale %v: %d candidates queued; class-1 queries decide immediately", scale, stats.Output.MaxQueued)
		}
		if i > 0 && stats.MaxStack > prev.MaxStack+1 {
			t.Errorf("structural memory grew with stream size: %d → %d", prev.MaxStack, stats.MaxStack)
		}
		prev = stats
	}
}

// TestFutureConditionBuffering: a class-2 query ("future condition") must
// buffer candidates until the qualifier resolves, and release them then —
// the §III.8 "buffers messages only if their membership ... is not yet
// determined".
func TestFutureConditionBuffering(t *testing.T) {
	// name precedes province in each country? No: the generator puts
	// name first, so _*.country[province].name is a future condition.
	stats := runOn(t, "_*.country[province].name", dataset.Mondial(0.05), false)
	if stats.Output.MaxQueued == 0 {
		t.Error("future condition should queue undetermined candidates")
	}
	if stats.Output.Matches == 0 || stats.Output.Dropped == 0 {
		t.Errorf("expected both matches and drops, got %+v", stats.Output)
	}
	// Past condition: religions comes after the provinces, so for
	// countries with provinces the condition is already true when the
	// candidate appears. Only candidates from province-less countries
	// (whose instance stays open until </country> and then fails) queue,
	// so the queue stays a handful of entries instead of growing with
	// the matches.
	past := runOn(t, "_*.country[province].religions", dataset.Mondial(0.05), false)
	if past.Output.Matches == 0 {
		t.Error("past-condition query found nothing")
	}
	if past.Output.MaxQueued > 4 {
		t.Errorf("past condition queued %d candidates; should stay bounded by religions-per-country", past.Output.MaxQueued)
	}
}

// TestNetworkSizeLinear is E8: network degree and build time are linear in
// the expression length.
func TestNetworkSizeLinear(t *testing.T) {
	type point struct{ size, degree int }
	var pts []point
	expr := "a[b]"
	for i := 0; i < 7; i++ {
		node := rpeq.MustParse(expr)
		net, err := Build(node, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{node.Size(), net.Degree()})
		expr += ".(a|c)+?"
		expr = strings.Replace(expr, "+?", "?", 1) // keep grammar-valid growth
	}
	for i := 1; i < len(pts); i++ {
		dDeg := pts[i].degree - pts[i-1].degree
		dSize := pts[i].size - pts[i-1].size
		if dSize <= 0 {
			t.Fatalf("expression did not grow: %+v", pts)
		}
		if dDeg > 6*dSize {
			t.Errorf("network growth superlinear: Δdegree=%d for Δsize=%d", dDeg, dSize)
		}
	}
}

func srcOf(doc string) xmlstream.Source {
	return xmlstream.NewScanner(strings.NewReader(doc))
}

func TestStatsReporting(t *testing.T) {
	net, err := Build(rpeq.MustParse("a.b"), Options{Mode: ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(srcOf("<a><b></b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elements != 2 || stats.MaxDepth != 2 || stats.Events != 6 {
		t.Fatalf("stats: %+v", stats)
	}
	ts := net.TransducerStats()
	if len(ts) != net.Degree() {
		t.Fatalf("TransducerStats has %d entries, degree %d", len(ts), net.Degree())
	}
	found := false
	for k := range ts {
		if strings.Contains(k, "CH(a)") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing CH(a) in %v", ts)
	}
}

func ExampleBuild() {
	node := rpeq.MustParse("_*.a[b].c")
	net, _ := Build(node, Options{Mode: ModeNodes, Sink: func(r Result) {
		fmt.Printf("%s@%d\n", r.Name, r.Index)
	}})
	net.Run(srcOf(`<a><a><c></c></a><b></b><c></c></a>`))
	// Output: c@5
}
