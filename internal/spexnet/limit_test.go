package spexnet

import (
	"strings"
	"testing"

	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// TestNullableQualifierEliminated pins the earliest-decision static analysis
// on the network itself: a qualifier whose condition matches the empty path
// is a tautology, so compilation drops the condition sub-network entirely and
// the qualified expression compiles to exactly the same network as its base.
func TestNullableQualifierEliminated(t *testing.T) {
	base, err := Build(rpeq.MustParse("_*.a.c"), Options{Mode: ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	qual, err := Build(rpeq.MustParse("_*.a[b*].c"), Options{Mode: ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	if qual.Degree() != base.Degree() {
		t.Fatalf("nullable qualifier not eliminated: degree %d, base degree %d",
			qual.Degree(), base.Degree())
	}
	// And the semantics agree on a document where the condition never holds
	// structurally: <a> elements with no <b> child still qualify under [b*].
	doc := `<r><a><c/></a><a><c/><c/></a></r>`
	s1, err := base.Run(xmlstream.NewScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := qual.Run(xmlstream.NewScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Output.Matches != s2.Output.Matches || s2.Output.Matches != 3 {
		t.Fatalf("matches: base %d, qualified %d, want 3", s1.Output.Matches, s2.Output.Matches)
	}
}

// TestNonNullableQualifierKept is the negative control: a condition that can
// fail must keep its sub-network and must filter.
func TestNonNullableQualifierKept(t *testing.T) {
	base, err := Build(rpeq.MustParse("_*.a.c"), Options{Mode: ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	qual, err := Build(rpeq.MustParse("_*.a[b].c"), Options{Mode: ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	if qual.Degree() <= base.Degree() {
		t.Fatalf("non-nullable qualifier lost its condition network: degree %d <= base %d",
			qual.Degree(), base.Degree())
	}
	doc := `<r><a><c/></a><a><b/><c/><c/></a></r>`
	st, err := qual.Run(xmlstream.NewScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Output.Matches != 2 {
		t.Fatalf("qualified matches = %d, want 2", st.Output.Matches)
	}
}

// TestLimitDeterminesMidStream drives a limited network event by event and
// checks that the answer is determined as soon as the Limit-th answer is
// emitted — long before the document ends — and that a released network
// freezes its stats and ignores further Steps.
func TestLimitDeterminesMidStream(t *testing.T) {
	var got []string
	net, err := Build(rpeq.MustParse("_*.c"), Options{
		Mode:  ModeNodes,
		Limit: 2,
		Sink:  func(r Result) { got = append(got, r.Name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := `<r><c/><c/><c/><c/><c/></r>`
	sc := xmlstream.NewScanner(strings.NewReader(doc))
	steps := 0
	for {
		ev, err := sc.Next()
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if err := net.Step(ev); err != nil {
			t.Fatalf("step %d: %v", steps, err)
		}
		steps++
		if net.AnswerDetermined() {
			break
		}
		if ev.Kind == xmlstream.EndDocument {
			t.Fatal("stream ended without determination")
		}
	}
	// Determination fires on the close of the second <c/>; the three
	// remaining <c/> elements and </r> are never needed.
	if len(got) != 2 {
		t.Fatalf("answers at determination = %d, want 2", len(got))
	}
	net.Release()
	if !net.AnswerDetermined() {
		t.Fatal("released network lost its determined status")
	}
	if m := net.Matches(); m != 2 {
		t.Fatalf("frozen Matches() = %d, want 2", m)
	}
	// Step after Release must be a no-op, not a panic.
	if err := net.Step(xmlstream.Event{Kind: xmlstream.StartElement, Name: "c"}); err != nil {
		t.Fatalf("step after release: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("released network still emitted answers: %d", len(got))
	}
}

// TestUnlimitedNeverDetermines pins that an unlimited single-query network
// only reports determination at end of stream, keeping Run's early-stop
// strictly opt-in.
func TestUnlimitedNeverDetermines(t *testing.T) {
	net, err := Build(rpeq.MustParse("_*.c"), Options{Mode: ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	doc := `<r><c/><c/></r>`
	sc := xmlstream.NewScanner(strings.NewReader(doc))
	for {
		ev, err := sc.Next()
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if err := net.Step(ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == xmlstream.EndDocument {
			break
		}
		if net.AnswerDetermined() {
			t.Fatal("unlimited network determined mid-stream")
		}
	}
	if err := net.Finish(); err != nil {
		t.Fatal(err)
	}
	if net.Matches() != 2 {
		t.Fatalf("matches = %d, want 2", net.Matches())
	}
}
