package spexnet

import "repro/internal/cond"

// vcT is the variable-creator transducer VC(q) of §III.5.1. For each
// qualifier instance — each activation reaching it — it allocates a fresh
// condition variable c, forwards the activation as [f ∧ c], and when the
// instance's scope (the subtree of the activated element) closes it emits
// the finalization message, the paper's {c,false}: if no witness satisfied c
// by then, c is false.
type vcT struct {
	q    cond.QualID
	pool *cond.Pool
	cfg  *netConfig
	// neg marks the variable-creator of a negated qualifier base[not(cond)]:
	// its instances are innocent until proven guilty. Surviving to scope exit
	// with no inner match means not(cond) holds, so the scope-exit messages
	// are {c,true} followed by the finalization, instead of the positive
	// construction's bare {c,false} finalization. An inner match kills the
	// instance earlier through the negated determinant (nvdT); the output
	// transducer's first-determination-wins rule lets that kill stand.
	neg bool

	pending *cond.Formula
	hasPend bool
	// vars[k] holds the variable whose scope is the k-th open node, or
	// noVar.
	vars []cond.VarID
	has  []bool

	st StackStats
}

func newVC(q cond.QualID, pool *cond.Pool, cfg *netConfig) *vcT {
	return &vcT{q: q, pool: pool, cfg: cfg}
}

// newNegVC is the variable-creator of a negated qualifier (see vcT.neg).
func newNegVC(q cond.QualID, pool *cond.Pool, cfg *netConfig) *vcT {
	return &vcT{q: q, pool: pool, cfg: cfg, neg: true}
}

func (t *vcT) name() string {
	if t.neg {
		return "VC(!q)"
	}
	return "VC(q)"
}

func (t *vcT) stackStats() StackStats {
	s := t.st
	s.Cur = len(t.vars)
	return s
}

func (t *vcT) feed(_ int, m *Message, emit emitFn) {
	switch m.Kind {
	case MsgActivation:
		t.pending = t.cfg.or(t.pending, m.Formula)
		t.hasPend = true
		t.st.noteFormula(t.pending)
	case MsgDet:
		emit(0, *m)
	case MsgDoc:
		ev := m.Ev
		switch {
		case isStart(ev):
			var v cond.VarID
			created := false
			if t.hasPend {
				v = t.pool.Fresh(t.q)
				f := t.cfg.and(t.pending, t.pool.Var(v))
				t.st.noteFormula(f)
				emit(0, actMsg(f))
				created = true
				t.pending = nil
				t.hasPend = false
			}
			t.vars = append(t.vars, v)
			t.has = append(t.has, created)
			t.st.noteStack(len(t.vars))
			emit(0, *m)
		case isEnd(ev):
			t.pending = nil
			t.hasPend = false
			// Scope left: invalidate the instance (Fig. 6 transition 4's
			// {c,false}). The finalization travels AFTER the end message —
			// behaviourally equivalent for the paper's constructs, and it
			// lets downstream transducers that witness an instance at the
			// very end of its scope (the text-test transducer) get their
			// determination in first. After the finalization nothing can
			// mention the variable again, so its id returns to the pool —
			// this is what keeps memory bounded on unbounded streams.
			emit(0, *m)
			if n := len(t.vars); n > 0 {
				if t.has[n-1] {
					if t.neg {
						// Negated qualifier: the instance survived its whole
						// scope without an inner match — not(cond) holds, the
						// witness is true. It travels before the finalization.
						emit(0, Message{Kind: MsgDet, Var: t.vars[n-1], Witness: cond.True()})
					}
					emit(0, Message{Kind: MsgDet, Var: t.vars[n-1], Final: true})
					if !t.cfg.retainVars {
						t.pool.Release(t.vars[n-1])
					}
				}
				t.vars = t.vars[:n-1]
				t.has = t.has[:n-1]
			}
		default:
			emit(0, *m)
		}
	}
}

// vfT is the variable-filter transducer of §III.5.2. The positive filter
// VF(q+) rewrites activation formulas to retain only the variables of q and
// of qualifiers nested inside q's condition expression ("drops everything
// else but those variables"); the negative filter VF(q-) drops exactly
// those. Document and determination messages pass through unchanged.
type vfT struct {
	q        cond.QualID
	pool     *cond.Pool
	positive bool
	st       StackStats
}

func newVF(q cond.QualID, pool *cond.Pool, positive bool) *vfT {
	return &vfT{q: q, pool: pool, positive: positive}
}

func (t *vfT) name() string {
	if t.positive {
		return "VF(q+)"
	}
	return "VF(q-)"
}

func (t *vfT) stackStats() StackStats { return t.st }

func (t *vfT) feed(_ int, m *Message, emit emitFn) {
	if m.Kind != MsgActivation {
		emit(0, *m)
		return
	}
	keep := func(v cond.VarID) bool { return t.pool.WithinSubtree(v, t.q) }
	if !t.positive {
		inner := keep
		keep = func(v cond.VarID) bool { return !inner(v) }
	}
	f := m.Formula.Restrict(keep)
	t.st.noteFormula(f)
	emit(0, actMsg(f))
}

// vdT is the variable-determinant transducer of §III.5.3. Every activation
// reaching it witnesses the qualifier instances its formula mentions: for
// each variable c of qualifier q occurring in the (already filtered)
// formula, it emits a determination message. Where the paper emits {c,true}
// — every instance reaching VD is satisfied — this implementation emits the
// witness condition under which the instance is satisfied, which is the
// constant true except when qualifiers nest: then the witness is the
// residual formula of the variables nested below q (the DNF disjuncts
// containing c, with c projected out). Activations are consumed; document
// messages pass; determination messages from nested qualifiers pass through
// so they reach the output transducer (the paper's Fig. 7 predates nested
// determinations and drops them).
type vdT struct {
	q    cond.QualID
	pool *cond.Pool
	cfg  *netConfig
	st   StackStats
}

func newVD(q cond.QualID, pool *cond.Pool, cfg *netConfig) *vdT {
	return &vdT{q: q, pool: pool, cfg: cfg}
}

func (t *vdT) name() string { return "VD" }

func (t *vdT) stackStats() StackStats { return t.st }

func (t *vdT) feed(_ int, m *Message, emit emitFn) {
	if m.Kind != MsgActivation {
		emit(0, *m)
		return
	}
	t.st.noteFormula(m.Formula)
	// Fast path for the overwhelmingly common single-variable formula
	// (an unnested qualifier): the instance is satisfied outright.
	if m.Formula.Op() == cond.OpVar {
		var v cond.VarID
		m.Formula.Visit(func(w cond.VarID) { v = w })
		if t.pool.BelongsTo(v, t.q) {
			emit(0, Message{Kind: MsgDet, Var: v, Witness: cond.True()})
		}
		return
	}
	dnf := m.Formula.DNF()
	// Group disjuncts by the q-variables they contain.
	var order []cond.VarID
	witnesses := make(map[cond.VarID]*cond.Formula)
	for _, disjunct := range dnf {
		for _, v := range disjunct {
			if !t.pool.BelongsTo(v, t.q) {
				continue
			}
			rest := make([]cond.VarID, 0, len(disjunct)-1)
			for _, w := range disjunct {
				if w != v {
					rest = append(rest, w)
				}
			}
			w := cond.FromVars(rest)
			if prev, ok := witnesses[v]; ok {
				witnesses[v] = t.cfg.or(prev, w)
			} else {
				witnesses[v] = w
				order = append(order, v)
			}
		}
	}
	for _, v := range order {
		emit(0, Message{Kind: MsgDet, Var: v, Witness: witnesses[v]})
	}
}

// nvdT is the variable determinant of a negated qualifier base[not(cond)]:
// the dual of vdT. An activation reaching it proves cond selected a node
// within some open instances' scopes, which makes not(cond) false there — so
// for every variable of q the (filtered) formula mentions, it emits the kill
// {c,false} as a witness determination. The negated variable-creator emits
// {c,true} at scope exit for instances never killed. Soundness rests on the
// negated condition being qualifier-free (enforced when predicates are
// lowered and re-checked at compile time): the activation's q-variables are
// then conditioned on nothing, and an inner match is a structural fact of
// the document, killing the instance outright.
type nvdT struct {
	q    cond.QualID
	pool *cond.Pool
	st   StackStats
	seen []cond.VarID // scratch: per-activation variable dedupe
}

func newNVD(q cond.QualID, pool *cond.Pool) *nvdT {
	return &nvdT{q: q, pool: pool}
}

func (t *nvdT) name() string { return "VD(!)" }

func (t *nvdT) stackStats() StackStats { return t.st }

func (t *nvdT) feed(_ int, m *Message, emit emitFn) {
	if m.Kind != MsgActivation {
		emit(0, *m)
		return
	}
	t.st.noteFormula(m.Formula)
	seen := t.seen[:0]
	m.Formula.Visit(func(v cond.VarID) {
		if !t.pool.BelongsTo(v, t.q) {
			return
		}
		for _, s := range seen {
			if s == v {
				return
			}
		}
		seen = append(seen, v)
	})
	for _, v := range seen {
		emit(0, Message{Kind: MsgDet, Var: v, Witness: cond.False()})
	}
	t.seen = seen[:0]
}

// dropActT consumes activation messages and forwards everything else. It
// implements statically false qualifiers — base[not(cond)] where cond is
// nullable: the candidate itself witnesses cond at the event that opens it,
// so not(cond) never holds and base's selections are discarded wholesale.
type dropActT struct{ st StackStats }

func newDropAct() *dropActT { return &dropActT{} }

func (t *dropActT) name() string { return "DROP" }

func (t *dropActT) stackStats() StackStats { return t.st }

func (t *dropActT) feed(_ int, m *Message, emit emitFn) {
	if m.Kind == MsgActivation {
		return
	}
	emit(0, *m)
}
