package spexnet

import (
	"repro/internal/cond"
	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// attrTestT is the attribute-test transducer AT[pred] backing the path
// self-filter rpeq.AttrTest: an armed start message passes the filter iff the
// element's attributes satisfy pred. The start message carries the complete
// attribute list, so — unlike the text test, which must wait for the end
// message — the decision falls at the very message that opens the candidate:
// the activation is re-emitted (or dropped) before the start message is
// forwarded, and downstream transducers never learn of filtered-out nodes.
//
// Memory: one pending formula; no stack. The test is constant-memory and
// adds nothing to the depth bound of Lemma V.2.
type attrTestT struct {
	pred rpeq.AttrExpr
	cfg  *netConfig

	pending *cond.Formula
	st      StackStats
}

func newAttrTest(pred rpeq.AttrExpr, cfg *netConfig) *attrTestT {
	return &attrTestT{pred: pred, cfg: cfg}
}

func (t *attrTestT) name() string { return "AT[" + t.pred.String() + "]" }

func (t *attrTestT) stackStats() StackStats { return t.st }

func (t *attrTestT) feed(_ int, m *Message, emit emitFn) {
	switch m.Kind {
	case MsgActivation:
		t.pending = t.cfg.or(t.pending, m.Formula)
		t.st.noteFormula(t.pending)
	case MsgDet:
		emit(0, *m)
	case MsgDoc:
		ev := m.Ev
		switch {
		case isStart(ev):
			if t.pending != nil {
				// The document root <$> carries no attributes, so a
				// top-level attribute filter never selects it.
				if t.pred.Eval(func(name string) (string, bool) { return ev.Attr(name) }) {
					emit(0, actMsg(t.pending))
				}
				t.pending = nil
			}
			emit(0, *m)
		case isEnd(ev):
			t.pending = nil
			emit(0, *m)
		default: // text
			emit(0, *m)
		}
	}
}

// attrSelT is the attribute-selection transducer AS(@name) backing the
// terminal attribute step rpeq.AttrStep: for each armed start message whose
// element carries the attribute, the selected answer is the attribute node
// itself. Attribute nodes have no representation in the document stream, so
// the transducer synthesizes one — a balanced element triple
//
//	<@name> value </@name>
//
// emitted, with its activation, before the real start message. The attribute
// step is restricted to the final step of a query (validated at parse time),
// so the only reader of this tape is the output transducer: the synthetic
// messages never cross a join and the one-document-message-per-step
// discipline holds everywhere else in the network. Synthetic attribute nodes
// consume document-order indexes of their own, ordered before their element.
type attrSelT struct {
	attr string
	cfg  *netConfig

	pending *cond.Formula
	st      StackStats
}

func newAttrSel(attr string, cfg *netConfig) *attrSelT {
	return &attrSelT{attr: attr, cfg: cfg}
}

func (t *attrSelT) name() string { return "AS(@" + t.attr + ")" }

func (t *attrSelT) stackStats() StackStats { return t.st }

func (t *attrSelT) feed(_ int, m *Message, emit emitFn) {
	switch m.Kind {
	case MsgActivation:
		t.pending = t.cfg.or(t.pending, m.Formula)
		t.st.noteFormula(t.pending)
	case MsgDet:
		emit(0, *m)
	case MsgDoc:
		ev := m.Ev
		switch {
		case isStart(ev):
			if t.pending != nil {
				if v, ok := ev.Attr(t.attr); ok {
					label := "@" + t.attr
					emit(0, actMsg(t.pending))
					emit(0, docMsg(xmlstream.Start(label)))
					if v != "" {
						emit(0, docMsg(xmlstream.Chars(v)))
					}
					emit(0, docMsg(xmlstream.End(label)))
				}
				t.pending = nil
			}
			emit(0, *m)
		case isEnd(ev):
			t.pending = nil
			emit(0, *m)
		default: // text
			emit(0, *m)
		}
	}
}
