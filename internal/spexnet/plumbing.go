package spexnet

import "repro/internal/cond"

// splitT is the split transducer SP of §III.6: every received message is
// forwarded to both output tapes.
type splitT struct{ st StackStats }

func newSplit() *splitT { return &splitT{} }

func (t *splitT) name() string { return "SP" }

func (t *splitT) stackStats() StackStats { return t.st }

func (t *splitT) feed(_ int, m *Message, emit emitFn) {
	emit(0, *m)
	emit(1, *m)
}

// joinT is the join transducer JO of §III.6: an AND-gate on document
// messages. Both branches of a split deliver each document message exactly
// once per step (every transducer forwards the document stream), so the
// join forwards the single document message of the step once — this is also
// how "the problem of removing duplicates for the union operation is solved
// by the join transducer". Activation and determination messages pass
// through, merged from both branches while keeping their position relative
// to the step's document message (an activation stays before the element it
// refers to; a trailing scope-exit finalization stays after the end
// message).
//
// joinT buffers the whole step from both ports and flushes at the step
// boundary the runner signals (endStep) — after both branches have
// delivered everything, since the branches precede the join in topological
// order.
type joinT struct {
	buffered [2][]Message
	seenDets []Message // scratch for per-step determination dedupe
	st       StackStats
}

func newJoin() *joinT { return &joinT{} }

func (t *joinT) name() string { return "JO" }

func (t *joinT) stackStats() StackStats {
	s := t.st
	s.Cur = len(t.buffered[0]) + len(t.buffered[1])
	return s
}

func (t *joinT) feed(input int, m *Message, _ emitFn) {
	t.buffered[input] = append(t.buffered[input], *m)
	t.st.noteStack(len(t.buffered[0]) + len(t.buffered[1]))
}

// endStep flushes the step: the non-document messages preceding each
// branch's document message (left branch first), the single document
// message, then the trailing non-document messages. Determination messages
// that reached the join through both branches of the preceding split are
// emitted once — the same duplicate elimination the join performs for
// document messages.
func (t *joinT) endStep(emit emitFn) {
	seenDets := t.seenDets[:0]
	emitNonDoc := func(m Message) {
		if m.Kind == MsgDet {
			for _, s := range seenDets {
				if sameDet(s, m) {
					return
				}
			}
			seenDets = append(seenDets, m)
		}
		emit(0, m)
	}
	// Split each buffer at its document message.
	docAt := func(buf []Message) int {
		for i, m := range buf {
			if m.Kind == MsgDoc {
				return i
			}
		}
		return len(buf)
	}
	d0, d1 := docAt(t.buffered[0]), docAt(t.buffered[1])
	for _, m := range t.buffered[0][:d0] {
		emitNonDoc(m)
	}
	for _, m := range t.buffered[1][:d1] {
		emitNonDoc(m)
	}
	if d0 < len(t.buffered[0]) {
		emit(0, t.buffered[0][d0])
	}
	after := func(buf []Message, d int) []Message {
		if d >= len(buf) {
			return nil
		}
		return buf[d+1:]
	}
	for _, m := range after(t.buffered[0], d0) {
		emitNonDoc(m)
	}
	for _, m := range after(t.buffered[1], d1) {
		emitNonDoc(m)
	}
	t.seenDets = seenDets[:0]
	t.buffered[0] = t.buffered[0][:0]
	t.buffered[1] = t.buffered[1][:0]
}

// sameDet reports whether two determination messages are identical.
func sameDet(a, b Message) bool {
	if a.Var != b.Var || a.Final != b.Final {
		return false
	}
	if (a.Witness == nil) != (b.Witness == nil) {
		return false
	}
	return a.Witness == nil || a.Witness.Key() == b.Witness.Key()
}

// unionT is the union transducer UN of §III.7: a connector that merges the
// activation messages arriving for one document message into a single
// activation carrying their disjunction (Fig. 10). Since the downstream
// transducers of this implementation also merge consecutive activations by
// disjunction, UN is semantically idempotent here, but it is kept so that
// compiled networks have the paper's exact shape and so that single
// activations reach the sink merged.
type unionT struct {
	cfg     *netConfig
	pending *cond.Formula
	st      StackStats
}

func newUnion(cfg *netConfig) *unionT { return &unionT{cfg: cfg} }

func (t *unionT) name() string { return "UN" }

func (t *unionT) stackStats() StackStats {
	s := t.st
	if t.pending != nil {
		s.Cur = 1
	}
	return s
}

func (t *unionT) feed(_ int, m *Message, emit emitFn) {
	switch m.Kind {
	case MsgActivation:
		t.pending = t.cfg.or(t.pending, m.Formula)
		t.st.noteFormula(t.pending)
		t.st.noteStack(1)
	case MsgDet:
		emit(0, *m)
	case MsgDoc:
		if t.pending != nil {
			emit(0, actMsg(t.pending))
			t.pending = nil
		}
		emit(0, *m)
	}
}
