package spexnet

import (
	"testing"

	"repro/internal/cond"
	"repro/internal/xmlstream"
)

// Direct unit tests for the extension transducers (following, preceding,
// text test); the semantic cross-validation against the DOM lives in
// internal/baseline.

func TestFollowingTransducerDirect(t *testing.T) {
	fo := newFollowing("b", testCfg)
	out, _ := feedAll(fo, 0, msgs(
		startDoc(),
		start("r"),
		actMsg(cond.True()), start("x"), // context
		start("b"), end("b"), // descendant of the context: NOT matched
		end("x"),             // scope opens here
		start("b"), end("b"), // matched
		start("y"),
		start("b"), end("b"), // matched (any depth)
		end("y"),
		end("r"),
		endDoc(),
	))
	var acts int
	for _, m := range out {
		if m.Kind == MsgActivation {
			acts++
		}
	}
	if acts != 2 {
		t.Fatalf("matched %d, want 2:\n%s", acts, render(out))
	}
}

func TestPrecedingTransducerDirect(t *testing.T) {
	pool := cond.NewPool()
	q := pool.DeclareQualifier(nil)
	pr := newPreceding("b", q, pool, testCfg)
	out, _ := feedAll(pr, 0, msgs(
		startDoc(),
		start("r"),
		start("b"), end("b"), // candidate 1: precedes the context
		actMsg(cond.True()), start("x"), end("x"), // context: credits candidate 1
		start("b"), end("b"), // candidate 2: never credited
		end("r"),
		endDoc(),
	))
	var wit, fin, acts int
	for _, m := range out {
		switch {
		case m.Kind == MsgActivation:
			acts++
		case m.Kind == MsgDet && m.Final:
			fin++
		case m.Kind == MsgDet:
			wit++
		}
	}
	// Two candidate activations; one witnessed (with its finalization at
	// credit time) and one finalized unsatisfied at end of stream.
	if acts != 2 || wit != 1 || fin != 2 {
		t.Fatalf("acts=%d wit=%d fin=%d:\n%s", acts, wit, fin, render(out))
	}
}

func TestTextCmpTransducerDirect(t *testing.T) {
	te := newTextCmp(0 /* TextEq */, "hi", testCfg)
	out, _ := feedAll(te, 0, msgs(
		startDoc(),
		actMsg(cond.True()), start("p"),
		docMsg(xmlstream.Chars("h")),
		start("b"), docMsg(xmlstream.Chars("i")), end("b"),
		end("p"), // string value "hi": activation re-emitted here
		actMsg(cond.True()), start("p"),
		docMsg(xmlstream.Chars("no")),
		end("p"), // no match
		endDoc(),
	))
	var acts []int
	for i, m := range out {
		if m.Kind == MsgActivation {
			acts = append(acts, i)
		}
	}
	if len(acts) != 1 {
		t.Fatalf("activations: %d, want 1:\n%s", len(acts), render(out))
	}
	// The re-emission precedes the first </p>.
	if out[acts[0]+1].Ev.Kind != xmlstream.EndElement {
		t.Fatalf("activation not at the end message:\n%s", render(out))
	}
}
