package spexnet

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// chainDoc builds <a><a>…<b/></a><b/></a>: a depth-n chain of a elements,
// each with a b child arriving as its LAST child. Every a matches _+[b],
// but while the chain is opening every open a holds an undecided candidate
// (its b has not been seen yet), so the candidate queue and the live
// condition-variable population both grow to n.
func chainDoc(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString("<a>")
	}
	for i := 0; i < n; i++ {
		sb.WriteString("<b/></a>")
	}
	return sb.String()
}

func governedRun(t *testing.T, expr, doc string, mode ResultMode, cfg *governor.Config, m *obs.Metrics) (*Network, Stats, error) {
	t.Helper()
	net, err := Build(rpeq.MustParse(expr), Options{Mode: mode, Sink: func(Result) {}, Governor: cfg, Metrics: m})
	if err != nil {
		t.Fatalf("build %q: %v", expr, err)
	}
	stats, err := net.Run(xmlstream.NewScanner(strings.NewReader(doc)))
	return net, stats, err
}

func TestGovernorCandidateFail(t *testing.T) {
	cfg := &governor.Config{Limits: governor.Limits{MaxCandidates: 5}, Policy: governor.PolicyFail}
	_, stats, err := governedRun(t, "_+[b]", chainDoc(20), ModeCount, cfg, nil)
	var le *governor.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want LimitError, got %v", err)
	}
	if le.Resource != governor.ResCandidates || le.Limit != 5 {
		t.Errorf("unexpected limit error: %+v", le)
	}
	if !errors.Is(err, governor.ErrResourceLimit) {
		t.Error("errors.Is(ErrResourceLimit) should hold")
	}
	if stats.Governor.Trips == 0 || stats.Governor.Fails == 0 {
		t.Errorf("governor outcome not recorded: %+v", stats.Governor)
	}
	// The run must terminate within one event of the trip: the queue never
	// grows past the cap plus the one candidate that tripped it.
	if stats.Output.MaxQueued > 6 {
		t.Errorf("queue grew past the cap before termination: %d", stats.Output.MaxQueued)
	}
}

func TestGovernorCandidateDegradeKeepsCounts(t *testing.T) {
	const n = 20
	// Ungoverned reference count.
	_, ref, err := governedRun(t, "_+[b]", chainDoc(n), ModeCount, nil, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.Output.Matches != n {
		t.Fatalf("reference count = %d, want %d", ref.Output.Matches, n)
	}
	cfg := &governor.Config{Limits: governor.Limits{MaxCandidates: 3}, Policy: governor.PolicyDegrade}
	m := obs.NewMetrics()
	_, stats, err := governedRun(t, "_+[b]", chainDoc(n), ModeCount, cfg, m)
	if err != nil {
		t.Fatalf("degraded run should complete: %v", err)
	}
	if !stats.Output.Degraded {
		t.Error("sink should report Degraded")
	}
	if stats.Output.Matches != ref.Output.Matches {
		t.Errorf("count-only degradation changed the count: %d vs %d", stats.Output.Matches, ref.Output.Matches)
	}
	if stats.Governor.Degrades == 0 {
		t.Errorf("governor outcome not recorded: %+v", stats.Governor)
	}
	snap := m.Snapshot()
	if snap.GovernorDegrades == 0 || len(snap.GovernorTrips) == 0 {
		t.Errorf("obs registry missed the trip: %+v", snap.GovernorTrips)
	}
}

func TestGovernorCandidateShedPerSink(t *testing.T) {
	const n = 20
	specs := []Spec{
		{Expr: rpeq.MustParse("_+[b]"), Mode: ModeCount, Name: "q-bad"},
		{Expr: rpeq.MustParse("a"), Mode: ModeCount, Name: "q-good"},
	}
	cfg := &governor.Config{Limits: governor.Limits{MaxCandidates: 3}, Policy: governor.PolicyShed}
	net, err := BuildSet(specs, Options{Governor: cfg})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(xmlstream.NewScanner(strings.NewReader(chainDoc(n))))
	if err != nil {
		t.Fatalf("shed run should complete: %v", err)
	}
	sinks := net.SinkStats()
	if !sinks[0].Shed {
		t.Error("pathological sink should be shed")
	}
	if sinks[1].Shed {
		t.Error("well-behaved sink must not be shed")
	}
	if sinks[1].Matches != 1 {
		t.Errorf("surviving sink count = %d, want 1", sinks[1].Matches)
	}
	if stats.Governor.Sheds == 0 {
		t.Errorf("governor outcome not recorded: %+v", stats.Governor)
	}
}

func TestGovernorDepthFail(t *testing.T) {
	cfg := &governor.Config{Limits: governor.Limits{MaxDepth: 5}, Policy: governor.PolicyFail}
	_, _, err := governedRun(t, "a", chainDoc(20), ModeCount, cfg, nil)
	var le *governor.LimitError
	if !errors.As(err, &le) || le.Resource != governor.ResDepth {
		t.Fatalf("want depth LimitError, got %v", err)
	}
}

func TestGovernorDepthShedQuiescesNetwork(t *testing.T) {
	cfg := &governor.Config{Limits: governor.Limits{MaxDepth: 5}, Policy: governor.PolicyShed}
	net, stats, err := governedRun(t, "_+[b]", chainDoc(20), ModeCount, cfg, nil)
	if err != nil {
		t.Fatalf("shed run should complete the parse: %v", err)
	}
	if !net.allShed {
		t.Error("network should be quiesced")
	}
	if !stats.Output.Shed {
		t.Error("sink should report Shed")
	}
	// Depth bookkeeping continues while shed: MaxDepth sees the whole doc
	// (the innermost b sits one level below the deepest a).
	if stats.MaxDepth != 21 {
		t.Errorf("MaxDepth = %d, want 21", stats.MaxDepth)
	}
}

func TestGovernorDepthDegradeFallsBackToFail(t *testing.T) {
	// Depth is irreducible: count-only mode cannot shrink the document, so
	// PolicyDegrade must fail rather than pretend.
	cfg := &governor.Config{Limits: governor.Limits{MaxDepth: 5}, Policy: governor.PolicyDegrade}
	_, _, err := governedRun(t, "a", chainDoc(20), ModeCount, cfg, nil)
	var le *governor.LimitError
	if !errors.As(err, &le) || le.Resource != governor.ResDepth || le.Policy != governor.PolicyFail {
		t.Fatalf("want fail-policy depth LimitError, got %v", err)
	}
}

func TestGovernorLiveVarsFail(t *testing.T) {
	// Each open qualifier scope holds a live condition variable, so a
	// depth-20 chain under _*[b] needs ~20 live vars.
	cfg := &governor.Config{Limits: governor.Limits{MaxLiveVars: 5}, Policy: governor.PolicyFail}
	_, _, err := governedRun(t, "_*[b]", chainDoc(20), ModeCount, cfg, nil)
	var le *governor.LimitError
	if !errors.As(err, &le) || le.Resource != governor.ResLiveVars {
		t.Fatalf("want live-vars LimitError, got %v", err)
	}
}

func TestGovernorStepMessagesFail(t *testing.T) {
	cfg := &governor.Config{Limits: governor.Limits{MaxStepMessages: 3}, Policy: governor.PolicyFail}
	_, _, err := governedRun(t, "_*.a[b].c", chainDoc(8), ModeCount, cfg, nil)
	var le *governor.LimitError
	if !errors.As(err, &le) || le.Resource != governor.ResStepMessages {
		t.Fatalf("want step-messages LimitError, got %v", err)
	}
}

func TestGovernorBufferedDegrade(t *testing.T) {
	// a[b] over a document whose qualifier stays undecided while content
	// streams in: the serialize-mode sink buffers until b arrives.
	doc := "<a>" + strings.Repeat("<c/>", 10) + "<b/></a>"
	cfg := &governor.Config{Limits: governor.Limits{MaxBufferedEvents: 4}, Policy: governor.PolicyDegrade}
	var results int
	net, err := Build(rpeq.MustParse("a[b]"), Options{Mode: ModeSerialize, Sink: func(Result) { results++ }, Governor: cfg})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(xmlstream.NewScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatalf("degraded run should complete: %v", err)
	}
	if !stats.Output.Degraded {
		t.Error("sink should report Degraded")
	}
	if stats.Output.Matches != 1 {
		t.Errorf("degraded count = %d, want 1", stats.Output.Matches)
	}
	if results != 0 {
		t.Errorf("count-only mode should stop delivering results, got %d", results)
	}
	if stats.Output.MaxBufferedEvs > 5 {
		t.Errorf("buffer grew past the cap: %d", stats.Output.MaxBufferedEvs)
	}
}

func TestGovernorBufferedFail(t *testing.T) {
	doc := "<a>" + strings.Repeat("<c/>", 10) + "<b/></a>"
	cfg := &governor.Config{Limits: governor.Limits{MaxBufferedEvents: 4}, Policy: governor.PolicyFail}
	net, err := Build(rpeq.MustParse("a[b]"), Options{Mode: ModeSerialize, Sink: func(Result) {}, Governor: cfg})
	if err != nil {
		t.Fatal(err)
	}
	_, err = net.Run(xmlstream.NewScanner(strings.NewReader(doc)))
	var le *governor.LimitError
	if !errors.As(err, &le) || le.Resource != governor.ResBuffered {
		t.Fatalf("want buffered LimitError, got %v", err)
	}
}

func TestGovernorFormulaFail(t *testing.T) {
	// Nested qualifiers are the formula bomb: under _*[_*[b]] on a deep
	// chain the witness conditions mention the nested qualifier's variables,
	// so condition formulas grow with the depth (size ~23 at depth 20).
	cfg := &governor.Config{Limits: governor.Limits{MaxFormulaSize: 8}, Policy: governor.PolicyFail}
	_, _, err := governedRun(t, "_*[_*[b]]", chainDoc(20), ModeCount, cfg, nil)
	var le *governor.LimitError
	if !errors.As(err, &le) || le.Resource != governor.ResFormula {
		t.Fatalf("want formula LimitError, got %v", err)
	}
	// Formula size is irreducible: PolicyDegrade must fail, not pretend.
	cfg = &governor.Config{Limits: governor.Limits{MaxFormulaSize: 8}, Policy: governor.PolicyDegrade}
	_, _, err = governedRun(t, "_*[_*[b]]", chainDoc(20), ModeCount, cfg, nil)
	if !errors.As(err, &le) || le.Resource != governor.ResFormula || le.Policy != governor.PolicyFail {
		t.Fatalf("want fail-policy formula LimitError, got %v", err)
	}
}

func TestGovernorGenerousLimitsIdenticalResults(t *testing.T) {
	// A governor with generous caps must never change results.
	cfg := &governor.Config{Limits: governor.Limits{
		MaxFormulaSize:    1 << 20,
		MaxCandidates:     1 << 20,
		MaxBufferedEvents: 1 << 20,
		MaxStepMessages:   1 << 20,
		MaxLiveVars:       1 << 20,
		MaxDepth:          1 << 20,
	}, Policy: governor.PolicyFail}
	for _, expr := range []string{"a.c", "_*.a[c].c", "a[a[c]]", "_+[b]", "(a.b)|(a.c)"} {
		var plain, governed []string
		for _, run := range []struct {
			cfg  *governor.Config
			sink *[]string
		}{{nil, &plain}, {cfg, &governed}} {
			sink := run.sink
			net, err := Build(rpeq.MustParse(expr), Options{Mode: ModeNodes, Governor: run.cfg, Sink: func(r Result) {
				*sink = append(*sink, r.Name+"@"+itoa(r.Index))
			}})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := net.Run(xmlstream.NewScanner(strings.NewReader(paperDoc))); err != nil {
				t.Fatalf("%s: %v", expr, err)
			}
		}
		if strings.Join(plain, ",") != strings.Join(governed, ",") {
			t.Errorf("%s: governed results diverge: %v vs %v", expr, governed, plain)
		}
	}
	if stats, trips := func() (Stats, int64) {
		net, _ := Build(rpeq.MustParse("a"), Options{Mode: ModeCount, Governor: cfg})
		s, _ := net.Run(xmlstream.NewScanner(strings.NewReader(paperDoc)))
		return s, s.Governor.Trips
	}(); trips != 0 {
		t.Errorf("generous limits tripped: %+v", stats.Governor)
	}
}
