package spexnet

import (
	"strings"
	"testing"

	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// attrDoc document-order indexes: items@1, item@2, summary@3, item@4,
// summary@5, item@6, summary@7.
const attrDoc = `<items>` +
	`<item status="closed"><summary/></item>` +
	`<item status="open"><summary/></item>` +
	`<item status="closed" resolution="fixed"><summary/></item>` +
	`</items>`

func TestAttrPredicates(t *testing.T) {
	expect(t, `items.item[@status]`, attrDoc, "item@2", "item@4", "item@6")
	expect(t, `items.item[@status="closed"]`, attrDoc, "item@2", "item@6")
	expect(t, `items.item[@status!="closed"]`, attrDoc, "item@4")
	expect(t, `items.item[@status*="lose"]`, attrDoc, "item@2", "item@6")
	expect(t, `items.item[@resolution]`, attrDoc, "item@6")
	expect(t, `items.item[not(@resolution)]`, attrDoc, "item@2", "item@4")
	expect(t, `items.item[@status="closed" and @resolution]`, attrDoc, "item@6")
	expect(t, `items.item[@status="open" or @resolution]`, attrDoc, "item@4", "item@6")
	expect(t, `items.item[not(@status="closed" or @resolution)]`, attrDoc, "item@4")
	// @a != "v" is an existence test too: an attribute-free element fails it.
	expect(t, `items.item[@missing!="x"]`, attrDoc)
	// The motivating query: closed and unresolved items' summaries.
	expect(t, `items.item[@status="closed" and not(@resolution)].summary`, attrDoc, "summary@3")
}

func TestAttrPredicateInCondition(t *testing.T) {
	// doc indexes: r@1, p@2, p@3, t@4, p@5.
	doc := `<r><p x="1"/><p><t/></p><p/></r>`
	// Attribute term or structural term: a union inside the qualifier.
	expect(t, `r.p[@x or t]`, doc, "p@2", "p@3")
	// Attribute-tailed condition path tests the selected child.
	doc2 := `<r><p><t k="1"/></p><p><t/></p></r>`
	expect(t, `r.p[t.@k]`, doc2, "p@2")
	expect(t, `r.p[not(t.@k)]`, doc2, "p@4")
}

func TestAttrSelection(t *testing.T) {
	// Synthetic attribute nodes take the next document-order index, before
	// their element: @id@2 precedes a@3.
	expect(t, `r.a.@id`, `<r><a id="7"/><b id="8"/><a/></r>`, "@id@2")
	expect(t, `r._.@id`, `<r><a id="7"/><b id="8"/><a/></r>`, "@id@2", "@id@4")
	// The document root carries no attributes.
	expect(t, `@id`, `<r/>`)
}

func TestAttrSelectionSerialized(t *testing.T) {
	node, err := rpeq.Parse(`r.a.@id`)
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	net, err := Build(node, Options{Mode: ModeSerialize, Sink: func(r Result) { got = append(got, r) }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(xmlstream.NewScanner(strings.NewReader(`<r><a id="x&amp;y"/></r>`))); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d answers, want 1", len(got))
	}
	var b strings.Builder
	for _, ev := range got[0].Events {
		b.WriteString(ev.String())
	}
	if b.String() != `<@id>x&y</@id>` {
		t.Fatalf("serialized attribute answer = %s", b.String())
	}
}

func TestSerializeKeepsAttributes(t *testing.T) {
	node, err := rpeq.Parse(`r.a[@k="1"]`)
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	net, err := Build(node, Options{Mode: ModeSerialize, Sink: func(r Result) { got = append(got, r) }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(xmlstream.NewScanner(strings.NewReader(`<r><a k="1"><c n="2">t</c></a><a/></r>`))); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d answers, want 1", len(got))
	}
	var b strings.Builder
	for _, ev := range got[0].Events {
		b.WriteString(ev.String())
	}
	if b.String() != `<a k="1"><c n="2">t</c></a>` {
		t.Fatalf("serialized answer = %s", b.String())
	}
}

func TestNegatedQualifier(t *testing.T) {
	// doc indexes: r@1, a@2, b@3, a@4, c@5, a@6.
	doc := `<r><a><b/></a><a><c/></a><a/></r>`
	expect(t, `r.a[not(b)]`, doc, "a@4", "a@6")
	expect(t, `r.a[not(c)]`, doc, "a@2", "a@6")
	expect(t, `r.a[not(b|c)]`, doc, "a@6")
	expect(t, `r.a[not(_)]`, doc, "a@6")
	// Negation under conjunction and disjunction with positive terms.
	expect(t, `r.a[b and not(c)]`, doc, "a@2")
	expect(t, `r.a[not(b) and not(c)]`, doc, "a@6")
	expect(t, `r.a[c or not(_)]`, doc, "a@4", "a@6")
}

func TestNegatedQualifierNestedScopes(t *testing.T) {
	// Same-qualifier instances nest: the inner a has the b child, the outer
	// does not (b is its grandchild).
	expect(t, `_*.a[not(b)]`, `<a><a><b/></a></a>`, "a@1")
	expect(t, `_*.a[not(_*.b)]`, `<a><a><b/></a></a>`)
	expect(t, `_+.a[not(b)]`, `<r><a><a/></a></r>`, "a@2", "a@3")
}

func TestNegatedTextTest(t *testing.T) {
	// doc indexes: r@1, p@2, t@3, p@4, t@5, p@6.
	doc := `<r><p><t>v</t></p><p><t>w</t></p><p/></r>`
	expect(t, `r.p[t="v"]`, doc, "p@2")
	expect(t, `r.p[not(t="v")]`, doc, "p@4", "p@6")
	expect(t, `r.p[t and not(t="v")]`, doc, "p@4")
}

func TestNegationStaticallyFalse(t *testing.T) {
	// not(nullable) never holds: the candidate itself witnesses the
	// condition at its own start.
	expect(t, `r.a[not(b*)]`, `<r><a/><a><b/></a></r>`)
	expect(t, `r.a[not(%e)]`, `<r><a/></r>`)
}

func TestNegationDecidesEarly(t *testing.T) {
	// A killed instance resolves the moment the inner match starts, not at
	// scope exit: with an answer limit of 1 on a[not(b)], the second a (no b)
	// determines the answer even though the first a's scope is still open at
	// that point in a differently-shaped document. Here we just check limits
	// compose with negation.
	node, err := rpeq.Parse(`r.a[not(b)]`)
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	net, err := Build(node, Options{Mode: ModeNodes, Limit: 1, Sink: func(r Result) { got = append(got, r) }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(xmlstream.NewScanner(strings.NewReader(`<r><a><c/></a><a><b/></a></r>`))); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("limited negation answers = %v", got)
	}
}
