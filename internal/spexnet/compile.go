package spexnet

import (
	"fmt"
	"strconv"

	"repro/internal/cond"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// Options configure a network build.
type Options struct {
	// Mode selects what the output transducer reports (default ModeCount).
	Mode ResultMode
	// Sink receives the answers (ModeNodes, ModeSerialize).
	Sink Sink
	// StreamSink receives answers event by event (ModeStream).
	StreamSink StreamSink
	// RawFormulas disables duplicate elimination in condition formulas —
	// the Remark V.1 normalization ablation.
	RawFormulas bool
	// Tracer, if set, observes every message every transducer emits, in
	// the paper's notation — the transition traces of Figs. 4, 5 and 13 as
	// a first-class feature (cmd/spex -trace). Steps count document-stream
	// events, starting at 1 for <$>.
	Tracer obs.Tracer
	// Metrics, if set, attaches live instrumentation: per-transducer
	// message counts, stack and formula watermarks, and sink-side gauges,
	// all readable from other goroutines mid-stream. When nil the network
	// runs an uninstrumented path with no per-event overhead.
	Metrics *obs.Metrics
	// Symtab is the symbol table label tests compile against; nil builds a
	// private table. Sharing one table between the network and its event
	// producer (scanner, multi-query feeder) lets events arrive
	// pre-resolved, so the per-event label tests are pure integer
	// comparisons and the network never touches the interner.
	Symtab *xmlstream.Symtab
	// NoInterning restores the string-matching pipeline (the interning
	// ablation's baseline): no symbol table, string label comparisons, and
	// the count-mode output fast path disabled.
	NoInterning bool
	// Governor, when it carries any cap, attaches the resource governor:
	// condition-formula size, candidate population, buffered content,
	// per-step messages, live condition variables and document depth are
	// accounted against its limits and its policy applies when one trips.
	// Nil (or all-zero limits) runs ungoverned with no per-event overhead.
	Governor *governor.Config
	// GovernorMetrics receives the governor's trip counters without
	// enabling full per-event instrumentation — a multi-query engine binds
	// one registry to many member networks this way (trip counters are
	// rare, atomic adds; full instrumentation on N networks would count
	// every stream event N times). Nil falls back to Metrics.
	GovernorMetrics *obs.Metrics
	// SinkMetrics receives the candidate-lifecycle histograms — decision
	// latency and candidate lifetime in events, stream latency in
	// nanoseconds — from every sink. Like GovernorMetrics, sink events are
	// per-candidate rather than per-event, so a multi-query engine may
	// bind one registry to all member networks. Nil falls back to Metrics.
	SinkMetrics *obs.Metrics
	// TraceID is the stream-scoped trace identifier of this evaluation: it
	// is stamped on every trace record the Tracer observes, so one tracer
	// (or log pipeline) serving many streams can attribute each record to
	// its stream or ingest request.
	TraceID string
	// Limit, when positive, caps the answer count: the evaluation asks for
	// the first Limit answers in document order, and the sink's answer is
	// determined — state released, stream disconnectable — the moment the
	// Limit-th answer has been delivered. Zero evaluates the whole stream.
	Limit int64
}

// Spec is one query of a multi-query network: its expression and its sink.
type Spec struct {
	Expr       rpeq.Node
	Mode       ResultMode
	Sink       Sink
	StreamSink StreamSink
	// Name labels the query in governor errors and shed reports, so a
	// multi-query caller can tell which subscription tripped a cap.
	Name string
	// Limit, when positive, is this query's answer budget (see
	// Options.Limit); per-query in a multi-query network.
	Limit int64
}

// Build translates an rpeq expression into a SPEX network following the
// denotational semantics C of §III.9 (Fig. 11). The translation is linear in
// the expression size (Lemma V.1): each construct contributes a constant
// number of transducers. The returned network is single-use: it holds
// evaluation state and evaluates one stream.
func Build(expr rpeq.Node, opts Options) (*Network, error) {
	return BuildSet([]Spec{{Expr: expr, Mode: opts.Mode, Sink: opts.Sink, StreamSink: opts.StreamSink, Limit: opts.Limit}}, opts)
}

// BuildSet translates several queries into ONE network with one sink per
// query — the multi-sink extension §III.2 sketches ("allowing multiple
// sinks, i.e. evaluating several queries") and the multi-query optimization
// of §IX: structurally identical subexpressions evaluated from the same
// tape are compiled once and their output tape is shared (an implicit
// split), so a workload of queries with common prefixes — the
// XFilter/YFilter scenario of §VIII — costs the union of the distinct
// subexpressions, not the sum of the queries.
func BuildSet(specs []Spec, opts Options) (*Network, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("spexnet: no queries")
	}
	retain := false
	for _, spec := range specs {
		if rpeq.HasExtensionAxes(spec.Expr) {
			retain = true
		}
	}
	symtab := opts.Symtab
	if symtab == nil && !opts.NoInterning {
		symtab = xmlstream.NewSymtab()
	}
	gm := opts.GovernorMetrics
	if gm == nil {
		gm = opts.Metrics
	}
	sm := opts.SinkMetrics
	if sm == nil {
		sm = opts.Metrics
	}
	n := &Network{
		cfg: netConfig{
			rawFormulas: opts.RawFormulas,
			retainVars:  retain,
			symtab:      symtab,
			noInterning: opts.NoInterning,
			gov:         newGovern(opts.Governor, gm),
			sinkMetrics: sm,
			traceID:     opts.TraceID,
		},
		pool:    cond.NewPool(),
		metrics: opts.Metrics,
	}
	b := &builder{net: n, tracer: opts.Tracer, metrics: opts.Metrics, memo: make(map[string]memoEntry)}
	source := b.newEdge()
	n.sourceEdge = source
	for _, spec := range specs {
		final, _, err := b.compile(spec.Expr, source)
		if err != nil {
			return nil, err
		}
		if spec.Mode == ModeStream && spec.StreamSink == nil {
			return nil, fmt.Errorf("spexnet: ModeStream requires a StreamSink")
		}
		out := newOutput(spec.Mode, spec.Sink, &n.cfg)
		out.ssink = spec.StreamSink
		out.sub = spec.Name
		out.limit = spec.Limit
		b.addNode(out, []int{final}, 0)
		n.outs = append(n.outs, out)
	}
	// When every query carries an answer limit, the whole network's answer
	// can become fixed mid-stream; Run then stops reading early.
	n.allLimited = true
	for _, spec := range specs {
		if spec.Limit <= 0 {
			n.allLimited = false
			break
		}
	}
	// Hash-consing above may leave one output tape with several readers (the
	// implicit multicast); make each such junction an explicit fan-out
	// transducer so every tape has exactly one reader and the sharing points
	// are first-class nodes.
	b.insertFanouts()
	if opts.Metrics != nil {
		opts.Metrics.SetTransducers(b.tms)
	}
	return n, nil
}

// memoEntry caches a compiled subexpression: its output tape and the
// qualifier ids declared within it (needed by enclosing qualifiers).
type memoEntry struct {
	out   int
	quals []cond.QualID
}

type builder struct {
	net     *Network
	tracer  obs.Tracer
	metrics *obs.Metrics
	tms     []*obs.TransducerMetrics
	memo    map[string]memoEntry
}

// newEdge allocates a fresh tape — and, on instrumented builds, its message
// counter row. Rows are individually allocated so an emit closure can hold a
// stable pointer to its tape's row.
func (b *builder) newEdge() int {
	b.net.edges = append(b.net.edges, nil)
	if b.metrics != nil {
		b.net.edgeCounts = append(b.net.edgeCounts, &[kindMask + 1]int64{})
	}
	return len(b.net.edges) - 1
}

// addNode appends a transducer reading the given tapes and returns the ids
// of its numOuts fresh output tapes. Construction order is topological by
// compositionality of C.
//
// The instrumentation and tracing wrappers are composed into the node's emit
// closure here, at build time, so the uninstrumented emit path is the bare
// tape append with no per-message branch.
func (b *builder) addNode(t transducer, ins []int, numOuts int) []int {
	outs := make([]int, numOuts)
	for i := range outs {
		outs[i] = b.newEdge()
	}
	node := netNode{t: t, ins: ins, outs: outs}
	if se, ok := t.(stepEnder); ok {
		node.ender = se
	}
	net := b.net
	var emit emitFn
	if b.metrics != nil {
		tm := obs.NewTransducerMetrics(fmt.Sprintf("%d:%s", len(net.nodes), t.name()))
		node.tm = tm
		b.tms = append(b.tms, tm)
		node.mc = &msgCounters{}
		// The whole per-message instrumentation cost is one plain increment
		// on the written tape's counter row, folded into the emit closure
		// (no second closure hop) and indexed by the message kind directly —
		// kindMask keeps the compiler from bounds-checking, the shared
		// numbering with obs.MsgKind makes the index meaningful. syncMetrics
		// derives both sides' per-transducer counts from the tape counters
		// on the gauge stride; an atomic add per message here would be the
		// dominant instrumentation cost on the hot path. Single-output
		// nodes — nearly all of them — capture their tape and row directly.
		if numOuts == 1 {
			tape := outs[0]
			row := net.edgeCounts[tape]
			emit = func(_ int, m Message) {
				row[m.Kind&kindMask]++
				net.edges[tape] = append(net.edges[tape], m)
			}
		} else {
			emit = func(port int, m Message) {
				e := node.outs[port]
				net.edgeCounts[e][m.Kind&kindMask]++
				net.edges[e] = append(net.edges[e], m)
			}
		}
	} else {
		emit = func(port int, m Message) {
			net.edges[node.outs[port]] = append(net.edges[node.outs[port]], m)
		}
	}
	if b.tracer != nil {
		tracer := b.tracer
		nodeName := t.name()
		inner := emit
		emit = func(port int, m Message) {
			tracer.Trace(obs.TraceEvent{Step: net.step, Node: nodeName, Kind: obsKind(m.Kind), Msg: m.String(), TraceID: net.cfg.traceID})
			inner(port, m)
		}
	}
	node.emit = emit
	b.net.nodes = append(b.net.nodes, node)
	return outs
}

// compile implements C with hash-consing: it extends the network with the
// transducers for expr reading tape in — unless a structurally identical
// expression was already compiled from the same tape, in which case its
// output tape is reused. It returns the expression's output tape and the
// qualifier ids declared inside it.
func (b *builder) compile(expr rpeq.Node, in int) (int, []cond.QualID, error) {
	key := strconv.Itoa(in) + "|" + rpeq.Canonical(expr)
	if e, ok := b.memo[key]; ok {
		return e.out, e.quals, nil
	}
	out, quals, err := b.compileNew(expr, in)
	if err != nil {
		return 0, nil, err
	}
	b.memo[key] = memoEntry{out: out, quals: quals}
	return out, quals, nil
}

func (b *builder) compileNew(expr rpeq.Node, in int) (int, []cond.QualID, error) {
	switch n := expr.(type) {
	case *rpeq.Empty:
		// ε adds no transducer: the context passes through unchanged.
		return in, nil, nil

	case *rpeq.Label:
		return b.addNode(newChild(n.Name, &b.net.cfg), []int{in}, 1)[0], nil, nil

	case *rpeq.Plus:
		return b.addNode(newClosure(n.Label.Name, &b.net.cfg), []int{in}, 1)[0], nil, nil

	case *rpeq.Star:
		// C[label*] = SP; C[label+] on one branch; JO (Fig. 11).
		sp := b.addNode(newSplit(), []int{in}, 2)
		plus, quals, err := b.compile(&rpeq.Plus{Label: n.Label}, sp[1])
		if err != nil {
			return 0, nil, err
		}
		return b.addNode(newJoin(), []int{sp[0], plus}, 1)[0], quals, nil

	case *rpeq.Optional:
		sp := b.addNode(newSplit(), []int{in}, 2)
		inner, quals, err := b.compile(n.Expr, sp[1])
		if err != nil {
			return 0, nil, err
		}
		return b.addNode(newJoin(), []int{sp[0], inner}, 1)[0], quals, nil

	case *rpeq.Concat:
		mid, lq, err := b.compile(n.Left, in)
		if err != nil {
			return 0, nil, err
		}
		out, rq, err := b.compile(n.Right, mid)
		if err != nil {
			return 0, nil, err
		}
		return out, append(lq, rq...), nil

	case *rpeq.Union:
		sp := b.addNode(newSplit(), []int{in}, 2)
		left, lq, err := b.compile(n.Left, sp[0])
		if err != nil {
			return 0, nil, err
		}
		right, rq, err := b.compile(n.Right, sp[1])
		if err != nil {
			return 0, nil, err
		}
		jo := b.addNode(newJoin(), []int{left, right}, 1)[0]
		un := b.addNode(newUnion(&b.net.cfg), []int{jo}, 1)[0]
		return un, append(lq, rq...), nil

	case *rpeq.Qualifier:
		// Earliest-decision static analysis: a nullable condition — ε in
		// its language, e.g. [b*] or [c?] — is witnessed by the candidate
		// node itself at the very event that opens it, so base[cond] ≡ base.
		// Compiling the condition away resolves such candidates at birth
		// instead of buffering them to scope close: no variable-creator, no
		// condition sub-network, no formula traffic.
		if rpeq.Nullable(n.Cond) {
			return b.compile(n.Base, in)
		}
		if cn, ok := n.Cond.(*rpeq.CondNot); ok {
			return b.compileNegQualifier(n.Base, cn, in)
		}
		base, bq, err := b.compile(n.Base, in)
		if err != nil {
			return 0, nil, err
		}
		// The qualifier id is declared before its condition compiles
		// (the variable-creator precedes the condition sub-network on
		// the tape); the nesting relation is recorded afterwards.
		q := b.net.pool.DeclareQualifier(nil)
		vc := b.addNode(newVC(q, b.net.pool, &b.net.cfg), []int{base}, 1)[0]
		sp := b.addNode(newSplit(), []int{vc}, 2)
		inner, cq, err := b.compile(n.Cond, sp[1])
		if err != nil {
			return 0, nil, err
		}
		b.net.pool.SetNested(q, cq)
		vf := b.addNode(newVF(q, b.net.pool, true), []int{inner}, 1)[0]
		vd := b.addNode(newVD(q, b.net.pool, &b.net.cfg), []int{vf}, 1)[0]
		out := b.addNode(newJoin(), []int{sp[0], vd}, 1)[0]
		quals := append(bq, cq...)
		return out, append(quals, q), nil

	case *rpeq.TextTest:
		// The text-test transducer gates the matches of the path on their
		// string value: activations pass at the end message iff the
		// comparison holds.
		mid, quals, err := b.compile(n.Path, in)
		if err != nil {
			return 0, nil, err
		}
		out := b.addNode(newTextCmp(n.Op, n.Value, &b.net.cfg), []int{mid}, 1)[0]
		return out, quals, nil

	case *rpeq.AttrTest:
		// An attribute self-filter is one constant-memory transducer: the
		// decision falls at the start message, where the attribute list is
		// complete — no variables, no sub-network.
		return b.addNode(newAttrTest(n.Pred, &b.net.cfg), []int{in}, 1)[0], nil, nil

	case *rpeq.AttrStep:
		return b.addNode(newAttrSel(n.Name, &b.net.cfg), []int{in}, 1)[0], nil, nil

	case *rpeq.CondNot:
		// A bare negated condition (a disjunct of an 'or' lowering) is the
		// self-qualifier ε[not(expr)]: it selects the context node itself iff
		// the negated condition matches nothing in its scope.
		return b.compileNegQualifier(&rpeq.Empty{}, n, in)

	case *rpeq.Following:
		return b.addNode(newFollowing(n.Test, &b.net.cfg), []int{in}, 1)[0], nil, nil

	case *rpeq.Preceding:
		// Preceding answers precede their justification, so the step
		// allocates condition variables like a qualifier does; declare a
		// qualifier id owning them so variable filters of enclosing
		// qualifiers keep them.
		q := b.net.pool.DeclareQualifier(nil)
		out := b.addNode(newPreceding(n.Test, q, b.net.pool, &b.net.cfg), []int{in}, 1)[0]
		return out, []cond.QualID{q}, nil

	default:
		return 0, nil, fmt.Errorf("spexnet: unknown expression node %T", expr)
	}
}

// compileNegQualifier translates base[not(cond)]. The topology mirrors the
// positive qualifier's — variable-creator, split, condition sub-network,
// variable filter, determinant, join — with the polarity of the witness
// protocol flipped: the negated variable-creator presumes each instance
// satisfied and announces {c,true} at scope exit, while the negated
// determinant nvdT kills {c,false} any instance whose scope cond selects
// into. The kill arrives no later than the inner match's document message,
// so rejected candidates drop as early as the positive construction accepts
// them; candidates whose condition is an attribute test inside not(...) never
// even reach here — those fold into the attribute formula as AttrNot.
func (b *builder) compileNegQualifier(baseExpr rpeq.Node, cn *rpeq.CondNot, in int) (int, []cond.QualID, error) {
	base, bq, err := b.compile(baseExpr, in)
	if err != nil {
		return 0, nil, err
	}
	if rpeq.Nullable(cn.Expr) {
		// cond is nullable: the candidate itself witnesses it at the event
		// opening its scope, so not(cond) is statically false. Earliest
		// decision: drop base's selections without allocating variables.
		out := b.addNode(newDropAct(), []int{base}, 1)[0]
		return out, bq, nil
	}
	q := b.net.pool.DeclareQualifier(nil)
	vc := b.addNode(newNegVC(q, b.net.pool, &b.net.cfg), []int{base}, 1)[0]
	sp := b.addNode(newSplit(), []int{vc}, 2)
	inner, cq, err := b.compile(cn.Expr, sp[1])
	if err != nil {
		return 0, nil, err
	}
	if len(cq) > 0 {
		// The front ends reject qualifiers under not(...); anything that
		// still declares condition variables (a nested qualifier or a
		// preceding step) would make the unconditional kill unsound.
		return 0, nil, fmt.Errorf("spexnet: cannot negate %s: the condition declares condition variables", cn.Expr)
	}
	b.net.pool.SetNested(q, cq)
	vf := b.addNode(newVF(q, b.net.pool, true), []int{inner}, 1)[0]
	nvd := b.addNode(newNVD(q, b.net.pool), []int{vf}, 1)[0]
	out := b.addNode(newJoin(), []int{sp[0], nvd}, 1)[0]
	return out, append(bq, q), nil
}
