package dataset

// Mondial returns a synthetic stand-in for the MONDIAL geographic database
// (§VI: 1.2 MB, 24,184 elements, maximum depth 5). The generator reproduces
// the properties the Figure-14 queries exercise:
//
//   - mondial/country/province/city/name nesting gives depth 5;
//   - roughly 60% of countries have provinces (driving the qualifier
//     [province] in query classes 2 and 4);
//   - cities occur both under provinces and directly under countries, so
//     _*.province.city and _*.city differ;
//   - countries carry name, religions and other leaves before and after
//     the provinces, producing both past and future conditions.
func Mondial(scale float64) *Doc {
	return &Doc{Name: "mondial", Scale: scale, write: writeMondial}
}

func writeMondial(w *xmlWriter, scale float64) {
	r := newRNG(42)
	countries := scaleCount(240, scale)
	w.start("mondial")
	for i := 0; i < countries; i++ {
		writeCountry(w, r, i)
	}
	// A handful of organizations keep the vocabulary from being
	// country-only, as in the original database.
	for i := 0; i < scaleCount(12, scale); i++ {
		w.start("organization")
		w.leaf("name", r.name())
		w.leaf("abbrev", r.name())
		for m := 0; m < 3+r.intn(5); m++ {
			w.leaf("members", r.name())
		}
		w.end()
	}
	w.end()
}

func writeCountry(w *xmlWriter, r *rng, i int) {
	w.start("country")
	w.leaf("name", r.name())
	w.leaf("population", itoa(10000+r.intn(100000000)))
	w.leaf("government", r.sentence(30))
	w.leaf("capital", r.name())
	hasProvinces := r.chance(60)
	if hasProvinces {
		provinces := 3 + r.intn(14)
		for p := 0; p < provinces; p++ {
			w.start("province")
			w.leaf("name", r.name())
			w.leaf("area", itoa(100+r.intn(100000)))
			cities := 2 + r.intn(5)
			for c := 0; c < cities; c++ {
				w.start("city")
				w.leaf("name", r.name())
				if r.chance(70) {
					w.leaf("population", itoa(1000+r.intn(5000000)))
				}
				w.end()
			}
			w.end()
		}
	} else {
		// Countries without provinces list cities directly.
		cities := 1 + r.intn(4)
		for c := 0; c < cities; c++ {
			w.start("city")
			w.leaf("name", r.name())
			w.end()
		}
	}
	if r.chance(80) {
		w.leaf("ethnicgroups", r.sentence(25))
	}
	// religions appears after the provinces: with the [province]
	// qualifier this is the paper's "past condition" query class 4.
	if r.chance(75) {
		for k := 0; k < 1+r.intn(3); k++ {
			w.leaf("religions", r.pick([]string{"christian", "muslim", "hindu", "buddhist", "jewish", "other"}))
		}
	}
	if r.chance(40) {
		w.leaf("indep_date", itoa(1200+r.intn(800)))
	}
	w.end()
}
