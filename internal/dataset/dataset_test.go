package dataset

import (
	"bytes"
	"testing"

	"repro/internal/xmlstream"
)

// TestMondialShape checks the scale-1 stand-in against the paper's reported
// statistics for MONDIAL: 24,184 elements, maximum depth 5, about 1.2 MB.
func TestMondialShape(t *testing.T) {
	d := Mondial(1)
	info := d.Info()
	if info.MaxDepth != 5 {
		t.Errorf("depth: got %d, want 5", info.MaxDepth)
	}
	if info.Elements < 18000 || info.Elements > 32000 {
		t.Errorf("elements: got %d, want ≈24,184", info.Elements)
	}
	// The original's 1.2 MB includes attributes, which the paper's data
	// model (and ours) excludes; element markup plus text comes out
	// smaller at the same element count.
	size := len(d.Bytes())
	if size < 300_000 || size > 2_400_000 {
		t.Errorf("size: got %d bytes, want several hundred KB", size)
	}
}

// TestWordNetShape checks against the paper: 207,899 elements, depth 3,
// 9.5 MB.
func TestWordNetShape(t *testing.T) {
	info := WordNet(1).Info()
	if info.MaxDepth != 3 {
		t.Errorf("depth: got %d, want 3", info.MaxDepth)
	}
	if info.Elements < 160_000 || info.Elements > 260_000 {
		t.Errorf("elements: got %d, want ≈207,899", info.Elements)
	}
}

// TestDMOZShape checks the scaled-down structure dump keeps the paper's
// ratios: at scale 1 the paper reports 3,940,716 elements and depth 3; we
// verify at scale 0.01 (≈39k elements).
func TestDMOZShape(t *testing.T) {
	info := DMOZStructure(0.01).Info()
	if info.MaxDepth != 3 {
		t.Errorf("structure depth: got %d, want 3", info.MaxDepth)
	}
	if info.Elements < 25_000 || info.Elements > 55_000 {
		t.Errorf("structure elements at scale 0.01: got %d, want ≈39,400", info.Elements)
	}
	cinfo := DMOZContent(0.01).Info()
	if cinfo.MaxDepth != 3 {
		t.Errorf("content depth: got %d, want 3", cinfo.MaxDepth)
	}
	if cinfo.Elements < 80_000 || cinfo.Elements > 180_000 {
		t.Errorf("content elements at scale 0.01: got %d, want ≈132,000", cinfo.Elements)
	}
}

// TestDeterministic verifies byte-identical regeneration.
func TestDeterministic(t *testing.T) {
	a := Mondial(0.05).Bytes()
	b := Mondial(0.05).Bytes()
	if !bytes.Equal(a, b) {
		t.Fatal("mondial generation is not deterministic")
	}
	c := RandomTree(7, 5, 3, nil).Bytes()
	d := RandomTree(7, 5, 3, nil).Bytes()
	if !bytes.Equal(c, d) {
		t.Fatal("random tree generation is not deterministic")
	}
	e := RandomTree(8, 5, 3, nil).Bytes()
	if bytes.Equal(c, e) {
		t.Fatal("different seeds produced identical trees")
	}
}

// TestWellFormed scans every generator's output through the strict scanner.
func TestWellFormed(t *testing.T) {
	docs := []*Doc{
		Mondial(0.05), WordNet(0.01), DMOZStructure(0.001), DMOZContent(0.001),
		RandomTree(3, 6, 4, nil), Recursive("a", 50), Ladder(20),
	}
	for _, d := range docs {
		if _, err := xmlstream.Measure(d.Stream()); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

// TestRecursiveDepth checks the chain generator's depth.
func TestRecursiveDepth(t *testing.T) {
	info := Recursive("a", 123).Info()
	if info.MaxDepth != 123 || info.Elements != 123 {
		t.Fatalf("got depth %d, elements %d; want 123, 123", info.MaxDepth, info.Elements)
	}
}
