package dataset

import (
	"io"

	"repro/internal/xmlstream"
)

// RandomTree returns a document of pseudo-random structure over a small
// label alphabet; the property-based tests use it to compare SPEX with the
// baselines on arbitrary shapes.
func RandomTree(seed uint64, maxDepth, maxFanout int, labels []string) *Doc {
	return RandomTreeText(seed, maxDepth, maxFanout, labels, nil)
}

// RandomTreeText is RandomTree with character data drawn from texts
// interleaved between children (skipped when texts is empty); used by the
// text-test property suite.
func RandomTreeText(seed uint64, maxDepth, maxFanout int, labels, texts []string) *Doc {
	if len(labels) == 0 {
		labels = []string{"a", "b", "c", "d"}
	}
	return &Doc{Name: "random", Scale: 1, write: func(w *xmlWriter, _ float64) {
		r := newRNG(seed)
		var gen func(depth int)
		gen = func(depth int) {
			w.start(r.pick(labels))
			if len(texts) > 0 && r.chance(40) {
				w.text(r.pick(texts))
			}
			if depth < maxDepth {
				kids := r.intn(maxFanout + 1)
				for i := 0; i < kids; i++ {
					gen(depth + 1)
					if len(texts) > 0 && r.chance(20) {
						w.text(r.pick(texts))
					}
				}
			}
			w.end()
		}
		gen(1)
	}}
}

// Recursive returns a document that is a single chain of nested elements of
// the given depth, all with the given label — the worst case for
// stack-depth growth (§V) and the shape behind Theorem IV.1's non-regular
// language argument.
func Recursive(label string, depth int) *Doc {
	return &Doc{Name: "recursive", Scale: 1, write: func(w *xmlWriter, _ float64) {
		for i := 0; i < depth; i++ {
			w.start(label)
		}
		for i := 0; i < depth; i++ {
			w.end()
		}
	}}
}

// Ladder returns a document of the given depth alternating between labels,
// with a qualifier witness leaf at each level; used by the formula-growth
// experiments (E9): queries with qualifiers on wildcard closure steps see
// one active instance per level.
func Ladder(depth int) *Doc {
	return &Doc{Name: "ladder", Scale: 1, write: func(w *xmlWriter, _ float64) {
		var gen func(level int)
		gen = func(level int) {
			w.start("a")
			w.leaf("q", itoa(level))
			if level < depth {
				gen(level + 1)
			}
			w.end()
		}
		gen(1)
	}}
}

// Events returns the document's event stream by scanning its serialized
// form; a convenience for tests.
func (d *Doc) Events() []xmlstream.Event {
	pr, pw := io.Pipe()
	go func() {
		_, err := d.WriteTo(pw)
		pw.CloseWithError(err)
	}()
	evs, err := xmlstream.Collect(xmlstream.NewScanner(pr))
	must(err)
	return evs
}

// Info measures the generated document (element count, depth, events).
func (d *Doc) Info() xmlstream.Info {
	pr, pw := io.Pipe()
	go func() {
		_, err := d.WriteTo(pw)
		pw.CloseWithError(err)
	}()
	info, err := xmlstream.Measure(xmlstream.NewScanner(pr))
	must(err)
	return info
}

// Stream returns a Source scanning the document; generation runs
// concurrently through a pipe, so memory stays constant regardless of
// document size.
func (d *Doc) Stream() xmlstream.Source {
	pr, pw := io.Pipe()
	go func() {
		_, err := d.WriteTo(pw)
		pw.CloseWithError(err)
	}()
	return xmlstream.NewScanner(pr)
}
