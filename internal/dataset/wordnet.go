package dataset

// WordNet returns a synthetic stand-in for the paper's WordNet RDF excerpt
// (§VI: 9.5 MB, 207,899 elements, maximum depth 3): a flat, highly
// repetitive sequence of Noun records, each carrying one or more wordForm
// leaves and a glossaryEntry. Roughly 85% of nouns have a wordForm, so the
// qualifier query _*.Noun[wordForm] (class 2) selects most but not all
// records.
func WordNet(scale float64) *Doc {
	return &Doc{Name: "wordnet", Scale: scale, write: writeWordNet}
}

func writeWordNet(w *xmlWriter, scale float64) {
	r := newRNG(1998)
	nouns := scaleCount(52000, scale)
	w.start("rdf")
	for i := 0; i < nouns; i++ {
		w.start("Noun")
		if r.chance(85) {
			forms := 1 + r.intn(3)
			for f := 0; f < forms; f++ {
				w.leaf("wordForm", r.name())
			}
		}
		w.leaf("glossaryEntry", r.sentence(40))
		if r.chance(30) {
			w.leaf("hyponymOf", itoa(r.intn(nouns+1)))
		}
		w.end()
	}
	w.end()
}

// DMOZStructure returns a synthetic stand-in for the DMOZ Open Directory
// structure dump (§VI: 300 MB, 3,940,716 elements, maximum depth 3): a very
// large flat RDF document of Topic records. About 20% of topics have an
// editor, driving the qualifier queries of Figure 15; newsGroup appears
// before Title within a topic so that _*.Topic[editor].newsGroup is a past
// condition (class 4) while _*.Topic[editor].Title is a future condition
// (class 2) — matching the paper's query selection.
func DMOZStructure(scale float64) *Doc {
	return &Doc{Name: "dmoz-structure", Scale: scale, write: writeDMOZStructure}
}

func writeDMOZStructure(w *xmlWriter, scale float64) {
	r := newRNG(7177)
	topics := scaleCount(690000, scale)
	w.start("RDF")
	for i := 0; i < topics; i++ {
		w.start("Topic")
		w.leaf("catid", itoa(i))
		if r.chance(35) {
			w.leaf("newsGroup", "news."+r.name())
		}
		w.leaf("Title", r.name())
		if r.chance(20) {
			w.leaf("editor", r.name())
		}
		links := r.intn(4)
		for l := 0; l < links; l++ {
			w.leaf("link", "http://"+r.name()+".example/"+r.name())
		}
		w.end()
	}
	w.end()
}

// DMOZContent returns a synthetic stand-in for the DMOZ content dump (§VI:
// 1 GB, 13,233,278 elements, maximum depth 3): Topic records interleaved
// with ExternalPage records carrying heavier text content.
func DMOZContent(scale float64) *Doc {
	return &Doc{Name: "dmoz-content", Scale: scale, write: writeDMOZContent}
}

func writeDMOZContent(w *xmlWriter, scale float64) {
	r := newRNG(20020514)
	groups := scaleCount(1160000, scale)
	w.start("RDF")
	for i := 0; i < groups; i++ {
		w.start("Topic")
		w.leaf("catid", itoa(i))
		if r.chance(35) {
			w.leaf("newsGroup", "news."+r.name())
		}
		w.leaf("Title", r.name())
		if r.chance(20) {
			w.leaf("editor", r.name())
		}
		w.end()
		pages := 1 + r.intn(3)
		for p := 0; p < pages; p++ {
			w.start("ExternalPage")
			w.leaf("Title", r.sentence(20))
			w.leaf("Description", r.sentence(120))
			w.leaf("topic", itoa(i))
			w.end()
		}
	}
	w.end()
}
