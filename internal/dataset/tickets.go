package dataset

// Tickets generates the attribute-bearing corpus behind the value-pred
// figure: an issue-tracker dump in the shape of the motivating query
// items/item[@status="closed" and not(@resolution)]/summary. Each item
// carries its state twice — as attributes on the start tag and mirrored as
// trailing child elements — so the same selection can be phrased as an
// attribute predicate (decidable at the item's start message), a structural
// qualifier, or a text test (decidable only once the mirror children at the
// end of the item have streamed past). The body prose between the summary
// and the mirrors is what the non-attribute phrasings must wait through.
//
// At scale 1 the dump holds 2000 items: half closed, and ~30% of all items
// resolved, so every pairing of the figure selects a nonzero set.
func Tickets(scale float64) *Doc {
	return &Doc{Name: "tickets", Scale: scale, write: func(w *xmlWriter, scale float64) {
		r := newRNG(0x71C4E75)
		items := scaleCount(2000, scale)
		w.start("items")
		for i := 0; i < items; i++ {
			status := "open"
			if r.chance(50) {
				status = "closed"
			}
			resolved := r.chance(30)
			if resolved {
				w.startAttrs("item", "status", status, "resolution", "fixed")
			} else {
				w.startAttrs("item", "status", status)
			}
			w.leaf("summary", r.sentence(40))
			w.start("body")
			for p := 0; p < 3; p++ {
				w.leaf("para", r.sentence(60))
			}
			w.end()
			// The mirrors: the same facts as late children, the worst
			// decision point for a streamed qualifier.
			w.leaf("state", status)
			if resolved {
				w.leaf("resolution", "fixed")
			}
			w.end()
		}
		w.end()
	}}
}
