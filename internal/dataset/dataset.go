// Package dataset generates the synthetic stand-ins for the documents of
// the paper's evaluation (§VI): the MONDIAL geographic database (small,
// deep, highly structured), a WordNet RDF excerpt (medium, flat, highly
// repetitive), and the DMOZ Open Directory structure and content dumps
// (large to very large, flat). The originals are not redistributable here;
// the generators reproduce the characteristics the experiments depend on —
// element vocabulary, element counts, nesting depth, and qualifier
// satisfaction rates — as documented per generator. Generation is
// deterministic for a given scale.
//
// Generators write serialized XML to an io.Writer and never materialize the
// document, so arbitrarily large (or unbounded) streams can be produced in
// constant memory.
package dataset

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// Doc describes one generatable document.
type Doc struct {
	// Name identifies the document in benchmark output, e.g. "mondial".
	Name string
	// Scale multiplies the document size; scale 1 approximates the
	// paper's element count.
	Scale float64
	write func(w *xmlWriter, scale float64)
}

// WriteTo streams the document to w. It implements io.WriterTo.
func (d *Doc) WriteTo(w io.Writer) (int64, error) {
	xw := newXMLWriter(w)
	d.write(xw, d.Scale)
	return xw.n, xw.flush()
}

// Bytes renders the document into memory; intended for the small and
// medium documents reused across benchmark iterations.
func (d *Doc) Bytes() []byte {
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		panic(err) // bytes.Buffer does not fail
	}
	return buf.Bytes()
}

// xmlWriter emits well-formed XML with minimal overhead.
type xmlWriter struct {
	w    io.Writer
	buf  []byte
	n    int64
	err  error
	open []string
}

func newXMLWriter(w io.Writer) *xmlWriter {
	return &xmlWriter{w: w, buf: make([]byte, 0, 1<<16)}
}

func (w *xmlWriter) flushIfFull() {
	if len(w.buf) >= 1<<16-256 {
		w.flush()
	}
}

func (w *xmlWriter) flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) > 0 {
		n, err := w.w.Write(w.buf)
		w.n += int64(n)
		w.err = err
		w.buf = w.buf[:0]
	}
	return w.err
}

func (w *xmlWriter) start(name string) {
	w.buf = append(w.buf, '<')
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, '>')
	w.open = append(w.open, name)
	w.flushIfFull()
}

// startAttrs writes an element start tag carrying attributes, given as
// alternating name, value pairs. Values are escaped; names are assumed to
// be identifier-shaped (the generators control them).
func (w *xmlWriter) startAttrs(name string, pairs ...string) {
	w.buf = append(w.buf, '<')
	w.buf = append(w.buf, name...)
	for i := 0; i+1 < len(pairs); i += 2 {
		w.buf = append(w.buf, ' ')
		w.buf = append(w.buf, pairs[i]...)
		w.buf = append(w.buf, '=', '"')
		w.buf = appendAttrEscaped(w.buf, pairs[i+1])
		w.buf = append(w.buf, '"')
	}
	w.buf = append(w.buf, '>')
	w.open = append(w.open, name)
	w.flushIfFull()
}

// appendAttrEscaped appends s with the characters significant inside a
// double-quoted attribute value replaced by entity references.
func appendAttrEscaped(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			buf = append(buf, "&amp;"...)
		case '<':
			buf = append(buf, "&lt;"...)
		case '"':
			buf = append(buf, "&quot;"...)
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

func (w *xmlWriter) end() {
	name := w.open[len(w.open)-1]
	w.open = w.open[:len(w.open)-1]
	w.buf = append(w.buf, '<', '/')
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, '>')
	w.flushIfFull()
}

func (w *xmlWriter) text(s string) {
	w.buf = append(w.buf, s...)
	w.flushIfFull()
}

// leaf writes <name>text</name>.
func (w *xmlWriter) leaf(name, text string) {
	w.start(name)
	w.text(text)
	w.end()
}

// rng is a small deterministic generator (xorshift64*), so documents are
// reproducible across platforms and Go releases.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// chance returns true with probability pct/100.
func (r *rng) chance(pct int) bool { return r.intn(100) < pct }

// pick returns a deterministic pseudo-random element of choices.
func (r *rng) pick(choices []string) string { return choices[r.intn(len(choices))] }

// scaleCount scales a base count, keeping at least 1.
func scaleCount(base int, scale float64) int {
	n := int(float64(base)*scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

func itoa(i int) string { return strconv.Itoa(i) }

// name synthesizes a short pronounceable identifier from the rng.
func (r *rng) name() string {
	consonants := "bcdfgklmnprstv"
	vowels := "aeiou"
	n := 2 + r.intn(3)
	out := make([]byte, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out, consonants[r.intn(len(consonants))], vowels[r.intn(len(vowels))])
	}
	return string(out)
}

// sentence synthesizes filler prose of approximately the given length.
func (r *rng) sentence(approx int) string {
	var b bytes.Buffer
	for b.Len() < approx {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(r.name())
	}
	return b.String()
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("dataset: %v", err))
	}
}
