package dataset

// Adversarial document shapes: each one attacks a specific resource bound
// of the streamed evaluation — the stack (depth), the candidate queue
// (fanout under an undecided qualifier), the condition-formula store
// (nested qualifiers over a ladder), and the per-event constant factors
// (empty-element runs). The governor and the scanner limits are tested and
// benchmarked against exactly these shapes; the golden corpus under
// testdata/adversarial/ records their expected counts.

// Deep returns a single chain of depth nested <a> elements with one <b/>
// witness at the bottom — the stack-depth attack. A query such as
// _*.a[_*.b] keeps the whole chain undecided until the witness arrives.
func Deep(depth int) *Doc {
	return &Doc{Name: "deep", Scale: 1, write: func(w *xmlWriter, _ float64) {
		for i := 0; i < depth; i++ {
			w.start("a")
		}
		w.start("b")
		w.end()
		for i := 0; i < depth; i++ {
			w.end()
		}
	}}
}

// Fanout returns a root with n <item> children, each holding one <v/> leaf
// — the sibling-population attack. Candidate-producing queries see n
// answers; with the witness placed after each item's content the candidate
// queue stays shallow, so this shape isolates throughput, not memory.
func Fanout(n int) *Doc {
	return &Doc{Name: "fanout", Scale: 1, write: func(w *xmlWriter, _ float64) {
		w.start("root")
		for i := 0; i < n; i++ {
			w.start("item")
			w.start("v")
			w.end()
			w.end()
		}
		w.end()
	}}
}

// FanoutLate returns a root with n <item> children whose shared qualifier
// witness <w/> arrives only after all of them — the candidate-queue bomb.
// Under root[w].item (or _*[w] shapes) every item stays undecided until the
// stream's end, so the undecided population reaches n.
func FanoutLate(n int) *Doc {
	return &Doc{Name: "fanout-late", Scale: 1, write: func(w *xmlWriter, _ float64) {
		w.start("root")
		for i := 0; i < n; i++ {
			w.start("item")
			w.end()
		}
		w.start("w")
		w.end()
		w.end()
	}}
}

// QualBomb returns a ladder of depth alternating <a> elements, each level
// carrying a <q/> witness only on the LAST level — the condition-formula
// attack. Nested-qualifier queries over wildcard closures (_*[_*[q]])
// accumulate one live variable per level and formulas linear in depth,
// matching the §V o(φ) bound's worst case.
func QualBomb(depth int) *Doc {
	return &Doc{Name: "qualbomb", Scale: 1, write: func(w *xmlWriter, _ float64) {
		for i := 0; i < depth; i++ {
			w.start("a")
		}
		w.start("q")
		w.end()
		for i := 0; i < depth; i++ {
			w.end()
		}
	}}
}

// EmptyRun returns a root holding n self-contained empty <e/> elements in a
// row — the per-event constant-factor attack: maximal event rate, minimal
// structure, every candidate decided instantly.
func EmptyRun(n int) *Doc {
	return &Doc{Name: "emptyrun", Scale: 1, write: func(w *xmlWriter, _ float64) {
		w.start("root")
		for i := 0; i < n; i++ {
			w.start("e")
			w.end()
		}
		w.end()
	}}
}

// Adversarial lists the golden adversarial corpus: every shape at the size
// the CI corpus checks, with the query each shape attacks. Tests and the
// spexbench adversarial sweep iterate this table.
func Adversarial() []AdversarialCase {
	return AdversarialAt(1)
}

// AdversarialAt returns the corpus with every shape's size multiplied by
// the given factor (1 = the golden sizes); each Want tracks its scaled
// size, so a shrunken sweep stays self-checking. Factors below 1/size
// clamp to one element.
func AdversarialAt(scale float64) []AdversarialCase {
	n := func(base int) int {
		if scale == 1 {
			return base
		}
		v := int(float64(base) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	deep, fan, late, qual, empty := n(10_000), n(1_000_000), n(100_000), n(5_000), n(1_000_000)
	return []AdversarialCase{
		// Every a on the depth-10k chain stays undecided until the bottom
		// witness: the whole chain is live at once.
		{Doc: Deep(deep), Size: deep, Query: "_*.a[_*.b]", Want: int64(deep)},
		{Doc: Fanout(fan), Size: fan, Query: "root.item.v", Want: int64(fan)},
		{Doc: FanoutLate(late), Size: late, Query: "root[w].item", Want: int64(late)},
		// The nested-qualifier formula bomb; the root matches too, hence
		// depth+1 answers.
		{Doc: QualBomb(qual), Size: qual, Query: "_*[_*[q]]", Want: int64(qual) + 1},
		{Doc: EmptyRun(empty), Size: empty, Query: "root.e", Want: int64(empty)},
	}
}

// AdversarialCase pairs an adversarial document with the query that
// attacks it and the expected answer count.
type AdversarialCase struct {
	Doc *Doc
	// Size is the shape's generation parameter (depth or element count).
	Size  int
	Query string
	Want  int64
}
