package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/dom"
	"repro/internal/rpeq"
)

// randAxisQuery builds a random query containing a following or preceding
// step: a structural prefix, the axis, and optionally a structural suffix.
func randAxisQuery(r *rand.Rand, depth int) rpeq.Node {
	labels := []string{"a", "b", "c", "_"}
	test := labels[r.Intn(len(labels))]
	var axis rpeq.Node
	if r.Intn(2) == 0 {
		axis = &rpeq.Following{Test: test}
	} else {
		axis = &rpeq.Preceding{Test: test}
	}
	expr := rpeq.Node(&rpeq.Concat{Left: randQuery(r, depth), Right: axis})
	if r.Intn(2) == 0 {
		expr = &rpeq.Concat{Left: expr, Right: randQuery(r, 1)}
	}
	return expr
}

// TestPropertyAxes: SPEX's streaming following/preceding transducers agree
// with the direct DOM evaluation on random documents and random queries.
// (The automaton baseline is restricted to the paper's core grammar and
// sits this one out.)
func TestPropertyAxes(t *testing.T) {
	count := 300
	if testing.Short() {
		count = 50
	}
	prop := func(docSeed uint16, querySeed uint16) bool {
		doc := dataset.RandomTree(uint64(docSeed)+1, 5, 3, []string{"a", "b", "c"})
		xml := string(doc.Bytes())
		r := rand.New(rand.NewSource(int64(querySeed)))
		expr := randAxisQuery(r, 2)

		tree, err := dom.BuildString(xml)
		if err != nil {
			return false
		}
		want := indexList(TreeWalk{}.Eval(tree, expr))
		got, err := spexIndices(expr, xml)
		if err != nil {
			t.Logf("spex failed: %s over %s: %v", expr, xml, err)
			return false
		}
		if !equalInt64(got, want) {
			t.Logf("disagreement:\n query %s\n doc   %s\n walk  %v\n spex  %v", expr, xml, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}
