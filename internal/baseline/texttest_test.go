package baseline

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/rpeq"
)

// Text-test qualifiers (a[b = "v"], an extension toward the XPath/XQuery
// migration of §VII/IX) cross-validated: SPEX vs both in-memory engines.

const textDoc = `<catalog>` +
	`<book><title>Streams</title><lang>en</lang></book>` +
	`<book><title>Flüsse</title><lang>de</lang></book>` +
	`<book><title>Streams</title><lang>de</lang></book>` +
	`<book><lang>en</lang></book>` +
	`</catalog>`

func TestTextQualifierCrossValidation(t *testing.T) {
	queries := []string{
		`catalog.book[lang = "en"]`,
		`catalog.book[lang = "de"].title`,
		`catalog.book[lang != "en"]`,
		`catalog.book[title = "Streams"][lang = "de"]`,
		`_*.book[title *= "eam"]`,
		`catalog.book[title = "nope"]`,
		`_*._[%e = "en"]`,
		`catalog[book.lang = "en"].book`,
	}
	tree, err := dom.BuildString(textDoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		expr, err := rpeq.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		want := indexList(TreeWalk{}.Eval(tree, expr))
		wantA := indexList(Automaton{}.Eval(tree, expr))
		got, err := spexIndices(expr, textDoc)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !equalInt64(got, want) || !equalInt64(got, wantA) {
			t.Errorf("%s:\n spex %v\n walk %v\n auto %v", q, got, want, wantA)
		}
	}
}

// TestTextQualifierStringValue: the string value concatenates nested text.
func TestTextQualifierStringValue(t *testing.T) {
	doc := `<r><p>hello <b>world</b>!</p><p>bye</p></r>`
	expr := rpeq.MustParse(`r.p[%e = "hello world!"]`)
	got, err := spexIndices(expr, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want [2]", got)
	}
}

// TestTextQualifierXPath: the XPath front end accepts the same tests.
func TestTextQualifierXPath(t *testing.T) {
	expr, err := rpeq.Parse(`//book[lang = "en"]/title`, rpeq.WithXPath())
	if err != nil {
		t.Fatal(err)
	}
	got, err := spexIndices(expr, textDoc)
	if err != nil {
		t.Fatal(err)
	}
	// Only book 1 has lang=en AND a title (book 4 has no title).
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("got %v, want [3]", got)
	}
	// Single-quoted strings too.
	if _, err := rpeq.Parse(`//book[lang = 'en']`, rpeq.WithXPath()); err != nil {
		t.Fatal(err)
	}
}

// TestTextQualifierGenerated sweeps a larger generated document with a mix
// of values to exercise buffer recycling and many instances.
func TestTextQualifierGenerated(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<db>")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "<rec><k>%d</k><tag>t%d</tag></rec>", i%7, i%3)
	}
	sb.WriteString("</db>")
	doc := sb.String()
	tree, err := dom.BuildString(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{`db.rec[k = "3"]`, `db.rec[k = "3"][tag = "t0"]`, `db.rec[k != "0"].tag`} {
		expr := rpeq.MustParse(q)
		want := indexList(TreeWalk{}.Eval(tree, expr))
		got, err := spexIndices(expr, doc)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !equalInt64(got, want) {
			t.Errorf("%s: spex %d answers, walk %d", q, len(got), len(want))
		}
	}
}
