package baseline

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/rpeq"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

const paperDoc = `<a><a><c/></a><b/><c/></a>`

var crossQueries = []string{
	"a", "a.c", "a.a.c", "a+.c+", "_*.c", "_", "_+", "_*._",
	"a.(b|c)", "(a|b).c", "a?.a", "a.a?.c",
	"_*.a[b].c", "_*.a[c].c", "a[b]", "a[x]", "a[a.c].b",
	"a[a[c]]", "a[a[c]].b", "_*.a[_*.c]", "%e", "%e.a", "(a|%e)",
	"a[b].a", "a[a].c", "_*.a[b]._*.c",
}

var crossDocs = []string{
	paperDoc,
	`<r/>`,
	`<a><b><a><b/></a></b><c><a><c/></a></c></a>`,
	`<a><x><a/></x><a><a/></a></a>`,
	`<x><a><b/><c/></a><a><c/></a><a><b/></a></x>`,
}

func spexNodes(t *testing.T, expr rpeq.Node, doc string) []int64 {
	t.Helper()
	var got []int64
	net, err := spexnet.Build(expr, spexnet.Options{Mode: spexnet.ModeNodes,
		Sink: func(r spexnet.Result) { got = append(got, r.Index) }})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := net.Run(xmlstream.NewScanner(strings.NewReader(doc))); err != nil {
		t.Fatalf("run: %v", err)
	}
	return got
}

func baselineNodes(t *testing.T, ev Evaluator, expr rpeq.Node, doc string) []int64 {
	t.Helper()
	tree, err := dom.BuildString(doc)
	if err != nil {
		t.Fatalf("dom: %v", err)
	}
	nodes := ev.Eval(tree, expr)
	out := make([]int64, len(nodes))
	for i, n := range nodes {
		out[i] = n.Index
	}
	return out
}

// TestCrossValidation checks that SPEX, the tree-walk baseline and the
// automaton baseline select exactly the same nodes for every query/document
// combination.
func TestCrossValidation(t *testing.T) {
	for _, doc := range crossDocs {
		for _, q := range crossQueries {
			expr, err := rpeq.Parse(q)
			if err != nil {
				t.Fatalf("parse %q: %v", q, err)
			}
			want := spexNodes(t, expr, doc)
			for _, ev := range []Evaluator{TreeWalk{}, Automaton{}} {
				got := baselineNodes(t, ev, expr, doc)
				if !equalInt64(got, want) {
					t.Errorf("%s disagrees with SPEX on %q over %s:\n  %s: %v\n  spex: %v",
						ev.Name(), q, doc, ev.Name(), got, want)
				}
			}
		}
	}
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTreeWalkBasics(t *testing.T) {
	tree, err := dom.BuildString(paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	got := TreeWalk{}.Eval(tree, rpeq.MustParse("a.c"))
	if len(got) != 1 || got[0].Index != 5 {
		t.Fatalf("a.c: got %v", got)
	}
	if n := tree.Count(); n != 5 {
		t.Fatalf("Count: got %d, want 5", n)
	}
	if d := tree.Depth(); d != 3 {
		t.Fatalf("Depth: got %d, want 3", d)
	}
}

func TestAutomatonClosureChains(t *testing.T) {
	tree, err := dom.BuildString(`<a><x><a/></x><a><a/></a></a>`)
	if err != nil {
		t.Fatal(err)
	}
	got := Automaton{}.Eval(tree, rpeq.MustParse("a+"))
	var idx []int64
	for _, n := range got {
		idx = append(idx, n.Index)
	}
	want := []int64{1, 4, 5}
	if !equalInt64(idx, want) {
		t.Fatalf("a+: got %v, want %v", idx, want)
	}
}

func TestEvalReader(t *testing.T) {
	nodes, err := EvalReader(TreeWalk{}, strings.NewReader(paperDoc), rpeq.MustParse("_*.c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes, want 2", len(nodes))
	}
}
