package baseline

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/dom"
	"repro/internal/rpeq"
)

// The following/preceding extension (§I: the prototype "supports also
// other XPath navigational capabilities, i.e. following and preceding") is
// validated against the tree-walk baseline, which implements the axes
// directly on the materialized tree.

func TestFollowingPrecedingAgainstDOM(t *testing.T) {
	queries := []string{
		"//a/following::b",
		"//a/following::*",
		"/a/b/following::c",
		"//b/preceding::a",
		"//c/preceding::*",
		"/a/following::a",
		"//a/preceding::a",
		// Continuations after the axis step.
		"//a/following::b/c",
	}
	var docs []string
	docs = append(docs,
		`<a><b><c/></b><b/><a><b><c/></b></a></a>`,
		`<x><a/><b/><a/><b/></x>`,
		`<a><a><a/></a></a>`,
	)
	for seed := uint64(50); seed < 85; seed++ {
		docs = append(docs, string(dataset.RandomTree(seed, 5, 3, []string{"a", "b", "c"}).Bytes()))
	}
	for _, doc := range docs {
		tree, err := dom.BuildString(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			expr, err := rpeq.Parse(q, rpeq.WithXPath())
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			want := indexList(TreeWalk{}.Eval(tree, expr))
			got, err := spexIndices(expr, doc)
			if err != nil {
				t.Fatalf("%s over %s: %v", q, doc, err)
			}
			if !equalInt64(got, want) {
				t.Errorf("%s over %s:\n spex %v\n walk %v", q, doc, got, want)
			}
		}
	}
}

// TestAxesInPredicatesRejected: following/preceding reach outside the
// candidate's subtree, which the scope-bound qualifier machinery cannot
// evaluate (a qualifier instance finalizes when its scope closes, before
// any following element arrives); the front end rejects such predicates
// with a clear error rather than computing a wrong answer.
func TestAxesInPredicatesRejected(t *testing.T) {
	for _, q := range []string{"//a[following::b]", "//b[preceding::a]"} {
		if _, err := rpeq.Parse(q, rpeq.WithXPath()); err == nil {
			t.Errorf("%s: expected an error", q)
		}
	}
}

// TestFollowingExcludesDescendantsAndAncestors pins the axis semantics on a
// known tree.
func TestFollowingExcludesDescendantsAndAncestors(t *testing.T) {
	// Indices: a@1 b@2 c@3 d@4 e@5.
	doc := `<a><b><c/></b><d><e/></d></a>`
	expr := rpeq.MustParseXPath("//b/following::*")
	got, err := spexIndices(expr, doc)
	if err != nil {
		t.Fatal(err)
	}
	// Following b@2: d@4 and e@5 (c@3 is b's descendant; a@1 its ancestor).
	want := []int64{4, 5}
	if !equalInt64(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestPrecedingExcludesAncestors pins the mirror case.
func TestPrecedingExcludesAncestors(t *testing.T) {
	doc := `<a><b><c/></b><d><e/></d></a>`
	expr := rpeq.MustParseXPath("//e/preceding::*")
	got, err := spexIndices(expr, doc)
	if err != nil {
		t.Fatal(err)
	}
	// Preceding e@5: b@2 and c@3 (a@1 and d@4 are ancestors).
	want := []int64{2, 3}
	if !equalInt64(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestPrecedingProgressiveDrop: preceding-axis candidates that never see a
// context are dropped at end of stream, and candidates are answered as soon
// as a context arrives.
func TestPrecedingProgressiveDrop(t *testing.T) {
	doc := `<x><b/><a/><b/></x>`
	expr := rpeq.MustParseXPath("//a/preceding::b")
	got, err := spexIndices(expr, doc)
	if err != nil {
		t.Fatal(err)
	}
	// Only the first b precedes the a; the second b follows it.
	want := []int64{2}
	if !equalInt64(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
