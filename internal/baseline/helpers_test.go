package baseline

import (
	"strings"

	"repro/internal/rpeq"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// buildNet builds a SPEX network that reports answer indices (and, when
// serialize is non-nil, serialized subtrees).
func buildNet(expr rpeq.Node, onIndex func(int64), serialize func(int64, string)) (*spexnet.Network, error) {
	if serialize != nil {
		return spexnet.Build(expr, spexnet.Options{
			Mode: spexnet.ModeSerialize,
			Sink: func(r spexnet.Result) { serialize(r.Index, xmlstream.Serialize(r.Events)) },
		})
	}
	return spexnet.Build(expr, spexnet.Options{
		Mode: spexnet.ModeNodes,
		Sink: func(r spexnet.Result) { onIndex(r.Index) },
	})
}

// evalSerialize runs expr over doc in serialize mode, invoking fn per
// answer.
func evalSerialize(expr rpeq.Node, doc string, fn func(int64, string)) (spexnet.Stats, error) {
	net, err := buildNet(expr, nil, fn)
	if err != nil {
		return spexnet.Stats{}, err
	}
	return net.Run(xmlstream.NewScanner(strings.NewReader(doc)))
}
