// Package baseline implements the in-memory comparator processors of the
// paper's evaluation (§VI). Both first materialize the entire document as a
// tree — the defining trait of the processors SPEX is compared against —
// and then evaluate the rpeq over the tree:
//
//   - TreeWalk navigates the tree recursively, the algorithmic class of an
//     XSLT/XPath engine such as Saxon.
//   - Automaton compiles the rpeq into an NFA over root-to-node label paths
//     and runs it top-down over the tree, the algorithmic class of a regular
//     tree-expression engine such as Fxgrep.
//
// The two baselines and SPEX must agree on every query and document; the
// cross-validation tests and the property-based tests enforce this.
package baseline

import (
	"io"
	"sort"

	"repro/internal/dom"
	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// Evaluator evaluates an rpeq over a materialized document tree and returns
// the selected nodes in document order.
type Evaluator interface {
	// Name identifies the evaluator in benchmark output.
	Name() string
	// Eval returns the nodes of doc selected by expr, in document order,
	// without duplicates.
	Eval(doc *dom.Node, expr rpeq.Node) []*dom.Node
}

// EvalStream runs the full in-memory pipeline: materialize the stream, then
// evaluate. This is what the paper times for Saxon and Fxgrep, and what
// exhausts memory on the DMOZ-sized documents of Fig. 15.
func EvalStream(ev Evaluator, src xmlstream.Source, expr rpeq.Node) ([]*dom.Node, error) {
	doc, err := dom.Build(src)
	if err != nil {
		return nil, err
	}
	return ev.Eval(doc, expr), nil
}

// EvalReader is EvalStream over raw XML bytes.
func EvalReader(ev Evaluator, r io.Reader, expr rpeq.Node) ([]*dom.Node, error) {
	return EvalStream(ev, xmlstream.NewScanner(r), expr)
}

// nodeSet is a set of tree nodes that preserves cheap iteration in document
// order via sorting on demand.
type nodeSet map[*dom.Node]bool

func (s nodeSet) add(n *dom.Node) { s[n] = true }

func (s nodeSet) ordered() []*dom.Node {
	out := make([]*dom.Node, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sortByIndex(out)
	return out
}

func sortByIndex(nodes []*dom.Node) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Index < nodes[j].Index })
}
