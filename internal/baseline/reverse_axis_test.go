package baseline

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/dom"
	"repro/internal/rpeq"
)

// These tests validate the reverse-axis rewriting (rpeq/reverse.go, the
// paper's §II.2 claim that parent and ancestor are expressible in the
// forward fragment) semantically: the rewritten forward query, evaluated by
// SPEX, must select exactly the nodes a direct DOM implementation of the
// axis selects.

// axisCase pairs an XPath using a reverse axis with a direct DOM
// evaluation: forward prefix (as rpeq) + axis applied on the tree.
type axisCase struct {
	xpath  string
	prefix string // forward rpeq for the part before the reverse step
	axis   string // "parent", "ancestor", "ancestor-or-self"
	test   string // node test for the reverse step
}

var axisCases = []axisCase{
	{"/a/b/parent::*", "a.b", "parent", "_"},
	{"//b/parent::a", "_*.b", "parent", "a"},
	{"//a/parent::*", "_*.a", "parent", "_"},
	{"//a/..", "_*.a", "parent", "_"},
	{"/a/b/c/ancestor::*", "a.b.c", "ancestor", "_"},
	{"//c/ancestor::a", "_*.c", "ancestor", "a"},
	{"//b/ancestor::*", "_*.b", "ancestor", "_"},
	{"//a/ancestor-or-self::a", "_*.a", "ancestor-or-self", "a"},
	{"/a/b[c]/parent::*", "a.b[c]", "parent", "_"},
	{"//a/b/parent::a", "(_*.a).b", "parent", "a"},
}

// directAxis applies the reverse axis on the DOM to the prefix's node set.
func directAxis(doc *dom.Node, prefixExpr rpeq.Node, axis, test string) []int64 {
	prefixNodes := TreeWalk{}.Eval(doc, prefixExpr)
	seen := map[*dom.Node]bool{}
	matches := func(n *dom.Node) bool {
		if n == nil || n.Kind != dom.Element {
			return false // the document node carries no label
		}
		return test == rpeq.Wildcard || n.Name == test
	}
	for _, n := range prefixNodes {
		switch axis {
		case "parent":
			if matches(n.Parent) {
				seen[n.Parent] = true
			}
		case "ancestor", "ancestor-or-self":
			for p := n.Parent; p != nil; p = p.Parent {
				if matches(p) {
					seen[p] = true
				}
			}
			if axis == "ancestor-or-self" && matches(n) {
				seen[n] = true
			}
		}
	}
	nodes := make([]*dom.Node, 0, len(seen))
	for n := range seen {
		nodes = append(nodes, n)
	}
	sortByIndex(nodes)
	return indexList(nodes)
}

func TestReverseAxisRewritingAgainstDOM(t *testing.T) {
	var docs []string
	// Fixed documents exercising chains, repeats and branching...
	docs = append(docs,
		`<a><b><c/></b><b/><a><b><c/></b></a></a>`,
		`<a><a><a/></a></a>`,
		`<x><a><b/></a><b><a/></b></x>`,
	)
	// ...plus a corpus of random trees.
	for seed := uint64(1); seed <= 40; seed++ {
		docs = append(docs, string(dataset.RandomTree(seed, 5, 3, []string{"a", "b", "c"}).Bytes()))
	}
	for _, doc := range docs {
		tree, err := dom.BuildString(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range axisCases {
			rewritten, err := rpeq.Parse(tc.xpath, rpeq.WithXPath())
			if err != nil {
				t.Fatalf("%s: %v", tc.xpath, err)
			}
			got, err := spexIndices(rewritten, doc)
			if err != nil {
				t.Fatalf("%s over %s: %v", tc.xpath, doc, err)
			}
			want := directAxis(tree, rpeq.MustParse(tc.prefix), tc.axis, tc.test)
			if !equalInt64(got, want) {
				t.Errorf("%s over %s:\n rewritten: %v\n direct:    %v\n (rewrite: %s)",
					tc.xpath, doc, got, want, rpeq.Canonical(rewritten))
			}
		}
	}
}

// TestReverseAxisDeduplication: rewritten ancestor queries are unions whose
// branches can overlap; the result must still be duplicate-free (the join
// transducer's duplicate elimination, §III.7).
func TestReverseAxisDeduplication(t *testing.T) {
	// Every ancestor of both b and of c: branches overlap on a-nodes
	// having both.
	doc := `<a><a><b/><c/></a></a>`
	expr, err := rpeq.Parse("//b/ancestor::a | //c/ancestor::a", rpeq.WithXPath())
	if err != nil {
		t.Fatal(err)
	}
	got, err := spexIndices(expr, doc)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2}
	if !equalInt64(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
