package baseline

import (
	"strings"

	"repro/internal/dom"
	"repro/internal/rpeq"
)

// TreeWalk evaluates rpeq by recursive navigation over the materialized
// tree: each construct maps a context node set to a result node set. This
// is the algorithmic class of an in-memory XPath engine (the paper's Saxon
// comparator).
type TreeWalk struct{}

// Name implements Evaluator.
func (TreeWalk) Name() string { return "treewalk" }

// Eval implements Evaluator: it evaluates expr with the document node as
// the context and returns the selected nodes in document order.
func (TreeWalk) Eval(doc *dom.Node, expr rpeq.Node) []*dom.Node {
	ctx := nodeSet{doc: true}
	return evalSet(expr, ctx).ordered()
}

// evalSet returns the nodes reachable from any context node by paths
// conforming to expr.
func evalSet(expr rpeq.Node, ctx nodeSet) nodeSet {
	switch n := expr.(type) {
	case *rpeq.Empty:
		// Copy: callers may extend the returned set, and the context is
		// shared between the branches of unions and qualifiers.
		out := make(nodeSet, len(ctx))
		for c := range ctx {
			out.add(c)
		}
		return out

	case *rpeq.Label:
		out := make(nodeSet)
		for c := range ctx {
			c.ElementChildren(func(k *dom.Node) {
				if n.Matches(k.Name) {
					out.add(k)
				}
			})
		}
		return out

	case *rpeq.Plus:
		// Chains of label steps: iterate the child step to fixpoint.
		out := make(nodeSet)
		frontier := evalSet(&rpeq.Label{Name: n.Label.Name}, ctx)
		for len(frontier) > 0 {
			next := make(nodeSet)
			for k := range frontier {
				if out[k] {
					continue
				}
				out.add(k)
				k.ElementChildren(func(g *dom.Node) {
					if n.Label.Matches(g.Name) {
						next.add(g)
					}
				})
			}
			frontier = next
		}
		return out

	case *rpeq.Star:
		out := evalSet(&rpeq.Plus{Label: n.Label}, ctx)
		for c := range ctx {
			out.add(c)
		}
		return out

	case *rpeq.Concat:
		return evalSet(n.Right, evalSet(n.Left, ctx))

	case *rpeq.Union:
		out := evalSet(n.Left, ctx)
		for k := range evalSet(n.Right, ctx) {
			out.add(k)
		}
		return out

	case *rpeq.Optional:
		out := evalSet(n.Expr, ctx)
		for c := range ctx {
			out.add(c)
		}
		return out

	case *rpeq.Qualifier:
		base := evalSet(n.Base, ctx)
		out := make(nodeSet)
		for k := range base {
			if condHolds(n.Cond, k) {
				out.add(k)
			}
		}
		return out

	case *rpeq.AttrTest:
		// Self-filter: keep the context nodes whose attributes satisfy the
		// predicate. The document node carries no attributes.
		out := make(nodeSet)
		for c := range ctx {
			if n.Pred.Eval(c.Attr) {
				out.add(c)
			}
		}
		return out

	case *rpeq.AttrStep:
		// Attribute selection: the answers are the attribute nodes
		// themselves, which have no representation in the tree — synthesize
		// one per carrying context element, shaped like the engine's
		// serialization (<@name>value</@name>). Attribute nodes share their
		// element's document-order index; differential tests compare names,
		// counts and content, not indexes.
		out := make(nodeSet)
		for c := range ctx {
			if a := attrNodeOf(c, n.Name); a != nil {
				out.add(a)
			}
		}
		return out

	case *rpeq.CondNot:
		// A bare negated condition (a disjunct of an 'or' lowering) filters
		// the context itself: keep the nodes at which the body selects nothing.
		out := make(nodeSet)
		for c := range ctx {
			if !condHolds(n.Expr, c) {
				out.add(c)
			}
		}
		return out

	case *rpeq.TextTest:
		// Value filter over the path's selections.
		out := make(nodeSet)
		for k := range evalSet(n.Path, ctx) {
			if n.Op.Holds(stringValue(k), n.Value) {
				out.add(k)
			}
		}
		return out

	case *rpeq.Following:
		// Elements after the context in document order, excluding its
		// descendants (and, by index order, its ancestors).
		out := make(nodeSet)
		for c := range ctx {
			root := documentOf(c)
			root.Walk(func(m *dom.Node) {
				if m.Kind == dom.Element && m.Index > c.Index && !isDescendantOf(m, c) && n.Matches(m.Name) {
					out.add(m)
				}
			})
		}
		return out

	case *rpeq.Preceding:
		// Elements wholly before the context: smaller index and not an
		// ancestor.
		out := make(nodeSet)
		for c := range ctx {
			root := documentOf(c)
			root.Walk(func(m *dom.Node) {
				if m.Kind == dom.Element && m.Index < c.Index && m.Index > 0 && !isDescendantOf(c, m) && n.Matches(m.Name) {
					out.add(m)
				}
			})
		}
		return out

	default:
		return make(nodeSet)
	}
}

// condHolds decides a qualifier condition at node n: a structural (or
// value-filtered) condition holds when it selects a non-empty set; a negated
// condition holds when its body selects nothing.
func condHolds(cond rpeq.Node, n *dom.Node) bool {
	if cn, ok := cond.(*rpeq.CondNot); ok {
		return !condHolds(cn.Expr, n)
	}
	return len(evalSet(cond, nodeSet{n: true})) > 0
}

// stringValue returns the XPath string value of a node: the concatenation
// of all character data in its subtree.
func stringValue(n *dom.Node) string {
	var b strings.Builder
	n.Walk(func(m *dom.Node) {
		if m.Kind == dom.TextNode {
			b.WriteString(m.Data)
		}
	})
	return b.String()
}

// attrNodeOf synthesizes the attribute node for element c's named attribute
// (nil when absent): an element <@name> wrapping the value as text, matching
// the engines' serialization of attribute answers. It inherits c's
// document-order index — attribute nodes order with their element.
func attrNodeOf(c *dom.Node, name string) *dom.Node {
	v, ok := c.Attr(name)
	if !ok {
		return nil
	}
	a := &dom.Node{Kind: dom.Element, Name: "@" + name, Index: c.Index, Parent: c}
	if v != "" {
		a.Children = []*dom.Node{{Kind: dom.TextNode, Data: v, Index: -1, Parent: a}}
	}
	return a
}

// splitAttrStepTail splits a query ending in an attribute step into its
// element-selecting prefix and the attribute name. The parser guarantees the
// step can only be the query's final step.
func splitAttrStepTail(expr rpeq.Node) (rpeq.Node, string, bool) {
	switch e := expr.(type) {
	case *rpeq.AttrStep:
		return &rpeq.Empty{}, e.Name, true
	case *rpeq.Concat:
		if as, ok := e.Right.(*rpeq.AttrStep); ok {
			return e.Left, as.Name, true
		}
	}
	return nil, "", false
}

// documentOf returns the document node of n's tree.
func documentOf(n *dom.Node) *dom.Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// isDescendantOf reports whether n is a strict descendant of anc.
func isDescendantOf(n, anc *dom.Node) bool {
	for p := n.Parent; p != nil; p = p.Parent {
		if p == anc {
			return true
		}
	}
	return false
}
