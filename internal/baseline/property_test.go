package baseline

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/dom"
	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// randQuery builds a random rpeq over a small alphabet. Qualifier nesting
// and closures are generated with realistic frequency so the generator
// exercises every transducer kind.
func randQuery(r *rand.Rand, depth int) rpeq.Node {
	labels := []string{"a", "b", "c", "_"}
	label := func() *rpeq.Label { return &rpeq.Label{Name: labels[r.Intn(len(labels))]} }
	if depth == 0 {
		switch r.Intn(8) {
		case 0:
			return &rpeq.Plus{Label: label()}
		case 1:
			return &rpeq.Star{Label: label()}
		case 2:
			return &rpeq.Empty{}
		default:
			return label()
		}
	}
	switch r.Intn(10) {
	case 0, 1, 2, 3:
		return &rpeq.Concat{Left: randQuery(r, depth-1), Right: randQuery(r, depth-1)}
	case 4, 5:
		return &rpeq.Union{Left: randQuery(r, depth-1), Right: randQuery(r, depth-1)}
	case 6:
		return &rpeq.Optional{Expr: randQuery(r, depth-1)}
	case 7, 8:
		return &rpeq.Qualifier{Base: randQuery(r, depth-1), Cond: randQuery(r, depth-1)}
	default:
		return randQuery(r, 0)
	}
}

// TestPropertySPEXAgreesWithBaselines is the central correctness property:
// on arbitrary documents and arbitrary queries, the streaming evaluator
// selects exactly the nodes both in-memory evaluators select.
func TestPropertySPEXAgreesWithBaselines(t *testing.T) {
	count := 400
	if testing.Short() {
		count = 60
	}
	prop := func(docSeed uint16, querySeed uint16) bool {
		doc := dataset.RandomTree(uint64(docSeed)+1, 5, 3, []string{"a", "b", "c"})
		xml := string(doc.Bytes())
		r := rand.New(rand.NewSource(int64(querySeed)))
		expr := randQuery(r, 3)

		tree, err := dom.BuildString(xml)
		if err != nil {
			t.Logf("dom build failed on %q: %v", xml, err)
			return false
		}
		want := indexList(TreeWalk{}.Eval(tree, expr))
		wantA := indexList(Automaton{}.Eval(tree, expr))
		got, err := spexIndices(expr, xml)
		if err != nil {
			t.Logf("spex failed: query %s doc %q: %v", expr, xml, err)
			return false
		}
		if !equalInt64(want, wantA) || !equalInt64(want, got) {
			t.Logf("disagreement:\n query %s\n doc   %s\n walk  %v\n auto  %v\n spex  %v",
				expr, xml, want, wantA, got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySerializationMatchesDOM checks that the subtree SPEX
// serializes for each answer equals the DOM subtree of the selected node.
func TestPropertySerializationMatchesDOM(t *testing.T) {
	prop := func(docSeed uint16, querySeed uint16) bool {
		doc := dataset.RandomTree(uint64(docSeed)+1, 4, 3, []string{"a", "b"})
		xml := string(doc.Bytes())
		r := rand.New(rand.NewSource(int64(querySeed)))
		expr := randQuery(r, 2)

		tree, err := dom.BuildString(xml)
		if err != nil {
			return false
		}
		nodes := TreeWalk{}.Eval(tree, expr)
		byIndex := map[int64]*dom.Node{}
		for _, n := range nodes {
			byIndex[n.Index] = n
		}
		ok := true
		seen := 0
		_, err = evalSerialize(expr, xml, func(index int64, xmlOut string) {
			seen++
			n := byIndex[index]
			if n == nil {
				ok = false
				return
			}
			if xmlstream.Serialize(n.Events()) != xmlOut {
				t.Logf("serialization mismatch at %d: %q vs %q", index, xmlOut, xmlstream.Serialize(n.Events()))
				ok = false
			}
		})
		return err == nil && ok && seen == len(nodes)
	}
	count := 200
	if testing.Short() {
		count = 40
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

func indexList(nodes []*dom.Node) []int64 {
	out := make([]int64, len(nodes))
	for i, n := range nodes {
		out[i] = n.Index
	}
	return out
}

func spexIndices(expr rpeq.Node, doc string) ([]int64, error) {
	var got []int64
	net, err := buildNet(expr, func(index int64) { got = append(got, index) }, nil)
	if err != nil {
		return nil, err
	}
	_, err = net.Run(xmlstream.NewScanner(strings.NewReader(doc)))
	return got, err
}
