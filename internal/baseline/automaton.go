package baseline

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/rpeq"
)

// Automaton evaluates rpeq by compiling it into a Thompson-style NFA over
// root-to-node label paths and running the NFA top-down over the
// materialized tree: each tree node carries the set of NFA states its root
// path reaches, and a node is selected when the set contains the accepting
// state. Qualifiers become predicates on ε-transitions, decided against the
// subtree of the node at which the transition fires. This is the
// algorithmic class of a regular tree-expression engine (the paper's Fxgrep
// comparator) and of the DFA-based X-Scan operator discussed in §VIII.
type Automaton struct{}

// Name implements Evaluator.
func (Automaton) Name() string { return "automaton" }

type epsEdge struct {
	to   int
	pred rpeq.Node // qualifier condition; nil = unconditional
}

type labEdge struct {
	label string // "_" matches any element label
	to    int
}

type pathNFA struct {
	eps     [][]epsEdge
	lab     [][]labEdge
	start   int
	accept  int
	nstates int
}

func (n *pathNFA) newState() int {
	n.eps = append(n.eps, nil)
	n.lab = append(n.lab, nil)
	n.nstates++
	return n.nstates - 1
}

func (n *pathNFA) addEps(from, to int, pred rpeq.Node) {
	n.eps[from] = append(n.eps[from], epsEdge{to: to, pred: pred})
}

func (n *pathNFA) addLab(from int, label string, to int) {
	n.lab[from] = append(n.lab[from], labEdge{label: label, to: to})
}

// compileNFA builds the automaton for expr.
func compileNFA(expr rpeq.Node) *pathNFA {
	n := &pathNFA{}
	in := n.newState()
	out := n.frag(expr, in)
	n.start, n.accept = in, out
	return n
}

// frag adds the states of expr starting at state in and returns the
// fragment's exit state.
func (n *pathNFA) frag(expr rpeq.Node, in int) int {
	switch e := expr.(type) {
	case *rpeq.Empty:
		return in
	case *rpeq.Label:
		out := n.newState()
		n.addLab(in, e.Name, out)
		return out
	case *rpeq.Plus:
		out := n.newState()
		n.addLab(in, e.Label.Name, out)
		n.addLab(out, e.Label.Name, out)
		return out
	case *rpeq.Star:
		out := n.newState()
		n.addEps(in, out, nil)
		n.addLab(in, e.Label.Name, out)
		n.addLab(out, e.Label.Name, out)
		return out
	case *rpeq.Concat:
		return n.frag(e.Right, n.frag(e.Left, in))
	case *rpeq.Union:
		lout := n.frag(e.Left, in)
		rout := n.frag(e.Right, in)
		out := n.newState()
		n.addEps(lout, out, nil)
		n.addEps(rout, out, nil)
		return out
	case *rpeq.Optional:
		iout := n.frag(e.Expr, in)
		out := n.newState()
		n.addEps(in, out, nil)
		n.addEps(iout, out, nil)
		return out
	case *rpeq.Qualifier:
		bout := n.frag(e.Base, in)
		out := n.newState()
		n.addEps(bout, out, e.Cond)
		return out
	case *rpeq.AttrTest:
		// Self-filter: an ε-edge guarded by the attribute predicate at the
		// node the prefix reached.
		out := n.newState()
		n.addEps(in, out, e)
		return out
	case *rpeq.CondNot:
		// Negated self-condition: an ε-edge whose predicate holds when the
		// body selects nothing at the landing node.
		out := n.newState()
		n.addEps(in, out, e)
		return out
	case *rpeq.TextTest:
		// Value filter: run the path, then guard an ε-edge by the string
		// value of the node reached (a self-rooted text test).
		pout := n.frag(e.Path, in)
		out := n.newState()
		n.addEps(pout, out, &rpeq.TextTest{Path: &rpeq.Empty{}, Op: e.Op, Value: e.Value})
		return out
	default:
		panic(fmt.Sprintf("baseline: unknown rpeq node %T", expr))
	}
}

// eclose extends set with all states reachable by ε-transitions whose
// predicates hold at node.
func (n *pathNFA) eclose(set []bool, node *dom.Node) {
	var stack []int
	for s, in := range set {
		if in {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.eps[s] {
			if set[e.to] {
				continue
			}
			if e.pred != nil && !condHolds(e.pred, node) {
				continue
			}
			set[e.to] = true
			stack = append(stack, e.to)
		}
	}
}

// move returns the states reachable from set by consuming an element with
// the given label.
func (n *pathNFA) move(set []bool, label string) []bool {
	out := make([]bool, n.nstates)
	for s, in := range set {
		if !in {
			continue
		}
		for _, e := range n.lab[s] {
			if e.label == rpeq.Wildcard || e.label == label {
				out[e.to] = true
			}
		}
	}
	return out
}

// Eval implements Evaluator.
func (a Automaton) Eval(doc *dom.Node, expr rpeq.Node) []*dom.Node {
	if prefix, attr, ok := splitAttrStepTail(expr); ok {
		// The terminal attribute step selects nodes outside the tree: run
		// the automaton over the prefix, then synthesize the attribute nodes
		// like the tree-walk oracle does.
		var results []*dom.Node
		for _, c := range a.Eval(doc, prefix) {
			if an := attrNodeOf(c, attr); an != nil {
				results = append(results, an)
			}
		}
		return results
	}
	nfa := compileNFA(expr)
	var results []*dom.Node
	rootSet := make([]bool, nfa.nstates)
	rootSet[nfa.start] = true
	nfa.eclose(rootSet, doc)
	var descend func(node *dom.Node, set []bool)
	descend = func(node *dom.Node, set []bool) {
		node.ElementChildren(func(child *dom.Node) {
			cs := nfa.move(set, child.Name)
			nfa.eclose(cs, child)
			if cs[nfa.accept] {
				results = append(results, child)
			}
			descend(child, cs)
		})
	}
	descend(doc, rootSet)
	// ε-only expressions can select the document node itself.
	if rootSet[nfa.accept] {
		results = append([]*dom.Node{doc}, results...)
	}
	return results
}
