package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/dom"
	"repro/internal/rpeq"
)

// randTextQuery extends the structural generator with text-test qualifiers
// over a tiny value alphabet shared with the document generator, so tests
// hit and miss realistically.
func randTextQuery(r *rand.Rand, depth int) rpeq.Node {
	values := []string{"x", "y", "xy", ""}
	base := randQuery(r, depth)
	if r.Intn(2) == 0 {
		return base
	}
	op := rpeq.TextEq
	switch r.Intn(3) {
	case 1:
		op = rpeq.TextNeq
	case 2:
		op = rpeq.TextContains
	}
	return &rpeq.Qualifier{
		Base: base,
		Cond: &rpeq.TextTest{
			Path:  randQuery(r, 1),
			Op:    op,
			Value: values[r.Intn(len(values))],
		},
	}
}

// TestPropertyTextQualifiers: SPEX agrees with both in-memory engines on
// random documents with character data and random queries with text tests.
func TestPropertyTextQualifiers(t *testing.T) {
	count := 300
	if testing.Short() {
		count = 50
	}
	prop := func(docSeed uint16, querySeed uint16) bool {
		doc := dataset.RandomTreeText(uint64(docSeed)+1, 4, 3,
			[]string{"a", "b", "c"}, []string{"x", "y"})
		xml := string(doc.Bytes())
		r := rand.New(rand.NewSource(int64(querySeed)))
		expr := randTextQuery(r, 2)

		tree, err := dom.BuildString(xml)
		if err != nil {
			return false
		}
		want := indexList(TreeWalk{}.Eval(tree, expr))
		wantA := indexList(Automaton{}.Eval(tree, expr))
		got, err := spexIndices(expr, xml)
		if err != nil {
			t.Logf("spex failed: %s over %s: %v", expr, xml, err)
			return false
		}
		if !equalInt64(got, want) || !equalInt64(want, wantA) {
			t.Logf("disagreement:\n query %s\n doc   %s\n walk  %v\n auto  %v\n spex  %v",
				expr, xml, want, wantA, got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}
