package baseline

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

func TestXScanBasics(t *testing.T) {
	doc := `<a><a><c/></a><b/><c/></a>`
	cases := []struct {
		query string
		want  []int64
	}{
		{"a", []int64{1}},
		{"a.c", []int64{5}},
		{"a+.c+", []int64{3, 5}},
		{"_*.c", []int64{3, 5}},
		{"_+", []int64{1, 2, 3, 4, 5}},
		{"a.(b|c)", []int64{4, 5}},
		{"%e", []int64{0}},
	}
	for _, tc := range cases {
		got, err := XScan{}.EvalReader(strings.NewReader(doc), rpeq.MustParse(tc.query))
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		if !equalInt64(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.query, got, tc.want)
		}
	}
}

func TestXScanRejectsQualifiers(t *testing.T) {
	for _, q := range []string{"a[b]", "_*.a[b].c", "(a|b[c])"} {
		if _, err := (XScan{}).EvalReader(strings.NewReader(`<a/>`), rpeq.MustParse(q)); err == nil {
			t.Errorf("%s: expected an error (qualifiers unsupported, as in [18])", q)
		}
	}
}

// TestXScanAgreesWithSPEX: on its qualifier-free fragment, the lazy-DFA
// streaming engine and SPEX select identical nodes.
func TestXScanAgreesWithSPEX(t *testing.T) {
	count := 250
	if testing.Short() {
		count = 50
	}
	prop := func(docSeed uint16, querySeed uint16) bool {
		doc := dataset.RandomTree(uint64(docSeed)+1, 5, 3, []string{"a", "b", "c"})
		xml := string(doc.Bytes())
		r := rand.New(rand.NewSource(int64(querySeed)))
		var expr rpeq.Node
		for {
			expr = randQuery(r, 3)
			if (XScan{}).Supports(expr) {
				break
			}
		}
		got, err := XScan{}.EvalReader(strings.NewReader(xml), expr)
		if err != nil {
			t.Logf("xscan failed on %s: %v", expr, err)
			return false
		}
		want, err := spexIndices(expr, xml)
		if err != nil {
			t.Logf("spex failed on %s: %v", expr, err)
			return false
		}
		if !equalInt64(got, want) {
			t.Logf("disagreement on %s over %s:\n xscan %v\n spex  %v", expr, xml, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

// TestLazyDFAStaysSmall reproduces the [18] observation that lazily
// materialized DFAs stay small on real data: a wildcard-closure query
// materializes only a handful of subset states on a DMOZ-shaped stream.
func TestLazyDFAStaysSmall(t *testing.T) {
	expr := rpeq.MustParse("_*.Topic._")
	dfa := newLazyDFA(compileNFA(expr))
	stack := []*dfaState{dfa.start()}
	src := dataset.DMOZStructure(0.002).Stream()
	matches := 0
	for {
		ev, err := src.Next()
		if err != nil {
			break
		}
		switch ev.Kind {
		case xmlstream.StartElement:
			next := dfa.move(stack[len(stack)-1], ev.Name)
			if next.accept {
				matches++
			}
			stack = append(stack, next)
		case xmlstream.EndElement:
			stack = stack[:len(stack)-1]
		}
	}
	if matches == 0 {
		t.Fatal("no matches")
	}
	if dfa.materialized > 32 {
		t.Fatalf("lazy DFA materialized %d states; expected a handful", dfa.materialized)
	}
}
