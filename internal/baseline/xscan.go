package baseline

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// XScan is a streaming comparator in the style of the X-Scan operator of
// the Tukwila system and its lazy-DFA successor (§VIII, refs. [2], [18]):
// the regular path expression is compiled into an automaton over
// root-to-node label paths, determinized lazily (DFA states are subsets of
// NFA states, materialized on first use), and run over the stream with a
// stack of DFA states — one per open element, exactly the stack "for
// keeping track of previous states" the paper describes.
//
// As in the original ([18]: "some expressions can be considered qualifiers,
// but their relations to the other expressions are left to a host
// application"), X-Scan handles qualifier-free expressions only; Eval
// returns an error otherwise. This is precisely the capability gap the
// paper positions SPEX against.
type XScan struct{}

// Name identifies the engine in benchmark output.
func (XScan) Name() string { return "xscan" }

// Supports reports whether the expression is in X-Scan's fragment:
// qualifier-free navigation with no extension axes and no value tests
// (attribute filters arrive on the spine, outside the label alphabet the
// path NFA ranges over).
func (XScan) Supports(expr rpeq.Node) bool {
	return !hasQualifier(expr) && !rpeq.HasExtensionAxes(expr) &&
		!rpeq.HasTextTest(expr) && !rpeq.HasAttrTest(expr)
}

func hasQualifier(n rpeq.Node) bool {
	switch n := n.(type) {
	case *rpeq.Qualifier:
		return true
	case *rpeq.Concat:
		return hasQualifier(n.Left) || hasQualifier(n.Right)
	case *rpeq.Union:
		return hasQualifier(n.Left) || hasQualifier(n.Right)
	case *rpeq.Optional:
		return hasQualifier(n.Expr)
	default:
		return false
	}
}

// dfaState is one lazily materialized subset state.
type dfaState struct {
	accept bool
	trans  map[string]*dfaState
	set    []bool
}

// lazyDFA determinizes a pathNFA on demand.
type lazyDFA struct {
	nfa    *pathNFA
	states map[string]*dfaState
	dead   *dfaState
	// States materialized so far; [18] reports lazy DFAs stay small on
	// real data even when the full DFA would blow up.
	materialized int
}

func newLazyDFA(nfa *pathNFA) *lazyDFA {
	d := &lazyDFA{nfa: nfa, states: make(map[string]*dfaState)}
	d.dead = &dfaState{trans: make(map[string]*dfaState)}
	return d
}

func (d *lazyDFA) intern(set []bool) *dfaState {
	var key strings.Builder
	any := false
	for i, in := range set {
		if in {
			fmt.Fprintf(&key, "%d,", i)
			any = true
		}
	}
	if !any {
		return d.dead
	}
	k := key.String()
	if s, ok := d.states[k]; ok {
		return s
	}
	s := &dfaState{set: set, accept: set[d.nfa.accept], trans: make(map[string]*dfaState)}
	d.states[k] = s
	d.materialized++
	return s
}

// start returns the DFA start state.
func (d *lazyDFA) start() *dfaState {
	set := make([]bool, d.nfa.nstates)
	set[d.nfa.start] = true
	d.nfa.eclose(set, nil)
	return d.intern(set)
}

// move computes (and caches) the successor of s under label.
func (d *lazyDFA) move(s *dfaState, label string) *dfaState {
	if t, ok := s.trans[label]; ok {
		return t
	}
	var t *dfaState
	if s == d.dead {
		t = d.dead
	} else {
		next := d.nfa.move(s.set, label)
		d.nfa.eclose(next, nil)
		t = d.intern(next)
	}
	s.trans[label] = t
	return t
}

// EvalStream runs the expression over the stream, returning the matched
// nodes' document-order indices. Memory is the lazy DFA plus a stack of
// states bounded by the depth — streaming, like SPEX, but without
// qualifiers.
func (x XScan) EvalStream(src xmlstream.Source, expr rpeq.Node) ([]int64, error) {
	if !x.Supports(expr) {
		return nil, fmt.Errorf("baseline: xscan handles qualifier-free path expressions only (got %s); qualifier relations are left to the host application in [18]", expr)
	}
	dfa := newLazyDFA(compileNFA(expr))
	var stack []*dfaState
	var matches []int64
	var index int64
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return matches, nil
		}
		if err != nil {
			return matches, err
		}
		switch ev.Kind {
		case xmlstream.StartDocument:
			s := dfa.start()
			if s.accept {
				matches = append(matches, index) // ε selects the document node
			}
			index++ // the document node is index 0; elements from 1
			stack = append(stack, s)
		case xmlstream.StartElement:
			cur := dfa.move(stack[len(stack)-1], ev.Name)
			if cur.accept {
				matches = append(matches, index)
			}
			index++
			stack = append(stack, cur)
		case xmlstream.EndElement, xmlstream.EndDocument:
			if len(stack) == 0 {
				return matches, fmt.Errorf("baseline: xscan: unbalanced stream")
			}
			stack = stack[:len(stack)-1]
		}
	}
}

// EvalReader is EvalStream over raw XML bytes.
func (x XScan) EvalReader(r io.Reader, expr rpeq.Node) ([]int64, error) {
	return x.EvalStream(xmlstream.NewScanner(r, xmlstream.WithText(false)), expr)
}

// Count returns only the number of matches.
func (x XScan) Count(r io.Reader, expr rpeq.Node) (int64, error) {
	matches, err := x.EvalReader(r, expr)
	return int64(len(matches)), err
}
