package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/spexnet"
)

// TestLifecycleHistogramsPopulated runs a qualifier query whose candidates
// resolve both ways — <a><b/><c/></a> matches, <a><c/></a> buffers a
// candidate that dies undetermined — and checks the sink-side lifecycle
// histograms saw every candidate.
func TestLifecycleHistogramsPopulated(t *testing.T) {
	plan, err := Prepare("_*.a[b].c")
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	doc := `<r><a><b/><c/></a><a><c/></a></r>`
	stats, err := plan.EvaluateReader(strings.NewReader(doc),
		EvalOptions{Mode: spexnet.ModeCount, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Output.Matches != 1 {
		t.Fatalf("matches=%d, want 1", stats.Output.Matches)
	}
	if got := m.CandidateLifetime.Count(); got != 2 {
		t.Errorf("candidate lifetime observations: %d, want 2 (one per candidate)", got)
	}
	if m.DecisionLatency.Count() == 0 {
		t.Error("decision latency histogram empty")
	}
	s := m.Snapshot()
	if s.CandidateLifetime.Count != m.CandidateLifetime.Count() ||
		s.DecisionLatency.Count != m.DecisionLatency.Count() {
		t.Errorf("snapshot disagrees with histograms: %+v", s)
	}
}

// TestTraceIDStampedOnTraceEvents checks the stream-scoped trace identifier
// set in EvalOptions reaches every trace record the evaluation emits.
func TestTraceIDStampedOnTraceEvents(t *testing.T) {
	plan, err := Prepare("a.b")
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRingTracer(64)
	_, err = plan.EvaluateReader(strings.NewReader(`<a><b/></a>`),
		EvalOptions{Mode: spexnet.ModeCount, Tracer: ring, TraceID: "trace-xyz"})
	if err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if len(evs) == 0 {
		t.Fatal("no trace events recorded")
	}
	for _, ev := range evs {
		if ev.TraceID != "trace-xyz" {
			t.Fatalf("trace event missing stream trace ID: %+v", ev)
		}
	}

	// Without a TraceID the records stay unstamped (omitted from JSON).
	ring2 := obs.NewRingTracer(64)
	if _, err := plan.EvaluateReader(strings.NewReader(`<a><b/></a>`),
		EvalOptions{Mode: spexnet.ModeCount, Tracer: ring2}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range ring2.Events() {
		if ev.TraceID != "" {
			t.Fatalf("unexpected trace ID on untagged run: %+v", ev)
		}
	}
}
