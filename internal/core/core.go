// Package core is the SPEX engine: it ties the query language, the
// transducer-network compiler and the stream scanner together into prepared
// plans and evaluations. The public API in the repository root package is a
// thin veneer over this package.
package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/rpeq"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// Plan is a prepared query: a parsed rpeq ready to be instantiated as a
// transducer network. Plans are immutable and safe for concurrent use; each
// evaluation builds its own network (linear in the query size, Lemma V.1).
//
// A plan owns a symbol table: the query's labels are interned at prepare
// time, every evaluation compiles its label tests against the same table,
// and reader-fed evaluations attach the table to the scanner so events
// arrive symbol-resolved. The table is concurrency-safe, so concurrent
// evaluations of one plan share it (and amortize each other's misses).
type Plan struct {
	expr   rpeq.Node
	source string
	symtab *xmlstream.Symtab
	// limit is the plan's answer budget from a trailing "limit N"/"first"
	// clause (0 = unlimited); EvalOptions.Limit can override per evaluation.
	limit int64
}

// Prepare parses an rpeq expression into a plan. A trailing "limit N" or
// "first" clause caps the answer count: evaluation stops reading the stream
// as soon as the first N answers (in document order) are fixed.
func Prepare(expr string) (*Plan, error) {
	var limit int64
	node, err := rpeq.Parse(expr, rpeq.WithLimit(&limit))
	if err != nil {
		return nil, err
	}
	return &Plan{expr: node, source: expr, symtab: xmlstream.NewSymtab(), limit: limit}, nil
}

// PrepareXPath parses an expression in the paper's XPath fragment
// (child/descendant steps with structural and attribute qualifiers) into a
// plan. The same trailing "limit N"/"first" clause as Prepare is accepted.
func PrepareXPath(path string) (*Plan, error) {
	var limit int64
	node, err := rpeq.Parse(path, rpeq.WithXPath(), rpeq.WithLimit(&limit))
	if err != nil {
		return nil, err
	}
	return &Plan{expr: node, source: path, symtab: xmlstream.NewSymtab(), limit: limit}, nil
}

// FromAST wraps an already-built expression tree.
func FromAST(expr rpeq.Node) *Plan {
	return &Plan{expr: expr, source: expr.String(), symtab: xmlstream.NewSymtab()}
}

// String returns the source expression.
func (p *Plan) String() string { return p.source }

// Expr returns the parsed expression tree.
func (p *Plan) Expr() rpeq.Node { return p.expr }

// Symtab returns the plan's symbol table, for callers that feed the plan
// pre-scanned events and want to share the interner with their scanner.
func (p *Plan) Symtab() *xmlstream.Symtab { return p.symtab }

// Limit returns the plan's answer budget (0 = unlimited).
func (p *Plan) Limit() int64 { return p.limit }

// Limited returns a copy of the plan with the given answer budget (n <= 0
// removes it). The copy shares the parsed expression and the symbol table,
// so deriving limited variants of a prepared plan is free.
func (p *Plan) Limited(n int64) *Plan {
	cp := *p
	if n < 0 {
		n = 0
	}
	cp.limit = n
	return &cp
}

// EvalOptions configure one evaluation.
type EvalOptions struct {
	Mode spexnet.ResultMode
	Sink spexnet.Sink
	// Ctx, when non-nil, bounds a reader-fed evaluation: cancellation or
	// deadline expiry is checked at every read of the input, so an
	// abandoned or overdue evaluation stops consuming the stream promptly.
	// Source-fed evaluations (Evaluate, push-mode runs) ignore it — the
	// caller owns the feed loop there.
	Ctx context.Context
	// StreamSink receives answers event by event (spexnet.ModeStream).
	StreamSink spexnet.StreamSink
	// RawFormulas disables condition-formula normalization (ablation).
	RawFormulas bool
	// Tracer observes every transducer emission (paper-style transition
	// traces, Figs. 4/5/13); nil disables tracing at zero cost.
	Tracer obs.Tracer
	// Metrics attaches live instrumentation readable from other goroutines
	// mid-stream; nil keeps the uninstrumented fast path.
	Metrics *obs.Metrics
	// Symtab overrides the plan's own symbol table — a multi-query engine
	// passes its set-wide table here so all member networks and the shared
	// scanner agree on one symbol space. Nil uses the plan's table.
	Symtab *xmlstream.Symtab
	// NoInterning evaluates on the string-matching pipeline (the interning
	// ablation's baseline): no symbol table anywhere, string label tests.
	NoInterning bool
	// Governor attaches the resource governor: hard caps on condition
	// formulas, candidates, buffered content, per-step messages, live
	// variables and depth, with a fail/degrade/shed policy. Nil (or
	// all-zero limits) evaluates ungoverned.
	Governor *governor.Config
	// GovernorMetrics receives governor trip counters without full
	// per-event instrumentation (see spexnet.Options.GovernorMetrics).
	GovernorMetrics *obs.Metrics
	// SinkMetrics receives the sink-side candidate-lifecycle histograms
	// (decision latency, candidate lifetime, stream latency) without full
	// per-event instrumentation (see spexnet.Options.SinkMetrics). Nil
	// falls back to Metrics.
	SinkMetrics *obs.Metrics
	// TraceID is the stream-scoped trace identifier stamped on every trace
	// record of this evaluation, correlating it with the request or stream
	// that started it. Empty leaves trace records unstamped.
	TraceID string
	// ParallelScan enables the parallel chunk-scan ingest path for
	// bytes-fed evaluations (EvaluateBytes): the document is split at safe
	// byte boundaries, chunks are tokenized concurrently, and the stitched
	// event stream feeds the network. Positive values pick the worker
	// count, negative means one worker per CPU, zero (the default) scans
	// serially on the zero-copy engine. Reader-fed evaluations ignore it —
	// splitting needs the whole document in memory.
	ParallelScan int
	// Limit caps the answer count for this evaluation: positive overrides
	// the plan's own limit, zero uses the plan's (from a "limit N"/"first"
	// clause), negative forces unlimited evaluation regardless of the plan.
	// With a limit in effect the evaluation is determined — and the stream
	// disconnected — as soon as the first Limit answers are fixed.
	Limit int64
}

// symtabFor resolves which symbol table an evaluation of plan p uses.
func (o EvalOptions) symtabFor(p *Plan) *xmlstream.Symtab {
	if o.NoInterning {
		return nil
	}
	if o.Symtab != nil {
		return o.Symtab
	}
	return p.symtab
}

// limitFor resolves the evaluation's effective answer budget.
func (o EvalOptions) limitFor(p *Plan) int64 {
	switch {
	case o.Limit > 0:
		return o.Limit
	case o.Limit < 0:
		return 0
	default:
		return p.limit
	}
}

func (o EvalOptions) netOptions(p *Plan) spexnet.Options {
	return spexnet.Options{
		Limit:           o.limitFor(p),
		Mode:            o.Mode,
		Sink:            o.Sink,
		StreamSink:      o.StreamSink,
		RawFormulas:     o.RawFormulas,
		Tracer:          o.Tracer,
		Metrics:         o.Metrics,
		Symtab:          o.symtabFor(p),
		NoInterning:     o.NoInterning,
		Governor:        o.Governor,
		GovernorMetrics: o.GovernorMetrics,
		SinkMetrics:     o.SinkMetrics,
		TraceID:         o.TraceID,
	}
}

// Evaluate runs the plan over the event source and returns the evaluation
// statistics. The stream is processed in one pass; results reach the sink
// progressively.
func (p *Plan) Evaluate(src xmlstream.Source, opts EvalOptions) (spexnet.Stats, error) {
	// A scanner source shares the evaluation's symbol table so events
	// arrive pre-resolved; a scanner already bound to another table keeps
	// it and the network compiles against that table instead — symbols
	// from different tables must never meet. The interface admits both the
	// serial Scanner and the ParallelScanner.
	if sc, ok := src.(interface {
		AdoptSymtab(*xmlstream.Symtab) bool
		SymtabInUse() *xmlstream.Symtab
	}); ok {
		if st := opts.symtabFor(p); st != nil && !sc.AdoptSymtab(st) {
			opts.Symtab = sc.SymtabInUse()
		}
	}
	net, err := spexnet.Build(p.expr, opts.netOptions(p))
	if err != nil {
		return spexnet.Stats{}, err
	}
	stats, err := net.Run(src)
	publishIngest(opts, src)
	return stats, err
}

// publishIngest surfaces the source's arena/buffer accounting on the
// attached metrics registry after a scan, when the source is one of the
// xmlstream scanners. Published once per evaluation rather than per event:
// the arenas only grow monotonically within a scan, so the final reading is
// the scan's footprint.
func publishIngest(opts EvalOptions, src xmlstream.Source) {
	m := opts.Metrics
	if m == nil {
		m = opts.SinkMetrics
	}
	if m == nil {
		return
	}
	if cs, ok := src.(*ctxSource); ok {
		src = cs.src
	}
	if is, ok := src.(interface{ IngestStats() xmlstream.IngestStats }); ok {
		st := is.IngestStats()
		m.SetIngest(st.ArenaBytes, st.ArenaBlocks, st.ArenaAttrs, st.BufferBytes, st.Chunks)
	}
}

// EvaluateReader is Evaluate over raw XML bytes. Character data plays no
// structural role in rpeq evaluation, so the scanner skips text events
// entirely unless answers are serialized. When a metrics registry is
// attached the reader is wrapped so its Bytes instrument counts the input
// consumed.
func (p *Plan) EvaluateReader(r io.Reader, opts EvalOptions) (spexnet.Stats, error) {
	withText := opts.Mode == spexnet.ModeSerialize || opts.Mode == spexnet.ModeStream ||
		rpeq.HasTextTest(p.expr)
	// Attribute lists ride on start events only when something reads them:
	// an attribute test or step in the query, or serialized answers (which
	// must round-trip the attributes of their subtrees).
	withAttrs := opts.Mode == spexnet.ModeSerialize || opts.Mode == spexnet.ModeStream ||
		rpeq.HasAttrTest(p.expr)
	if opts.Ctx != nil {
		r = &ctxReader{ctx: opts.Ctx, r: r}
	}
	if opts.Metrics != nil {
		// The read timestamp is the reference point the sink's
		// stream-latency histogram measures answer emissions against.
		r = &obs.CountingReader{R: r, C: &opts.Metrics.Bytes, LastReadNs: &opts.Metrics.LastReadNs}
	} else if opts.SinkMetrics != nil {
		r = &obs.CountingReader{R: r, C: &opts.SinkMetrics.Bytes, LastReadNs: &opts.SinkMetrics.LastReadNs}
	}
	scanOpts := []xmlstream.ScannerOption{xmlstream.WithText(withText), xmlstream.WithAttributes(withAttrs)}
	if st := opts.symtabFor(p); st != nil {
		// Share the evaluation's symbol table with the scanner: events
		// arrive pre-resolved and every label test downstream is one
		// integer comparison.
		scanOpts = append(scanOpts, xmlstream.WithSymtab(st))
	}
	stats, err := p.Evaluate(xmlstream.NewScanner(r, scanOpts...), opts)
	// A cancellation that lands after the reader's final chunk was already
	// buffered would otherwise go unnoticed; a cancelled evaluation must
	// never report success.
	if err == nil && opts.Ctx != nil {
		err = opts.Ctx.Err()
	}
	return stats, err
}

// EvaluateBytes is Evaluate over an in-memory document — the mmap/file fast
// path. The scanner works zero-copy on data (names, text and attribute
// values are arena-backed views, never per-event allocations), and with
// opts.ParallelScan non-zero the document is chunk-scanned concurrently and
// the stitched event stream feeds the network. data must not be mutated
// while the evaluation runs.
func (p *Plan) EvaluateBytes(data []byte, opts EvalOptions) (spexnet.Stats, error) {
	withText := opts.Mode == spexnet.ModeSerialize || opts.Mode == spexnet.ModeStream ||
		rpeq.HasTextTest(p.expr)
	withAttrs := opts.Mode == spexnet.ModeSerialize || opts.Mode == spexnet.ModeStream ||
		rpeq.HasAttrTest(p.expr)
	scanOpts := []xmlstream.ScannerOption{xmlstream.WithText(withText), xmlstream.WithAttributes(withAttrs)}
	if st := opts.symtabFor(p); st != nil {
		scanOpts = append(scanOpts, xmlstream.WithSymtab(st))
	}
	var src xmlstream.Source
	if opts.ParallelScan != 0 {
		ps := xmlstream.NewParallelScanner(data, opts.ParallelScan, scanOpts...)
		// A pass that stops before EOF (answer limit, cancellation) abandons
		// the source; the chunk workers must be released.
		defer ps.Stop()
		src = ps
	} else {
		src = xmlstream.ScanBytes(data, scanOpts...)
	}
	if m := opts.Metrics; m != nil {
		m.Bytes.Add(int64(len(data)))
	} else if m := opts.SinkMetrics; m != nil {
		m.Bytes.Add(int64(len(data)))
	}
	if opts.Ctx != nil {
		src = &ctxSource{ctx: opts.Ctx, src: src}
	}
	stats, err := p.Evaluate(src, opts)
	if err == nil && opts.Ctx != nil {
		err = opts.Ctx.Err()
	}
	return stats, err
}

// ctxSource threads a context through a bytes-fed event source the way
// ctxReader does for readers: cancellation is checked on a short stride of
// events and surfaces as the source's error, unwinding the evaluation.
type ctxSource struct {
	ctx context.Context
	src xmlstream.Source
	n   int
}

// ctxSourceStride is how many events flow between context checks.
const ctxSourceStride = 128

func (c *ctxSource) Next() (xmlstream.Event, error) {
	if c.n++; c.n >= ctxSourceStride {
		c.n = 0
		if err := c.ctx.Err(); err != nil {
			return xmlstream.Event{}, err
		}
	}
	return c.src.Next()
}

// ctxReader aborts an evaluation's input at context cancellation: the
// scanner surfaces the context error like any read failure, so the
// evaluation unwinds without a separate cancellation channel through the
// network.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// Count evaluates and returns only the number of answers.
func (p *Plan) Count(r io.Reader) (int64, spexnet.Stats, error) {
	stats, err := p.EvaluateReader(r, EvalOptions{Mode: spexnet.ModeCount})
	return stats.Output.Matches, stats, err
}

// Run is a push-mode evaluation for unbounded streams: the caller feeds
// events as they arrive and answers surface through the sink the run was
// created with, as soon as their membership is determined.
type Run struct {
	net     *spexnet.Network
	metrics *obs.Metrics
	opened  bool
	closed  bool
}

// NewRun instantiates a network for push-mode evaluation.
func (p *Plan) NewRun(opts EvalOptions) (*Run, error) {
	net, err := spexnet.Build(p.expr, opts.netOptions(p))
	if err != nil {
		return nil, err
	}
	return &Run{net: net, metrics: opts.Metrics}, nil
}

// Feed pushes one event. The first event must be StartDocument; Feed
// synthesizes it if the caller starts with an element event.
func (r *Run) Feed(ev xmlstream.Event) error {
	if r.closed {
		return fmt.Errorf("core: run already closed")
	}
	if !r.opened {
		r.opened = true
		if ev.Kind != xmlstream.StartDocument {
			if err := r.net.Step(xmlstream.Event{Kind: xmlstream.StartDocument}); err != nil {
				return err
			}
		}
	}
	if err := r.net.Step(ev); err != nil {
		return err
	}
	if r.net.AnswerDetermined() {
		// The answer is fixed: release the network's candidate state right
		// away (the governor's headroom returns at the determination event)
		// and ignore whatever the feeder still delivers. The run stays
		// queryable — Matches and Stats were frozen by the release.
		r.net.Release()
		return nil
	}
	if ev.Kind == xmlstream.EndDocument {
		r.closed = true
		return r.net.Finish()
	}
	return nil
}

// Close ends the stream, synthesizing the end-document event if needed, and
// validates the evaluation. A run whose answer was determined mid-stream
// (limit reached) is released instead: the stream is half-consumed by
// design, so the end-document balance check does not apply.
func (r *Run) Close() error {
	if r.closed {
		return nil
	}
	if r.net.AnswerDetermined() {
		r.Release()
		return nil
	}
	if !r.opened {
		if err := r.net.Step(xmlstream.Event{Kind: xmlstream.StartDocument}); err != nil {
			return err
		}
	}
	r.closed = true
	if err := r.net.Step(xmlstream.Event{Kind: xmlstream.EndDocument}); err != nil {
		return err
	}
	return r.net.Finish()
}

// Determined reports whether the run's answer is already fixed (every sink
// reached its answer limit): the caller may stop feeding events, and Close
// releases the half-consumed run instead of validating stream balance.
func (r *Run) Determined() bool { return r.net.AnswerDetermined() }

// Release abandons the run without finishing the stream: transducer stacks,
// tape buffers and queued candidates are dropped and the condition pool's
// variables are returned. For a run that decided early (a mid-stream
// filtering verdict) Release is the correct exit — Close would feed a
// synthetic end-document into a half-consumed stream and fail the balance
// check. Safe to call more than once, and after Close.
func (r *Run) Release() {
	r.closed = true
	r.net.Release()
}

// Matches returns the number of answers reported so far; valid while the
// run is open (progressive monitoring) and after Close.
func (r *Run) Matches() int64 { return r.net.Matches() }

// Stats returns the evaluation statistics so far. It reads the network's
// own state and must be called from the feeding goroutine (between Feed
// calls); for cross-goroutine polling use Snapshot.
func (r *Run) Stats() spexnet.Stats { return r.net.Stats() }

// Snapshot returns a point-in-time view of the run's metrics registry plus
// a heap sample. Unlike Stats it is safe to call from any goroutine while
// another is feeding events. When the run was created without a Metrics
// registry the snapshot has Enabled == false and zero instruments.
func (r *Run) Snapshot() obs.Snapshot {
	if r.metrics == nil {
		return obs.Snapshot{}
	}
	return r.metrics.Snapshot()
}
