// Package core is the SPEX engine: it ties the query language, the
// transducer-network compiler and the stream scanner together into prepared
// plans and evaluations. The public API in the repository root package is a
// thin veneer over this package.
package core

import (
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/rpeq"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// Plan is a prepared query: a parsed rpeq ready to be instantiated as a
// transducer network. Plans are immutable and safe for concurrent use; each
// evaluation builds its own network (linear in the query size, Lemma V.1).
type Plan struct {
	expr   rpeq.Node
	source string
}

// Prepare parses an rpeq expression into a plan.
func Prepare(expr string) (*Plan, error) {
	node, err := rpeq.Parse(expr)
	if err != nil {
		return nil, err
	}
	return &Plan{expr: node, source: expr}, nil
}

// PrepareXPath parses an expression in the paper's XPath fragment
// (child/descendant steps with structural qualifiers) into a plan.
func PrepareXPath(path string) (*Plan, error) {
	node, err := rpeq.ParseXPath(path)
	if err != nil {
		return nil, err
	}
	return &Plan{expr: node, source: path}, nil
}

// FromAST wraps an already-built expression tree.
func FromAST(expr rpeq.Node) *Plan {
	return &Plan{expr: expr, source: expr.String()}
}

// String returns the source expression.
func (p *Plan) String() string { return p.source }

// Expr returns the parsed expression tree.
func (p *Plan) Expr() rpeq.Node { return p.expr }

// EvalOptions configure one evaluation.
type EvalOptions struct {
	Mode spexnet.ResultMode
	Sink spexnet.Sink
	// StreamSink receives answers event by event (spexnet.ModeStream).
	StreamSink spexnet.StreamSink
	// RawFormulas disables condition-formula normalization (ablation).
	RawFormulas bool
	// Tracer observes every transducer emission (paper-style transition
	// traces, Figs. 4/5/13); nil disables tracing at zero cost.
	Tracer obs.Tracer
	// Metrics attaches live instrumentation readable from other goroutines
	// mid-stream; nil keeps the uninstrumented fast path.
	Metrics *obs.Metrics
}

func (o EvalOptions) netOptions() spexnet.Options {
	return spexnet.Options{
		Mode:        o.Mode,
		Sink:        o.Sink,
		StreamSink:  o.StreamSink,
		RawFormulas: o.RawFormulas,
		Tracer:      o.Tracer,
		Metrics:     o.Metrics,
	}
}

// Evaluate runs the plan over the event source and returns the evaluation
// statistics. The stream is processed in one pass; results reach the sink
// progressively.
func (p *Plan) Evaluate(src xmlstream.Source, opts EvalOptions) (spexnet.Stats, error) {
	net, err := spexnet.Build(p.expr, opts.netOptions())
	if err != nil {
		return spexnet.Stats{}, err
	}
	return net.Run(src)
}

// EvaluateReader is Evaluate over raw XML bytes. Character data plays no
// structural role in rpeq evaluation, so the scanner skips text events
// entirely unless answers are serialized. When a metrics registry is
// attached the reader is wrapped so its Bytes instrument counts the input
// consumed.
func (p *Plan) EvaluateReader(r io.Reader, opts EvalOptions) (spexnet.Stats, error) {
	withText := opts.Mode == spexnet.ModeSerialize || opts.Mode == spexnet.ModeStream ||
		rpeq.HasTextTest(p.expr)
	if opts.Metrics != nil {
		r = &obs.CountingReader{R: r, C: &opts.Metrics.Bytes}
	}
	return p.Evaluate(xmlstream.NewScanner(r, xmlstream.WithText(withText)), opts)
}

// Count evaluates and returns only the number of answers.
func (p *Plan) Count(r io.Reader) (int64, spexnet.Stats, error) {
	stats, err := p.EvaluateReader(r, EvalOptions{Mode: spexnet.ModeCount})
	return stats.Output.Matches, stats, err
}

// Run is a push-mode evaluation for unbounded streams: the caller feeds
// events as they arrive and answers surface through the sink the run was
// created with, as soon as their membership is determined.
type Run struct {
	net     *spexnet.Network
	metrics *obs.Metrics
	opened  bool
	closed  bool
}

// NewRun instantiates a network for push-mode evaluation.
func (p *Plan) NewRun(opts EvalOptions) (*Run, error) {
	net, err := spexnet.Build(p.expr, opts.netOptions())
	if err != nil {
		return nil, err
	}
	return &Run{net: net, metrics: opts.Metrics}, nil
}

// Feed pushes one event. The first event must be StartDocument; Feed
// synthesizes it if the caller starts with an element event.
func (r *Run) Feed(ev xmlstream.Event) error {
	if r.closed {
		return fmt.Errorf("core: run already closed")
	}
	if !r.opened {
		r.opened = true
		if ev.Kind != xmlstream.StartDocument {
			if err := r.net.Step(xmlstream.Event{Kind: xmlstream.StartDocument}); err != nil {
				return err
			}
		}
	}
	if err := r.net.Step(ev); err != nil {
		return err
	}
	if ev.Kind == xmlstream.EndDocument {
		r.closed = true
		return r.net.Finish()
	}
	return nil
}

// Close ends the stream, synthesizing the end-document event if needed, and
// validates the evaluation.
func (r *Run) Close() error {
	if r.closed {
		return nil
	}
	if !r.opened {
		if err := r.net.Step(xmlstream.Event{Kind: xmlstream.StartDocument}); err != nil {
			return err
		}
	}
	r.closed = true
	if err := r.net.Step(xmlstream.Event{Kind: xmlstream.EndDocument}); err != nil {
		return err
	}
	return r.net.Finish()
}

// Matches returns the number of answers reported so far; valid while the
// run is open (progressive monitoring) and after Close.
func (r *Run) Matches() int64 { return r.net.Matches() }

// Stats returns the evaluation statistics so far. It reads the network's
// own state and must be called from the feeding goroutine (between Feed
// calls); for cross-goroutine polling use Snapshot.
func (r *Run) Stats() spexnet.Stats { return r.net.Stats() }

// Snapshot returns a point-in-time view of the run's metrics registry plus
// a heap sample. Unlike Stats it is safe to call from any goroutine while
// another is feeding events. When the run was created without a Metrics
// registry the snapshot has Enabled == false and zero instruments.
func (r *Run) Snapshot() obs.Snapshot {
	if r.metrics == nil {
		return obs.Snapshot{}
	}
	return r.metrics.Snapshot()
}
