package core

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

func TestPrepareAndEvaluate(t *testing.T) {
	plan, err := Prepare("_*.a[b].c")
	if err != nil {
		t.Fatal(err)
	}
	if plan.String() != "_*.a[b].c" {
		t.Errorf("String: %q", plan.String())
	}
	n, stats, err := plan.Count(strings.NewReader(`<a><a><c/></a><b/><c/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || stats.Elements != 5 {
		t.Fatalf("n=%d stats=%+v", n, stats)
	}
}

func TestPrepareErrors(t *testing.T) {
	if _, err := Prepare("a..b"); err == nil {
		t.Error("Prepare should fail on a bad expression")
	}
	if _, err := PrepareXPath("//["); err == nil {
		t.Error("PrepareXPath should fail on a bad path")
	}
}

func TestRunSynthesizesDocumentEvents(t *testing.T) {
	plan, err := Prepare("a.b")
	if err != nil {
		t.Fatal(err)
	}
	var hits int
	run, err := plan.NewRun(EvalOptions{Mode: spexnet.ModeNodes,
		Sink: func(spexnet.Result) { hits++ }})
	if err != nil {
		t.Fatal(err)
	}
	// Feed element events without explicit document brackets.
	for _, ev := range []xmlstream.Event{
		xmlstream.Start("a"), xmlstream.Start("b"), xmlstream.End("b"), xmlstream.End("a"),
	} {
		if err := run.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if hits != 1 || run.Matches() != 1 {
		t.Fatalf("hits=%d matches=%d", hits, run.Matches())
	}
	// Closing twice is fine; feeding after close is not.
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run.Feed(xmlstream.Start("x")); err == nil {
		t.Error("Feed after Close should fail")
	}
}

func TestRunExplicitDocumentEvents(t *testing.T) {
	plan, err := Prepare("a")
	if err != nil {
		t.Fatal(err)
	}
	run, err := plan.NewRun(EvalOptions{Mode: spexnet.ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	events := []xmlstream.Event{
		{Kind: xmlstream.StartDocument},
		xmlstream.Start("a"), xmlstream.End("a"),
		{Kind: xmlstream.EndDocument},
	}
	for _, ev := range events {
		if err := run.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	if run.Matches() != 1 {
		t.Fatalf("matches=%d", run.Matches())
	}
}

// TestInfiniteStreamBoundedMemory is E7's unbounded-stream half: the
// evaluator's live heap must not grow with the number of processed
// messages, only with the (bounded) depth — the paper's stability claim
// for application-generated infinite streams.
func TestInfiniteStreamBoundedMemory(t *testing.T) {
	plan, err := Prepare("root.rec[flag].val")
	if err != nil {
		t.Fatal(err)
	}
	var hits int64
	run, err := plan.NewRun(EvalOptions{Mode: spexnet.ModeNodes,
		Sink: func(spexnet.Result) { hits++ }})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(ev xmlstream.Event) {
		t.Helper()
		if err := run.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	feed(xmlstream.Start("root"))

	const records = 300_000
	measure := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	var early uint64
	for i := 0; i < records; i++ {
		feed(xmlstream.Start("rec"))
		if i%3 == 0 {
			feed(xmlstream.Start("flag"))
			feed(xmlstream.End("flag"))
		}
		feed(xmlstream.Start("val"))
		feed(xmlstream.End("val"))
		feed(xmlstream.End("rec"))
		if i == records/10 {
			early = measure()
		}
	}
	late := measure()
	feed(xmlstream.End("root"))
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if hits != records/3 {
		t.Fatalf("hits=%d, want %d", hits, records/3)
	}
	// Allow generous jitter, but catch linear growth: processing 9x more
	// records must not grow the live heap materially.
	if late > early+512*1024 {
		t.Errorf("live heap grew with stream length: %d B early vs %d B late", early, late)
	}
}

// TestSnapshotConcurrentPolling exercises the observability contract:
// Run.Snapshot may be called from a second goroutine while the first
// streams a DMOZ-shaped document. Under -race this validates the
// single-writer/atomic-reader instrument design; the assertions check
// step-granularity consistency — counters never move backwards, maxima
// never shrink — and that the final snapshot agrees with the network's
// own accounting.
func TestSnapshotConcurrentPolling(t *testing.T) {
	plan, err := Prepare("_*.Topic[editor].Title")
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	run, err := plan.NewRun(EvalOptions{Mode: spexnet.ModeCount, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	pollErr := make(chan error, 1)
	go func() {
		var polls int
		var lastEvents, lastMaxStack int64
		for !stop.Load() {
			s := run.Snapshot()
			if !s.Enabled {
				pollErr <- fmt.Errorf("snapshot disabled despite attached registry")
				return
			}
			if s.Events < lastEvents {
				pollErr <- fmt.Errorf("events went backwards: %d after %d", s.Events, lastEvents)
				return
			}
			if s.MaxStack < lastMaxStack {
				pollErr <- fmt.Errorf("max stack shrank: %d after %d", s.MaxStack, lastMaxStack)
				return
			}
			lastEvents, lastMaxStack = s.Events, s.MaxStack
			polls++
		}
		if polls == 0 {
			pollErr <- fmt.Errorf("poller never observed the stream")
			return
		}
		pollErr <- nil
	}()

	src := dataset.DMOZStructure(0.01).Stream()
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	if err := <-pollErr; err != nil {
		t.Fatal(err)
	}

	final, st := run.Snapshot(), run.Stats()
	if final.Matches == 0 {
		t.Fatal("expected matches on the DMOZ-shaped document")
	}
	if final.Elements != st.Elements || final.MaxDepth != int64(st.MaxDepth) ||
		final.Matches != st.Output.Matches || final.MaxStack != int64(st.MaxStack) {
		t.Fatalf("final snapshot disagrees with stats:\nsnapshot elements=%d depth=%d matches=%d stack=%d\nstats    elements=%d depth=%d matches=%d stack=%d",
			final.Elements, final.MaxDepth, final.Matches, final.MaxStack,
			st.Elements, st.MaxDepth, st.Output.Matches, st.MaxStack)
	}
	if len(final.Transducers) != st.Transducers {
		t.Fatalf("snapshot lists %d transducers, network has %d", len(final.Transducers), st.Transducers)
	}
}

func TestFromAST(t *testing.T) {
	plan, err := Prepare("a.b")
	if err != nil {
		t.Fatal(err)
	}
	p2 := FromAST(plan.Expr())
	n, _, err := p2.Count(strings.NewReader(`<a><b/></a>`))
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}
