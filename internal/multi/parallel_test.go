package multi

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// fig1Doc is the running example of the paper (Fig. 1).
const fig1Doc = `<a><a><c>first</c></a><b/><c>second</c></a>`

// collectSequential evaluates the subscriptions through the sequential Set
// baseline and returns per-subscription hit indices in delivery order.
func collectSequential(t *testing.T, queries []string, doc func() xmlstream.Source) map[string][]int64 {
	t.Helper()
	hits := map[string][]int64{}
	var subs []Subscription
	for i, expr := range queries {
		name := fmt.Sprintf("q%d", i)
		subs = append(subs, Subscription{
			Name: name,
			Plan: plan(t, expr),
			OnHit: func(s string, r spexnet.Result) {
				hits[s] = append(hits[s], r.Index)
			},
		})
	}
	set, err := NewSet(subs)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Run(doc()); err != nil {
		t.Fatal(err)
	}
	return hits
}

// collectParallel evaluates the same subscriptions through a ParallelSet.
func collectParallel(t *testing.T, queries []string, doc func() xmlstream.Source, opts ParallelOptions) map[string][]int64 {
	t.Helper()
	hits := map[string][]int64{}
	var subs []Subscription
	for i, expr := range queries {
		name := fmt.Sprintf("q%d", i)
		subs = append(subs, Subscription{
			Name: name,
			Plan: plan(t, expr),
			OnHit: func(s string, r spexnet.Result) {
				hits[s] = append(hits[s], r.Index)
			},
		})
	}
	p, err := NewParallelSet(subs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(doc()); err != nil {
		t.Fatal(err)
	}
	return hits
}

func sameHits(t *testing.T, label string, want, got map[string][]int64) {
	t.Helper()
	for name, w := range want {
		g := got[name]
		if len(g) != len(w) {
			t.Fatalf("%s: %s: sequential %v vs parallel %v", label, name, w, g)
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: %s: sequential %v vs parallel %v", label, name, w, g)
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok && len(got[name]) > 0 {
			t.Fatalf("%s: %s: parallel-only hits %v", label, name, got[name])
		}
	}
}

// TestParallelSetAgreesWithSequential cross-validates the parallel engine
// against the sequential baseline on the paper's Fig. 1 document, sweeping
// shard count, batch size, isolation mode and a shuffled shard assignment:
// the partition must not be able to change a single answer.
func TestParallelSetAgreesWithSequential(t *testing.T) {
	queries := []string{
		"a.a.c", "a.c", "_*.c", "a[b].c", "a.a[c].c", "_*[c]", "a.b", "a.a.c",
	}
	doc := func() xmlstream.Source { return xmlstream.NewScanner(strings.NewReader(fig1Doc)) }
	want := collectSequential(t, queries, doc)
	if len(want) == 0 {
		t.Fatal("baseline produced no hits at all")
	}
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(len(queries))
	for _, shards := range []int{1, 2, 3, 4} {
		for _, isolate := range []bool{false, true} {
			for _, batch := range []int{1, 3, 256} {
				label := fmt.Sprintf("shards=%d isolate=%v batch=%d", shards, isolate, batch)
				got := collectParallel(t, queries, doc, ParallelOptions{
					Shards:    shards,
					BatchSize: batch,
					Isolate:   isolate,
					Assign:    func(i, n int) int { return perm[i] % n },
				})
				sameHits(t, label, want, got)
			}
		}
	}
}

// TestParallelSetDMOZCrossValidation repeats the cross-validation on a
// DMOZ-shaped document large enough to span many batches, with the
// SDI-style common-prefix workload.
func TestParallelSetDMOZCrossValidation(t *testing.T) {
	queries := []string{
		"_*.Topic[editor].Title",
		"_*.Topic.newsGroup",
		"_*.Topic[newsGroup].link",
		"_*.Topic.Title",
		"_*.Topic[editor]",
		"_*.Topic.catid",
	}
	doc := func() xmlstream.Source { return dataset.DMOZStructure(0.002).Stream() }
	want := collectSequential(t, queries, doc)
	rng := rand.New(rand.NewSource(41))
	perm := rng.Perm(len(queries))
	for _, shards := range []int{1, 3, 4} {
		label := fmt.Sprintf("shards=%d", shards)
		got := collectParallel(t, queries, doc, ParallelOptions{
			Shards:    shards,
			BatchSize: 64,
			Assign:    func(i, n int) int { return perm[i] % n },
		})
		sameHits(t, label, want, got)
	}
}

// TestParallelSetMatches checks the merged per-subscription counts.
func TestParallelSetMatches(t *testing.T) {
	subs := []Subscription{
		{Name: "sport", Plan: plan(t, "feed.msg[sport]")},
		{Name: "politics", Plan: plan(t, "feed.msg[politics]")},
		{Name: "titled", Plan: plan(t, "_*.msg[title]")},
	}
	doc := `<feed><msg><sport/><title>x</title></msg><msg><politics/><title>y</title></msg><msg><sport/></msg></feed>`
	p, err := NewParallelSet(subs, ParallelOptions{Shards: 2, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(xmlstream.NewScanner(strings.NewReader(doc))); err != nil {
		t.Fatal(err)
	}
	counts := p.Matches()
	if counts["sport"] != 2 || counts["politics"] != 1 || counts["titled"] != 2 {
		t.Fatalf("Matches: %v", counts)
	}
}

// TestParallelSetHitOrdering: answers of one subscription must arrive in
// document order even when other shards race ahead or fall behind.
func TestParallelSetHitOrdering(t *testing.T) {
	var docSB strings.Builder
	docSB.WriteString("<feed>")
	for i := 0; i < 500; i++ {
		docSB.WriteString("<msg><sport/><title>t</title></msg>")
	}
	docSB.WriteString("</feed>")
	orders := make([][]int64, 4)
	var subs []Subscription
	for i := 0; i < 4; i++ {
		i := i
		subs = append(subs, Subscription{
			Name: fmt.Sprintf("q%d", i),
			Plan: plan(t, "feed.msg[sport]"),
			OnHit: func(_ string, r spexnet.Result) {
				orders[i] = append(orders[i], r.Index)
			},
		})
	}
	p, err := NewParallelSet(subs, ParallelOptions{Shards: 4, BatchSize: 8, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(xmlstream.NewScanner(strings.NewReader(docSB.String()))); err != nil {
		t.Fatal(err)
	}
	for i, ord := range orders {
		if len(ord) != 500 {
			t.Fatalf("q%d: %d hits, want 500", i, len(ord))
		}
		for j := 1; j < len(ord); j++ {
			if ord[j] <= ord[j-1] {
				t.Fatalf("q%d: out of document order at %d: %d after %d", i, j, ord[j], ord[j-1])
			}
		}
	}
}

// TestParallelSetSnapshotDuringRun polls the metrics snapshot from the test
// goroutine while the feeder and the shards are mid-batch; under -race this
// proves the instruments' single-writer discipline holds across the pool.
func TestParallelSetSnapshotDuringRun(t *testing.T) {
	var docSB strings.Builder
	docSB.WriteString("<feed>")
	for i := 0; i < 2000; i++ {
		docSB.WriteString("<msg><sport/><title>t</title></msg>")
	}
	docSB.WriteString("</feed>")
	var subs []Subscription
	for i := 0; i < 8; i++ {
		subs = append(subs, Subscription{Name: fmt.Sprintf("q%d", i), Plan: plan(t, "feed.msg[sport].title")})
	}
	m := obs.NewMetrics()
	p, err := NewParallelSet(subs, ParallelOptions{Shards: 4, BatchSize: 16, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(done)
		if err := p.Run(xmlstream.NewScanner(strings.NewReader(docSB.String()))); err != nil {
			t.Error(err)
		}
	}()
	polls := 0
	for {
		select {
		case <-done:
		default:
		}
		s := p.Snapshot()
		if !s.Enabled {
			t.Fatal("snapshot disabled despite registry")
		}
		if len(s.Shards) != 4 {
			t.Fatalf("snapshot shards: %d", len(s.Shards))
		}
		for _, sh := range s.Shards {
			if sh.Events < 0 || sh.Batches < 0 || sh.Queue < 0 || sh.Queue > sh.MaxQueue {
				t.Fatalf("implausible shard snapshot: %+v", sh)
			}
		}
		polls++
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	wg.Wait()
	if polls == 0 {
		t.Fatal("never polled")
	}
	// Final state: every shard saw the whole stream.
	s := p.Snapshot()
	var hits int64
	for _, sh := range s.Shards {
		if sh.Events != s.Events {
			t.Errorf("shard %s saw %d events, stream had %d", sh.Name, sh.Events, s.Events)
		}
		hits += sh.Hits
	}
	if hits != 2000*8 {
		t.Errorf("shard hits: %d, want %d", hits, 2000*8)
	}
	if s.Matches != 2000*8 {
		t.Errorf("sink matches: %d, want %d", s.Matches, 2000*8)
	}
}

// TestParallelSetError: a malformed stream (unbalanced end message) must
// surface as an error from Run, not a hang or a panic.
func TestParallelSetError(t *testing.T) {
	subs := []Subscription{{Name: "q", Plan: plan(t, "a.b")}}
	p, err := NewParallelSet(subs, ParallelOptions{Shards: 1, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(ev xmlstream.Event) error { return p.Feed(ev) }
	if err := feed(xmlstream.Event{Kind: xmlstream.StartDocument}); err != nil {
		t.Fatal(err)
	}
	if err := feed(xmlstream.Start("a")); err != nil {
		t.Fatal(err)
	}
	_ = feed(xmlstream.End("a"))
	_ = feed(xmlstream.End("a")) // unbalanced: depth < 0 inside the shard
	err = p.Close()
	if err == nil {
		t.Fatal("unbalanced stream: want error, got nil")
	}
	if !strings.Contains(err.Error(), "unbalanced") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestParallelSetBackpressure: with a queue depth of one batch and a batch
// of one event the feeder blocks constantly; correctness must not depend on
// the queue having slack.
func TestParallelSetBackpressure(t *testing.T) {
	queries := []string{"feed.msg[sport]", "feed.msg[politics]", "_*.title"}
	doc := `<feed><msg><sport/><title>x</title></msg><msg><politics/><title>y</title></msg></feed>`
	src := func() xmlstream.Source { return xmlstream.NewScanner(strings.NewReader(doc)) }
	want := collectSequential(t, queries, src)
	got := collectParallel(t, queries, src, ParallelOptions{Shards: 3, BatchSize: 1, QueueDepth: 1})
	sameHits(t, "tiny-queue", want, got)
}
