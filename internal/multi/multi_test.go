package multi

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

func plan(t *testing.T, expr string) *core.Plan {
	t.Helper()
	p, err := core.Prepare(expr)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMultiQuerySinglePass(t *testing.T) {
	doc := `<feed><msg><sport/><title>x</title></msg><msg><politics/><title>y</title></msg><msg><sport/></msg></feed>`
	hits := map[string][]int64{}
	subs := []Subscription{
		{Name: "sport", Plan: plan(t, "feed.msg[sport]"), OnHit: func(s string, r spexnet.Result) {
			hits[s] = append(hits[s], r.Index)
		}},
		{Name: "politics", Plan: plan(t, "feed.msg[politics]"), OnHit: func(s string, r spexnet.Result) {
			hits[s] = append(hits[s], r.Index)
		}},
		{Name: "titled", Plan: plan(t, "_*.msg[title]"), OnHit: func(s string, r spexnet.Result) {
			hits[s] = append(hits[s], r.Index)
		}},
	}
	set, err := NewSet(subs)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Run(xmlstream.NewScanner(strings.NewReader(doc))); err != nil {
		t.Fatal(err)
	}
	// Element indices: feed@1 msg@2 sport@3 title@4 msg@5 politics@6
	// title@7 msg@8 sport@9.
	want := map[string][]int64{
		"sport":    {2, 8},
		"politics": {5},
		"titled":   {2, 5},
	}
	for name, w := range want {
		got := hits[name]
		if len(got) != len(w) {
			t.Fatalf("%s: got %v, want %v", name, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("%s: got %v, want %v", name, got, w)
			}
		}
	}
	counts := set.Matches()
	if counts["sport"] != 2 || counts["politics"] != 1 || counts["titled"] != 2 {
		t.Fatalf("Matches: %v", counts)
	}
}

func TestMultiFeedIncremental(t *testing.T) {
	var sportHits int
	subs := []Subscription{
		{Name: "s", Plan: plan(t, "f.m[s]"), OnHit: func(string, spexnet.Result) { sportHits++ }},
	}
	set, err := NewSet(subs)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(ev xmlstream.Event) {
		t.Helper()
		if err := set.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	feed(xmlstream.Event{Kind: xmlstream.StartDocument})
	feed(xmlstream.Start("f"))
	feed(xmlstream.Start("m"))
	feed(xmlstream.Start("s"))
	feed(xmlstream.End("s"))
	if sportHits != 1 {
		t.Fatalf("progressive delivery: got %d hits mid-stream, want 1", sportHits)
	}
	feed(xmlstream.End("m"))
	feed(xmlstream.End("f"))
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
}
