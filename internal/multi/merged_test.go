package multi

import (
	"strings"
	"testing"

	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// mergedEngine abstracts the engines cross-validated in this file.
type mergedEngine interface {
	Run(xmlstream.Source) error
	Symtab() *xmlstream.Symtab
	Matches() map[string]int64
}

// TestMergedMatchesSequential cross-validates the merged engine against the
// sequential baseline on a corpus with shared prefixes, an exact duplicate,
// an equivalent-after-canonicalization pair, a one-way containment and a
// statically unsatisfiable member.
func TestMergedMatchesSequential(t *testing.T) {
	doc := `<feed><msg><sport/><title>x</title></msg><msg><politics/><title>y</title></msg><msg><sport/></msg></feed>`
	run := func(build func([]Subscription) (mergedEngine, error)) (map[string][]int64, map[string]int64) {
		t.Helper()
		hits := map[string][]int64{}
		subs := []Subscription{
			{Name: "sport", Plan: plan(t, "feed.msg[sport]")},
			{Name: "politics", Plan: plan(t, "feed.msg[politics]")},
			{Name: "titled", Plan: plan(t, "_*.msg[title]")},
			{Name: "titledstar", Plan: plan(t, "_*.msg[title*]")}, // ≡ _*.msg (nullable condition)
			{Name: "anymsg", Plan: plan(t, "_*.msg")},
			{Name: "sport2", Plan: plan(t, "feed.msg[sport]")}, // exact duplicate of sport
			{Name: "unsat", Plan: plan(t, `feed.msg[@x="1" and @x="2"]`)},
		}
		for i := range subs {
			name := subs[i].Name
			subs[i].OnHit = func(_ string, r spexnet.Result) {
				hits[name] = append(hits[name], r.Index)
			}
		}
		eng, err := build(subs)
		if err != nil {
			t.Fatal(err)
		}
		src := xmlstream.NewScanner(strings.NewReader(doc),
			xmlstream.WithSymtab(eng.Symtab()), xmlstream.WithAttributes(true))
		if err := eng.Run(src); err != nil {
			t.Fatal(err)
		}
		return hits, eng.Matches()
	}

	seqHits, seqCounts := run(func(subs []Subscription) (mergedEngine, error) { return NewSet(subs) })
	mrgHits, mrgCounts := run(func(subs []Subscription) (mergedEngine, error) { return NewMergedSet(subs) })

	for name, w := range seqHits {
		got := mrgHits[name]
		if len(got) != len(w) {
			t.Fatalf("%s: merged hits %v, sequential %v", name, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("%s: merged hits %v, sequential %v", name, got, w)
			}
		}
	}
	for name, w := range seqCounts {
		if mrgCounts[name] != w {
			t.Fatalf("%s: merged count %d, sequential %d", name, mrgCounts[name], w)
		}
	}
	if seqCounts["sport"] != 2 || seqCounts["unsat"] != 0 {
		t.Fatalf("baseline sanity: %v", seqCounts)
	}
}

// TestMergedCollapsedLimits checks per-member attribution when equivalent
// queries with different answer limits collapse onto one sink: each member
// must report the shared sink's deliveries capped at its own budget, and
// the shared sink must run to the largest budget.
func TestMergedCollapsedLimits(t *testing.T) {
	doc := `<f><m/><m/><m/><m/></f>`
	hits := map[string]int{}
	subs := []Subscription{
		{Name: "one", Plan: plan(t, "f.m").Limited(1)},
		{Name: "three", Plan: plan(t, "f.m").Limited(3)},
		{Name: "all", Plan: plan(t, "f.m")},
	}
	for i := range subs {
		name := subs[i].Name
		subs[i].OnHit = func(string, spexnet.Result) { hits[name]++ }
	}
	set, err := NewMergedSet(subs)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.MergeStats().Collapsed; got != 2 {
		t.Fatalf("Collapsed = %d, want 2", got)
	}
	if err := set.Run(xmlstream.NewScanner(strings.NewReader(doc), xmlstream.WithSymtab(set.Symtab()))); err != nil {
		t.Fatal(err)
	}
	if hits["one"] != 1 || hits["three"] != 3 || hits["all"] != 4 {
		t.Fatalf("delivery counts: %v", hits)
	}
	counts := set.Matches()
	if counts["one"] != 1 || counts["three"] != 3 || counts["all"] != 4 {
		t.Fatalf("Matches: %v", counts)
	}
}

// TestMergedAllPruned: a set whose every member is statically unsatisfiable
// is determined before the first event and never reads the stream.
func TestMergedAllPruned(t *testing.T) {
	subs := []Subscription{
		{Name: "a", Plan: plan(t, `f[@x="1" and @x="2"]`)},
		{Name: "b", Plan: plan(t, `f[@y="v" and not(@y)]`)},
	}
	set, err := NewMergedSet(subs)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Determined() {
		t.Fatal("all-pruned set not determined before the stream")
	}
	if set.Degree() != 0 {
		t.Fatalf("Degree = %d, want 0", set.Degree())
	}
	if err := set.Run(&failingSource{t: t}); err != nil {
		t.Fatal(err)
	}
	counts := set.Matches()
	if counts["a"] != 0 || counts["b"] != 0 {
		t.Fatalf("Matches: %v", counts)
	}
	st := set.MergeStats()
	if st.Pruned != 2 || st.Live != 0 || st.MergedTransducers != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// failingSource fails the test if the engine reads from it.
type failingSource struct{ t *testing.T }

func (s *failingSource) Next() (xmlstream.Event, error) {
	s.t.Fatal("all-pruned merged set read the stream")
	return xmlstream.Event{}, nil
}

// TestMergedPrunedMixed: pruned members coexist with live ones; pruned
// members count zero, live ones match sequential.
func TestMergedPrunedMixed(t *testing.T) {
	doc := `<f><m/><m/></f>`
	subs := []Subscription{
		{Name: "live", Plan: plan(t, "f.m")},
		{Name: "dead", Plan: plan(t, `f.m[@x="1" and @x="2"]`)},
	}
	set, err := NewMergedSet(subs)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Run(xmlstream.NewScanner(strings.NewReader(doc), xmlstream.WithSymtab(set.Symtab()))); err != nil {
		t.Fatal(err)
	}
	counts := set.Matches()
	if counts["live"] != 2 || counts["dead"] != 0 {
		t.Fatalf("Matches: %v", counts)
	}
	st := set.MergeStats()
	if st.Pruned != 1 || st.Live != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestMergedSharesPrefixes: the merged network of a prefix-heavy corpus must
// be smaller than the sum of single-query networks, both in the static
// estimate and in the built network's actual degree.
func TestMergedSharesPrefixes(t *testing.T) {
	exprs := []string{
		"_*.a.b.c.d",
		"_*.a.b.c.e",
		"_*.a.b.c.f",
		"_*.a.b.g",
		"_*.a.b.h",
	}
	subs := make([]Subscription, len(exprs))
	naiveDegree := 0
	for i, e := range exprs {
		subs[i] = Subscription{Name: e, Plan: plan(t, e)}
		single, err := NewMergedSet([]Subscription{{Name: e, Plan: plan(t, e)}})
		if err != nil {
			t.Fatal(err)
		}
		naiveDegree += single.Degree()
	}
	set, err := NewMergedSet(subs)
	if err != nil {
		t.Fatal(err)
	}
	st := set.MergeStats()
	if st.MergedTransducers >= st.NaiveTransducers {
		t.Fatalf("no static sharing: naive %d, merged %d", st.NaiveTransducers, st.MergedTransducers)
	}
	if set.Degree() >= naiveDegree {
		t.Fatalf("merged degree %d not below naive %d", set.Degree(), naiveDegree)
	}
}
