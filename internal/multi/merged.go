package multi

import (
	"fmt"
	"io"

	"repro/internal/setcompile"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// MergedSet evaluates a collection of subscriptions through one network
// compiled by the query-set compiler (internal/setcompile): subscriptions
// are canonicalized so equivalent ones become structurally identical,
// statically unsatisfiable ones are pruned before any transducer exists,
// and equivalent ones collapse onto one physical sink whose answers are
// remapped to every member. What remains compiles into a single network
// whose hash-consing shares the corpus's common prefixes and
// subexpressions — the YFilter-scale sharing the paper's §IX sketches.
//
// Answers are byte-identical to sequential evaluation: only provably
// equivalent queries share a sink, and each member's deliveries are capped
// at its own answer limit even when the shared sink runs longer.
type MergedSet struct {
	subs   []Subscription
	prog   *setcompile.Program
	net    *spexnet.Network // nil when every query is pruned
	symtab *xmlstream.Symtab
	open   bool
	done   bool
	// memberHits counts deliveries per member (capped at the member's own
	// limit); repHits counts raw deliveries per representative sink.
	memberHits []int64
	repHits    []int64
}

// NewMergedSet compiles all subscriptions through the set compiler into
// one merged network.
func NewMergedSet(subs []Subscription, opts ...Option) (*MergedSet, error) {
	return newMergedSetSym(subs, xmlstream.NewSymtab(), resolveOptions(opts))
}

// newMergedSetSym compiles the set against a caller-provided symbol table
// (see newSetSym).
func newMergedSetSym(subs []Subscription, symtab *xmlstream.Symtab, cfg engineConfig) (*MergedSet, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("multi: no subscriptions")
	}
	queries := make([]setcompile.Query, len(subs))
	for i := range subs {
		queries[i] = setcompile.Query{Name: subs[i].Name, Expr: subs[i].Plan.Expr(), Limit: subs[i].Plan.Limit()}
	}
	prog := setcompile.Compile(queries)
	s := &MergedSet{
		subs:       subs,
		prog:       prog,
		symtab:     symtab,
		memberHits: make([]int64, len(subs)),
		repHits:    make([]int64, len(prog.Reps)),
	}
	if len(prog.Reps) == 0 {
		// Every query is statically unsatisfiable: the answer — all
		// empty — is known before the stream starts and no network exists.
		return s, nil
	}
	specs := make([]spexnet.Spec, len(prog.Reps))
	for ri := range prog.Reps {
		rep := prog.Reps[ri]
		ri := ri
		members := rep.Members
		specs[ri] = spexnet.Spec{
			Expr:  rep.Expr,
			Mode:  spexnet.ModeNodes,
			Name:  subs[members[0]].Name,
			Limit: rep.Limit,
			Sink: func(r spexnet.Result) {
				s.repHits[ri]++
				for _, mi := range members {
					lim := s.prog.Members[mi].Limit
					if lim > 0 && s.memberHits[mi] >= lim {
						// This member's own budget is exhausted; the sink
						// keeps running for members with larger budgets.
						continue
					}
					s.memberHits[mi]++
					if sub := &s.subs[mi]; sub.OnHit != nil {
						sub.OnHit(sub.Name, r)
					}
				}
			},
		}
	}
	net, err := spexnet.BuildSet(specs, spexnet.Options{
		Symtab:          symtab,
		Governor:        cfg.gov,
		GovernorMetrics: cfg.metrics,
		SinkMetrics:     cfg.metrics,
		TraceID:         cfg.traceID,
	})
	if err != nil {
		return nil, err
	}
	s.net = net
	return s, nil
}

// Symtab returns the set-wide symbol table, for feeders that want to share
// it with their scanner so events arrive pre-resolved.
func (s *MergedSet) Symtab() *xmlstream.Symtab { return s.symtab }

// Degree returns the number of transducers in the merged network; zero
// when every query was pruned.
func (s *MergedSet) Degree() int {
	if s.net == nil {
		return 0
	}
	return s.net.Degree()
}

// MergeStats returns the static pre-pass statistics: naive vs merged
// transducer counts and the pruned/collapsed/contained query tallies.
func (s *MergedSet) MergeStats() setcompile.MergeStats { return s.prog.Stats }

// Program exposes the compiled set plan, for introspection.
func (s *MergedSet) Program() *setcompile.Program { return s.prog }

// Feed pushes one event through the merged network, exactly as
// SharedSet.Feed does.
func (s *MergedSet) Feed(ev xmlstream.Event) error {
	if s.done {
		return fmt.Errorf("multi: merged set already closed")
	}
	if s.net == nil || s.net.AnswerDetermined() {
		if ev.Kind == xmlstream.EndDocument {
			s.done = true
		}
		return nil
	}
	if !s.open {
		s.open = true
		if ev.Kind != xmlstream.StartDocument {
			if err := s.net.Step(xmlstream.Event{Kind: xmlstream.StartDocument}); err != nil {
				return err
			}
		}
	}
	if err := s.net.Step(ev); err != nil {
		return err
	}
	if s.net.AnswerDetermined() {
		s.net.Release()
		return nil
	}
	if ev.Kind == xmlstream.EndDocument {
		s.done = true
		return s.net.Finish()
	}
	return nil
}

// Determined reports whether every subscription's answer is fixed. Pruned
// subscriptions are determined from the start — their answer is statically
// empty — so a set whose every member is pruned is determined before the
// first event.
func (s *MergedSet) Determined() bool {
	if s.net == nil {
		return true
	}
	return s.net.AnswerDetermined()
}

// Run drains the source and closes the set. When the whole answer is known
// statically (every query pruned) the stream is not read at all.
func (s *MergedSet) Run(src xmlstream.Source) error {
	if s.net == nil {
		s.done = true
		return nil
	}
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := s.Feed(ev); err != nil {
			return err
		}
		if s.net.AnswerDetermined() {
			break
		}
	}
	return s.Close()
}

// Close ends the stream and validates the evaluation.
func (s *MergedSet) Close() error {
	if s.done {
		return nil
	}
	s.done = true
	if s.net == nil {
		return nil
	}
	if s.net.AnswerDetermined() {
		s.net.Release()
		return nil
	}
	if !s.open {
		if err := s.net.Step(xmlstream.Event{Kind: xmlstream.StartDocument}); err != nil {
			return err
		}
	}
	if err := s.net.Step(xmlstream.Event{Kind: xmlstream.EndDocument}); err != nil {
		return err
	}
	return s.net.Finish()
}

// Matches returns per-subscription answer counts keyed by name. Members of
// a collapsed sink are attributed individually: each reports the shared
// sink's deliveries capped at its own answer limit, so a query's count is
// identical to what its private network would have reported. Sink-side
// counts (which survive governor degradation) are reconciled with the
// delivery counts per representative.
func (s *MergedSet) Matches() map[string]int64 {
	out := make(map[string]int64, len(s.subs))
	var sinks []spexnet.OutputStats
	if s.net != nil {
		sinks = s.net.SinkStats()
	}
	for mi := range s.prog.Members {
		m := &s.prog.Members[mi]
		n := s.memberHits[mi]
		if m.Rep >= 0 && m.Rep < len(sinks) {
			rep := sinks[m.Rep].Matches
			if m.Limit > 0 && rep > m.Limit {
				rep = m.Limit
			}
			if rep > n {
				n = rep
			}
		}
		out[m.Name] = n
	}
	return out
}
