package multi

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// Default tuning for the parallel SDI engine. Batches amortize the channel
// synchronization over many events (a per-event send would cost more than
// evaluating the event); the queue depth bounds how far a fast feeder can
// run ahead of a slow shard before blocking — backpressure, not growth.
const (
	DefaultBatchSize  = 256
	DefaultQueueDepth = 4
)

// ParallelOptions tune a ParallelSet. The zero value is ready to use:
// GOMAXPROCS shards, shared per-shard networks, default batching.
type ParallelOptions struct {
	// Shards is the number of worker shards; 0 means runtime.GOMAXPROCS(0).
	// The subscription set is partitioned over the shards; every shard sees
	// the whole event stream.
	Shards int
	// BatchSize is the number of events per broadcast batch; 0 means
	// DefaultBatchSize. Smaller batches lower answer latency, larger ones
	// raise throughput.
	BatchSize int
	// QueueDepth is the per-shard inbound queue capacity in batches; 0
	// means DefaultQueueDepth. The feeder blocks when a shard's queue is
	// full (backpressure).
	QueueDepth int
	// Isolate builds one network per subscription inside each shard (the
	// Set baseline) instead of one shared network per shard. Sharing is the
	// default: queries desugared to the same normalized head evaluate the
	// common chain once per shard behind a fan-out junction.
	Isolate bool
	// Merged runs each shard's partition through the query-set compiler
	// (internal/setcompile): canonicalization, static pruning of
	// unsatisfiable subscriptions, and collapse of equivalent ones onto
	// shared sinks, on top of the shared network's prefix factoring.
	// Merged takes precedence over Isolate.
	Merged bool
	// Assign maps a subscription index to a shard in [0, shards); nil means
	// round-robin. Cross-validation tests shuffle assignments to prove the
	// partition cannot change answers.
	Assign func(subIndex, shards int) int
	// Metrics, when non-nil, receives live instrumentation: stream-side
	// counters written by the feeding goroutine, per-shard instruments
	// (batches, events, hits, queue watermark, busy time) written by the
	// workers, and the Matches counter written by the sink goroutine. All
	// are readable from any goroutine mid-stream via Snapshot.
	Metrics *obs.Metrics
	// Governor attaches the resource governor to every shard's networks;
	// the same caps and policy the sequential engines take through
	// WithGovernor. A shed subscription stops producing hits but the pool
	// keeps running; a fail-policy trip surfaces as the pool's error.
	Governor *governor.Config
	// TraceID stamps every trace record of every shard network with the
	// stream-scoped trace identifier (see multi.WithTraceID). The shard
	// worker goroutines also carry it as a pprof label, so profiles
	// attribute shard CPU to the originating stream.
	TraceID string
}

// eventBatch is a broadcast unit: one slice of events delivered to every
// shard. It is reference-counted because all shards share the same backing
// buffer; the last shard to finish returns it to the pool.
type eventBatch struct {
	evs  []xmlstream.Event
	refs atomic.Int32
}

func (b *eventBatch) release(pool *sync.Pool) {
	if b.refs.Add(-1) == 0 {
		b.evs = b.evs[:0]
		pool.Put(b)
	}
}

// hit is one answer tagged with its subscription's global index.
type hit struct {
	sub int
	r   spexnet.Result
}

// hitBatch carries a shard's answers from one event batch to the sink
// goroutine.
type hitBatch struct {
	hits []hit
}

// evaluator is the per-shard engine: Set or SharedSet.
type evaluator interface {
	Feed(ev xmlstream.Event) error
	Close() error
	Matches() map[string]int64
	Determined() bool
}

// ParallelSet evaluates a collection of subscriptions over one stream pass
// with a sharded worker pool. Subscriptions are partitioned into shards;
// each shard owns its networks' mutable state exclusively and evaluates
// every event of the stream against its share of the queries. The feeding
// goroutine (the caller of Feed/Run) broadcasts batched event slices to the
// shards over bounded channels; answers funnel through a single sink
// goroutine, so OnHit callbacks never race and arrive in per-subscription
// document order.
type ParallelSet struct {
	subs   []Subscription
	opts   ParallelOptions
	shards []*shardWorker
	// symtab is the pool-wide symbol table: every shard engine compiles
	// against it and the feeder resolves each event's label symbol exactly
	// once, before broadcasting — the workers never touch the interner, so
	// the hot shard loops run pure integer label tests with no shared-state
	// traffic beyond the batch channels.
	symtab *xmlstream.Symtab

	batchPool sync.Pool
	hitPool   sync.Pool
	hitCh     chan *hitBatch
	cur       *eventBatch

	workerWG sync.WaitGroup
	sinkWG   sync.WaitGroup

	failed atomic.Bool
	errMu  sync.Mutex
	err    error

	// detShards counts shards whose every subscription reached its answer
	// limit; when it equals len(shards) the whole pool's answer is fixed and
	// the feeder disconnects the stream. Written by shard goroutines, read
	// by the feeder.
	detShards atomic.Int32

	opened bool
	closed bool
	depth  int64
}

// shardWorker is one shard: its inbound queue, its engine, and its answer
// buffer. Only the shard's goroutine touches set and hits.
type shardWorker struct {
	p    *ParallelSet
	id   int
	ch   chan *eventBatch
	set  evaluator
	sm   *obs.ShardMetrics
	hits *hitBatch
	// determined flags that this shard's engine released itself (all its
	// subscriptions reached their answer limits); later batches are dropped
	// unevaluated but still reference-released, so pooled buffers never leak.
	determined bool
}

// NewParallelSet partitions the subscriptions over a worker pool and starts
// the shard and sink goroutines. Close (or Run, which calls it) must be
// called to release them.
func NewParallelSet(subs []Subscription, opts ParallelOptions) (*ParallelSet, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("multi: no subscriptions")
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.Shards > len(subs) {
		opts.Shards = len(subs)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	p := &ParallelSet{subs: subs, opts: opts, symtab: xmlstream.NewSymtab()}
	p.batchPool.New = func() any {
		return &eventBatch{evs: make([]xmlstream.Event, 0, opts.BatchSize)}
	}
	p.hitPool.New = func() any { return &hitBatch{} }
	p.cur = p.batchPool.Get().(*eventBatch)
	p.hitCh = make(chan *hitBatch, 2*opts.Shards)

	// Partition the subscriptions.
	byShard := make([][]int, opts.Shards)
	for i := range subs {
		s := i % opts.Shards
		if opts.Assign != nil {
			s = opts.Assign(i, opts.Shards)
			if s < 0 || s >= opts.Shards {
				return nil, fmt.Errorf("multi: Assign(%d, %d) = %d out of range", i, opts.Shards, s)
			}
		}
		byShard[s] = append(byShard[s], i)
	}

	var sms []*obs.ShardMetrics
	for id := 0; id < opts.Shards; id++ {
		w := &shardWorker{
			p:    p,
			id:   id,
			ch:   make(chan *eventBatch, opts.QueueDepth),
			hits: p.hitPool.Get().(*hitBatch),
		}
		if opts.Metrics != nil {
			w.sm = obs.NewShardMetrics(fmt.Sprintf("shard-%d", id))
			w.sm.Subs.Set(int64(len(byShard[id])))
			sms = append(sms, w.sm)
		}
		// Each shard evaluates wrapped subscriptions whose sinks collect
		// into the shard's hit buffer; the user's OnHit runs only in the
		// sink goroutine.
		wrapped := make([]Subscription, 0, len(byShard[id]))
		for _, gi := range byShard[id] {
			gi := gi
			wrapped = append(wrapped, Subscription{
				Name: subs[gi].Name,
				Plan: subs[gi].Plan,
				OnHit: func(_ string, r spexnet.Result) {
					w.hits.hits = append(w.hits.hits, hit{sub: gi, r: r})
				},
			})
		}
		var err error
		ecfg := engineConfig{gov: opts.Governor, metrics: opts.Metrics, traceID: opts.TraceID}
		switch {
		case opts.Merged:
			w.set, err = newMergedSetSym(wrapped, p.symtab, ecfg)
		case opts.Isolate:
			w.set, err = newSetSym(wrapped, p.symtab, ecfg)
		default:
			w.set, err = newSharedSetSym(wrapped, p.symtab, ecfg)
		}
		if err != nil {
			return nil, fmt.Errorf("multi: shard %d: %w", id, err)
		}
		p.shards = append(p.shards, w)
	}
	if opts.Metrics != nil {
		opts.Metrics.SetShards(sms)
	}

	for _, w := range p.shards {
		p.workerWG.Add(1)
		go w.run()
	}
	p.sinkWG.Add(1)
	go p.sink()
	return p, nil
}

// Shards returns the number of worker shards.
func (p *ParallelSet) Shards() int { return len(p.shards) }

// Symtab returns the pool-wide symbol table, for feeders that want to share
// it with their scanner so events arrive pre-resolved.
func (p *ParallelSet) Symtab() *xmlstream.Symtab { return p.symtab }

// setErr records the first error and flips the pool into draining mode.
func (p *ParallelSet) setErr(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
	p.failed.Store(true)
}

func (p *ParallelSet) firstErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// run is the shard loop: evaluate every inbound batch, release the shared
// buffer, ship the answers. After the queue closes the shard finishes its
// engine so end-of-stream answers (past conditions determined at </$>)
// still reach the sink. A panic anywhere in a shard's evaluation — a
// poisoned stream, a buggy engine path — is contained to the pool: it
// surfaces as the pool's error instead of crashing the process, which a
// long-lived server feeding many independent sessions through pools cannot
// afford.
func (w *shardWorker) run() {
	defer w.p.workerWG.Done()
	// pprof labels attribute this goroutine's CPU samples to its shard and,
	// when the pool is trace-stamped, to the originating stream — the same
	// correlation key the obs trace records carry.
	labels := []string{"spex_shard", strconv.Itoa(w.id)}
	if id := w.p.opts.TraceID; id != "" {
		labels = append(labels, "spex_trace", id)
	}
	pprof.Do(context.Background(), pprof.Labels(labels...), func(context.Context) {
		for b := range w.ch {
			w.evalBatch(b)
			b.release(&w.p.batchPool)
			w.flushHits()
		}
		w.closeSet()
		w.flushHits()
	})
}

// evalBatch feeds one batch through the shard's engine, converting panics
// into pool errors.
func (w *shardWorker) evalBatch(b *eventBatch) {
	if w.p.failed.Load() || w.determined {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			w.p.setErr(fmt.Errorf("multi: shard %d: panic: %v", w.id, r))
		}
	}()
	var start time.Time
	if w.sm != nil {
		start = time.Now()
	}
	for i := range b.evs {
		if err := w.set.Feed(b.evs[i]); err != nil {
			w.p.setErr(fmt.Errorf("multi: shard %d: %w", w.id, err))
			break
		}
		if w.set.Determined() {
			w.determined = true
			w.p.detShards.Add(1)
			break
		}
	}
	if w.sm != nil {
		w.sm.Batches.Inc()
		w.sm.Events.Add(int64(len(b.evs)))
		w.sm.BusyNs.Add(time.Since(start).Nanoseconds())
	}
}

// closeSet finishes the shard's engine after the queue closes, with the
// same panic containment as evalBatch.
func (w *shardWorker) closeSet() {
	if w.p.failed.Load() {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			w.p.setErr(fmt.Errorf("multi: shard %d: panic: %v", w.id, r))
		}
	}()
	if err := w.set.Close(); err != nil {
		w.p.setErr(fmt.Errorf("multi: shard %d: %w", w.id, err))
	}
}

// flushHits ships the shard's buffered answers to the sink goroutine. The
// channel preserves each sender's order, so a subscription's answers —
// always produced by the one shard owning it — arrive in document order.
func (w *shardWorker) flushHits() {
	if len(w.hits.hits) == 0 {
		return
	}
	if w.sm != nil {
		w.sm.Hits.Add(int64(len(w.hits.hits)))
	}
	w.p.hitCh <- w.hits
	w.hits = w.p.hitPool.Get().(*hitBatch)
}

// sink is the single ordered delivery goroutine: all OnHit callbacks of all
// subscriptions run here. A panicking callback marks the pool failed rather
// than crashing the process; the remaining hit batches are drained without
// delivery.
func (p *ParallelSet) sink() {
	defer p.sinkWG.Done()
	for hb := range p.hitCh {
		p.deliver(hb)
		hb.hits = hb.hits[:0]
		p.hitPool.Put(hb)
	}
}

// deliver runs one hit batch's OnHit callbacks, converting panics into pool
// errors.
func (p *ParallelSet) deliver(hb *hitBatch) {
	if p.failed.Load() {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			p.setErr(fmt.Errorf("multi: panic in OnHit callback: %v", r))
		}
	}()
	for _, h := range hb.hits {
		sub := &p.subs[h.sub]
		if sub.OnHit != nil {
			sub.OnHit(sub.Name, h.r)
		}
		if p.opts.Metrics != nil {
			p.opts.Metrics.Matches.Inc()
		}
	}
}

// Feed pushes one event into the pool; the actual broadcast happens once
// per batch. Feed must be called from a single goroutine (the feeder).
func (p *ParallelSet) Feed(ev xmlstream.Event) error {
	if p.closed {
		return fmt.Errorf("multi: parallel set already closed")
	}
	if p.failed.Load() {
		return p.firstErr()
	}
	if p.Determined() {
		// Every shard's answer is fixed; broadcasting further events would
		// only be dropped by the workers.
		return nil
	}
	if !p.opened {
		p.opened = true
		if ev.Kind != xmlstream.StartDocument {
			p.push(xmlstream.Event{Kind: xmlstream.StartDocument})
		}
	}
	if m := p.opts.Metrics; m != nil {
		m.Events.Inc()
		switch ev.Kind {
		case xmlstream.StartElement:
			m.Elements.Inc()
			p.depth++
			m.Depth.Set(p.depth)
		case xmlstream.EndElement:
			p.depth--
			m.Depth.Set(p.depth)
		}
	}
	p.push(ev)
	return nil
}

func (p *ParallelSet) push(ev xmlstream.Event) {
	// Resolve the label symbol once for the whole pool: shards receive
	// pre-resolved events and never touch the interner.
	if ev.Sym == 0 && (ev.Kind == xmlstream.StartElement || ev.Kind == xmlstream.EndElement) {
		ev.Sym = p.symtab.Intern(ev.Name)
	}
	p.cur.evs = append(p.cur.evs, ev)
	if len(p.cur.evs) >= p.opts.BatchSize {
		p.dispatch()
	}
}

// dispatch broadcasts the current batch to every shard. The bounded channel
// send is the backpressure point: a shard that cannot keep up stalls the
// feeder instead of queueing unboundedly.
func (p *ParallelSet) dispatch() {
	b := p.cur
	if len(b.evs) == 0 {
		return
	}
	p.cur = p.batchPool.Get().(*eventBatch)
	b.refs.Store(int32(len(p.shards)))
	for _, w := range p.shards {
		if w.sm != nil {
			// Queue depth as seen when enqueueing, this batch included;
			// the feeder is the instrument's only writer.
			w.sm.Queue.Set(int64(len(w.ch) + 1))
		}
		w.ch <- b
	}
	if m := p.opts.Metrics; m != nil {
		hits, misses := p.symtab.Stats()
		m.SymtabSize.Set(int64(p.symtab.Len()))
		m.SymtabHits.Set(hits)
		m.SymtabMisses.Set(misses)
	}
}

// Close flushes the last batch, ends the stream on every shard, waits for
// all answers to be delivered and returns the first error. The per-shard
// engines synthesize missing document boundaries exactly like the
// sequential Set.
func (p *ParallelSet) Close() error {
	if p.closed {
		return p.firstErr()
	}
	p.closed = true
	p.dispatch()
	for _, w := range p.shards {
		close(w.ch)
	}
	p.workerWG.Wait()
	close(p.hitCh)
	p.sinkWG.Wait()
	if m := p.opts.Metrics; m != nil {
		for _, w := range p.shards {
			if w.sm != nil {
				w.sm.Queue.Set(0)
			}
		}
		hits, misses := p.symtab.Stats()
		m.SymtabSize.Set(int64(p.symtab.Len()))
		m.SymtabHits.Set(hits)
		m.SymtabMisses.Set(misses)
	}
	return p.firstErr()
}

// Run drains the source through the pool and closes it.
func (p *ParallelSet) Run(src xmlstream.Source) error {
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			p.setErr(err)
			_ = p.Close()
			return err
		}
		if err := p.Feed(ev); err != nil {
			_ = p.Close()
			return err
		}
		if p.Determined() {
			break
		}
	}
	return p.Close()
}

// Determined reports whether every shard's answer is fixed (all answer
// limits reached): the feeder may disconnect the stream. Safe to call from
// the feeding goroutine while the pool runs.
func (p *ParallelSet) Determined() bool {
	return len(p.shards) > 0 && int(p.detShards.Load()) == len(p.shards)
}

// Matches returns per-subscription answer counts, keyed by name; valid
// after Close.
func (p *ParallelSet) Matches() map[string]int64 {
	out := make(map[string]int64, len(p.subs))
	for _, w := range p.shards {
		for name, n := range w.set.Matches() {
			out[name] = n
		}
	}
	return out
}

// Snapshot returns a point-in-time view of the pool's metrics registry,
// safe from any goroutine while the pool is running. Without a registry the
// snapshot has Enabled == false.
func (p *ParallelSet) Snapshot() obs.Snapshot {
	if p.opts.Metrics == nil {
		return obs.Snapshot{}
	}
	return p.opts.Metrics.Snapshot()
}
