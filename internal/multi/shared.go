package multi

import (
	"fmt"
	"io"

	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// SharedSet evaluates a collection of subscriptions over one stream pass
// through a SINGLE transducer network with one sink per query: the
// multi-query optimization the paper's conclusion proposes ("a single
// transducer network can be used for processing several queries having
// common subparts"). Structurally identical subexpressions evaluated from
// the same tape — in particular the common prefixes of subscription
// workloads — are compiled and evaluated once.
type SharedSet struct {
	subs   []Subscription
	net    *spexnet.Network
	symtab *xmlstream.Symtab
	open   bool
	done   bool
}

// NewSharedSet compiles all subscriptions into one network.
func NewSharedSet(subs []Subscription, opts ...Option) (*SharedSet, error) {
	return newSharedSetSym(subs, xmlstream.NewSymtab(), resolveOptions(opts))
}

// newSharedSetSym compiles the set against a caller-provided symbol table
// (see newSetSym).
func newSharedSetSym(subs []Subscription, symtab *xmlstream.Symtab, cfg engineConfig) (*SharedSet, error) {
	specs := make([]spexnet.Spec, len(subs))
	for i := range subs {
		sub := subs[i]
		specs[i] = spexnet.Spec{
			Expr:  sub.Plan.Expr(),
			Mode:  spexnet.ModeNodes,
			Name:  sub.Name,
			Limit: sub.Plan.Limit(),
			Sink: func(r spexnet.Result) {
				if sub.OnHit != nil {
					sub.OnHit(sub.Name, r)
				}
			},
		}
	}
	net, err := spexnet.BuildSet(specs, spexnet.Options{
		Symtab:          symtab,
		Governor:        cfg.gov,
		GovernorMetrics: cfg.metrics,
		SinkMetrics:     cfg.metrics,
		TraceID:         cfg.traceID,
	})
	if err != nil {
		return nil, err
	}
	return &SharedSet{subs: subs, net: net, symtab: symtab}, nil
}

// Symtab returns the set-wide symbol table, for feeders that want to share
// it with their scanner so events arrive pre-resolved.
func (s *SharedSet) Symtab() *xmlstream.Symtab { return s.symtab }

// Degree returns the number of transducers in the shared network; with
// common prefixes it is far below the sum of the per-query networks.
func (s *SharedSet) Degree() int { return s.net.Degree() }

// Feed pushes one event through the shared network. The end-document event
// finishes the evaluation, exactly as core.Run.Feed does.
func (s *SharedSet) Feed(ev xmlstream.Event) error {
	if s.done {
		return fmt.Errorf("multi: shared set already closed")
	}
	if s.net.AnswerDetermined() {
		// Every sink's answer limit is reached; the network released its
		// state, so the remaining stream is irrelevant.
		if ev.Kind == xmlstream.EndDocument {
			s.done = true
		}
		return nil
	}
	if !s.open {
		s.open = true
		if ev.Kind != xmlstream.StartDocument {
			if err := s.net.Step(xmlstream.Event{Kind: xmlstream.StartDocument}); err != nil {
				return err
			}
		}
	}
	if err := s.net.Step(ev); err != nil {
		return err
	}
	if s.net.AnswerDetermined() {
		s.net.Release()
		return nil
	}
	if ev.Kind == xmlstream.EndDocument {
		s.done = true
		return s.net.Finish()
	}
	return nil
}

// Determined reports whether every subscription's answer is fixed (all
// answer limits reached): the feeder may disconnect the stream.
func (s *SharedSet) Determined() bool { return s.net.AnswerDetermined() }

// Run drains the source and closes the set.
func (s *SharedSet) Run(src xmlstream.Source) error {
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := s.Feed(ev); err != nil {
			return err
		}
		if s.net.AnswerDetermined() {
			break
		}
	}
	return s.Close()
}

// Close ends the stream and validates the evaluation.
func (s *SharedSet) Close() error {
	if s.done {
		return nil
	}
	s.done = true
	if s.net.AnswerDetermined() {
		s.net.Release()
		return nil
	}
	if !s.open {
		if err := s.net.Step(xmlstream.Event{Kind: xmlstream.StartDocument}); err != nil {
			return err
		}
	}
	if err := s.net.Step(xmlstream.Event{Kind: xmlstream.EndDocument}); err != nil {
		return err
	}
	return s.net.Finish()
}

// Matches returns per-subscription answer counts, keyed by name.
func (s *SharedSet) Matches() map[string]int64 {
	stats := s.net.SinkStats()
	out := make(map[string]int64, len(stats))
	for i, st := range stats {
		out[s.subs[i].Name] = st.Matches
	}
	return out
}
