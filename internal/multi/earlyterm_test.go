package multi

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// earlyTermDoc streams n <c/> leaves under one root — n answers of _*.c, so
// a limited query's determining event sits arbitrarily far from the end.
func earlyTermDoc(n int) string {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < n; i++ {
		sb.WriteString("<c/>")
	}
	sb.WriteString("</r>")
	return sb.String()
}

// TestEnginesEarlyDisconnect drives all three engines over a 50k-element
// document through a counting source: with every subscription limited to 3
// answers, each engine must disconnect from the source at the determining
// event, pulling only a tiny prefix of the stream.
func TestEnginesEarlyDisconnect(t *testing.T) {
	const leaves = 50000
	doc := earlyTermDoc(leaves)

	type runner interface {
		Run(src xmlstream.Source) error
		Determined() bool
		Matches() map[string]int64
	}
	engines := []struct {
		name string
		make func(t *testing.T) runner
	}{
		{"sequential", func(t *testing.T) runner {
			s, err := NewSet(subsLimited(t))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"shared", func(t *testing.T) runner {
			s, err := NewSharedSet(subsLimited(t))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"parallel", func(t *testing.T) runner {
			p, err := NewParallelSet(subsLimited(t), ParallelOptions{Shards: 2, BatchSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			set := eng.make(t)
			src := &xmlstream.CountingSource{Src: xmlstream.NewScanner(strings.NewReader(doc))}
			if err := set.Run(src); err != nil {
				t.Fatal(err)
			}
			if !set.Determined() {
				t.Fatal("all-limited set did not determine")
			}
			for name, m := range set.Matches() {
				if m != 3 {
					t.Fatalf("%s matches = %d, want 3", name, m)
				}
			}
			// The determining event is within the first handful of leaves;
			// a generous bound still proves the disconnect (the parallel
			// engine over-reads by up to a batch per shard).
			if src.Info.Elements > leaves/10 {
				t.Fatalf("consumed %d of %d elements — engine did not disconnect early",
					src.Info.Elements, leaves)
			}
		})
	}
}

func subsLimited(t *testing.T) []Subscription {
	t.Helper()
	return []Subscription{
		{Name: "c3", Plan: plan(t, "_*.c limit 3"), OnHit: func(string, spexnet.Result) {}},
		{Name: "r3", Plan: plan(t, "r.c limit 3"), OnHit: func(string, spexnet.Result) {}},
	}
}

// TestParallelMidBatchDisconnectNoLeak feeds a parallel set event by event so
// determination lands mid-batch, then keeps feeding past it. Run under
// -race, this checks three things: no worker touches a released network, the
// trailing events are absorbed without growing the answer, and Close joins
// every goroutine — nothing stays parked on the broadcast channels.
func TestParallelMidBatchDisconnectNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	var hits int
	subs := []Subscription{
		{Name: "c2", Plan: plan(t, "_*.c limit 2"), OnHit: func(string, spexnet.Result) { hits++ }},
	}
	p, err := NewParallelSet(subs, ParallelOptions{Shards: 4, BatchSize: 8, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(ev xmlstream.Event) {
		t.Helper()
		if err := p.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	feed(xmlstream.Event{Kind: xmlstream.StartDocument})
	feed(xmlstream.Start("r"))
	// 500 leaves: the limit-2 determination lands in the first batch while
	// later batches are already queued or still being filled.
	for i := 0; i < 500; i++ {
		feed(xmlstream.Start("c"))
		feed(xmlstream.End("c"))
	}
	feed(xmlstream.End("r"))
	feed(xmlstream.Event{Kind: xmlstream.EndDocument})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if !p.Determined() {
		t.Fatal("set did not report Determined")
	}
	if m := p.Matches()["c2"]; m != 2 {
		t.Fatalf("Matches = %d, want 2", m)
	}

	// Close must have joined the workers and the sink; give the runtime a
	// moment to retire exiting goroutines before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutines after Close: %d, baseline %d — worker leak", n, baseline)
	}
}
