// Package multi evaluates several queries against one stream in a single
// pass — the selective-dissemination-of-information (SDI) scenario the
// paper's introduction motivates and its conclusion names as future work
// ("a single transducer network can be used for processing several queries
// having common subparts"). Three engines are provided:
//
//   - Set runs one network per query over the shared event stream — the
//     baseline the others are cross-validated against;
//   - SharedSet compiles all queries into ONE network (spexnet.BuildSet
//     hash-conses common subexpressions behind explicit fan-out junctions) —
//     the paper's multi-query optimization;
//   - ParallelSet shards the subscriptions over a worker pool: each shard
//     owns one shared network exclusively, the feeding goroutine broadcasts
//     batched event slices over bounded channels with backpressure, and a
//     single sink goroutine delivers OnHit callbacks in per-subscription
//     order — the scaling axis an SDI service with many standing queries
//     needs.
package multi

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// Subscription pairs a query with its answer callback. Name tags the
// subscription in results (e.g. a subscriber id).
type Subscription struct {
	Name  string
	Plan  *core.Plan
	OnHit func(sub string, r spexnet.Result)
}

// Set evaluates a collection of subscriptions over one stream pass.
type Set struct {
	subs   []Subscription
	runs   []*core.Run
	symtab *xmlstream.Symtab
	// done flags subscriptions whose answer is fixed (limit reached); det
	// counts them, so Determined is O(1) and Feed skips finished runs.
	done []bool
	det  int
}

// NewSet prepares the evaluation of all subscriptions.
func NewSet(subs []Subscription, opts ...Option) (*Set, error) {
	return newSetSym(subs, xmlstream.NewSymtab(), resolveOptions(opts))
}

// newSetSym builds the set against a caller-provided symbol table — the
// parallel engine passes its pool-wide table so all shards share one symbol
// space and the feeder can pre-resolve events once for everyone.
func newSetSym(subs []Subscription, symtab *xmlstream.Symtab, cfg engineConfig) (*Set, error) {
	s := &Set{subs: subs, symtab: symtab}
	for i := range subs {
		sub := subs[i]
		run, err := sub.Plan.NewRun(core.EvalOptions{
			Mode:   spexnet.ModeNodes,
			Symtab: symtab,
			Sink: func(r spexnet.Result) {
				if sub.OnHit != nil {
					sub.OnHit(sub.Name, r)
				}
			},
			Governor:        cfg.gov,
			GovernorMetrics: cfg.metrics,
			SinkMetrics:     cfg.metrics,
			TraceID:         cfg.traceID,
		})
		if err != nil {
			return nil, fmt.Errorf("multi: subscription %s: %w", sub.Name, err)
		}
		s.runs = append(s.runs, run)
	}
	s.done = make([]bool, len(s.runs))
	return s, nil
}

// Symtab returns the set-wide symbol table, for feeders that want to share
// it with their scanner so events arrive pre-resolved.
func (s *Set) Symtab() *xmlstream.Symtab { return s.symtab }

// Feed pushes one event to every subscription's network. The label symbol
// is resolved once here, not once per subscription: all member networks were
// compiled against the set's table.
func (s *Set) Feed(ev xmlstream.Event) error {
	if ev.Sym == 0 && (ev.Kind == xmlstream.StartElement || ev.Kind == xmlstream.EndElement) {
		ev.Sym = s.symtab.Intern(ev.Name)
	}
	for i, run := range s.runs {
		if s.done[i] {
			continue
		}
		if err := run.Feed(ev); err != nil {
			return fmt.Errorf("multi: subscription %s: %w", s.subs[i].Name, err)
		}
		if run.Determined() {
			// The subscription's answer limit was reached: its run already
			// released itself, so stop feeding it (the remaining
			// subscriptions keep the stream flowing).
			s.done[i] = true
			s.det++
		}
	}
	return nil
}

// Determined reports whether every subscription's answer is fixed (all
// answer limits reached): the feeder may disconnect the stream.
func (s *Set) Determined() bool { return len(s.runs) > 0 && s.det == len(s.runs) }

// Run drains the source through all subscriptions and closes them. When
// every subscription reaches its answer limit the source is disconnected at
// the determining event — the rest of the stream is never pulled.
func (s *Set) Run(src xmlstream.Source) error {
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := s.Feed(ev); err != nil {
			return err
		}
		if s.Determined() {
			break
		}
	}
	return s.Close()
}

// Close finishes every subscription.
func (s *Set) Close() error {
	var first error
	for i, run := range s.runs {
		if err := run.Close(); err != nil && first == nil {
			first = fmt.Errorf("multi: subscription %s: %w", s.subs[i].Name, err)
		}
	}
	return first
}

// Matches returns per-subscription answer counts, keyed by name.
func (s *Set) Matches() map[string]int64 {
	out := make(map[string]int64, len(s.runs))
	for i, run := range s.runs {
		out[s.subs[i].Name] = run.Matches()
	}
	return out
}
