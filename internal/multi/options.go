package multi

import (
	"repro/internal/governor"
	"repro/internal/obs"
)

// Option configures a multi-query engine (Set or SharedSet; the parallel
// engine takes the same settings through ParallelOptions).
type Option func(*engineConfig)

// engineConfig is the resolved option set shared by the engines.
type engineConfig struct {
	gov     *governor.Config
	metrics *obs.Metrics
	traceID string
}

func resolveOptions(opts []Option) engineConfig {
	var cfg engineConfig
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// WithGovernor attaches the resource governor to every member network:
// formula/candidate/buffer/step/variable/depth caps with a fail, degrade or
// shed policy. A nil (or all-zero) config evaluates ungoverned.
func WithGovernor(cfg *governor.Config) Option {
	return func(c *engineConfig) { c.gov = cfg }
}

// WithMetrics binds a registry for governor trip accounting: the
// spex_governor_* counters accumulate across all member networks. It does
// not enable full per-event instrumentation (that would count each stream
// event once per member network).
func WithMetrics(m *obs.Metrics) Option {
	return func(c *engineConfig) { c.metrics = m }
}

// WithTraceID stamps every trace record of every member network with the
// stream-scoped trace identifier, correlating one stream pass across the
// engine's networks and the caller's own records. Empty leaves the records
// unstamped.
func WithTraceID(id string) Option {
	return func(c *engineConfig) { c.traceID = id }
}
