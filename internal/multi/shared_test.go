package multi

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// TestSharedSetAgreesWithSeparate evaluates the same subscriptions through
// independent networks and through one shared network; the per-subscriber
// answers must be identical.
func TestSharedSetAgreesWithSeparate(t *testing.T) {
	queries := map[string]string{
		"q1": "feed.msg[sport]",
		"q2": "feed.msg[sport].title",
		"q3": "feed.msg[politics]",
		"q4": "feed.msg",
		"q5": "_*.title",
		"q6": "feed.msg[sport]", // duplicate query: full network shared
	}
	doc := `<feed><msg><sport/><title>a</title></msg><msg><politics/><title>b</title></msg><msg><sport/></msg></feed>`

	collect := func(shared bool) map[string][]int64 {
		hits := map[string][]int64{}
		var subs []Subscription
		for name, expr := range queries {
			subs = append(subs, Subscription{
				Name: name,
				Plan: plan(t, expr),
				OnHit: func(s string, r spexnet.Result) {
					hits[s] = append(hits[s], r.Index)
				},
			})
		}
		src := xmlstream.NewScanner(strings.NewReader(doc))
		if shared {
			set, err := NewSharedSet(subs)
			if err != nil {
				t.Fatal(err)
			}
			if err := set.Run(src); err != nil {
				t.Fatal(err)
			}
		} else {
			set, err := NewSet(subs)
			if err != nil {
				t.Fatal(err)
			}
			if err := set.Run(src); err != nil {
				t.Fatal(err)
			}
		}
		return hits
	}

	separate := collect(false)
	shared := collect(true)
	for name := range queries {
		a, b := separate[name], shared[name]
		if len(a) != len(b) {
			t.Fatalf("%s: separate %v vs shared %v", name, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: separate %v vs shared %v", name, a, b)
			}
		}
	}
}

// TestSharedSetPrefixSharing verifies the compilation actually shares: N
// queries with a common prefix must compile into far fewer transducers than
// N independent networks would need.
func TestSharedSetPrefixSharing(t *testing.T) {
	var subs []Subscription
	const n = 50
	for i := 0; i < n; i++ {
		subs = append(subs, Subscription{
			Name: fmt.Sprintf("q%d", i),
			Plan: plan(t, fmt.Sprintf("_*.Topic[editor].f%d", i)),
		})
	}
	set, err := NewSharedSet(subs)
	if err != nil {
		t.Fatal(err)
	}
	// One query alone costs some degree D; n queries sharing everything
	// but the last step should cost ≈ D + n (one child transducer and
	// one sink each) plus a few explicit fan-out junctions, far below n*D.
	single, err := spexnet.Build(subs[0].Plan.Expr(), spexnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := single.Degree()
	if set.Degree() >= n*d/2 {
		t.Fatalf("no sharing: %d transducers for %d queries (single query: %d)", set.Degree(), n, d)
	}
	if set.Degree() > d+2*n+4 {
		t.Fatalf("sharing weaker than expected: %d transducers, single %d", set.Degree(), d)
	}
}

// TestSharedSetQualifierSharing: a shared qualifier sub-network must still
// determine every subscriber's answers correctly.
func TestSharedSetQualifierSharing(t *testing.T) {
	subs := []Subscription{
		{Name: "title", Plan: plan(t, "_*.Topic[editor].Title")},
		{Name: "news", Plan: plan(t, "_*.Topic[editor].newsGroup")},
		{Name: "all", Plan: plan(t, "_*.Topic.Title")},
	}
	set, err := NewSharedSet(subs)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Run(dataset.DMOZStructure(0.001).Stream()); err != nil {
		t.Fatal(err)
	}
	got := set.Matches()

	for _, sub := range subs {
		net, err := spexnet.Build(sub.Plan.Expr(), spexnet.Options{Mode: spexnet.ModeCount})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := net.Run(dataset.DMOZStructure(0.001).Stream())
		if err != nil {
			t.Fatal(err)
		}
		if got[sub.Name] != stats.Output.Matches {
			t.Errorf("%s: shared %d vs solo %d", sub.Name, got[sub.Name], stats.Output.Matches)
		}
	}
	if got["all"] == 0 || got["title"] == 0 {
		t.Fatalf("suspicious zero counts: %v", got)
	}
}
