package governor

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		err  bool
	}{
		{"fail", PolicyFail, false},
		{"", PolicyFail, false},
		{"FAIL", PolicyFail, false},
		{"degrade", PolicyDegrade, false},
		{"count-only", PolicyDegrade, false},
		{" shed ", PolicyShed, false},
		{"drop", PolicyShed, false},
		{"explode", PolicyFail, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParsePolicy(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyFail, PolicyDegrade, PolicyShed} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, err %v", p, got, err)
		}
	}
}

func TestResourceNamesDistinct(t *testing.T) {
	seen := map[string]Resource{}
	for i := 0; i < NumResources; i++ {
		r := Resource(i)
		name := r.String()
		if name == "" || strings.Contains(name, "resource_") {
			t.Errorf("resource %d has placeholder name %q", i, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("resources %v and %v share name %q", prev, r, name)
		}
		seen[name] = r
	}
}

func TestLimitsOfCoversEveryResource(t *testing.T) {
	l := Limits{
		MaxFormulaSize:    1,
		MaxCandidates:     2,
		MaxBufferedEvents: 3,
		MaxStepMessages:   4,
		MaxLiveVars:       5,
		MaxDepth:          6,
	}
	for i := 0; i < NumResources; i++ {
		if l.Of(Resource(i)) == 0 {
			t.Errorf("Limits.Of(%v) = 0; field not wired", Resource(i))
		}
	}
	if (Limits{}).Of(ResFormula) != 0 || !(Limits{}).Zero() {
		t.Error("zero Limits should be unlimited")
	}
	if l.Zero() {
		t.Error("non-zero Limits reported Zero")
	}
}

func TestEffectivePolicy(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Effective(ResCandidates) != PolicyFail {
		t.Error("nil config should be fail")
	}
	if nilCfg.Enabled() {
		t.Error("nil config should be disabled")
	}
	deg := &Config{Limits: Limits{MaxCandidates: 1}, Policy: PolicyDegrade}
	if !deg.Enabled() {
		t.Error("config with a cap should be enabled")
	}
	if got := deg.Effective(ResCandidates); got != PolicyDegrade {
		t.Errorf("degrade on reducible resource = %v", got)
	}
	if got := deg.Effective(ResFormula); got != PolicyFail {
		t.Errorf("degrade on irreducible resource should fall back to fail, got %v", got)
	}
	shed := &Config{Limits: Limits{MaxDepth: 1}, Policy: PolicyShed}
	if got := shed.Effective(ResDepth); got != PolicyShed {
		t.Errorf("shed should not fall back, got %v", got)
	}
}

func TestLimitError(t *testing.T) {
	err := &LimitError{Resource: ResCandidates, Observed: 11, Limit: 10, Policy: PolicyFail, Sub: "q0"}
	if !errors.Is(err, ErrResourceLimit) {
		t.Error("LimitError should match ErrResourceLimit")
	}
	var le *LimitError
	wrapped := fmt.Errorf("run failed: %w", err)
	if !errors.As(wrapped, &le) || le.Resource != ResCandidates {
		t.Error("errors.As should recover the LimitError through wrapping")
	}
	msg := err.Error()
	for _, want := range []string{"candidates", "11 > 10", `"q0"`, "fail"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}
