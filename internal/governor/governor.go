// Package governor enforces the paper's complexity bounds at runtime.
//
// SPEX's central theorem (§V) is that evaluating an RPEQ against a stream
// needs space polynomial in the query size and the document depth: the
// transducer stacks are bounded by d (Lemma V.2) and the condition formulas
// by o(φ). Those are asymptotic statements about well-behaved inputs — a
// pathological document (or qualifier) can still grow the candidate queue,
// the buffered answer content, or the per-step message volume without limit.
// This package turns the theorems into operational guarantees: hard caps on
// the resources the bounds speak about, with a configurable policy for what
// happens when a cap trips.
//
// The package is a leaf — it defines the vocabulary (limits, policies,
// typed errors) and internal/spexnet, internal/multi, the public spex API,
// and the spexd server all consume it.
package governor

import (
	"errors"
	"fmt"
	"strings"
)

// Policy selects what happens when a resource limit trips.
type Policy int

const (
	// PolicyFail terminates the run with a *LimitError. The stream stops
	// within the event being processed; partial results already emitted
	// stay emitted.
	PolicyFail Policy = iota

	// PolicyDegrade switches the affected output sink to count-only mode:
	// buffered answer content is released, the document-order queue is
	// eliminated, and from then on only match counts are maintained.
	// Resources that count-only mode cannot reduce (formula size, live
	// condition variables, step messages, document depth) fall back to
	// PolicyFail — degrading cannot help there, and pretending otherwise
	// would turn a hard cap into a silent lie.
	PolicyDegrade

	// PolicyShed drops the affected subscription entirely: its sink
	// releases all state and ignores the rest of the stream. Other
	// subscriptions sharing the network keep running. A single-query run
	// that sheds its only sink still completes the parse, reporting zero
	// further answers.
	PolicyShed
)

// String returns the canonical spelling accepted by ParsePolicy.
func (p Policy) String() string {
	switch p {
	case PolicyFail:
		return "fail"
	case PolicyDegrade:
		return "degrade"
	case PolicyShed:
		return "shed"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses a policy name ("fail", "degrade", "shed"),
// case-insensitively.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fail", "":
		return PolicyFail, nil
	case "degrade", "count-only", "count":
		return PolicyDegrade, nil
	case "shed", "drop":
		return PolicyShed, nil
	}
	return PolicyFail, fmt.Errorf("governor: unknown policy %q (want fail, degrade, or shed)", s)
}

// Resource identifies which accounted quantity tripped a limit.
type Resource int

const (
	// ResFormula is the size of a single condition formula, in nodes.
	// Bounded by o(φ) for well-formed queries; a qualifier bomb can defeat
	// normalization and grow it superlinearly.
	ResFormula Resource = iota
	// ResCandidates is the population of answer candidates queued for
	// determination or document order in one output sink.
	ResCandidates
	// ResBuffered is the number of buffered answer-content events held for
	// undecided candidates in one output sink.
	ResBuffered
	// ResStepMessages is the number of messages delivered through the
	// network for a single document event.
	ResStepMessages
	// ResLiveVars is the number of live condition variables in the run's
	// pool (allocated and not yet released).
	ResLiveVars
	// ResDepth is the document nesting depth.
	ResDepth

	// NumResources is the number of distinct Resource values; usable as an
	// array length for per-resource accounting.
	NumResources = int(ResDepth) + 1
)

// String returns a stable snake_case name, used as a Prometheus label.
func (r Resource) String() string {
	switch r {
	case ResFormula:
		return "formula_size"
	case ResCandidates:
		return "candidates"
	case ResBuffered:
		return "buffered_events"
	case ResStepMessages:
		return "step_messages"
	case ResLiveVars:
		return "live_vars"
	case ResDepth:
		return "depth"
	}
	return fmt.Sprintf("resource_%d", int(r))
}

// Reducible reports whether count-only degradation can shrink the resource.
// Irreducible resources fall back to PolicyFail under PolicyDegrade.
func (r Resource) Reducible() bool {
	return r == ResCandidates || r == ResBuffered
}

// Limits holds the hard caps. The zero value means "no limit" for every
// resource, so a nil or zero Config is always safe to pass around.
type Limits struct {
	// MaxFormulaSize caps the node count of any single condition formula.
	MaxFormulaSize int
	// MaxCandidates caps the queued candidate population per output sink.
	MaxCandidates int
	// MaxBufferedEvents caps buffered answer-content events per output sink.
	MaxBufferedEvents int
	// MaxStepMessages caps messages delivered per document event.
	MaxStepMessages int
	// MaxLiveVars caps live condition variables in the run's pool.
	MaxLiveVars int
	// MaxDepth caps the document nesting depth.
	MaxDepth int
}

// Zero reports whether no limit is set.
func (l Limits) Zero() bool { return l == Limits{} }

// Of returns the configured cap for r (0 = unlimited).
func (l Limits) Of(r Resource) int {
	switch r {
	case ResFormula:
		return l.MaxFormulaSize
	case ResCandidates:
		return l.MaxCandidates
	case ResBuffered:
		return l.MaxBufferedEvents
	case ResStepMessages:
		return l.MaxStepMessages
	case ResLiveVars:
		return l.MaxLiveVars
	case ResDepth:
		return l.MaxDepth
	}
	return 0
}

// Config couples limits with the policy applied when one trips.
type Config struct {
	Limits Limits
	Policy Policy
}

// Enabled reports whether the config actually constrains anything. A nil
// receiver is a valid, disabled config.
func (c *Config) Enabled() bool { return c != nil && !c.Limits.Zero() }

// Effective returns the policy that will actually be applied for r:
// PolicyDegrade falls back to PolicyFail on irreducible resources.
func (c *Config) Effective(r Resource) Policy {
	if c == nil {
		return PolicyFail
	}
	if c.Policy == PolicyDegrade && !r.Reducible() {
		return PolicyFail
	}
	return c.Policy
}

// ErrResourceLimit is the sentinel matched by errors.Is for every
// *LimitError, whatever the resource or policy.
var ErrResourceLimit = errors.New("resource limit exceeded")

// LimitError reports a tripped resource cap. It is returned from runs under
// PolicyFail and carried on shed subscriptions so callers can distinguish
// "no answers" from "shed".
type LimitError struct {
	Resource Resource // which accounted quantity tripped
	Observed int      // the value that tripped the cap
	Limit    int      // the configured cap
	Policy   Policy   // the policy that was applied
	Sub      string   // subscription / sink name, when attributable
}

func (e *LimitError) Error() string {
	var b strings.Builder
	b.WriteString("governor: ")
	b.WriteString(e.Resource.String())
	fmt.Fprintf(&b, " limit exceeded (%d > %d)", e.Observed, e.Limit)
	if e.Sub != "" {
		fmt.Fprintf(&b, " for %q", e.Sub)
	}
	fmt.Fprintf(&b, "; policy %s", e.Policy)
	return b.String()
}

// Is makes errors.Is(err, governor.ErrResourceLimit) true for any LimitError.
func (e *LimitError) Is(target error) bool { return target == ErrResourceLimit }
