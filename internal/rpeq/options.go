package rpeq

// ParseOption configures Parse. The zero configuration parses the rpeq
// surface syntax with no limit clause; options select the XPath front end
// and enable the trailing answer-limit clause.
type ParseOption func(*parseConfig)

type parseConfig struct {
	xpath bool
	limit *int64
}

// WithXPath selects the XPath front end: the expression is parsed as the
// XPath fragment the paper covers (forward steps, structural predicates,
// the rewritten backward axes, text and attribute tests) instead of the
// rpeq surface syntax.
func WithXPath() ParseOption {
	return func(c *parseConfig) { c.xpath = true }
}

// WithLimit enables the trailing answer-limit clause ("limit N", or
// "first" as shorthand for limit 1) and stores the parsed limit in *dst: 0
// when no clause is present (unlimited), N otherwise. The clause keywords
// stay valid labels in every other position: `a.limit` is a path, and a
// bare `limit` query selects children labelled "limit". Without this
// option the clause is rejected, so existing call sites are unaffected.
func WithLimit(dst *int64) ParseOption {
	return func(c *parseConfig) { c.limit = dst }
}

// Parse parses a query into an rpeq tree. By default the source is the
// paper's rpeq surface syntax (§II.2), e.g.
//
//	a.c                 two child steps
//	a+.c+               positive closure steps
//	_*.a[b].c           descendant wildcard, qualifier [b] on step a
//	(a|b).c?            union and optional
//	item[@a and not(b)] attribute test and negated condition
//	_*.item.@id         trailing attribute selection
//
// Operator precedence, tightest first: the postfix operators *, +, ? and
// [qualifier]; then concatenation '.'; then union '|'. Closure (* and +)
// applies to labels only, as in the paper's grammar. Qualifier conditions
// combine paths, text tests and attribute tests with not(...), 'and' and
// 'or' (in that binding order).
//
// Options select the XPath front end (WithXPath) and enable a trailing
// answer-limit clause (WithLimit). Parse replaces the former
// ParseWithLimit / ParseXPath / ParseXPathWithLimit entry points, which
// remain as thin wrappers.
func Parse(src string, opts ...ParseOption) (Node, error) {
	var cfg parseConfig
	for _, o := range opts {
		o(&cfg)
	}
	var (
		n     Node
		limit int64
		err   error
	)
	if cfg.xpath {
		n, limit, err = parseXPath(src, cfg.limit != nil)
	} else {
		n, limit, err = parseRPEQ(src, cfg.limit != nil)
	}
	if err != nil {
		return nil, err
	}
	if err := validateAttrSteps(n); err != nil {
		return nil, err
	}
	if cfg.limit != nil {
		*cfg.limit = limit
	}
	return n, nil
}

// ParseWithLimit parses an rpeq expression with an optional trailing
// answer-limit clause.
//
// Deprecated: use Parse with WithLimit.
func ParseWithLimit(src string) (Node, int64, error) {
	var limit int64
	n, err := Parse(src, WithLimit(&limit))
	return n, limit, err
}

// ParseXPath parses an expression in the supported XPath fragment.
//
// Deprecated: use Parse with WithXPath.
func ParseXPath(src string) (Node, error) {
	return Parse(src, WithXPath())
}

// ParseXPathWithLimit parses an XPath expression with an optional trailing
// answer-limit clause.
//
// Deprecated: use Parse with WithXPath and WithLimit.
func ParseXPathWithLimit(src string) (Node, int64, error) {
	var limit int64
	n, err := Parse(src, WithXPath(), WithLimit(&limit))
	return n, limit, err
}
