package rpeq

// Extension steps beyond the paper's core rpeq grammar: the following and
// preceding axes, which §I reports the SPEX prototype supported ("the
// prototype supports also other XPath navigational capabilities, i.e.
// following and preceding"). They are not part of the published grammar,
// so the rpeq surface syntax does not produce them; the XPath front end
// does (following::t, preceding::t).

// Following selects, for each context node, every element that starts
// after the context node's end message — XPath's following axis (all nodes
// after the context in document order, excluding its descendants).
type Following struct{ Test string }

// Preceding selects, for each context node, every element whose end
// message precedes the context node's start message — XPath's preceding
// axis (all nodes before the context in document order, excluding its
// ancestors).
type Preceding struct{ Test string }

func (*Following) node() {}
func (*Preceding) node() {}

func (f *Following) Size() int { return 1 }
func (p *Preceding) Size() int { return 1 }

func (f *Following) String() string { return "following::" + f.Test }
func (p *Preceding) String() string { return "preceding::" + p.Test }

// MatchesTest reports whether an element name satisfies the axis test.
func matchesTest(test, name string) bool { return test == Wildcard || test == name }

// Matches reports whether the element name satisfies the step's test.
func (f *Following) Matches(name string) bool { return matchesTest(f.Test, name) }

// Matches reports whether the element name satisfies the step's test.
func (p *Preceding) Matches(name string) bool { return matchesTest(p.Test, name) }

// HasExtensionAxes reports whether the expression uses following or
// preceding steps; evaluators restricted to the paper's core grammar (the
// automaton baseline) reject such expressions.
func HasExtensionAxes(n Node) bool {
	switch n := n.(type) {
	case *Following, *Preceding:
		return true
	case *Concat:
		return HasExtensionAxes(n.Left) || HasExtensionAxes(n.Right)
	case *Union:
		return HasExtensionAxes(n.Left) || HasExtensionAxes(n.Right)
	case *Optional:
		return HasExtensionAxes(n.Expr)
	case *Qualifier:
		return HasExtensionAxes(n.Base) || HasExtensionAxes(n.Cond)
	case *CondNot:
		return HasExtensionAxes(n.Expr)
	case *TextTest:
		return HasExtensionAxes(n.Path)
	default:
		return false
	}
}
