package rpeq

import (
	"strings"
	"testing"
)

// TestParseAttrSurface checks the parse-and-lower results of the attribute
// surface via Canonical, for both front ends.
func TestParseAttrSurface(t *testing.T) {
	tests := []struct {
		src   string
		xpath bool
		want  string // Canonical rendering
	}{
		// Spine filters: attribute predicates lower to a self-filter after
		// the step, not to qualifier machinery.
		{`item[@status]`, false, `(item.{@status})`},
		{`item[@status="closed"]`, false, `(item.{@status="closed"})`},
		{`item[@status!="open"]`, false, `(item.{@status!="open"})`},
		{`item[@status*="clo"]`, false, `(item.{@status*="clo"})`},
		{`item[not(@resolution)]`, false, `(item.{not(@resolution)})`},
		{`item[@a and @b]`, false, `(item.{@a and @b})`},
		{`item[@a or @b]`, false, `(item.{@a or @b})`},
		{`item[@a="x" and not(@b)]`, false, `(item.{@a="x" and not(@b)})`},
		// De Morgan pushes negation to the leaves.
		{`item[not(@a and @b)]`, false, `(item.{not(@a) or not(@b)})`},
		{`item[not(not(@a))]`, false, `(item.{@a})`},
		// Mixed conditions: attribute conjuncts merge into one spine
		// filter, the rest stay qualifiers.
		{`item[@a and b]`, false, `((item.{@a}))[b]`},
		{`item[b and @a]`, false, `((item.{@a}))[b]`},
		{`item[@a or b]`, false, `(item)[({@a}|b)]`},
		// Attribute-tailed condition paths test the selected element.
		{`item[b.@id]`, false, `(item)[(b.{@id})]`},
		{`item[b.@id="7"]`, false, `(item)[(b.{@id="7"})]`},
		// Negated structural conditions.
		{`item[not(b)]`, false, `(item)[!(b)]`},
		{`item[not(b.c)]`, false, `(item)[!((b.c))]`},
		{`item[not(b="v")]`, false, `(item)[!((b="v"))]`},
		// Trailing attribute selection.
		{`@id`, false, `@id`},
		{`item.@id`, false, `(item.@id)`},
		{`_*.item.@id`, false, `((_*.item).@id)`},
		// The motivating query of the attribute pipeline.
		{`items.item[@status="closed" and not(@resolution)].summary`, false,
			`((items.(item.{@status="closed" and not(@resolution)})).summary)`},
		// XPath front end.
		{`//item[@id="1"]`, true, `((_*.item).{@id="1"})`},
		{`//item/@id`, true, `((_*.item).@id)`},
		{`//item/attribute::id`, true, `((_*.item).@id)`},
		{`a//@id`, true, `(a.(_*.@id))`},
		{`a[b/@x]`, true, `(a)[(b.{@x})]`},
		{`a[not(@x)]`, true, `(a.{not(@x)})`},
		{`a[b and not(c)]`, true, `((a)[b])[!(c)]`},
		{`a[(b or c) and @x]`, true, `((a.{@x}))[(b|c)]`},
		{`items/item[@status="closed" and not(@resolution)]/summary`, true,
			`(((items.item).{@status="closed" and not(@resolution)}).summary)`},
		// 'not' and the keywords stay ordinary labels elsewhere.
		{`a[not]`, false, `(a)[not]`},
		{`a[and]`, false, `(a)[and]`},
		{`not.and.or`, false, `((not.and).or)`},
		{`a[not]`, true, `(a)[not]`},
	}
	for _, tc := range tests {
		var opts []ParseOption
		if tc.xpath {
			opts = append(opts, WithXPath())
		}
		n, err := Parse(tc.src, opts...)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.src, err)
			continue
		}
		if got := Canonical(n); got != tc.want {
			t.Errorf("Parse(%q) = %s, want %s", tc.src, got, tc.want)
		}
	}
}

// TestParseAttrErrors checks the attribute placement and negation rules.
func TestParseAttrErrors(t *testing.T) {
	tests := []struct {
		src   string
		xpath bool
		frag  string // required error substring
	}{
		{`item.@id.b`, false, "final step"},
		{`(a.@id)|b`, false, "final step"},
		{`a[@x].@id.c`, false, "final step"},
		{`(a.@id)?`, false, "final step"},
		{`a[not(b[c])]`, false, "cannot negate"},
		{`a[not(b[@x and c])]`, false, "cannot negate"},
		{`@`, false, "attribute name"},
		{`//a/@id/b`, true, "final step"},
		{`//a/@id[b]`, true, "final step"},
		{`a[not(b[c])]`, true, "cannot negate"},
		{`//@*`, true, "attribute::*"},
		{`//a/@id/parent::x`, true, "not supported"},
	}
	for _, tc := range tests {
		var opts []ParseOption
		if tc.xpath {
			opts = append(opts, WithXPath())
		}
		_, err := Parse(tc.src, opts...)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got none", tc.src, tc.frag)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("Parse(%q): error %q does not contain %q", tc.src, err, tc.frag)
		}
	}
}

// TestAttrNegatableAllowed: negation accepts qualifier-free conditions,
// including attribute-filtered and text-tested paths.
func TestAttrNegatableAllowed(t *testing.T) {
	for _, src := range []string{
		`a[not(b[@x])]`,   // inner attr predicate lowers to a filter, not a qualifier
		`a[not(b.@x)]`,    // attribute-tailed path
		`a[not(b="v")]`,   // text test
		`a[not(b|c)]`,     // union
		`a[not(b.c.d)]`,   // chain
		`a[not(b and c)]`, // De Morgan: or of negations
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

// TestParseOptionAPI: the unified Parse entry point and the deprecated
// wrappers agree.
func TestParseOptionAPI(t *testing.T) {
	var limit int64
	n, err := Parse(`_*.item limit 3`, WithLimit(&limit))
	if err != nil || limit != 3 {
		t.Fatalf("WithLimit: %v limit=%d", err, limit)
	}
	n2, l2, err := ParseWithLimit(`_*.item limit 3`)
	if err != nil || l2 != 3 || !Equal(n, n2) {
		t.Fatalf("ParseWithLimit disagrees: %v", err)
	}
	// Without WithLimit the clause is a path.
	plain := MustParse(`a.limit`)
	if Canonical(plain) != `(a.limit)` {
		t.Fatalf("limit keyword leaked: %s", Canonical(plain))
	}
	x1, err := Parse(`//item[@a]`, WithXPath())
	if err != nil {
		t.Fatal(err)
	}
	x2, err := ParseXPath(`//item[@a]`)
	if err != nil || !Equal(x1, x2) {
		t.Fatalf("ParseXPath disagrees: %v", err)
	}
	var xl int64
	x3, err := Parse(`//item first`, WithXPath(), WithLimit(&xl))
	if err != nil || xl != 1 {
		t.Fatalf("xpath first: %v limit=%d", err, xl)
	}
	x4, l4, err := ParseXPathWithLimit(`//item first`)
	if err != nil || l4 != 1 || !Equal(x3, x4) {
		t.Fatalf("ParseXPathWithLimit disagrees: %v", err)
	}
}

// TestAttrExprEval exercises the formula evaluator directly.
func TestAttrExprEval(t *testing.T) {
	attrs := map[string]string{"status": "closed", "id": "i7"}
	get := func(name string) (string, bool) { v, ok := attrs[name]; return v, ok }
	cases := []struct {
		e    AttrExpr
		want bool
	}{
		{&AttrLeaf{Name: "status", Op: AttrExists}, true},
		{&AttrLeaf{Name: "missing", Op: AttrExists}, false},
		{&AttrLeaf{Name: "status", Op: AttrEq, Value: "closed"}, true},
		{&AttrLeaf{Name: "status", Op: AttrEq, Value: "open"}, false},
		{&AttrLeaf{Name: "status", Op: AttrNeq, Value: "open"}, true},
		{&AttrLeaf{Name: "missing", Op: AttrNeq, Value: "open"}, false}, // absent: != is an existence test too
		{&AttrLeaf{Name: "id", Op: AttrContains, Value: "7"}, true},
		{&AttrNot{Expr: &AttrLeaf{Name: "missing", Op: AttrExists}}, true},
		{&AttrAnd{Left: &AttrLeaf{Name: "status", Op: AttrEq, Value: "closed"}, Right: &AttrNot{Expr: &AttrLeaf{Name: "resolution", Op: AttrExists}}}, true},
		{&AttrOr{Left: &AttrLeaf{Name: "missing", Op: AttrExists}, Right: &AttrLeaf{Name: "id", Op: AttrExists}}, true},
	}
	for i, tc := range cases {
		if got := tc.e.Eval(get); got != tc.want {
			t.Errorf("case %d (%s): got %v, want %v", i, tc.e, got, tc.want)
		}
	}
}

// TestAttrStringRoundTrip: String() of attribute-bearing trees reparses to
// an equal tree (the property FuzzParse checks for arbitrary inputs).
func TestAttrStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		`item[@status="closed" and not(@resolution)]`,
		`item[@a and b]`,
		`item[@a or b]`,
		`item[not(@a and @b) and @c]`,
		`a[not(b)]`,
		`a[b and c or d]`,
		`_*.item.@id`,
		`a[(b or c) and d]`,
	} {
		n := MustParse(src)
		n2, err := Parse(n.String())
		if err != nil {
			t.Errorf("%q → %q does not reparse: %v", src, n.String(), err)
			continue
		}
		if !Equal(n, n2) {
			t.Errorf("%q → %q reparses differently: %s vs %s", src, n.String(), Canonical(n), Canonical(n2))
		}
	}
}

// TestHasAttrTest covers the analysis entry point used for scanner wiring.
func TestHasAttrTest(t *testing.T) {
	if !HasAttrTest(MustParse(`a[@x]`)) {
		t.Error("a[@x] should report attribute use")
	}
	if !HasAttrTest(MustParse(`a.@x`)) {
		t.Error("a.@x should report attribute use")
	}
	if !HasAttrTest(MustParse(`a[not(b.@x)]`)) {
		t.Error("a[not(b.@x)] should report attribute use")
	}
	if HasAttrTest(MustParse(`a[b="v"]`)) {
		t.Error("a[b=\"v\"] should not report attribute use")
	}
}
