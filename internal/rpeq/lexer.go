package rpeq

import "fmt"

// tokenKind enumerates the lexical tokens of the rpeq surface syntax.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokName
	tokDot      // .
	tokPipe     // |
	tokStar     // *
	tokPlus     // +
	tokQuestion // ?
	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokEpsilon  // ε or %e
	tokString   // "literal"
	tokEq       // =
	tokNeq      // !=
	tokContains // *=
	tokNumber   // decimal integer (limit clauses)
	tokAt       // @ (attribute steps and tests)
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of expression"
	case tokName:
		return "label"
	case tokDot:
		return "'.'"
	case tokPipe:
		return "'|'"
	case tokStar:
		return "'*'"
	case tokPlus:
		return "'+'"
	case tokQuestion:
		return "'?'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokEpsilon:
		return "'ε'"
	case tokString:
		return "string literal"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokContains:
		return "'*='"
	case tokNumber:
		return "number"
	case tokAt:
		return "'@'"
	default:
		return "unknown token"
	}
}

// token is a lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes an rpeq expression string.
type lexer struct {
	src string
	pos int
}

// next returns the next token or a lex error.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isExprSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch c {
	case '.':
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case '|':
		l.pos++
		return token{kind: tokPipe, text: "|", pos: start}, nil
	case '*':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokContains, text: "*=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokNeq, text: "!=", pos: start}, nil
		}
		return token{}, fmt.Errorf("rpeq: invalid character %q at offset %d", c, start)
	case '"':
		l.pos++
		var b []byte
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\\' && l.pos+1 < len(l.src) {
				b = append(b, l.src[l.pos+1])
				l.pos += 2
				continue
			}
			if ch == '"' {
				l.pos++
				return token{kind: tokString, text: string(b), pos: start}, nil
			}
			b = append(b, ch)
			l.pos++
		}
		return token{}, fmt.Errorf("rpeq: unterminated string literal at offset %d", start)
	case '+':
		l.pos++
		return token{kind: tokPlus, text: "+", pos: start}, nil
	case '?':
		l.pos++
		return token{kind: tokQuestion, text: "?", pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case '@':
		l.pos++
		return token{kind: tokAt, text: "@", pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case '%':
		// %e spells epsilon in pure ASCII input.
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == 'e' {
			l.pos += 2
			return token{kind: tokEpsilon, text: "%e", pos: start}, nil
		}
		return token{}, fmt.Errorf("rpeq: invalid character %q at offset %d", c, start)
	}
	// UTF-8 ε (0xCE 0xB5).
	if c == 0xCE && l.pos+1 < len(l.src) && l.src[l.pos+1] == 0xB5 {
		l.pos += 2
		return token{kind: tokEpsilon, text: "ε", pos: start}, nil
	}
	if isLabelStart(c) {
		for l.pos < len(l.src) && isLabelByte(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokName, text: l.src[start:l.pos], pos: start}, nil
	}
	if c >= '0' && c <= '9' {
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	}
	return token{}, fmt.Errorf("rpeq: invalid character %q at offset %d", c, start)
}

func isExprSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isLabelStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isLabelByte(c byte) bool {
	return isLabelStart(c) || c == '-' || c == ':' || (c >= '0' && c <= '9')
}
