package rpeq

import "testing"

// FuzzParse feeds arbitrary strings to the rpeq parser: no panics, and
// whatever parses must re-render to something that parses to an equal tree.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"a", "_*.a[b].c", "(a|b).c+", "a?.b*", "%e", "a[b[c]][d]",
		"a..b", "((((", "a[", "|", "a+*", "ε.a",
		`item[@s="x" and not(@r)]`, "a.@id", "a[not(b)]",
		"a[(b or c) and d]", "a[b.@x]", "a[@x or b]", "@",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		n2, err := Parse(n.String())
		if err != nil {
			t.Fatalf("render of %q → %q does not reparse: %v", src, n.String(), err)
		}
		if !Equal(n, n2) {
			t.Fatalf("reparse of %q changed the tree: %s vs %s", src, Canonical(n), Canonical(n2))
		}
	})
}

// FuzzParseXPath checks the XPath front end never panics and always yields
// trees the rpeq compiler accepts (every construct is in the grammar).
func FuzzParseXPath(f *testing.F) {
	seeds := []string{
		"/a/b", "//a[b]/c", "//a/parent::b", "/a/b/ancestor::*",
		"a/..", "//*", "/a | //b", "self::a", "////", "[", "/a[../x]",
		`//item[@s="x" and not(@r)]/sum`, "//a/@id", "a[not(b)]",
		"a[(b or c) and @x]", "a[b/@x != 'v']", "//a/attribute::id",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ParseXPath(src)
		if err != nil {
			return
		}
		// The resulting tree must round-trip through the rpeq syntax.
		if _, err := Parse(n.String()); err != nil {
			t.Fatalf("xpath %q produced unparseable rpeq %q: %v", src, n.String(), err)
		}
	})
}
