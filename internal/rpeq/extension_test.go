package rpeq

import "testing"

func TestTextTestParsing(t *testing.T) {
	tests := []struct{ in, want string }{
		{`a[b = "x"]`, `(a)[(b="x")]`},
		{`a[b != "x"]`, `(a)[(b!="x")]`},
		{`a[b *= "x"]`, `(a)[(b*="x")]`},
		{`a[b.c = "x y"]`, `(a)[((b.c)="x y")]`},
		{`a[%e = "quo\"te"]`, `(a)[(ε="quo\"te")]`},
	}
	for _, tc := range tests {
		n, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := Canonical(n); got != tc.want {
			t.Errorf("Parse(%q): got %s, want %s", tc.in, got, tc.want)
		}
		// Reparse through String.
		n2, err := Parse(n.String())
		if err != nil {
			t.Errorf("reparse of %q → %q: %v", tc.in, n.String(), err)
			continue
		}
		if !Equal(n, n2) {
			t.Errorf("%q: reparse changed the tree", tc.in)
		}
	}
}

func TestTextTestParseErrors(t *testing.T) {
	bad := []string{
		`a[b = ]`, `a[b = x]`, `a[= "x"]`, `a["x"]`, `a[b = "x`,
		`a[b == "x"]`, `b = "x"`, // a text test is only a qualifier condition
	}
	for _, src := range bad {
		if n, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) = %v, want error", src, n)
		}
	}
}

func TestTextOpHolds(t *testing.T) {
	cases := []struct {
		op       TextOp
		v, c     string
		expected bool
	}{
		{TextEq, "x", "x", true},
		{TextEq, "x", "y", false},
		{TextNeq, "x", "y", true},
		{TextNeq, "x", "x", false},
		{TextContains, "hello", "ell", true},
		{TextContains, "hello", "z", false},
		{TextContains, "hello", "", true},
	}
	for _, tc := range cases {
		if got := tc.op.Holds(tc.v, tc.c); got != tc.expected {
			t.Errorf("%q %s %q: got %v", tc.v, tc.op, tc.c, got)
		}
	}
}

func TestTextTestHelpers(t *testing.T) {
	n := MustParse(`_*.a[b = "v"].c`)
	if !HasTextTest(n) {
		t.Error("HasTextTest should find the test")
	}
	if HasTextTest(MustParse("a[b].c")) {
		t.Error("HasTextTest false positive")
	}
	// Size and Desugar include the test's path.
	tt := &TextTest{Path: MustParse("a*"), Op: TextEq, Value: "v"}
	if tt.Size() != 3 {
		t.Errorf("Size: %d", tt.Size())
	}
	d := Desugar(&Qualifier{Base: MustParse("x"), Cond: tt})
	q := d.(*Qualifier).Cond.(*TextTest)
	if _, ok := q.Path.(*Union); !ok {
		t.Errorf("Desugar did not rewrite the path: %T", q.Path)
	}
	// Equality distinguishes op and value.
	a := &TextTest{Path: MustParse("b"), Op: TextEq, Value: "v"}
	b := &TextTest{Path: MustParse("b"), Op: TextNeq, Value: "v"}
	c := &TextTest{Path: MustParse("b"), Op: TextEq, Value: "w"}
	if Equal(a, b) || Equal(a, c) || !Equal(a, &TextTest{Path: MustParse("b"), Op: TextEq, Value: "v"}) {
		t.Error("Equal wrong on text tests")
	}
}

func TestAxisNodeHelpers(t *testing.T) {
	f := &Following{Test: "a"}
	p := &Preceding{Test: "_"}
	if f.String() != "following::a" || p.String() != "preceding::_" {
		t.Errorf("String: %s, %s", f, p)
	}
	if f.Size() != 1 || p.Size() != 1 {
		t.Error("Size wrong")
	}
	if !f.Matches("a") || f.Matches("b") || !p.Matches("anything") {
		t.Error("Matches wrong")
	}
	if !Equal(f, &Following{Test: "a"}) || Equal(f, &Following{Test: "b"}) || Equal(f, p) {
		t.Error("Equal wrong on axes")
	}
	expr := &Concat{Left: MustParse("x"), Right: f}
	if !HasExtensionAxes(expr) {
		t.Error("HasExtensionAxes should find the axis")
	}
	if HasExtensionAxes(MustParse("_*.a[b].c")) {
		t.Error("HasExtensionAxes false positive")
	}
	within := &Qualifier{Base: MustParse("x"), Cond: p}
	if !HasExtensionAxes(within) {
		t.Error("HasExtensionAxes should look into qualifiers")
	}
	st := Analyze(&Concat{Left: f, Right: p})
	if st.Steps != 2 {
		t.Errorf("Analyze steps: %d", st.Steps)
	}
}

func TestCanonicalDistinguishesExtensions(t *testing.T) {
	a := Canonical(&Following{Test: "a"})
	b := Canonical(&Preceding{Test: "a"})
	c := Canonical(&TextTest{Path: MustParse("a"), Op: TextEq, Value: "v"})
	if a == b || a == c || b == c {
		t.Errorf("canonical collisions: %q %q %q", a, b, c)
	}
}
