package rpeq

// Nullable reports whether the expression is guaranteed to select its
// context node itself, i.e. whether ε is in the expression's language.
// This is the static side of earliest query answering: a qualifier whose
// condition is nullable (e.g. [b*] or [c?]) is vacuously true at the very
// event that opens the candidate — the context node itself witnesses the
// condition — so base[cond] ≡ base and the condition sub-network can be
// eliminated at compile time instead of buffering the candidate to scope
// close.
//
// The analysis is a sound under-approximation for Qualifier nodes: a
// qualifier is reported nullable only when its base is nullable and its
// condition is statically vacuous; dynamically the condition could still
// hold at the context node, but that cannot be decided from the suffix
// language alone.
func Nullable(n Node) bool {
	switch n := n.(type) {
	case *Empty, *Star, *Optional:
		return true
	case *Label, *Plus, *Following, *Preceding, *TextTest, *AttrTest, *AttrStep, *CondNot:
		// AttrTest consumes no edges but is conditional: the context
		// witnesses it only when its attributes pass, which cannot be
		// decided statically, so it is not (guaranteed-)nullable.
		return false
	case *Concat:
		return Nullable(n.Left) && Nullable(n.Right)
	case *Union:
		return Nullable(n.Left) || Nullable(n.Right)
	case *Qualifier:
		return Nullable(n.Base) && Nullable(n.Cond)
	default:
		return false
	}
}
