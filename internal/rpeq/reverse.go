package rpeq

import "fmt"

// This file implements the rewriting of backward XPath steps into the
// forward child/descendant fragment, the result of "XPath: Looking Forward"
// (Olteanu, Meuss, Furche, Bry 2002) the paper's §II.2 appeals to:
// "Backward steps like ancestor and parent are expressible with rpeq".
//
// The core identity: for a path p and a node test t,
//
//	p/ancestor::t  ≡  ⋃ over decompositions p = q·r (r non-empty) of
//	                  (q restricted to label t)[r]
//
// — an ancestor of a p-match is a node on the match's path, i.e. the
// endpoint of a proper prefix q, provided the remainder r still matches
// below it. parent::t is the special case where r consumes exactly one
// child step.

// split is one decomposition p = prefix·suffix with a non-empty suffix.
// A nil prefix denotes the empty prefix ε (the path's context node).
type split struct {
	prefix Node
	suffix Node
}

// splits returns all decompositions of expr into prefix·suffix along tree
// edges. The suffix of each split consumes at least one edge.
func splits(expr Node) []split {
	switch n := expr.(type) {
	case *Empty:
		return nil
	case *Label:
		return []split{{nil, n}}
	case *Plus:
		// a+ = a · a+ anywhere along the chain: the cut node is itself
		// an a+ match (or the context, for the first step).
		return []split{
			{nil, n},
			{&Plus{Label: n.Label}, n},
		}
	case *Star:
		// a* contributes splits only through its a+ branch; the ε match
		// crosses no edge.
		return splits(&Plus{Label: n.Label})
	case *Optional:
		return splits(n.Expr)
	case *Concat:
		var out []split
		for _, s := range splits(n.Left) {
			out = append(out, split{s.prefix, concat(s.suffix, n.Right)})
		}
		for _, s := range splits(n.Right) {
			out = append(out, split{concat(n.Left, s.prefix), s.suffix})
		}
		// If the right side can match ε, a split of the left side alone
		// is already a split of the whole; that case is covered above by
		// r's own splits only when r crosses an edge, so add it when r
		// is nullable.
		if nullable(n.Right) {
			for _, s := range splits(n.Left) {
				out = append(out, split{s.prefix, s.suffix})
			}
		}
		if nullable(n.Left) {
			for _, s := range splits(n.Right) {
				out = append(out, split{s.prefix, s.suffix})
			}
		}
		return out
	case *Union:
		return append(splits(n.Left), splits(n.Right)...)
	case *Qualifier:
		// The qualifier constrains the endpoint, which lies in the
		// suffix of every split.
		var out []split
		for _, s := range splits(n.Base) {
			out = append(out, split{s.prefix, &Qualifier{Base: s.suffix, Cond: n.Cond}})
		}
		return out
	default:
		return nil
	}
}

// concat joins two path fragments, treating nil as ε.
func concat(a, b Node) Node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if _, ok := a.(*Empty); ok {
		return b
	}
	if _, ok := b.(*Empty); ok {
		return a
	}
	return &Concat{Left: a, Right: b}
}

// nullable reports whether expr can match the empty path.
func nullable(expr Node) bool {
	switch n := expr.(type) {
	case *Empty, *Star, *Optional:
		return true
	case *Concat:
		return nullable(n.Left) && nullable(n.Right)
	case *Union:
		return nullable(n.Left) || nullable(n.Right)
	case *Qualifier:
		return nullable(n.Base)
	default:
		return false
	}
}

// oneStep reports whether expr always consumes exactly one child edge (so
// its endpoint's parent is the expression's context).
func oneStep(expr Node) bool {
	switch n := expr.(type) {
	case *Label:
		return true
	case *Qualifier:
		return oneStep(n.Base)
	case *Union:
		return oneStep(n.Left) && oneStep(n.Right)
	default:
		return false
	}
}

// stripEmpty returns an expression matching the same paths as expr except
// the empty path, or nil when expr matches only the empty path. It is used
// to exclude the unlabeled context node (document root or predicate
// context) from wildcard endpoint tests: A·B \ ε = (A\ε)·B ∪ A·(B\ε).
func stripEmpty(expr Node) Node {
	if !nullable(expr) {
		return expr
	}
	switch n := expr.(type) {
	case *Empty:
		return nil
	case *Star:
		return &Plus{Label: n.Label}
	case *Optional:
		return stripEmpty(n.Expr)
	case *Concat:
		left := stripEmpty(n.Left)
		right := stripEmpty(n.Right)
		var a, b Node
		if left != nil {
			a = concat(left, n.Right)
		}
		if right != nil {
			b = concat(n.Left, right)
		}
		switch {
		case a == nil:
			return b
		case b == nil:
			return a
		default:
			return &Union{Left: a, Right: b}
		}
	case *Union:
		left := stripEmpty(n.Left)
		right := stripEmpty(n.Right)
		switch {
		case left == nil:
			return right
		case right == nil:
			return left
		default:
			return &Union{Left: left, Right: right}
		}
	case *Qualifier:
		base := stripEmpty(n.Base)
		if base == nil {
			return nil
		}
		return &Qualifier{Base: base, Cond: n.Cond}
	default:
		return expr
	}
}

// restrictLabel restricts the endpoint of expr to the node test t,
// returning nil when no endpoint can satisfy it. Even the wildcard test
// only matches elements, so an ε endpoint (the unlabeled context) is always
// excluded.
func restrictLabel(expr Node, t string) Node {
	if t == Wildcard {
		return stripEmpty(expr)
	}
	switch n := expr.(type) {
	case *Empty:
		return nil // the context node carries no label we can test here
	case *Label:
		switch {
		case n.Name == t:
			return n
		case n.Name == Wildcard:
			return &Label{Name: t}
		default:
			return nil
		}
	case *Plus:
		switch {
		case n.Label.Name == t:
			return n
		case n.Label.Name == Wildcard:
			// A wildcard chain ending in label t: _*.t.
			return concat(&Star{Label: n.Label}, &Label{Name: t})
		default:
			return nil
		}
	case *Star:
		// The ε endpoint is the context: not testable; restrict the
		// non-empty branch.
		return restrictLabel(&Plus{Label: n.Label}, t)
	case *Optional:
		return restrictLabel(n.Expr, t)
	case *Concat:
		right := restrictLabel(n.Right, t)
		if right == nil {
			if nullable(n.Right) {
				return restrictLabel(n.Left, t)
			}
			return nil
		}
		if nullable(n.Right) {
			if left := restrictLabel(n.Left, t); left != nil {
				return &Union{Left: concat(n.Left, right), Right: left}
			}
		}
		return concat(n.Left, right)
	case *Union:
		left := restrictLabel(n.Left, t)
		right := restrictLabel(n.Right, t)
		switch {
		case left == nil:
			return right
		case right == nil:
			return left
		default:
			return &Union{Left: left, Right: right}
		}
	case *Qualifier:
		base := restrictLabel(n.Base, t)
		if base == nil {
			return nil
		}
		return &Qualifier{Base: base, Cond: n.Cond}
	default:
		return nil
	}
}

// RewriteParent rewrites expr/parent::t into the forward fragment.
// relative marks a path evaluated from a predicate context rather than the
// document root; a reverse step that would reach that context cannot be
// expressed and is an error.
func RewriteParent(expr Node, t string, relative bool) (Node, error) {
	return rewriteReverse(expr, t, false, relative)
}

// RewriteAncestor rewrites expr/ancestor::t (or ancestor-or-self with
// orSelf) into the forward fragment.
func RewriteAncestor(expr Node, t string, orSelf, relative bool) (Node, error) {
	out, err := rewriteReverse(expr, t, true, relative)
	if err != nil {
		return nil, err
	}
	if orSelf {
		if self := restrictLabel(expr, t); self != nil {
			if out != nil {
				out = &Union{Left: out, Right: self}
			} else {
				out = self
			}
		}
	}
	if out == nil {
		return nil, fmt.Errorf("rpeq: %s::%s after %s selects nothing expressible in the forward fragment", axisName(true, orSelf), t, expr)
	}
	return out, nil
}

func axisName(ancestor, orSelf bool) string {
	switch {
	case !ancestor:
		return "parent"
	case orSelf:
		return "ancestor-or-self"
	default:
		return "ancestor"
	}
}

// spineFilterToQualifier rewrites attribute filters on the path spine
// (base.{attrs}) into the equivalent qualifier form (base[{attrs}]): an
// AttrTest selects its context iff its predicate passes, so as a qualifier
// condition it is non-empty under exactly the same circumstance. The
// split-based reverse rewriting decomposes paths along tree edges and
// carries qualifier conditions opaquely, so this normalization lets
// attribute-filtered paths take backward steps without special cases.
func spineFilterToQualifier(n Node) Node {
	switch n := n.(type) {
	case *Concat:
		l := spineFilterToQualifier(n.Left)
		r := spineFilterToQualifier(n.Right)
		if at, ok := r.(*AttrTest); ok {
			return &Qualifier{Base: l, Cond: at}
		}
		return &Concat{Left: l, Right: r}
	case *Union:
		return &Union{Left: spineFilterToQualifier(n.Left), Right: spineFilterToQualifier(n.Right)}
	case *Optional:
		return &Optional{Expr: spineFilterToQualifier(n.Expr)}
	case *Qualifier:
		return &Qualifier{Base: spineFilterToQualifier(n.Base), Cond: n.Cond}
	default:
		return n
	}
}

// hasAttrStep reports whether an attribute step occurs anywhere in the
// path spine; backward steps after one are not supported (an attribute
// node's parent is outside the forward fragment's reach).
func hasAttrStep(n Node) bool {
	switch n := n.(type) {
	case *AttrStep:
		return true
	case *Concat:
		return hasAttrStep(n.Left) || hasAttrStep(n.Right)
	case *Union:
		return hasAttrStep(n.Left) || hasAttrStep(n.Right)
	case *Optional:
		return hasAttrStep(n.Expr)
	case *Qualifier:
		return hasAttrStep(n.Base)
	default:
		return false
	}
}

func rewriteReverse(expr Node, t string, ancestor, relative bool) (Node, error) {
	if hasAttrStep(expr) {
		return nil, fmt.Errorf("rpeq: reverse step %s::%s after an attribute step is not supported", axisName(ancestor, false), t)
	}
	expr = spineFilterToQualifier(expr)
	var out Node
	for _, s := range splits(expr) {
		if !ancestor && !oneStep(s.suffix) {
			// parent:: needs a suffix of exactly one edge; suffixes
			// spanning more belong to ancestor::. Closure suffixes (a+)
			// contribute their single-step decomposition via the
			// (a+, a+) split only for ancestor; for parent the chain
			// tail a+ is more than one edge unless it is the last one:
			// approximate by also accepting a Plus suffix as its
			// one-step tail.
			if p, ok := s.suffix.(*Plus); ok {
				s = split{concat(s.prefix, optionalPlus(p)), &Label{Name: p.Label.Name}}
			} else {
				continue
			}
		}
		if s.prefix == nil {
			if relative {
				return nil, fmt.Errorf("rpeq: reverse step %s::%s reaches the predicate context; not expressible inside a qualifier", axisName(ancestor, false), t)
			}
			// The ε prefix is the document node, which no label test
			// matches; drop it.
			continue
		}
		if relative && nullable(s.prefix) {
			// The prefix can match ε, so the selected ancestor could be
			// the predicate's context node itself — inexpressible there.
			return nil, fmt.Errorf("rpeq: reverse step %s::%s may reach the predicate context; not expressible inside a qualifier", axisName(ancestor, false), t)
		}
		q := restrictLabel(s.prefix, t)
		if q == nil {
			continue
		}
		cand := &Qualifier{Base: q, Cond: s.suffix}
		if out == nil {
			out = cand
		} else {
			out = &Union{Left: out, Right: cand}
		}
	}
	if out == nil && !ancestor {
		return nil, fmt.Errorf("rpeq: parent::%s after %s selects nothing expressible in the forward fragment", t, expr)
	}
	return out, nil
}

// optionalPlus returns a* for a+, used when peeling one step off a chain:
// a+ = a*·a.
func optionalPlus(p *Plus) Node {
	return &Star{Label: p.Label}
}
