package rpeq

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	// Canonical renderings of parsed expressions.
	tests := []struct{ in, want string }{
		{"a", "a"},
		{"_", "_"},
		{"a.b", "(a.b)"},
		{"a.b.c", "((a.b).c)"},
		{"a|b", "(a|b)"},
		{"a.b|c", "((a.b)|c)"},
		{"a.(b|c)", "(a.(b|c))"},
		{"a+", "a+"},
		{"_*", "_*"},
		{"a?", "(a)?"},
		{"(a.b)?", "((a.b))?"},
		{"a[b]", "(a)[b]"},
		{"a[b][c]", "((a)[b])[c]"},
		{"a[b.c]", "(a)[(b.c)]"},
		{"_*.a[b].c", "((_*.(a)[b]).c)"},
		{"%e", "ε"},
		{"ε", "ε"},
		{"(a|%e)", "(a|ε)"},
		{"a [ b ] . c", "((a)[b].c)"},
	}
	for _, tc := range tests {
		n, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := Canonical(n); got != tc.want {
			t.Errorf("Parse(%q): got %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", ".", "a.", ".a", "a..b", "a|", "|a", "(a", "a)", "a[b",
		"a]", "(a.b)+", "(a|b)*", "a++", "a+*", "+a", "*", "?",
		"a$b", "a{2}", "%x",
	}
	for _, src := range bad {
		if n, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) = %v, want error", src, n)
		}
	}
}

func TestParseReparse(t *testing.T) {
	// String output reparses to an equal tree.
	exprs := []string{
		"a", "a.b.c", "(a|b).c", "a+.c+", "_*.a[b].c", "a?", "a[b[c]].d",
		"(a|%e)", "_*._",
	}
	for _, src := range exprs {
		n1 := MustParse(src)
		n2, err := Parse(n1.String())
		if err != nil {
			t.Errorf("reparse of %q → %q: %v", src, n1.String(), err)
			continue
		}
		if !Equal(n1, n2) {
			t.Errorf("%q: reparse changed tree: %s vs %s", src, Canonical(n1), Canonical(n2))
		}
	}
}

func TestDesugar(t *testing.T) {
	// label* ≡ (label+ | ε), rpeq? ≡ (rpeq | ε).
	star := Desugar(MustParse("a*"))
	if Canonical(star) != "(a+|ε)" {
		t.Errorf("a*: got %s", Canonical(star))
	}
	opt := Desugar(MustParse("(a.b)?"))
	if Canonical(opt) != "((a.b)|ε)" {
		t.Errorf("(a.b)?: got %s", Canonical(opt))
	}
	// Desugared trees contain no Star or Optional.
	var check func(n Node) bool
	check = func(n Node) bool {
		switch n := n.(type) {
		case *Star, *Optional:
			return false
		case *Concat:
			return check(n.Left) && check(n.Right)
		case *Union:
			return check(n.Left) && check(n.Right)
		case *Qualifier:
			return check(n.Base) && check(n.Cond)
		}
		return true
	}
	if !check(Desugar(MustParse("_*.a[b?].c*"))) {
		t.Error("desugar left derived operators")
	}
}

func TestSizeAndAnalyze(t *testing.T) {
	n := MustParse("_*.a[b].c")
	// _* (2: star+label) . a (1) [ b (1) ] . c (1) + 2 concats + 1 qualifier = 8
	if n.Size() != 8 {
		t.Errorf("Size: got %d, want 8", n.Size())
	}
	s := Analyze(n)
	if s.Steps != 4 || s.Closures != 1 || s.Qualifiers != 1 || s.Unions != 0 {
		t.Errorf("Analyze: got %+v", s)
	}
	u := Analyze(MustParse("(a|b).c+"))
	if u.Unions != 1 || u.Closures != 1 || u.Steps != 3 {
		t.Errorf("Analyze union: got %+v", u)
	}
}

func TestLabelMatches(t *testing.T) {
	if !(&Label{Name: "_"}).Matches("anything") {
		t.Error("wildcard must match")
	}
	if (&Label{Name: "a"}).Matches("b") {
		t.Error("a must not match b")
	}
	if !(&Label{Name: "a"}).Matches("a") {
		t.Error("a must match a")
	}
}

func TestSizeLinearInLength(t *testing.T) {
	// Lemma V.1 precondition: parsing yields trees linear in input length.
	expr := "a"
	for i := 0; i < 9; i++ {
		expr = "(" + expr + "|" + expr + ")"
		if len(expr) > 4000 {
			break
		}
	}
	n, err := Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	if n.Size() > len(expr) {
		t.Fatalf("size %d exceeds source length %d", n.Size(), len(expr))
	}
}

func TestXPathTranslation(t *testing.T) {
	tests := []struct{ in, want string }{
		{"/a/b", "(a.b)"},
		{"a/b", "(a.b)"},
		{"//a", "(_*.a)"},
		{"/a//b", "(a.(_*.b))"},
		{"//*", "(_*._)"},
		{"/a[b]/c", "((a)[b].c)"},
		{"//a[b//c]", "((_*.a))[(b.(_*.c))]"},
		{"/a | //b", "(a|(_*.b))"},
		{"/a[b][c]", "((a)[b])[c]"},
	}
	for _, tc := range tests {
		n, err := ParseXPath(tc.in)
		if err != nil {
			t.Errorf("ParseXPath(%q): %v", tc.in, err)
			continue
		}
		if got := Canonical(n); got != tc.want {
			t.Errorf("ParseXPath(%q): got %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestXPathErrors(t *testing.T) {
	for _, bad := range []string{"", "/", "//", "/a[", "/a]", "/a[b", "a//", "/a/", "a[]"} {
		if _, err := ParseXPath(bad); err == nil {
			t.Errorf("ParseXPath(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestEqual(t *testing.T) {
	pairs := [][2]string{{"a.b", "a.b"}, {"(a|b)", "(a|b)"}, {"a+", "a+"}}
	for _, p := range pairs {
		if !Equal(MustParse(p[0]), MustParse(p[1])) {
			t.Errorf("Equal(%q,%q) = false", p[0], p[1])
		}
	}
	diff := [][2]string{{"a", "b"}, {"a.b", "b.a"}, {"a+", "a*"}, {"a[b]", "a[c]"}, {"a|b", "b|a"}}
	for _, p := range diff {
		if Equal(MustParse(p[0]), MustParse(p[1])) {
			t.Errorf("Equal(%q,%q) = true", p[0], p[1])
		}
	}
}

func TestStringHasNoSpaces(t *testing.T) {
	n := MustParse(" a . b [ c ] ")
	if strings.ContainsAny(n.String(), " \t") {
		t.Errorf("String contains whitespace: %q", n.String())
	}
}
