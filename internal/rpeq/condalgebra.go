package rpeq

import "fmt"

// The condition algebra: qualifier conditions combine path existence
// tests, text tests and attribute tests with 'and', 'or' and 'not(...)'.
// Both front ends (the rpeq surface syntax and the XPath fragment) parse
// conditions into the small intermediate form below and share one lowering
// into the core tree:
//
//   - or lowers to path union — a qualifier holds iff its condition
//     selects a non-empty set, so disjunction is union — except that
//     attribute-pure disjuncts merge into a single attribute formula;
//   - and lowers to successive qualifiers on the base (base[c1][c2]...),
//     with all attribute-pure conjuncts merged into one spine filter
//     base.{...} that decides at the candidate's start message;
//   - not is pushed to the leaves (De Morgan) and lowers to CondNot;
//     attribute-pure negations fold into the attribute formula as AttrNot.
//
// The lowering is where attribute predicates earn their earliest
// evaluation: item[@status="closed" and not(@resolution)]/summary becomes
// items.item.{@status="closed" and not(@resolution)}.summary — a pure
// filter chain with no qualifier machinery, decided at each item's start.

// condExpr is the parsed form of one qualifier condition.
type condExpr interface{ condNode() }

// condLeaf is one condition term: a path, optionally compared to a string
// constant.
type condLeaf struct {
	path   Node
	op     TextOp
	value  string
	hasCmp bool
}

// condAnd is the conjunction of two conditions.
type condAnd struct{ left, right condExpr }

// condOr is the disjunction of two conditions.
type condOr struct{ left, right condExpr }

// condNeg is the negation of a condition.
type condNeg struct{ expr condExpr }

func (condLeaf) condNode() {}
func (condAnd) condNode()  {}
func (condOr) condNode()   {}
func (condNeg) condNode()  {}

// pushNot normalizes the condition so negation wraps leaves only,
// applying De Morgan's laws and eliminating double negation.
func pushNot(e condExpr, neg bool) condExpr {
	switch e := e.(type) {
	case condNeg:
		return pushNot(e.expr, !neg)
	case condAnd:
		l, r := pushNot(e.left, neg), pushNot(e.right, neg)
		if neg {
			return condOr{left: l, right: r}
		}
		return condAnd{left: l, right: r}
	case condOr:
		l, r := pushNot(e.left, neg), pushNot(e.right, neg)
		if neg {
			return condAnd{left: l, right: r}
		}
		return condOr{left: l, right: r}
	default:
		if neg {
			return condNeg{expr: e}
		}
		return e
	}
}

// splitAnd flattens the top-level conjunction into its terms.
func splitAnd(e condExpr) []condExpr {
	if a, ok := e.(condAnd); ok {
		return append(splitAnd(a.left), splitAnd(a.right)...)
	}
	return []condExpr{e}
}

// lowerPredicate folds one parsed predicate onto the base expression.
// Attribute-pure conjuncts merge into a single spine filter applied
// first (it is the cheapest: decided at the candidate's start message);
// the remaining terms become successive qualifiers.
func lowerPredicate(base Node, e condExpr) (Node, error) {
	var pred AttrExpr
	var quals []Node
	for _, term := range splitAnd(pushNot(e, false)) {
		n, err := lowerCond(term)
		if err != nil {
			return nil, err
		}
		if at, ok := n.(*AttrTest); ok {
			if pred == nil {
				pred = at.Pred
			} else {
				pred = &AttrAnd{Left: pred, Right: at.Pred}
			}
			continue
		}
		quals = append(quals, n)
	}
	out := base
	if pred != nil {
		out = concat(out, &AttrTest{Pred: pred})
	}
	for _, c := range quals {
		out = &Qualifier{Base: out, Cond: c}
	}
	return out, nil
}

// lowerCond lowers one normalized condition to a core-tree condition node.
func lowerCond(e condExpr) (Node, error) {
	switch e := e.(type) {
	case condLeaf:
		return lowerLeaf(e)
	case condNeg:
		leaf, ok := e.expr.(condLeaf)
		if !ok {
			// pushNot leaves negation on leaves only.
			return nil, fmt.Errorf("rpeq: internal error: negation not normalized")
		}
		n, err := lowerLeaf(leaf)
		if err != nil {
			return nil, err
		}
		if at, ok := n.(*AttrTest); ok {
			return &AttrTest{Pred: &AttrNot{Expr: at.Pred}}, nil
		}
		if containsQualifier(n) {
			return nil, fmt.Errorf("rpeq: cannot negate a condition containing a qualifier: not(%s)", n)
		}
		return &CondNot{Expr: n}, nil
	case condAnd:
		l, err := lowerCond(e.left)
		if err != nil {
			return nil, err
		}
		r, err := lowerCond(e.right)
		if err != nil {
			return nil, err
		}
		if la, ok := l.(*AttrTest); ok {
			if ra, ok := r.(*AttrTest); ok {
				return &AttrTest{Pred: &AttrAnd{Left: la.Pred, Right: ra.Pred}}, nil
			}
		}
		// Conjunction as nested qualifiers on the context node itself:
		// ε[l][r] selects the context iff both conditions hold at it.
		return &Qualifier{Base: &Qualifier{Base: &Empty{}, Cond: l}, Cond: r}, nil
	case condOr:
		l, err := lowerCond(e.left)
		if err != nil {
			return nil, err
		}
		r, err := lowerCond(e.right)
		if err != nil {
			return nil, err
		}
		if la, ok := l.(*AttrTest); ok {
			if ra, ok := r.(*AttrTest); ok {
				return &AttrTest{Pred: &AttrOr{Left: la.Pred, Right: ra.Pred}}, nil
			}
		}
		return &Union{Left: l, Right: r}, nil
	default:
		return nil, fmt.Errorf("rpeq: internal error: unknown condition form %T", e)
	}
}

// lowerLeaf lowers one condition term. Attribute-tailed paths turn their
// @name tail into an attribute filter on the element the prefix selects
// (b/@id tests b children for the attribute); a bare @name tests the
// context node itself. A comparison operator selects between an attribute
// comparison and a text test on the path's string value.
func lowerLeaf(t condLeaf) (Node, error) {
	if prefix, name, ok := splitAttrTail(t.path); ok {
		leaf := &AttrLeaf{Name: name, Op: AttrExists}
		if t.hasCmp {
			leaf.Op = attrOpFor(t.op)
			leaf.Value = t.value
		}
		return concat(prefix, &AttrTest{Pred: leaf}), nil
	}
	if t.hasCmp {
		return &TextTest{Path: t.path, Op: t.op, Value: t.value}, nil
	}
	return t.path, nil
}

// splitAttrTail splits a condition path ending in an attribute step into
// its element prefix (nil when the step stands alone) and the attribute
// name. Paths carrying an attribute step anywhere else are left alone and
// rejected by the central validation.
func splitAttrTail(n Node) (Node, string, bool) {
	switch n := n.(type) {
	case *AttrStep:
		return nil, n.Name, true
	case *Concat:
		if s, ok := n.Right.(*AttrStep); ok {
			return n.Left, s.Name, true
		}
	}
	return nil, "", false
}

// attrOpFor maps a surface comparison operator onto attributes.
func attrOpFor(op TextOp) AttrOp {
	switch op {
	case TextNeq:
		return AttrNeq
	case TextContains:
		return AttrContains
	default:
		return AttrEq
	}
}

// containsQualifier reports whether the expression contains a qualifier
// construct. Negation distributes over every other construct in the
// scope-bound evaluation model, but not over qualifiers, so not(...) over
// such a condition is rejected at parse time.
func containsQualifier(n Node) bool {
	switch n := n.(type) {
	case *Qualifier:
		return true
	case *Concat:
		return containsQualifier(n.Left) || containsQualifier(n.Right)
	case *Union:
		return containsQualifier(n.Left) || containsQualifier(n.Right)
	case *Optional:
		return containsQualifier(n.Expr)
	case *TextTest:
		return containsQualifier(n.Path)
	case *CondNot:
		return containsQualifier(n.Expr)
	default:
		return false
	}
}

// validateAttrSteps enforces the placement rule for attribute steps: an
// @name step selects an attribute node, which is a leaf without an element
// identity, so it may appear only as the final step of the whole query.
// (Attribute steps inside conditions are lowered to attribute tests before
// this check; any that remain sit in an unsupported position.)
func validateAttrSteps(n Node) error {
	return checkAttrSteps(n, true)
}

func checkAttrSteps(n Node, tail bool) error {
	switch n := n.(type) {
	case *AttrStep:
		if !tail {
			return fmt.Errorf("rpeq: attribute step @%s must be the final step of the query", n.Name)
		}
		return nil
	case *Concat:
		if err := checkAttrSteps(n.Left, false); err != nil {
			return err
		}
		return checkAttrSteps(n.Right, tail)
	case *Union:
		if err := checkAttrSteps(n.Left, false); err != nil {
			return err
		}
		return checkAttrSteps(n.Right, false)
	case *Optional:
		return checkAttrSteps(n.Expr, false)
	case *Qualifier:
		if err := checkAttrSteps(n.Base, false); err != nil {
			return err
		}
		return checkAttrSteps(n.Cond, false)
	case *CondNot:
		return checkAttrSteps(n.Expr, false)
	case *TextTest:
		return checkAttrSteps(n.Path, false)
	default:
		return nil
	}
}
