package rpeq

import "testing"

func TestParseWithLimit(t *testing.T) {
	cases := []struct {
		src   string
		expr  string // canonical form of the expression part
		limit int64
	}{
		{"a.b", "a.b", 0},
		{"a.b limit 3", "a.b", 3},
		{"a.b first", "a.b", 1},
		{"_*.Topic.Title limit 1", "_*.Topic.Title", 1},
		{"a[b].c limit 42", "a[b].c", 42},
		// `limit` and `first` stay ordinary labels everywhere except the
		// trailing clause position.
		{"limit.first", "limit.first", 0},
		{"a.limit", "a.limit", 0},
		{"first[limit]", "first[limit]", 0},
		{"a.first limit 2", "a.first", 2},
	}
	for _, tc := range cases {
		n, limit, err := ParseWithLimit(tc.src)
		if err != nil {
			t.Errorf("ParseWithLimit(%q): %v", tc.src, err)
			continue
		}
		if limit != tc.limit {
			t.Errorf("ParseWithLimit(%q) limit = %d, want %d", tc.src, limit, tc.limit)
		}
		want := MustParse(tc.expr)
		if Canonical(n) != Canonical(want) {
			t.Errorf("ParseWithLimit(%q) expr = %s, want %s", tc.src, Canonical(n), Canonical(want))
		}
	}
}

func TestParseWithLimitErrors(t *testing.T) {
	for _, src := range []string{
		"a limit 0",   // a limit must select at least one answer
		"a limit",     // missing count
		"a limit b",   // count must be a number
		"a limit 2 3", // trailing junk
		"a first 2",   // first takes no argument
		"a first limit 2",
		"limit 3", // no expression
	} {
		if _, _, err := ParseWithLimit(src); err == nil {
			t.Errorf("ParseWithLimit(%q) succeeded, want error", src)
		}
	}
}

// TestPlainParseRejectsLimitClause pins backwards compatibility: the plain
// parser's grammar is unchanged, so an embedded limit clause stays a syntax
// error for callers that never opted into limits.
func TestPlainParseRejectsLimitClause(t *testing.T) {
	for _, src := range []string{"a limit 3", "a.b first"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseXPathWithLimit(t *testing.T) {
	cases := []struct {
		src   string
		plain string // equivalent XPath without the clause
		limit int64
	}{
		{"//a/b", "//a/b", 0},
		{"//a/b limit 5", "//a/b", 5},
		{"//a/b first", "//a/b", 1},
		{"//Topic[editor]/Title limit 1", "//Topic[editor]/Title", 1},
	}
	for _, tc := range cases {
		n, limit, err := ParseXPathWithLimit(tc.src)
		if err != nil {
			t.Errorf("ParseXPathWithLimit(%q): %v", tc.src, err)
			continue
		}
		if limit != tc.limit {
			t.Errorf("ParseXPathWithLimit(%q) limit = %d, want %d", tc.src, limit, tc.limit)
		}
		want, err := ParseXPath(tc.plain)
		if err != nil {
			t.Fatalf("ParseXPath(%q): %v", tc.plain, err)
		}
		if Canonical(n) != Canonical(want) {
			t.Errorf("ParseXPathWithLimit(%q) expr = %s, want %s", tc.src, Canonical(n), Canonical(want))
		}
	}
}

func TestParseXPathWithLimitErrors(t *testing.T) {
	for _, src := range []string{
		"//a limit 0",
		"//a limit",
		"//a limit x",
		"//a first 1",
		"//a limit 99999999999999999999", // overflow
	} {
		if _, _, err := ParseXPathWithLimit(src); err == nil {
			t.Errorf("ParseXPathWithLimit(%q) succeeded, want error", src)
		}
	}
}

func TestNullableExported(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"a", false},
		{"a*", true},
		{"a?", true},
		{"a+", false},
		{"a.b", false},
		{"a*.b*", true},
		{"a*.b", false},
		{"a|b", false},
		{"a|b*", true},
		{"_*", true},
		{"a*[b]", false}, // qualifier condition b is not nullable
		{"a*[b*]", true}, // both base and condition nullable
		{"a?[b?]", true},
	}
	for _, tc := range cases {
		n, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		if got := Nullable(n); got != tc.want {
			t.Errorf("Nullable(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
	// Following/Preceding/TextTest are structurally non-empty by definition.
	if Nullable(&Following{Test: "a"}) || Nullable(&Preceding{Test: "a"}) {
		t.Error("Following/Preceding must not be nullable")
	}
	if Nullable(&TextTest{Path: MustParse("a"), Op: TextEq, Value: "v"}) {
		t.Error("TextTest must not be nullable")
	}
	if !Nullable(&Empty{}) {
		t.Error("Empty must be nullable")
	}
}
