package rpeq

import (
	"fmt"
	"strings"
)

// This file implements the attribute surface of the query language:
// attribute steps (@name), attribute tests ([@a], [@a="v"], ...) and the
// negated qualifier condition not(...). Attributes are an extension beyond
// the paper's published fragment — which covers "no other qualifiers than
// structural qualifiers" (§II.2) — and, like text tests, a step of the
// XPath migration the paper names as future work (§VII, §IX). Their
// evaluation is cheaper than any structural construct: a start-element
// message carries the complete attribute list, so every attribute test is
// decided at the candidate's start message with constant memory.

// AttrOp is a comparison applied to one attribute of a node.
type AttrOp uint8

const (
	// AttrExists holds when the attribute is present, whatever its value.
	AttrExists AttrOp = iota
	// AttrEq holds when the attribute is present with exactly the value.
	AttrEq
	// AttrNeq holds when the attribute is present with a different value.
	// This is XPath's @a != "v" semantics: absence makes the test false
	// (absence is expressed as not(@a)).
	AttrNeq
	// AttrContains holds when the attribute is present and its value
	// contains the constant as a substring.
	AttrContains
)

// String renders the operator in the surface syntax.
func (op AttrOp) String() string {
	switch op {
	case AttrExists:
		return ""
	case AttrEq:
		return "="
	case AttrNeq:
		return "!="
	case AttrContains:
		return "*="
	default:
		return "?"
	}
}

// AttrExpr is a boolean formula over one node's attributes. It is
// deliberately not a path Node: the formula is decided in full at the
// node's start event, where the attribute list is complete, so it compiles
// to a single constant-memory transducer instead of a sub-network.
type AttrExpr interface {
	fmt.Stringer
	// Eval decides the formula against one node's attributes; get reports
	// the value of a named attribute and whether it is present.
	Eval(get func(name string) (string, bool)) bool
	attrExpr()
}

// AttrLeaf is one attribute comparison: @Name Op "Value".
type AttrLeaf struct {
	Name  string
	Op    AttrOp
	Value string
}

// AttrAnd is the conjunction of two attribute formulas.
type AttrAnd struct{ Left, Right AttrExpr }

// AttrOr is the disjunction of two attribute formulas.
type AttrOr struct{ Left, Right AttrExpr }

// AttrNot is the negation of an attribute formula.
type AttrNot struct{ Expr AttrExpr }

func (*AttrLeaf) attrExpr() {}
func (*AttrAnd) attrExpr()  {}
func (*AttrOr) attrExpr()   {}
func (*AttrNot) attrExpr()  {}

// Eval implements AttrExpr.
func (l *AttrLeaf) Eval(get func(string) (string, bool)) bool {
	v, ok := get(l.Name)
	if !ok {
		return false
	}
	switch l.Op {
	case AttrExists:
		return true
	case AttrEq:
		return v == l.Value
	case AttrNeq:
		return v != l.Value
	case AttrContains:
		return strings.Contains(v, l.Value)
	default:
		return false
	}
}

// Eval implements AttrExpr.
func (a *AttrAnd) Eval(get func(string) (string, bool)) bool {
	return a.Left.Eval(get) && a.Right.Eval(get)
}

// Eval implements AttrExpr.
func (o *AttrOr) Eval(get func(string) (string, bool)) bool {
	return o.Left.Eval(get) || o.Right.Eval(get)
}

// Eval implements AttrExpr.
func (n *AttrNot) Eval(get func(string) (string, bool)) bool {
	return !n.Expr.Eval(get)
}

func (l *AttrLeaf) String() string {
	if l.Op == AttrExists {
		return "@" + l.Name
	}
	return "@" + l.Name + l.Op.String() + quoteString(l.Value)
}

func (a *AttrAnd) String() string {
	return attrOperand(a.Left) + " and " + attrOperand(a.Right)
}

func (o *AttrOr) String() string {
	return o.Left.String() + " or " + o.Right.String()
}

func (n *AttrNot) String() string {
	return "not(" + n.Expr.String() + ")"
}

// attrOperand parenthesizes a disjunction appearing under a conjunction.
func attrOperand(e AttrExpr) string {
	if _, ok := e.(*AttrOr); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// attrExprSize counts the formula's constructs, for Stats.
func attrExprSize(e AttrExpr) int {
	switch e := e.(type) {
	case *AttrAnd:
		return 1 + attrExprSize(e.Left) + attrExprSize(e.Right)
	case *AttrOr:
		return 1 + attrExprSize(e.Left) + attrExprSize(e.Right)
	case *AttrNot:
		return 1 + attrExprSize(e.Expr)
	default:
		return 1
	}
}

// attrExprEqual reports structural equality of two attribute formulas.
func attrExprEqual(a, b AttrExpr) bool {
	switch a := a.(type) {
	case *AttrLeaf:
		bl, ok := b.(*AttrLeaf)
		return ok && a.Name == bl.Name && a.Op == bl.Op && a.Value == bl.Value
	case *AttrAnd:
		ba, ok := b.(*AttrAnd)
		return ok && attrExprEqual(a.Left, ba.Left) && attrExprEqual(a.Right, ba.Right)
	case *AttrOr:
		bo, ok := b.(*AttrOr)
		return ok && attrExprEqual(a.Left, bo.Left) && attrExprEqual(a.Right, bo.Right)
	case *AttrNot:
		bn, ok := b.(*AttrNot)
		return ok && attrExprEqual(a.Expr, bn.Expr)
	default:
		return false
	}
}

// AttrTest is a path self-filter: it selects its context node iff the
// node's attributes satisfy Pred, and consumes no tree edges. The front
// ends produce it from attribute predicates — item[@status="closed"]
// lowers to a spine filter on the item step — and from attribute-tailed
// condition paths (b/@id selects b children that carry the attribute). It
// has no surface syntax of its own; String renders the equivalent
// ε-qualifier %e[pred], which parses back to a bare AttrTest.
type AttrTest struct{ Pred AttrExpr }

// AttrStep is the attribute axis step @name: it selects the named
// attribute node of each context node. Attribute nodes are leaves without
// an element identity of their own, so an AttrStep is valid only as the
// final step of a query (validated at parse time); engines serialize the
// selected attribute as a synthetic element around its value.
type AttrStep struct{ Name string }

// CondNot is the negated qualifier condition not(expr): it holds at a
// candidate node iff expr selects nothing within the candidate's scope.
// Only qualifier-free expressions may be negated (enforced when predicates
// are lowered); attribute-pure negations never reach this node — they fold
// into the attribute formula itself as AttrNot.
type CondNot struct{ Expr Node }

func (*AttrTest) node() {}
func (*AttrStep) node() {}
func (*CondNot) node()  {}

func (t *AttrTest) Size() int { return attrExprSize(t.Pred) }
func (*AttrStep) Size() int   { return 1 }
func (c *CondNot) Size() int  { return 1 + c.Expr.Size() }

func (t *AttrTest) String() string { return "%e[" + t.Pred.String() + "]" }
func (s *AttrStep) String() string { return "@" + s.Name }
func (c *CondNot) String() string  { return "not(" + c.Expr.String() + ")" }

// HasAttrTest reports whether the expression tests or selects attributes
// anywhere; evaluations must then keep attribute lists in the stream.
func HasAttrTest(n Node) bool {
	switch n := n.(type) {
	case *AttrTest, *AttrStep:
		return true
	case *Concat:
		return HasAttrTest(n.Left) || HasAttrTest(n.Right)
	case *Union:
		return HasAttrTest(n.Left) || HasAttrTest(n.Right)
	case *Optional:
		return HasAttrTest(n.Expr)
	case *Qualifier:
		return HasAttrTest(n.Base) || HasAttrTest(n.Cond)
	case *CondNot:
		return HasAttrTest(n.Expr)
	case *TextTest:
		return HasAttrTest(n.Path)
	default:
		return false
	}
}
