package rpeq

import (
	"testing"
)

// The reverse-axis rewriting is validated two ways: structurally here, and
// semantically against a direct DOM implementation of the axes in
// internal/baseline's reverse_axis_test.go (which can evaluate both sides).

func mustXPath(t *testing.T, src string) Node {
	t.Helper()
	n, err := ParseXPath(src)
	if err != nil {
		t.Fatalf("ParseXPath(%q): %v", src, err)
	}
	return n
}

func TestParentRewriteShapes(t *testing.T) {
	tests := []struct{ in, want string }{
		// parents of b-children of a-children: the a nodes having a b child.
		{"/a/b/parent::*", "(a)[b]"},
		{"/a/b/..", "(a)[b]"},
		// label test on the parent must match the prefix endpoint.
		{"/a/b/parent::a", "(a)[b]"},
		// wildcard prefix endpoint specializes to the test.
		{"/*/b/parent::c", "(c)[b]"},
		// parents of descendant a nodes: any b node with an a child.
		{"//a/parent::b", "(_*.b)[a]"},
	}
	for _, tc := range tests {
		got := mustXPath(t, tc.in)
		want := MustParse(tc.want)
		if !Equal(got, want) {
			t.Errorf("%s:\n got  %s\n want %s", tc.in, Canonical(got), Canonical(want))
		}
	}
}

func TestParentRewriteErrors(t *testing.T) {
	bad := []string{
		"/..",             // escapes the root
		"/parent::a",      // likewise
		"/ancestor::a",    // likewise
		"/a/b/parent::c",  // label c can never equal prefix endpoint b... (a≠c)
		"/a[b/../c]",      // reverse step reaches the predicate context
		"/a[ancestor::b]", // likewise, at predicate start
		"/a/self::b",      // self test conflicts with the step label
	}
	for _, src := range bad {
		if n, err := ParseXPath(src); err == nil {
			t.Errorf("ParseXPath(%q) = %s, want error", src, n)
		}
	}
}

func TestSelfAndDescendantAxes(t *testing.T) {
	tests := []struct{ in, want string }{
		{"/a/self::a", "a"},
		{"/a/self::*", "a"},
		{"/a/.", "a"},
		{"/descendant::a", "_*.a"},
		{"/a/descendant::b", "a.(_*.b)"},
		{"/a/descendant-or-self::*", "a._*"},
		{"/a/descendant-or-self::a", "(a.(_*.a)|a)"},
	}
	for _, tc := range tests {
		got := mustXPath(t, tc.in)
		want := MustParse(tc.want)
		if !Equal(got, want) {
			t.Errorf("%s:\n got  %s\n want %s", tc.in, Canonical(got), Canonical(want))
		}
	}
}

func TestAncestorRewriteSelectsPrefixes(t *testing.T) {
	// ancestors of /a/b/c nodes: the a's (with b.c below) and the b's
	// (with c below); order of union branches follows split order.
	got := mustXPath(t, "/a/b/c/ancestor::*")
	want := MustParse("(a)[b.c] | (a.b)[c]")
	if !Equal(got, want) {
		t.Fatalf("got %s, want %s", Canonical(got), Canonical(want))
	}
	// With a label test only matching one prefix endpoint.
	got = mustXPath(t, "/a/b/c/ancestor::b")
	want = MustParse("(a.b)[c]")
	if !Equal(got, want) {
		t.Fatalf("got %s, want %s", Canonical(got), Canonical(want))
	}
}

func TestAncestorOrSelf(t *testing.T) {
	got := mustXPath(t, "/a/b/ancestor-or-self::b")
	// ancestor part: no b-labeled prefix endpoint... the a endpoint is not
	// b, so only the self part (a.b) remains.
	want := MustParse("a.b")
	if !Equal(got, want) {
		t.Fatalf("got %s, want %s", Canonical(got), Canonical(want))
	}
}

func TestSplitsRespectQualifiers(t *testing.T) {
	// parents of b[q]-children: the qualifier must travel with the child
	// step into the parent's condition.
	got := mustXPath(t, "/a/b[c]/parent::*")
	want := MustParse("a[b[c]]")
	if !Equal(got, want) {
		t.Fatalf("got %s, want %s", Canonical(got), Canonical(want))
	}
}

func TestNullable(t *testing.T) {
	cases := map[string]bool{
		"a":      false,
		"a*":     true,
		"a?":     true,
		"a.b":    false,
		"a*.b*":  true,
		"(a|b?)": true,
		"a+":     false,
		"%e":     true,
	}
	for src, want := range cases {
		if got := nullable(MustParse(src)); got != want {
			t.Errorf("nullable(%s) = %v, want %v", src, got, want)
		}
	}
}

func TestRestrictLabel(t *testing.T) {
	cases := []struct{ expr, test, want string }{
		{"a", "a", "a"},
		{"_", "a", "a"},
		{"a.b", "b", "a.b"},
		{"a._", "b", "a.b"},
		{"(a|b)", "a", "a"},
		{"_+", "a", "_*.a"},
		{"a+", "a", "a+"},
		{"a[q]", "a", "a[q]"},
		{"a.b?", "b", "a.b"},
		{"a.b?", "a", "a"}, // ε-matching b? leaves the a endpoint
	}
	for _, tc := range cases {
		got := restrictLabel(MustParse(tc.expr), tc.test)
		if got == nil {
			t.Errorf("restrictLabel(%s, %s) = nil", tc.expr, tc.test)
			continue
		}
		if want := MustParse(tc.want); !Equal(got, want) {
			t.Errorf("restrictLabel(%s, %s) = %s, want %s", tc.expr, tc.test, Canonical(got), Canonical(want))
		}
	}
	if got := restrictLabel(MustParse("a"), "b"); got != nil {
		t.Errorf("restrictLabel(a, b) = %v, want nil", got)
	}
	if got := restrictLabel(MustParse("a.b"), "a"); got != nil {
		t.Errorf("restrictLabel(a.b, a) = %v, want nil", got)
	}
}
