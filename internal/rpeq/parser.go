package rpeq

import (
	"fmt"
	"strconv"
)

// Parse parses an rpeq expression in the paper's surface syntax, e.g.
//
//	a.c            two child steps
//	a+.c+          positive closure steps
//	_*.a[b].c      descendant wildcard, qualifier [b] on step a
//	(a|b).c?       union and optional
//
// Operator precedence, tightest first: the postfix operators *, +, ? and
// [qualifier]; then concatenation '.'; then union '|'. Closure (* and +)
// applies to labels only, as in the paper's grammar.
func Parse(src string) (Node, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	n, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("rpeq: unexpected %s at offset %d", p.tok.kind, p.tok.pos)
	}
	return n, nil
}

// ParseWithLimit parses an rpeq expression optionally followed by a trailing
// answer-limit clause:
//
//	_*.item limit 1      stop after the first answer
//	_*.item first        shorthand for limit 1
//
// It returns the expression, the limit (0 when no clause is present,
// meaning unlimited), and any error. The clause keywords stay valid labels
// in every other position: `a.limit` is a path, and a bare `limit` query
// selects children labelled "limit". Plain Parse rejects the clause, so
// existing call sites are unaffected.
func ParseWithLimit(src string) (Node, int64, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, 0, err
	}
	n, err := p.parseUnion()
	if err != nil {
		return nil, 0, err
	}
	limit, err := p.parseLimitClause()
	if err != nil {
		return nil, 0, err
	}
	if p.tok.kind != tokEOF {
		return nil, 0, fmt.Errorf("rpeq: unexpected %s at offset %d", p.tok.kind, p.tok.pos)
	}
	return n, limit, nil
}

// parseLimitClause ::= ('limit' number | 'first')?
func (p *parser) parseLimitClause() (int64, error) {
	if p.tok.kind != tokName {
		return 0, nil
	}
	switch p.tok.text {
	case "first":
		if err := p.advance(); err != nil {
			return 0, err
		}
		return 1, nil
	case "limit":
		if err := p.advance(); err != nil {
			return 0, err
		}
		if p.tok.kind != tokNumber {
			return 0, fmt.Errorf("rpeq: expected a number after 'limit' at offset %d, got %s", p.tok.pos, p.tok.kind)
		}
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("rpeq: limit must be a positive integer at offset %d, got %q", p.tok.pos, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return 0, err
		}
		return n, nil
	}
	return 0, nil
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

// parseUnion ::= concat ('|' concat)*
func (p *parser) parseUnion() (Node, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPipe {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		left = &Union{Left: left, Right: right}
	}
	return left, nil
}

// parseConcat ::= postfix ('.' postfix)*
func (p *parser) parseConcat() (Node, error) {
	left, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		left = &Concat{Left: left, Right: right}
	}
	return left, nil
}

// parsePostfix ::= atom ('*' | '+' | '?' | '[' union ']')*
func (p *parser) parsePostfix() (Node, error) {
	n, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokStar, tokPlus:
			label, ok := n.(*Label)
			if !ok {
				return nil, fmt.Errorf("rpeq: closure %s at offset %d applies to labels only (got %s); the paper's grammar has label* and label+",
					p.tok.kind, p.tok.pos, n)
			}
			if p.tok.kind == tokStar {
				n = &Star{Label: label}
			} else {
				n = &Plus{Label: label}
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokQuestion:
			n = &Optional{Expr: n}
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokLBracket:
			if err := p.advance(); err != nil {
				return nil, err
			}
			cond, err := p.parseUnion()
			if err != nil {
				return nil, err
			}
			// Optional text test: [path = "v"], [path != "v"],
			// [path *= "v"] (contains). Note that `a* = "v"` (closure
			// then equality) needs the space; `a*=` lexes as contains.
			switch p.tok.kind {
			case tokEq, tokNeq, tokContains:
				op := TextEq
				switch p.tok.kind {
				case tokNeq:
					op = TextNeq
				case tokContains:
					op = TextContains
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
				if p.tok.kind != tokString {
					return nil, fmt.Errorf("rpeq: expected a string literal at offset %d, got %s", p.tok.pos, p.tok.kind)
				}
				cond = &TextTest{Path: cond, Op: op, Value: p.tok.text}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if p.tok.kind != tokRBracket {
				return nil, fmt.Errorf("rpeq: expected ']' at offset %d, got %s", p.tok.pos, p.tok.kind)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			n = &Qualifier{Base: n, Cond: cond}
		default:
			return n, nil
		}
	}
}

// parseAtom ::= label | ε | '(' union ')'
func (p *parser) parseAtom() (Node, error) {
	switch p.tok.kind {
	case tokName:
		n := &Label{Name: p.tok.text}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokEpsilon:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Empty{}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("rpeq: expected ')' at offset %d, got %s", p.tok.pos, p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokEOF:
		return nil, fmt.Errorf("rpeq: unexpected end of expression")
	default:
		return nil, fmt.Errorf("rpeq: unexpected %s at offset %d", p.tok.kind, p.tok.pos)
	}
}
