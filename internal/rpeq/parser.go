package rpeq

import (
	"fmt"
	"strconv"
)

// parseRPEQ parses an rpeq expression in the paper's surface syntax (see
// Parse in options.go for the exported entry point), optionally followed by
// a trailing answer-limit clause when allowLimit is set.
func parseRPEQ(src string, allowLimit bool) (Node, int64, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, 0, err
	}
	n, err := p.parseUnion()
	if err != nil {
		return nil, 0, err
	}
	var limit int64
	if allowLimit {
		if limit, err = p.parseLimitClause(); err != nil {
			return nil, 0, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, 0, fmt.Errorf("rpeq: unexpected %s at offset %d", p.tok.kind, p.tok.pos)
	}
	return n, limit, nil
}

// parseLimitClause ::= ('limit' number | 'first')?
func (p *parser) parseLimitClause() (int64, error) {
	if p.tok.kind != tokName {
		return 0, nil
	}
	switch p.tok.text {
	case "first":
		if err := p.advance(); err != nil {
			return 0, err
		}
		return 1, nil
	case "limit":
		if err := p.advance(); err != nil {
			return 0, err
		}
		if p.tok.kind != tokNumber {
			return 0, fmt.Errorf("rpeq: expected a number after 'limit' at offset %d, got %s", p.tok.pos, p.tok.kind)
		}
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("rpeq: limit must be a positive integer at offset %d, got %q", p.tok.pos, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return 0, err
		}
		return n, nil
	}
	return 0, nil
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

// parseUnion ::= concat ('|' concat)*
func (p *parser) parseUnion() (Node, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPipe {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		left = &Union{Left: left, Right: right}
	}
	return left, nil
}

// parseConcat ::= postfix ('.' postfix)*
func (p *parser) parseConcat() (Node, error) {
	left, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		left = &Concat{Left: left, Right: right}
	}
	return left, nil
}

// parsePostfix ::= atom ('*' | '+' | '?' | '[' union ']')*
func (p *parser) parsePostfix() (Node, error) {
	n, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokStar, tokPlus:
			label, ok := n.(*Label)
			if !ok {
				return nil, fmt.Errorf("rpeq: closure %s at offset %d applies to labels only (got %s); the paper's grammar has label* and label+",
					p.tok.kind, p.tok.pos, n)
			}
			if p.tok.kind == tokStar {
				n = &Star{Label: label}
			} else {
				n = &Plus{Label: label}
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokQuestion:
			n = &Optional{Expr: n}
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokLBracket:
			if err := p.advance(); err != nil {
				return nil, err
			}
			cond, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			if p.tok.kind != tokRBracket {
				return nil, fmt.Errorf("rpeq: expected ']' at offset %d, got %s", p.tok.pos, p.tok.kind)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if n, err = lowerPredicate(n, cond); err != nil {
				return nil, err
			}
		default:
			return n, nil
		}
	}
}

// isKeyword reports whether the current token is the given bare word. The
// condition keywords stay valid labels in every other position: two names
// can never be adjacent inside a path (concatenation needs '.'), so a name
// following a complete term is unambiguously an operator.
func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokName && p.tok.text == kw
}

// parseCond ::= condAnd ('or' condAnd)*
//
// Precedence, tightest first: not, and, or. Note that '|' inside a term is
// path union and binds tighter than the boolean operators: a|b and c means
// (a|b) and c.
func (p *parser) parseCond() (condExpr, error) {
	left, err := p.parseCondAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseCondAnd()
		if err != nil {
			return nil, err
		}
		left = condOr{left: left, right: right}
	}
	return left, nil
}

// parseCondAnd ::= condTerm ('and' condTerm)*
func (p *parser) parseCondAnd() (condExpr, error) {
	left, err := p.parseCondTerm()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseCondTerm()
		if err != nil {
			return nil, err
		}
		left = condAnd{left: left, right: right}
	}
	return left, nil
}

// parseCondTerm ::= 'not' '(' cond ')' | union (('='|'!='|'*=') string)?
//
// The text comparisons read [path = "v"], [path != "v"], [path *= "v"]
// (contains); note that `a* = "v"` (closure then equality) needs the
// space, since `a*=` lexes as contains. On a path ending in an attribute
// step the comparison applies to the attribute value instead.
func (p *parser) parseCondTerm() (condExpr, error) {
	if p.tok.kind == tokLParen {
		// '(' is ambiguous: a boolean group ((a or b) and c) or a grouped
		// path ((a|b).c). Try the boolean reading and backtrack to the
		// path reading unless the group is followed by a condition
		// context (']', ')', 'and', 'or') — a following postfix operator
		// or comparison means the parentheses belong to a path.
		save := *p
		if e, ok := p.tryCondGroup(); ok {
			return e, nil
		}
		*p = save
	}
	if p.isKeyword("not") {
		// `not` is a keyword only when '(' follows; a bare `not` stays a
		// label ([not] still selects children named "not").
		save := p.lex
		nxt, err := p.lex.next()
		if err == nil && nxt.kind == tokLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			inner, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			if p.tok.kind != tokRParen {
				return nil, fmt.Errorf("rpeq: expected ')' closing not(...) at offset %d, got %s", p.tok.pos, p.tok.kind)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			return condNeg{expr: inner}, nil
		}
		p.lex = save
	}
	path, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokEq, tokNeq, tokContains:
		op := TextEq
		switch p.tok.kind {
		case tokNeq:
			op = TextNeq
		case tokContains:
			op = TextContains
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, fmt.Errorf("rpeq: expected a string literal at offset %d, got %s", p.tok.pos, p.tok.kind)
		}
		leaf := condLeaf{path: path, op: op, value: p.tok.text, hasCmp: true}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return leaf, nil
	}
	return condLeaf{path: path}, nil
}

// tryCondGroup attempts to read '(' cond ')' as a boolean group. It
// reports false (with the parser in an undefined state the caller must
// restore) when the content does not parse as a condition or when the
// group is followed by path syntax.
func (p *parser) tryCondGroup() (condExpr, bool) {
	if err := p.advance(); err != nil {
		return nil, false
	}
	inner, err := p.parseCond()
	if err != nil {
		return nil, false
	}
	if p.tok.kind != tokRParen {
		return nil, false
	}
	if err := p.advance(); err != nil {
		return nil, false
	}
	switch {
	case p.tok.kind == tokRBracket, p.tok.kind == tokRParen,
		p.isKeyword("and"), p.isKeyword("or"):
		return inner, true
	default:
		return nil, false
	}
}

// parseAtom ::= label | ε | '@' name | '(' union ')'
func (p *parser) parseAtom() (Node, error) {
	switch p.tok.kind {
	case tokAt:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokName {
			return nil, fmt.Errorf("rpeq: expected an attribute name after '@' at offset %d, got %s", p.tok.pos, p.tok.kind)
		}
		n := &AttrStep{Name: p.tok.text}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokName:
		n := &Label{Name: p.tok.text}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokEpsilon:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Empty{}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("rpeq: expected ')' at offset %d, got %s", p.tok.pos, p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokEOF:
		return nil, fmt.Errorf("rpeq: unexpected end of expression")
	default:
		return nil, fmt.Errorf("rpeq: unexpected %s at offset %d", p.tok.kind, p.tok.pos)
	}
}
