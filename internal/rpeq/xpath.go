package rpeq

import (
	"fmt"
	"strings"
)

// parseXPath translates an expression in the XPath fragment the paper
// covers (§II.2: forward steps child and descendant, structural
// qualifiers) into an rpeq tree; Parse in options.go is the exported entry
// point. Supported syntax:
//
//	/a/b             child steps from the root
//	//a              descendant step ("_*.a")
//	a//b             descendant between steps
//	*                wildcard name test
//	a[b//c]          structural predicate (itself in the same fragment)
//	a[@s="x"]        attribute predicates: [@a], [@a="v"], [@a!="v"],
//	                 [@a*="v"] (contains), [b/@a] and comparisons on it
//	a[x and not(y)]  predicates combined with 'or', 'and', 'not(...)'
//	//item/@id       trailing attribute selection (@name, attribute::name)
//	a | //b          union of paths
//	//a/parent::b    backward steps parent:: and ancestor[-or-self]::,
//	//a/..           rewritten into the forward fragment (§II.2 via
//	//b/ancestor::a  "XPath: Looking Forward"); also self::,
//	                 descendant[-or-self]:: spelled explicitly
//
// A leading '/' is implied: paths are evaluated from the document root, as
// rpeq expressions are. Backward steps inside predicates may not reach
// above the predicate's context node. allowLimit additionally accepts a
// trailing "limit N" / "first" answer-limit clause.
func parseXPath(src string, allowLimit bool) (Node, int64, error) {
	p := &xpathParser{src: src}
	n, err := p.parseUnion()
	if err != nil {
		return nil, 0, err
	}
	var limit int64
	if allowLimit {
		if limit, err = p.parseLimitClause(); err != nil {
			return nil, 0, err
		}
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, 0, fmt.Errorf("rpeq: xpath: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return n, limit, nil
}

// parseLimitClause consumes a trailing "limit N" or "first" keyword clause.
// The keywords must stand alone as words (followed by space, a digit, or the
// end of input) so that name tests like "firstname" are unaffected.
func (p *xpathParser) parseLimitClause() (int64, error) {
	p.skipSpace()
	rest := p.src[p.pos:]
	switch {
	case strings.HasPrefix(rest, "first") && (len(rest) == len("first") || !isLabelByte(rest[len("first")])):
		p.pos += len("first")
		return 1, nil
	case strings.HasPrefix(rest, "limit") && (len(rest) == len("limit") || !isLabelByte(rest[len("limit")])):
		p.pos += len("limit")
		p.skipSpace()
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		if p.pos == start {
			return 0, fmt.Errorf("rpeq: xpath: expected a number after 'limit' at offset %d", start)
		}
		var n int64
		for _, c := range []byte(p.src[start:p.pos]) {
			n = n*10 + int64(c-'0')
			if n > 1<<40 {
				return 0, fmt.Errorf("rpeq: xpath: limit at offset %d is out of range", start)
			}
		}
		if n <= 0 {
			return 0, fmt.Errorf("rpeq: xpath: limit must be a positive integer at offset %d", start)
		}
		return n, nil
	}
	return 0, nil
}

// MustParseXPath is ParseXPath panicking on error.
func MustParseXPath(src string) Node {
	n, err := ParseXPath(src)
	if err != nil {
		panic(err)
	}
	return n
}

type xpathParser struct {
	src      string
	pos      int
	relative bool // parsing a predicate's relative path
}

func (p *xpathParser) skipSpace() {
	for p.pos < len(p.src) && isExprSpace(p.src[p.pos]) {
		p.pos++
	}
}

func (p *xpathParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// parseUnion ::= path ('|' path)*
func (p *xpathParser) parseUnion() (Node, error) {
	left, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			return left, nil
		}
		p.pos++
		right, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		left = &Union{Left: left, Right: right}
	}
}

// parsePath ::= ('/' | '//')? step (('/' | '//') step)*
//
// The parser folds the path left to right into an rpeq expression; backward
// steps rewrite the expression built so far (see reverse.go). A path parsed
// for a predicate is relative: its context is the qualifier's base node,
// which backward steps may not escape.
func (p *xpathParser) parsePath() (Node, error) {
	p.skipSpace()
	var expr Node
	descendant := false
	switch {
	case strings.HasPrefix(p.src[p.pos:], "//"):
		p.pos += 2
		descendant = true
	case p.peek() == '/':
		p.pos++
	}
	for {
		var err error
		expr, err = p.parseStep(expr, descendant)
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		switch {
		case strings.HasPrefix(p.src[p.pos:], "//"):
			p.pos += 2
			descendant = true
		case p.peek() == '/':
			p.pos++
			descendant = false
		default:
			return expr, nil
		}
	}
}

// xpath axes understood by parseStep.
type xpathAxis uint8

const (
	axisChild xpathAxis = iota
	axisSelf
	axisParent
	axisAncestor
	axisAncestorOrSelf
	axisDescendant
	axisDescendantOrSelf
	axisFollowing
	axisPreceding
	axisAttribute
)

var axisNames = []struct {
	name string
	axis xpathAxis
}{
	// Longest first, so prefix matching is unambiguous.
	{"descendant-or-self", axisDescendantOrSelf},
	{"ancestor-or-self", axisAncestorOrSelf},
	{"descendant", axisDescendant},
	{"following", axisFollowing},
	{"preceding", axisPreceding},
	{"attribute", axisAttribute},
	{"ancestor", axisAncestor},
	{"parent", axisParent},
	{"child", axisChild},
	{"self", axisSelf},
}

// parseStep parses one step and folds it into prev (the expression for the
// path so far; nil at the path start). descendant marks a step reached via
// "//".
func (p *xpathParser) parseStep(prev Node, descendant bool) (Node, error) {
	p.skipSpace()
	axis := axisChild
	var test string
	switch {
	case strings.HasPrefix(p.src[p.pos:], ".."):
		p.pos += 2
		axis, test = axisParent, Wildcard
	case p.peek() == '.':
		p.pos++
		axis, test = axisSelf, Wildcard
	default:
		if p.peek() == '@' {
			// '@name' abbreviates attribute::name.
			p.pos++
			axis = axisAttribute
		} else {
			// Optional explicit axis.
			for _, a := range axisNames {
				if strings.HasPrefix(p.src[p.pos:], a.name+"::") {
					p.pos += len(a.name) + 2
					axis = a.axis
					break
				}
			}
		}
		switch {
		case p.peek() == '*':
			p.pos++
			test = Wildcard
		case p.pos < len(p.src) && isLabelStart(p.src[p.pos]):
			start := p.pos
			for p.pos < len(p.src) && isLabelByte(p.src[p.pos]) {
				p.pos++
			}
			test = p.src[start:p.pos]
		default:
			return nil, fmt.Errorf("rpeq: xpath: expected a name test at offset %d", p.pos)
		}
	}

	expr, err := p.applyStep(prev, descendant, axis, test)
	if err != nil {
		return nil, err
	}

	for {
		p.skipSpace()
		if p.peek() != '[' {
			return expr, nil
		}
		p.pos++
		cond, err := p.parseCondOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ']' {
			return nil, fmt.Errorf("rpeq: xpath: expected ']' at offset %d", p.pos)
		}
		p.pos++
		if expr, err = lowerPredicate(expr, cond); err != nil {
			return nil, err
		}
	}
}

// condKeyword consumes the given bare word if it stands alone (followed by
// a non-name byte), so name tests like "android" are unaffected.
func (p *xpathParser) condKeyword(kw string) bool {
	p.skipSpace()
	rest := p.src[p.pos:]
	if strings.HasPrefix(rest, kw) && (len(rest) == len(kw) || !isLabelByte(rest[len(kw)])) {
		p.pos += len(kw)
		return true
	}
	return false
}

// parseCondOr ::= condAnd ('or' condAnd)*
//
// Precedence, tightest first: not, and, or; '|' inside a term is path
// union and binds tighter still.
func (p *xpathParser) parseCondOr() (condExpr, error) {
	left, err := p.parseCondAnd()
	if err != nil {
		return nil, err
	}
	for p.condKeyword("or") {
		right, err := p.parseCondAnd()
		if err != nil {
			return nil, err
		}
		left = condOr{left: left, right: right}
	}
	return left, nil
}

// parseCondAnd ::= condTerm ('and' condTerm)*
func (p *xpathParser) parseCondAnd() (condExpr, error) {
	left, err := p.parseCondTerm()
	if err != nil {
		return nil, err
	}
	for p.condKeyword("and") {
		right, err := p.parseCondTerm()
		if err != nil {
			return nil, err
		}
		left = condAnd{left: left, right: right}
	}
	return left, nil
}

// parseCondTerm ::= 'not' '(' cond ')' | '(' cond ')' | path comparison?
//
// where comparison ::= ('=' | '!=' | '*=') string.
// A parenthesized group is unambiguous: relative paths in this fragment
// cannot start with '(' . The word `not` is a keyword only when '('
// follows; [not] still tests for children named "not".
func (p *xpathParser) parseCondTerm() (condExpr, error) {
	p.skipSpace()
	if rest := p.src[p.pos:]; strings.HasPrefix(rest, "not") && (len(rest) == len("not") || !isLabelByte(rest[len("not")])) {
		save := p.pos
		p.pos += len("not")
		p.skipSpace()
		if p.peek() == '(' {
			p.pos++
			inner, err := p.parseCondOr()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.peek() != ')' {
				return nil, fmt.Errorf("rpeq: xpath: expected ')' closing not(...) at offset %d", p.pos)
			}
			p.pos++
			return condNeg{expr: inner}, nil
		}
		p.pos = save
	}
	if p.peek() == '(' {
		p.pos++
		inner, err := p.parseCondOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("rpeq: xpath: expected ')' at offset %d", p.pos)
		}
		p.pos++
		return inner, nil
	}
	sub := &xpathParser{src: p.src, pos: p.pos, relative: true}
	path, err := sub.parseUnion()
	if err != nil {
		return nil, err
	}
	p.pos = sub.pos
	p.skipSpace()
	// Optional comparison: [path = "v"] / [path != "v"] / [path *= "v"],
	// against text content, or against the attribute value when the path
	// ends in an attribute step.
	if op, ok := p.parseTextOp(); ok {
		value, err := p.parseStringLiteral()
		if err != nil {
			return nil, err
		}
		return condLeaf{path: path, op: op, value: value, hasCmp: true}, nil
	}
	return condLeaf{path: path}, nil
}

// applyStep folds one axis::test step into the path expression so far.
func (p *xpathParser) applyStep(prev Node, descendant bool, axis xpathAxis, test string) (Node, error) {
	// "//" before a non-child axis means descendant-or-self::* first.
	descend := func(e Node) Node {
		if e == nil {
			return &Star{Label: &Label{Name: Wildcard}}
		}
		return &Concat{Left: e, Right: &Star{Label: &Label{Name: Wildcard}}}
	}
	switch axis {
	case axisChild:
		step := Node(&Label{Name: test})
		if descendant {
			step = &Concat{Left: &Star{Label: &Label{Name: Wildcard}}, Right: step}
		}
		return concat(prev, step), nil

	case axisDescendant:
		base := prev
		if descendant {
			base = descend(prev)
		}
		return concat(base, &Concat{Left: &Star{Label: &Label{Name: Wildcard}}, Right: &Label{Name: test}}), nil

	case axisDescendantOrSelf:
		base := prev
		if descendant {
			base = descend(prev)
		}
		if test == Wildcard {
			return descend(base), nil
		}
		// self part requires the current node to carry the test.
		desc := concat(base, &Concat{Left: &Star{Label: &Label{Name: Wildcard}}, Right: &Label{Name: test}})
		if base == nil {
			return nil, fmt.Errorf("rpeq: xpath: descendant-or-self::%s at the path start is not expressible (the root has no label)", test)
		}
		if self := restrictLabel(base, test); self != nil {
			return &Union{Left: desc, Right: self}, nil
		}
		return desc, nil

	case axisSelf:
		base := prev
		if descendant {
			base = descend(prev)
		}
		if test == Wildcard {
			if base == nil {
				return &Empty{}, nil
			}
			return base, nil
		}
		if base == nil {
			return nil, fmt.Errorf("rpeq: xpath: self::%s on the %s is not expressible", test, p.contextName())
		}
		restricted := restrictLabel(base, test)
		if restricted == nil {
			return nil, fmt.Errorf("rpeq: xpath: self::%s after %s can never match", test, base)
		}
		return restricted, nil

	case axisParent:
		base := prev
		if descendant {
			base = descend(prev)
		}
		if base == nil {
			return nil, fmt.Errorf("rpeq: xpath: parent:: at the path start escapes the %s", p.contextName())
		}
		return RewriteParent(base, test, p.relative)

	case axisAncestor, axisAncestorOrSelf:
		base := prev
		if descendant {
			base = descend(prev)
		}
		if base == nil {
			return nil, fmt.Errorf("rpeq: xpath: ancestor:: at the path start escapes the %s", p.contextName())
		}
		return RewriteAncestor(base, test, axis == axisAncestorOrSelf, p.relative)

	case axisAttribute:
		if test == Wildcard {
			return nil, fmt.Errorf("rpeq: xpath: attribute::* is not supported; name the attribute")
		}
		step := Node(&AttrStep{Name: test})
		if descendant {
			step = &Concat{Left: &Star{Label: &Label{Name: Wildcard}}, Right: step}
		}
		return concat(prev, step), nil

	case axisFollowing, axisPreceding:
		base := prev
		if descendant {
			base = descend(prev)
		}
		if p.relative {
			// The axes reach outside the predicate's subtree, which the
			// scope-bound qualifier machinery cannot evaluate (a
			// qualifier instance is finalized when its scope closes).
			return nil, fmt.Errorf("rpeq: xpath: %s:: inside a predicate escapes the qualifier scope; not supported",
				map[xpathAxis]string{axisFollowing: "following", axisPreceding: "preceding"}[axis])
		}
		if base == nil {
			base = &Empty{}
		}
		var step Node
		if axis == axisFollowing {
			step = &Following{Test: test}
		} else {
			step = &Preceding{Test: test}
		}
		return concat(base, step), nil

	default:
		return nil, fmt.Errorf("rpeq: xpath: unsupported axis")
	}
}

// parseTextOp consumes a comparison operator if one follows.
func (p *xpathParser) parseTextOp() (TextOp, bool) {
	switch {
	case strings.HasPrefix(p.src[p.pos:], "!="):
		p.pos += 2
		return TextNeq, true
	case strings.HasPrefix(p.src[p.pos:], "*="):
		p.pos += 2
		return TextContains, true
	case p.peek() == '=':
		p.pos++
		return TextEq, true
	default:
		return TextEq, false
	}
}

// parseStringLiteral consumes a single- or double-quoted string.
func (p *xpathParser) parseStringLiteral() (string, error) {
	p.skipSpace()
	quote := p.peek()
	if quote != '"' && quote != '\'' {
		return "", fmt.Errorf("rpeq: xpath: expected a string literal at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("rpeq: xpath: unterminated string literal at offset %d", start)
	}
	value := p.src[start:p.pos]
	p.pos++
	return value, nil
}

func (p *xpathParser) contextName() string {
	if p.relative {
		return "predicate context"
	}
	return "document root"
}
