package rpeq

// TextTest is a qualifier condition comparing the string value of selected
// nodes against a constant: base[path = "v"] holds iff some node selected
// by path (relative to the base node) has string value equal to v. The
// string value of a node is the concatenation of all character data in its
// subtree, XPath-style.
//
// Text tests are an extension beyond the paper's published fragment, which
// covers "no other qualifiers than structural qualifiers" (§II.2); they are
// the first step of the XPath/XQuery migration the paper names as future
// work (§VII, §IX). A TextTest appears only as a Qualifier's condition.
type TextTest struct {
	// Path selects the nodes whose string values are tested, relative to
	// the qualifier's base node.
	Path Node
	// Op is the comparison operator.
	Op TextOp
	// Value is the constant compared against.
	Value string
}

// TextOp is a string comparison operator.
type TextOp uint8

// Text comparison operators.
const (
	// TextEq holds when the string value equals the constant.
	TextEq TextOp = iota
	// TextNeq holds when the string value differs from the constant.
	TextNeq
	// TextContains holds when the string value contains the constant.
	TextContains
)

// String renders the operator in the surface syntax.
func (op TextOp) String() string {
	switch op {
	case TextEq:
		return "="
	case TextNeq:
		return "!="
	case TextContains:
		return "*="
	default:
		return "?"
	}
}

// Holds applies the operator to a string value.
func (op TextOp) Holds(value, constant string) bool {
	switch op {
	case TextEq:
		return value == constant
	case TextNeq:
		return value != constant
	case TextContains:
		return contains(value, constant)
	default:
		return false
	}
}

func contains(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func (*TextTest) node() {}

func (t *TextTest) Size() int { return 1 + t.Path.Size() }

func (t *TextTest) String() string {
	return t.Path.String() + " " + t.Op.String() + " " + quoteString(t.Value)
}

func quoteString(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(append(out, '"'))
}

// HasTextTest reports whether the expression contains a text-test
// qualifier; evaluations must then keep character data in the stream.
func HasTextTest(n Node) bool {
	switch n := n.(type) {
	case *TextTest:
		return true
	case *Concat:
		return HasTextTest(n.Left) || HasTextTest(n.Right)
	case *Union:
		return HasTextTest(n.Left) || HasTextTest(n.Right)
	case *Optional:
		return HasTextTest(n.Expr)
	case *Qualifier:
		return HasTextTest(n.Base) || HasTextTest(n.Cond)
	case *CondNot:
		return HasTextTest(n.Expr)
	default:
		return false
	}
}
