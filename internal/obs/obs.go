// Package obs is the observability subsystem of the SPEX engine: lock-cheap
// live metrics, structured transition tracing, and point-in-time snapshots
// that can be polled from another goroutine while a stream is flowing.
//
// The paper's evaluation (§V–§VI) is entirely about observable resource
// behaviour — stack entries bounded by the document depth d, condition
// formulas bounded by o(φ), constant memory on arbitrarily long streams,
// progressive answer emission. This package surfaces those quantities while
// an evaluation runs instead of only summarizing them afterwards:
//
//   - a Metrics registry of atomic counters, gauges, watermarks and bounded
//     histograms, with one TransducerMetrics instrument per network node
//     (messages in/out by kind, current and maximum stack depth, maximum
//     condition-formula size);
//   - Snapshot, a consistent view of the registry plus a heap sample, safe
//     to take from any goroutine mid-stream;
//   - Tracer, the first-class form of the transition traces the paper walks
//     through in Figs. 4, 5 and 13, with kind and transducer filters and a
//     fixed-size ring buffer;
//   - HTTP handlers serving the registry as Prometheus text and JSON.
//
// All instruments are single-writer (the evaluation goroutine) and
// many-reader. When no registry is attached to a network the engine takes a
// separate uninstrumented path, so observability costs nothing unless asked
// for.
package obs

import (
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/governor"
)

// MsgKind classifies transducer messages for the per-kind instruments; the
// values mirror the engine's message kinds (Definition 2 of the paper).
type MsgKind uint8

const (
	// KindDoc is a document message (element/document boundary or text).
	KindDoc MsgKind = iota
	// KindActivation is an activation message [f].
	KindActivation
	// KindDetermination is a condition determination message {c,·}.
	KindDetermination
	numKinds
)

// String returns the short label used in metric output.
func (k MsgKind) String() string {
	switch k {
	case KindDoc:
		return "doc"
	case KindActivation:
		return "act"
	case KindDetermination:
		return "det"
	default:
		return "?"
	}
}

// Counter is a monotone atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta — for values maintained as up/down counts
// from several goroutines (active sessions, in-flight bytes), where Set
// would lose concurrent updates.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Watermark tracks a current value and the maximum it ever reached. It is
// single-writer: only the evaluation goroutine calls Set/NoteMax, so the
// max update needs no compare-and-swap loop.
type Watermark struct{ cur, max atomic.Int64 }

// Set stores the current value, raising the maximum if exceeded.
func (w *Watermark) Set(n int64) {
	w.cur.Store(n)
	if n > w.max.Load() {
		w.max.Store(n)
	}
}

// NoteMax raises the maximum without touching the current value — used when
// a within-step peak is reported after the fact.
func (w *Watermark) NoteMax(n int64) {
	if n > w.max.Load() {
		w.max.Store(n)
	}
}

// Cur returns the current value.
func (w *Watermark) Cur() int64 { return w.cur.Load() }

// Max returns the maximum value observed.
func (w *Watermark) Max() int64 { return w.max.Load() }

// histBuckets is the fixed number of power-of-two histogram buckets; the
// last bucket absorbs everything ≥ 2^(histBuckets-2).
const histBuckets = 18

// Histogram is a bounded histogram over non-negative values with
// power-of-two buckets: bucket 0 counts zeros, bucket i (i ≥ 1) counts
// values in [2^(i-1), 2^i). Memory is constant regardless of the value
// range, as every structure of this engine must be.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramBatch accumulates observations in plain ints owned by a single
// goroutine; FlushTo publishes them into an atomic Histogram in one pass.
// Hot loops that would otherwise pay three atomic adds per observation
// observe into a batch and flush on a stride.
type HistogramBatch struct {
	buckets [histBuckets]int64
	count   int64
	sum     int64
}

// Observe records one value into the batch.
func (b *HistogramBatch) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	b.buckets[i]++
	b.count++
	b.sum += v
}

// FlushTo adds the batch's accumulated observations to h and resets the
// batch. A flushed batch is immediately reusable.
func (b *HistogramBatch) FlushTo(h *Histogram) {
	if b.count == 0 {
		return
	}
	for i := range b.buckets {
		if n := b.buckets[i]; n != 0 {
			h.buckets[i].Add(n)
			b.buckets[i] = 0
		}
	}
	h.count.Add(b.count)
	h.sum.Add(b.sum)
	b.count, b.sum = 0, 0
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramBucket is one bucket of a histogram snapshot.
type HistogramBucket struct {
	// Le is the bucket's inclusive upper bound (Prometheus "le" semantics);
	// the last bucket's bound is reported as math.MaxInt64.
	Le int64 `json:"le"`
	// Count is the number of observations ≤ Le (cumulative).
	Count int64 `json:"count"`
}

// Buckets returns the cumulative bucket counts, smallest bound first.
func (h *Histogram) Buckets() []HistogramBucket {
	out := make([]HistogramBucket, 0, histBuckets)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		le := int64(1)<<uint(i) - 1
		if i == histBuckets-1 {
			le = int64(1)<<62 - 1
		}
		out = append(out, HistogramBucket{Le: le, Count: cum})
	}
	return out
}

// TransducerMetrics is the per-transducer instrument set: message counts by
// direction and kind, the depth/condition stack watermark (the paper's
// bound d, Lemma V.2), and the condition-formula size watermark (the bound
// o(φ)).
type TransducerMetrics struct {
	// Name labels the transducer as "index:name", e.g. "3:CH(a)"; the index
	// disambiguates repeated constructs in one network.
	Name string
	// In and Out count messages received and emitted, indexed by MsgKind.
	In  [numKinds]Counter
	Out [numKinds]Counter
	// Stack is the current and maximum depth/condition stack size.
	Stack Watermark
	// Formula is the maximum condition-formula size handled.
	Formula Watermark
}

// NewTransducerMetrics returns an instrument set labelled name.
func NewTransducerMetrics(name string) *TransducerMetrics {
	return &TransducerMetrics{Name: name}
}

// ShardMetrics is the per-shard instrument set of the parallel multi-query
// (SDI) engine: each shard of the worker pool owns one and is its only
// writer, except Queue, which the feeding goroutine writes when it enqueues
// a batch. All instruments are atomics, so snapshots from other goroutines
// are safe while the pool is running.
type ShardMetrics struct {
	// Name labels the shard, e.g. "shard-3".
	Name string
	// Subs is the number of subscriptions assigned to the shard.
	Subs Gauge
	// Batches counts event batches the shard has evaluated.
	Batches Counter
	// Events counts stream events the shard has evaluated (each shard sees
	// every event of the stream — the queries are partitioned, not the
	// stream).
	Events Counter
	// Hits counts answers the shard has produced across its subscriptions.
	Hits Counter
	// Queue is the shard's inbound queue depth in batches, with watermark:
	// a persistently full queue marks the shard as the pool's straggler.
	Queue Watermark
	// BusyNs accumulates time spent evaluating batches, in nanoseconds;
	// busy time over wall time is the shard's utilization.
	BusyNs Counter
}

// NewShardMetrics returns an instrument set labelled name.
func NewShardMetrics(name string) *ShardMetrics {
	return &ShardMetrics{Name: name}
}

// Metrics is the engine's metrics registry. One registry can outlive any
// single evaluation — a service evaluating many streams binds each new
// network to the same registry, counters accumulate, and the HTTP handlers
// keep serving — or it can be private to one Run for mid-stream polling.
//
// All numeric instruments are atomics written by the evaluation goroutine
// and readable from anywhere; the transducer instrument list is guarded by
// a mutex because binding a network replaces it.
type Metrics struct {
	start time.Time

	// Stream-side instruments.
	Events   Counter   // document-stream events processed
	Elements Counter   // element start messages
	Bytes    Counter   // input bytes consumed (reader-fed evaluations)
	Depth    Watermark // current and maximum document depth d

	// Sink-side instruments (§III.8, Lemma V.2(5)).
	Matches    Counter   // answers flushed to the sink
	Candidates Counter   // candidates proposed
	Dropped    Counter   // candidates whose condition became false
	Queued     Watermark // candidates awaiting determination or order
	Buffered   Watermark // buffered content events
	// EarlyTerm counts sinks whose answer became fixed before the end of
	// the stream (answer limit reached): each increment is one query that
	// released its candidate state early and let its stream disconnect.
	EarlyTerm Counter

	// Candidate-lifecycle histograms (sink-side). DecisionLatency is the
	// number of stream events between a candidate's creation and the moment
	// its condition resolved to true or false — the paper's delay-to-decision;
	// CandidateLifetime is the number of events between creation and the
	// candidate leaving the sink (emitted or discarded), i.e. how long its
	// buffered content aged. Both are in events, the unit §V's bounds are
	// stated in.
	DecisionLatency   Histogram
	CandidateLifetime Histogram

	// StreamLatencyNs is the end-to-end stream latency: wall-clock
	// nanoseconds between the most recent read of the input (LastReadNs,
	// stamped by CountingReader) and an answer's emission at the OU sink.
	StreamLatencyNs Histogram

	// LastReadNs is the wall-clock timestamp (UnixNano) of the most recent
	// input read — the reference point StreamLatencyNs measures from. Zero
	// until a counting reader is attached.
	LastReadNs Gauge

	// LiveVars is the number of live condition variables in the network's
	// pool, published on the gauge stride — the current value behind the
	// governor's live_vars cap.
	LiveVars Gauge

	// Ingest-path instruments (internal/xmlstream): the arena tape and scan
	// buffer of the zero-copy scanner that fed the last completed scan, and
	// the chunk count of a parallel chunk-scan (1 for a serial scan). Set
	// once per finished scan by whoever owns the scanner (core evaluations,
	// the query-set engines, spexd sessions), so a scrape mid-service shows
	// the most recent stream's ingest footprint — the quantities behind the
	// E22 ablation.
	IngestArenaBytes  Gauge
	IngestArenaBlocks Gauge
	IngestArenaAttrs  Gauge
	IngestBufferBytes Gauge
	IngestChunks      Gauge

	// Symbol-interning instruments: size and cumulative hit/miss counts of
	// the symbol table the observed evaluation resolves labels against.
	// Tables may be shared across evaluations (a multi-query engine, a
	// long-lived plan), so the values are cumulative for the table, not the
	// run.
	SymtabSize   Gauge
	SymtabHits   Gauge
	SymtabMisses Gauge

	// StepMessages is the distribution of messages delivered per document
	// event — the per-event work the Lemma V.2 time bound is about.
	StepMessages Histogram

	// Resource-governor instruments: per-resource limit trips and the
	// actions taken. Written by the evaluation goroutine when a configured
	// cap trips (internal/governor); all zero when no governor is attached.
	GovernorTrips    [governor.NumResources]Counter // trips by Resource
	GovernorFails    Counter                        // runs terminated (PolicyFail)
	GovernorDegrades Counter                        // sinks switched to count-only (PolicyDegrade)
	GovernorSheds    Counter                        // subscriptions dropped (PolicyShed)

	// Query-set compiler instruments (internal/setcompile): the size of
	// the registered subscription set's merged compilation against the
	// naive one-network-per-query baseline, and the static pre-pass
	// outcomes. Set absolutely by a merged engine at build time, or
	// aggregated across channels by spexd's subscription lifecycle.
	SetcompileNaive     Gauge // transducers if each query compiled alone
	SetcompileMerged    Gauge // transducers in the merged network
	SetcompilePruned    Gauge // queries statically unsatisfiable, dropped
	SetcompileCollapsed Gauge // queries collapsed onto an equivalent's sink
	SetcompileContained Gauge // one-way containments detected between live queries

	mu          sync.RWMutex
	transducers []*TransducerMetrics
	shards      []*ShardMetrics
	ring        *RingTracer
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// SetTransducers installs the per-transducer instruments of the network the
// registry is currently observing, replacing those of a previous network.
func (m *Metrics) SetTransducers(tms []*TransducerMetrics) {
	m.mu.Lock()
	m.transducers = tms
	m.mu.Unlock()
}

// Transducers returns the current per-transducer instruments.
func (m *Metrics) Transducers() []*TransducerMetrics {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*TransducerMetrics, len(m.transducers))
	copy(out, m.transducers)
	return out
}

// SetSetcompile publishes the query-set compiler's merge statistics for
// the subscription set the registry is currently observing: naive vs
// merged transducer counts and the pruned/collapsed/contained query
// tallies of the static pre-pass.
func (m *Metrics) SetSetcompile(naive, merged, pruned, collapsed, contained int) {
	m.SetcompileNaive.Set(int64(naive))
	m.SetcompileMerged.Set(int64(merged))
	m.SetcompilePruned.Set(int64(pruned))
	m.SetcompileCollapsed.Set(int64(collapsed))
	m.SetcompileContained.Set(int64(contained))
}

// SetIngest publishes the ingest accounting of a finished scan: arena bytes,
// blocks and attribute slots carved from the scanner's arenas, the scan
// buffer size, and the chunk count (1 for a serial scan, the worker chunk
// count for a parallel chunk-scan). Plain integers rather than the
// xmlstream.IngestStats struct, so the observability package stays free of
// scanner imports. Safe on a nil receiver (uninstrumented run).
func (m *Metrics) SetIngest(arenaBytes, arenaBlocks, arenaAttrs, bufferBytes, chunks int64) {
	if m == nil {
		return
	}
	m.IngestArenaBytes.Set(arenaBytes)
	m.IngestArenaBlocks.Set(arenaBlocks)
	m.IngestArenaAttrs.Set(arenaAttrs)
	m.IngestBufferBytes.Set(bufferBytes)
	m.IngestChunks.Set(chunks)
}

// SetShards installs the per-shard instruments of the worker pool the
// registry is currently observing, replacing those of a previous pool.
func (m *Metrics) SetShards(sms []*ShardMetrics) {
	m.mu.Lock()
	m.shards = sms
	m.mu.Unlock()
}

// Shards returns the current per-shard instruments.
func (m *Metrics) Shards() []*ShardMetrics {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*ShardMetrics, len(m.shards))
	copy(out, m.shards)
	return out
}

// SetTracerRing associates a ring tracer with the registry so snapshots
// report how many trace events were recorded and how many the ring has
// already evicted (RingTracer.Dropped) — overruns stop being silent.
func (m *Metrics) SetTracerRing(r *RingTracer) {
	m.mu.Lock()
	m.ring = r
	m.mu.Unlock()
}

// TracerRing returns the associated ring tracer, if any.
func (m *Metrics) TracerRing() *RingTracer {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ring
}

// Uptime returns the time since the registry was created.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// NoteGovernor records one tripped resource limit and the policy that was
// applied for it. Safe to call with a nil receiver (uninstrumented run).
func (m *Metrics) NoteGovernor(r governor.Resource, p governor.Policy) {
	if m == nil {
		return
	}
	if int(r) >= 0 && int(r) < governor.NumResources {
		m.GovernorTrips[r].Inc()
	}
	switch p {
	case governor.PolicyFail:
		m.GovernorFails.Inc()
	case governor.PolicyDegrade:
		m.GovernorDegrades.Inc()
	case governor.PolicyShed:
		m.GovernorSheds.Inc()
	}
}

// CountingReader counts the bytes read through it into a Counter, so the
// registry's Bytes instrument reflects input consumed. With LastReadNs set
// it also stamps the wall-clock time of each read, giving StreamLatencyNs
// its reference point.
type CountingReader struct {
	R          io.Reader
	C          *Counter
	LastReadNs *Gauge
}

// Read implements io.Reader.
func (r *CountingReader) Read(p []byte) (int, error) {
	n, err := r.R.Read(p)
	if n > 0 {
		r.C.Add(int64(n))
		if r.LastReadNs != nil {
			r.LastReadNs.Set(time.Now().UnixNano())
		}
	}
	return n, err
}
