package obs

import "sync"

// TraceEvent is one traced transducer emission: during document-stream step
// Step (events count from 1 for <$>), transducer Node emitted the message
// rendered in the paper's notation as Msg. This is the observable behaviour
// the paper walks through in Figs. 4, 5 and 13 — which transducer emits
// which activation or determination at which step.
type TraceEvent struct {
	Step int64   `json:"step"`
	Node string  `json:"node"`
	Kind MsgKind `json:"kind"`
	Msg  string  `json:"msg"`
	// TraceID is the stream-scoped trace identifier of the evaluation that
	// produced the event (EvalOptions.TraceID), empty when none was set. It
	// correlates trace records with the ingest request or stream they came
	// from when one tracer observes many evaluations.
	TraceID string `json:"trace,omitempty"`
}

// Tracer observes transducer emissions. Implementations must be cheap: the
// engine calls Trace inline for every emitted message when a tracer is
// attached (and not at all otherwise).
type Tracer interface {
	Trace(ev TraceEvent)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(TraceEvent)

// Trace implements Tracer.
func (f TracerFunc) Trace(ev TraceEvent) { f(ev) }

// TraceFilter selects a subset of trace events.
type TraceFilter struct {
	// Kinds restricts to the listed message kinds; empty means all.
	Kinds []MsgKind
	// Nodes restricts to transducers whose name contains one of the listed
	// substrings (e.g. "CH", "VC(q)"); empty means all.
	Nodes []string
}

// Match reports whether the event passes the filter.
func (f TraceFilter) Match(ev TraceEvent) bool {
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if ev.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Nodes) > 0 {
		ok := false
		for _, n := range f.Nodes {
			if containsFold(ev.Node, n) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// containsFold is a case-insensitive substring test without importing
// strings into every trace call (ASCII fold, transducer names are ASCII).
func containsFold(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	if len(sub) > len(s) {
		return false
	}
	lower := func(b byte) byte {
		if 'A' <= b && b <= 'Z' {
			return b + 'a' - 'A'
		}
		return b
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		j := 0
		for ; j < len(sub); j++ {
			if lower(s[i+j]) != lower(sub[j]) {
				break
			}
		}
		if j == len(sub) {
			return true
		}
	}
	return false
}

// FilterTracer wraps next so it only sees events matching the filter.
func FilterTracer(next Tracer, f TraceFilter) Tracer {
	return TracerFunc(func(ev TraceEvent) {
		if f.Match(ev) {
			next.Trace(ev)
		}
	})
}

// RingTracer retains the most recent events in a fixed-size ring buffer —
// bounded memory on unbounded streams, like every other structure of the
// engine. It is safe for concurrent use: the evaluation goroutine writes,
// any goroutine may call Events.
type RingTracer struct {
	mu    sync.Mutex
	buf   []TraceEvent
	next  int
	full  bool
	total int64
}

// NewRingTracer returns a ring tracer retaining the last capacity events
// (minimum 1).
func NewRingTracer(capacity int) *RingTracer {
	if capacity < 1 {
		capacity = 1
	}
	return &RingTracer{buf: make([]TraceEvent, capacity)}
}

// Trace implements Tracer.
func (r *RingTracer) Trace(ev TraceEvent) {
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *RingTracer) Events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]TraceEvent, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events ever traced, including evicted ones.
func (r *RingTracer) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns the number of events the ring has evicted to make room —
// the difference between everything ever traced and what Events still
// returns. A non-zero value means the writers overran the ring's capacity.
func (r *RingTracer) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	retained := int64(r.next)
	if r.full {
		retained = int64(len(r.buf))
	}
	return r.total - retained
}
