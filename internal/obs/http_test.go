package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/httpcheck"
)

// TestHandlerHygiene drives the observability endpoints through the shared
// handler checks: correct Content-Type on every body, GET-only methods, and
// extra metric sections rendered after the registry's own.
func TestHandlerHygiene(t *testing.T) {
	m := NewMetrics()
	m.Events.Add(7)
	extra := func(w io.Writer) { io.WriteString(w, "spex_server_demo 1\n") }
	mux := NewServeMux(m, extra)

	httpcheck.Do(t, mux, "GET", "/metrics", "").
		WantStatus(t, 200).
		WantContentType(t, "text/plain").
		WantBodyContains(t, "spex_events_total 7").
		WantBodyContains(t, "spex_server_demo 1") // the appended extra section
	httpcheck.Do(t, mux, "GET", "/vars", "").
		WantStatus(t, 200).
		WantContentType(t, "application/json").
		WantBodyContains(t, `"events"`)

	// The read-only endpoints refuse writes.
	httpcheck.Do(t, mux, "POST", "/metrics", "ignored").WantStatus(t, 405)
	httpcheck.Do(t, mux, "POST", "/vars", "ignored").WantStatus(t, 405)

	httpcheck.Do(t, mux, "GET", "/nope", "").WantStatus(t, 404)
}

// TestMetricsHandlerDrainsBody: a scraper that POSTs a body through a
// handler mounted without method patterns still gets its body consumed, so
// the connection stays reusable.
func TestMetricsHandlerDrainsBody(t *testing.T) {
	read := &countingBody{Reader: strings.NewReader(strings.Repeat("x", 1024))}
	h := MetricsHandler(NewMetrics())
	rec := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/metrics", read)
	h.ServeHTTP(rec, r)
	if read.n != 1024 {
		t.Errorf("request body drained %d bytes, want 1024", read.n)
	}
}

type countingBody struct {
	io.Reader
	n int
}

func (c *countingBody) Read(p []byte) (int, error) {
	n, err := c.Reader.Read(p)
	c.n += n
	return n, err
}
