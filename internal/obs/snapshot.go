package obs

import (
	"runtime"
	"time"

	"repro/internal/governor"
)

// Snapshot is a point-in-time view of a Metrics registry plus a heap
// sample. It is safe to take from any goroutine while the evaluation
// goroutine is streaming: every instrument is read atomically. Stream
// counters (events, elements) update on every document event; gauges, the
// output-side counters and the per-transducer message counts are published
// on a short stride, so they can lag by a few events — never by more, and
// the end-of-run sync makes the final snapshot exact.
type Snapshot struct {
	// Enabled is false when no registry was attached to the evaluation (the
	// uninstrumented fast path); all other fields are then zero.
	Enabled bool `json:"enabled"`
	// Uptime is the registry's age — for a per-run registry, the run time.
	Uptime time.Duration `json:"uptime_ns"`

	Events       int64   `json:"events"`
	Elements     int64   `json:"elements"`
	Bytes        int64   `json:"bytes"`
	EventsPerSec float64 `json:"events_per_sec"`
	Depth        int64   `json:"depth"`
	MaxDepth     int64   `json:"max_depth"`

	Matches     int64 `json:"matches"`
	Candidates  int64 `json:"candidates"`
	Dropped     int64 `json:"dropped"`
	Queued      int64 `json:"queued"`
	MaxQueued   int64 `json:"max_queued"`
	Buffered    int64 `json:"buffered_events"`
	MaxBuffered int64 `json:"max_buffered_events"`
	// EarlyTerms counts sinks whose answer became fixed before end of
	// stream (answer limits reached; earliest query answering).
	EarlyTerms int64 `json:"early_terminations"`

	// Ingest-path accounting of the most recent completed scan: arena tape
	// bytes/blocks/attr slots, scan buffer size, and the chunk count (1 for
	// a serial scan, the worker chunk count for a parallel chunk-scan).
	IngestArenaBytes  int64 `json:"ingest_arena_bytes"`
	IngestArenaBlocks int64 `json:"ingest_arena_blocks"`
	IngestArenaAttrs  int64 `json:"ingest_arena_attrs"`
	IngestBufferBytes int64 `json:"ingest_buffer_bytes"`
	IngestChunks      int64 `json:"ingest_chunks"`

	// Symbol-table instruments: interner size and cumulative lookup
	// hit/miss counts (cumulative for the table, which may outlive the run).
	SymtabSize   int64 `json:"symtab_size"`
	SymtabHits   int64 `json:"symtab_hits"`
	SymtabMisses int64 `json:"symtab_misses"`

	// MaxStack and MaxFormula are the maxima over all transducers: the
	// quantities Lemma V.2 bounds by the depth d and the formula size o(φ).
	MaxStack   int64 `json:"max_stack"`
	MaxFormula int64 `json:"max_formula"`

	// StepMessages summarizes the messages-per-event distribution.
	StepMessages HistogramSnapshot `json:"step_messages"`

	// Candidate-lifecycle distributions: events from candidate creation to
	// condition resolution (DecisionLatency) and to the candidate leaving
	// the sink (CandidateLifetime), plus wall-clock nanoseconds from the
	// last input read to answer emission (StreamLatency).
	DecisionLatency   HistogramSnapshot `json:"decision_latency"`
	CandidateLifetime HistogramSnapshot `json:"candidate_lifetime"`
	StreamLatency     HistogramSnapshot `json:"stream_latency_ns"`

	// LiveVars is the number of live condition variables in the pool.
	LiveVars int64 `json:"live_vars"`

	// Trace-ring accounting, when a RingTracer is associated with the
	// registry (SetTracerRing): events ever traced and events the ring has
	// evicted. Overruns are reported here instead of being silent.
	TraceTotal   int64 `json:"trace_total,omitempty"`
	TraceDropped int64 `json:"trace_dropped,omitempty"`

	// Resource-governor outcome: limit trips by resource and the actions
	// applied. All zero/empty when no governor was configured.
	GovernorTrips    []GovernorTripSnapshot `json:"governor_trips,omitempty"`
	GovernorFails    int64                  `json:"governor_fails"`
	GovernorDegrades int64                  `json:"governor_degrades"`
	GovernorSheds    int64                  `json:"governor_sheds"`

	// Query-set compiler (merged engine) pre-pass results: transducer
	// counts with and without merging, and the per-query static verdicts.
	SetcompileNaive     int64 `json:"setcompile_naive_transducers"`
	SetcompileMerged    int64 `json:"setcompile_merged_transducers"`
	SetcompilePruned    int64 `json:"setcompile_pruned_queries"`
	SetcompileCollapsed int64 `json:"setcompile_collapsed_queries"`
	SetcompileContained int64 `json:"setcompile_contained_queries"`

	Transducers []TransducerSnapshot `json:"transducers,omitempty"`

	// Shards holds the per-shard instruments of a parallel multi-query
	// (SDI) worker pool, when one is bound to the registry.
	Shards []ShardSnapshot `json:"shards,omitempty"`

	// Heap sample via runtime.ReadMemStats — the §VI memory observation.
	HeapAlloc  uint64 `json:"heap_alloc_bytes"`
	HeapSys    uint64 `json:"heap_sys_bytes"`
	TotalAlloc uint64 `json:"total_alloc_bytes"`
	NumGC      uint32 `json:"num_gc"`
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// snapshotHistogram captures one histogram. The count is read before the
// buckets, so a concurrent Observe can make the buckets sum slightly ahead
// of the count — never behind, and exact once the writer is done.
func snapshotHistogram(h *Histogram) HistogramSnapshot {
	return HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets()}
}

// TransducerSnapshot is one transducer's instruments at snapshot time.
type TransducerSnapshot struct {
	Name       string `json:"name"`
	InDoc      int64  `json:"in_doc"`
	InAct      int64  `json:"in_act"`
	InDet      int64  `json:"in_det"`
	OutDoc     int64  `json:"out_doc"`
	OutAct     int64  `json:"out_act"`
	OutDet     int64  `json:"out_det"`
	Stack      int64  `json:"stack"`
	MaxStack   int64  `json:"max_stack"`
	MaxFormula int64  `json:"max_formula"`
}

// GovernorTripSnapshot is the trip count of one governed resource at
// snapshot time; only resources with at least one trip are reported.
type GovernorTripSnapshot struct {
	Resource string `json:"resource"`
	Trips    int64  `json:"trips"`
}

// ShardSnapshot is one SDI shard's instruments at snapshot time.
type ShardSnapshot struct {
	Name     string `json:"name"`
	Subs     int64  `json:"subs"`
	Batches  int64  `json:"batches"`
	Events   int64  `json:"events"`
	Hits     int64  `json:"hits"`
	Queue    int64  `json:"queue"`
	MaxQueue int64  `json:"max_queue"`
	BusyNs   int64  `json:"busy_ns"`
}

// Snapshot captures the registry. The heap sample calls
// runtime.ReadMemStats, so polling at human frequencies (not per event) is
// the intended use.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Enabled:     true,
		Uptime:      m.Uptime(),
		Events:      m.Events.Load(),
		Elements:    m.Elements.Load(),
		Bytes:       m.Bytes.Load(),
		Depth:       m.Depth.Cur(),
		MaxDepth:    m.Depth.Max(),
		Matches:     m.Matches.Load(),
		Candidates:  m.Candidates.Load(),
		Dropped:     m.Dropped.Load(),
		Queued:      m.Queued.Cur(),
		MaxQueued:   m.Queued.Max(),
		Buffered:    m.Buffered.Cur(),
		MaxBuffered: m.Buffered.Max(),
		EarlyTerms:  m.EarlyTerm.Load(),

		IngestArenaBytes:  m.IngestArenaBytes.Load(),
		IngestArenaBlocks: m.IngestArenaBlocks.Load(),
		IngestArenaAttrs:  m.IngestArenaAttrs.Load(),
		IngestBufferBytes: m.IngestBufferBytes.Load(),
		IngestChunks:      m.IngestChunks.Load(),

		SymtabSize:        m.SymtabSize.Load(),
		SymtabHits:        m.SymtabHits.Load(),
		SymtabMisses:      m.SymtabMisses.Load(),
		StepMessages:      snapshotHistogram(&m.StepMessages),
		DecisionLatency:   snapshotHistogram(&m.DecisionLatency),
		CandidateLifetime: snapshotHistogram(&m.CandidateLifetime),
		StreamLatency:     snapshotHistogram(&m.StreamLatencyNs),
		LiveVars:          m.LiveVars.Load(),
		GovernorFails:     m.GovernorFails.Load(),
		GovernorDegrades:  m.GovernorDegrades.Load(),
		GovernorSheds:     m.GovernorSheds.Load(),

		SetcompileNaive:     m.SetcompileNaive.Load(),
		SetcompileMerged:    m.SetcompileMerged.Load(),
		SetcompilePruned:    m.SetcompilePruned.Load(),
		SetcompileCollapsed: m.SetcompileCollapsed.Load(),
		SetcompileContained: m.SetcompileContained.Load(),
	}
	if ring := m.TracerRing(); ring != nil {
		s.TraceTotal = ring.Total()
		s.TraceDropped = ring.Dropped()
	}
	for i := range m.GovernorTrips {
		if n := m.GovernorTrips[i].Load(); n > 0 {
			s.GovernorTrips = append(s.GovernorTrips, GovernorTripSnapshot{
				Resource: governor.Resource(i).String(),
				Trips:    n,
			})
		}
	}
	if secs := s.Uptime.Seconds(); secs > 0 {
		s.EventsPerSec = float64(s.Events) / secs
	}
	for _, tm := range m.Transducers() {
		ts := TransducerSnapshot{
			Name:       tm.Name,
			InDoc:      tm.In[KindDoc].Load(),
			InAct:      tm.In[KindActivation].Load(),
			InDet:      tm.In[KindDetermination].Load(),
			OutDoc:     tm.Out[KindDoc].Load(),
			OutAct:     tm.Out[KindActivation].Load(),
			OutDet:     tm.Out[KindDetermination].Load(),
			Stack:      tm.Stack.Cur(),
			MaxStack:   tm.Stack.Max(),
			MaxFormula: tm.Formula.Max(),
		}
		if ts.MaxStack > s.MaxStack {
			s.MaxStack = ts.MaxStack
		}
		if ts.MaxFormula > s.MaxFormula {
			s.MaxFormula = ts.MaxFormula
		}
		s.Transducers = append(s.Transducers, ts)
	}
	for _, sm := range m.Shards() {
		s.Shards = append(s.Shards, ShardSnapshot{
			Name:     sm.Name,
			Subs:     sm.Subs.Load(),
			Batches:  sm.Batches.Load(),
			Events:   sm.Events.Load(),
			Hits:     sm.Hits.Load(),
			Queue:    sm.Queue.Cur(),
			MaxQueue: sm.Queue.Max(),
			BusyNs:   sm.BusyNs.Load(),
		})
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.HeapAlloc = ms.HeapAlloc
	s.HeapSys = ms.HeapSys
	s.TotalAlloc = ms.TotalAlloc
	s.NumGC = ms.NumGC
	return s
}
