package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
)

// WriteJSON renders a snapshot as indented JSON (expvar-style).
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// PromSection accumulates Prometheus text-format metric families and writes
// them sorted by family name, samples in insertion order within a family —
// a deterministic exposition a golden test can compare byte for byte.
// Metric names are the full exported names ("spex_events_total"). Subsystems
// that render their own section next to this package's (the query server)
// build one too, so the whole scrape stays ordered.
type PromSection struct {
	families map[string]*promFamily
}

type promFamily struct {
	typ   string
	help  string
	lines []string
}

// NewPromSection returns an empty section.
func NewPromSection() *PromSection {
	return &PromSection{families: make(map[string]*promFamily)}
}

func (p *PromSection) family(name, typ, help string) *promFamily {
	f := p.families[name]
	if f == nil {
		f = &promFamily{typ: typ, help: help}
		p.families[name] = f
	}
	return f
}

// Counter adds an unlabelled counter sample.
func (p *PromSection) Counter(name, help string, v int64) {
	p.Sample(name, "counter", help, "", v)
}

// Gauge adds an unlabelled gauge sample.
func (p *PromSection) Gauge(name, help string, v int64) {
	p.Sample(name, "gauge", help, "", v)
}

// Sample adds one sample; labels is the rendered label list without braces
// (e.g. `shard="shard-0"`, built with Label), empty for none.
func (p *PromSection) Sample(name, typ, help, labels string, v int64) {
	f := p.family(name, typ, help)
	if labels == "" {
		f.lines = append(f.lines, fmt.Sprintf("%s %d", name, v))
		return
	}
	f.lines = append(f.lines, fmt.Sprintf("%s{%s} %d", name, labels, v))
}

// Histogram adds a histogram family: cumulative _bucket samples plus _sum
// and _count.
func (p *PromSection) Histogram(name, help string, h HistogramSnapshot) {
	f := p.family(name, "histogram", help)
	for _, b := range h.Buckets {
		le := fmt.Sprintf("%d", b.Le)
		if b.Le >= int64(1)<<62-1 {
			le = "+Inf"
		}
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket{le=%q} %d", name, le, b.Count))
	}
	f.lines = append(f.lines,
		fmt.Sprintf("%s_sum %d", name, h.Sum),
		fmt.Sprintf("%s_count %d", name, h.Count))
}

// Render writes the section: families sorted by name, each with its HELP
// and TYPE header.
func (p *PromSection) Render(w io.Writer) {
	names := make([]string, 0, len(p.families))
	for name := range p.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := p.families[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.typ)
		for _, line := range f.lines {
			fmt.Fprintln(w, line)
		}
	}
}

// Label renders one key="value" label pair with the value escaped; join
// several with commas for Sample's labels argument.
func Label(key, value string) string {
	return key + `="` + escapeLabel(value) + `"`
}

var (
	buildOnce sync.Once
	buildGo   string
	buildRev  string
)

// BuildInfo returns the running binary's Go version and VCS revision (from
// runtime/debug.ReadBuildInfo), "unknown" when the binary was built without
// VCS stamping — e.g. via go run or from a non-repository checkout.
func BuildInfo() (goVersion, revision string) {
	buildOnce.Do(func() {
		buildGo = runtime.Version()
		buildRev = "unknown"
		if bi, ok := debug.ReadBuildInfo(); ok {
			if bi.GoVersion != "" {
				buildGo = bi.GoVersion
			}
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && s.Value != "" {
					buildRev = s.Value
				}
			}
		}
	})
	return buildGo, buildRev
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format, metric names prefixed spex_, families sorted by name so scrapes
// are deterministic.
func WritePrometheus(w io.Writer, s Snapshot) {
	p := NewPromSection()
	goVersion, revision := BuildInfo()
	p.Sample("spex_build_info", "gauge", "build metadata of the serving binary (constant 1)",
		Label("go_version", goVersion)+","+Label("revision", revision), 1)

	p.Counter("spex_events_total", "document-stream events processed", s.Events)
	p.Counter("spex_elements_total", "element start messages processed", s.Elements)
	p.Counter("spex_bytes_total", "input bytes consumed", s.Bytes)
	p.Gauge("spex_depth", "current document depth d", s.Depth)
	p.Gauge("spex_depth_max", "maximum document depth d", s.MaxDepth)
	p.Counter("spex_matches_total", "answers flushed to the sink", s.Matches)
	p.Counter("spex_candidates_total", "answer candidates proposed", s.Candidates)
	p.Counter("spex_dropped_total", "candidates whose condition became false", s.Dropped)
	p.Gauge("spex_queued", "candidates awaiting determination or document order", s.Queued)
	p.Gauge("spex_queued_max", "maximum simultaneously queued candidates", s.MaxQueued)
	p.Gauge("spex_buffered_events", "buffered answer-content events", s.Buffered)
	p.Gauge("spex_buffered_events_max", "maximum simultaneously buffered content events", s.MaxBuffered)
	p.Counter("spex_early_terminations_total", "sinks whose answer became fixed before end of stream (limit reached)", s.EarlyTerms)
	p.Gauge("spex_ingest_arena_bytes", "arena tape bytes carved by the most recent completed scan", s.IngestArenaBytes)
	p.Gauge("spex_ingest_arena_blocks", "arena tape blocks in use after the most recent completed scan", s.IngestArenaBlocks)
	p.Gauge("spex_ingest_arena_attrs", "attribute slots carved from the attr arena by the most recent completed scan", s.IngestArenaAttrs)
	p.Gauge("spex_ingest_buffer_bytes", "scan buffer size of the most recent completed scan", s.IngestBufferBytes)
	p.Gauge("spex_ingest_chunks", "chunks of the most recent completed scan (1 = serial, more = parallel chunk-scan)", s.IngestChunks)
	p.Gauge("spex_symtab_size", "distinct label names interned in the symbol table", s.SymtabSize)
	p.Counter("spex_symtab_hits_total", "symbol-table lookups answered from the read-mostly snapshot", s.SymtabHits)
	p.Counter("spex_symtab_misses_total", "symbol-table lookups that inserted a new name", s.SymtabMisses)
	p.Gauge("spex_stack_max", "maximum transducer stack entries (bounded by d, Lemma V.2)", s.MaxStack)
	p.Gauge("spex_formula_max", "maximum condition-formula size (bounded by o(phi))", s.MaxFormula)
	p.Gauge("spex_live_vars", "live condition variables in the pool", s.LiveVars)
	p.Gauge("spex_heap_alloc_bytes", "live heap sample", int64(s.HeapAlloc))

	p.Counter("spex_trace_events_total", "trace events recorded by the associated ring tracer", s.TraceTotal)
	p.Counter("spex_trace_dropped_total", "trace events evicted by the ring tracer (overrun)", s.TraceDropped)

	p.Counter("spex_governor_fails_total", "runs terminated by the resource governor (policy fail)", s.GovernorFails)
	p.Counter("spex_governor_degrades_total", "sinks degraded to count-only mode (policy degrade)", s.GovernorDegrades)
	p.Counter("spex_governor_sheds_total", "subscriptions shed by the resource governor (policy shed)", s.GovernorSheds)
	for _, g := range s.GovernorTrips {
		p.Sample("spex_governor_trips_total", "counter", "resource-limit trips by governed resource",
			Label("resource", g.Resource), g.Trips)
	}

	p.Gauge("spex_setcompile_naive_transducers", "transducers the query set would need without merging", s.SetcompileNaive)
	p.Gauge("spex_setcompile_merged_transducers", "transducers in the merged query-set network", s.SetcompileMerged)
	p.Gauge("spex_setcompile_pruned_queries", "queries pruned as statically unsatisfiable", s.SetcompilePruned)
	p.Gauge("spex_setcompile_collapsed_queries", "queries collapsed onto an equivalent representative's sink", s.SetcompileCollapsed)
	p.Gauge("spex_setcompile_contained_queries", "one-way query containments detected by the set compiler", s.SetcompileContained)

	p.Histogram("spex_step_messages", "messages delivered per document event", s.StepMessages)
	p.Histogram("spex_decision_latency_events", "stream events from candidate creation to condition resolution", s.DecisionLatency)
	p.Histogram("spex_candidate_lifetime_events", "stream events from candidate creation to leaving the sink", s.CandidateLifetime)
	p.Histogram("spex_stream_latency_ns", "nanoseconds from last input read to answer emission", s.StreamLatency)

	for _, sh := range s.Shards {
		shard := Label("shard", sh.Name)
		p.Sample("spex_shard_batches_total", "counter", "event batches evaluated per SDI shard", shard, sh.Batches)
		p.Sample("spex_shard_events_total", "counter", "stream events evaluated per SDI shard", shard, sh.Events)
		p.Sample("spex_shard_hits_total", "counter", "answers produced per SDI shard", shard, sh.Hits)
		p.Sample("spex_shard_busy_ns_total", "counter", "nanoseconds spent evaluating batches per SDI shard", shard, sh.BusyNs)
		p.Sample("spex_shard_subs", "gauge", "subscriptions assigned per SDI shard", shard, sh.Subs)
		p.Sample("spex_shard_queue", "gauge", "inbound batch-queue depth per SDI shard", shard, sh.Queue)
		p.Sample("spex_shard_queue_max", "gauge", "maximum inbound batch-queue depth per SDI shard", shard, sh.MaxQueue)
	}

	for _, t := range s.Transducers {
		name := t.Name
		for _, d := range []struct {
			dir string
			doc int64
			act int64
			det int64
		}{{"in", t.InDoc, t.InAct, t.InDet}, {"out", t.OutDoc, t.OutAct, t.OutDet}} {
			base := Label("transducer", name) + "," + Label("dir", d.dir) + ","
			p.Sample("spex_transducer_messages_total", "counter", "messages by transducer, direction and kind", base+Label("kind", "doc"), d.doc)
			p.Sample("spex_transducer_messages_total", "counter", "messages by transducer, direction and kind", base+Label("kind", "act"), d.act)
			p.Sample("spex_transducer_messages_total", "counter", "messages by transducer, direction and kind", base+Label("kind", "det"), d.det)
		}
		tl := Label("transducer", name)
		p.Sample("spex_transducer_stack", "gauge", "current depth/condition stack entries per transducer", tl, t.Stack)
		p.Sample("spex_transducer_stack_max", "gauge", "maximum depth/condition stack entries per transducer", tl, t.MaxStack)
		p.Sample("spex_transducer_formula_max", "gauge", "maximum condition-formula size per transducer", tl, t.MaxFormula)
	}

	p.Render(w)
}

// escapeLabel sanitizes a Prometheus label value (backslash, quote,
// newline).
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// EscapeLabel sanitizes a Prometheus label value, for subsystems (the query
// server) that render their own metric sections next to this package's.
func EscapeLabel(s string) string { return escapeLabel(s) }

// MetricsHandler serves the registry in the Prometheus text format. Extra
// section writers, if any, are rendered after the registry's own metrics on
// the same endpoint — a serving layer appends its spex_server_* section
// without a second scrape target.
func MetricsHandler(m *Metrics, extras ...func(io.Writer)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		drainBody(r)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, m.Snapshot())
		for _, extra := range extras {
			extra(w)
		}
	})
}

// JSONHandler serves the registry as one JSON document (expvar-style).
func JSONHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		drainBody(r)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteJSON(w, m.Snapshot())
	})
}

// drainBody consumes a (bounded) request body the handler has no use for,
// so the keep-alive connection stays reusable even when a scraper POSTs.
func drainBody(r *http.Request) {
	if r.Body != nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(r.Body, 64<<10))
	}
}

// NewServeMux returns a mux serving the registry and the runtime profiler:
//
//	/metrics      Prometheus text format (plus any extra sections)
//	/vars         snapshot as JSON (expvar-style)
//	/debug/pprof  net/http/pprof
func NewServeMux(m *Metrics, extras ...func(io.Writer)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", MetricsHandler(m, extras...))
	mux.Handle("GET /vars", JSONHandler(m))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
