package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
)

// WriteJSON renders a snapshot as indented JSON (expvar-style).
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format, metric names prefixed spex_.
func WritePrometheus(w io.Writer, s Snapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP spex_%s %s\n# TYPE spex_%s counter\nspex_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP spex_%s %s\n# TYPE spex_%s gauge\nspex_%s %d\n", name, help, name, name, v)
	}
	counter("events_total", "document-stream events processed", s.Events)
	counter("elements_total", "element start messages processed", s.Elements)
	counter("bytes_total", "input bytes consumed", s.Bytes)
	gauge("depth", "current document depth d", s.Depth)
	gauge("depth_max", "maximum document depth d", s.MaxDepth)
	counter("matches_total", "answers flushed to the sink", s.Matches)
	counter("candidates_total", "answer candidates proposed", s.Candidates)
	counter("dropped_total", "candidates whose condition became false", s.Dropped)
	gauge("queued", "candidates awaiting determination or document order", s.Queued)
	gauge("queued_max", "maximum simultaneously queued candidates", s.MaxQueued)
	gauge("buffered_events", "buffered answer-content events", s.Buffered)
	gauge("buffered_events_max", "maximum simultaneously buffered content events", s.MaxBuffered)
	gauge("symtab_size", "distinct label names interned in the symbol table", s.SymtabSize)
	counter("symtab_hits_total", "symbol-table lookups answered from the read-mostly snapshot", s.SymtabHits)
	counter("symtab_misses_total", "symbol-table lookups that inserted a new name", s.SymtabMisses)
	gauge("stack_max", "maximum transducer stack entries (bounded by d, Lemma V.2)", s.MaxStack)
	gauge("formula_max", "maximum condition-formula size (bounded by o(phi))", s.MaxFormula)
	gauge("heap_alloc_bytes", "live heap sample", int64(s.HeapAlloc))

	counter("governor_fails_total", "runs terminated by the resource governor (policy fail)", s.GovernorFails)
	counter("governor_degrades_total", "sinks degraded to count-only mode (policy degrade)", s.GovernorDegrades)
	counter("governor_sheds_total", "subscriptions shed by the resource governor (policy shed)", s.GovernorSheds)
	if len(s.GovernorTrips) > 0 {
		fmt.Fprintf(w, "# HELP spex_governor_trips_total resource-limit trips by governed resource\n# TYPE spex_governor_trips_total counter\n")
		for _, g := range s.GovernorTrips {
			fmt.Fprintf(w, "spex_governor_trips_total{resource=%q} %d\n", escapeLabel(g.Resource), g.Trips)
		}
	}

	fmt.Fprintf(w, "# HELP spex_step_messages messages delivered per document event\n# TYPE spex_step_messages histogram\n")
	for _, b := range s.StepMessages.Buckets {
		le := fmt.Sprintf("%d", b.Le)
		if b.Le >= int64(1)<<62-1 {
			le = "+Inf"
		}
		fmt.Fprintf(w, "spex_step_messages_bucket{le=%q} %d\n", le, b.Count)
	}
	fmt.Fprintf(w, "spex_step_messages_sum %d\nspex_step_messages_count %d\n", s.StepMessages.Sum, s.StepMessages.Count)

	if len(s.Shards) > 0 {
		fmt.Fprintf(w, "# HELP spex_shard_batches_total event batches evaluated per SDI shard\n# TYPE spex_shard_batches_total counter\n")
		for _, sh := range s.Shards {
			name := escapeLabel(sh.Name)
			fmt.Fprintf(w, "spex_shard_batches_total{shard=%q} %d\n", name, sh.Batches)
			fmt.Fprintf(w, "spex_shard_events_total{shard=%q} %d\n", name, sh.Events)
			fmt.Fprintf(w, "spex_shard_hits_total{shard=%q} %d\n", name, sh.Hits)
			fmt.Fprintf(w, "spex_shard_busy_ns_total{shard=%q} %d\n", name, sh.BusyNs)
			fmt.Fprintf(w, "spex_shard_subs{shard=%q} %d\n", name, sh.Subs)
			fmt.Fprintf(w, "spex_shard_queue{shard=%q} %d\n", name, sh.Queue)
			fmt.Fprintf(w, "spex_shard_queue_max{shard=%q} %d\n", name, sh.MaxQueue)
		}
	}

	for _, t := range s.Transducers {
		name := escapeLabel(t.Name)
		for _, d := range []struct {
			dir string
			doc int64
			act int64
			det int64
		}{{"in", t.InDoc, t.InAct, t.InDet}, {"out", t.OutDoc, t.OutAct, t.OutDet}} {
			fmt.Fprintf(w, "spex_transducer_messages_total{transducer=\"%s\",dir=\"%s\",kind=\"doc\"} %d\n", name, d.dir, d.doc)
			fmt.Fprintf(w, "spex_transducer_messages_total{transducer=\"%s\",dir=\"%s\",kind=\"act\"} %d\n", name, d.dir, d.act)
			fmt.Fprintf(w, "spex_transducer_messages_total{transducer=\"%s\",dir=\"%s\",kind=\"det\"} %d\n", name, d.dir, d.det)
		}
		fmt.Fprintf(w, "spex_transducer_stack{transducer=\"%s\"} %d\n", name, t.Stack)
		fmt.Fprintf(w, "spex_transducer_stack_max{transducer=\"%s\"} %d\n", name, t.MaxStack)
		fmt.Fprintf(w, "spex_transducer_formula_max{transducer=\"%s\"} %d\n", name, t.MaxFormula)
	}
}

// escapeLabel sanitizes a Prometheus label value (backslash, quote,
// newline).
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// EscapeLabel sanitizes a Prometheus label value, for subsystems (the query
// server) that render their own metric sections next to this package's.
func EscapeLabel(s string) string { return escapeLabel(s) }

// MetricsHandler serves the registry in the Prometheus text format. Extra
// section writers, if any, are rendered after the registry's own metrics on
// the same endpoint — a serving layer appends its spex_server_* section
// without a second scrape target.
func MetricsHandler(m *Metrics, extras ...func(io.Writer)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		drainBody(r)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, m.Snapshot())
		for _, extra := range extras {
			extra(w)
		}
	})
}

// JSONHandler serves the registry as one JSON document (expvar-style).
func JSONHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		drainBody(r)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteJSON(w, m.Snapshot())
	})
}

// drainBody consumes a (bounded) request body the handler has no use for,
// so the keep-alive connection stays reusable even when a scraper POSTs.
func drainBody(r *http.Request) {
	if r.Body != nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(r.Body, 64<<10))
	}
}

// NewServeMux returns a mux serving the registry and the runtime profiler:
//
//	/metrics      Prometheus text format (plus any extra sections)
//	/vars         snapshot as JSON (expvar-style)
//	/debug/pprof  net/http/pprof
func NewServeMux(m *Metrics, extras ...func(io.Writer)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", MetricsHandler(m, extras...))
	mux.Handle("GET /vars", JSONHandler(m))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
