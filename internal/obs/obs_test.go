package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeWatermark(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter: %d", c.Load())
	}
	var g Gauge
	g.Set(7)
	if g.Load() != 7 {
		t.Errorf("gauge: %d", g.Load())
	}
	var w Watermark
	w.Set(3)
	w.Set(9)
	w.Set(2)
	if w.Cur() != 2 || w.Max() != 9 {
		t.Errorf("watermark: cur=%d max=%d", w.Cur(), w.Max())
	}
	w.NoteMax(20)
	if w.Cur() != 2 || w.Max() != 20 {
		t.Errorf("after NoteMax: cur=%d max=%d", w.Cur(), w.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 100, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("count: %d", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+100+1<<40 {
		t.Errorf("sum: %d", h.Sum())
	}
	bs := h.Buckets()
	if len(bs) != histBuckets {
		t.Fatalf("buckets: %d", len(bs))
	}
	// Bucket le=0 holds the single zero; the last bucket is cumulative over
	// everything.
	if bs[0].Le != 0 || bs[0].Count != 1 {
		t.Errorf("zero bucket: %+v", bs[0])
	}
	if bs[len(bs)-1].Count != 7 {
		t.Errorf("last bucket not cumulative: %+v", bs[len(bs)-1])
	}
	// Cumulative counts never decrease.
	for i := 1; i < len(bs); i++ {
		if bs[i].Count < bs[i-1].Count {
			t.Errorf("bucket %d decreases: %d < %d", i, bs[i].Count, bs[i-1].Count)
		}
	}
}

func TestSnapshotConcurrentWriters(t *testing.T) {
	m := NewMetrics()
	tm := NewTransducerMetrics("0:CH(a)")
	m.SetTransducers([]*TransducerMetrics{tm})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Events.Inc()
			m.Depth.Set(int64(i % 8))
			tm.Out[KindActivation].Inc()
			tm.Stack.Set(int64(i % 5))
		}
	}()
	for i := 0; i < 50; i++ {
		s := m.Snapshot()
		if !s.Enabled || s.Events < 0 {
			t.Fatalf("snapshot: %+v", s)
		}
		if len(s.Transducers) != 1 || s.Transducers[0].Name != "0:CH(a)" {
			t.Fatalf("transducers: %+v", s.Transducers)
		}
	}
	close(stop)
	wg.Wait()
}

func TestShardMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	a, b := NewShardMetrics("shard-0"), NewShardMetrics("shard-1")
	m.SetShards([]*ShardMetrics{a, b})
	a.Subs.Set(3)
	a.Batches.Add(5)
	a.Events.Add(640)
	a.Hits.Add(12)
	a.Queue.Set(2)
	a.Queue.Set(1)
	a.BusyNs.Add(1_000_000)
	b.Subs.Set(2)

	s := m.Snapshot()
	if len(s.Shards) != 2 {
		t.Fatalf("shards: %+v", s.Shards)
	}
	got := s.Shards[0]
	if got.Name != "shard-0" || got.Subs != 3 || got.Batches != 5 || got.Events != 640 ||
		got.Hits != 12 || got.Queue != 1 || got.MaxQueue != 2 || got.BusyNs != 1_000_000 {
		t.Fatalf("shard-0 snapshot: %+v", got)
	}
	if s.Shards[1].Name != "shard-1" || s.Shards[1].Subs != 2 {
		t.Fatalf("shard-1 snapshot: %+v", s.Shards[1])
	}

	// The Prometheus rendering carries the per-shard series.
	var sb strings.Builder
	WritePrometheus(&sb, s)
	for _, want := range []string{
		`spex_shard_batches_total{shard="shard-0"} 5`,
		`spex_shard_events_total{shard="shard-0"} 640`,
		`spex_shard_hits_total{shard="shard-0"} 12`,
		`spex_shard_queue_max{shard="shard-0"} 2`,
		`spex_shard_subs{shard="shard-1"} 2`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

func TestRingTracerWraparound(t *testing.T) {
	r := NewRingTracer(3)
	for i := int64(1); i <= 5; i++ {
		r.Trace(TraceEvent{Step: i, Node: "CH(a)", Kind: KindActivation, Msg: "[true]"})
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Step != 3 || evs[2].Step != 5 {
		t.Fatalf("ring events: %+v", evs)
	}
	if r.Total() != 5 {
		t.Errorf("total: %d", r.Total())
	}
}

func TestTraceFilter(t *testing.T) {
	var got []TraceEvent
	tr := FilterTracer(TracerFunc(func(ev TraceEvent) { got = append(got, ev) }),
		TraceFilter{Kinds: []MsgKind{KindActivation}, Nodes: []string{"vc"}})
	tr.Trace(TraceEvent{Node: "VC(q)", Kind: KindActivation})   // passes
	tr.Trace(TraceEvent{Node: "VC(q)", Kind: KindDoc})          // wrong kind
	tr.Trace(TraceEvent{Node: "CH(a)", Kind: KindActivation})   // wrong node
	tr.Trace(TraceEvent{Node: "3:VC(q)", Kind: KindActivation}) // substring match
	if len(got) != 2 {
		t.Fatalf("filtered: %+v", got)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	m := NewMetrics()
	m.Events.Add(42)
	m.Depth.Set(3)
	tm := NewTransducerMetrics(`1:CH("x")`)
	tm.Out[KindDetermination].Add(7)
	m.SetTransducers([]*TransducerMetrics{tm})
	m.StepMessages.Observe(5)

	mux := NewServeMux(m)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	prom := get("/metrics")
	for _, want := range []string{
		"spex_events_total 42",
		"spex_depth 3",
		"spex_step_messages_count 1",
		`spex_transducer_messages_total{transducer="1:CH(\"x\")",dir="out",kind="det"} 7`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom)
		}
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/vars")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Events != 42 || snap.Depth != 3 || len(snap.Transducers) != 1 {
		t.Errorf("json snapshot: %+v", snap)
	}

	if !strings.Contains(get("/debug/pprof/cmdline"), "") {
		t.Error("pprof endpoint unreachable")
	}
}

func TestCountingReader(t *testing.T) {
	var c Counter
	r := &CountingReader{R: strings.NewReader("hello world"), C: &c}
	buf := make([]byte, 4)
	total := 0
	for {
		n, err := r.Read(buf)
		total += n
		if err != nil {
			break
		}
	}
	if c.Load() != int64(total) || c.Load() != 11 {
		t.Errorf("counted %d, read %d", c.Load(), total)
	}
}
