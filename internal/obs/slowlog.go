package obs

import "sync"

// SlowStream is one slow-query-log record: a stream whose evaluation took at
// least the configured threshold. The serving layer records one per slow
// ingest; Label identifies the stream (for spexd, "channel/session").
type SlowStream struct {
	// Trace is the stream-scoped trace ID of the request, when one was set.
	Trace string `json:"trace,omitempty"`
	// Label identifies the stream, e.g. "logs/sess-12".
	Label string `json:"label"`
	// Bytes is the input size consumed by the evaluation.
	Bytes int64 `json:"bytes"`
	// Matches is the number of answers the stream produced.
	Matches int64 `json:"matches"`
	// ElapsedNs is the evaluation's wall-clock duration in nanoseconds.
	ElapsedNs int64 `json:"elapsed_ns"`
	// UnixNano is when the evaluation finished.
	UnixNano int64 `json:"unix_nano"`
	// Err carries the evaluation error, if the stream failed.
	Err string `json:"err,omitempty"`
}

// SlowRing retains the most recent slow-stream records in a fixed-size ring
// — the slow-query log stays bounded no matter how many streams cross the
// threshold. Safe for concurrent use from any goroutine.
type SlowRing struct {
	mu    sync.Mutex
	buf   []SlowStream
	next  int
	full  bool
	total int64
}

// NewSlowRing returns a ring retaining the last capacity records (minimum 1).
func NewSlowRing(capacity int) *SlowRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowRing{buf: make([]SlowStream, capacity)}
}

// Add records one slow stream, evicting the oldest record when full.
func (r *SlowRing) Add(s SlowStream) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Entries returns the retained records, oldest first.
func (r *SlowRing) Entries() []SlowStream {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]SlowStream, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]SlowStream, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of records ever added, including evicted ones.
func (r *SlowRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
