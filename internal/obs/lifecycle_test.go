package obs

import (
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestHistogramConcurrentHammer exercises a histogram under concurrent
// writers and a reader taking bucket snapshots; run under -race it proves
// Observe/Count/Sum/Buckets need no external locking, and at the end the
// totals must be exact.
func TestHistogramConcurrentHammer(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perG    = 10_000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if h.Count() < 0 || h.Sum() < 0 {
				t.Error("negative count or sum mid-hammer")
				return
			}
			bs := h.Buckets()
			for i := 1; i < len(bs); i++ {
				if bs[i].Count < bs[i-1].Count {
					t.Errorf("cumulative buckets decrease at %d", i)
					return
				}
			}
		}
	}()
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if h.Count() != writers*perG {
		t.Errorf("count after hammer: %d, want %d", h.Count(), writers*perG)
	}
	const n = int64(writers * perG)
	if want := n * (n - 1) / 2; h.Sum() != want {
		t.Errorf("sum after hammer: %d, want %d", h.Sum(), want)
	}
	bs := h.Buckets()
	if bs[len(bs)-1].Count != writers*perG {
		t.Errorf("last bucket not cumulative total: %+v", bs[len(bs)-1])
	}
}

// TestHistogramBatch checks the unsynchronised accumulator: observations
// flushed into a shared histogram land in exactly the buckets a direct
// Observe would pick, the flush resets the batch, and a flush of an empty
// batch is a no-op.
func TestHistogramBatch(t *testing.T) {
	values := []int64{0, 1, 2, 3, 4, 100, -5, 1 << 40}

	var direct Histogram
	for _, v := range values {
		direct.Observe(v)
	}

	var batch HistogramBatch
	var flushed Histogram
	for _, v := range values {
		batch.Observe(v)
	}
	batch.FlushTo(&flushed)

	if flushed.Count() != direct.Count() || flushed.Sum() != direct.Sum() {
		t.Errorf("flushed count/sum %d/%d, direct %d/%d",
			flushed.Count(), flushed.Sum(), direct.Count(), direct.Sum())
	}
	db, fb := direct.Buckets(), flushed.Buckets()
	for i := range db {
		if db[i] != fb[i] {
			t.Errorf("bucket %d: flushed %+v, direct %+v", i, fb[i], db[i])
		}
	}

	// The flush drained the batch: a second flush must change nothing.
	before := flushed.Count()
	batch.FlushTo(&flushed)
	if flushed.Count() != before {
		t.Errorf("empty flush changed count: %d -> %d", before, flushed.Count())
	}
}

// TestSlowRingWraparound fills a small ring past capacity and checks the
// retained window is the most recent records in oldest-first order, with
// Total still counting evictees.
func TestSlowRingWraparound(t *testing.T) {
	r := NewSlowRing(3)
	if got := r.Entries(); len(got) != 0 {
		t.Fatalf("fresh ring not empty: %+v", got)
	}
	for i := int64(1); i <= 5; i++ {
		r.Add(SlowStream{Label: "logs/sess", ElapsedNs: i})
	}
	got := r.Entries()
	if len(got) != 3 || got[0].ElapsedNs != 3 || got[1].ElapsedNs != 4 || got[2].ElapsedNs != 5 {
		t.Fatalf("ring entries: %+v", got)
	}
	if r.Total() != 5 {
		t.Errorf("total: %d", r.Total())
	}

	// A non-positive capacity clamps to one retained record.
	one := NewSlowRing(0)
	one.Add(SlowStream{Label: "a"})
	one.Add(SlowStream{Label: "b"})
	if got := one.Entries(); len(got) != 1 || got[0].Label != "b" {
		t.Errorf("clamped ring: %+v", got)
	}
}

// TestRingTracerDropped checks the evicted-event accounting: zero before the
// ring wraps, and exactly total-capacity after.
func TestRingTracerDropped(t *testing.T) {
	r := NewRingTracer(3)
	r.Trace(TraceEvent{Step: 1})
	r.Trace(TraceEvent{Step: 2})
	if r.Dropped() != 0 {
		t.Errorf("dropped before wrap: %d", r.Dropped())
	}
	for i := int64(3); i <= 5; i++ {
		r.Trace(TraceEvent{Step: i})
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped after wrap: %d, want 2", r.Dropped())
	}
	if r.Total() != 5 {
		t.Errorf("total: %d", r.Total())
	}
}

// TestSnapshotTraceDropped checks the tracer's eviction count surfaces in
// the snapshot and the Prometheus exposition.
func TestSnapshotTraceDropped(t *testing.T) {
	m := NewMetrics()
	r := NewRingTracer(2)
	m.SetTracerRing(r)
	for i := int64(1); i <= 5; i++ {
		r.Trace(TraceEvent{Step: i})
	}
	s := m.Snapshot()
	if s.TraceTotal != 5 || s.TraceDropped != 3 {
		t.Errorf("snapshot trace stats: total=%d dropped=%d", s.TraceTotal, s.TraceDropped)
	}
	var sb strings.Builder
	WritePrometheus(&sb, s)
	if !strings.Contains(sb.String(), "spex_trace_dropped_total 3") {
		t.Errorf("exposition missing trace drop counter:\n%s", sb.String())
	}
}

// TestPrometheusBuildInfoAndOrder checks the exposition carries the build
// metadata series and renders families in sorted order, so scrapes diff
// cleanly between runs and binaries.
func TestPrometheusBuildInfoAndOrder(t *testing.T) {
	m := NewMetrics()
	m.Events.Add(1)
	m.DecisionLatency.Observe(4)
	m.CandidateLifetime.Observe(9)
	m.StreamLatencyNs.Observe(1_000_000)

	var sb strings.Builder
	WritePrometheus(&sb, m.Snapshot())
	out := sb.String()

	if !regexp.MustCompile(`spex_build_info\{go_version="[^"]+",revision="[^"]+"\} 1`).MatchString(out) {
		t.Errorf("exposition missing spex_build_info:\n%s", out)
	}
	for _, want := range []string{
		"spex_decision_latency_events_count 1",
		"spex_candidate_lifetime_events_count 1",
		"spex_stream_latency_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Families appear sorted by name: the TYPE headers are the family order.
	var fams []string
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fams = append(fams, strings.Fields(rest)[0])
		}
	}
	if len(fams) < 10 {
		t.Fatalf("suspiciously few families: %v", fams)
	}
	if !sort.StringsAreSorted(fams) {
		t.Errorf("families not sorted: %v", fams)
	}
}
