package xmlstream

import (
	"bufio"
	"io"
	"strings"
)

// Writer serializes events back to XML text. It is the inverse of Scanner
// for the feature subset this package models (attributes round-trip; PIs and
// comments do not survive scanning); the output transducer uses it to emit
// result fragments progressively.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<15)}
}

// WriteEvent serializes one event. StartDocument and EndDocument produce no
// output (they delimit the stream, not the text). Errors are sticky.
func (w *Writer) WriteEvent(ev Event) error {
	if w.err != nil {
		return w.err
	}
	switch ev.Kind {
	case StartElement:
		if len(ev.Attrs) == 0 {
			w.err = w.writeAll("<", ev.Name, ">")
			break
		}
		w.err = w.writeAll("<", ev.Name)
		for _, a := range ev.Attrs {
			if w.err != nil {
				break
			}
			w.err = w.writeAll(" ", a.Name, `="`, EscapeAttr(a.Value), `"`)
		}
		if w.err == nil {
			w.err = w.writeAll(">")
		}
	case EndElement:
		w.err = w.writeAll("</", ev.Name, ">")
	case Text:
		w.err = w.writeAll(EscapeText(ev.Data))
	}
	return w.err
}

func (w *Writer) writeAll(parts ...string) error {
	for _, p := range parts {
		if _, err := w.w.WriteString(p); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes any buffered output to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// EscapeText escapes the characters that are markup-significant in character
// data.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// EscapeAttr escapes the characters that are markup-significant inside a
// double-quoted attribute value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `<&"`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// Serialize renders a sequence of events as an XML string.
func Serialize(events []Event) string {
	var sb strings.Builder
	w := NewWriter(&sb)
	for _, ev := range events {
		w.WriteEvent(ev)
	}
	w.Flush()
	return sb.String()
}
