package xmlstream

import (
	"errors"
	"fmt"
)

// Limits bounds what a single document may make the Scanner buffer. The
// scanner's memory is meant to stay proportional to the document depth
// (§II.1); without caps, two inputs break that promise — a single oversized
// token (a pathological tag name, text run or CDATA section forces the
// token buffer to the token's size) and unbounded nesting (the
// well-formedness stack grows with the depth). Limits turns both into typed
// errors instead of unbounded growth. Caps are on by default; see
// DefaultMaxTokenBytes and DefaultMaxDepth.
type Limits struct {
	// MaxTokenBytes caps the bytes one token may occupy in scanner memory:
	// an element name, a contiguous text run, or a CDATA section. Zero
	// selects DefaultMaxTokenBytes; negative disables the cap.
	MaxTokenBytes int
	// MaxDepth caps the element nesting depth. Zero selects
	// DefaultMaxDepth; negative disables the cap.
	MaxDepth int
}

const (
	// DefaultMaxTokenBytes is the default single-token cap: far above any
	// sane document's names and text runs, far below what would let one
	// token exhaust a serving process.
	DefaultMaxTokenBytes = 16 << 20
	// DefaultMaxDepth is the default nesting cap: two orders of magnitude
	// above the deepest adversarial corpus document (10k), so legitimate
	// deep documents pass while a nesting bomb meets a typed error, not an
	// unbounded stack.
	DefaultMaxDepth = 1 << 20
)

// withDefaults resolves the zero and negative conventions.
func (l Limits) withDefaults() Limits {
	resolve := func(v *int, d int) {
		if *v == 0 {
			*v = d
		} else if *v < 0 {
			*v = 0 // 0 means "no cap" once resolved
		}
	}
	resolve(&l.MaxTokenBytes, DefaultMaxTokenBytes)
	resolve(&l.MaxDepth, DefaultMaxDepth)
	return l
}

// Sentinels every scanner limit or truncation error matches via errors.Is.
var (
	// ErrTokenTooLarge marks a single token over Limits.MaxTokenBytes.
	ErrTokenTooLarge = errors.New("token exceeds size limit")
	// ErrTooDeep marks element nesting over Limits.MaxDepth.
	ErrTooDeep = errors.New("nesting exceeds depth limit")
	// ErrTruncated marks input that ended mid-construct: inside markup, an
	// unterminated comment/PI/CDATA/declaration, or with elements still
	// open. A reader failing with io.ErrUnexpectedEOF and a stream cut
	// mid-token both surface as ErrTruncated.
	ErrTruncated = errors.New("truncated input")
	// ErrDuplicateAttr marks a start tag carrying the same attribute name
	// twice — a well-formedness violation (XML 1.0 §3.1) the attribute-aware
	// scanner rejects rather than silently last-wins resolving.
	ErrDuplicateAttr = errors.New("duplicate attribute")
)

// duplicateAttrf builds the typed error for a repeated attribute name.
func duplicateAttrf(attr string, tag []byte) error {
	return fmt.Errorf("xmlstream: duplicate attribute %q in <%s>: %w", attr, tag, ErrDuplicateAttr)
}

// ScanLimitError reports which scanner limit the input exceeded.
type ScanLimitError struct {
	// What names the construct: "tag name", "attribute name", "attribute
	// value", "text", "CDATA section", "nesting".
	What string
	// Limit is the configured cap the input crossed.
	Limit int
	// sentinel is ErrTokenTooLarge or ErrTooDeep.
	sentinel error
}

func (e *ScanLimitError) Error() string {
	return fmt.Sprintf("xmlstream: %s exceeds the configured limit of %d", e.What, e.Limit)
}

// Unwrap makes errors.Is(err, ErrTokenTooLarge / ErrTooDeep) work.
func (e *ScanLimitError) Unwrap() error { return e.sentinel }

// WithLimits overrides the scanner's default buffering caps.
func WithLimits(l Limits) ScannerOption {
	return func(s *Scanner) { s.limits = l }
}

// tokenTooLarge builds the typed error for an oversized token.
func (s *Scanner) tokenTooLarge(what string) error {
	return &ScanLimitError{What: what, Limit: s.limits.MaxTokenBytes, sentinel: ErrTokenTooLarge}
}

// truncatedf builds a malformed-input error that matches ErrTruncated.
func truncatedf(format string, args ...any) error {
	return fmt.Errorf("xmlstream: "+format+": %w", append(args, ErrTruncated)...)
}
