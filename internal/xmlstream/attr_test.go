package xmlstream

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// chunkReader yields at most n bytes per Read, exercising every way a
// buffer refill can split a token.
type chunkReader struct {
	s   string
	pos int
	n   int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.s) {
		return 0, io.EOF
	}
	lim := r.n
	if lim > len(p) {
		lim = len(p)
	}
	k := copy(p[:lim], r.s[r.pos:])
	r.pos += k
	return k, nil
}

func TestScannerAttributes(t *testing.T) {
	cases := []struct {
		doc  string
		want []Event
	}{
		{`<a k="1"/>`, []Event{StartAttrs("a", Attr{Name: "k", Value: "1"}), End("a")}},
		{`<a k='1'/>`, []Event{StartAttrs("a", Attr{Name: "k", Value: "1"}), End("a")}},
		{`<a k=""/>`, []Event{StartAttrs("a", Attr{Name: "k", Value: ""}), End("a")}},
		// Order preserved; whitespace (including newlines) between attributes.
		{"<a b=\"2\"\n\tc='3' \t d=\"4\"/>", []Event{StartAttrs("a",
			Attr{Name: "b", Value: "2"}, Attr{Name: "c", Value: "3"}, Attr{Name: "d", Value: "4"}), End("a")}},
		// Entities and the other quote kind inside values.
		{`<a k="x&amp;y&lt;z&quot;q"/>`, []Event{StartAttrs("a", Attr{Name: "k", Value: `x&y<z"q`}), End("a")}},
		{`<a k="it's"/>`, []Event{StartAttrs("a", Attr{Name: "k", Value: "it's"}), End("a")}},
		{`<a k='say "hi"'/>`, []Event{StartAttrs("a", Attr{Name: "k", Value: `say "hi"`}), End("a")}},
		// Unrecognized references pass through verbatim, like the text path.
		{`<a k="&#65;&x;"/>`, []Event{StartAttrs("a", Attr{Name: "k", Value: "&#65;&x;"}), End("a")}},
	}
	for _, c := range cases {
		evs, err := Collect(NewScanner(strings.NewReader(c.doc)))
		if err != nil {
			t.Fatalf("%s: %v", c.doc, err)
		}
		evs = stripDocBrackets(evs)
		if len(evs) != len(c.want) {
			t.Fatalf("%s: got %d events %v, want %d", c.doc, len(evs), evs, len(c.want))
		}
		for i, ev := range evs {
			if !sameEvent(ev, c.want[i]) {
				t.Errorf("%s: event %d = %v, want %v", c.doc, i, ev, c.want[i])
			}
		}
	}
}

// TestScannerAttributeBoundaries is the boundary-invariance property for
// attribute tokenizing: scanning the same document through every chunk size
// (splitting mid-tag, mid-attribute-name, mid-quote and mid-entity) must
// produce identical events.
func TestScannerAttributeBoundaries(t *testing.T) {
	doc := `<items><item status="closed" resolution='&amp;"x'><s k="&#65;b">t</s></item><item status="open"/></items>`
	want, err := Collect(NewScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= len(doc); n++ {
		got, err := Collect(NewScanner(&chunkReader{s: doc, n: n}))
		if err != nil {
			t.Fatalf("chunk size %d: %v", n, err)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk size %d: %d events, want %d", n, len(got), len(want))
		}
		for i := range got {
			if !sameEvent(got[i], want[i]) {
				t.Fatalf("chunk size %d: event %d = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestScannerDuplicateAttribute(t *testing.T) {
	_, err := Collect(NewScanner(strings.NewReader(`<a k="1" k="2"/>`)))
	if !errors.Is(err, ErrDuplicateAttr) {
		t.Fatalf("duplicate attribute error = %v, want ErrDuplicateAttr", err)
	}
	// WithAttributes(false) is the lax fast path: attribute text is skipped
	// wholesale, so the duplicate goes undetected by design.
	if _, err := Collect(NewScanner(strings.NewReader(`<a k="1" k="2"/>`), WithAttributes(false))); err != nil {
		t.Fatalf("attrs-disabled scan: %v", err)
	}
}

func TestScannerAttributeErrors(t *testing.T) {
	for _, doc := range []string{
		`<a k=1/>`,     // unquoted value
		`<a k="1/>`,    // unterminated quote
		`<a k/>`,       // missing value
		`<a ="1"/>`,    // missing name
		`<a k="1"b/>`,  // no space before next name
		`<a k="<x"/> `, // raw '<' in value
	} {
		if _, err := Collect(NewScanner(strings.NewReader(doc))); err == nil {
			t.Errorf("%s: accepted, want error", doc)
		}
	}
}

func TestScannerAttributesDisabled(t *testing.T) {
	evs, err := Collect(NewScanner(strings.NewReader(`<a k="1" l="2"><b/></a>`), WithAttributes(false)))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if len(ev.Attrs) != 0 {
			t.Fatalf("attributes stored with WithAttributes(false): %v", ev)
		}
	}
}

// TestAttrRoundTrip: serializing attribute-bearing events and rescanning
// reproduces them (the Writer escapes values; the scanner unescapes).
func TestAttrRoundTrip(t *testing.T) {
	evs := []Event{
		StartAttrs("a", Attr{Name: "k", Value: `x&y<z"q'`}, Attr{Name: "empty", Value: ""}),
		Chars("t"),
		End("a"),
	}
	got, err := Collect(NewScanner(strings.NewReader(Serialize(evs))))
	if err != nil {
		t.Fatal(err)
	}
	got = stripDocBrackets(got)
	if len(got) != len(evs) {
		t.Fatalf("round trip: %d events, want %d (%v)", len(got), len(evs), got)
	}
	for i := range evs {
		if !sameEvent(got[i], evs[i]) {
			t.Errorf("round trip event %d = %v, want %v", i, got[i], evs[i])
		}
	}
}

// sameEvent compares kind, name, data and the attribute list.
func sameEvent(a, b Event) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.Data != b.Data || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i].Name != b.Attrs[i].Name || a.Attrs[i].Value != b.Attrs[i].Value {
			return false
		}
	}
	return true
}

// stripDocBrackets drops the StartDocument/EndDocument frame.
func stripDocBrackets(evs []Event) []Event {
	var out []Event
	for _, ev := range evs {
		if ev.Kind == StartDocument || ev.Kind == EndDocument {
			continue
		}
		out = append(out, ev)
	}
	return out
}
