package xmlstream

import (
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func scanAll(t *testing.T, doc string) []Event {
	t.Helper()
	evs, err := Collect(NewScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatalf("scan %q: %v", doc, err)
	}
	return evs
}

func render(evs []Event) string {
	var b strings.Builder
	for i, ev := range evs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(ev.String())
	}
	return b.String()
}

// TestPaperFigure1 checks the stream of Fig. 1: the three-representation
// example.
func TestPaperFigure1(t *testing.T) {
	got := render(scanAll(t, `<?xml version="1.0"?><a><a><c/></a><b/><c/></a>`))
	want := "<$> <a> <a> <c> </c> </a> <b> </b> <c> </c> </a> </$>"
	if got != want {
		t.Fatalf("got  %s\nwant %s", got, want)
	}
}

func TestScannerBasics(t *testing.T) {
	tests := []struct{ doc, want string }{
		{`<r/>`, "<$> <r> </r> </$>"},
		{`<r></r>`, "<$> <r> </r> </$>"},
		{`<r a="1" b='2'/>`, `<$> <r a="1" b="2"> </r> </$>`},
		{`<r a=">">x</r>`, `<$> <r a=">"> x </r> </$>`},
		{`<r><!-- c --><x/></r>`, "<$> <r> <x> </x> </r> </$>"},
		{`<!DOCTYPE r [<!ELEMENT r ANY>]><r/>`, "<$> <r> </r> </$>"},
		{`<r>a<x/>b</r>`, "<$> <r> a <x> </x> b </r> </$>"},
		{`<r>&lt;&amp;&gt;</r>`, "<$> <r> <&> </r> </$>"},
		{`<r><![CDATA[<raw>]]></r>`, "<$> <r> <raw> </r> </$>"},
		{"\n\t<r/>\n", "<$> <r> </r> </$>"},
		{`<r.1-x:y/>`, "<$> <r.1-x:y> </r.1-x:y> </$>"},
		{`<r>&unknown;</r>`, "<$> <r> &unknown; </r> </$>"},
	}
	for _, tc := range tests {
		if got := render(scanAll(t, tc.doc)); got != tc.want {
			t.Errorf("%q: got %s, want %s", tc.doc, got, tc.want)
		}
	}
}

func TestScannerErrors(t *testing.T) {
	bad := []string{
		"", "   ", "<a>", "</a>", "<a></b>", "<a><b></a></b>",
		"<a></a><b></b>", "<a", "<a><b></a>", "< a/>", "text only",
		"<a/><a/>", "<a></a>trailing<b/>",
	}
	for _, doc := range bad {
		if _, err := Collect(NewScanner(strings.NewReader(doc))); err == nil {
			t.Errorf("%q: expected error", doc)
		}
	}
}

func TestScannerDepthTracking(t *testing.T) {
	s := NewScanner(strings.NewReader(`<a><b><c/></b><b/></a>`))
	if _, err := Collect(s); err != nil {
		t.Fatal(err)
	}
	if s.MaxDepth() != 3 {
		t.Errorf("MaxDepth: got %d, want 3", s.MaxDepth())
	}
	if s.Depth() != 0 {
		t.Errorf("Depth at end: got %d, want 0", s.Depth())
	}
}

func TestWithTextDisabled(t *testing.T) {
	evs, err := Collect(NewScanner(strings.NewReader(`<a>hello<b/>world</a>`), WithText(false)))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if ev.Kind == Text {
			t.Fatalf("text event leaked: %v", ev)
		}
	}
}

// TestScannerAgainstDecoder cross-checks the hand-written scanner against
// encoding/xml on documents exercising every construct.
func TestScannerAgainstDecoder(t *testing.T) {
	docs := []string{
		`<a><a><c/></a><b/><c/></a>`,
		`<r>text<x>nested</x>tail</r>`,
		`<r a="v"><!-- c --><x/></r>`,
		`<r>&amp;&lt;</r>`,
	}
	for _, doc := range docs {
		a, err := Collect(NewScanner(strings.NewReader(doc)))
		if err != nil {
			t.Fatalf("scanner %q: %v", doc, err)
		}
		b, err := Collect(NewDecoder(strings.NewReader(doc)))
		if err != nil {
			t.Fatalf("decoder %q: %v", doc, err)
		}
		if render(a) != render(b) {
			t.Errorf("%q:\nscanner: %s\ndecoder: %s", doc, render(a), render(b))
		}
	}
}

// TestRoundTrip checks Serialize(scan(doc)) == doc for canonical documents.
func TestRoundTrip(t *testing.T) {
	docs := []string{
		`<a><a><c></c></a><b></b><c></c></a>`,
		`<r>text<x>nested</x>tail</r>`,
		`<r>&lt;escaped&gt;</r>`,
	}
	for _, doc := range docs {
		if got := Serialize(scanAll(t, doc)); got != doc {
			t.Errorf("round trip: got %q, want %q", got, doc)
		}
	}
}

// TestRoundTripProperty: serializing and rescanning an arbitrary scanned
// stream is the identity on events.
func TestRoundTripProperty(t *testing.T) {
	gen := func(seed uint8) bool {
		doc := buildRandomDoc(int64(seed))
		evs1, err := Collect(NewScanner(strings.NewReader(doc)))
		if err != nil {
			return false
		}
		evs2, err := Collect(NewScanner(strings.NewReader(Serialize(evs1))))
		if err != nil {
			return false
		}
		return render(evs1) == render(evs2)
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// buildRandomDoc builds a small random well-formed document from a seed.
func buildRandomDoc(seed int64) string {
	labels := []string{"a", "b", "c"}
	state := uint64(seed)*2654435761 + 1
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	var b strings.Builder
	var gen func(depth int)
	gen = func(depth int) {
		l := labels[next(3)]
		b.WriteString("<" + l + ">")
		if depth < 4 {
			for i := next(3); i > 0; i-- {
				if next(4) == 0 {
					b.WriteString("txt")
				}
				gen(depth + 1)
			}
		}
		b.WriteString("</" + l + ">")
	}
	gen(0)
	return b.String()
}

func TestMeasure(t *testing.T) {
	info, err := Measure(NewScanner(strings.NewReader(`<a><b>x</b><c><d/></c></a>`)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Elements != 4 || info.MaxDepth != 3 {
		t.Fatalf("got %+v", info)
	}
}

func TestCountingSource(t *testing.T) {
	cs := &CountingSource{Src: NewScanner(strings.NewReader(`<a><b/></a>`))}
	if _, err := Collect(cs); err != nil {
		t.Fatal(err)
	}
	if cs.Info.Elements != 2 || cs.Info.MaxDepth != 2 {
		t.Fatalf("got %+v", cs.Info)
	}
}

func TestSliceSource(t *testing.T) {
	src := &SliceSource{Events: []Event{Start("a"), End("a")}}
	if ev, err := src.Next(); err != nil || ev.Name != "a" {
		t.Fatalf("first: %v %v", ev, err)
	}
	if ev, err := src.Next(); err != nil || ev.Kind != EndElement {
		t.Fatalf("second: %v %v", ev, err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestEscapeText(t *testing.T) {
	if got := EscapeText("a<b>&c"); got != "a&lt;b&gt;&amp;c" {
		t.Fatalf("got %q", got)
	}
	if got := EscapeText("plain"); got != "plain" {
		t.Fatalf("got %q", got)
	}
}

func TestEventString(t *testing.T) {
	cases := map[string]Event{
		"<$>":  {Kind: StartDocument},
		"</$>": {Kind: EndDocument},
		"<x>":  Start("x"),
		"</x>": End("x"),
		"hi":   Chars("hi"),
	}
	for want, ev := range cases {
		if got := ev.String(); got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}
