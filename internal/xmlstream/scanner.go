package xmlstream

import (
	"fmt"
	"io"
	"strings"
)

// Scanner tokenizes an XML byte stream into Events without ever buffering
// the document: it reads forward only and keeps memory bounded in the depth
// of the document (for the well-formedness stack), matching the streaming
// requirements of §II.1.
//
// The scanner is deliberately lenient about XML features the paper excludes:
// attributes are skipped, processing instructions, comments, CDATA sections
// and DOCTYPE declarations are consumed silently. It is strict about tag
// nesting: mismatched or unclosed tags yield errors.
//
// The implementation manages its own read buffer and interns element names,
// so steady-state scanning performs no allocation per element.
//
// Two scan engines share this struct. The default is the vectorized zero-copy
// path (fastscan.go): it locates markup with bytes.IndexByte over the buffered
// window, parses whole constructs in place, and carves event payloads from
// per-stream arenas (arena.go). WithSeedScan selects the original
// byte-at-a-time reference engine, kept as the oracle for the differential
// harness and as the ablation baseline in spexbench -fig ingest.
type Scanner struct {
	r      io.Reader
	buf    []byte
	ownBuf []byte // the buffer the scanner allocated; nil when scanning caller bytes
	pos    int
	end    int
	eof    bool
	// stable marks caller-owned input (ScanBytes/ResetBytes): the window is
	// the whole document and is never slid or rewritten, so text and
	// attribute values can be unsafe views into it instead of arena copies.
	stable bool
	// base is the absolute input offset of buf[0]: base+pos is the number of
	// input bytes consumed, maintained across buffer slides by fill.
	base      int64
	stack     []string // open element names, for well-formedness
	stackSyms []Sym    // symbols of the open elements, parallel to stack
	state     scanState
	// pending holds extra events synthesized from a single syntactic
	// construct (a self-closing tag produces Start then End). pendHead
	// indexes the next event to deliver; the slice resets to its full
	// capacity once drained, so steady-state scanning never reallocates it.
	pending  []Event
	pendHead int
	// pendOffs carries per-event input offsets for events buffered by the
	// batch scan loop (fastBatch), index-aligned with pending. Events pushed
	// onto pending outside the batch loop (document brackets, self-close
	// pairs, CDATA text) have no entry: their delivery offset is the scan
	// position, which has not moved since the construct that produced them.
	pendOffs []int64
	// off is the input offset of the most recently delivered event — what
	// InputOffset reports. Batched events restore their own scan positions
	// from pendOffs; all other deliveries use the live position.
	off      int64
	names    map[string]string // interned element names (no Symtab attached)
	symtab   *Symtab           // shared interner; nil falls back to names
	nameBuf  []byte
	emitText bool
	// emitAttrs selects full attribute tokenization (names interned, values
	// unescaped, duplicates rejected). When disabled the scanner reverts to
	// the paper's model and skips attribute text wholesale.
	emitAttrs   bool
	attrBuf     []Attr // scratch attribute list, copied out per event
	attrNameBuf []byte
	valBuf      []byte
	limits      Limits
	err         error

	// seedMode selects the byte-at-a-time reference engine (WithSeedScan).
	seedMode bool
	// text and attrs are the per-stream arenas the zero-copy engine carves
	// event payloads from; the seed engine never touches them.
	text    byteArena
	attrs   attrArena
	textBuf []byte // scratch for runs that straddle a buffer refill
	scratch []byte // scratch for entity unescaping

	// fragment mode tokenizes a mid-document byte range for the parallel
	// chunk scanner: no document brackets, end tags may close elements opened
	// in earlier chunks (underflow), text emission is decided against
	// baseDepth + local depth, and end-of-input is not a truncation error —
	// the stitcher owns document-level well-formedness.
	fragment  bool
	baseDepth int
	underflow int // end tags consumed with an empty local stack

	// tokStart is the absolute offset of the construct being scanned; errOff
	// freezes it when the construct fails (ErrorOffset).
	tokStart int64
	errOff   int64

	depth    int
	maxDepth int
	events   int64
}

type scanState uint8

const (
	scanBeforeRoot scanState = iota
	scanInDocument
	scanAfterRoot
	scanDone
)

// ScannerOption configures a Scanner.
type ScannerOption func(*Scanner)

// WithText controls whether the scanner emits Text events for character
// data. The default is true; structural-only consumers (counting or
// locating matches) disable it to skip text handling entirely.
func WithText(emit bool) ScannerOption {
	return func(s *Scanner) { s.emitText = emit }
}

// WithAttributes controls whether the scanner tokenizes attribute lists into
// Event.Attrs. The default is true; structural-only consumers (queries with
// no attribute tests, count mode) disable it to skip attribute text
// wholesale, restoring the paper's attribute-free model. When enabled, the
// scanner is strict: attributes must be name="value" or name='value' pairs,
// and a duplicated attribute name within one tag is a well-formedness error
// (ErrDuplicateAttr).
func WithAttributes(emit bool) ScannerOption {
	return func(s *Scanner) { s.emitAttrs = emit }
}

// WithSeedScan selects the original byte-at-a-time scan engine instead of the
// vectorized zero-copy default. The two engines produce byte-identical event
// streams, error classes and error offsets (the differential harness enforces
// this); the seed engine exists as that harness's oracle and as the baseline
// the ingest ablation measures against.
func WithSeedScan(on bool) ScannerOption {
	return func(s *Scanner) { s.seedMode = on }
}

// WithSymtab makes the scanner resolve element labels against the given
// symbol table: every StartElement and EndElement event carries the label's
// Sym, so a network compiled against the same table evaluates label tests as
// integer comparisons without ever touching the interner itself. Steady-state
// scanning still performs no allocation: an already-interned label is one
// lock-free lookup.
func WithSymtab(t *Symtab) ScannerOption {
	return func(s *Scanner) { s.symtab = t }
}

// AdoptSymtab attaches the table to a scanner built without one, so an
// evaluator handed a bare scanner can share its own table with it instead of
// re-resolving every event. Events already emitted keep their zero Sym (the
// network resolves those itself); a scanner that already has a table keeps
// it, since its consumers hold symbols from that table. It reports whether
// the scanner uses the given table afterwards.
func (s *Scanner) AdoptSymtab(t *Symtab) bool {
	if s.symtab == nil {
		s.symtab = t
	}
	return s.symtab == t
}

// SymtabInUse returns the table the scanner resolves labels against, or nil
// for a plain string-naming scanner.
func (s *Scanner) SymtabInUse() *Symtab { return s.symtab }

// NewScanner returns a Scanner producing the event stream of the document
// read from r. The stream begins with a StartDocument event and, if the
// document is well formed, ends with EndDocument followed by io.EOF.
func NewScanner(r io.Reader, opts ...ScannerOption) *Scanner {
	s := newScanner(opts)
	s.r = r
	s.ownBuf = make([]byte, 1<<16)
	s.buf = s.ownBuf
	s.pending = append(s.pending, Event{Kind: StartDocument})
	return s
}

// ScanBytes returns a Scanner over an in-memory document. The whole input is
// the read window, so the zero-copy engine parses every construct in place
// with no buffer slides and no copies; data must not be mutated while the
// scanner is in use. This is the fast path behind OpenFile (mmap) and the
// parallel chunk scanner.
func ScanBytes(data []byte, opts ...ScannerOption) *Scanner {
	s := newScanner(opts)
	s.buf = data
	s.end = len(data)
	s.eof = true
	s.stable = true
	s.pending = append(s.pending, Event{Kind: StartDocument})
	return s
}

func newScanner(opts []ScannerOption) *Scanner {
	s := &Scanner{
		emitText:  true,
		emitAttrs: true,
		names:     make(map[string]string, 32),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.limits = s.limits.withDefaults()
	return s
}

// Reset rewinds the scanner to scan a new document from r, keeping its
// buffers, interned names and arenas. Calling Reset asserts that every event
// delivered from the previous document is dead: arena blocks are recycled and
// their storage will be rewritten. With a warm scanner, Reset plus a full
// scan performs zero steady-state allocations (the ingest CI gate pins this).
func (s *Scanner) Reset(r io.Reader) {
	s.resetState()
	s.r = r
	if s.ownBuf == nil {
		s.ownBuf = make([]byte, 1<<16)
	}
	s.buf = s.ownBuf
	s.pos, s.end = 0, 0
	s.eof = false
	s.stable = false
}

// ResetBytes is Reset over an in-memory document (see ScanBytes).
func (s *Scanner) ResetBytes(data []byte) {
	s.resetState()
	s.r = nil
	s.buf = data
	s.pos, s.end = 0, len(data)
	s.eof = true
	s.stable = true
}

func (s *Scanner) resetState() {
	s.base = 0
	s.stack = s.stack[:0]
	s.stackSyms = s.stackSyms[:0]
	s.state = scanBeforeRoot
	s.pending = append(s.pending[:0], Event{Kind: StartDocument})
	s.pendOffs = s.pendOffs[:0]
	s.pendHead = 0
	s.off = 0
	s.err = nil
	s.underflow = 0
	s.tokStart, s.errOff = 0, 0
	s.depth, s.maxDepth, s.events = 0, 0, 0
	s.text.reset()
	s.attrs.reset()
}

// Depth returns the number of currently open elements.
func (s *Scanner) Depth() int { return s.depth }

// MaxDepth returns the maximum element nesting depth seen so far.
func (s *Scanner) MaxDepth() int { return s.maxDepth }

// Events returns the number of events emitted so far.
func (s *Scanner) Events() int64 { return s.events }

// InputOffset returns the number of input bytes consumed so far. After an
// event is delivered it points just past the construct that produced it; the
// value is identical across the seed, zero-copy and parallel engines (the
// accounting-parity tests enforce this). The batch scan loop tokenizes ahead
// of delivery, so the offset is tracked per delivered event, not at the raw
// scan position.
func (s *Scanner) InputOffset() int64 { return s.off }

// ErrorOffset returns the absolute byte offset of the construct whose scan
// failed — the position of its opening '<' (or the first byte of a text run),
// or the input length for end-of-input errors. It is meaningful only after
// Next returned a non-EOF error, and is identical across scan engines.
func (s *Scanner) ErrorOffset() int64 { return s.errOff }

// fill slides unread bytes to the front of the buffer and reads more input.
// It reports whether any new bytes are available.
func (s *Scanner) fill() bool {
	if s.eof {
		return s.pos < s.end
	}
	if s.pos > 0 {
		copy(s.buf, s.buf[s.pos:s.end])
		s.base += int64(s.pos)
		s.end -= s.pos
		s.pos = 0
	}
	for s.end < len(s.buf) {
		n, err := s.r.Read(s.buf[s.end:])
		s.end += n
		if err == io.EOF {
			s.eof = true
			break
		}
		if err != nil {
			s.err = err
			return false
		}
		if n > 0 {
			break
		}
	}
	return s.pos < s.end
}

// readByte returns the next input byte; ok is false at end of input or on a
// read error (recorded in s.err).
func (s *Scanner) readByte() (byte, bool) {
	if s.pos < s.end {
		c := s.buf[s.pos]
		s.pos++
		return c, true
	}
	if !s.fill() {
		return 0, false
	}
	c := s.buf[s.pos]
	s.pos++
	return c, true
}

// peekAt returns the byte i positions ahead without consuming, refilling as
// needed; ok is false when input ends first.
func (s *Scanner) peekAt(i int) (byte, bool) {
	for s.pos+i >= s.end {
		if s.eof || !s.fill() {
			if s.pos+i < s.end {
				break
			}
			return 0, false
		}
	}
	return s.buf[s.pos+i], true
}

// intern returns a shared string and the interned symbol for the element
// name in b. With a Symtab attached the table is the single source of both;
// otherwise the scanner's private map shares the string and the symbol stays
// zero (resolved later by the evaluating network, if any).
func (s *Scanner) intern(b []byte) (string, Sym) {
	if s.symtab != nil {
		sym, name := s.symtab.internBytes(b)
		return name, sym
	}
	if name, ok := s.names[string(b)]; ok { // no allocation: map lookup on []byte key
		return name, 0
	}
	name := string(b)
	s.names[name] = name
	return name, 0
}

// Next returns the next event. It returns io.EOF after EndDocument has been
// delivered. Any other error indicates malformed input; the stream cannot
// be resumed after an error.
func (s *Scanner) Next() (Event, error) {
	if s.err != nil {
		return Event{}, s.err
	}
	for {
		if s.pendHead < len(s.pending) {
			ev := s.pending[s.pendHead]
			off := s.base + int64(s.pos)
			if s.pendHead < len(s.pendOffs) {
				off = s.pendOffs[s.pendHead]
			}
			s.pendHead++
			if s.pendHead == len(s.pending) {
				// Drained: reuse the full backing array instead of letting
				// the slice base creep forward and reallocate.
				s.pending = s.pending[:0]
				s.pendOffs = s.pendOffs[:0]
				s.pendHead = 0
			}
			s.off = off
			return s.account(ev), nil
		}
		if s.stable && !s.seedMode && s.err == nil &&
			(s.state == scanInDocument || (s.fragment && s.state != scanDone)) &&
			s.fastBatch() {
			continue
		}
		s.tokStart = s.base + int64(s.pos)
		var ev Event
		var ok bool
		var err error
		if s.seedMode {
			ev, ok, err = s.scan()
		} else {
			ev, ok, err = s.fastScan()
		}
		if err != nil {
			// A failed Read (recorded by fill) is the root cause of any
			// truncated-markup diagnosis scan produced on top of it;
			// report the read error so cancellations surface as themselves.
			if s.err != nil {
				err = s.err
			} else {
				s.err = err
			}
			s.errOff = s.tokStart
			return Event{}, err
		}
		if ok {
			s.off = s.base + int64(s.pos)
			return s.account(ev), nil
		}
	}
}

// account updates stream statistics as ev is delivered.
func (s *Scanner) account(ev Event) Event {
	s.events++
	switch ev.Kind {
	case StartElement:
		s.depth++
		if s.depth > s.maxDepth {
			s.maxDepth = s.depth
		}
	case EndElement:
		s.depth--
	}
	return ev
}

// scan consumes input until it produces one event (ok=true), decides the
// current input yields no event yet (ok=false, e.g. skipped comment), or
// fails.
func (s *Scanner) scan() (Event, bool, error) {
	if s.state == scanDone {
		return Event{}, false, io.EOF
	}
	c, ok := s.readByte()
	if !ok {
		if s.err != nil {
			return Event{}, false, s.err
		}
		return s.finish()
	}
	if c != '<' {
		if s.emitText && s.inContent() {
			text, err := s.readText(c)
			if err != nil {
				return Event{}, false, err
			}
			if text != "" {
				return Event{Kind: Text, Data: text}, true, nil
			}
			return Event{}, false, nil
		}
		// Whitespace (or ignorable prolog/epilog text) outside text mode.
		if err := s.skipText(); err != nil {
			return Event{}, false, err
		}
		return Event{}, false, nil
	}
	c, ok = s.readByte()
	if !ok {
		return Event{}, false, truncatedf("unexpected end of input inside markup")
	}
	switch c {
	case '?':
		return Event{}, false, s.skipPI()
	case '!':
		return Event{}, false, s.skipDeclaration()
	case '/':
		return s.scanEndTag()
	default:
		return s.scanStartTag(c)
	}
}

// finish handles end of input: valid only when all elements are closed.
func (s *Scanner) finish() (Event, bool, error) {
	if s.fragment {
		// A chunk may legitimately end with elements still open (closed by a
		// later chunk) and emits no document brackets; the stitcher owns
		// document-level well-formedness.
		s.state = scanDone
		return Event{}, false, io.EOF
	}
	switch s.state {
	case scanBeforeRoot:
		return Event{}, false, fmt.Errorf("xmlstream: empty document: no root element")
	case scanInDocument:
		return Event{}, false, truncatedf("unexpected end of input: %d unclosed element(s), innermost <%s>",
			len(s.stack), s.stack[len(s.stack)-1])
	case scanAfterRoot:
		s.state = scanDone
		return Event{Kind: EndDocument}, true, nil
	default:
		return Event{}, false, io.EOF
	}
}

// readText accumulates character data starting with first until the next
// '<' (left unconsumed). Entity references are resolved for the five
// predefined entities; unknown entities pass through verbatim.
func (s *Scanner) readText(first byte) (string, error) {
	var b strings.Builder
	b.WriteByte(first)
	for {
		if s.pos >= s.end && !s.fill() {
			break
		}
		// Copy the buffered run up to '<' in one step.
		chunk := s.buf[s.pos:s.end]
		if i := indexByte(chunk, '<'); i >= 0 {
			b.Write(chunk[:i])
			s.pos += i
			break
		}
		b.Write(chunk)
		s.pos = s.end
		if max := s.limits.MaxTokenBytes; max > 0 && b.Len() > max {
			return "", s.tokenTooLarge("text")
		}
	}
	if max := s.limits.MaxTokenBytes; max > 0 && b.Len() > max {
		return "", s.tokenTooLarge("text")
	}
	return unescapeText(b.String()), nil
}

// skipText consumes character data without building a string.
func (s *Scanner) skipText() error {
	for {
		if s.pos >= s.end && !s.fill() {
			return s.err
		}
		chunk := s.buf[s.pos:s.end]
		if i := indexByte(chunk, '<'); i >= 0 {
			s.pos += i
			return nil
		}
		s.pos = s.end
	}
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// skipPI consumes a processing instruction after "<?" up to "?>".
func (s *Scanner) skipPI() error {
	prev := byte(0)
	for {
		c, ok := s.readByte()
		if !ok {
			return truncatedf("unterminated processing instruction")
		}
		if prev == '?' && c == '>' {
			return nil
		}
		prev = c
	}
}

// skipDeclaration consumes "<!...>" constructs: comments, CDATA sections
// and DOCTYPE declarations (including bracketed internal subsets). CDATA
// content is queued as text when text emission is enabled and we are inside
// the document.
func (s *Scanner) skipDeclaration() error {
	if c0, ok := s.peekAt(0); ok && c0 == '-' {
		if c1, ok := s.peekAt(1); ok && c1 == '-' {
			s.pos += 2
			return s.skipComment()
		}
	}
	if s.hasPrefix("[CDATA[") {
		s.pos += 7
		return s.scanCDATA()
	}
	return s.skipDoctype()
}

// skipDoctype consumes a DOCTYPE or other "<!...>" declaration to its
// matching '>', tracking bracket nesting for internal subsets. Declarations
// appear at most once per document, so both engines share this byte-at-a-time
// loop.
func (s *Scanner) skipDoctype() error {
	depth := 0
	for {
		c, ok := s.readByte()
		if !ok {
			if s.err != nil {
				return s.err
			}
			return truncatedf("unterminated declaration")
		}
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				return nil
			}
		}
	}
}

// hasPrefix reports whether the unconsumed input starts with p.
func (s *Scanner) hasPrefix(p string) bool {
	for i := 0; i < len(p); i++ {
		c, ok := s.peekAt(i)
		if !ok || c != p[i] {
			return false
		}
	}
	return true
}

// skipComment consumes a comment after "<!--" up to "-->".
func (s *Scanner) skipComment() error {
	run := 0
	for {
		c, ok := s.readByte()
		if !ok {
			return truncatedf("unterminated comment")
		}
		switch {
		case c == '-':
			run++
		case c == '>' && run >= 2:
			return nil
		default:
			run = 0
		}
	}
}

// scanCDATA consumes a CDATA section after "<![CDATA[" up to "]]>". The
// content is queued as a Text event when appropriate.
func (s *Scanner) scanCDATA() error {
	var b strings.Builder
	run := 0
	for {
		c, ok := s.readByte()
		if !ok {
			return truncatedf("unterminated CDATA section")
		}
		switch {
		case c == ']':
			run++
			if run > 2 {
				b.WriteByte(']')
				run = 2
			}
		case c == '>' && run >= 2:
			if s.emitText && s.inContent() && b.Len() > 0 {
				s.pending = append(s.pending, Event{Kind: Text, Data: b.String()})
			}
			return nil
		default:
			for ; run > 0; run-- {
				b.WriteByte(']')
			}
			b.WriteByte(c)
		}
		if max := s.limits.MaxTokenBytes; max > 0 && b.Len() > max {
			return s.tokenTooLarge("CDATA section")
		}
	}
}

// scanStartTag parses a start tag whose name begins with first, tokenizing
// its attribute list. A self-closing tag queues the corresponding end event.
func (s *Scanner) scanStartTag(first byte) (Event, bool, error) {
	if s.state == scanAfterRoot {
		return Event{}, false, fmt.Errorf("xmlstream: content after document root")
	}
	if max := s.limits.MaxDepth; max > 0 && s.effDepth() >= max {
		return Event{}, false, &ScanLimitError{What: "nesting", Limit: max, sentinel: ErrTooDeep}
	}
	name, sym, attrs, selfClose, err := s.readTagRest(first)
	if err != nil {
		return Event{}, false, err
	}
	s.state = scanInDocument
	if selfClose {
		s.pending = append(s.pending, Event{Kind: EndElement, Sym: sym, Name: name})
		if len(s.stack) == 0 && !s.fragment {
			s.state = scanAfterRoot
		}
	} else {
		s.stack = append(s.stack, name)
		s.stackSyms = append(s.stackSyms, sym)
	}
	return Event{Kind: StartElement, Sym: sym, Name: name, Attrs: attrs}, true, nil
}

// readTagRest reads the remainder of a start tag: name, attribute list, and
// the closing '>' or '/>'.
func (s *Scanner) readTagRest(first byte) (name string, sym Sym, attrs []Attr, selfClose bool, err error) {
	if !isNameStart(first) {
		return "", 0, nil, false, fmt.Errorf("xmlstream: invalid character %q at start of tag name", first)
	}
	s.nameBuf = append(s.nameBuf[:0], first)
	for {
		c, ok := s.readByte()
		if !ok {
			return "", 0, nil, false, truncatedf("unterminated start tag")
		}
		switch {
		case isNameByte(c):
			if max := s.limits.MaxTokenBytes; max > 0 && len(s.nameBuf) >= max {
				return "", 0, nil, false, s.tokenTooLarge("tag name")
			}
			s.nameBuf = append(s.nameBuf, c)
		case c == '>':
			name, sym = s.intern(s.nameBuf)
			return name, sym, nil, false, nil
		case c == '/':
			if err := s.expect('>'); err != nil {
				return "", 0, nil, false, err
			}
			name, sym = s.intern(s.nameBuf)
			return name, sym, nil, true, nil
		case isSpace(c):
			if !s.emitAttrs {
				selfClose, err := s.skipAttributes()
				name, sym = s.intern(s.nameBuf)
				return name, sym, nil, selfClose, err
			}
			attrs, selfClose, err := s.readAttributes()
			name, sym = s.intern(s.nameBuf)
			return name, sym, attrs, selfClose, err
		default:
			return "", 0, nil, false, fmt.Errorf("xmlstream: invalid character %q in tag name %q", c, s.nameBuf)
		}
	}
}

// readAttributes tokenizes a start tag's attribute list after the first
// whitespace byte following the tag name. It enforces well-formedness: every
// attribute is a name="value" (or single-quoted) pair, and a name may occur
// at most once per tag. Attribute names are interned like element labels;
// values have the predefined entities resolved and short repeated values are
// shared, so value-heavy corpora (status flags, enumerations) scan without
// per-event string allocation.
func (s *Scanner) readAttributes() (attrs []Attr, selfClose bool, err error) {
	s.attrBuf = s.attrBuf[:0]
	for {
		c, ok := s.readByte()
		if !ok {
			return nil, false, truncatedf("unterminated start tag <%s", s.nameBuf)
		}
		if isSpace(c) {
			continue
		}
		switch c {
		case '>':
			return s.takeAttrs(), false, nil
		case '/':
			if err := s.expect('>'); err != nil {
				return nil, false, err
			}
			return s.takeAttrs(), true, nil
		}
		if !isNameStart(c) {
			return nil, false, fmt.Errorf("xmlstream: invalid character %q in attribute list of <%s>", c, s.nameBuf)
		}
		name, sym, err := s.readAttrName(c)
		if err != nil {
			return nil, false, err
		}
		if err := s.expect('='); err != nil {
			return nil, false, err
		}
		val, err := s.readAttrValue(name)
		if err != nil {
			return nil, false, err
		}
		for _, a := range s.attrBuf {
			if a.Name == name {
				return nil, false, duplicateAttrf(name, s.nameBuf)
			}
		}
		s.attrBuf = append(s.attrBuf, Attr{Name: name, Sym: sym, Value: val})
	}
}

// takeAttrs copies the scratch attribute list out into a fresh slice: events
// outlive the scan step (result candidates buffer them), so they cannot
// alias scanner-owned storage.
func (s *Scanner) takeAttrs() []Attr {
	if len(s.attrBuf) == 0 {
		return nil
	}
	attrs := make([]Attr, len(s.attrBuf))
	copy(attrs, s.attrBuf)
	return attrs
}

// readAttrName reads an attribute name beginning with first and interns it.
func (s *Scanner) readAttrName(first byte) (string, Sym, error) {
	s.attrNameBuf = append(s.attrNameBuf[:0], first)
	for {
		c, ok := s.peekAt(0)
		if !ok {
			if s.err != nil {
				return "", 0, s.err
			}
			return "", 0, truncatedf("unterminated start tag <%s", s.nameBuf)
		}
		if !isNameByte(c) {
			break
		}
		if max := s.limits.MaxTokenBytes; max > 0 && len(s.attrNameBuf) >= max {
			return "", 0, s.tokenTooLarge("attribute name")
		}
		s.attrNameBuf = append(s.attrNameBuf, c)
		s.pos++
	}
	name, sym := s.intern(s.attrNameBuf)
	return name, sym, nil
}

// maxSharedAttrValue caps the length of attribute values cached in the
// scanner's string-sharing map; longer values are assumed high-cardinality
// (ids, free text) and allocated directly rather than growing the cache.
const maxSharedAttrValue = 32

// readAttrValue reads a quoted attribute value for the named attribute,
// resolving entity references.
func (s *Scanner) readAttrValue(name string) (string, error) {
	q, ok := s.readByte()
	for ok && isSpace(q) {
		q, ok = s.readByte()
	}
	if !ok {
		if s.err != nil {
			return "", s.err
		}
		return "", truncatedf("unterminated start tag <%s", s.nameBuf)
	}
	if q != '"' && q != '\'' {
		return "", fmt.Errorf("xmlstream: unquoted value for attribute %q in <%s>", name, s.nameBuf)
	}
	s.valBuf = s.valBuf[:0]
	for {
		if s.pos >= s.end && !s.fill() {
			if s.err != nil {
				return "", s.err
			}
			return "", truncatedf("unterminated value for attribute %q in <%s>", name, s.nameBuf)
		}
		chunk := s.buf[s.pos:s.end]
		i := indexByte(chunk, q)
		if i < 0 {
			s.valBuf = append(s.valBuf, chunk...)
			s.pos = s.end
		} else {
			s.valBuf = append(s.valBuf, chunk[:i]...)
			s.pos += i + 1
		}
		if max := s.limits.MaxTokenBytes; max > 0 && len(s.valBuf) > max {
			return "", s.tokenTooLarge("attribute value")
		}
		if i >= 0 {
			// Well-formedness: a raw '<' cannot appear in an attribute value
			// (it must be written &lt;). The check runs on the raw bytes, so
			// entity-produced '<' passes.
			if indexByte(s.valBuf, '<') >= 0 {
				return "", fmt.Errorf("xmlstream: raw '<' in value of attribute %q in <%s>", name, s.nameBuf)
			}
			return s.internValue(s.valBuf), nil
		}
	}
}

// internValue converts attribute-value bytes to a string with entities
// resolved. Short values are cached keyed by their raw bytes (a no-allocation
// map lookup), so the steady-state cost of repeated values is zero.
func (s *Scanner) internValue(b []byte) string {
	if len(b) > maxSharedAttrValue {
		return unescapeText(string(b))
	}
	if v, ok := s.names[string(b)]; ok { // no allocation: map lookup on []byte key
		return v
	}
	v := unescapeText(string(b))
	s.names[string(b)] = v
	return v
}

// skipAttributes consumes attribute text until '>' or '/>', honouring
// quoted values so that '>' inside quotes does not terminate the tag.
func (s *Scanner) skipAttributes() (selfClose bool, err error) {
	var quote byte
	prev := byte(0)
	for {
		c, ok := s.readByte()
		if !ok {
			return false, truncatedf("unterminated start tag")
		}
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			prev = c
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '>':
			return prev == '/', nil
		}
		prev = c
	}
}

// scanEndTag parses an end tag after "</" and checks it against the open
// element stack.
func (s *Scanner) scanEndTag() (Event, bool, error) {
	s.nameBuf = s.nameBuf[:0]
	for {
		c, ok := s.readByte()
		if !ok {
			return Event{}, false, truncatedf("unterminated end tag")
		}
		if c == '>' {
			break
		}
		if isSpace(c) {
			if err := s.expect('>'); err != nil {
				return Event{}, false, err
			}
			break
		}
		if !isNameByte(c) {
			return Event{}, false, fmt.Errorf("xmlstream: invalid character %q in end tag", c)
		}
		if max := s.limits.MaxTokenBytes; max > 0 && len(s.nameBuf) >= max {
			return Event{}, false, s.tokenTooLarge("tag name")
		}
		s.nameBuf = append(s.nameBuf, c)
	}
	return s.commitEndTag(s.nameBuf, s.pos)
}

// expect consumes exactly the byte want, skipping leading whitespace.
func (s *Scanner) expect(want byte) error {
	for {
		c, ok := s.readByte()
		if !ok {
			return truncatedf("unexpected end of input, want %q", want)
		}
		if isSpace(c) {
			continue
		}
		if c != want {
			return fmt.Errorf("xmlstream: unexpected character %q, want %q", c, want)
		}
		return nil
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameByte(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

// unescapeText resolves the predefined XML entities in s. Unknown entity
// references are left untouched.
func unescapeText(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(s[i:], ';')
		if end < 0 {
			b.WriteString(s[i:])
			break
		}
		entity := s[i+1 : i+end]
		switch entity {
		case "lt":
			b.WriteByte('<')
		case "gt":
			b.WriteByte('>')
		case "amp":
			b.WriteByte('&')
		case "apos":
			b.WriteByte('\'')
		case "quot":
			b.WriteByte('"')
		default:
			b.WriteString(s[i : i+end+1])
		}
		i += end + 1
	}
	return b.String()
}
