package xmlstream

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sort"
)

// Parallel chunk scan: split an in-memory document at safe byte boundaries,
// tokenize the chunks concurrently with fragment-mode scanners, and stitch
// the event streams back together in document order.
//
// A safe split point is the first byte of a construct ('<' of a tag, comment,
// CDATA section, PI or declaration, or the first byte of a character-data
// run) located outside every other construct — never inside a tag, a quoted
// attribute value, a comment, CDATA or DOCTYPE extent. A cheap serial
// pre-scan (findSplits) walks the document construct by construct with
// bytes.IndexByte to pick such points near the requested offsets and record
// the element depth at each, so each fragment scanner knows how deep in the
// document its chunk starts. The pre-scan is conservative: the moment it
// cannot classify the input it stops emitting boundaries, leaving the rest
// of the document as one chunk, and the fragment scanners surface whatever
// error a serial scan would have reported.
//
// Workers tokenize their chunk in fragment mode (no document brackets, end
// tags may close elements opened by earlier chunks, text emission decided
// against the chunk's start depth); the stitcher replays the per-chunk event
// streams in order, synthesizes StartDocument/EndDocument, and owns
// document-level well-formedness: cross-chunk tag matching, content after
// the root, unclosed elements at end of input.
//
// Behavior matches the serial engines event for event, including per-event
// InputOffset values and the offsets of sentinel errors raised inside a
// chunk (ErrTokenTooLarge, ErrTooDeep, ErrDuplicateAttr, mid-construct
// ErrTruncated). Two deliberate, documented divergences: symbols are
// interned concurrently, so Sym numbering differs from a serial scan over a
// fresh table (names and the evaluated results do not); and for
// well-formedness errors the stitcher itself detects (cross-chunk mismatch,
// content after root) ErrorOffset points at the end of the offending
// construct rather than its '<'.

// minParallelBytes is the document size below which NewParallelScanner does
// not bother splitting: one chunk, one worker.
const minParallelBytes = 64 << 10

// chunkBound is a safe split point: the byte offset of a construct start and
// the element depth at that point.
type chunkBound struct {
	off   int
	depth int
}

// ParallelScanner scans an in-memory document with concurrent chunk workers
// while presenting the ordinary serial Source interface.
type ParallelScanner struct {
	data    []byte
	workers int
	targets []int // explicit split targets (testing); nil = even spacing
	opts    []ScannerOption
	symtab  *Symtab

	started   bool
	scanners  []*Scanner
	chunks    []*chunkRun
	cur       int
	batch     []stitchEv // the batch being consumed
	bi        int        // next event in batch
	quit      chan struct{}
	stopped   bool
	startDone bool
	ended     bool
	stack     []string
	afterRoot bool
	off       int64
	err       error
	errOff    int64
	depth     int
	maxDepth  int
	events    int64
}

// chunkBatchEvents is how many events a chunk worker accumulates before
// handing the batch to the stitcher, and chunkBatchDepth how many batches may
// be in flight per chunk. Together they bound the stitcher/worker skew to a
// few hundred KB per chunk while keeping channel operations amortized to
// noise — the workers stream, they do not materialize their chunk.
const (
	chunkBatchEvents = 512
	chunkBatchDepth  = 4
)

// stitchEv is one event in flight from a chunk worker to the stitcher,
// carrying the absolute input offset just past its construct.
type stitchEv struct {
	ev  Event
	off int64
}

// chunkRun is one worker's output stream. err (with errOff) is written, if at
// all, before ch is closed, so the stitcher reads it only after draining ch.
// done closes when the worker exits, for IngestStats.
type chunkRun struct {
	base   int64
	ch     chan []stitchEv // worker -> stitcher
	free   chan []stitchEv // stitcher -> worker, recycled batch storage
	err    error
	errOff int64
	done   chan struct{}
}

// NewParallelScanner returns a scanner over data that tokenizes with up to
// workers concurrent chunk scanners (workers <= 0 means GOMAXPROCS). Workers
// are not spawned until the first Next call, so AdoptSymtab can still attach
// a shared symbol table. data must not be mutated while the scanner is in
// use.
func NewParallelScanner(data []byte, workers int, opts ...ScannerOption) *ParallelScanner {
	probe := newScanner(opts)
	return &ParallelScanner{data: data, workers: workers, opts: opts, symtab: probe.symtab}
}

// NewParallelScannerAt is NewParallelScanner with explicit split targets
// (byte offsets; each is moved forward to the next safe boundary). It exists
// for the differential harness and the fuzzers, which probe the stitcher
// with adversarial split choices.
func NewParallelScannerAt(data []byte, targets []int, opts ...ScannerOption) *ParallelScanner {
	p := NewParallelScanner(data, 1, opts...)
	ts := make([]int, 0, len(targets))
	for _, t := range targets {
		if t > 0 && t < len(data) {
			ts = append(ts, t)
		}
	}
	sort.Ints(ts)
	p.targets = ts
	return p
}

// AdoptSymtab attaches a symbol table before scanning starts (see
// Scanner.AdoptSymtab). After the first Next the table is frozen.
func (p *ParallelScanner) AdoptSymtab(t *Symtab) bool {
	if !p.started && p.symtab == nil {
		p.symtab = t
	}
	return p.symtab == t
}

// SymtabInUse returns the table chunk workers resolve labels against.
func (p *ParallelScanner) SymtabInUse() *Symtab { return p.symtab }

// Depth returns the number of currently open elements at the stitch point.
func (p *ParallelScanner) Depth() int { return p.depth }

// MaxDepth returns the maximum element nesting depth seen so far.
func (p *ParallelScanner) MaxDepth() int { return p.maxDepth }

// Events returns the number of events delivered so far.
func (p *ParallelScanner) Events() int64 { return p.events }

// InputOffset returns the number of input bytes consumed up to the last
// delivered event, identical to a serial scan's accounting.
func (p *ParallelScanner) InputOffset() int64 { return p.off }

// ErrorOffset returns the absolute offset associated with the error that
// ended the stream (see Scanner.ErrorOffset and the package divergence note
// above).
func (p *ParallelScanner) ErrorOffset() int64 { return p.errOff }

// IngestStats sums the buffer/arena accounting of the chunk workers that
// have finished so far.
func (p *ParallelScanner) IngestStats() IngestStats {
	st := IngestStats{Chunks: int64(len(p.chunks))}
	for k, c := range p.chunks {
		select {
		case <-c.done:
			w := p.scanners[k].IngestStats()
			st.ArenaBytes += w.ArenaBytes
			st.ArenaBlocks += w.ArenaBlocks
			st.ArenaAttrs += w.ArenaAttrs
			st.BufferBytes += w.BufferBytes
		default:
		}
	}
	return st
}

// Stop releases the chunk workers of a scan abandoned before EOF (answer
// limits, cancellation): workers blocked handing a batch to the stitcher
// return instead of waiting forever. It is idempotent, safe on a scanner
// that never started, and called internally on every stitch-level error; a
// stream drained to EOF needs no Stop (its workers have already exited).
// The scanner must not be used after Stop.
func (p *ParallelScanner) Stop() {
	if p.started && !p.stopped {
		p.stopped = true
		close(p.quit)
	}
}

// fail records the error that ends the stream and releases the workers.
func (p *ParallelScanner) fail(err error, off int64) error {
	p.err = err
	p.errOff = off
	p.Stop()
	return err
}

func (p *ParallelScanner) start() {
	p.started = true
	p.quit = make(chan struct{})
	targets := p.targets
	if targets == nil {
		n := p.workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if n > 1 && len(p.data) >= minParallelBytes {
			step := len(p.data) / n
			for k := 1; k < n; k++ {
				targets = append(targets, k*step)
			}
		}
	}
	probe := newScanner(p.opts)
	bounds := findSplits(p.data, targets, probe.emitAttrs)
	starts := make([]chunkBound, 1, len(bounds)+1)
	for _, b := range bounds {
		if b.off > starts[len(starts)-1].off {
			starts = append(starts, b)
		}
	}
	opts := p.opts
	if p.symtab != nil {
		opts = append(opts[:len(opts):len(opts)], WithSymtab(p.symtab))
	}
	for k := range starts {
		lo, hi := starts[k].off, len(p.data)
		if k+1 < len(starts) {
			hi = starts[k+1].off
		}
		sc := ScanBytes(p.data[lo:hi], opts...)
		sc.fragment = true
		sc.baseDepth = starts[k].depth
		sc.pending = sc.pending[:0] // fragments emit no document brackets
		run := &chunkRun{
			base: int64(lo),
			ch:   make(chan []stitchEv, chunkBatchDepth),
			free: make(chan []stitchEv, chunkBatchDepth+1),
			done: make(chan struct{}),
		}
		p.scanners = append(p.scanners, sc)
		p.chunks = append(p.chunks, run)
		go scanChunk(sc, run, p.quit)
	}
}

// scanChunk streams one fragment scanner's events to the stitcher in bounded
// batches. The deferred close of run.ch is the publication point for run.err:
// it runs after err is assigned, so the stitcher observes the error only once
// the channel is drained and closed.
func scanChunk(sc *Scanner, run *chunkRun, quit <-chan struct{}) {
	defer close(run.done)
	defer close(run.ch)
	var batch []stitchEv
	send := func() bool {
		select {
		case run.ch <- batch:
			return true
		case <-quit: // stitcher gone: drop the stream on the floor
			return false
		}
	}
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			if len(batch) > 0 {
				send()
			}
			return
		}
		if err != nil {
			run.err = err
			run.errOff = run.base + sc.ErrorOffset()
			if len(batch) > 0 {
				send()
			}
			return
		}
		if batch == nil {
			select {
			case b := <-run.free:
				batch = b[:0]
			default:
				batch = make([]stitchEv, 0, chunkBatchEvents)
			}
		}
		batch = append(batch, stitchEv{ev: ev, off: run.base + sc.InputOffset()})
		if len(batch) == chunkBatchEvents {
			if !send() {
				return
			}
			batch = nil
		}
	}
}

// Next returns the next stitched event (see Scanner.Next).
func (p *ParallelScanner) Next() (Event, error) {
	if p.err != nil {
		return Event{}, p.err
	}
	if !p.started {
		p.start()
	}
	if !p.startDone {
		p.startDone = true
		p.events++
		return Event{Kind: StartDocument}, nil
	}
	for {
		if p.cur >= len(p.chunks) {
			return p.finishDoc()
		}
		c := p.chunks[p.cur]
		if p.bi >= len(p.batch) {
			if p.batch != nil {
				// Hand the drained batch's storage back for reuse; if the
				// worker's free list is full, let it go to the collector.
				select {
				case c.free <- p.batch:
				default:
				}
				p.batch = nil
			}
			b, ok := <-c.ch
			if !ok {
				if c.err != nil {
					return Event{}, p.fail(c.err, c.errOff)
				}
				p.cur++
				continue
			}
			p.batch, p.bi = b, 0
			continue
		}
		ev := p.batch[p.bi].ev
		off := p.batch[p.bi].off
		p.bi++
		switch ev.Kind {
		case StartElement:
			if p.afterRoot {
				return Event{}, p.fail(fmt.Errorf("xmlstream: content after document root"), off)
			}
			p.stack = append(p.stack, ev.Name)
			p.depth++
			if p.depth > p.maxDepth {
				p.maxDepth = p.depth
			}
		case EndElement:
			if len(p.stack) == 0 {
				return Event{}, p.fail(fmt.Errorf("xmlstream: unexpected end tag </%s> with no open element", ev.Name), off)
			}
			if open := p.stack[len(p.stack)-1]; open != ev.Name {
				return Event{}, p.fail(fmt.Errorf("xmlstream: mismatched end tag: </%s> closes <%s>", ev.Name, open), off)
			}
			p.stack = p.stack[:len(p.stack)-1]
			p.depth--
			if len(p.stack) == 0 {
				p.afterRoot = true
			}
		}
		p.off = off
		p.events++
		return ev, nil
	}
}

// finishDoc handles end of input at the stitch level, mirroring
// Scanner.finish.
func (p *ParallelScanner) finishDoc() (Event, error) {
	p.off = int64(len(p.data))
	switch {
	case p.ended:
		p.err = io.EOF
		return Event{}, io.EOF
	case len(p.stack) > 0:
		p.err = truncatedf("unexpected end of input: %d unclosed element(s), innermost <%s>",
			len(p.stack), p.stack[len(p.stack)-1])
		p.errOff = int64(len(p.data))
		return Event{}, p.err
	case !p.afterRoot:
		p.err = fmt.Errorf("xmlstream: empty document: no root element")
		p.errOff = int64(len(p.data))
		return Event{}, p.err
	default:
		p.ended = true
		p.events++
		return Event{Kind: EndDocument}, nil
	}
}

// findSplits walks data construct by construct and returns, for each target
// offset, the next safe boundary at or after it (see the package comment for
// the definition). emitAttrs selects which of the seed engine's two
// self-closing-tag interpretations governs depth accounting: with attribute
// tokenization "/ >" self-closes anywhere in the tag; without it only a '/'
// immediately before '>' (or straight after the tag name) does.
func findSplits(data []byte, targets []int, emitAttrs bool) []chunkBound {
	var bounds []chunkBound
	t, depth, i := 0, 0, 0
	for i < len(data) && t < len(targets) {
		if i >= targets[t] {
			for t < len(targets) && targets[t] <= i {
				t++
			}
			if i > 0 {
				bounds = append(bounds, chunkBound{off: i, depth: depth})
			}
		}
		c := data[i]
		if c != '<' {
			j := bytes.IndexByte(data[i:], '<')
			if j < 0 {
				return bounds
			}
			i += j
			continue
		}
		if i+1 >= len(data) {
			return bounds
		}
		switch data[i+1] {
		case '?':
			j := bytes.Index(data[i+2:], piEnd)
			if j < 0 {
				return bounds
			}
			i += 2 + j + 2
		case '!':
			ni, ok := declSpan(data, i)
			if !ok {
				return bounds
			}
			i = ni
		case '/':
			j := bytes.IndexByte(data[i+2:], '>')
			if j < 0 {
				return bounds
			}
			if depth > 0 {
				depth--
			}
			i += 2 + j + 1
		default:
			ni, selfClose, ok := startTagSpan(data, i, emitAttrs)
			if !ok {
				return bounds
			}
			if !selfClose {
				depth++
			}
			i = ni
		}
	}
	return bounds
}

// declSpan returns the end of the "<!...>" construct starting at i.
func declSpan(data []byte, i int) (end int, ok bool) {
	rest := data[i+2:]
	switch {
	case len(rest) >= 2 && rest[0] == '-' && rest[1] == '-':
		j := bytes.Index(rest[2:], commentEnd)
		if j < 0 {
			return 0, false
		}
		return i + 2 + 2 + j + 3, true
	case bytes.HasPrefix(rest, []byte("[CDATA[")):
		j := bytes.Index(rest[7:], cdataEnd)
		if j < 0 {
			return 0, false
		}
		return i + 2 + 7 + j + 3, true
	default:
		d := 0
		for j := i + 2; j < len(data); j++ {
			switch data[j] {
			case '[':
				d++
			case ']':
				d--
			case '>':
				if d <= 0 {
					return j + 1, true
				}
			}
		}
		return 0, false
	}
}

// startTagSpan returns the end of the start tag at i (which holds '<') and
// whether it self-closes, honouring quoted attribute values so a '>' inside
// one does not end the tag.
func startTagSpan(data []byte, i int, emitAttrs bool) (end int, selfClose, ok bool) {
	j := i + 1
	for {
		g := bytes.IndexByte(data[j:], '>')
		if g < 0 {
			return 0, false, false
		}
		seg := data[j : j+g]
		q := -1
		var qc byte
		if k := bytes.IndexByte(seg, '"'); k >= 0 {
			q, qc = k, '"'
		}
		if k := bytes.IndexByte(seg, '\''); k >= 0 && (q < 0 || k < q) {
			q, qc = k, '\''
		}
		if q < 0 {
			j += g
			break
		}
		cl := bytes.IndexByte(data[j+q+1:], qc)
		if cl < 0 {
			return 0, false, false
		}
		j += q + 1 + cl + 1
	}
	// j is at the closing '>'.
	if emitAttrs {
		k := j - 1
		for k > i+1 && isSpace(data[k]) {
			k--
		}
		return j + 1, data[k] == '/', true
	}
	// Attribute-skipping mode: '/' immediately before '>' self-closes, and so
	// does "name/ >" when the '/' follows the tag name directly (the bare-name
	// parse path skips whitespace before '>').
	if data[j-1] == '/' {
		return j + 1, true, true
	}
	k := i + 1
	for k < j && nameByteTab[data[k]] {
		k++
	}
	if k < j && data[k] == '/' {
		sc := true
		for m := k + 1; m < j; m++ {
			if !isSpace(data[m]) {
				sc = false
				break
			}
		}
		if sc {
			return j + 1, true, true
		}
	}
	return j + 1, false, true
}
