//go:build !linux

package xmlstream

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("xmlstream: mmap not supported on this platform")

// mmapFile always fails here; OpenFile falls back to reading the file.
func mmapFile(*os.File, int) ([]byte, error) { return nil, errNoMmap }

func munmapFile([]byte) error { return nil }
